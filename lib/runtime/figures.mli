(** Reproduction drivers, one per artifact of the paper's evaluation
    (see DESIGN.md's experiment index).  Each prints an ASCII table in
    the shape of the corresponding figure plus the qualitative claims
    the paper makes about it. *)

type options = {
  scale : Workloads.Catalog.scale;
  seeds : int;
  lambda : float;
  base_seed : int;
  jobs : int;
      (** Worker domains for the matrix figures; [1] (the default)
          runs fully sequentially in the calling domain.  Results are
          bit-identical at every setting (see {!Experiment}). *)
}

val default_options : options
(** [Default] scale, 3 seeds (paper: 30), λ = 0.05, base seed 1,
    1 job. *)

val fig2 : ?options:options -> Format.formatter -> unit
(** Fig. 2 — trace map: temporal / non-temporal complexity and Ψ of
    every catalog workload. *)

val fig3 : ?options:options -> Format.formatter -> unit
(** Fig. 3 — work cost split into routing and reconfiguration, for the
    six workloads × {BT, OPT, SN, DSN, SCBN, CBN}. *)

val fig4 : ?options:options -> Format.formatter -> unit
(** Fig. 4 — makespan and throughput for the six workloads ×
    {SN, DSN, SCBN, CBN}. *)

val thm1 : ?options:options -> Format.formatter -> unit
(** Validation of Theorem 1: amortized routing cost of sequential
    CBNet against the entropy bound H(Ŝ) + H(D̂), across Zipf skews. *)

val thm2 : ?options:options -> Format.formatter -> unit
(** Validation of Theorem 2: total rotations against n·log(m/n) across
    network sizes and sequence lengths. *)

val ablation_delta : ?options:options -> Format.formatter -> unit
(** Rotation threshold δ sweep (Algorithm 1's only knob). *)

val ablation_reset : ?options:options -> Format.formatter -> unit
(** Counter-reset extension (Sec. IX-D) on a drifting workload. *)

val ablation_mtr : ?options:options -> Format.formatter -> unit
(** Move-to-root vs splaying vs counting under an adaptive adversary —
    the depth-halving property the paper invokes in Sec. II. *)

val ablation_rcost : ?options:options -> Format.formatter -> unit
(** Total work re-priced under growing reconfiguration cost R — the
    paper's "in practice the advantage would be significantly higher"
    claim, measured. *)

val timeline : ?options:options -> Format.formatter -> unit
(** Convergence / re-convergence curves of sequential CBNet. *)

val latency : ?options:options -> Format.formatter -> unit
(** Per-message delivery-latency percentiles, CBNet vs DiSplayNet. *)

val trace_map_sweep : ?options:options -> Format.formatter -> unit
(** Calibration: the tunable generator's knobs swept across the
    trace-complexity plane. *)

val all : ?options:options -> Format.formatter -> unit
(** Every artifact in order — the bench executable's default. *)
