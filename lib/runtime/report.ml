let pad width s =
  let len = String.length s in
  if len >= width then s else s ^ String.make (width - len) ' '

let table ?title ~headers rows fmt =
  let all_rows = headers :: rows in
  let cols = List.length headers in
  let widths = Array.make cols 0 in
  List.iter
    (fun row ->
      List.iteri
        (fun i cell ->
          if i < cols then widths.(i) <- max widths.(i) (String.length cell))
        row)
    all_rows;
  (match title with Some t -> Format.fprintf fmt "== %s ==@." t | None -> ());
  let render row =
    let cells = List.mapi (fun i cell -> pad widths.(i) cell) row in
    Format.fprintf fmt "%s@." (String.trim (String.concat "  " cells))
  in
  render headers;
  let rule = List.init cols (fun i -> String.make widths.(i) '-') in
  render rule;
  List.iter render rows

let bar ~value ~max ~width =
  if max <= 0.0 then ""
  else begin
    let k = int_of_float (Float.round (value /. max *. float_of_int width)) in
    String.make (Stdlib.max 0 (Stdlib.min width k)) '#'
  end

let stacked_bar ~parts ~max ~width =
  if max <= 0.0 then ""
  else
    String.concat ""
      (List.map
         (fun (ch, v) ->
           let k = int_of_float (Float.round (v /. max *. float_of_int width)) in
           String.make (Stdlib.max 0 (Stdlib.min width k)) ch)
         parts)

let scatter ~width ~height ~xlabel ~ylabel points fmt =
  let grid = Array.make_matrix height width ' ' in
  List.iter
    (fun (x, y, ch) ->
      let clamp v = Float.min 1.0 (Float.max 0.0 v) in
      let col = int_of_float (clamp x *. float_of_int (width - 1)) in
      let row = height - 1 - int_of_float (clamp y *. float_of_int (height - 1)) in
      grid.(row).(col) <- ch)
    points;
  Format.fprintf fmt "%s ^@." ylabel;
  Array.iter
    (fun row -> Format.fprintf fmt "  |%s@." (String.init width (Array.get row)))
    grid;
  Format.fprintf fmt "  +%s> %s@." (String.make width '-') xlabel

(* Phase-attribution rendering of a Profkit profile — the table behind
   [bench perf --profile] and [cbnet report profile].  Shares the
   plain [table] renderer so the output diffs cleanly in CI logs. *)
let profile ?(title = "CBN phase attribution") p fmt =
  let open Profkit in
  let wall = Profile.wall_us p in
  let rows =
    List.map
      (fun phase ->
        let h = Profile.hist p phase in
        let total = Profile.total_us p phase in
        [
          Profile.phase_name phase;
          Printf.sprintf "%.1f" (total /. 1000.0);
          Printf.sprintf "%.1f%%"
            (if wall > 0.0 then 100.0 *. total /. wall else 0.0);
          Printf.sprintf "%.1f" (Histogram.p50 h);
          Printf.sprintf "%.1f" (Histogram.p95 h);
          Printf.sprintf "%.1f" (Histogram.p99 h);
          Printf.sprintf "%.1f" (Histogram.max h);
        ])
      Profile.phases
  in
  table ~title
    ~headers:
      [ "phase"; "total_ms"; "share"; "p50_us"; "p95_us"; "p99_us"; "max_us" ]
    rows fmt;
  let wh = Profile.wall_hist p in
  Format.fprintf fmt
    "rounds=%d round wall: total=%.1fms p50=%.1fus p95=%.1fus p99=%.1fus \
     max=%.1fus@."
    (Profile.rounds p) (wall /. 1000.0) (Histogram.p50 wh) (Histogram.p95 wh)
    (Histogram.p99 wh) (Histogram.max wh);
  table ~title:"speculation / work counters" ~headers:[ "counter"; "value" ]
    (List.map (fun (name, v) -> [ name; string_of_int v ]) (Profile.counters p))
    fmt;
  Format.fprintf fmt
    "speculation: stamp_hit_rate=%.3f wave_imbalance avg=%.2f max=%.2f@."
    (Profile.stamp_hit_rate p) (Profile.avg_imbalance p) (Profile.max_imbalance p)

let float_cell v =
  if Float.is_integer v && Float.abs v < 1e15 then
    let i = int_of_float v in
    if abs i >= 100000 then Printf.sprintf "%d" i else string_of_int i
  else if Float.abs v < 10.0 then Printf.sprintf "%.3f" v
  else Printf.sprintf "%.1f" v
