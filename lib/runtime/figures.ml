type options = {
  scale : Workloads.Catalog.scale;
  seeds : int;
  lambda : float;
  base_seed : int;
  jobs : int;
}

let default_options =
  {
    scale = Workloads.Catalog.Default;
    seeds = 3;
    lambda = 0.05;
    base_seed = 1;
    jobs = 1;
  }

(* Share one domain pool across a figure's cells; [jobs <= 1] stays on
   the plain sequential path (no domains spawned). *)
let with_jobs options f =
  if options.jobs <= 1 then f None
  else Simkit.Pool.with_pool ~num_domains:options.jobs (fun p -> f (Some p))

let rec chunk k = function
  | [] -> []
  | l ->
      let rec take n l =
        if n = 0 then ([], l)
        else
          match l with
          | [] -> ([], [])
          | x :: tl ->
              let a, b = take (n - 1) tl in
              (x :: a, b)
      in
      let a, b = take k l in
      a :: chunk k b

let mean_pm (s : Simkit.Stats.summary) =
  if s.Simkit.Stats.n < 2 then Report.float_cell s.Simkit.Stats.mean
  else
    Printf.sprintf "%s ±%s"
      (Report.float_cell s.Simkit.Stats.mean)
      (Report.float_cell (1.96 *. s.Simkit.Stats.std /. sqrt (float_of_int s.Simkit.Stats.n)))

let fig2 ?(options = default_options) fmt =
  let measured =
    List.map
      (fun key ->
        let entry = Workloads.Catalog.find key in
        let trace =
          entry.Workloads.Catalog.generate options.scale ~seed:options.base_seed
        in
        let r = Tracekit.Complexity.measure ~seed:(options.base_seed + 17) trace in
        (key, trace, r))
      Workloads.Catalog.keys
  in
  let rows =
    List.map
      (fun (key, trace, r) ->
        [
          key;
          string_of_int trace.Workloads.Trace.n;
          string_of_int (Workloads.Trace.length trace);
          Printf.sprintf "%.3f" r.Tracekit.Complexity.temporal;
          Printf.sprintf "%.3f" r.Tracekit.Complexity.non_temporal;
          Printf.sprintf "%.3f" r.Tracekit.Complexity.complexity;
        ])
      measured
  in
  Report.table ~title:"FIG2: trace map (lower = more locality)"
    ~headers:[ "workload"; "n"; "m"; "T"; "NT"; "Psi" ]
    rows fmt;
  let points =
    List.map
      (fun (key, _, r) ->
        (r.Tracekit.Complexity.temporal, r.Tracekit.Complexity.non_temporal, key.[0]))
      measured
  in
  Report.scatter ~width:56 ~height:14 ~xlabel:"temporal complexity T"
    ~ylabel:"NT" points fmt;
  Format.fprintf fmt
    "points: p=projector s=skewed f=pfabric b=bursty h=hpc d=datastructure \
     u=uniform@.";
  Format.fprintf fmt
    "expected shape: projector/skewed low NT & high T; pfabric/bursty the \
     reverse; hpc low on both; datastructure/uniform high on both.@.@."

let render_fig3 fmt workload cells =
  begin
      let max_work =
        List.fold_left
          (fun acc c -> Float.max acc c.Experiment.work.Simkit.Stats.mean)
          0.0 cells
      in
      let rows =
        List.map
          (fun c ->
            let routing = c.Experiment.routing.Simkit.Stats.mean in
            let rot = c.Experiment.rotations.Simkit.Stats.mean in
            [
              Algo.name c.Experiment.algo;
              mean_pm c.Experiment.routing;
              mean_pm c.Experiment.rotations;
              mean_pm c.Experiment.work;
              Report.stacked_bar
                ~parts:[ ('r', routing); ('X', rot) ]
                ~max:max_work ~width:40;
            ])
          cells
      in
      Report.table
        ~title:(Printf.sprintf "FIG3 [%s]: work cost (r = routing, X = rotations)" workload)
        ~headers:[ "algo"; "routing"; "rotations"; "work"; "split" ]
        rows fmt;
      Format.fprintf fmt "@."
  end

let fig3 ?(options = default_options) fmt =
  with_jobs options (fun pool ->
      let cells =
        Experiment.run_matrix ?pool ~scale:options.scale ~seeds:options.seeds
          ~lambda:options.lambda ~base_seed:options.base_seed
          ~workloads:Workloads.Catalog.paper_six ~algos:Algo.all ()
      in
      List.iter2 (render_fig3 fmt) Workloads.Catalog.paper_six
        (chunk (List.length Algo.all) cells))

let render_fig4 fmt workload cells =
  begin
      let rows =
        List.map
          (fun c ->
            [
              Algo.name c.Experiment.algo;
              mean_pm c.Experiment.makespan;
              mean_pm c.Experiment.throughput;
              mean_pm c.Experiment.pauses;
              mean_pm c.Experiment.bypasses;
            ])
          cells
      in
      Report.table
        ~title:(Printf.sprintf "FIG4 [%s]: makespan & throughput" workload)
        ~headers:[ "algo"; "makespan"; "throughput"; "pauses"; "bypasses" ]
        rows fmt;
      Format.fprintf fmt "@."
  end

let fig4 ?(options = default_options) fmt =
  with_jobs options (fun pool ->
      let cells =
        Experiment.run_matrix ?pool ~scale:options.scale ~seeds:options.seeds
          ~lambda:options.lambda ~base_seed:options.base_seed
          ~workloads:Workloads.Catalog.paper_six ~algos:Algo.dynamic ()
      in
      List.iter2 (render_fig4 fmt) Workloads.Catalog.paper_six
        (chunk (List.length Algo.dynamic) cells))

let thm1 ?(options = default_options) fmt =
  let n = 256 and m = 20_000 in
  let rows =
    List.map
      (fun alpha ->
        let trace =
          Workloads.Skewed.generate ~n ~m ~alpha ~support:2048
            ~seed:options.base_seed ()
        in
        let runs = Workloads.Trace.to_runs trace in
        let demand = Baselines.Demand.of_trace ~n runs in
        let entropy_bound =
          Baselines.Demand.source_entropy demand
          +. Baselines.Demand.destination_entropy demand
        in
        let stats = Cbnet.Sequential.run (Bstnet.Build.balanced n) runs in
        let amortized =
          float_of_int stats.Cbnet.Run_stats.routing_cost /. float_of_int m
        in
        [
          Printf.sprintf "%.2f" alpha;
          Printf.sprintf "%.3f" entropy_bound;
          Printf.sprintf "%.3f" amortized;
          Printf.sprintf "%.3f" (amortized /. Float.max 0.001 entropy_bound);
        ])
      [ 0.0; 0.4; 0.8; 1.2; 1.6; 2.0 ]
  in
  Report.table
    ~title:
      "THM1: amortized routing of sequential CBNet vs entropy bound H(S)+H(D) \
       (n=256, m=20k, Zipf sweep)"
    ~headers:[ "alpha"; "H(S)+H(D)"; "amortized-routing"; "ratio" ]
    rows fmt;
  Format.fprintf fmt
    "expected shape: the ratio stays bounded by a small constant across \
     skews (Theorem 1: O(H(S)+H(D)) amortized).@.@."

let thm2 ?(options = default_options) fmt =
  let rows =
    List.concat_map
      (fun n ->
        List.map
          (fun mult ->
            let m = mult * n in
            let trace = Workloads.Uniform.generate ~n ~m ~seed:options.base_seed () in
            let runs = Workloads.Trace.to_runs trace in
            let stats = Cbnet.Sequential.run (Bstnet.Build.balanced n) runs in
            let bound = float_of_int n *. Float.log2 (float_of_int m /. float_of_int n) in
            [
              string_of_int n;
              string_of_int m;
              string_of_int stats.Cbnet.Run_stats.rotations;
              Printf.sprintf "%.0f" bound;
              Printf.sprintf "%.3f" (float_of_int stats.Cbnet.Run_stats.rotations /. bound);
            ])
          [ 4; 16; 64 ])
      [ 64; 256; 1024 ]
  in
  Report.table
    ~title:"THM2: total rotations vs n*log2(m/n) (uniform traffic)"
    ~headers:[ "n"; "m"; "rotations"; "n*log2(m/n)"; "ratio" ]
    rows fmt;
  Format.fprintf fmt
    "expected shape: the ratio stays bounded by a constant as n and m grow \
     (Theorem 2: O(n log(m/n)) rotations).@.@."

let ablation_delta ?(options = default_options) fmt =
  with_jobs options @@ fun pool ->
  List.iter
    (fun workload ->
      let rows =
        List.map
          (fun delta ->
            let config = Cbnet.Config.make ~delta () in
            let c =
              Experiment.run_cell ?pool ~config ~scale:options.scale
                ~seeds:options.seeds ~lambda:options.lambda
                ~base_seed:options.base_seed ~workload ~algo:Algo.CBN ()
            in
            [
              Printf.sprintf "%.2f" delta;
              mean_pm c.Experiment.routing;
              mean_pm c.Experiment.rotations;
              mean_pm c.Experiment.work;
              mean_pm c.Experiment.throughput;
            ])
          [ 0.25; 0.5; 1.0; 1.5; 2.0 ]
      in
      Report.table
        ~title:
          (Printf.sprintf
             "ABL-DELTA [%s]: rotation threshold sweep (concurrent CBNet)"
             workload)
        ~headers:[ "delta"; "routing"; "rotations"; "work"; "throughput" ]
        rows fmt;
      Format.fprintf fmt "@.")
    [ "skewed"; "bursty" ]

let ablation_reset ?(options = default_options) fmt =
  let trace = Workloads.Drifting.generate ~seed:options.base_seed () in
  let n = trace.Workloads.Trace.n in
  let runs = Workloads.Trace.to_runs trace in
  let plain = Cbnet.Sequential.run (Bstnet.Build.balanced n) runs in
  let rows =
    ([
       "none";
       Report.float_cell (float_of_int plain.Cbnet.Run_stats.routing_cost);
       Report.float_cell (float_of_int plain.Cbnet.Run_stats.rotations);
       Report.float_cell plain.Cbnet.Run_stats.work;
     ]
    :: List.map
         (fun every ->
           let stats =
             Cbnet.Counter_reset.run_sequential ~every ~factor:0.25
               (Bstnet.Build.balanced n) runs
           in
           [
             Printf.sprintf "every %d" every;
             Report.float_cell (float_of_int stats.Cbnet.Run_stats.routing_cost);
             Report.float_cell (float_of_int stats.Cbnet.Run_stats.rotations);
             Report.float_cell stats.Cbnet.Run_stats.work;
           ])
         [ 1000; 2500; 5000 ])
  in
  Report.table
    ~title:
      "ABL-RESET: counter decay (factor 0.25) on a drifting workload \
       (sequential CBNet, n=256, m=20k, hotspots change mid-trace)"
    ~headers:[ "reset"; "routing"; "rotations"; "work" ]
    rows fmt;
  Format.fprintf fmt
    "expected shape: moderate resets reduce routing after the drift (the \
     topology re-adapts), at the price of extra rotations.@.@."

let ablation_mtr ?(options = default_options) fmt =
  (* The halving property (Sec. II): semi-splaying and full splaying
     keep adversarial sequences cheap; move-to-root does not. *)
  let n = 128 in
  let m = 4_000 in
  let adversarial exec =
    let t = Bstnet.Build.path n in
    Adversary.online_worst_case ~m t ~next:Adversary.deep_access (fun trace ->
        exec t trace)
  in
  let skewed_trace =
    Workloads.Trace.to_runs (Workloads.Skewed.generate ~n ~m ~seed:options.base_seed ())
  in
  let skewed exec =
    let t = Bstnet.Build.balanced n in
    exec t skewed_trace
  in
  let row name exec =
    let a = adversarial exec in
    let s = skewed exec in
    [
      name;
      Report.float_cell a.Cbnet.Run_stats.work;
      Report.float_cell (float_of_int a.Cbnet.Run_stats.rotations);
      Report.float_cell s.Cbnet.Run_stats.work;
      Report.float_cell (float_of_int s.Cbnet.Run_stats.rotations);
    ]
  in
  let rows =
    [
      row "MTR" (fun t trace -> Baselines.Move_to_root.run t trace);
      row "SN" (fun t trace -> Baselines.Splaynet.run t trace);
      row "SCBN" (fun t trace -> Cbnet.Sequential.run t trace);
    ]
  in
  Report.table
    ~title:
      "ABL-MTR: move-to-root vs splaying vs counting (n=128, m=4k; adversary        = deep-access on an initial chain)"
    ~headers:
      [ "algo"; "adversary-work"; "adversary-rot"; "skewed-work"; "skewed-rot" ]
    rows fmt;
  Format.fprintf fmt
    "expected shape: move-to-root collapses under the adversary (no depth      halving); splaying and CBNet stay near m log n.@.@."

let ablation_rcost ?(options = default_options) fmt =
  (* Sec. IX-B: "the cost of a reconfiguration is typically much higher
     than the routing cost.  In practice, the advantage of CBNet in
     terms of reconfiguration cost reduction would be significantly
     higher than depicted in our plots."  Measure it: re-price the same
     executions under growing R. *)
  let workload = "skewed" in
  let base =
    with_jobs options (fun pool ->
        Experiment.run_matrix ?pool ~scale:options.scale ~seeds:options.seeds
          ~lambda:options.lambda ~base_seed:options.base_seed
          ~workloads:[ workload ]
          ~algos:[ Algo.SN; Algo.DSN; Algo.SCBN; Algo.CBN ]
          ())
    |> List.map (fun c ->
           ( c.Experiment.algo,
             c.Experiment.routing.Simkit.Stats.mean,
             c.Experiment.rotations.Simkit.Stats.mean ))
  in
  let rows =
    List.map
      (fun r ->
        let work routing rotations = routing +. (r *. rotations) in
        let cells =
          List.map (fun (_, routing, rotations) -> work routing rotations) base
        in
        let cbn = List.nth cells 3 in
        let best_splay = Float.min (List.nth cells 0) (List.nth cells 1) in
        Printf.sprintf "%.0f" r
        :: List.map (fun w -> Report.float_cell w) cells
        @ [ Printf.sprintf "%.2fx" (best_splay /. cbn) ])
      [ 1.0; 5.0; 20.0; 100.0 ]
  in
  Report.table
    ~title:
      (Printf.sprintf
         "ABL-RCOST [%s]: total work under growing reconfiguration cost R           (routing and rotations fixed, re-priced)"
         workload)
    ~headers:[ "R"; "SN"; "DSN"; "SCBN"; "CBN"; "best-splay/CBN" ]
    rows fmt;
  Format.fprintf fmt
    "expected shape: at R = 1 the splaying networks are competitive; their      work grows linearly in R while CBNet's barely moves (the paper's      'in practice the advantage would be significantly higher').@.@."

let timeline ?(options = default_options) fmt =
  let skewed =
    Workloads.Skewed.generate ~n:256 ~m:10_000 ~support:1024
      ~seed:options.base_seed ()
  in
  Format.fprintf fmt
    "== TIMELINE [skewed]: sequential CBNet converging toward the demand ==@.";
  Timeline.pp fmt (Timeline.sequential_cbnet ~window:1000 skewed);
  let drifting = Workloads.Drifting.generate ~seed:options.base_seed () in
  Format.fprintf fmt
    "@.== TIMELINE [drifting]: hotspots change mid-trace (re-convergence) ==@.";
  Timeline.pp fmt (Timeline.sequential_cbnet ~window:1000 drifting);
  Format.fprintf fmt "@."

let latency ?(options = default_options) fmt =
  let rows =
    List.concat_map
      (fun workload ->
        let trace =
          Experiment.trace_for ~scale:options.scale ~lambda:options.lambda
            ~workload ~seed:options.base_seed ()
        in
        let n = trace.Workloads.Trace.n in
        let runs = Workloads.Trace.to_runs trace in
        let _, cbn =
          Cbnet.Concurrent.run_with_latencies (Bstnet.Build.balanced n) runs
        in
        let _, dsn =
          Baselines.Displaynet.run_with_latencies (Bstnet.Build.balanced n) runs
        in
        let row algo lats =
          let p q = Printf.sprintf "%.0f" (Simkit.Stats.percentile lats q) in
          [ workload; algo; p 50.0; p 90.0; p 99.0; p 100.0 ]
        in
        [ row "CBN" cbn; row "DSN" dsn ])
      [ "projector"; "skewed"; "datastructure" ]
  in
  Report.table
    ~title:
      "LATENCY: per-message delivery latency percentiles (rounds, queueing \
       included)"
    ~headers:[ "workload"; "algo"; "p50"; "p90"; "p99"; "max" ]
    rows fmt;
  Format.fprintf fmt "@."

let trace_map_sweep ?(options = default_options) fmt =
  (* Calibration of the complexity measure itself: the tunable
     generator's two knobs should trace out the plane of Fig. 2. *)
  let grid =
    Workloads.Tunable.grid ~n:256 ~m:8_000 ~seed:options.base_seed
      ~temporal_levels:[ 0.0; 0.3; 0.6; 0.9 ]
      ~alpha_levels:[ 0.0; 0.8; 1.6; 2.4 ]
      ()
  in
  let measured =
    List.map
      (fun (temporal, alpha, trace) ->
        let r = Tracekit.Complexity.measure ~seed:(options.base_seed + 31) trace in
        (temporal, alpha, r))
      grid
  in
  Report.table ~title:"TRACE-MAP: tunable generator sweep"
    ~headers:[ "p-temporal"; "alpha"; "T"; "NT"; "Psi" ]
    (List.map
       (fun (temporal, alpha, r) ->
         [
           Printf.sprintf "%.1f" temporal;
           Printf.sprintf "%.1f" alpha;
           Printf.sprintf "%.2f" r.Tracekit.Complexity.temporal;
           Printf.sprintf "%.2f" r.Tracekit.Complexity.non_temporal;
           Printf.sprintf "%.2f" r.Tracekit.Complexity.complexity;
         ])
       measured)
    fmt;
  let points =
    List.map
      (fun (_, alpha, r) ->
        let ch = Char.chr (Char.code 'a' + int_of_float (alpha *. 1.25)) in
        (r.Tracekit.Complexity.temporal, r.Tracekit.Complexity.non_temporal, ch))
      measured
  in
  Report.scatter ~width:56 ~height:14 ~xlabel:"temporal complexity T"
    ~ylabel:"NT" points fmt;
  Format.fprintf fmt
    "marks a/b/c/d = increasing matrix skew alpha; left = more temporal \
     locality, low = more non-temporal locality.@.@."

let all ?(options = default_options) fmt =
  fig2 ~options fmt;
  (* Compute the (workload x algorithm) matrix once and render both
     work-cost and time-cost views from it. *)
  with_jobs options (fun pool ->
      let cells =
        Experiment.run_matrix ?pool ~scale:options.scale ~seeds:options.seeds
          ~lambda:options.lambda ~base_seed:options.base_seed
          ~workloads:Workloads.Catalog.paper_six ~algos:Algo.all ()
      in
      List.iter2
        (fun workload cells ->
          render_fig3 fmt workload cells;
          render_fig4 fmt workload
            (List.filter
               (fun c -> List.mem c.Experiment.algo Algo.dynamic)
               cells))
        Workloads.Catalog.paper_six
        (chunk (List.length Algo.all) cells));
  thm1 ~options fmt;
  thm2 ~options fmt;
  ablation_delta ~options fmt;
  ablation_reset ~options fmt;
  ablation_mtr ~options fmt;
  ablation_rcost ~options fmt;
  timeline ~options fmt;
  latency ~options fmt;
  trace_map_sweep ~options fmt
