(** Glue between the {!Obskit} event stream and the
    {!Simkit.Metrics} registry: a recorder that folds every structured
    event into named counters and observation streams, so one traced
    run fills the registry Prometheus exposition reads from.

    Metric names follow Prometheus conventions; labelled counters bake
    the label set into the registry key (e.g.
    [cbnet_conflicts_total{kind="pause"}]), which {!Export.prometheus}
    emits verbatim.  Streams use plain (unlabelled) names and are
    exported as summaries with [quantile] labels. *)

val recorder : Simkit.Metrics.t -> Obskit.Event.t -> unit
(** Fold one event into the registry.  Counters:
    [cbnet_rounds_total], [cbnet_steps_planned_total],
    [cbnet_clusters_claimed_total], [cbnet_rotations_total],
    [cbnet_conflicts_total{kind="pause"|"bypass"}],
    [cbnet_messages_delivered_total{kind="data"|"update"}],
    [cbnet_pool_tasks_total], [cbnet_spans_total],
    [cbnet_pool_busy_us_total{domain="<id>"}] (per-domain utilization).
    Streams: [cbnet_delta_phi] (per planned step), [cbnet_phi],
    [cbnet_delivery_latency_rounds] (data messages),
    [cbnet_active_messages], [cbnet_pool_queue_depth],
    [cbnet_pool_task_us]. *)

val metrics_sink : Simkit.Metrics.t -> Obskit.Sink.t
(** [Obskit.Sink.stream (recorder reg)]: a sink feeding [reg],
    serialized so concurrent domains can share it. *)
