(** Multi-seed experiment execution: the (workload × algorithm) matrix
    behind Figures 3 and 4, with deterministic per-seed streams and
    mean ± 95%-CI aggregation.

    Both entry points optionally fan their per-seed executions out
    across a {!Simkit.Pool}.  Each seed owns its Rng streams and each
    task's raw samples land in a pre-sized result slot that is folded
    in fixed seed order afterwards, so the parallel path is
    bit-identical to the sequential one — only wall-clock changes. *)

type measurement = {
  algo : Algo.t;
  workload : string;
  seeds : int;
  messages : Simkit.Stats.summary;  (** Delivered data messages m. *)
  routing : Simkit.Stats.summary;  (** Routing cost D (Def. 1). *)
  rotations : Simkit.Stats.summary;  (** Rotation count Σρ. *)
  work : Simkit.Stats.summary;  (** Total work C. *)
  makespan : Simkit.Stats.summary;
  throughput : Simkit.Stats.summary;
  pauses : Simkit.Stats.summary;
  bypasses : Simkit.Stats.summary;
  rounds : Simkit.Stats.summary;
      (** Rounds to quiescence ({!Cbnet.Run_stats.rounds}); for
          sequential algorithms this is the serial clock. *)
}

val run_cell :
  ?pool:Simkit.Pool.t ->
  ?config:Cbnet.Config.t ->
  ?scale:Workloads.Catalog.scale ->
  ?seeds:int ->
  ?lambda:float ->
  ?base_seed:int ->
  ?sink:Obskit.Sink.t ->
  ?profile:Profkit.Profile.t ->
  ?prof_sink:Obskit.Sink.t ->
  ?check_invariants:bool ->
  ?domains:int ->
  ?shards:int ->
  workload:string ->
  algo:Algo.t ->
  unit ->
  measurement
(** Generate the workload [seeds] times (default 5; the paper uses 30
    for full runs) with distinct seeds, stamp arrivals with the
    paper's Poisson process (default [lambda = 0.05]), execute, and
    aggregate.  With [?pool] the seeds run concurrently; the
    measurement is identical either way.

    [sink] (default null) is forwarded to every per-seed execution
    ({!Algo.run}) and additionally receives a [cell:<workload>/<algo>]
    span around the cell and a [seed:...#i] span around each seed.
    Traced measurements are bit-identical to untraced ones.

    [check_invariants] (default [false]) audits every per-seed final
    tree with {!Bstnet.Check.all} (see {!Algo.run}).

    [domains] (default 1) parallelizes each CBN execution's round loop
    (see {!Algo.run}); orthogonal to [?pool], which parallelizes
    across seeds.  Combining both oversubscribes the machine — prefer
    seed-level [?pool] for matrices and [domains] for single large
    runs.  Measurements are bit-identical at every domain count.

    [shards] (default 1) sizes the CBN_FOREST directory; every other
    algorithm ignores it (see {!Algo.run}).

    [profile] / [prof_sink] turn on phase-level self-profiling of the
    CBN executions ({!Algo.run}, {!Profkit.Profile}); every seed's
    phases and counters accumulate into the one caller-owned profile.
    {!Profkit.Profile.t} is unsynchronized, so [?profile] cannot be
    combined with [?pool] — the call raises [Invalid_argument].
    Profiled measurements are bit-identical to unprofiled ones. *)

val run_matrix :
  ?pool:Simkit.Pool.t ->
  ?config:Cbnet.Config.t ->
  ?scale:Workloads.Catalog.scale ->
  ?seeds:int ->
  ?lambda:float ->
  ?base_seed:int ->
  ?sink:Obskit.Sink.t ->
  ?check_invariants:bool ->
  ?domains:int ->
  ?shards:int ->
  workloads:string list ->
  algos:Algo.t list ->
  unit ->
  measurement list
(** {!run_cell} over the full matrix, workload-major.  With [?pool]
    the matrix is flattened to (cell × seed) tasks so every domain
    stays busy even at small seed counts. *)

val trace_for :
  ?scale:Workloads.Catalog.scale ->
  ?lambda:float ->
  workload:string ->
  seed:int ->
  unit ->
  Workloads.Trace.t
(** The exact stamped trace a cell run uses for a given seed (exposed
    so analyses like Fig. 2 and the entropy bounds see the same σ). *)
