type measurement = {
  algo : Algo.t;
  workload : string;
  seeds : int;
  messages : Simkit.Stats.summary;
  routing : Simkit.Stats.summary;
  rotations : Simkit.Stats.summary;
  work : Simkit.Stats.summary;
  makespan : Simkit.Stats.summary;
  throughput : Simkit.Stats.summary;
  pauses : Simkit.Stats.summary;
  bypasses : Simkit.Stats.summary;
  rounds : Simkit.Stats.summary;
}

let trace_for ?(scale = Workloads.Catalog.Default) ?(lambda = 0.05) ~workload
    ~seed () =
  let entry = Workloads.Catalog.find workload in
  let trace = entry.Workloads.Catalog.generate scale ~seed in
  let rng = Simkit.Rng.create (seed lxor 0x5bd1e995) in
  Workloads.Trace.with_poisson_births rng ~lambda trace

(* One (cell, seed) execution: generates its own trace from its own
   Rng streams and touches no state outside its return value, so it
   can run on any domain.  On traced runs the whole seed is wrapped in
   a span, so the per-domain tracks of the trace show which seed ran
   where and for how long. *)
let run_seed ?profile ?(prof_sink = Obskit.Sink.null) ~sink ~config ~scale
    ~lambda ~base_seed ~check ~domains ~shards ~workload ~algo i =
  let seed = base_seed + (1009 * i) in
  let body () =
    let trace = trace_for ~scale ~lambda ~workload ~seed () in
    Algo.run ~config ~sink ?profile ~prof_sink ~check_invariants:check ~domains
      ~shards algo trace
  in
  if Obskit.Sink.enabled sink then
    Obskit.Sink.span sink
      (Printf.sprintf "seed:%s/%s#%d" workload (Algo.name algo) i)
      body
  else body ()

(* Fan [n] independent tasks out across [pool] (in-caller, in index
   order, when absent): result slot [i] is always [f i]. *)
let collect ?pool n f =
  match pool with
  | Some p -> Simkit.Pool.map p n f
  | None ->
      if n <= 0 then [||]
      else begin
        let first = f 0 in
        let results = Array.make n first in
        for i = 1 to n - 1 do
          results.(i) <- f i
        done;
        results
      end

(* Aggregation is a fold in fixed seed order over the collected
   per-seed samples, so the parallel and sequential paths produce
   bit-identical summaries (Welford accumulation is order-sensitive). *)
let aggregate ~workload ~algo ~seeds per_seed =
  let messages = Simkit.Stats.create () in
  let routing = Simkit.Stats.create () in
  let rounds = Simkit.Stats.create () in
  let rotations = Simkit.Stats.create () in
  let work = Simkit.Stats.create () in
  let makespan = Simkit.Stats.create () in
  let throughput = Simkit.Stats.create () in
  let pauses = Simkit.Stats.create () in
  let bypasses = Simkit.Stats.create () in
  Array.iter
    (fun (stats : Cbnet.Run_stats.t) ->
      Simkit.Stats.add messages (float_of_int stats.Cbnet.Run_stats.messages);
      Simkit.Stats.add routing (float_of_int stats.Cbnet.Run_stats.routing_cost);
      Simkit.Stats.add rotations (float_of_int stats.Cbnet.Run_stats.rotations);
      Simkit.Stats.add work stats.Cbnet.Run_stats.work;
      Simkit.Stats.add makespan (float_of_int stats.Cbnet.Run_stats.makespan);
      Simkit.Stats.add throughput stats.Cbnet.Run_stats.throughput;
      Simkit.Stats.add pauses (float_of_int stats.Cbnet.Run_stats.pauses);
      Simkit.Stats.add bypasses (float_of_int stats.Cbnet.Run_stats.bypasses);
      Simkit.Stats.add rounds (float_of_int stats.Cbnet.Run_stats.rounds))
    per_seed;
  {
    algo;
    workload;
    seeds;
    messages = Simkit.Stats.summary messages;
    routing = Simkit.Stats.summary routing;
    rotations = Simkit.Stats.summary rotations;
    work = Simkit.Stats.summary work;
    makespan = Simkit.Stats.summary makespan;
    throughput = Simkit.Stats.summary throughput;
    pauses = Simkit.Stats.summary pauses;
    bypasses = Simkit.Stats.summary bypasses;
    rounds = Simkit.Stats.summary rounds;
  }

let run_cell ?pool ?(config = Cbnet.Config.default)
    ?(scale = Workloads.Catalog.Default) ?(seeds = 5) ?(lambda = 0.05)
    ?(base_seed = 1) ?(sink = Obskit.Sink.null) ?profile ?prof_sink
    ?(check_invariants = false) ?(domains = 1) ?(shards = 1) ~workload ~algo
    () =
  if seeds < 1 then invalid_arg "Experiment.run_cell: seeds must be >= 1";
  (* Profile.t is a plain mutable record with no synchronization, so a
     profiled cell must run its seeds in the caller, not on a pool. *)
  if profile <> None && pool <> None then
    invalid_arg "Experiment.run_cell: ?profile cannot be combined with ?pool";
  let cell () =
    let per_seed =
      collect ?pool seeds
        (run_seed ?profile ?prof_sink ~sink ~config ~scale ~lambda ~base_seed
           ~check:check_invariants ~domains ~shards ~workload ~algo)
    in
    aggregate ~workload ~algo ~seeds per_seed
  in
  if Obskit.Sink.enabled sink then
    Obskit.Sink.span sink
      (Printf.sprintf "cell:%s/%s" workload (Algo.name algo))
      cell
  else cell ()

let run_matrix ?pool ?(config = Cbnet.Config.default)
    ?(scale = Workloads.Catalog.Default) ?(seeds = 5) ?(lambda = 0.05)
    ?(base_seed = 1) ?(sink = Obskit.Sink.null) ?(check_invariants = false)
    ?(domains = 1) ?(shards = 1) ~workloads ~algos () =
  if seeds < 1 then invalid_arg "Experiment.run_matrix: seeds must be >= 1";
  let cells =
    Array.of_list
      (List.concat_map
         (fun workload -> List.map (fun algo -> (workload, algo)) algos)
         workloads)
  in
  let n_cells = Array.length cells in
  (* Flatten to (cell, seed) granularity: a full matrix exposes
     n_cells * seeds independent tasks, which keeps every domain busy
     even when a single cell has few seeds. *)
  let per_task =
    collect ?pool (n_cells * seeds) (fun k ->
        let workload, algo = cells.(k / seeds) in
        run_seed ~sink ~config ~scale ~lambda ~base_seed
          ~check:check_invariants ~domains ~shards ~workload ~algo
          (k mod seeds))
  in
  List.init n_cells (fun ci ->
      let workload, algo = cells.(ci) in
      aggregate ~workload ~algo ~seeds (Array.sub per_task (ci * seeds) seeds))
