(** Fixed-width ASCII tables and simple bar charts for experiment
    output — the textual equivalent of the paper's figures. *)

val table :
  ?title:string -> headers:string list -> string list list -> Format.formatter -> unit
(** Render rows under right-padded headers; column widths fit the
    longest cell. *)

val bar : value:float -> max:float -> width:int -> string
(** A proportional bar of '#' characters (for work-split charts). *)

val stacked_bar :
  parts:(char * float) list -> max:float -> width:int -> string
(** A stacked proportional bar, one fill character per component. *)

val scatter :
  width:int ->
  height:int ->
  xlabel:string ->
  ylabel:string ->
  (float * float * char) list ->
  Format.formatter ->
  unit
(** Plot labelled points with coordinates in [0, 1] x [0, 1] on an
    ASCII grid (the shape of the paper's Fig. 2 trace map). *)

val float_cell : float -> string
(** Compact numeric formatting: integers as such, small floats with 3
    decimals, large values with thousands grouping. *)

val profile : ?title:string -> Profkit.Profile.t -> Format.formatter -> unit
(** Render a {!Profkit.Profile} as the human-readable attribution
    report: the per-phase table (total ms, share of round wall,
    per-round p50/p95/p99/max µs), the round-wall summary line, the
    speculation/work counter table and the derived speculation rates.
    Behind [bench perf --profile] and [cbnet report profile]. *)
