(** CSV export of measurements, for external plotting (gnuplot,
    matplotlib, R): one row per (workload, algorithm) with mean and
    95%-CI columns, and per-point rows for timelines and latency
    distributions. *)

val measurements_csv : Experiment.measurement list -> string -> unit
(** Header: workload,algo,seeds,metric columns (mean and ci95 each). *)

val bench_json :
  commit:string ->
  timestamp:string ->
  (Experiment.measurement * float) list ->
  string ->
  unit
(** Machine-readable bench export for CI perf tracking
    ([BENCH_*.json]): writes
    [{commit, timestamp, cells: [{workload, algo, seeds, work,
    makespan, throughput, rotations, wall_seconds}]}], one cell per
    (workload, algorithm) with metric {e means} across seeds and the
    measured wall-clock seconds of the cell run (the float paired with
    each measurement).  Hand-rolled writer — no JSON dependency. *)

val timeline_csv : Timeline.point list -> string -> unit

val latencies_csv : float array -> string -> unit
(** One latency per row, plus a percentile summary block as trailing
    comment lines. *)
