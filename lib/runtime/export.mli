(** CSV export of measurements, for external plotting (gnuplot,
    matplotlib, R): one row per (workload, algorithm) with mean and
    95%-CI columns, and per-point rows for timelines and latency
    distributions. *)

val measurements_csv : Experiment.measurement list -> string -> unit
(** Header: workload,algo,seeds,metric columns (mean and ci95 each,
    then p50/p95/p99 for routing, work, makespan and throughput, and
    the mean round count). *)

val bench_json :
  commit:string ->
  timestamp:string ->
  (Experiment.measurement * float) list ->
  string ->
  unit
(** Machine-readable bench export for CI perf tracking
    ([BENCH_*.json]): writes
    [{commit, timestamp, cells: [{workload, algo, seeds, messages,
    work, makespan, throughput, rotations, pauses, bypasses, rounds,
    wall_seconds, rounds_per_sec, msgs_per_sec, hops_per_sec}]}], one
    cell per (workload, algorithm) with metric {e means} across seeds
    and the measured wall-clock seconds of the cell run (the float
    paired with each measurement).  The [*_per_sec] fields are
    simulator-throughput rates — seed totals divided by wall clock —
    so artifacts from different commits are trend-comparable
    ([bench/compare_bench.exe] diffs two of them).  Hand-rolled writer
    — no JSON dependency. *)

type scaling_row = {
  workload : string;
  domains : int;  (** Domain count of the executor's plan wave. *)
  rounds : int;
  messages : int;
  wall_seconds : float;  (** Minimum wall clock across repetitions. *)
}
(** One [bench perf-scaling] curve point: the concurrent executor on
    one workload trace at one domain count. *)

val scaling_json :
  commit:string ->
  timestamp:string ->
  host_cores:int ->
  scaling_row list ->
  string ->
  unit
(** Machine-readable cores-vs-throughput export
    ([BENCH_SCALING_BASELINE.json], [bench-scaling.json]): the root
    carries [host_cores] (the runner's
    [Domain.recommended_domain_count]) so the CI gate
    ([bench/compare_bench.exe --scaling]) can tell which points were
    measured on enough cores to be meaningful; each row adds derived
    [rounds_per_sec]/[msgs_per_sec] rates.  Hand-rolled writer — no
    JSON dependency. *)

type forest_row = {
  workload : string;
  n : int;  (** Global key-space size of the cell's trace. *)
  shards : int;
  domains : int;  (** Shard-level fan-out of the forest run. *)
  rounds : int;  (** Slowest shard's round count. *)
  messages : int;  (** Delivered legs (intra + 2 x cross). *)
  requests : int;  (** End-to-end requests in the trace. *)
  cross : int;  (** Requests split across two shards. *)
  wall_seconds : float;  (** Minimum wall clock across repetitions. *)
}
(** One [bench forest-smoke] / [bench forest-scaling] cell: the forest
    overlay on one workload trace at one (n, shards, domains) point. *)

val forest_json :
  commit:string ->
  timestamp:string ->
  host_cores:int ->
  forest_row list ->
  string ->
  unit
(** Machine-readable forest-throughput export
    ([BENCH_FOREST_BASELINE.json], [bench-forest.json]): like
    {!scaling_json}, the root carries [host_cores] so the CI diff
    ([bench/compare_bench.exe --forest]) can tell which points were
    measured with real parallelism; each row adds derived
    [rounds_per_sec]/[msgs_per_sec] rates.  Hand-rolled writer — no
    JSON dependency. *)

type serve_row = {
  shape : string;  (** The load shape's [kind:family] label. *)
  n : int;
  seed : int;
  requests : int;  (** Arrivals seen at ingest. *)
  admitted : int;
  shed : int;  (** Arrivals dropped by back-pressure. *)
  batches : int;
  decays : int;  (** Epoch decay passes applied. *)
  busy_rounds : int;  (** Rounds spent executing batches. *)
  idle_rounds : int;  (** Virtual rounds skipped while idle. *)
  messages : int;  (** Data messages delivered. *)
  makespan : int;
  q_max : int;  (** Ingest-queue high-water mark. *)
  q_p50 : float;
  q_p95 : float;
  q_p99 : float;  (** Queue-depth percentiles (per-iteration samples). *)
  wall_seconds : float;  (** Minimum wall clock across repetitions. *)
}
(** One [bench serve-smoke] cell: a load shape replayed through the
    Servekit serve loop. *)

val serve_json :
  commit:string -> timestamp:string -> serve_row list -> string -> unit
(** Machine-readable serve-mode export ([BENCH_SERVE_BASELINE.json],
    [bench-serve.json]): one row per shape with derived
    [rounds_per_sec]/[msgs_per_sec] sustained rates, the input of the
    [compare_bench --serve] advisory diff.  Hand-rolled writer — no
    JSON dependency. *)

type chaos_row = {
  workload : string;
  plan : string;  (** The fault plan's one-line text form. *)
  seed : int;
  stats : Cbnet.Run_stats.t;
  clean_makespan : int;  (** Fault-free makespan of the same trace. *)
  wall_seconds : float;
}
(** One [bench chaos] sweep point: a (workload, fault plan) execution
    next to its fault-free twin. *)

val chaos_json :
  commit:string -> timestamp:string -> chaos_row list -> string -> unit
(** Machine-readable chaos-sweep export ([BENCH_CHAOS.json]): one row
    per (workload, plan) with delivery counts, makespan inflation over
    the fault-free twin, and the full fault/repair tallies.
    Hand-rolled writer — no JSON dependency. *)

val timeline_csv : Timeline.point list -> string -> unit

val latencies_csv : float array -> string -> unit
(** One latency per row, plus a summary block as trailing comment
    lines: n, mean, std, min, max, p50, p95, p99. *)

val chrome_trace : ?dropped:int -> Obskit.Event.t list -> string -> unit
(** Write telemetry events (oldest first) as Chrome trace-event JSON,
    loadable in Perfetto ({:https://ui.perfetto.dev}) or
    [chrome://tracing].  Spans become B/E slices and pool tasks
    complete ("X") slices on one track per domain; rounds, Φ, queue
    depth and per-round phase times become counter series (one
    [phase_us:<phase>] lane per profiling phase); steps, conflicts,
    rotations and deliveries become instant events.

    [dropped] (default 0): events the capturing ring sink discarded.
    When positive, a trailing [events_dropped] instant is appended at
    the last event's timestamp, so a truncated trace is detectable
    instead of silent. *)

val prometheus : ?events_dropped:int -> Simkit.Metrics.t -> string -> unit
(** Write a metrics registry in the Prometheus text exposition format:
    counters (with any labels embedded in the registry key) and one
    {e histogram} per observation stream — cumulative
    [_bucket{le="..."}] series over the stream's non-empty log buckets
    plus the [+Inf] bucket, and exact [_sum]/[_count] — so scrapers
    can aggregate across runs and recompute quantiles
    ([histogram_quantile]), which the former exact-quantile summaries
    did not allow.  Bucket edges come from {!Profkit.Histogram}
    (bounded ~3.1% relative error).

    [events_dropped] (default 0) is exported as the
    [cbnet_events_dropped_total] counter: the number of telemetry
    events the capturing ring sink discarded. *)

val prometheus_string : ?events_dropped:int -> Simkit.Metrics.t -> string
(** The exposition text of {!prometheus} as a string — the body thunk
    for the live [/metrics] endpoint of [cbnet serve], which renders a
    fresh snapshot per scrape instead of writing a file. *)

val profile_json :
  commit:string ->
  timestamp:string ->
  workload:string ->
  domains:int ->
  Profkit.Profile.t ->
  string ->
  unit
(** Machine-readable phase-attribution export ([bench-profile.json],
    [BENCH_PROFILE_BASELINE.json]): per-phase [total_us] with its
    [share] of the summed round wall time and per-round p50/p95/p99/max
    µs, the per-round wall quantiles, every speculation/work counter,
    and derived speculation rates ([stamp_hit_rate],
    [avg_wave_imbalance], [max_wave_imbalance]).  The phase shares sum
    to 1 by construction (exclusive contiguous attribution — see
    {!Profkit.Profile}).  [bench/compare_bench.exe --profile] diffs two
    of these.  Hand-rolled writer — no JSON dependency. *)
