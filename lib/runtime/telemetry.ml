module E = Obskit.Event
module M = Simkit.Metrics

let recorder reg (ev : E.t) =
  match ev.E.payload with
  | E.Round_begin { active; _ } ->
      M.incr reg "cbnet_rounds_total";
      M.observe reg "cbnet_active_messages" (float_of_int active)
  | E.Step_planned { delta_phi; _ } ->
      M.incr reg "cbnet_steps_planned_total";
      M.observe reg "cbnet_delta_phi" delta_phi
  | E.Cluster_claimed _ -> M.incr reg "cbnet_clusters_claimed_total"
  | E.Conflict { kind; _ } ->
      M.incr reg
        (Printf.sprintf "cbnet_conflicts_total{kind=%S}"
           (E.conflict_to_string kind))
  | E.Rotation { count; _ } -> M.add reg "cbnet_rotations_total" count
  | E.Phi_sample { phi; _ } -> M.observe reg "cbnet_phi" phi
  | E.Msg_delivered { data; round; birth; _ } ->
      M.incr reg
        (Printf.sprintf "cbnet_messages_delivered_total{kind=%S}"
           (if data then "data" else "update"));
      if data then
        M.observe reg "cbnet_delivery_latency_rounds"
          (float_of_int (round - birth))
  | E.Pool_task { phase = E.Enqueue; queue_depth; _ } ->
      M.incr reg "cbnet_pool_tasks_total";
      M.observe reg "cbnet_pool_queue_depth" (float_of_int queue_depth)
  | E.Pool_task { phase = E.Done; elapsed_us; _ } ->
      M.observe reg "cbnet_pool_task_us" elapsed_us;
      M.add reg
        (Printf.sprintf "cbnet_pool_busy_us_total{domain=\"%d\"}" ev.E.domain)
        (int_of_float elapsed_us)
  | E.Pool_task { phase = E.Start; _ } -> ()
  | E.Plan_wave { planned; _ } ->
      M.incr reg "cbnet_plan_waves_total";
      M.observe reg "cbnet_plan_wave_planned" (float_of_int planned)
  | E.Phase_time { phase; elapsed_us; _ } ->
      M.observe reg (Printf.sprintf "cbnet_phase_us{phase=%S}" phase) elapsed_us
  | E.Span { phase = E.End; _ } -> M.incr reg "cbnet_spans_total"
  | E.Span { phase = E.Begin; _ } -> ()
  | E.Fault_injected { kind; _ } ->
      M.incr reg
        (Printf.sprintf "cbnet_faults_total{kind=%S}" (E.fault_to_string kind))
  | E.Node_down _ -> M.incr reg "cbnet_faults_total{kind=\"crash\"}"
  | E.Msg_lost _ ->
      M.incr reg "cbnet_faults_total{kind=\"loss\"}";
      M.incr reg "cbnet_msgs_lost_total"
  | E.Repair_done _ -> M.incr reg "cbnet_repairs_total"
  | E.Node_up _ | E.Repair_begin _ -> ()

let metrics_sink reg = Obskit.Sink.stream (recorder reg)
