type t = BT | OPT | SN | DSN | SCBN | CBN | CBN_REF

let all = [ BT; OPT; SN; DSN; SCBN; CBN ]
let dynamic = [ SN; DSN; SCBN; CBN ]
let perf_pair = [ CBN; CBN_REF ]

let name = function
  | BT -> "BT"
  | OPT -> "OPT"
  | SN -> "SN"
  | DSN -> "DSN"
  | SCBN -> "SCBN"
  | CBN -> "CBN"
  | CBN_REF -> "CBN-ref"

let of_name s =
  match String.uppercase_ascii s with
  | "BT" -> BT
  | "OPT" -> OPT
  | "SN" -> SN
  | "DSN" -> DSN
  | "SCBN" -> SCBN
  | "CBN" | "CBNET" -> CBN
  | "CBN-REF" | "CBNREF" -> CBN_REF
  | _ -> invalid_arg (Printf.sprintf "Algo.of_name: unknown algorithm %S" s)

let is_static = function BT | OPT -> true | _ -> false
let is_concurrent = function DSN | CBN | CBN_REF -> true | _ -> false

let run ?(config = Cbnet.Config.default) ?window ?(sink = Obskit.Sink.null)
    algo trace =
  let n = trace.Workloads.Trace.n in
  let runs = Workloads.Trace.to_runs trace in
  match algo with
  | BT -> Baselines.Static.run ~config (Bstnet.Build.balanced n) runs
  | OPT -> Baselines.Static.run ~config (Baselines.Static.opt_tree ~n runs) runs
  | SN -> Baselines.Splaynet.run ~config (Bstnet.Build.balanced n) runs
  | DSN -> Baselines.Displaynet.run ~config (Bstnet.Build.balanced n) runs
  | SCBN -> Cbnet.Sequential.run ~config ~sink (Bstnet.Build.balanced n) runs
  | CBN ->
      Cbnet.Concurrent.run ~config ?window ~sink (Bstnet.Build.balanced n) runs
  | CBN_REF ->
      Cbnet.Concurrent.Reference.run ~config ?window ~sink
        (Bstnet.Build.balanced n) runs
