type t = BT | OPT | SN | DSN | SCBN | CBN | CBN_REF | CBN_FOREST

let all = [ BT; OPT; SN; DSN; SCBN; CBN ]
let dynamic = [ SN; DSN; SCBN; CBN ]
let perf_pair = [ CBN; CBN_REF ]

let name = function
  | BT -> "BT"
  | OPT -> "OPT"
  | SN -> "SN"
  | DSN -> "DSN"
  | SCBN -> "SCBN"
  | CBN -> "CBN"
  | CBN_REF -> "CBN-ref"
  | CBN_FOREST -> "CBN-forest"

let of_name s =
  match String.uppercase_ascii s with
  | "BT" -> BT
  | "OPT" -> OPT
  | "SN" -> SN
  | "DSN" -> DSN
  | "SCBN" -> SCBN
  | "CBN" | "CBNET" -> CBN
  | "CBN-REF" | "CBNREF" -> CBN_REF
  | "CBN-FOREST" | "CBNFOREST" | "FOREST" -> CBN_FOREST
  | _ -> invalid_arg (Printf.sprintf "Algo.of_name: unknown algorithm %S" s)

let is_static = function BT | OPT -> true | _ -> false

let is_concurrent = function
  | DSN | CBN | CBN_REF | CBN_FOREST -> true
  | _ -> false

let run ?(config = Cbnet.Config.default) ?window ?(sink = Obskit.Sink.null)
    ?profile ?(prof_sink = Obskit.Sink.null) ?(check_invariants = false)
    ?(domains = 1) ?(shards = 1) algo trace =
  let n = trace.Workloads.Trace.n in
  let runs = Workloads.Trace.to_runs trace in
  (* Keep the topology so the invariant suite can audit the final
     tree; the concurrent executor also checks internally. *)
  let check t stats =
    if check_invariants then Bstnet.Check.assert_ok (Bstnet.Check.structural t);
    stats
  in
  match algo with
  | BT ->
      let t = Bstnet.Build.balanced n in
      check t (Baselines.Static.run ~config t runs)
  | OPT ->
      let t = Baselines.Static.opt_tree ~n runs in
      check t (Baselines.Static.run ~config t runs)
  | SN ->
      let t = Bstnet.Build.balanced n in
      check t (Baselines.Splaynet.run ~config t runs)
  | DSN ->
      let t = Bstnet.Build.balanced n in
      check t (Baselines.Displaynet.run ~config t runs)
  | SCBN ->
      let t = Bstnet.Build.balanced n in
      check t (Cbnet.Sequential.run ~config ~sink t runs)
  | CBN ->
      Cbnet.Concurrent.run ~config ?window ~sink ?profile ~prof_sink
        ~check_invariants ~domains
        (Bstnet.Build.balanced n) runs
  | CBN_REF ->
      let t = Bstnet.Build.balanced n in
      check t (Cbnet.Concurrent.Reference.run ~config ?window ~sink t runs)
  | CBN_FOREST ->
      (* Forest shard executions are plain Concurrent.run calls at
         domains = 1; profiling a pool fan-out would need a
         synchronized Profile.t, so the forest ignores ?profile. *)
      let r =
        Forest.Overlay.run ~config ?window ~sink ~check_invariants ~domains
          ~shards ~n runs
      in
      r.Forest.Overlay.stats
