let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let ci95 (s : Simkit.Stats.summary) =
  if s.Simkit.Stats.n < 2 then 0.0
  else 1.96 *. s.Simkit.Stats.std /. sqrt (float_of_int s.Simkit.Stats.n)

let measurements_csv cells path =
  with_out path (fun oc ->
      output_string oc
        "workload,algo,seeds,routing_mean,routing_ci95,rotations_mean,\
         rotations_ci95,work_mean,work_ci95,makespan_mean,makespan_ci95,\
         throughput_mean,throughput_ci95,pauses_mean,bypasses_mean,\
         routing_p50,routing_p95,routing_p99,work_p50,work_p95,work_p99,\
         makespan_p50,makespan_p95,makespan_p99,throughput_p50,\
         throughput_p95,throughput_p99,rounds_mean\n";
      List.iter
        (fun (c : Experiment.measurement) ->
          let pcts (s : Simkit.Stats.summary) =
            Printf.sprintf "%f,%f,%f" s.Simkit.Stats.p50 s.Simkit.Stats.p95
              s.Simkit.Stats.p99
          in
          Printf.fprintf oc
            "%s,%s,%d,%f,%f,%f,%f,%f,%f,%f,%f,%f,%f,%f,%f,%s,%s,%s,%s,%f\n"
            c.Experiment.workload
            (Algo.name c.Experiment.algo)
            c.Experiment.seeds c.Experiment.routing.Simkit.Stats.mean
            (ci95 c.Experiment.routing) c.Experiment.rotations.Simkit.Stats.mean
            (ci95 c.Experiment.rotations) c.Experiment.work.Simkit.Stats.mean
            (ci95 c.Experiment.work) c.Experiment.makespan.Simkit.Stats.mean
            (ci95 c.Experiment.makespan) c.Experiment.throughput.Simkit.Stats.mean
            (ci95 c.Experiment.throughput) c.Experiment.pauses.Simkit.Stats.mean
            c.Experiment.bypasses.Simkit.Stats.mean
            (pcts c.Experiment.routing) (pcts c.Experiment.work)
            (pcts c.Experiment.makespan) (pcts c.Experiment.throughput)
            c.Experiment.rounds.Simkit.Stats.mean)
        cells)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers must be finite; our metrics always are, but guard so a
   pathological cell can never emit an unparseable file. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.6f" x else "null"

let bench_json ~commit ~timestamp cells path =
  with_out path (fun oc ->
      Printf.fprintf oc "{\n  \"commit\": \"%s\",\n  \"timestamp\": \"%s\",\n"
        (json_escape commit) (json_escape timestamp);
      output_string oc "  \"cells\": [";
      List.iteri
        (fun i ((c : Experiment.measurement), wall_seconds) ->
          if i > 0 then output_string oc ",";
          (* Simulator-throughput rates: totals across all seeds of the
             cell divided by the cell's wall clock, so artifacts from
             different commits are comparable as rounds/sec trends. *)
          let rate total =
            if wall_seconds > 0.0 then total /. wall_seconds else 0.0
          in
          let msgs = c.Experiment.messages.Simkit.Stats.total in
          let hops = c.Experiment.routing.Simkit.Stats.total -. msgs in
          Printf.fprintf oc
            "\n    {\"workload\": \"%s\", \"algo\": \"%s\", \"seeds\": %d, \
             \"messages\": %s, \"work\": %s, \"makespan\": %s, \
             \"throughput\": %s, \"rotations\": %s, \"pauses\": %s, \
             \"bypasses\": %s, \"rounds\": %s, \"wall_seconds\": %s, \
             \"rounds_per_sec\": %s, \"msgs_per_sec\": %s, \
             \"hops_per_sec\": %s}"
            (json_escape c.Experiment.workload)
            (json_escape (Algo.name c.Experiment.algo))
            c.Experiment.seeds
            (json_float c.Experiment.messages.Simkit.Stats.mean)
            (json_float c.Experiment.work.Simkit.Stats.mean)
            (json_float c.Experiment.makespan.Simkit.Stats.mean)
            (json_float c.Experiment.throughput.Simkit.Stats.mean)
            (json_float c.Experiment.rotations.Simkit.Stats.mean)
            (json_float c.Experiment.pauses.Simkit.Stats.mean)
            (json_float c.Experiment.bypasses.Simkit.Stats.mean)
            (json_float c.Experiment.rounds.Simkit.Stats.mean)
            (json_float wall_seconds)
            (json_float (rate c.Experiment.rounds.Simkit.Stats.total))
            (json_float (rate msgs))
            (json_float (rate hops)))
        cells;
      output_string oc "\n  ]\n}\n")

type scaling_row = {
  workload : string;
  domains : int;
  rounds : int;
  messages : int;
  wall_seconds : float;
}

let scaling_json ~commit ~timestamp ~host_cores rows path =
  with_out path (fun oc ->
      Printf.fprintf oc
        "{\n  \"commit\": \"%s\",\n  \"timestamp\": \"%s\",\n  \"host_cores\": \
         %d,\n"
        (json_escape commit) (json_escape timestamp) host_cores;
      output_string oc "  \"rows\": [";
      List.iteri
        (fun i (r : scaling_row) ->
          if i > 0 then output_string oc ",";
          let rate total =
            if r.wall_seconds > 0.0 then float_of_int total /. r.wall_seconds
            else 0.0
          in
          Printf.fprintf oc
            "\n    {\"workload\": \"%s\", \"domains\": %d, \"rounds\": %d, \
             \"messages\": %d, \"wall_seconds\": %s, \"rounds_per_sec\": %s, \
             \"msgs_per_sec\": %s}"
            (json_escape r.workload) r.domains r.rounds r.messages
            (json_float r.wall_seconds)
            (json_float (rate r.rounds))
            (json_float (rate r.messages)))
        rows;
      output_string oc "\n  ]\n}\n")

type forest_row = {
  workload : string;
  n : int;
  shards : int;
  domains : int;
  rounds : int;
  messages : int;
  requests : int;
  cross : int;
  wall_seconds : float;
}

let forest_json ~commit ~timestamp ~host_cores rows path =
  with_out path (fun oc ->
      Printf.fprintf oc
        "{\n  \"commit\": \"%s\",\n  \"timestamp\": \"%s\",\n  \"host_cores\": \
         %d,\n"
        (json_escape commit) (json_escape timestamp) host_cores;
      output_string oc "  \"rows\": [";
      List.iteri
        (fun i (r : forest_row) ->
          if i > 0 then output_string oc ",";
          let rate total =
            if r.wall_seconds > 0.0 then float_of_int total /. r.wall_seconds
            else 0.0
          in
          Printf.fprintf oc
            "\n    {\"workload\": \"%s\", \"n\": %d, \"shards\": %d, \
             \"domains\": %d, \"rounds\": %d, \"messages\": %d, \"requests\": \
             %d, \"cross\": %d, \"wall_seconds\": %s, \"rounds_per_sec\": %s, \
             \"msgs_per_sec\": %s}"
            (json_escape r.workload) r.n r.shards r.domains r.rounds r.messages
            r.requests r.cross
            (json_float r.wall_seconds)
            (json_float (rate r.rounds))
            (json_float (rate r.messages)))
        rows;
      output_string oc "\n  ]\n}\n")

type serve_row = {
  shape : string;
  n : int;
  seed : int;
  requests : int;
  admitted : int;
  shed : int;
  batches : int;
  decays : int;
  busy_rounds : int;
  idle_rounds : int;
  messages : int;
  makespan : int;
  q_max : int;
  q_p50 : float;
  q_p95 : float;
  q_p99 : float;
  wall_seconds : float;
}

(* Serve-mode bench rows (bench serve-smoke): one row per load shape,
   carrying the sustained-rate and queue-depth picture the
   [compare_bench --serve] advisory diff consumes. *)
let serve_json ~commit ~timestamp rows path =
  with_out path (fun oc ->
      Printf.fprintf oc "{\n  \"commit\": \"%s\",\n  \"timestamp\": \"%s\",\n"
        (json_escape commit) (json_escape timestamp);
      output_string oc "  \"rows\": [";
      List.iteri
        (fun i (r : serve_row) ->
          if i > 0 then output_string oc ",";
          let rate total =
            if r.wall_seconds > 0.0 then float_of_int total /. r.wall_seconds
            else 0.0
          in
          Printf.fprintf oc
            "\n    {\"shape\": \"%s\", \"n\": %d, \"seed\": %d, \"requests\": \
             %d, \"admitted\": %d, \"shed\": %d, \"batches\": %d, \"decays\": \
             %d, \"busy_rounds\": %d, \"idle_rounds\": %d, \"messages\": %d, \
             \"makespan\": %d, \"q_max\": %d, \"q_p50\": %s, \"q_p95\": %s, \
             \"q_p99\": %s, \"wall_seconds\": %s, \"rounds_per_sec\": %s, \
             \"msgs_per_sec\": %s}"
            (json_escape r.shape) r.n r.seed r.requests r.admitted r.shed
            r.batches r.decays r.busy_rounds r.idle_rounds r.messages
            r.makespan r.q_max (json_float r.q_p50) (json_float r.q_p95)
            (json_float r.q_p99)
            (json_float r.wall_seconds)
            (json_float (rate r.busy_rounds))
            (json_float (rate r.messages)))
        rows;
      output_string oc "\n  ]\n}\n")

type chaos_row = {
  workload : string;
  plan : string;
  seed : int;
  stats : Cbnet.Run_stats.t;
  clean_makespan : int;
  wall_seconds : float;
}

let chaos_json ~commit ~timestamp rows path =
  with_out path (fun oc ->
      Printf.fprintf oc "{\n  \"commit\": \"%s\",\n  \"timestamp\": \"%s\",\n"
        (json_escape commit) (json_escape timestamp);
      output_string oc "  \"rows\": [";
      List.iteri
        (fun i r ->
          if i > 0 then output_string oc ",";
          let s = r.stats in
          let c = s.Cbnet.Run_stats.chaos in
          let inflation =
            if r.clean_makespan > 0 then
              float_of_int s.Cbnet.Run_stats.makespan
              /. float_of_int r.clean_makespan
            else 0.0
          in
          Printf.fprintf oc
            "\n    {\"workload\": \"%s\", \"plan\": \"%s\", \"seed\": %d, \
             \"messages\": %d, \"makespan\": %d, \"clean_makespan\": %d, \
             \"makespan_inflation\": %s, \"rounds\": %d, \"crashes\": %d, \
             \"parks\": %d, \"lost\": %d, \"duplicated\": %d, \"delayed\": \
             %d, \"aborted_rotations\": %d, \"repairs\": %d, \
             \"wall_seconds\": %s}"
            (json_escape r.workload) (json_escape r.plan) r.seed
            s.Cbnet.Run_stats.messages s.Cbnet.Run_stats.makespan
            r.clean_makespan (json_float inflation) s.Cbnet.Run_stats.rounds
            c.Cbnet.Run_stats.crashes c.Cbnet.Run_stats.parks
            c.Cbnet.Run_stats.lost c.Cbnet.Run_stats.duplicated
            c.Cbnet.Run_stats.delayed c.Cbnet.Run_stats.aborted_rotations
            c.Cbnet.Run_stats.repairs (json_float r.wall_seconds))
        rows;
      output_string oc "\n  ]\n}\n")

let timeline_csv points path =
  with_out path (fun oc ->
      output_string oc
        "window,first_message,messages,amortized_routing,rotations,phi,mean_distance\n";
      List.iter
        (fun (p : Timeline.point) ->
          Printf.fprintf oc "%d,%d,%d,%f,%d,%f,%f\n" p.Timeline.window_index
            p.Timeline.first_message p.Timeline.messages
            p.Timeline.amortized_routing p.Timeline.rotations p.Timeline.phi
            p.Timeline.mean_distance)
        points)

(* Chrome trace-event JSON (the format chrome://tracing and Perfetto
   load).  Timestamps are microseconds relative to the earliest event;
   each OCaml domain becomes one "thread" track. *)
let chrome_trace ?(dropped = 0) events path =
  let module E = Obskit.Event in
  let t0 =
    List.fold_left
      (fun acc (e : E.t) -> Float.min acc e.E.ts_us)
      Float.infinity events
  in
  let t0 = if Float.is_finite t0 then t0 else 0.0 in
  let t_last =
    List.fold_left
      (fun acc (e : E.t) -> Float.max acc (e.E.ts_us -. t0))
      0.0 events
  in
  let b = Buffer.create 65536 in
  let sp fmt = Printf.sprintf fmt in
  let instant ~ts ~tid name args =
    sp "{\"ph\":\"i\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":\"%s\",\"s\":\"t\",\"args\":{%s}}"
      tid (json_float ts) (json_escape name) args
  in
  let counter ~ts ~tid name args =
    sp "{\"ph\":\"C\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":\"%s\",\"args\":{%s}}"
      tid (json_float ts) (json_escape name) args
  in
  let of_event (e : E.t) =
    let ts = e.E.ts_us -. t0 in
    let tid = e.E.domain in
    match e.E.payload with
    | E.Span { name; phase } ->
        [
          sp "{\"ph\":\"%s\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":\"%s\",\"cat\":\"span\"}"
            (match phase with E.Begin -> "B" | E.End -> "E")
            tid (json_float ts) (json_escape name);
        ]
    | E.Round_begin { round; active; live_data } ->
        [
          instant ~ts ~tid "round_begin"
            (sp "\"round\":%d,\"active\":%d,\"live_data\":%d" round active
               live_data);
          counter ~ts ~tid "active_messages"
            (sp "\"active\":%d,\"live_data\":%d" active live_data);
        ]
    | E.Step_planned { round; msg; kind; rotate; delta_phi } ->
        [
          instant ~ts ~tid "step_planned"
            (sp
               "\"round\":%d,\"msg\":%d,\"kind\":\"%s\",\"rotate\":%b,\"delta_phi\":%s"
               round msg (json_escape kind) rotate (json_float delta_phi));
        ]
    | E.Cluster_claimed { round; msg; cluster; rotate } ->
        [
          instant ~ts ~tid "cluster_claimed"
            (sp "\"round\":%d,\"msg\":%d,\"size\":%d,\"rotate\":%b" round msg
               (List.length cluster) rotate);
        ]
    | E.Conflict { round; msg; kind } ->
        [
          instant ~ts ~tid
            (sp "conflict_%s" (E.conflict_to_string kind))
            (sp "\"round\":%d,\"msg\":%d" round msg);
        ]
    | E.Rotation { round; msg; node; count; delta_phi } ->
        [
          instant ~ts ~tid "rotation"
            (sp "\"round\":%d,\"msg\":%d,\"node\":%d,\"count\":%d,\"delta_phi\":%s"
               round msg node count (json_float delta_phi));
        ]
    | E.Phi_sample { round; phi } ->
        [
          counter ~ts ~tid "phi"
            (sp "\"phi\":%s,\"round\":%d" (json_float phi) round);
        ]
    | E.Msg_delivered { round; msg; data; birth; hops; rotations } ->
        [
          instant ~ts ~tid "msg_delivered"
            (sp
               "\"round\":%d,\"msg\":%d,\"data\":%b,\"latency\":%d,\"hops\":%d,\"rotations\":%d"
               round msg data (round - birth) hops rotations);
        ]
    | E.Pool_task { task; phase = E.Enqueue; queue_depth; _ } ->
        [
          counter ~ts ~tid "pool_queue_depth"
            (sp "\"depth\":%d" queue_depth);
          instant ~ts ~tid "pool_enqueue" (sp "\"task\":%d" task);
        ]
    | E.Pool_task { phase = E.Start; _ } -> []
    (* One track per team member (tid = member id) so the per-round
       plan-wave shares line up as lanes. *)
    | E.Plan_wave { round; member; planned } ->
        [
          instant ~ts ~tid:member "plan_wave"
            (sp "\"round\":%d,\"member\":%d,\"planned\":%d" round member
               planned);
        ]
    (* One counter track per phase so Perfetto renders the per-round
       phase times as stacked lanes. *)
    | E.Phase_time { round; phase; elapsed_us } ->
        [
          counter ~ts ~tid (sp "phase_us:%s" phase)
            (sp "\"us\":%s,\"round\":%d" (json_float elapsed_us) round);
        ]
    | E.Pool_task { task; phase = E.Done; elapsed_us; _ } ->
        [
          sp
            "{\"ph\":\"X\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"dur\":%s,\"name\":\"task %d\",\"cat\":\"pool\"}"
            tid
            (json_float (ts -. elapsed_us))
            (json_float elapsed_us) task;
        ]
    (* Fault-injection events (Faultkit).  Crash windows render as
       "down" slices on a dedicated per-node process (pid 2, tid =
       node id), so Perfetto shows node availability as lanes. *)
    | E.Node_down { round; node; until } ->
        [
          sp
            "{\"ph\":\"B\",\"pid\":2,\"tid\":%d,\"ts\":%s,\"name\":\"down\",\"cat\":\"fault\",\"args\":{\"round\":%d,\"until\":%d}}"
            node (json_float ts) round until;
        ]
    | E.Node_up { round; node } ->
        [
          sp
            "{\"ph\":\"E\",\"pid\":2,\"tid\":%d,\"ts\":%s,\"name\":\"down\",\"cat\":\"fault\",\"args\":{\"round\":%d}}"
            node (json_float ts) round;
        ]
    | E.Fault_injected { round; kind; node; msg } ->
        [
          instant ~ts ~tid
            (sp "fault_%s" (E.fault_to_string kind))
            (sp "\"round\":%d,\"node\":%d,\"msg\":%d" round node msg);
        ]
    | E.Msg_lost { round; msg; node } ->
        [
          instant ~ts ~tid "msg_lost"
            (sp "\"round\":%d,\"msg\":%d,\"node\":%d" round msg node);
        ]
    | E.Repair_begin { round; node } ->
        [
          sp
            "{\"ph\":\"B\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":\"repair\",\"cat\":\"fault\",\"args\":{\"round\":%d,\"node\":%d}}"
            tid (json_float ts) round node;
        ]
    | E.Repair_done { round; node } ->
        [
          sp
            "{\"ph\":\"E\",\"pid\":1,\"tid\":%d,\"ts\":%s,\"name\":\"repair\",\"cat\":\"fault\",\"args\":{\"round\":%d,\"node\":%d}}"
            tid (json_float ts) round node;
        ]
  in
  let domains =
    List.sort_uniq compare (List.map (fun (e : E.t) -> e.E.domain) events)
  in
  let fault_nodes =
    List.sort_uniq compare
      (List.filter_map
         (fun (e : E.t) ->
           match e.E.payload with
           | E.Node_down { node; _ } -> Some node
           | _ -> None)
         events)
  in
  let meta =
    sp
      "{\"ph\":\"M\",\"pid\":1,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cbnet-sim\"}}"
    :: List.map
         (fun d ->
           sp
             "{\"ph\":\"M\",\"pid\":1,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"domain %d\"}}"
             d d)
         domains
    @ (if fault_nodes = [] then []
       else
         [
           sp
             "{\"ph\":\"M\",\"pid\":2,\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":\"cbnet-nodes\"}}";
         ])
    @ List.map
        (fun v ->
          sp
            "{\"ph\":\"M\",\"pid\":2,\"tid\":%d,\"name\":\"thread_name\",\"args\":{\"name\":\"node %d\"}}"
            v v)
        fault_nodes
  in
  (* A ring sink that overflowed truncated the trace: surface the drop
     count as a trailing instant so a viewer (or grep) can tell a
     complete trace from a clipped one. *)
  let trailer =
    if dropped <= 0 then []
    else
      [
        instant ~ts:t_last ~tid:0 "events_dropped"
          (sp "\"dropped\":%d" dropped);
      ]
  in
  let entries = meta @ List.concat_map of_event events @ trailer in
  Buffer.add_string b "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  List.iteri
    (fun i s ->
      if i > 0 then Buffer.add_string b ",\n";
      Buffer.add_string b s)
    entries;
  Buffer.add_string b "\n]}\n";
  with_out path (fun oc -> Buffer.output_buffer oc b)

(* Split [name{label="x"}] into the base name and the label set
   (braces included; "" when unlabeled) so histogram series can splice
   an [le] label into an existing set. *)
let split_labels name =
  match String.index_opt name '{' with
  | Some i -> (String.sub name 0 i, String.sub name i (String.length name - i))
  | None -> (name, "")

let with_le labels le =
  if labels = "" then Printf.sprintf "{le=\"%s\"}" le
  else
    Printf.sprintf "%s,le=\"%s\"}"
      (String.sub labels 0 (String.length labels - 1))
      le

(* Prometheus text exposition (version 0.0.4).  Registry counters keep
   their label sets verbatim in the key ([name{kind="pause"}]), so the
   exporter only has to group adjacent keys by base name for the
   [# TYPE] lines.  Streams are {!Profkit.Histogram}s and expose as
   proper histograms — cumulative [_bucket{le=...}] series over the
   non-empty log buckets plus the [+Inf] bucket, [_sum] and [_count] —
   so a scraper can aggregate and re-quantile them, which the previous
   exact-quantile summaries did not allow. *)
let prometheus_string ?(events_dropped = 0) reg =
  let buf = Buffer.create 1024 in
  let last = ref "" in
  List.iter
    (fun (name, v) ->
      let bn, _ = split_labels name in
      if bn <> !last then begin
        Printf.bprintf buf "# TYPE %s counter\n" bn;
        last := bn
      end;
      Printf.bprintf buf "%s %d\n" name v)
    (Simkit.Metrics.counters reg);
  Printf.bprintf buf "# TYPE cbnet_events_dropped_total counter\n";
  Printf.bprintf buf "cbnet_events_dropped_total %d\n" events_dropped;
  let last = ref "" in
  List.iter
    (fun (name, h) ->
      let bn, labels = split_labels name in
      if bn <> !last then begin
        Printf.bprintf buf "# TYPE %s histogram\n" bn;
        last := bn
      end;
      List.iter
        (fun (le, cum) ->
          Printf.bprintf buf "%s_bucket%s %d\n" bn
            (with_le labels (Printf.sprintf "%.9g" le))
            cum)
        (Profkit.Histogram.buckets h);
      Printf.bprintf buf "%s_bucket%s %d\n" bn (with_le labels "+Inf")
        (Profkit.Histogram.count h);
      Printf.bprintf buf "%s_sum%s %.6f\n" bn labels
        (Profkit.Histogram.sum h);
      Printf.bprintf buf "%s_count%s %d\n" bn labels
        (Profkit.Histogram.count h))
    (Simkit.Metrics.histograms reg);
  Buffer.contents buf

let prometheus ?events_dropped reg path =
  with_out path (fun oc ->
      output_string oc (prometheus_string ?events_dropped reg))

(* Phase-attribution profile of one run (Profkit.Profile): per-phase
   totals with their share of the round wall, per-round phase/wall
   quantiles, and the speculation counters — the machine-readable twin
   of the [bench perf --profile] / [cbnet report profile] table, and
   the input of [compare_bench --profile]. *)
let profile_json ~commit ~timestamp ~workload ~domains profile path =
  let module P = Profkit.Profile in
  let module H = Profkit.Histogram in
  with_out path (fun oc ->
      let wall = P.wall_us profile in
      Printf.fprintf oc
        "{\n\
        \  \"commit\": \"%s\",\n\
        \  \"timestamp\": \"%s\",\n\
        \  \"workload\": \"%s\",\n\
        \  \"domains\": %d,\n\
        \  \"rounds\": %d,\n\
        \  \"wall_us\": %s,\n"
        (json_escape commit) (json_escape timestamp) (json_escape workload)
        domains (P.rounds profile) (json_float wall);
      output_string oc "  \"phases\": [";
      List.iteri
        (fun i phase ->
          if i > 0 then output_string oc ",";
          let total = P.total_us profile phase in
          let share = if wall > 0. then total /. wall else 0. in
          let h = P.hist profile phase in
          Printf.fprintf oc
            "\n    {\"phase\": \"%s\", \"total_us\": %s, \"share\": %s, \
             \"round_p50_us\": %s, \"round_p95_us\": %s, \"round_p99_us\": \
             %s, \"round_max_us\": %s}"
            (json_escape (P.phase_name phase))
            (json_float total) (json_float share)
            (json_float (H.p50 h))
            (json_float (H.p95 h))
            (json_float (H.p99 h))
            (json_float (H.max h)))
        P.phases;
      output_string oc "\n  ],\n";
      let rh = P.wall_hist profile in
      Printf.fprintf oc
        "  \"round_us\": {\"p50\": %s, \"p95\": %s, \"p99\": %s, \"max\": \
         %s},\n"
        (json_float (H.p50 rh))
        (json_float (H.p95 rh))
        (json_float (H.p99 rh))
        (json_float (H.max rh));
      output_string oc "  \"counters\": {";
      List.iteri
        (fun i (k, v) ->
          if i > 0 then output_string oc ", ";
          Printf.fprintf oc "\"%s\": %d" (json_escape k) v)
        (P.counters profile);
      output_string oc "},\n";
      Printf.fprintf oc
        "  \"speculation\": {\"stamp_hit_rate\": %s, \"avg_wave_imbalance\": \
         %s, \"max_wave_imbalance\": %s}\n"
        (json_float (P.stamp_hit_rate profile))
        (json_float (P.avg_imbalance profile))
        (json_float (P.max_imbalance profile));
      output_string oc "}\n")

let latencies_csv latencies path =
  with_out path (fun oc ->
      output_string oc "latency\n";
      Array.iter (fun l -> Printf.fprintf oc "%f\n" l) latencies;
      if Array.length latencies > 0 then begin
        let s = Simkit.Stats.of_array latencies in
        let sum = Simkit.Stats.summary s in
        Printf.fprintf oc "# n = %d\n" sum.Simkit.Stats.n;
        Printf.fprintf oc "# mean = %f\n" sum.Simkit.Stats.mean;
        Printf.fprintf oc "# std = %f\n" sum.Simkit.Stats.std;
        Printf.fprintf oc "# min = %f\n" sum.Simkit.Stats.min;
        Printf.fprintf oc "# max = %f\n" sum.Simkit.Stats.max;
        List.iter
          (fun (label, v) -> Printf.fprintf oc "# %s = %f\n" label v)
          [
            ("p50", sum.Simkit.Stats.p50);
            ("p95", sum.Simkit.Stats.p95);
            ("p99", sum.Simkit.Stats.p99);
          ]
      end)
