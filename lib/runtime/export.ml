let with_out path f =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> f oc)

let ci95 (s : Simkit.Stats.summary) =
  if s.Simkit.Stats.n < 2 then 0.0
  else 1.96 *. s.Simkit.Stats.std /. sqrt (float_of_int s.Simkit.Stats.n)

let measurements_csv cells path =
  with_out path (fun oc ->
      output_string oc
        "workload,algo,seeds,routing_mean,routing_ci95,rotations_mean,\
         rotations_ci95,work_mean,work_ci95,makespan_mean,makespan_ci95,\
         throughput_mean,throughput_ci95,pauses_mean,bypasses_mean\n";
      List.iter
        (fun (c : Experiment.measurement) ->
          Printf.fprintf oc "%s,%s,%d,%f,%f,%f,%f,%f,%f,%f,%f,%f,%f,%f,%f\n"
            c.Experiment.workload
            (Algo.name c.Experiment.algo)
            c.Experiment.seeds c.Experiment.routing.Simkit.Stats.mean
            (ci95 c.Experiment.routing) c.Experiment.rotations.Simkit.Stats.mean
            (ci95 c.Experiment.rotations) c.Experiment.work.Simkit.Stats.mean
            (ci95 c.Experiment.work) c.Experiment.makespan.Simkit.Stats.mean
            (ci95 c.Experiment.makespan) c.Experiment.throughput.Simkit.Stats.mean
            (ci95 c.Experiment.throughput) c.Experiment.pauses.Simkit.Stats.mean
            c.Experiment.bypasses.Simkit.Stats.mean)
        cells)

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers must be finite; our metrics always are, but guard so a
   pathological cell can never emit an unparseable file. *)
let json_float x =
  if Float.is_finite x then Printf.sprintf "%.6f" x else "null"

let bench_json ~commit ~timestamp cells path =
  with_out path (fun oc ->
      Printf.fprintf oc "{\n  \"commit\": \"%s\",\n  \"timestamp\": \"%s\",\n"
        (json_escape commit) (json_escape timestamp);
      output_string oc "  \"cells\": [";
      List.iteri
        (fun i ((c : Experiment.measurement), wall_seconds) ->
          if i > 0 then output_string oc ",";
          Printf.fprintf oc
            "\n    {\"workload\": \"%s\", \"algo\": \"%s\", \"seeds\": %d, \
             \"work\": %s, \"makespan\": %s, \"throughput\": %s, \
             \"rotations\": %s, \"wall_seconds\": %s}"
            (json_escape c.Experiment.workload)
            (json_escape (Algo.name c.Experiment.algo))
            c.Experiment.seeds
            (json_float c.Experiment.work.Simkit.Stats.mean)
            (json_float c.Experiment.makespan.Simkit.Stats.mean)
            (json_float c.Experiment.throughput.Simkit.Stats.mean)
            (json_float c.Experiment.rotations.Simkit.Stats.mean)
            (json_float wall_seconds))
        cells;
      output_string oc "\n  ]\n}\n")

let timeline_csv points path =
  with_out path (fun oc ->
      output_string oc
        "window,first_message,messages,amortized_routing,rotations,phi,mean_distance\n";
      List.iter
        (fun (p : Timeline.point) ->
          Printf.fprintf oc "%d,%d,%d,%f,%d,%f,%f\n" p.Timeline.window_index
            p.Timeline.first_message p.Timeline.messages
            p.Timeline.amortized_routing p.Timeline.rotations p.Timeline.phi
            p.Timeline.mean_distance)
        points)

let latencies_csv latencies path =
  with_out path (fun oc ->
      output_string oc "latency\n";
      Array.iter (fun l -> Printf.fprintf oc "%f\n" l) latencies;
      if Array.length latencies > 0 then begin
        List.iter
          (fun p ->
            Printf.fprintf oc "# p%.0f = %f\n" p
              (Simkit.Stats.percentile latencies p))
          [ 50.0; 90.0; 99.0 ]
      end)
