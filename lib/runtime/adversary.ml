module T = Bstnet.Topology

let deepest_leaf t =
  let best = ref (T.root t) in
  let best_depth = ref (-1) in
  T.iter_subtree t (T.root t) (fun v ->
      let d = T.depth t v in
      if d > !best_depth || (d = !best_depth && v < !best) then begin
        best := v;
        best_depth := d
      end);
  !best

let combine (a : Cbnet.Run_stats.t) (b : Cbnet.Run_stats.t) =
  {
    Cbnet.Run_stats.messages = a.messages + b.messages;
    routing_hops = a.routing_hops + b.routing_hops;
    routing_cost = a.routing_cost + b.routing_cost;
    rotations = a.rotations + b.rotations;
    work = a.work +. b.work;
    makespan = a.makespan + b.makespan;
    throughput = 0.0;
    steps = a.steps + b.steps;
    pauses = a.pauses + b.pauses;
    bypasses = a.bypasses + b.bypasses;
    update_messages = a.update_messages + b.update_messages;
    rounds = a.rounds + b.rounds;
    chaos =
      {
        Cbnet.Run_stats.crashes = a.chaos.crashes + b.chaos.crashes;
        parks = a.chaos.parks + b.chaos.parks;
        lost = a.chaos.lost + b.chaos.lost;
        duplicated = a.chaos.duplicated + b.chaos.duplicated;
        delayed = a.chaos.delayed + b.chaos.delayed;
        aborted_rotations =
          a.chaos.aborted_rotations + b.chaos.aborted_rotations;
        repairs = a.chaos.repairs + b.chaos.repairs;
      };
  }

let online_worst_case ~m t ~next exec =
  if m < 1 then invalid_arg "Adversary.online_worst_case: m must be >= 1";
  let acc = ref None in
  for _ = 1 to m do
    let s, d = next t in
    let stats = exec [| (0, s, d) |] in
    acc := Some (match !acc with None -> stats | Some prev -> combine prev stats)
  done;
  match !acc with Some stats -> stats | None -> assert false

let deep_access t =
  let v = deepest_leaf t in
  let r = T.root t in
  if v = r then (v, (v + 1) mod T.n t) else (v, r)

let run_deep_access_sequential ?config ~m t =
  online_worst_case ~m t ~next:deep_access (fun trace ->
      Cbnet.Sequential.run ?config t trace)

let run_deep_access_concurrent ?config ?window ~m t =
  online_worst_case ~m t ~next:deep_access (fun trace ->
      Cbnet.Concurrent.run ?config ?window t trace)
