(** Adversarial request generators — the worst-case σ of the amortized
    analysis (Def. 3).  Unlike the statistical families these react to
    the *current* topology, always requesting the most expensive pair,
    and are used to stress the formal bounds (a heuristic like
    move-to-root degenerates here; semi-splaying must not). *)

val deepest_leaf : Bstnet.Topology.t -> int
(** A node of maximum depth (ties broken by smallest key). *)

val online_worst_case :
  m:int ->
  Bstnet.Topology.t ->
  next:(Bstnet.Topology.t -> int * int) ->
  ((int * int * int) array -> Cbnet.Run_stats.t) ->
  Cbnet.Run_stats.t
(** Drive an executor one request at a time, choosing each request
    with [next] against the tree state the previous request left
    behind.  The executor is called once per single-request trace;
    statistics are summed. *)

val deep_access : Bstnet.Topology.t -> int * int
(** Adversary strategy: route from the current deepest leaf to the
    current root's key — maximal path length every time. *)

val run_deep_access_sequential :
  ?config:Cbnet.Config.t -> m:int -> Bstnet.Topology.t -> Cbnet.Run_stats.t
(** Convenience: sequential CBNet under the {!deep_access} adversary. *)

val run_deep_access_concurrent :
  ?config:Cbnet.Config.t ->
  ?window:int ->
  m:int ->
  Bstnet.Topology.t ->
  Cbnet.Run_stats.t
(** Convenience: the concurrent executor under the {!deep_access}
    adversary, one single-request trace at a time (so every request
    reacts to the tree the previous one left behind). *)
