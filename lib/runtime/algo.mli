(** The algorithm roster of the paper's evaluation (Sec. IX-A), behind
    one interface: give a trace, get {!Cbnet.Run_stats.t}. *)

type t =
  | BT  (** Static balanced tree. *)
  | OPT  (** Static optimal tree (knows the whole demand). *)
  | SN  (** SplayNet, sequential. *)
  | DSN  (** DiSplayNet, concurrent. *)
  | SCBN  (** CBNet, sequential (Algorithm 1). *)
  | CBN  (** CBNet, concurrent (Sec. VII). *)
  | CBN_REF
      (** The list-based reference twin of CBN
          ({!Cbnet.Concurrent.Reference}) — identical results, original
          allocation profile; [bench perf] times it against CBN.  Not
          part of {!all}: it adds nothing to the paper's matrix. *)
  | CBN_FOREST
      (** The sharded forest overlay ({!Forest.Overlay}): CBN on k
          independent range-sharded trees behind a directory
          ([?shards]; docs/SCALING.md).  Not part of {!all}: at
          [shards = 1] it is bit-identical to CBN, and the paper's
          matrix is single-tree. *)

val all : t list
val dynamic : t list
(** The four self-adjusting algorithms (Fig. 4 excludes BT and OPT). *)

val perf_pair : t list
(** The algorithms timed by the [bench perf] throughput
    microbenchmark: the concurrent CBNet executor (and, when present,
    its list-based reference twin). *)

val name : t -> string
val of_name : string -> t
(** @raise Invalid_argument for an unknown name. *)

val is_static : t -> bool
val is_concurrent : t -> bool

val run :
  ?config:Cbnet.Config.t ->
  ?window:int ->
  ?sink:Obskit.Sink.t ->
  ?profile:Profkit.Profile.t ->
  ?prof_sink:Obskit.Sink.t ->
  ?check_invariants:bool ->
  ?domains:int ->
  ?shards:int ->
  t ->
  Workloads.Trace.t ->
  Cbnet.Run_stats.t
(** Build the initial topology (balanced for all dynamic algorithms
    and BT; the DP tree for OPT), execute the trace, return the
    statistics.  Each call starts from a fresh topology.

    [sink] (default null) forwards telemetry to the CBNet executions
    ({!Cbnet.Sequential} for SCBN, {!Cbnet.Concurrent} for CBN); the
    baseline algorithms are not instrumented and ignore it.

    [domains] (default 1) parallelizes the CBN round loop across that
    many domains (see {!Cbnet.Concurrent}); results are bit-identical
    at every domain count.  For CBN_FOREST it instead fans shard
    executions out across domains ({!Forest.Overlay.run}) — equally
    bit-identical.  The other algorithms ignore it.

    [shards] (default 1) sizes the CBN_FOREST directory
    ({!Forest.Directory}); the other algorithms ignore it.
    CBN_FOREST ignores [profile]/[prof_sink]: its shard executions
    may fan out across a pool and {!Profkit.Profile.t} is
    unsynchronized.

    [profile] / [prof_sink] enable phase-level self-profiling on the
    CBN executor (see {!Cbnet.Concurrent.run} and
    {!Profkit.Profile}); the other algorithms ignore them.  Profiling
    never changes results: a profiled CBN run is bit-identical to an
    unprofiled one.

    [check_invariants] (default [false]) audits the final tree with
    {!Bstnet.Check.structural} and raises [Failure] on a violation —
    for every algorithm, since all of them mutate (or build) a
    topology whose structural invariants must hold at the end.
    Weight sums are excluded: they are exact only relative to
    in-flight weight-update deposits, so concurrent (and even some
    sequential) executions legitimately end with unreconciled
    counters. *)
