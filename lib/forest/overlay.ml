type result = {
  stats : Cbnet.Run_stats.t;
  per_shard : Cbnet.Run_stats.t array;
  topologies : Bstnet.Topology.t array;
  directory : Directory.t;
  requests : int;
  intra : int;
  cross : int;
  directory_hops : int;
}

(* Fold the per-shard statistics into one Run_stats.t on the global
   clock.  The arithmetic mirrors Run_stats.of_iter exactly, so a
   1-shard forest (cross = 0) reproduces the single-tree statistics
   bit for bit. *)
let combine ~config ~cross per_shard first_births =
  let messages = ref 0 in
  let hops = ref 0 in
  let rotations = ref 0 in
  let steps = ref 0 in
  let pauses = ref 0 in
  let bypasses = ref 0 in
  let updates = ref 0 in
  let rounds = ref 0 in
  let first = ref max_int in
  let last = ref 0 in
  Array.iteri
    (fun s (st : Cbnet.Run_stats.t) ->
      messages := !messages + st.Cbnet.Run_stats.messages;
      hops := !hops + st.Cbnet.Run_stats.routing_hops;
      rotations := !rotations + st.Cbnet.Run_stats.rotations;
      steps := !steps + st.Cbnet.Run_stats.steps;
      pauses := !pauses + st.Cbnet.Run_stats.pauses;
      bypasses := !bypasses + st.Cbnet.Run_stats.bypasses;
      updates := !updates + st.Cbnet.Run_stats.update_messages;
      if st.Cbnet.Run_stats.rounds > !rounds then
        rounds := st.Cbnet.Run_stats.rounds;
      if st.Cbnet.Run_stats.messages > 0 then begin
        (* Place the shard's makespan on the global birth clock: its
           legs' births are global, so first birth + makespan is the
           shard's last delivery time. *)
        let fb = first_births.(s) in
        if fb < !first then first := fb;
        let le = fb + st.Cbnet.Run_stats.makespan in
        if le > !last then last := le
      end)
    per_shard;
  let routing_hops = !hops + cross in
  let routing_cost = routing_hops + !messages in
  let makespan = if !messages = 0 then 0 else max 1 (!last - !first) in
  {
    Cbnet.Run_stats.messages = !messages;
    routing_hops;
    routing_cost;
    rotations = !rotations;
    work =
      float_of_int routing_cost
      +. (config.Cbnet.Config.rotation_cost *. float_of_int !rotations);
    makespan;
    throughput =
      (if !messages = 0 then 0.0
       else float_of_int !messages /. float_of_int makespan);
    steps = !steps;
    pauses = !pauses;
    bypasses = !bypasses;
    update_messages = !updates;
    rounds = !rounds;
    chaos = Cbnet.Run_stats.no_chaos;
  }

(* Execute every shard's sub-trace, in the caller (shard order) or
   fanned out over a pool.  Collection is by shard index either way,
   and each shard's execution touches only its own topology and
   arena, so the two paths are bit-identical. *)
let exec ~config ~window ~max_rounds ~sink ~check_invariants ~domains
    ~with_latencies ~shards ~n trace =
  if domains < 1 then
    invalid_arg "Forest.Overlay.run: domains must be >= 1";
  let dir = Directory.create ~n ~shards in
  let router = Router.build dir trace in
  let k = Directory.shards dir in
  let run_shard s =
    let topo = Bstnet.Build.balanced (Directory.size dir s) in
    let sub = router.Router.runs.(s) in
    if with_latencies then
      let stats, lats =
        Cbnet.Concurrent.run_with_latencies ~config ?window ?max_rounds ~sink
          ~check_invariants topo sub
      in
      (topo, stats, lats)
    else
      let stats =
        Cbnet.Concurrent.run ~config ?window ?max_rounds ~sink
          ~check_invariants topo sub
      in
      (topo, stats, [||])
  in
  let executed =
    (* An enabled sink forces the sequential path so the telemetry
       stream is deterministic (shard-major) without synchronizing
       the sink. *)
    if domains <= 1 || k = 1 || Obskit.Sink.enabled sink then begin
      let first = run_shard 0 in
      let out = Array.make k first in
      for s = 1 to k - 1 do
        out.(s) <- run_shard s
      done;
      out
    end
    else
      Simkit.Pool.with_pool ~num_domains:(min domains k) (fun p ->
          Simkit.Pool.map p k run_shard)
  in
  let topologies = Array.map (fun (t, _, _) -> t) executed in
  let per_shard = Array.map (fun (_, s, _) -> s) executed in
  let latencies = Array.map (fun (_, _, l) -> l) executed in
  let stats =
    combine ~config ~cross:router.Router.cross per_shard
      router.Router.first_births
  in
  ( {
      stats;
      per_shard;
      topologies;
      directory = dir;
      requests = Array.length trace;
      intra = router.Router.intra;
      cross = router.Router.cross;
      directory_hops = router.Router.cross;
    },
    latencies )

let run ?(config = Cbnet.Config.default) ?window ?max_rounds
    ?(sink = Obskit.Sink.null) ?(check_invariants = false) ?(domains = 1)
    ?(shards = 1) ~n trace =
  fst
    (exec ~config ~window ~max_rounds ~sink ~check_invariants ~domains
       ~with_latencies:false ~shards ~n trace)

let run_with_latencies ?(config = Cbnet.Config.default) ?window ?max_rounds
    ?(sink = Obskit.Sink.null) ?(check_invariants = false) ?(domains = 1)
    ?(shards = 1) ~n trace =
  exec ~config ~window ~max_rounds ~sink ~check_invariants ~domains
    ~with_latencies:true ~shards ~n trace
