(** The sharded CBNet forest: k independent single-tree executors
    behind one directory.

    {!run} partitions the key space with {!Directory}, routes the
    trace with {!Router}, builds one balanced {!Bstnet.Topology} per
    shard, executes every shard's sub-trace with the unmodified
    {!Cbnet.Concurrent} executor, and combines the per-shard
    statistics into one {!Cbnet.Run_stats.t} on the global clock.

    {b Determinism.}  Shards never interact mid-run: the router fixes
    every shard's sub-trace up front, so each shard's execution is the
    single-tree executor's deterministic result on that sub-trace.
    Results are therefore bit-identical at every [shards × domains]
    combination and under any shard execution order — [domains] only
    chooses how many shard executions run concurrently
    ({!Simkit.Pool}), exactly as the plan wave's [domains] only
    chooses how a round is planned.  A 1-shard forest degenerates to
    the single-tree oracle: same statistics, latencies, telemetry
    stream and final tree, bit for bit ([test/test_forest.ml]).

    {b Combined statistics.}  Sums for messages, hops, rotations,
    steps, pauses, bypasses and update messages; each cross-shard
    request charges one extra routing hop for the directory hand-off;
    [work] is recomputed from the combined routing cost; [rounds] is
    the slowest shard's round count; [makespan] spans from the
    earliest birth to the latest shard's last delivery on the global
    birth clock; [throughput] is combined messages over combined
    makespan.  Note [messages] counts delivered {e legs}
    ([intra + 2 * cross]), not end-to-end requests — [requests] in
    {!result} keeps the original count. *)

type result = {
  stats : Cbnet.Run_stats.t;  (** Combined forest statistics. *)
  per_shard : Cbnet.Run_stats.t array;
  topologies : Bstnet.Topology.t array;
      (** Each shard's final tree (local key space), for audits. *)
  directory : Directory.t;
  requests : int;  (** End-to-end requests in the input trace. *)
  intra : int;  (** Requests served inside one shard. *)
  cross : int;  (** Requests split across two shards. *)
  directory_hops : int;
      (** Directory hand-offs charged to routing (= [cross]). *)
}

val run :
  ?config:Cbnet.Config.t ->
  ?window:int ->
  ?max_rounds:int ->
  ?sink:Obskit.Sink.t ->
  ?check_invariants:bool ->
  ?domains:int ->
  ?shards:int ->
  n:int ->
  (int * int * int) array ->
  result
(** [run ~n trace] executes [(birth, src, dst)] requests (sorted by
    birth, endpoints in [[0, n)]) on a [shards]-way forest (default
    1).

    [config], [window], [max_rounds] and [check_invariants] are
    forwarded to every shard's {!Cbnet.Concurrent.run}; [window]
    left unset gives each shard the executor's default for its own
    size.

    [domains] (default 1) executes up to that many shards
    concurrently on a {!Simkit.Pool}; results are bit-identical at
    every setting.  Each shard's round loop itself stays
    single-domain — shard-level fan-out already uses the cores.

    [sink] (default null) receives every shard's telemetry.  An
    enabled sink forces sequential shard execution in shard order, so
    the stream is deterministic (shard-major) and sinks need no
    synchronization; message and node ids in the events are
    shard-local.

    @raise Invalid_argument on an unsorted trace, an endpoint outside
    [[0, n)], [domains < 1], or a [shards] the directory rejects
    ({!Directory.create}). *)

val run_with_latencies :
  ?config:Cbnet.Config.t ->
  ?window:int ->
  ?max_rounds:int ->
  ?sink:Obskit.Sink.t ->
  ?check_invariants:bool ->
  ?domains:int ->
  ?shards:int ->
  n:int ->
  (int * int * int) array ->
  result * float array array
(** {!run}, also returning each shard's per-leg delivery latencies
    ({!Cbnet.Concurrent.run_with_latencies}), indexed by shard then
    by the shard's sub-trace order. *)
