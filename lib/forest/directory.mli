(** The forest's top-level directory: a static map from the global key
    space [0, n) to [shards] contiguous, near-equal ranges.

    Shard [s] owns the half-open global range [[lo s, lo s + size s)];
    the first [n mod shards] shards are one key wider than the rest,
    so any two shard sizes differ by at most one.  Every query is O(1)
    integer arithmetic on two precomputed fields — no per-key table —
    which keeps the router's per-message dispatch allocation-free and
    branch-cheap at any n. *)

type t

val create : n:int -> shards:int -> t
(** [create ~n ~shards] partitions [0, n) into [shards] ranges.

    @raise Invalid_argument if [n < 2], [shards < 1], or
    [2 * shards > n] (every shard must own at least two keys: a
    one-node tree has no topology to adjust). *)

val n : t -> int
(** Size of the global key space. *)

val shards : t -> int
(** Number of shards k. *)

val size : t -> int -> int
(** [size t s] is the number of keys shard [s] owns. *)

val lo : t -> int -> int
(** [lo t s] is the smallest global key of shard [s]. *)

val hi : t -> int -> int
(** [hi t s] is the largest global key of shard [s] (inclusive). *)

val shard_of : t -> int -> int
(** [shard_of t g] is the shard owning global key [g].  O(1); the
    caller guarantees [0 <= g < n t]. *)

val local_of : t -> int -> int
(** [local_of t g] is [g]'s key within its owning shard's local key
    space [[0, size (shard_of t g))]. *)

val global_of : t -> shard:int -> int -> int
(** [global_of t ~shard l] maps shard-local key [l] back to its global
    key: the inverse of {!local_of} on shard [shard]. *)
