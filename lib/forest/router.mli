(** Cross-shard request routing.

    [build] decomposes a global [(birth, src, dst)] trace into one
    per-shard sub-trace each shard's unmodified {!Cbnet.Concurrent}
    executor can run independently:

    - an {e intra-shard} request (both endpoints in one shard) becomes
      a single request in that shard, with endpoints translated to the
      shard's local key space;
    - a {e cross-shard} request becomes two legs at the original
      birth: a source leg in [shard src] from [src] to the boundary
      key facing the destination range, and a destination leg in
      [shard dst] from the boundary key facing the source range to
      [dst].  The directory hand-off between the legs is charged as
      one extra routing hop per cross-shard request
      ({!Overlay.run}).

    Ranges are contiguous and ordered, so "the boundary key facing"
    is local key 0 (downward) or [size - 1] (upward).  Legs are
    appended in global trace order, which keeps every sub-trace
    sorted by (birth, arrival order) — the executor's (birth, id)
    priority is therefore a pure function of the input trace, never
    of shard count, domain count or shard execution order.

    Allocation is per-shard-compact: one sizing pass counts each
    shard's legs, the exact arrays are preallocated, and the fill
    pass writes plain integers — the per-message dispatch path
    allocates nothing and is lint-enforced hot
    ([(* lint: hot *)], docs/LINTING.md). *)

type t = private {
  directory : Directory.t;
  runs : (int * int * int) array array;
      (** Per-shard sub-trace in the shard's local key space, sorted
          by birth; feed [runs.(s)] to {!Cbnet.Concurrent.run} on a
          [Directory.size s]-node tree. *)
  intra : int;  (** Requests with both endpoints in one shard. *)
  cross : int;  (** Requests split into two legs (= directory hops). *)
  first_births : int array;
      (** Per shard: birth of its earliest leg, [max_int] if none —
          lets {!Overlay} place shard makespans on the global clock. *)
}

val build : Directory.t -> (int * int * int) array -> t
(** [build dir trace] routes [trace] (sorted by birth, endpoints in
    [[0, Directory.n dir)]).

    @raise Invalid_argument on an unsorted trace or an endpoint
    outside the directory's key space. *)
