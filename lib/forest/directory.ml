type t = {
  n : int;
  shards : int;
  base : int;  (* n / shards: the narrow shard width. *)
  rem : int;  (* n mod shards: how many leading shards are one wider. *)
}

let create ~n ~shards =
  if n < 2 then invalid_arg "Forest.Directory.create: n must be >= 2";
  if shards < 1 then invalid_arg "Forest.Directory.create: shards must be >= 1";
  if 2 * shards > n then
    invalid_arg
      (Printf.sprintf
         "Forest.Directory.create: %d shards over n = %d leaves a shard with \
          fewer than 2 keys"
         shards n);
  { n; shards; base = n / shards; rem = n mod shards }

let n t = t.n
let shards t = t.shards
let size t s = t.base + if s < t.rem then 1 else 0

let lo t s =
  if s < t.rem then s * (t.base + 1)
  else (t.rem * (t.base + 1)) + ((s - t.rem) * t.base)

let hi t s = lo t s + size t s - 1

let shard_of t g =
  (* The first [rem] shards are (base + 1) wide and cover the prefix
     [0, rem * (base + 1)); the rest are [base] wide. *)
  let wide = t.rem * (t.base + 1) in
  if g < wide then g / (t.base + 1) else t.rem + ((g - wide) / t.base)

let local_of t g = g - lo t (shard_of t g)
let global_of t ~shard l = lo t shard + l
