type t = {
  directory : Directory.t;
  runs : (int * int * int) array array;
  intra : int;
  cross : int;
  first_births : int array;
}

let build dir trace =
  let k = Directory.shards dir in
  let n = Directory.n dir in
  let m = Array.length trace in
  let counts = Array.make k 0 in
  let intra = ref 0 in
  let cross = ref 0 in
  (* Sizing pass: count each shard's legs (and validate) so the fill
     pass writes into exactly-sized arrays.  Both passes are the
     per-message dispatch path: integer reads, compares and array
     writes only. *)
  (* lint: hot *)
  let last_birth = ref min_int in
  for i = 0 to m - 1 do
    let b, s, d = trace.(i) in
    if b < !last_birth then
      invalid_arg "Forest.Router.build: trace not sorted by birth";
    last_birth := b;
    if s < 0 || s >= n || d < 0 || d >= n then
      invalid_arg "Forest.Router.build: endpoint outside the key space";
    let ss = Directory.shard_of dir s in
    let ds = Directory.shard_of dir d in
    if ss = ds then begin
      counts.(ss) <- counts.(ss) + 1;
      incr intra
    end
    else begin
      counts.(ss) <- counts.(ss) + 1;
      counts.(ds) <- counts.(ds) + 1;
      incr cross
    end
  done;
  (* lint: hot-end *)
  (* Preallocate per-shard leg storage as plain integer arrays
     (struct-of-arrays): the executor's boxed-tuple sub-traces are
     materialized once, after dispatch, outside the hot path. *)
  let births = Array.init k (fun s -> Array.make counts.(s) 0) in
  let srcs = Array.init k (fun s -> Array.make counts.(s) 0) in
  let dsts = Array.init k (fun s -> Array.make counts.(s) 0) in
  let next = Array.make k 0 in
  (* Fill pass: translate endpoints and split cross-shard requests.
     Appending in trace order keeps every shard's births sorted. *)
  (* lint: hot *)
  for i = 0 to m - 1 do
    let b, s, d = trace.(i) in
    let ss = Directory.shard_of dir s in
    let ds = Directory.shard_of dir d in
    let j = next.(ss) in
    births.(ss).(j) <- b;
    srcs.(ss).(j) <- Directory.local_of dir s;
    if ss = ds then begin
      dsts.(ss).(j) <- Directory.local_of dir d;
      next.(ss) <- j + 1
    end
    else begin
      (* Ranges are ordered, so the boundary key facing a higher
         shard is the range's top key and vice versa. *)
      dsts.(ss).(j) <- (if ds > ss then Directory.size dir ss - 1 else 0);
      next.(ss) <- j + 1;
      let j' = next.(ds) in
      births.(ds).(j') <- b;
      srcs.(ds).(j') <- (if ss < ds then 0 else Directory.size dir ds - 1);
      dsts.(ds).(j') <- Directory.local_of dir d;
      next.(ds) <- j' + 1
    end
  done;
  (* lint: hot-end *)
  let runs =
    Array.init k (fun s ->
        Array.init counts.(s) (fun i ->
            (births.(s).(i), srcs.(s).(i), dsts.(s).(i))))
  in
  let first_births =
    Array.init k (fun s -> if counts.(s) > 0 then births.(s).(0) else max_int)
  in
  { directory = dir; runs; intra = !intra; cross = !cross; first_births }
