(** The serve-mode line protocol (docs/SERVING.md): one request per
    line, [src,dst] or [src dst] over nodes [0 .. n-1], with blank
    lines and [#]-comments ignored.  The same grammar is accepted on
    stdin, Unix-domain sockets and TCP connections.  Parsing is pure
    — malformed lines are reported, never raised — so a hostile or
    sloppy client cannot take the daemon down. *)

type line =
  | Request of int * int  (** A validated [src, dst] pair. *)
  | Blank  (** Empty line or [#] comment: ignored. *)

val parse_line : n:int -> string -> (line, string) result
(** Parse one protocol line (a trailing ['\r'] is tolerated, so CRLF
    clients work).  Errors name the offending token: non-integer
    fields, out-of-range endpoints, [src = dst], or a wrong field
    count. *)
