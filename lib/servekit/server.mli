(** The serve loop: turns a continuous request stream into rounds for
    the {!Cbnet.Concurrent} executor.

    Arrivals (from a replay schedule or live file descriptors) flow
    through the bounded {!Bqueue}; when enough are queued the server
    drains a batch, re-anchors its births and runs the executor on the
    persistent tree, accumulating statistics across batches with
    {!Cbnet.Counter_reset.combine}.  Between batches the {!Epoch}
    scheduler may decay the counters so weights track recent demand.

    Determinism contract: {!replay} is a pure function of
    [(config, tree, schedule, epoch cadence)] — no wall clock, no RNG
    — so the same inputs produce a bit-identical {!report} and final
    tree.  With an unbounded batch, a capacity that fits the whole
    stream and decay disabled, a schedule whose births are all zero
    executes as exactly one batch, making the report's [stats] field
    bit-identical to {!Cbnet.Concurrent.run} on the same trace (the
    batch oracle asserted by tests and [bench serve-smoke]). *)

type policy =
  | Shed  (** Drop arrivals while the queue is full (counted). *)
  | Park
      (** Leave arrivals at the source until the queue drains: nothing
          is lost, the producer stalls instead (live mode stops
          reading the socket, propagating pressure to the sender). *)

type config = {
  n : int;  (** Nodes of the served tree. *)
  queue_capacity : int;
  policy : policy;
  batch_max : int;  (** Max requests per executor batch; 0 = unbounded. *)
  batch_min : int;  (** Wait for this many before batching (if more input). *)
  domains : int;
  exec : Cbnet.Config.t;
  window : int option;
  faults : Faultkit.Plan.t option;
  check_invariants : bool;
  max_rounds : int;  (** Per-batch round budget. *)
}

val config :
  ?queue_capacity:int ->
  ?policy:policy ->
  ?batch_max:int ->
  ?batch_min:int ->
  ?domains:int ->
  ?exec:Cbnet.Config.t ->
  ?window:int ->
  ?faults:Faultkit.Plan.t ->
  ?check_invariants:bool ->
  ?max_rounds:int ->
  n:int ->
  unit ->
  config
(** Defaults: capacity 1024, [Shed], [batch_max = 256],
    [batch_min = 1], 1 domain, {!Cbnet.Config.default}, no fault
    plan, no invariant checks, a 100M-round budget.
    @raise Invalid_argument on inconsistent knobs
    (e.g. [batch_min > queue_capacity]). *)

type report = {
  stats : Cbnet.Run_stats.t;
      (** Accumulated executor statistics; decay passes charge [n]
          maintenance slots each to makespan and rounds. *)
  seen : int;  (** Arrivals observed at ingest (valid protocol lines). *)
  admitted : int;
  shed : int;
  parse_errors : int;
  batches : int;
  busy_rounds : int;  (** Rounds spent executing batches. *)
  idle_rounds : int;  (** Virtual rounds skipped while the queue was empty. *)
  decays : int;
  max_queue_depth : int;
  queue_depth : Profkit.Histogram.t;
      (** Queue length sampled once per serve-loop iteration. *)
  batch_size : Profkit.Histogram.t;
}
(** At completion [seen = admitted + shed], [max_queue_depth <=
    queue_capacity], and under [Park] [shed = 0]. *)

val pp_report : Format.formatter -> report -> unit

val replay :
  ?epoch:Epoch.t ->
  ?registry:Simkit.Metrics.t ->
  ?status:(string -> unit) ->
  ?report_every:int ->
  config ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  report
(** Serve a materialized [(birth, src, dst)] schedule (sorted by
    birth, e.g. {!Workloads.Shape} output via [Trace.to_runs]) under
    the virtual clock: arrivals with [birth <= now] are pulled into
    the queue, batches advance [now] by the rounds they consume, and
    an empty queue jumps [now] to the next arrival (counted as idle).
    [registry] receives [cbnet_serve_*] counters and streams;
    [status] gets a one-line progress report every [report_every]
    batches (default 50).
    @raise Invalid_argument on an unsorted schedule. *)

val serve :
  ?epoch:Epoch.t ->
  ?registry:Simkit.Metrics.t ->
  ?status:(string -> unit) ->
  ?report_every:int ->
  ?clock:Vclock.t ->
  ?listen:Unix.file_descr ->
  ?metrics:Unix.file_descr * (unit -> string) ->
  ?stop:(unit -> bool) ->
  config ->
  Bstnet.Topology.t ->
  Unix.file_descr list ->
  report
(** Live mode: a [select] loop over line-protocol streams (the given
    descriptors, e.g. stdin, plus connections accepted on [listen]),
    an optional [metrics] listener answered with
    [Http.handle ~path:"/metrics"] from the given body thunk, and a
    [stop] poll (hook SIGTERM/SIGINT here).  Arrivals are stamped
    with the clock's current round (default {!Vclock.wall}; pass a
    {!Vclock.virtual_} for deterministic pipe-driven tests).  On EOF
    of every stream (with no [listen]) or [stop () = true] the loop
    drains the queue and returns the final report.  Parked arrivals
    stop the reader instead of being dropped, so a full queue
    back-pressures the sending socket. *)
