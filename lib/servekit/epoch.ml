(* Between-batch decay cadence.  All timing questions are delegated to
   Vclock so the module itself stays deterministic. *)

type t = {
  every_rounds : int option;
  every_us : float option;
  factor : float;
  mutable last_rounds : int;
  mutable last_us : float;
  mutable count : int;
}

let create ?every_rounds ?every_us ~factor () =
  if factor < 0. || factor >= 1. then
    invalid_arg "Epoch.create: factor must be in [0, 1)";
  (match every_rounds with
  | Some r when r < 1 -> invalid_arg "Epoch.create: every_rounds must be >= 1"
  | _ -> ());
  (match every_us with
  | Some us when not (us > 0.) ->
      invalid_arg "Epoch.create: every_us must be > 0"
  | _ -> ());
  { every_rounds; every_us; factor; last_rounds = 0; last_us = 0.; count = 0 }

let disabled () = create ~factor:0. ()

let enabled t =
  Option.is_some t.every_rounds || Option.is_some t.every_us

let factor t = t.factor
let decays t = t.count

let due t ~clock =
  let by_rounds =
    match t.every_rounds with
    | None -> false
    | Some every -> Vclock.rounds clock - t.last_rounds >= every
  in
  let by_us =
    match t.every_us with
    | None -> false
    | Some every -> Vclock.elapsed_us clock -. t.last_us >= every
  in
  by_rounds || by_us

let maybe_roll t ~clock tree =
  if enabled t && due t ~clock then begin
    Cbnet.Counter_reset.decay tree ~factor:t.factor;
    t.last_rounds <- Vclock.rounds clock;
    t.last_us <- Vclock.elapsed_us clock;
    t.count <- t.count + 1;
    true
  end
  else false
