(** Minimal HTTP/1.0 responder for the live [/metrics] endpoint.  One
    request per connection, no keep-alive, no TLS: exactly enough for
    a Prometheus scraper or [curl].  The response builders are pure
    (and unit-tested as such); only {!handle} touches the socket. *)

val response : ?status:string -> ?content_type:string -> string -> string
(** [response body] renders a full HTTP/1.0 response with
    [Content-Length] and [Connection: close] headers.  Defaults:
    status ["200 OK"], content type ["text/plain; version=0.0.4"]
    (the Prometheus exposition type). *)

val route : string -> path:string -> body:(unit -> string) -> string
(** [route request_line ~path ~body] dispatches a request line
    ("GET /metrics HTTP/1.1"): [body ()] wrapped as 200 when the
    method is GET and the target matches [path], 404 otherwise,
    405 for non-GET methods. *)

val handle : Unix.file_descr -> path:string -> body:(unit -> string) -> unit
(** Read one request from an accepted connection, write the routed
    response, close the descriptor.  Read/write errors are swallowed
    (the descriptor is still closed): a half-open scraper must not
    take the serve loop down. *)
