(* Tiny HTTP/1.0 answering machine for metric scrapes.  The protocol
   surface is deliberately one request line deep; headers from the
   client are read and ignored. *)

let response ?(status = "200 OK")
    ?(content_type = "text/plain; version=0.0.4") body =
  Printf.sprintf
    "HTTP/1.0 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: \
     close\r\n\r\n%s"
    status content_type (String.length body) body

(* effect: pure *)
let request_target line =
  match String.split_on_char ' ' (String.trim line) with
  | meth :: target :: _ -> Some (meth, target)
  | _ -> None

let route line ~path ~body =
  match request_target line with
  | Some ("GET", target) when String.equal target path -> response (body ())
  | Some ("GET", _) ->
      response ~status:"404 Not Found" ~content_type:"text/plain"
        "not found\n"
  | Some _ ->
      response ~status:"405 Method Not Allowed" ~content_type:"text/plain"
        "method not allowed\n"
  | None ->
      response ~status:"400 Bad Request" ~content_type:"text/plain"
        "bad request\n"

let handle fd ~path ~body =
  let buf = Bytes.create 1024 in
  let request_line =
    match Unix.read fd buf 0 (Bytes.length buf) with
    | exception Unix.Unix_error _ -> ""
    | 0 -> ""
    | k -> (
        let s = Bytes.sub_string buf 0 k in
        match String.index_opt s '\n' with
        | Some nl -> String.sub s 0 nl
        | None -> s)
  in
  let reply = route request_line ~path ~body in
  let rec write_all off =
    if off < String.length reply then
      match Unix.write_substring fd reply off (String.length reply - off) with
      | exception Unix.Unix_error _ -> ()
      | 0 -> ()
      | k -> write_all (off + k)
  in
  write_all 0;
  try Unix.close fd with Unix.Unix_error _ -> ()
