(** Epoch scheduler: rolls {!Cbnet.Counter_reset.decay} over the
    served tree on a rounds-or-wall cadence so the weights track
    {e recent} demand (the paper's Sec. IX-D counter-reset extension,
    here as a live maintenance pass between batches).

    Cadence semantics: a decay fires when either trigger is due —
    [every_rounds] clock rounds (deterministic, works under the
    virtual clock) or [every_us] microseconds of {!Vclock.elapsed_us}
    (wall deployments; under a virtual clock this degrades to a
    deterministic 1-round-per-us cadence).  With neither trigger the
    epoch never rolls, which is the decay-disabled baseline. *)

type t

val disabled : unit -> t
(** Never rolls. *)

val create : ?every_rounds:int -> ?every_us:float -> factor:float -> unit -> t
(** @raise Invalid_argument unless [0 <= factor < 1],
    [every_rounds >= 1] and [every_us > 0] (when given). *)

val enabled : t -> bool
val factor : t -> float

val decays : t -> int
(** Decay passes applied so far. *)

val maybe_roll : t -> clock:Vclock.t -> Bstnet.Topology.t -> bool
(** Apply a decay if a cadence trigger is due; returns whether one
    fired.  Call between batches — never mid-batch, so the executor's
    frozen-tree invariants are preserved. *)
