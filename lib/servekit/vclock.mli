(** The serve loop's clock — and the {e only} servekit module allowed
    to touch wall time.  Everything else in the subsystem measures
    progress in rounds and asks this module for elapsed time, which
    keeps the determinism lint's clock/RNG confinement auditable: a
    virtual clock advances exclusively through {!advance} (executor
    rounds and explicit idle jumps), so a serve run under it is a pure
    function of its inputs and replays bit for bit.

    In wall mode {!elapsed_us} reads the real clock (for wall-cadence
    epoch decay and status reporting); in virtual mode it is defined
    as one microsecond per round, so time-based cadences degrade to
    deterministic round-based ones instead of misfiring. *)

type t

val virtual_ : unit -> t
(** A deterministic clock starting at round 0. *)

val wall : unit -> t
(** A wall-backed clock: rounds still advance via {!advance}, but
    {!elapsed_us} reads real time since creation. *)

val is_virtual : t -> bool

val rounds : t -> int
(** Rounds advanced so far (executor work plus idle jumps). *)

val advance : t -> int -> unit
(** Add [k >= 0] rounds. *)

val elapsed_us : t -> float
(** Microseconds since creation: real in wall mode, [rounds] in
    virtual mode (nominal 1 round = 1 us). *)
