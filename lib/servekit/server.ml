(* The serve loop.  Two entry points share one batching core: [replay]
   pulls a materialized schedule under a virtual clock (pure, the
   bench/test surface), [serve] multiplexes live descriptors with
   [Unix.select] (the daemon surface).  Both feed the same bounded
   queue, drain it in birth-sorted batches through the concurrent
   executor, and accumulate statistics with [Counter_reset.combine] so
   a decay pass charges its n maintenance slots exactly like the
   offline ablation runner. *)

module Stats = Cbnet.Run_stats

type policy = Shed | Park

type config = {
  n : int;
  queue_capacity : int;
  policy : policy;
  batch_max : int;
  batch_min : int;
  domains : int;
  exec : Cbnet.Config.t;
  window : int option;
  faults : Faultkit.Plan.t option;
  check_invariants : bool;
  max_rounds : int;
}

let config ?(queue_capacity = 1024) ?(policy = Shed) ?(batch_max = 256)
    ?(batch_min = 1) ?(domains = 1) ?(exec = Cbnet.Config.default) ?window
    ?faults ?(check_invariants = false) ?(max_rounds = 100_000_000) ~n () =
  if n < 2 then invalid_arg "Server.config: n must be >= 2";
  if queue_capacity < 1 then
    invalid_arg "Server.config: queue_capacity must be >= 1";
  if batch_max < 0 then invalid_arg "Server.config: batch_max must be >= 0";
  if batch_min < 1 then invalid_arg "Server.config: batch_min must be >= 1";
  if batch_min > queue_capacity then
    invalid_arg "Server.config: batch_min cannot exceed queue_capacity";
  if domains < 1 then invalid_arg "Server.config: domains must be >= 1";
  {
    n;
    queue_capacity;
    policy;
    batch_max;
    batch_min;
    domains;
    exec;
    window;
    faults;
    check_invariants;
    max_rounds;
  }

type report = {
  stats : Stats.t;
  seen : int;
  admitted : int;
  shed : int;
  parse_errors : int;
  batches : int;
  busy_rounds : int;
  idle_rounds : int;
  decays : int;
  max_queue_depth : int;
  queue_depth : Profkit.Histogram.t;
  batch_size : Profkit.Histogram.t;
}

let pp_report ppf r =
  Format.fprintf ppf
    "@[<v>%a@,\
     serve: seen=%d admitted=%d shed=%d parse_errors=%d batches=%d \
     busy_rounds=%d idle_rounds=%d decays=%d q_max=%d q_p50=%.0f q_p95=%.0f \
     q_p99=%.0f@]"
    Stats.pp r.stats r.seen r.admitted r.shed r.parse_errors r.batches
    r.busy_rounds r.idle_rounds r.decays r.max_queue_depth
    (Profkit.Histogram.p50 r.queue_depth)
    (Profkit.Histogram.p95 r.queue_depth)
    (Profkit.Histogram.p99 r.queue_depth)

(* --- shared serving state ------------------------------------------- *)

type state = {
  cfg : config;
  tree : Bstnet.Topology.t;
  queue : Bqueue.t;
  epoch : Epoch.t;
  registry : Simkit.Metrics.t option;
  status : (string -> unit) option;
  report_every : int;
  qdepth : Profkit.Histogram.t;
  bsize : Profkit.Histogram.t;
  mutable acc : Stats.t option;
  mutable seen : int;
  mutable admitted : int;
  mutable shed : int;
  mutable parse_errors : int;
  mutable batches : int;
  mutable busy : int;
  mutable idle : int;
  mutable pending_slots : int;  (* decay cost awaiting the next combine *)
  mutable charged_slots : int;
}

let init ?epoch ?registry ?status ?(report_every = 50) cfg tree =
  if not (Int.equal (Bstnet.Topology.n tree) cfg.n) then
    invalid_arg "Server: tree size does not match config.n";
  {
    cfg;
    tree;
    queue = Bqueue.create ~capacity:cfg.queue_capacity;
    epoch = (match epoch with Some e -> e | None -> Epoch.disabled ());
    registry;
    status;
    report_every;
    qdepth = Profkit.Histogram.create ~scale:1. ();
    bsize = Profkit.Histogram.create ~scale:1. ();
    acc = None;
    seen = 0;
    admitted = 0;
    shed = 0;
    parse_errors = 0;
    batches = 0;
    busy = 0;
    idle = 0;
    pending_slots = 0;
    charged_slots = 0;
  }

let reg_incr st name =
  match st.registry with
  | None -> ()
  | Some reg -> Simkit.Metrics.incr reg name

let reg_add st name k =
  match st.registry with
  | None -> ()
  | Some reg -> Simkit.Metrics.add reg name k

let reg_observe st name v =
  match st.registry with
  | None -> ()
  | Some reg -> Simkit.Metrics.observe reg name v

let sample_depth st =
  let depth = float_of_int (Bqueue.length st.queue) in
  Profkit.Histogram.record st.qdepth depth;
  reg_observe st "cbnet_serve_queue_depth" depth

let note_seen st =
  st.seen <- st.seen + 1;
  reg_incr st "cbnet_serve_requests_total"

let note_shed st =
  st.shed <- st.shed + 1;
  reg_incr st "cbnet_serve_shed_total"

let admit st ~birth ~src ~dst =
  ignore (Bqueue.offer st.queue ~birth ~src ~dst);
  st.admitted <- st.admitted + 1;
  reg_incr st "cbnet_serve_admitted_total"

(* Drain one batch through the executor; returns the rounds consumed
   so the caller can advance its clock. *)
let run_batch st =
  let max = if st.cfg.batch_max = 0 then 0 else st.cfg.batch_max in
  let batch = Bqueue.take st.queue ~max in
  let base = match batch.(0) with b, _, _ -> b in
  let runs = Array.map (fun (b, s, d) -> (b - base, s, d)) batch in
  let stats =
    Cbnet.Concurrent.run ~config:st.cfg.exec ?window:st.cfg.window
      ~max_rounds:st.cfg.max_rounds ?faults:st.cfg.faults
      ~check_invariants:st.cfg.check_invariants ~domains:st.cfg.domains
      st.tree runs
  in
  st.acc <-
    Some
      (match st.acc with
      | None -> stats
      | Some prev -> Cbnet.Counter_reset.combine prev stats st.pending_slots);
  st.charged_slots <- st.charged_slots + st.pending_slots;
  st.pending_slots <- 0;
  st.batches <- st.batches + 1;
  st.busy <- st.busy + stats.Stats.rounds;
  Profkit.Histogram.record st.bsize (float_of_int (Array.length batch));
  reg_incr st "cbnet_serve_batches_total";
  reg_add st "cbnet_serve_rounds_total" stats.Stats.rounds;
  reg_observe st "cbnet_serve_batch_size"
    (float_of_int (Array.length batch));
  stats.Stats.rounds

let roll_epoch st ~clock =
  if Epoch.maybe_roll st.epoch ~clock st.tree then begin
    st.pending_slots <- st.pending_slots + Bstnet.Topology.n st.tree;
    reg_incr st "cbnet_serve_decays_total"
  end

let maybe_status st ~now =
  match st.status with
  | Some emit when st.report_every > 0 && st.batches mod st.report_every = 0
    ->
      emit
        (Printf.sprintf
           "serve: round=%d batches=%d q=%d/%d admitted=%d shed=%d \
            parse_errors=%d decays=%d"
           now st.batches (Bqueue.length st.queue)
           (Bqueue.capacity st.queue) st.admitted st.shed st.parse_errors
           (Epoch.decays st.epoch))
  | _ -> ()

let finalize st =
  let stats =
    match st.acc with
    | Some s -> s
    | None ->
        (* Nothing ever ran: an empty execution gives the all-zero
           statistics in the executor's own format. *)
        Cbnet.Concurrent.run ~config:st.cfg.exec ~domains:1 st.tree [||]
  in
  let stats =
    (* A single decay-free batch passes through untouched — this is
       the bit-identity with the equivalent Concurrent.run. *)
    if st.batches <= 1 && st.pending_slots = 0 && st.charged_slots = 0 then
      stats
    else begin
      let makespan = stats.Stats.makespan + st.pending_slots in
      let rounds = stats.Stats.rounds + st.pending_slots in
      let throughput =
        if Int.equal makespan 0 then 0.
        else float_of_int stats.Stats.messages /. float_of_int makespan
      in
      { stats with Stats.makespan; rounds; throughput }
    end
  in
  {
    stats;
    seen = st.seen;
    admitted = st.admitted;
    shed = st.shed;
    parse_errors = st.parse_errors;
    batches = st.batches;
    busy_rounds = st.busy;
    idle_rounds = st.idle;
    decays = Epoch.decays st.epoch;
    max_queue_depth = Bqueue.max_depth st.queue;
    queue_depth = st.qdepth;
    batch_size = st.bsize;
  }

(* --- replay --------------------------------------------------------- *)

let replay ?epoch ?registry ?status ?report_every cfg tree schedule =
  let len = Array.length schedule in
  for i = 1 to len - 1 do
    let b0, _, _ = schedule.(i - 1) in
    let b1, _, _ = schedule.(i) in
    if b1 < b0 then
      invalid_arg "Server.replay: schedule must be sorted by birth"
  done;
  let st = init ?epoch ?registry ?status ?report_every cfg tree in
  let clock = Vclock.virtual_ () in
  let idx = ref 0 in
  (* Pull every arrival with [birth <= now] that the queue (and the
     back-pressure policy) will accept. *)
  let pull () =
    let continue = ref true in
    while !continue && !idx < len do
      let b, s, d = schedule.(!idx) in
      if b > Vclock.rounds clock then continue := false
      else if Bqueue.is_full st.queue then
        match st.cfg.policy with
        | Park -> continue := false  (* waits at the source, not lost *)
        | Shed ->
            note_seen st;
            note_shed st;
            incr idx
      else begin
        note_seen st;
        admit st ~birth:b ~src:s ~dst:d;
        incr idx
      end
    done
  in
  let jump_to_next_arrival () =
    let b, _, _ = schedule.(!idx) in
    let gap = b - Vclock.rounds clock in
    if gap > 0 then begin
      st.idle <- st.idle + gap;
      Vclock.advance clock gap
    end
  in
  pull ();
  while !idx < len || not (Bqueue.is_empty st.queue) do
    sample_depth st;
    if Bqueue.is_empty st.queue then begin
      jump_to_next_arrival ();
      pull ()
    end
    else if Bqueue.length st.queue < st.cfg.batch_min && !idx < len then begin
      (* Not enough queued and more input exists: wait (in virtual
         time) for the next arrival rather than under-filling. *)
      jump_to_next_arrival ();
      pull ()
    end
    else begin
      let rounds = run_batch st in
      Vclock.advance clock rounds;
      maybe_status st ~now:(Vclock.rounds clock);
      roll_epoch st ~clock;
      pull ()
    end
  done;
  reg_add st "cbnet_serve_idle_rounds_total" st.idle;
  finalize st

(* --- live mode ------------------------------------------------------ *)

type feed = {
  fd : Unix.file_descr;
  buf : Buffer.t;
  owned : bool;  (* accepted here, so closed here *)
  mutable eof : bool;
}

(* Split the completed lines out of a feed's buffer, keeping the
   trailing partial line for the next read. *)
let drain_lines f handle =
  let s = Buffer.contents f.buf in
  let len = String.length s in
  let start = ref 0 in
  for i = 0 to len - 1 do
    if Char.equal s.[i] '\n' then begin
      handle (String.sub s !start (i - !start));
      start := i + 1
    end
  done;
  if !start > 0 then begin
    Buffer.clear f.buf;
    if !start < len then Buffer.add_substring f.buf s !start (len - !start)
  end

let close_quietly fd = try Unix.close fd with Unix.Unix_error _ -> ()

let serve ?epoch ?registry ?status ?report_every ?clock ?listen ?metrics
    ?(stop = fun () -> false) cfg tree fds =
  let clock =
    match clock with Some c -> c | None -> Vclock.wall ()
  in
  let st = init ?epoch ?registry ?status ?report_every cfg tree in
  let feeds =
    ref
      (List.map
         (fun fd -> { fd; buf = Buffer.create 256; owned = false; eof = false })
         fds)
  in
  let pending : (int * int) Queue.t = Queue.create () in
  let offer_pending () =
    while (not (Queue.is_empty pending)) && not (Bqueue.is_full st.queue) do
      let s, d = Queue.pop pending in
      admit st ~birth:(Vclock.rounds clock) ~src:s ~dst:d
    done
  in
  let handle_request s d =
    note_seen st;
    if (not (Queue.is_empty pending)) || Bqueue.is_full st.queue then
      match st.cfg.policy with
      | Shed -> note_shed st
      | Park -> Queue.add (s, d) pending
    else admit st ~birth:(Vclock.rounds clock) ~src:s ~dst:d
  in
  let handle_line line =
    match Ingest.parse_line ~n:st.cfg.n line with
    | Ok Ingest.Blank -> ()
    | Ok (Ingest.Request (s, d)) -> handle_request s d
    | Error err -> (
        st.parse_errors <- st.parse_errors + 1;
        reg_incr st "cbnet_serve_parse_errors_total";
        match st.status with
        | Some emit -> emit (Printf.sprintf "serve: bad line (%s)" err)
        | None -> ())
  in
  let read_feed f =
    let chunk = Bytes.create 4096 in
    match Unix.read f.fd chunk 0 (Bytes.length chunk) with
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
    | exception Unix.Unix_error _ ->
        f.eof <- true;
        if f.owned then close_quietly f.fd
    | 0 ->
        f.eof <- true;
        if Buffer.length f.buf > 0 then begin
          (* A final line without the trailing newline still counts. *)
          handle_line (Buffer.contents f.buf);
          Buffer.clear f.buf
        end;
        if f.owned then close_quietly f.fd
    | k ->
        Buffer.add_subbytes f.buf chunk 0 k;
        drain_lines f handle_line
  in
  let run_one_batch () =
    let rounds = run_batch st in
    Vclock.advance clock rounds;
    maybe_status st ~now:(Vclock.rounds clock);
    roll_epoch st ~clock
  in
  let has_listener = match listen with Some _ -> true | None -> false in
  let stopping = ref false in
  let done_ = ref false in
  while not !done_ do
    if stop () then stopping := true;
    let feeds_alive = List.filter (fun f -> not f.eof) !feeds in
    let ingest_eof = Int.equal (List.length feeds_alive) 0 in
    if !stopping || (ingest_eof && not has_listener) then begin
      (* Drain: no further input will be read; execute everything that
         was admitted or parked, then report. *)
      offer_pending ();
      sample_depth st;
      if Bqueue.is_empty st.queue then done_ := true
      else run_one_batch ()
    end
    else begin
      let rset =
        (if Queue.is_empty pending then List.map (fun f -> f.fd) feeds_alive
         else [] (* parked: stop reading, push back on the senders *))
        @ (match listen with Some fd -> [ fd ] | None -> [])
        @ match metrics with Some (fd, _) -> [ fd ] | None -> []
      in
      let timeout =
        if Bqueue.is_empty st.queue && Queue.is_empty pending then 0.25
        else 0.02
      in
      let readable =
        if Int.equal (List.length rset) 0 then []
        else
          match Unix.select rset [] [] timeout with
          | r, _, _ -> r
          | exception Unix.Unix_error (Unix.EINTR, _, _) -> []
      in
      List.iter
        (fun fd ->
          if match listen with Some lfd -> fd = lfd | None -> false then (
            match Unix.accept fd with
            | conn, _ ->
                feeds :=
                  !feeds
                  @ [
                      {
                        fd = conn;
                        buf = Buffer.create 256;
                        owned = true;
                        eof = false;
                      };
                    ]
            | exception Unix.Unix_error _ -> ())
          else if match metrics with Some (mfd, _) -> fd = mfd | None -> false
          then (
            match metrics with
            | Some (_, body) -> (
                match Unix.accept fd with
                | conn, _ -> Http.handle conn ~path:"/metrics" ~body
                | exception Unix.Unix_error _ -> ())
            | None -> ())
          else
            match List.find_opt (fun f -> f.fd = fd) !feeds with
            | Some f -> read_feed f
            | None -> ())
        readable;
      offer_pending ();
      sample_depth st;
      let timed_out = Int.equal (List.length readable) 0 in
      let any_alive = List.exists (fun f -> not f.eof) !feeds in
      if
        (not (Bqueue.is_empty st.queue))
        && (Bqueue.length st.queue >= st.cfg.batch_min
           || timed_out || not any_alive)
      then run_one_batch ()
    end
  done;
  List.iter (fun f -> if f.owned && not f.eof then close_quietly f.fd) !feeds;
  finalize st
