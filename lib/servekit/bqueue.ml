(* Array-backed ring buffer.  Three parallel int arrays rather than a
   triple array: no per-request boxing, and the drain into the
   executor's input array is the only allocation on the path. *)

type t = {
  births : int array;
  srcs : int array;
  dsts : int array;
  mutable head : int;
  mutable len : int;
  mutable max_depth : int;
}

let create ~capacity =
  if capacity < 1 then invalid_arg "Bqueue.create: capacity must be >= 1";
  {
    births = Array.make capacity 0;
    srcs = Array.make capacity 0;
    dsts = Array.make capacity 0;
    head = 0;
    len = 0;
    max_depth = 0;
  }

(* effect: pure *)
let capacity t = Array.length t.births

(* effect: pure *)
let length t = t.len

(* effect: pure *)
let is_empty t = t.len = 0

(* effect: pure *)
let is_full t = t.len = Array.length t.births

(* effect: pure *)
let max_depth t = t.max_depth

let offer t ~birth ~src ~dst =
  let cap = Array.length t.births in
  if t.len = cap then false
  else begin
    let slot = (t.head + t.len) mod cap in
    t.births.(slot) <- birth;
    t.srcs.(slot) <- src;
    t.dsts.(slot) <- dst;
    t.len <- t.len + 1;
    if t.len > t.max_depth then t.max_depth <- t.len;
    true
  end

let take t ~max =
  let k = if max <= 0 then t.len else Stdlib.min max t.len in
  let cap = Array.length t.births in
  let out =
    Array.init k (fun i ->
        let slot = (t.head + i) mod cap in
        (t.births.(slot), t.srcs.(slot), t.dsts.(slot)))
  in
  t.head <- (t.head + k) mod cap;
  t.len <- t.len - k;
  out
