(* The single wall-clock site of lib/servekit.  The determinism rule
   (docs/LINTING.md) keeps every other module in the subsystem free of
   clock/RNG reads; serve-loop code that needs time must go through
   this interface so the virtual mode can replace it wholesale.  The
   read itself delegates to Obskit.Clock — telemetry's sanctioned,
   monotonically-clamped wall clock outside the determinism scope —
   so servekit carries no direct nondeterminism of its own. *)

type t = { mutable rounds : int; start_us : float option }

let read_wall_us () = Obskit.Clock.now_us ()

let virtual_ () = { rounds = 0; start_us = None }
let wall () = { rounds = 0; start_us = Some (read_wall_us ()) }
let is_virtual t = Option.is_none t.start_us
let rounds t = t.rounds

let advance t k =
  if k < 0 then invalid_arg "Vclock.advance: negative round count";
  t.rounds <- t.rounds + k

let elapsed_us t =
  match t.start_us with
  | None -> float_of_int t.rounds
  | Some start -> read_wall_us () -. start
