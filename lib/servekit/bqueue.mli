(** The bounded ingest queue: a preallocated ring of
    [(birth, src, dst)] triples between the stream readers and the
    batch executor.  The capacity is the back-pressure knob — when the
    ring is full, {!offer} refuses and the server's policy decides
    whether the arrival is shed (dropped, counted) or parked (left at
    the source until the executor drains the ring).  FIFO order plus
    monotone arrival stamping keeps every drained batch sorted by
    birth, which is what the executor's priority rule requires. *)

type t

val create : capacity:int -> t
(** @raise Invalid_argument if [capacity < 1]. *)

val capacity : t -> int
val length : t -> int
val is_empty : t -> bool
val is_full : t -> bool

val max_depth : t -> int
(** High-water mark of {!length} since creation. *)

val offer : t -> birth:int -> src:int -> dst:int -> bool
(** Enqueue at the tail; [false] (and no change) when full. *)

val take : t -> max:int -> (int * int * int) array
(** Dequeue up to [max] triples in FIFO order ([max <= 0] means all).
    Returns a fresh array — the executor input format. *)
