(* Line-protocol parser.  Pure by construction (and verified so by
   effectkit): the ingest path runs once per request, concurrently
   with batching, and must never raise on client input. *)

type line = Request of int * int | Blank

let strip s =
  let s =
    let len = String.length s in
    if len > 0 && Char.equal s.[len - 1] '\r' then String.sub s 0 (len - 1)
    else s
  in
  String.trim s

(* effect: pure *)
let split_fields s =
  (* Accept one comma or any run of spaces/tabs as the separator. *)
  let sep c = Char.equal c ',' || Char.equal c ' ' || Char.equal c '\t' in
  let len = String.length s in
  let rec token_end j = if j < len && not (sep s.[j]) then token_end (j + 1) else j in
  let rec go i acc =
    if i >= len then List.rev acc
    else if sep s.[i] then go (i + 1) acc
    else
      let j = token_end i in
      go j (String.sub s i (j - i) :: acc)
  in
  go 0 []

(* effect: pure *)
let parse_line ~n s =
  let s = strip s in
  if String.length s = 0 || Char.equal s.[0] '#' then Ok Blank
  else
    match split_fields s with
    | [ a; b ] -> (
        match (int_of_string_opt a, int_of_string_opt b) with
        | None, _ -> Error (Printf.sprintf "not an integer: %S" a)
        | _, None -> Error (Printf.sprintf "not an integer: %S" b)
        | Some src, Some dst ->
            if src < 0 || src >= n then
              Error (Printf.sprintf "src %d out of range [0, %d)" src n)
            else if dst < 0 || dst >= n then
              Error (Printf.sprintf "dst %d out of range [0, %d)" dst n)
            else if Int.equal src dst then
              Error (Printf.sprintf "src = dst (%d)" src)
            else Ok (Request (src, dst)))
    | fields ->
        Error
          (Printf.sprintf "expected 2 fields (src,dst), got %d"
             (List.length fields))
