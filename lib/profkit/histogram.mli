(** Preallocated log-bucketed histogram (HDR-style).

    A fixed array of [2^11] buckets per sign covers the whole int tick
    range: ticks below [2^sub_bits] get exact unit buckets, larger
    ticks are bucketed by most-significant-bit with [sub_bits] = 5 bits
    of sub-bucket resolution, so any reconstructed quantile is within a
    relative error of [2^-sub_bits] ≈ 3.1% of the recorded value (and
    within half that of the bucket midpoint used as the estimate).

    [record] is O(1) and allocation-free in native code — unlike
    {!Simkit.Stats.summary}'s sample-retaining accumulator, a histogram
    can sit on a hot path and absorb millions of observations at a
    fixed memory footprint.  Histograms with equal [scale] merge
    exactly (bucket-wise sums), so per-domain or per-run instances
    aggregate without error beyond the bucketing itself. *)

type t

val create : ?scale:float -> unit -> t
(** [scale] is the number of integer ticks per recorded unit (default
    [1000.], i.e. three decimal digits of resolution around zero — one
    nanosecond when recording microseconds).  Values are scaled,
    rounded to the nearest tick, and bucketed by magnitude; negative
    values go to a mirrored bucket array.  NaN observations are
    ignored; magnitudes beyond [2^62] ticks clamp into the top bucket.
    @raise Invalid_argument if [scale] is not positive and finite. *)

val record : t -> float -> unit
(** O(1), no steady-state allocation. *)

val count : t -> int
val is_empty : t -> bool
val sum : t -> float
val min : t -> float
(** Exact observed minimum (0 when empty). *)

val max : t -> float
(** Exact observed maximum (0 when empty). *)

val mean : t -> float

val variance : t -> float
(** Unbiased sample variance from exact running sums (not bucketed);
    0 for fewer than two observations. *)

val std : t -> float
val scale : t -> float

val quantile : t -> float -> float
(** [quantile t q] with [q] in [0;1] — nearest-rank quantile
    reconstructed from bucket midpoints, clamped to the exact observed
    [min]/[max].  0 when empty. *)

val p50 : t -> float
val p95 : t -> float
val p99 : t -> float

val merge_into : dst:t -> t -> unit
(** Bucket-wise sum: exact, associative and commutative for equal
    scales.  @raise Invalid_argument on a scale mismatch. *)

val reset : t -> unit

val buckets : t -> (float * int) list
(** Non-empty buckets as [(le, cumulative_count)] pairs in ascending
    [le] order, where [le] is the bucket's inclusive upper edge in
    value units — exactly the series a Prometheus histogram exposition
    needs (the caller appends the [+Inf] bucket with {!count}). *)

val pp : Format.formatter -> t -> unit
