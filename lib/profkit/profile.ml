(* Phase-attribution timer + speculation analytics for the concurrent
   executor.  The design constraint is observability without effect:
   the profile only ever *reads* the clock and increments preallocated
   counters/histograms, so a profiled run must stay bit-identical to an
   unprofiled one (enforced by test_equivalence and bench
   overhead-check).

   Time attribution is exclusive and contiguous: [round_begin] marks
   the round start, every [enter] charges the interval since the last
   mark to the phase being *left*, and [round_close] charges the tail —
   so the per-round phase times sum to the round wall time exactly, by
   construction (the >= 90% coverage acceptance bound is met with
   equality).

   Mutable floats live in the flat [fs] float array: float fields of a
   mixed record would re-box on every store, and [enter] runs several
   times per round inside the executor loop. *)

type phase =
  | Fault_injection
  | Inject
  | Plan_wave
  | Commit
  | Delivery
  | Invariant_check
  | Other

let phases =
  [ Fault_injection; Inject; Plan_wave; Commit; Delivery; Invariant_check; Other ]

let n_phases = 7

let phase_index = function
  | Fault_injection -> 0
  | Inject -> 1
  | Plan_wave -> 2
  | Commit -> 3
  | Delivery -> 4
  | Invariant_check -> 5
  | Other -> 6

let phase_name = function
  | Fault_injection -> "fault_injection"
  | Inject -> "inject"
  | Plan_wave -> "plan_wave"
  | Commit -> "commit"
  | Delivery -> "delivery"
  | Invariant_check -> "invariant_check"
  | Other -> "other"

(* fs layout *)
let f_mark = 0
let f_round_start = 1
let f_round_wall = 2 (* frozen by round_close, read until round_commit *)
let f_wall = 3 (* sum of committed round walls *)
let f_imb_sum = 4
let f_imb_max = 5
let f_round0 = 6 (* n_phases per-round accumulators *)
let f_total0 = f_round0 + n_phases (* n_phases whole-run totals *)
let fs_len = f_total0 + n_phases

type t = {
  fs : float array;
  hist : Histogram.t array; (* per-phase per-round µs distributions *)
  wall_hist : Histogram.t; (* per-round wall µs distribution *)
  mutable cur : int;
  mutable rounds : int;
  mutable stamp_hits : int;
  mutable stamp_misses : int;
  mutable replayed : int;
  mutable fallback : int;
  mutable seq_slots : int;
  mutable deliver_slots : int;
  mutable shape_hits : int;
  mutable conflicts : int;
  mutable waves : int;
  mutable wave_slots : int;
  mutable wave_members : int;
}

let create () =
  {
    fs = Array.make fs_len 0.;
    hist = Array.init n_phases (fun _ -> Histogram.create ());
    wall_hist = Histogram.create ();
    cur = phase_index Other;
    rounds = 0;
    stamp_hits = 0;
    stamp_misses = 0;
    replayed = 0;
    fallback = 0;
    seq_slots = 0;
    deliver_slots = 0;
    shape_hits = 0;
    conflicts = 0;
    waves = 0;
    wave_slots = 0;
    wave_members = 0;
  }

(* lint: allow no-alloc -- Clock.now_us returns a C-stub float whose box
   is the only allocation on this path; profiling is opt-in. *)
let now () = Obskit.Clock.now_us ()

let round_begin t =
  let n = now () in
  t.fs.(f_round_start) <- n;
  t.fs.(f_mark) <- n;
  t.cur <- phase_index Other

let enter t phase =
  let n = now () in
  let i = t.cur in
  t.fs.(f_round0 + i) <- t.fs.(f_round0 + i) +. (n -. t.fs.(f_mark));
  t.fs.(f_mark) <- n;
  t.cur <- phase_index phase

let round_close t =
  let n = now () in
  let i = t.cur in
  t.fs.(f_round0 + i) <- t.fs.(f_round0 + i) +. (n -. t.fs.(f_mark));
  t.fs.(f_mark) <- n;
  t.fs.(f_round_wall) <- n -. t.fs.(f_round_start)

let round_us t = t.fs.(f_round_wall)
let phase_round_us t phase = t.fs.(f_round0 + phase_index phase)

let round_commit t =
  for i = 0 to n_phases - 1 do
    let v = t.fs.(f_round0 + i) in
    t.fs.(f_total0 + i) <- t.fs.(f_total0 + i) +. v;
    Histogram.record t.hist.(i) v;
    t.fs.(f_round0 + i) <- 0.
  done;
  t.fs.(f_wall) <- t.fs.(f_wall) +. t.fs.(f_round_wall);
  Histogram.record t.wall_hist t.fs.(f_round_wall);
  t.fs.(f_round_wall) <- 0.;
  t.rounds <- t.rounds + 1

(* Speculation / work counters — plain field bumps, allocation-free. *)
let stamp_hit t = t.stamp_hits <- t.stamp_hits + 1
let stamp_miss t = t.stamp_misses <- t.stamp_misses + 1
let replay t = t.replayed <- t.replayed + 1
let fallback t = t.fallback <- t.fallback + 1
let seq_slot t = t.seq_slots <- t.seq_slots + 1
let deliver_slot t = t.deliver_slots <- t.deliver_slots + 1
let shape_hit t = t.shape_hits <- t.shape_hits + 1
let conflict t = t.conflicts <- t.conflicts + 1

let wave t ~members ~busiest ~slots =
  t.waves <- t.waves + 1;
  t.wave_slots <- t.wave_slots + slots;
  t.wave_members <- t.wave_members + members;
  if slots > 0 && members > 0 then begin
    (* busiest-member share relative to a perfect split: 1.0 means the
       wave was perfectly balanced, [members] means one member planned
       every slot. *)
    let imb = float_of_int (busiest * members) /. float_of_int slots in
    t.fs.(f_imb_sum) <- t.fs.(f_imb_sum) +. imb;
    if imb > t.fs.(f_imb_max) then t.fs.(f_imb_max) <- imb
  end

(* Accessors *)
let rounds t = t.rounds
let wall_us t = t.fs.(f_wall)
let total_us t phase = t.fs.(f_total0 + phase_index phase)
let hist t phase = t.hist.(phase_index phase)
let wall_hist t = t.wall_hist
let stamp_hits t = t.stamp_hits
let stamp_misses t = t.stamp_misses
let replayed t = t.replayed
let fallback_slots t = t.fallback
let seq_slots t = t.seq_slots
let deliver_slots t = t.deliver_slots
let shape_hits t = t.shape_hits
let conflicts t = t.conflicts
let waves t = t.waves
let wave_slots t = t.wave_slots
let wave_members t = t.wave_members

let stamp_hit_rate t =
  let total = t.stamp_hits + t.stamp_misses in
  if total = 0 then 0. else float_of_int t.stamp_hits /. float_of_int total

let avg_imbalance t =
  if t.waves = 0 then 0. else t.fs.(f_imb_sum) /. float_of_int t.waves

let max_imbalance t = t.fs.(f_imb_max)

let counters t =
  [
    ("stamp_hits", t.stamp_hits);
    ("stamp_misses", t.stamp_misses);
    ("replayed_slots", t.replayed);
    ("fallback_slots", t.fallback);
    ("seq_slots", t.seq_slots);
    ("deliver_slots", t.deliver_slots);
    ("shape_hits", t.shape_hits);
    ("claim_conflicts", t.conflicts);
    ("waves", t.waves);
    ("wave_slots", t.wave_slots);
    ("wave_members", t.wave_members);
  ]

let pp fmt t =
  Format.fprintf fmt "rounds=%d wall=%.0fus" t.rounds (wall_us t);
  List.iter
    (fun p ->
      let us = total_us t p in
      if us > 0. then Format.fprintf fmt " %s=%.0fus" (phase_name p) us)
    phases;
  List.iter (fun (k, v) -> if v <> 0 then Format.fprintf fmt " %s=%d" k v) (counters t)
