(* Log-bucketed (HDR-style) histogram over a fixed, preallocated bucket
   array.  Values are scaled to integer "ticks" and bucketed by the
   position of their most significant bit with [sub_bits] bits of
   sub-bucket resolution, so every record is O(1), the whole structure
   is two int arrays plus a handful of scalars, and any quantile is
   reconstructed with relative error bounded by [2^-sub_bits].

   Negative values get a mirrored bucket array; quantile walks descend
   the negative side (largest magnitude = smallest value) before
   ascending the positive side.

   Allocation discipline: [record] must not allocate in steady state —
   the executors call it from profiled hot loops.  Mutable floats
   therefore live in the flat [fs] float array (unboxed storage);
   mutable float *fields* of a mixed record would re-box on every
   store. *)

let sub_bits = 5
let sub = 1 lsl sub_bits (* 32 sub-buckets per power of two *)
let n_buckets = 2048

(* Highest index ever produced: msb 62 -> (62-4)*32+31 = 1887, so the
   fixed 2048-slot array covers the whole non-negative int range. *)

(* fs slots *)
let f_sum = 0
let f_min = 1
let f_max = 2
let f_sumsq = 3
let fs_len = 4

type t = {
  pos : int array;
  neg : int array;
  fs : float array;
  mutable count : int;
  scale : float; (* ticks per unit of recorded value *)
}

let create ?(scale = 1000.) () =
  if not (Float.is_finite scale) || scale <= 0. then
    invalid_arg "Histogram.create: scale must be positive and finite";
  let fs = Array.make fs_len 0. in
  fs.(f_min) <- Float.infinity;
  fs.(f_max) <- Float.neg_infinity;
  { pos = Array.make n_buckets 0; neg = Array.make n_buckets 0; fs; count = 0; scale }

let scale t = t.scale
let count t = t.count
let is_empty t = t.count = 0
let sum t = t.fs.(f_sum)
let min t = if t.count = 0 then 0. else t.fs.(f_min)
let max t = if t.count = 0 then 0. else t.fs.(f_max)
let mean t = if t.count = 0 then 0. else t.fs.(f_sum) /. float_of_int t.count

let variance t =
  if t.count < 2 then 0.
  else
    let n = float_of_int t.count in
    let v = (t.fs.(f_sumsq) -. (t.fs.(f_sum) *. t.fs.(f_sum) /. n)) /. (n -. 1.) in
    if v > 0. then v else 0.

let std t = sqrt (variance t)

(* Position of the most significant set bit of [m > 0], by constant-step
   binary search.  [Stdlib] has no clz and [Float.frexp] allocates a
   tuple; the local refs below compile to mutable stack slots in native
   code, so this stays allocation-free. *)
let msb m =
  let e = ref 0 and m = ref m in
  if !m lsr 32 <> 0 then (
    e := !e + 32;
    m := !m lsr 32);
  if !m lsr 16 <> 0 then (
    e := !e + 16;
    m := !m lsr 16);
  if !m lsr 8 <> 0 then (
    e := !e + 8;
    m := !m lsr 8);
  if !m lsr 4 <> 0 then (
    e := !e + 4;
    m := !m lsr 4);
  if !m lsr 2 <> 0 then (
    e := !e + 2;
    m := !m lsr 2);
  if !m lsr 1 <> 0 then e := !e + 1;
  !e

let index_of_tick m =
  if m < sub then m
  else
    let e = msb m in
    ((e - sub_bits + 1) * sub) + ((m lsr (e - sub_bits)) - sub)

(* Inclusive tick range reconstructed from a bucket index. *)
let tick_lower i =
  if i < sub then i
  else
    let e = (i / sub) + sub_bits - 1 and u = i mod sub in
    (sub + u) lsl (e - sub_bits)

let tick_upper i =
  if i < sub then i
  else
    let e = (i / sub) + sub_bits - 1 and u = i mod sub in
    ((sub + u + 1) lsl (e - sub_bits)) - 1

(* 2^62 as a float: magnitudes at or above this clamp to max_int before
   int_of_float (whose behaviour on out-of-range floats is undefined). *)
let tick_cap = 4.611686018427387904e18

let record t v =
  if not (Float.is_nan v) then begin
    let m_f = Float.abs v *. t.scale in
    let m = if m_f >= tick_cap then max_int else int_of_float (m_f +. 0.5) in
    let i = index_of_tick m in
    let counts = if v < 0. then t.neg else t.pos in
    counts.(i) <- counts.(i) + 1;
    t.count <- t.count + 1;
    t.fs.(f_sum) <- t.fs.(f_sum) +. v;
    t.fs.(f_sumsq) <- t.fs.(f_sumsq) +. (v *. v);
    if v < t.fs.(f_min) then t.fs.(f_min) <- v;
    if v > t.fs.(f_max) then t.fs.(f_max) <- v
  end

let reset t =
  Array.fill t.pos 0 n_buckets 0;
  Array.fill t.neg 0 n_buckets 0;
  t.count <- 0;
  t.fs.(f_sum) <- 0.;
  t.fs.(f_sumsq) <- 0.;
  t.fs.(f_min) <- Float.infinity;
  t.fs.(f_max) <- Float.neg_infinity

let merge_into ~dst src =
  if not (Float.abs (dst.scale -. src.scale) <= 1e-9 *. Float.abs dst.scale) then
    invalid_arg "Histogram.merge_into: scale mismatch";
  for i = 0 to n_buckets - 1 do
    dst.pos.(i) <- dst.pos.(i) + src.pos.(i);
    dst.neg.(i) <- dst.neg.(i) + src.neg.(i)
  done;
  dst.count <- dst.count + src.count;
  dst.fs.(f_sum) <- dst.fs.(f_sum) +. src.fs.(f_sum);
  dst.fs.(f_sumsq) <- dst.fs.(f_sumsq) +. src.fs.(f_sumsq);
  if src.count > 0 then begin
    if src.fs.(f_min) < dst.fs.(f_min) then dst.fs.(f_min) <- src.fs.(f_min);
    if src.fs.(f_max) > dst.fs.(f_max) then dst.fs.(f_max) <- src.fs.(f_max)
  end

(* Midpoint of a bucket's tick range, back in value units. *)
let bucket_mid t i =
  float_of_int (tick_lower i + tick_upper i) /. (2. *. t.scale)

let quantile t q =
  if t.count = 0 then 0.
  else begin
    let q = if q < 0. then 0. else if q > 1. then 1. else q in
    let rank = int_of_float (Float.ceil (q *. float_of_int t.count)) in
    let rank = if rank < 1 then 1 else rank in
    let cum = ref 0 in
    let result = ref Float.nan in
    (* Negative side first, largest magnitude (smallest value) down. *)
    let i = ref (n_buckets - 1) in
    while Float.is_nan !result && !i >= 0 do
      let c = t.neg.(!i) in
      if c > 0 then begin
        cum := !cum + c;
        if !cum >= rank then result := -.bucket_mid t !i
      end;
      decr i
    done;
    let i = ref 0 in
    while Float.is_nan !result && !i < n_buckets do
      let c = t.pos.(!i) in
      if c > 0 then begin
        cum := !cum + c;
        if !cum >= rank then result := bucket_mid t !i
      end;
      incr i
    done;
    (* Clamp reconstructed midpoints to the exact observed extrema so
       q=0/q=1 round-trip min/max and no estimate leaves the data
       range. *)
    let r = if Float.is_nan !result then 0. else !result in
    let r = if r < t.fs.(f_min) then t.fs.(f_min) else r in
    if r > t.fs.(f_max) then t.fs.(f_max) else r
  end

let p50 t = quantile t 0.50
let p95 t = quantile t 0.95
let p99 t = quantile t 0.99

let buckets t =
  let acc = ref [] and cum = ref 0 in
  for i = n_buckets - 1 downto 0 do
    let c = t.neg.(i) in
    if c > 0 then begin
      cum := !cum + c;
      (* The value interval of negative bucket i is
         [-upper; -lower]; its inclusive upper edge is -lower. *)
      acc := (-.float_of_int (tick_lower i) /. t.scale, !cum) :: !acc
    end
  done;
  for i = 0 to n_buckets - 1 do
    let c = t.pos.(i) in
    if c > 0 then begin
      cum := !cum + c;
      acc := (float_of_int (tick_upper i) /. t.scale, !cum) :: !acc
    end
  done;
  List.rev !acc

let pp fmt t =
  Format.fprintf fmt "n=%d mean=%.3f min=%.3f max=%.3f p50=%.3f p95=%.3f p99=%.3f"
    t.count (mean t) (min t) (max t) (p50 t) (p95 t) (p99 t)
