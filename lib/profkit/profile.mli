(** Phase-level self-profiling for the executors: exclusive wall-time
    attribution per round phase plus speculation-efficiency counters.

    Purely observational — a profile only reads {!Obskit.Clock.now_us}
    and bumps preallocated counters and {!Histogram}s, so enabling it
    cannot change results: profiled runs stay bit-identical to
    unprofiled ones at every domain count (enforced by
    [test_equivalence] and [bench overhead-check]).

    Time attribution is exclusive and contiguous.  {!round_begin}
    marks the round start; each {!enter} charges the interval since
    the previous mark to the phase being {e left}; {!round_close}
    charges the tail.  Per-round phase times therefore sum to the
    round wall time exactly.

    The per-round lifecycle the executor drives:
    {[
      round_begin p;
      enter p Fault_injection; ...; enter p Commit; ...;
      round_close p;
      (* read phase_round_us / round_us, e.g. to emit events *)
      round_commit p
    ]} *)

type phase =
  | Fault_injection  (** Faultkit round-boundary crash windows. *)
  | Inject  (** Trace injection and priority-queue commit. *)
  | Plan_wave  (** Parallel speculative plan wave over the team. *)
  | Commit
      (** Serial in-order commit walk: stamp validation, replay or
          fallback probing, claims, rotations.  The sequential visit
          (small rounds, or [domains = 1]) fuses planning into this
          phase. *)
  | Delivery  (** Delivered-message drop/latency bookkeeping. *)
  | Invariant_check  (** Structural audits ([check_invariants]). *)
  | Other  (** Remaining round time (loop bookkeeping, telemetry). *)

val phases : phase list
(** All phases, in a stable export order. *)

val phase_name : phase -> string
val phase_index : phase -> int
(** Dense index in [0; 6] — stable, matches {!phases} order. *)

type t

val create : unit -> t

(** {2 Round lifecycle (executor side)} *)

val round_begin : t -> unit
val enter : t -> phase -> unit
val round_close : t -> unit

val round_us : t -> float
(** Wall µs of the last closed round; valid between {!round_close} and
    {!round_commit}. *)

val phase_round_us : t -> phase -> float
(** Per-round phase µs accumulated so far; valid until
    {!round_commit} resets it. *)

val round_commit : t -> unit
(** Fold the closed round into the whole-run totals and per-phase
    histograms, then reset the per-round state. *)

(** {2 Speculation / work counters} *)

val stamp_hit : t -> unit
(** A speculated slot whose recorded read set validated against the
    live per-node stamps — its plan replays without re-probing. *)

val stamp_miss : t -> unit
(** A speculated slot invalidated by an earlier commit — falls back to
    a serial re-probe. *)

val replay : t -> unit
(** A slot committed from its speculated plan. *)

val fallback : t -> unit
(** A slot committed via serial re-probe after invalidation. *)

val seq_slot : t -> unit
(** A slot planned serially (not covered by the wave). *)

val deliver_slot : t -> unit
val shape_hit : t -> unit
(** A turn served from the per-message step-shape cache. *)

val conflict : t -> unit
(** A pause or bypass caused by a cluster-claim conflict. *)

val wave : t -> members:int -> busiest:int -> slots:int -> unit
(** One completed plan wave: [members] team members planned [slots]
    slots in total, the busiest single member planning [busiest].
    Feeds the imbalance statistics ([busiest * members / slots]; 1.0 =
    perfectly balanced, [members] = fully serialized). *)

(** {2 Accessors (export side)} *)

val rounds : t -> int
val wall_us : t -> float
(** Sum of committed round wall times — phase totals sum to exactly
    this value. *)

val total_us : t -> phase -> float
val hist : t -> phase -> Histogram.t
(** Per-round µs distribution of one phase. *)

val wall_hist : t -> Histogram.t
(** Per-round wall-µs distribution. *)

val stamp_hits : t -> int
val stamp_misses : t -> int
val stamp_hit_rate : t -> float
(** [hits / (hits + misses)]; 0 when no slot was ever validated. *)

val replayed : t -> int
val fallback_slots : t -> int
val seq_slots : t -> int
val deliver_slots : t -> int
val shape_hits : t -> int
val conflicts : t -> int
val waves : t -> int
val wave_slots : t -> int
val wave_members : t -> int

val avg_imbalance : t -> float
(** Mean per-wave busiest-member imbalance; 0 when no wave ran. *)

val max_imbalance : t -> float

val counters : t -> (string * int) list
(** All work counters as [(name, value)] in a stable export order. *)

val pp : Format.formatter -> t -> unit
