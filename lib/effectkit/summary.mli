(** The effect domain shared by the effectkit passes: what a function
    writes, what it calls, and what purity contract it carries. *)

type target =
  | Field of string  (** [r.f <- v]: mutable record field, by name *)
  | Arr of string  (** Array/Bytes set through a named receiver *)
  | Ref of string  (** [:=], [incr], [decr] on a named ref *)
  | Opaque of string
      (** write through an external with no named receiver *)

type requirement =
  | Pure
      (** transitively no writes, no nondeterminism, no unknown callees *)
  | Wave
      (** transitive writes confined to the module-scoped wave-local
          allowlist (see {!Analyze}) *)

type resolved =
  | Known of string  (** canonical in-tree function *)
  | Ext_pure
  | Ext_write of string * target  (** external name, what it writes *)
  | Ext_nondet of string * string  (** external name, why it is banned *)
  | Unknown of string  (** dotted name effectkit cannot resolve *)

type site = { line : int; col : int }

type fact = Write of target | Call of resolved

type info = {
  name : string;  (** canonical: ["Cbnet.Potential.node_rank_ro"] *)
  modname : string;  (** canonical module: ["Cbnet.Potential"] *)
  file : string;  (** repo-relative path of the defining file *)
  def_line : int;
  requirement : requirement option;
  implicit : bool;
      (** requirement seeded by naming convention ([*_ro], the
          speculation probe), not by an [(* effect: ... *)] comment *)
  facts : (fact * site) list;  (** direct facts, in source order *)
}

val target_name : target -> string
(** The bare receiver/field name the allowlist matches on. *)

val target_to_string : target -> string
val requirement_to_string : requirement -> string
