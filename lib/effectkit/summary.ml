(* The effect domain.  A function's summary is the set of mutations it
   can perform, each tagged with the module whose state it touches —
   the wave-race allowlist is module-scoped, so a [tag] field write in
   [Cbnet.Concurrent] and one in [Cbnet.Message] are different facts
   even though the untyped AST only sees the field name. *)

type target =
  | Field of string  (* r.f <- v: mutable record field, by name *)
  | Arr of string  (* Array/Bytes set through a named receiver *)
  | Ref of string  (* :=, incr, decr on a named ref *)
  | Opaque of string  (* write through an external with no named receiver *)

type requirement =
  | Pure  (* transitively no writes, no nondeterminism, no unknowns *)
  | Wave  (* transitive writes confined to the wave-local allowlist *)

type resolved =
  | Known of string  (* canonical in-tree function, e.g. "Cbnet.Step.cluster" *)
  | Ext_pure
  | Ext_write of string * target  (* external name, what it writes *)
  | Ext_nondet of string * string  (* external name, why it is banned *)
  | Unknown of string  (* dotted name effectkit cannot resolve *)

type site = { line : int; col : int }

type fact = Write of target | Call of resolved

type info = {
  name : string;  (* canonical: "Cbnet.Potential.node_rank_ro" *)
  modname : string;  (* canonical module: "Cbnet.Potential" *)
  file : string;  (* repo-relative path of the defining file *)
  def_line : int;
  requirement : requirement option;
  implicit : bool;  (* requirement seeded by naming convention, not comment *)
  facts : (fact * site) list;  (* direct facts, in source order *)
}

let target_name = function Field f | Arr f | Ref f | Opaque f -> f

let target_to_string = function
  | Field f -> Printf.sprintf "mutable field %s" f
  | Arr a -> Printf.sprintf "array %s" a
  | Ref r -> Printf.sprintf "ref %s" r
  | Opaque w -> Printf.sprintf "state via %s" w

let requirement_to_string = function Pure -> "pure" | Wave -> "wave"
