(** Module-qualified call graph over the lib/ tree.

    One {!Summary.info} per value binding, with direct write facts and
    calls resolved to canonical in-tree names ([Cbnet.Step.cluster]),
    classified externals, or {!Summary.Unknown}.  Files that fail to
    parse are skipped (the per-file lint already reports them); calls
    into them resolve as [Unknown]. *)

type t = {
  funs : (string, Summary.info) Hashtbl.t;
  order : string list;  (** canonical names, deterministic input order *)
  mods : (string, string) Hashtbl.t;  (** canonical module -> file *)
  libs : (string, unit) Hashtbl.t;  (** library wrapper names present *)
  errors : Lintkit.Finding.t list;
      (** malformed or unattached [(* effect: ... *)] annotations,
          reported under the lint-directive rule *)
}

val build : (string * Lintkit.Source.t) list -> t
(** Build the graph from [(repo-relative path, source)] pairs.
    Non-[lib/<dir>/<file>.ml] inputs are ignored. *)

val lib_file : string -> bool
(** Is this path part of the analysis scope ([lib/<dir>/<file>.ml])? *)

val annotation_of_text : string -> (Summary.requirement, string) result option
(** Parse one comment body as an effect annotation: [None] for an
    ordinary comment, [Some (Error _)] for a malformed one.  Exposed
    for tests. *)
