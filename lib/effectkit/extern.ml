(* Classification of names that resolve outside the lib/ tree.  The
   untyped AST gives us dotted paths only, so this is a curated model
   of the stdlib surface this codebase uses: an explicit write table,
   an explicit nondeterminism table, and a pure table (exact names
   plus whole-module prefixes).  Precedence is writes/nondet before
   the pure prefixes — [Array.set] must not be blessed by the
   [Array.] prefix — and anything dotted that matches nothing stays
   [Unknown], which the pure/wave rules report rather than trust. *)

let mem table name = List.exists (fun (n, _) -> String.equal n name) table
let find table name = List.assoc name table

(* --- writes -------------------------------------------------------- *)

(* Externals that mutate one of their arguments or a global.  The
   receiver-naming for Array/Bytes/ref writes happens at the call site
   (see Callgraph); these entries catch the same functions when they
   escape as values or take an unnamed receiver. *)
let writes =
  [
    ("Array.set", "array");
    ("Array.unsafe_set", "array");
    ("Array.fill", "array");
    ("Array.blit", "array");
    ("Array.sort", "array");
    ("Array.fast_sort", "array");
    ("Array.stable_sort", "array");
    ("Bytes.set", "bytes");
    ("Bytes.unsafe_set", "bytes");
    ("Bytes.fill", "bytes");
    ("Bytes.blit", "bytes");
    ("Bytes.blit_string", "bytes");
    (":=", "ref");
    ("incr", "ref");
    ("decr", "ref");
    ("Hashtbl.add", "hashtable");
    ("Hashtbl.replace", "hashtable");
    ("Hashtbl.remove", "hashtable");
    ("Hashtbl.clear", "hashtable");
    ("Hashtbl.reset", "hashtable");
    ("Hashtbl.filter_map_inplace", "hashtable");
    ("Queue.add", "queue");
    ("Queue.push", "queue");
    ("Queue.pop", "queue");
    ("Queue.take", "queue");
    ("Queue.clear", "queue");
    ("Queue.transfer", "queue");
    ("Stack.push", "stack");
    ("Stack.pop", "stack");
    ("Stack.clear", "stack");
    ("Buffer.add_string", "buffer");
    ("Buffer.add_char", "buffer");
    ("Buffer.add_bytes", "buffer");
    ("Buffer.add_substring", "buffer");
    ("Buffer.add_buffer", "buffer");
    ("Buffer.clear", "buffer");
    ("Buffer.reset", "buffer");
    ("Buffer.truncate", "buffer");
    ("Atomic.set", "atomic");
    ("Atomic.exchange", "atomic");
    ("Atomic.compare_and_set", "atomic");
    ("Atomic.fetch_and_add", "atomic");
    ("Atomic.incr", "atomic");
    ("Atomic.decr", "atomic");
    ("Mutex.lock", "mutex");
    ("Mutex.unlock", "mutex");
    ("Mutex.try_lock", "mutex");
    ("Condition.wait", "condition");
    ("Condition.signal", "condition");
    ("Condition.broadcast", "condition");
    ("Domain.spawn", "domain");
    ("Domain.join", "domain");
    ("print_string", "stdout");
    ("print_bytes", "stdout");
    ("print_int", "stdout");
    ("print_float", "stdout");
    ("print_char", "stdout");
    ("print_endline", "stdout");
    ("print_newline", "stdout");
    ("prerr_string", "stderr");
    ("prerr_endline", "stderr");
    ("prerr_newline", "stderr");
    ("output_string", "channel");
    ("output_char", "channel");
    ("output_byte", "channel");
    ("output_bytes", "channel");
    ("output_substring", "channel");
    ("flush", "channel");
    ("flush_all", "channel");
    ("close_out", "channel");
    ("close_out_noerr", "channel");
    ("open_out", "channel");
    ("open_out_bin", "channel");
    ("open_in", "channel");
    ("open_in_bin", "channel");
    ("close_in", "channel");
    ("close_in_noerr", "channel");
    ("input_line", "channel");
    ("input_char", "channel");
    ("really_input_string", "channel");
    ("in_channel_length", "channel");
    ("read_line", "stdin");
    ("exit", "process");
    ("at_exit", "process");
    ("Printf.printf", "stdout");
    ("Printf.eprintf", "stderr");
    ("Printf.fprintf", "channel");
    ("Format.printf", "stdout");
    ("Format.eprintf", "stderr");
    ("Format.fprintf", "formatter");
    ("Format.print_string", "stdout");
    ("Format.print_newline", "stdout");
    ("Format.print_flush", "stdout");
  ]

(* Prefix writes: modules whose whole surface mutates hidden state. *)
let write_prefixes = [ ("Random.State.", "rng state") ]

(* --- nondeterminism ------------------------------------------------ *)

let nondets =
  [
    ("Unix.gettimeofday", "wall clock");
    ("Unix.time", "wall clock");
    ("Unix.getpid", "process identity");
    ("Unix.getenv", "environment lookup");
    ("Sys.time", "CPU clock");
    ("Sys.getenv", "environment lookup");
    ("Sys.getenv_opt", "environment lookup");
    ("Random.self_init", "self-seeded RNG");
    ("Hashtbl.hash", "polymorphic hash (heap-layout dependent)");
    ("Hashtbl.seeded_hash", "polymorphic hash (heap-layout dependent)");
    ("Hashtbl.hash_param", "polymorphic hash (heap-layout dependent)");
    ("Domain.self", "domain identity");
    ("Domain.recommended_domain_count", "host topology");
  ]

(* Prefix nondets: the global-state Random surface (checked after
   [Random.State.], whose explicit-state functions are merely writes). *)
let nondet_prefixes = [ ("Random.", "global-state RNG") ]

(* --- pure ---------------------------------------------------------- *)

let pures =
  [
    "+"; "-"; "*"; "/"; "mod"; "abs"; "land"; "lor"; "lxor"; "lnot"; "lsl";
    "lsr"; "asr"; "+."; "-."; "*."; "/."; "**"; "~-"; "~-."; "~+"; "~+.";
    "="; "<>"; "=="; "!="; "<"; ">"; "<="; ">="; "compare"; "min"; "max";
    "&&"; "||"; "not"; "@"; "^"; "^^"; "!"; "|>"; "@@"; "fst"; "snd";
    "ignore"; "succ"; "pred"; "ref"; "float_of_int"; "int_of_float";
    "truncate"; "ceil"; "floor"; "sqrt"; "exp"; "log"; "log10"; "log2";
    "abs_float"; "int_of_char"; "char_of_int"; "string_of_int";
    "int_of_string"; "int_of_string_opt"; "string_of_float";
    "float_of_string"; "float_of_string_opt"; "string_of_bool";
    "bool_of_string"; "raise"; "raise_notrace"; "failwith"; "invalid_arg";
    "nan"; "infinity"; "neg_infinity"; "epsilon_float"; "max_float";
    "min_float"; "max_int"; "min_int"; "Printf.sprintf"; "Printf.ksprintf";
    "Format.sprintf"; "Format.asprintf"; "Sys.word_size"; "Sys.int_size";
    "Sys.max_array_length"; "Sys.big_endian"; "Sys.ocaml_version";
    "Sys.opaque_identity";
  ]

(* Modules that are pure once their explicit write/nondet entries above
   have been filtered out: containers read back what the caller put in,
   and allocation is not a shared-state write. *)
let pure_prefixes =
  [
    "List."; "ListLabels."; "Array."; "ArrayLabels."; "Bytes."; "String.";
    "StringLabels."; "Char."; "Int."; "Int32."; "Int64."; "Nativeint.";
    "Float."; "Bool."; "Option."; "Result."; "Either."; "Fun."; "Seq.";
    "Lazy."; "Filename."; "Map."; "Set."; "Queue."; "Stack."; "Buffer.";
    "Hashtbl."; "Atomic."; "Obj.";
  ]

let starts_with ~prefix s =
  let plen = String.length prefix in
  String.length s >= plen && String.equal (String.sub s 0 plen) prefix

let find_prefix table name =
  List.find_opt (fun (p, _) -> starts_with ~prefix:p name) table

(* [name] is Stdlib-stripped and alias-expanded.  Never returns
   [Known]; bare names that match nothing are the caller's problem
   (locals and parameters are invisible to an untyped analysis). *)
let classify name : Summary.resolved option =
  if mem nondets name then Some (Ext_nondet (name, find nondets name))
  else if mem writes name then
    Some (Ext_write (name, Summary.Opaque (find writes name)))
  else
    match find_prefix write_prefixes name with
    | Some (_, what) -> Some (Ext_write (name, Summary.Opaque what))
    | None -> (
        match find_prefix nondet_prefixes name with
        | Some (_, why) -> Some (Ext_nondet (name, why))
        | None ->
            if List.exists (String.equal name) pures then Some Ext_pure
            else if
              Option.is_some
                (List.find_opt
                   (fun p -> starts_with ~prefix:p name)
                   pure_prefixes)
            then Some Ext_pure
            else if String.contains name '.' then Some (Unknown name)
            else None)

let nondet_why name = List.assoc_opt name nondets
