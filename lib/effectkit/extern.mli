(** Curated model of the stdlib surface: which externals write, which
    are nondeterministic, which are pure.  Everything dotted that the
    model does not cover classifies as {!Summary.Unknown} — the
    pure/wave rules report unknowns instead of assuming purity. *)

val classify : string -> Summary.resolved option
(** Classify a Stdlib-stripped, alias-expanded name that did not
    resolve to an in-tree definition.  [None] means a bare name with
    no entry — a local or parameter, invisible to the untyped
    analysis, which the caller drops. *)

val nondet_why : string -> string option
(** Why [name] is banned by the determinism rule, when it is. *)
