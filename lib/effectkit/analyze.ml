(* The three effect rule families, evaluated over {!Callgraph}:

   - [effect-pure]: a function annotated [(* effect: pure *)] must
     have an empty transitive write set, reach no nondeterminism, and
     call nothing unknown.
   - [wave-race]: a function annotated [(* effect: wave *)] (or a
     read-only twin by naming convention) may transitively write only
     the module-scoped wave-local allowlist below — plan buffers,
     speculation slots, per-member tallies.  Everything else is a
     race against the concurrent plan wave.
   - [determinism]: wall clocks, self-seeded RNG, polymorphic hashes
     and domain identity are banned outright in lib/core, lib/bstnet
     and lib/forest, whose outputs must be bit-identical across runs.

   Findings blame the frontier: a required function reports its own
   direct writes and its calls into *unrequired* dirty callees, while
   a required callee is skipped here and verified on its own — so one
   injected write produces exactly one finding, at the injection
   site.  Messages carry names, never positions, keeping baseline
   keys stable under unrelated edits. *)

let rule_pure = "effect-pure"
let rule_wave = "wave-race"
let rule_det = "determinism"

let rules = [ rule_pure; rule_wave; rule_det ]

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then false
    else String.equal (String.sub s i m) sub || go (i + 1)
  in
  go 0

let det_scope relpath =
  List.exists
    (fun d -> contains_sub relpath d)
    [ "lib/core/"; "lib/bstnet/"; "lib/forest/"; "lib/servekit/" ]

(* --- the wave-local allowlist -------------------------------------- *)

(* What the plan wave may write, by canonical module: the per-message
   Step plan buffers (every mutable field of Step.t plus the dphi
   box's [v]) and Concurrent's per-slot speculation state + per-member
   tallies.  Message fields, topology state and claim arrays are
   deliberately absent: the wave reads them, the serial commit writes
   them. *)
let wave_allowlist =
  [
    ( "Cbnet.Step",
      [
        "current"; "dst"; "kind"; "rotate"; "rotations"; "hops";
        "new_current"; "passed0"; "passed1"; "cluster0"; "cluster1";
        "cluster2"; "cluster3"; "anchor"; "v";
      ] );
    ( "Cbnet.Concurrent",
      [
        "tag"; "flags"; "c0"; "c1"; "c2"; "canchor"; "nreads"; "reads";
        "stamps"; "wave_planned"; "planned";
      ] );
  ]

let wave_allowed ~modname tgt =
  match tgt with
  | Summary.Opaque _ -> false
  | _ -> (
      match List.assoc_opt modname wave_allowlist with
      | None -> false
      | Some names ->
          List.exists (String.equal (Summary.target_name tgt)) names)

(* --- transitive summaries (least fixpoint) ------------------------- *)

type elem =
  | W of string * Summary.target  (* module of the write site, target *)
  | N of string * string  (* nondeterministic external, why *)
  | U of string  (* unknown callee *)

let elem_key = function
  | W (m, t) -> Printf.sprintf "0w|%s|%s" m (Summary.target_to_string t)
  | N (n, _) -> "1n|" ^ n
  | U n -> "2u|" ^ n

let elem_of_fact ~modname = function
  | Summary.Write tgt -> Some (W (modname, tgt))
  | Summary.Call (Summary.Ext_write (name, _)) ->
      Some (W (modname, Summary.Opaque name))
  | Summary.Call (Summary.Ext_nondet (n, why)) -> Some (N (n, why))
  | Summary.Call (Summary.Unknown n) -> Some (U n)
  | Summary.Call (Summary.Known _ | Summary.Ext_pure) -> None

(* Kleene iteration to the least fixpoint of
   [sum f = direct f ∪ ⋃ { sum g | f calls g }] over the set lattice;
   the tree has a few thousand functions and summaries stay small, so
   the quadratic worst case is irrelevant in practice. *)
let compute_sums (g : Callgraph.t) =
  let sums = Hashtbl.create 512 in
  List.iter (fun c -> Hashtbl.replace sums c (Hashtbl.create 8)) g.order;
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun c ->
        let info = Hashtbl.find g.funs c in
        let tbl = Hashtbl.find sums c in
        let add e =
          let k = elem_key e in
          if not (Hashtbl.mem tbl k) then begin
            Hashtbl.replace tbl k e;
            changed := true
          end
        in
        List.iter
          (fun (fact, _) ->
            match fact with
            | Summary.Call (Summary.Known callee) -> (
                match Hashtbl.find_opt sums callee with
                | Some ctbl ->
                    Hashtbl.iter
                      (fun k e ->
                        if not (Hashtbl.mem tbl k) then begin
                          Hashtbl.replace tbl k e;
                          changed := true
                        end)
                      ctbl
                | None -> ())
            | fact -> (
                match elem_of_fact ~modname:info.Summary.modname fact with
                | Some e -> add e
                | None -> ()))
          info.Summary.facts)
      g.order
  done;
  sums

let offends req e =
  match (e, req) with
  | W _, Summary.Pure -> true
  | W (m, t), Summary.Wave -> not (wave_allowed ~modname:m t)
  | (N _ | U _), _ -> true

(* First offending element of a summary, writes before nondeterminism
   before unknowns, lexicographic within a class — deterministic, so
   messages are stable across runs. *)
let violation req sum =
  Hashtbl.fold (fun k e acc -> (k, e) :: acc) sum []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)
  |> List.find_map (fun (_, e) -> if offends req e then Some e else None)

(* --- witness chains ------------------------------------------------ *)

let elem_desc = function
  | W (_, t) -> "writes " ^ Summary.target_to_string t
  | N (n, why) -> Printf.sprintf "reaches nondeterministic %s (%s)" n why
  | U n -> Printf.sprintf "calls %s, whose effects are unknown" n

(* The first direct fact of [canon] that offends [req], described. *)
let direct_violation (g : Callgraph.t) req canon =
  let info = Hashtbl.find g.funs canon in
  List.find_map
    (fun (fact, _) ->
      match elem_of_fact ~modname:info.Summary.modname fact with
      | Some e when offends req e -> Some (elem_desc e)
      | _ -> None)
    info.Summary.facts

(* Breadth-first over Known call edges from [start] to the nearest
   function with a direct offending fact: the innermost culprit, plus
   the chain that reaches it.  Edge order follows source order, so the
   witness is deterministic. *)
let witness (g : Callgraph.t) req start =
  let seen = Hashtbl.create 32 in
  let q = Queue.create () in
  Queue.add (start, []) q;
  Hashtbl.replace seen start ();
  let rec bfs () =
    if Queue.is_empty q then None
    else
      let canon, rev_path = Queue.pop q in
      match direct_violation g req canon with
      | Some desc -> Some (desc, List.rev (canon :: rev_path))
      | None ->
          let info = Hashtbl.find g.funs canon in
          List.iter
            (fun (fact, _) ->
              match fact with
              | Summary.Call (Summary.Known callee)
                when Hashtbl.mem g.funs callee
                     && not (Hashtbl.mem seen callee) ->
                  Hashtbl.replace seen callee ();
                  Queue.add (callee, canon :: rev_path) q
              | _ -> ())
            info.Summary.facts;
          bfs ()
  in
  bfs ()

let via_suffix path =
  match path with
  | [] | [ _ ] -> ""
  | _ :: chain -> Printf.sprintf " (via %s)" (String.concat " -> " chain)

(* --- rule evaluation ----------------------------------------------- *)

let origin (f : Summary.info) =
  match (f.requirement, f.implicit) with
  | Some Summary.Pure, false -> "(* effect: pure *)"
  | Some Summary.Wave, false -> "(* effect: wave *)"
  | Some _, true -> "a read-only twin by naming"
  | None, _ -> "unconstrained"

let contract (f : Summary.info) req =
  match req with
  | Summary.Pure -> Printf.sprintf "%s must stay pure (%s)" f.name (origin f)
  | Summary.Wave ->
      Printf.sprintf "%s runs in the plan wave (%s)" f.name (origin f)

let finding ~(f : Summary.info) ~rule ~(site : Summary.site) msg =
  Lintkit.Finding.v ~file:f.file ~line:site.Summary.line ~col:site.Summary.col
    ~rule msg

(* A required callee satisfies the caller's requirement by contract:
   it gets verified on its own, so the caller does not re-report it —
   this is what makes one injected write one finding. *)
let callee_satisfies req (callee : Summary.info) =
  match callee.requirement with
  | Some Summary.Pure -> true
  | Some Summary.Wave -> ( match req with Summary.Wave -> true | _ -> false)
  | None -> false

let check_required (g : Callgraph.t) sums (f : Summary.info) acc =
  match f.requirement with
  | None -> acc
  | Some req ->
      let rule =
        match req with Summary.Pure -> rule_pure | Summary.Wave -> rule_wave
      in
      let head = contract f req in
      List.fold_left
        (fun acc (fact, site) ->
          let report msg = finding ~f ~rule ~site msg :: acc in
          match fact with
          | Summary.Write tgt ->
              if offends req (W (f.modname, tgt)) then
                report
                  (Printf.sprintf "%s but writes %s%s" head
                     (Summary.target_to_string tgt)
                     (match req with
                     | Summary.Wave -> ", outside the wave-local allowlist"
                     | Summary.Pure -> ""))
              else acc
          | Summary.Call (Summary.Known callee) -> (
              let cinfo = Hashtbl.find g.funs callee in
              if callee_satisfies req cinfo then acc
              else
                match violation req (Hashtbl.find sums callee) with
                | None -> acc
                | Some e ->
                    let desc, path =
                      match witness g req callee with
                      | Some (desc, path) -> (desc, path)
                      | None -> (elem_desc e, [])
                    in
                    report
                      (Printf.sprintf "%s but calls %s, which %s%s" head
                         callee desc (via_suffix path)))
          | Summary.Call (Summary.Ext_write (name, tgt)) ->
              report
                (Printf.sprintf "%s but calls %s, which writes %s" head name
                   (Summary.target_to_string tgt))
          | Summary.Call (Summary.Ext_nondet (name, why)) ->
              report
                (Printf.sprintf "%s but reaches nondeterministic %s (%s)" head
                   name why)
          | Summary.Call (Summary.Unknown name) ->
              report
                (Printf.sprintf
                   "%s but calls %s, whose effects are unknown to effectkit \
                    (out-of-scope module); restructure or suppress with a \
                    lint allow"
                   head name)
          | Summary.Call Summary.Ext_pure -> acc)
        acc f.facts

let check_determinism (f : Summary.info) acc =
  if not (det_scope f.file) then acc
  else
    List.fold_left
      (fun acc (fact, site) ->
        match fact with
        | Summary.Call (Summary.Ext_nondet (name, why)) ->
            finding ~f ~rule:rule_det ~site
              (Printf.sprintf
                 "%s is nondeterministic (%s); lib/core, lib/bstnet, \
                  lib/forest and lib/servekit must stay bit-reproducible"
                 name why)
            :: acc
        | _ -> acc)
      acc f.facts

(* The wave closure is anchored on annotations inside Concurrent; if
   they all disappear, nothing above would fire, so the absence itself
   is a finding — deleting [(* effect: wave *)] comments cannot turn
   the race check off. *)
let wave_anchor_module = "Cbnet.Concurrent"

let check_wave_anchor (g : Callgraph.t) acc =
  match Hashtbl.find_opt g.mods wave_anchor_module with
  | None -> acc
  | Some file ->
      let anchored =
        List.exists
          (fun c ->
            let f = Hashtbl.find g.funs c in
            String.equal f.Summary.modname wave_anchor_module
            && (match f.Summary.requirement with
               | Some Summary.Wave -> true
               | _ -> false))
          g.order
      in
      if anchored then acc
      else
        Lintkit.Finding.v ~file ~line:1 ~col:1 ~rule:rule_wave
          (wave_anchor_module
         ^ " declares no (* effect: wave *) functions; the plan-wave closure \
            is unverified")
        :: acc

(* --- the engine pass ----------------------------------------------- *)

let pass ~enabled files =
  let relevant = List.filter (fun (p, _) -> Callgraph.lib_file p) files in
  if
    List.is_empty relevant
    || not (List.exists enabled rules)
  then []
  else begin
    let g = Callgraph.build relevant in
    let sums = compute_sums g in
    let acc = g.errors in
    let acc =
      List.fold_left
        (fun acc c ->
          let f = Hashtbl.find g.funs c in
          let acc =
            if enabled rule_pure || enabled rule_wave then
              check_required g sums f acc
            else acc
          in
          if enabled rule_det then check_determinism f acc else acc)
        acc g.order
    in
    let acc = if enabled rule_wave then check_wave_anchor g acc else acc in
    let keep (fd : Lintkit.Finding.t) =
      enabled fd.Lintkit.Finding.rule
      || String.equal fd.Lintkit.Finding.rule Lintkit.Engine.meta_directive
    in
    List.sort Lintkit.Finding.compare (List.filter keep acc)
  end

let analyze_strings files =
  let files =
    List.map
      (fun (path, code) ->
        (path, Lintkit.Source.of_string ~known:Lintkit.Rules.known ~path code))
      files
  in
  pass ~enabled:(fun _ -> true) files
