(** The effect rule families over the lib/ call graph: [effect-pure]
    (annotated functions must be transitively write-free), [wave-race]
    (the plan-wave closure may write only the module-scoped wave-local
    allowlist) and [determinism] (clocks, self-seeded RNG, polymorphic
    hashes and domain identity are banned in lib/core, lib/bstnet,
    lib/forest).  Semantics and annotation syntax: docs/LINTING.md,
    "Effect analysis". *)

val rule_pure : string
val rule_wave : string
val rule_det : string

val rules : string list
(** The three rule ids, for CLI plumbing. *)

val wave_allowed : modname:string -> Summary.target -> bool
(** Is this write target wave-local in [modname]? *)

val pass :
  enabled:(string -> bool) ->
  (string * Lintkit.Source.t) list ->
  Lintkit.Finding.t list
(** The tree-wide pass {!Lintkit.Engine.run} plugs in: builds the call
    graph over every [lib/<dir>/<file>.ml] input, computes least-
    fixpoint effect summaries, and reports raw findings (suppression
    and baselining happen in the engine).  Skips all work when none of
    the three rules is enabled. *)

val analyze_strings : (string * string) list -> Lintkit.Finding.t list
(** Run the pass over in-memory [(path, code)] fixtures with every
    rule enabled, unsuppressed.  Test entry point. *)
