(* Builds the module-qualified call graph over the lib/ tree: one
   {!Summary.info} per top-level (or nested-module) value binding,
   with its direct write facts and its calls resolved to canonical
   in-tree names, externals, or [Unknown].

   Canonical names follow dune's wrapping: [lib/<dir>/<file>.ml]
   defines module [<Lib>.<File>] where [<Lib>] is the library name
   ([core] → [Cbnet], every other directory capitalizes to its own
   name), so [lib/core/potential.ml]'s [node_rank_ro] is
   [Cbnet.Potential.node_rank_ro].

   Resolution is two-phase: first every file is parsed and its
   definitions, per-file module aliases ([module T = Bstnet.Topology])
   and raw facts are collected; then each raw call is resolved against
   the full definition table — mutual recursion and cross-file cycles
   need the whole map before the first lookup. *)

open Parsetree

(* --- names --------------------------------------------------------- *)

let starts_with ~prefix s =
  let plen = String.length prefix in
  String.length s >= plen && String.equal (String.sub s 0 plen) prefix

let ends_with ~suffix s =
  let slen = String.length suffix and n = String.length s in
  n >= slen && String.equal (String.sub s (n - slen) slen) suffix

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then false
    else String.equal (String.sub s i m) sub || go (i + 1)
  in
  go 0

let strip_stdlib name =
  let p = "Stdlib." in
  if starts_with ~prefix:p name then
    String.sub name (String.length p) (String.length name - String.length p)
  else name

let rec flatten_lid acc = function
  | Longident.Lident s -> Some (s :: acc)
  | Longident.Ldot (l, s) -> flatten_lid (s :: acc) l
  | Longident.Lapply _ -> None

let lid_str lid =
  match flatten_lid [] lid with
  | Some parts -> String.concat "." parts
  | None -> ""

let lid_last lid =
  match flatten_lid [] lid with
  | Some parts -> List.nth_opt (List.rev parts) 0
  | None -> None

let lib_of_dir = function
  | "core" -> "Cbnet"
  | d -> String.capitalize_ascii d

(* [lib/<dir>/<file>.ml] → (library wrapper, file module).  Anything
   else — bin/, test/, .mli — is outside the analysis. *)
let lib_module relpath =
  if not (Filename.check_suffix relpath ".ml") then None
  else
    match List.rev (String.split_on_char '/' relpath) with
    | base :: dir :: "lib" :: _ ->
        let base = Filename.chop_suffix base ".ml" in
        Some (lib_of_dir dir, String.capitalize_ascii base)
    | _ -> None

let lib_file relpath = Option.is_some (lib_module relpath)

(* --- effect annotations -------------------------------------------- *)

let is_separator tok =
  String.equal tok "--" || String.equal tok "\xe2\x80\x94" (* em dash *)

(* [Some (Ok req)] for a well-formed [effect:] annotation, [Some
   (Error m)] for a malformed one, [None] for an ordinary comment.
   Syntax mirrors the lint directives: [(* effect: pure *)] or
   [(* effect: wave -- justification *)]. *)
let annotation_of_text text =
  let text = String.trim text in
  let prefix = "effect:" in
  if not (starts_with ~prefix text) then None
  else
    let rest =
      String.sub text (String.length prefix)
        (String.length text - String.length prefix)
    in
    let tokens =
      String.split_on_char ' ' rest
      |> List.concat_map (String.split_on_char '\t')
      |> List.concat_map (String.split_on_char '\n')
      |> List.filter (fun s -> not (String.equal s ""))
    in
    match tokens with
    | "pure" :: rest when List.is_empty rest || is_separator (List.hd rest) ->
        Some (Ok Summary.Pure)
    | "wave" :: rest when List.is_empty rest || is_separator (List.hd rest) ->
        Some (Ok Summary.Wave)
    | tok :: _ ->
        Some
          (Error
             (Printf.sprintf
                "unknown effect annotation %S (expected pure or wave, with \
                 any justification after --)"
                tok))
    | [] -> Some (Error "empty effect annotation (expected pure or wave)")

(* --- phase A: per-file collection ---------------------------------- *)

type raw = Rwrite of Summary.target | Rcall of string

type def = {
  canon : string;
  dmod : string;
  dfile : string;
  dline : int;
  mutable draw : (raw * Summary.site) list;  (* reversed source order *)
  mutable dreq : Summary.requirement option;
  mutable dimplicit : bool;
}

type t = {
  funs : (string, Summary.info) Hashtbl.t;
  order : string list;  (* canonical names, deterministic input order *)
  mods : (string, string) Hashtbl.t;  (* canonical module -> file *)
  libs : (string, unit) Hashtbl.t;  (* library wrapper names present *)
  errors : Lintkit.Finding.t list;  (* malformed/unattached annotations *)
}

let site_of (loc : Location.t) =
  let p = loc.Location.loc_start in
  {
    Summary.line = p.Lexing.pos_lnum;
    col = p.Lexing.pos_cnum - p.Lexing.pos_bol + 1;
  }

let rec binding_name p =
  match p.ppat_desc with
  | Ppat_var { txt; _ } -> Some txt
  | Ppat_constraint (p, _) -> binding_name p
  | _ -> None

(* Receivers we can name: a bare or dotted identifier, or a record
   field projection ([slot.reads]). *)
let receiver_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> lid_last txt
  | Pexp_field (_, { txt; _ }) -> lid_last txt
  | _ -> None

let arr_set_heads =
  [ "Array.set"; "Array.unsafe_set"; "Array.fill"; "Bytes.set";
    "Bytes.unsafe_set"; "Bytes.fill" ]

let ref_write_heads = [ ":="; "incr"; "decr" ]

let mem_str xs s = List.exists (String.equal s) xs

(* Walk one binding's expression, recording writes (with named
   receivers where the AST shows one) and raw identifier occurrences.
   Occurrences, not just application heads: a function passed as a
   value ([Simkit.Pqueue.create M.priority_compare]) still contributes
   its effects to the caller.  Locals and parameters surface as bare
   names that resolve to nothing and are dropped — sound here because
   a local [let] body's facts are already folded into the enclosing
   binding; the known hole is a higher-order call through a parameter,
   which the docs call out. *)
let collect_facts add expr0 =
  let super = Ast_iterator.default_iterator in
  let expr (self : Ast_iterator.iterator) e =
    match e.pexp_desc with
    | Pexp_setfield (recv, { txt; _ }, v) ->
        (match lid_last txt with
        | Some f -> add (Rwrite (Summary.Field f)) e.pexp_loc
        | None -> add (Rwrite (Summary.Opaque "record field")) e.pexp_loc);
        self.expr self recv;
        self.expr self v
    | Pexp_apply (f, args) -> (
        let head =
          match f.pexp_desc with
          | Pexp_ident { txt; _ } -> strip_stdlib (lid_str txt)
          | _ -> ""
        in
        let receiver_target fallback =
          match args with
          | (_, r) :: _ -> (
              match receiver_name r with
              | Some n -> fallback n
              | None -> Summary.Opaque head)
          | [] -> Summary.Opaque head
        in
        if mem_str arr_set_heads head then begin
          add (Rwrite (receiver_target (fun n -> Summary.Arr n))) e.pexp_loc;
          List.iter (fun (_, a) -> self.expr self a) args
        end
        else if mem_str ref_write_heads head then begin
          add (Rwrite (receiver_target (fun n -> Summary.Ref n))) e.pexp_loc;
          List.iter (fun (_, a) -> self.expr self a) args
        end
        else super.expr self e)
    | Pexp_ident { txt; _ } ->
        let n = strip_stdlib (lid_str txt) in
        if not (String.equal n "") then add (Rcall n) e.pexp_loc
    | _ -> super.expr self e
  in
  let it = { super with expr } in
  it.expr it expr0

type file_state = {
  relpath : string;
  modroot : string;  (* "Cbnet.Potential" *)
  curlib : string;  (* "Cbnet" *)
  aliases : (string, string) Hashtbl.t;  (* T -> "Bstnet.Topology" *)
  by_line : (int, string) Hashtbl.t;  (* def line -> canonical name *)
}

let collect_binding st defs order vb ~modpath =
  match binding_name vb.pvb_pat with
  | None -> ()
  | Some fname ->
      let dmod = String.concat "." (st.modroot :: modpath) in
      let canon = dmod ^ "." ^ fname in
      let dline = (site_of vb.pvb_loc).Summary.line in
      let d =
        {
          canon;
          dmod;
          dfile = st.relpath;
          dline;
          draw = [];
          dreq = None;
          dimplicit = false;
        }
      in
      collect_facts
        (fun r loc -> d.draw <- (r, site_of loc) :: d.draw)
        vb.pvb_expr;
      if not (Hashtbl.mem defs canon) then order := canon :: !order;
      Hashtbl.replace defs canon d;
      if not (Hashtbl.mem st.by_line dline) then
        Hashtbl.replace st.by_line dline canon

let rec strip_module_expr me =
  match me.pmod_desc with
  | Pmod_constraint (me, _) -> strip_module_expr me
  | _ -> me

let rec walk_items st defs order ~modpath items =
  List.iter
    (fun item ->
      match item.pstr_desc with
      | Pstr_value (_, vbs) ->
          List.iter (fun vb -> collect_binding st defs order vb ~modpath) vbs
      | Pstr_module mb -> walk_module_binding st defs order ~modpath mb
      | Pstr_recmodule mbs ->
          List.iter (walk_module_binding st defs order ~modpath) mbs
      | _ -> ())
    items

and walk_module_binding st defs order ~modpath mb =
  match mb.pmb_name.txt with
  | None -> ()
  | Some name -> (
      match (strip_module_expr mb.pmb_expr).pmod_desc with
      | Pmod_ident { txt; _ } ->
          if List.is_empty modpath then
            Hashtbl.replace st.aliases name (lid_str txt)
      | Pmod_structure items ->
          walk_items st defs order ~modpath:(modpath @ [ name ]) items
      | _ -> ())

(* --- phase B: resolution ------------------------------------------- *)

let expand_alias st name =
  match String.index_opt name '.' with
  | None -> name
  | Some i -> (
      let s0 = String.sub name 0 i in
      match Hashtbl.find_opt st.aliases s0 with
      | Some exp -> exp ^ String.sub name i (String.length name - i)
      | None -> name)

(* Enclosing-module prefixes of [dmod], innermost first, down to the
   <Lib>.<File> root: bare names resolve against each in turn. *)
let module_prefixes dmod =
  let rec up acc m =
    match String.rindex_opt m '.' with
    | None -> List.rev acc
    | Some i ->
        let parent = String.sub m 0 i in
        if String.contains parent '.' then up (parent :: acc) parent
        else List.rev acc
  in
  dmod :: up [] dmod

(* [mem] looks a canonical name up in the full definition table;
   [is_lib] recognises library wrapper names ("Bstnet", "Simkit"). *)
let resolve ~mem ~is_lib st ~dmod name =
  let name = expand_alias st name in
  if not (String.contains name '.') then
    let candidate =
      List.find_opt (fun p -> mem (p ^ "." ^ name)) (module_prefixes dmod)
    in
    match candidate with
    | Some p -> Some (Summary.Known (p ^ "." ^ name))
    | None -> Extern.classify name
  else
    let root = String.sub name 0 (String.index name '.') in
    if is_lib root then
      if mem name then Some (Summary.Known name)
      else Some (Summary.Unknown name)
    else
      let in_tree =
        List.find_opt mem [ st.curlib ^ "." ^ name; dmod ^ "." ^ name ]
      in
      match in_tree with
      | Some c -> Some (Summary.Known c)
      | None -> Extern.classify name

(* --- build --------------------------------------------------------- *)

let implicit_readonly simple =
  ends_with ~suffix:"_ro" simple
  || contains_sub simple "_ro_"
  || String.equal simple "speculate_turn_probe"

let simple_name canon =
  match String.rindex_opt canon '.' with
  | Some i -> String.sub canon (i + 1) (String.length canon - i - 1)
  | None -> canon

let build files =
  let g =
    {
      funs = Hashtbl.create 512;
      order = [];
      mods = Hashtbl.create 64;
      libs = Hashtbl.create 16;
      errors = [];
    }
  in
  let defs = Hashtbl.create 512 in
  let order = ref [] in
  let errors = ref [] in
  let states = ref [] in
  (* Phase A: parse, collect defs + aliases + raw facts. *)
  List.iter
    (fun (relpath, src) ->
      match lib_module relpath with
      | None -> ()
      | Some (lib, filemod) -> (
          let modroot = lib ^ "." ^ filemod in
          let st =
            {
              relpath;
              modroot;
              curlib = lib;
              aliases = Hashtbl.create 8;
              by_line = Hashtbl.create 64;
            }
          in
          let lexbuf = Lexing.from_string (Lintkit.Source.code src) in
          Location.init lexbuf relpath;
          match Parse.implementation lexbuf with
          | items ->
              Hashtbl.replace g.libs lib ();
              Hashtbl.replace g.mods modroot relpath;
              walk_items st defs order ~modpath:[] items;
              (* Attach the effect annotations: a comment governs the
                 definition starting on its own last line (trailing
                 placement) or the line right after it. *)
              List.iter
                (fun (c : Lintkit.Source.comment) ->
                  match annotation_of_text c.text with
                  | None -> ()
                  | Some (Error msg) ->
                      errors :=
                        Lintkit.Finding.v ~file:relpath ~line:c.start_line
                          ~col:1 ~rule:Lintkit.Engine.meta_directive msg
                        :: !errors
                  | Some (Ok req) -> (
                      let target =
                        match Hashtbl.find_opt st.by_line c.end_line with
                        | Some canon -> Some canon
                        | None -> Hashtbl.find_opt st.by_line (c.end_line + 1)
                      in
                      match target with
                      | Some canon ->
                          let d = Hashtbl.find defs canon in
                          d.dreq <- Some req;
                          d.dimplicit <- false
                      | None ->
                          errors :=
                            Lintkit.Finding.v ~file:relpath ~line:c.start_line
                              ~col:1 ~rule:Lintkit.Engine.meta_directive
                              "effect annotation attaches to no definition \
                               (it must sit on, or directly above, a let \
                               binding)"
                            :: !errors))
                (Lintkit.Source.comments src);
              states := (relpath, st) :: !states
          | exception (Syntaxerr.Error _ | Lexer.Error _) ->
              (* The per-file lint already reports parse errors; the
                 call graph just skips the file, and calls into it
                 resolve as Unknown. *)
              ()))
    files;
  let states = !states in
  (* Naming-convention seeding: read-only twins keep their contract
     even if someone deletes the annotation. *)
  Hashtbl.iter
    (fun canon d ->
      if Option.is_none d.dreq && implicit_readonly (simple_name canon)
      then begin
        d.dreq <- Some Summary.Wave;
        d.dimplicit <- true
      end)
    defs;
  (* Phase B: resolve raw facts against the full definition table. *)
  let order = List.rev !order in
  let mem = Hashtbl.mem defs in
  let is_lib = Hashtbl.mem g.libs in
  List.iter
    (fun canon ->
      let d = Hashtbl.find defs canon in
      let st = List.assoc d.dfile states in
      let facts =
        List.rev_map
          (fun (r, site) ->
            match r with
            | Rwrite tgt -> Some (Summary.Write tgt, site)
            | Rcall n -> (
                match resolve ~mem ~is_lib st ~dmod:d.dmod n with
                | Some c -> Some (Summary.Call c, site)
                | None -> None))
          d.draw
        |> List.filter_map Fun.id
      in
      Hashtbl.replace g.funs canon
        {
          Summary.name = canon;
          modname = d.dmod;
          file = d.dfile;
          def_line = d.dline;
          requirement = d.dreq;
          implicit = d.dimplicit;
          facts;
        })
    order;
  { g with order; errors = List.rev !errors }
