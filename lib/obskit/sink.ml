type t = Null | Fn of (Event.t -> unit)

(* Private copy of [Simkit.Pool.with_lock] — obskit sits below simkit
   in the dependency order, so it cannot borrow the public one. *)
let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let null = Null
let enabled = function Null -> false | Fn _ -> true
let emit t ev = match t with Null -> () | Fn f -> f ev

let record t make =
  match t with
  | Null -> ()
  | Fn _ ->
      emit t
        {
          Event.ts_us = Clock.now_us ();
          domain = (Domain.self () :> int);
          payload = make ();
        }

let stream f =
  let lock = Mutex.create () in
  Fn (fun ev -> with_lock lock (fun () -> f ev))

let channel oc =
  stream (fun ev ->
      output_string oc (Event.to_json ev);
      output_char oc '\n';
      flush oc)

let tee sinks =
  match List.filter enabled sinks with
  | [] -> Null
  | [ s ] -> s
  | sinks -> Fn (fun ev -> List.iter (fun s -> emit s ev) sinks)

let span t name f =
  match t with
  | Null -> f ()
  | Fn _ ->
      record t (fun () -> Event.Span { name; phase = Event.Begin });
      Fun.protect
        ~finally:(fun () ->
          record t (fun () -> Event.Span { name; phase = Event.End }))
        f

module Ring = struct
  type buf = {
    data : Event.t option array;
    lock : Mutex.t;
    mutable next : int;  (* write cursor *)
    mutable total : int;  (* events ever pushed *)
  }

  let create ~capacity =
    if capacity < 1 then invalid_arg "Sink.Ring.create: capacity must be >= 1";
    {
      data = Array.make capacity None;
      lock = Mutex.create ();
      next = 0;
      total = 0;
    }

  let locked b f = with_lock b.lock f

  let sink b =
    Fn
      (fun ev ->
        locked b (fun () ->
            b.data.(b.next) <- Some ev;
            b.next <- (b.next + 1) mod Array.length b.data;
            b.total <- b.total + 1))

  let length b =
    locked b (fun () -> Stdlib.min b.total (Array.length b.data))

  let dropped b =
    locked b (fun () -> Stdlib.max 0 (b.total - Array.length b.data))

  let contents b =
    locked b (fun () ->
        let cap = Array.length b.data in
        let n = Stdlib.min b.total cap in
        let first = if b.total <= cap then 0 else b.next in
        List.init n (fun i ->
            match b.data.((first + i) mod cap) with
            | Some ev -> ev
            | None -> assert false (* slots below [n] are always filled *)))
end
