type conflict = Pause | Bypass
type pool_phase = Enqueue | Start | Done
type span_phase = Begin | End
type fault = Duplicate | Delay | Abort

type payload =
  | Round_begin of { round : int; active : int; live_data : int }
  | Step_planned of {
      round : int;
      msg : int;
      kind : string;
      rotate : bool;
      delta_phi : float;
    }
  | Cluster_claimed of {
      round : int;
      msg : int;
      cluster : int list;
      rotate : bool;
    }
  | Conflict of { round : int; msg : int; kind : conflict }
  | Rotation of {
      round : int;
      msg : int;
      node : int;
      count : int;
      delta_phi : float;
    }
  | Phi_sample of { round : int; phi : float }
  | Msg_delivered of {
      round : int;
      msg : int;
      data : bool;
      birth : int;
      hops : int;
      rotations : int;
    }
  | Pool_task of {
      task : int;
      phase : pool_phase;
      queue_depth : int;
      elapsed_us : float;
    }
  | Plan_wave of { round : int; member : int; planned : int }
  | Phase_time of { round : int; phase : string; elapsed_us : float }
  | Span of { name : string; phase : span_phase }
  | Fault_injected of { round : int; kind : fault; node : int; msg : int }
  | Node_down of { round : int; node : int; until : int }
  | Node_up of { round : int; node : int }
  | Msg_lost of { round : int; msg : int; node : int }
  | Repair_begin of { round : int; node : int }
  | Repair_done of { round : int; node : int }

type t = { ts_us : float; domain : int; payload : payload }

let conflict_to_string = function Pause -> "pause" | Bypass -> "bypass"

let fault_to_string = function
  | Duplicate -> "duplicate"
  | Delay -> "delay"
  | Abort -> "abort"

let pool_phase_to_string = function
  | Enqueue -> "enqueue"
  | Start -> "start"
  | Done -> "done"

let span_phase_to_string = function Begin -> "begin" | End -> "end"

let name = function
  | Round_begin _ -> "round_begin"
  | Step_planned _ -> "step_planned"
  | Cluster_claimed _ -> "cluster_claimed"
  | Conflict _ -> "conflict"
  | Rotation _ -> "rotation"
  | Phi_sample _ -> "phi_sample"
  | Msg_delivered _ -> "msg_delivered"
  | Pool_task _ -> "pool_task"
  | Plan_wave _ -> "plan_wave"
  | Phase_time _ -> "phase_time"
  | Span _ -> "span"
  | Fault_injected _ -> "fault_injected"
  | Node_down _ -> "node_down"
  | Node_up _ -> "node_up"
  | Msg_lost _ -> "msg_lost"
  | Repair_begin _ -> "repair_begin"
  | Repair_done _ -> "repair_done"

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

(* JSON numbers must be finite; ΔΦ and Φ always are, but a guard keeps
   a pathological value from producing an unparseable line. *)
let num x = if Float.is_finite x then Printf.sprintf "%.3f" x else "null"
let bool b = if b then "true" else "false"

let payload_fields buf = function
  | Round_begin { round; active; live_data } ->
      Printf.bprintf buf "\"round\":%d,\"active\":%d,\"live_data\":%d" round
        active live_data
  | Step_planned { round; msg; kind; rotate; delta_phi } ->
      Printf.bprintf buf
        "\"round\":%d,\"msg\":%d,\"kind\":\"%s\",\"rotate\":%s,\"delta_phi\":%s"
        round msg (escape kind) (bool rotate) (num delta_phi)
  | Cluster_claimed { round; msg; cluster; rotate } ->
      Printf.bprintf buf "\"round\":%d,\"msg\":%d,\"rotate\":%s,\"cluster\":[%s]"
        round msg (bool rotate)
        (String.concat "," (List.map string_of_int cluster))
  | Conflict { round; msg; kind } ->
      Printf.bprintf buf "\"round\":%d,\"msg\":%d,\"kind\":\"%s\"" round msg
        (conflict_to_string kind)
  | Rotation { round; msg; node; count; delta_phi } ->
      Printf.bprintf buf
        "\"round\":%d,\"msg\":%d,\"node\":%d,\"count\":%d,\"delta_phi\":%s"
        round msg node count (num delta_phi)
  | Phi_sample { round; phi } ->
      Printf.bprintf buf "\"round\":%d,\"phi\":%s" round (num phi)
  | Msg_delivered { round; msg; data; birth; hops; rotations } ->
      Printf.bprintf buf
        "\"round\":%d,\"msg\":%d,\"data\":%s,\"birth\":%d,\"hops\":%d,\"rotations\":%d"
        round msg (bool data) birth hops rotations
  | Pool_task { task; phase; queue_depth; elapsed_us } ->
      Printf.bprintf buf
        "\"task\":%d,\"phase\":\"%s\",\"queue_depth\":%d,\"elapsed_us\":%s" task
        (pool_phase_to_string phase)
        queue_depth (num elapsed_us)
  | Plan_wave { round; member; planned } ->
      Printf.bprintf buf "\"round\":%d,\"member\":%d,\"planned\":%d" round
        member planned
  | Phase_time { round; phase; elapsed_us } ->
      Printf.bprintf buf "\"round\":%d,\"phase\":\"%s\",\"elapsed_us\":%s"
        round (escape phase) (num elapsed_us)
  | Span { name; phase } ->
      Printf.bprintf buf "\"name\":\"%s\",\"phase\":\"%s\"" (escape name)
        (span_phase_to_string phase)
  | Fault_injected { round; kind; node; msg } ->
      Printf.bprintf buf "\"round\":%d,\"kind\":\"%s\",\"node\":%d,\"msg\":%d"
        round (fault_to_string kind) node msg
  | Node_down { round; node; until } ->
      Printf.bprintf buf "\"round\":%d,\"node\":%d,\"until\":%d" round node
        until
  | Node_up { round; node } ->
      Printf.bprintf buf "\"round\":%d,\"node\":%d" round node
  | Msg_lost { round; msg; node } ->
      Printf.bprintf buf "\"round\":%d,\"msg\":%d,\"node\":%d" round msg node
  | Repair_begin { round; node } ->
      Printf.bprintf buf "\"round\":%d,\"node\":%d" round node
  | Repair_done { round; node } ->
      Printf.bprintf buf "\"round\":%d,\"node\":%d" round node

let to_json t =
  let buf = Buffer.create 128 in
  Printf.bprintf buf "{\"ts_us\":%.3f,\"domain\":%d,\"type\":\"%s\"," t.ts_us
    t.domain (name t.payload);
  payload_fields buf t.payload;
  Buffer.add_char buf '}';
  Buffer.contents buf

let pp fmt t = Format.pp_print_string fmt (to_json t)
