(** Structured telemetry events.

    Every event carries a wall-clock timestamp (stamped at emission by
    {!Sink.record}) and the integer id of the domain that emitted it,
    so exporters can lay events out on one track per domain.  The
    payload is a closed variant: adding a case is a compile-time-checked
    change to every exporter and recorder.

    Logical simulation time (the [round] fields) is carried inside the
    payloads; [ts_us] is physical time.  Both clocks matter: rounds for
    the paper's cost model, wall time for profiling the simulator
    itself. *)

type conflict = Pause | Bypass
(** The two conflict outcomes of Sec. VII: the losing message pauses
    when the winning step routed, and is bypassed when it rotated. *)

type pool_phase = Enqueue | Start | Done
type span_phase = Begin | End

type fault = Duplicate | Delay | Abort
(** [Faultkit] injections that happen {e to} a message at step-commit
    time; node crashes and message losses have their own payloads
    ([Node_down]/[Node_up], [Msg_lost]). *)

type payload =
  | Round_begin of { round : int; active : int; live_data : int }
      (** A scheduler round starts with [active] undelivered messages
          (data + updates) of which [live_data] are data messages. *)
  | Step_planned of {
      round : int;
      msg : int;
      kind : string;  (** {!Cbnet.Step.kind_to_string} of the plan. *)
      rotate : bool;
      delta_phi : float;
    }
      (** Algorithm 1 evaluated a candidate step: [rotate] tells
          whether ΔΦ cleared the -δ threshold. *)
  | Cluster_claimed of {
      round : int;
      msg : int;
      cluster : int list;
      rotate : bool;
    }  (** The step's cluster (Def. 6) was locked for this round. *)
  | Conflict of { round : int; msg : int; kind : conflict }
  | Rotation of {
      round : int;
      msg : int;
      node : int;
      count : int;  (** Elementary rotations (1, or 2 for zig-zag). *)
      delta_phi : float;
    }
  | Phi_sample of { round : int; phi : float }
      (** Global potential Φ(T), sampled once per round (traced runs
          only: computing Φ is O(n)). *)
  | Msg_delivered of {
      round : int;
      msg : int;
      data : bool;  (** [false] for a weight-update control message. *)
      birth : int;
      hops : int;
      rotations : int;
    }
  | Pool_task of {
      task : int;
      phase : pool_phase;
      queue_depth : int;
      elapsed_us : float;  (** Task wall time; meaningful at [Done]. *)
    }
  | Plan_wave of { round : int; member : int; planned : int }
      (** One team member's share of a parallel speculative plan wave:
          it probed [planned] plannable turns this round.  Emitted by
          the caller after the join, in member order, to the dedicated
          team sink — never the run sink, whose stream must stay
          bit-identical across domain counts. *)
  | Phase_time of { round : int; phase : string; elapsed_us : float }
      (** Wall time one executor round spent in one
          {!Profkit.Profile.phase} ("plan_wave", "commit", ...).
          Emitted once per (round, phase) after the round closes, to
          the dedicated profiling sink — never the run sink, whose
          stream must stay bit-identical whether or not profiling is
          on. *)
  | Span of { name : string; phase : span_phase }
      (** Experiment phases ([cell:...], [seed:...]); properly nested
          per emitting domain. *)
  | Fault_injected of { round : int; kind : fault; node : int; msg : int }
      (** A plan clause fired on a committing step: the message was
          duplicated, put to sleep, or its rotation was aborted
          mid-flight (triggering repair). *)
  | Node_down of { round : int; node : int; until : int }
      (** A crash window opened: the node is excluded from cluster
          claiming until round [until]. *)
  | Node_up of { round : int; node : int }  (** A crash window closed. *)
  | Msg_lost of { round : int; msg : int; node : int }
      (** The message was dropped crossing an edge at [node] and
          re-armed at its source with its original birth. *)
  | Repair_begin of { round : int; node : int }
      (** Local repair of a torn rotation around [node] started. *)
  | Repair_done of { round : int; node : int }
      (** Repair finished; [Bstnet.Check.all] holds again. *)

type t = { ts_us : float; domain : int; payload : payload }

val conflict_to_string : conflict -> string
val pool_phase_to_string : pool_phase -> string
val fault_to_string : fault -> string

val name : payload -> string
(** Constructor name in snake case ("round_begin", "pool_task", ...). *)

val to_json : t -> string
(** One-line JSON object (no trailing newline):
    [{"ts_us":..,"domain":..,"type":"..",...payload fields}].  Suitable
    for JSONL streaming via {!Sink.channel}. *)

val pp : Format.formatter -> t -> unit
