(** Process-wide non-decreasing wall clock in microseconds.

    OCaml's standard library exposes no monotonic clock, so this one is
    built on [Unix.gettimeofday] and clamped to never run backwards
    within the process: every call returns a value at least as large as
    any value previously returned by any domain.  That is the property
    trace viewers need (event order within a track), and the absolute
    epoch (Unix time) keeps traces from separate runs comparable. *)

val now_us : unit -> float
(** Current time in microseconds since the Unix epoch, clamped
    non-decreasing across all domains of this process. *)
