let last = Atomic.make 0.0

(* Publish through a CAS loop so the returned value is never below a
   value some other domain already returned: a failed CAS means the
   published maximum moved, so re-read and try again. *)
let rec now_us () =
  let raw = Unix.gettimeofday () *. 1e6 in
  let prev = Atomic.get last in
  if raw <= prev then prev
  else if Atomic.compare_and_set last prev raw then raw
  else now_us ()
