(** Event sinks.

    A sink is where instrumented code sends {!Event.t} values.  The
    {!null} sink is a bare constant constructor: guarded call sites
    ([if Sink.enabled sink then Sink.record sink (fun () -> ...)])
    compile to a load-and-branch and allocate nothing, which is what
    keeps untraced hot paths within noise of uninstrumented code.

    All built-in sinks are safe to share across domains: {!stream} and
    {!Ring} serialize delivery with a mutex, so a consumer callback
    never runs concurrently with itself. *)

type t

val null : t
(** Discards everything; {!enabled} is [false]. *)

val enabled : t -> bool
(** [false] only for {!null}.  Instrumented code must test this before
    constructing an event (or any argument of it), so the null sink
    costs one branch and zero allocation. *)

val emit : t -> Event.t -> unit
(** Deliver an already-built event.  No-op on {!null}. *)

val record : t -> (unit -> Event.payload) -> unit
(** Stamp {!Clock.now_us} and the calling domain's id onto the payload
    and {!emit} it.  The thunk is not called on {!null}, but callers
    should still guard with {!enabled} to avoid allocating the
    closure. *)

val stream : (Event.t -> unit) -> t
(** Deliver every event to a callback, serialized by a private mutex
    (events from concurrent domains arrive one at a time, in emission
    order as seen by the mutex). *)

val channel : out_channel -> t
(** Stream every event to a channel as one JSON object per line
    ({!Event.to_json}).  The channel is flushed on every event, so a
    crashed run still leaves a readable prefix. *)

val tee : t list -> t
(** Deliver to every enabled sink in list order.  [tee []] and a list
    of null sinks collapse to {!null}, preserving the zero-cost
    guard. *)

val span : t -> string -> (unit -> 'a) -> 'a
(** [span sink name f] emits [Span Begin], runs [f], and emits
    [Span End] (also on exception).  On {!null} it just runs [f].
    Callers that build [name] with [Printf] should guard with
    {!enabled} to keep the untraced path allocation-free. *)

(** Bounded in-memory buffer keeping the {e most recent} [capacity]
    events; older events are dropped (and counted) rather than growing
    without bound on long runs. *)
module Ring : sig
  type buf

  val create : capacity:int -> buf
  (** @raise Invalid_argument if [capacity < 1]. *)

  val sink : buf -> t
  val length : buf -> int
  val dropped : buf -> int
  (** Events overwritten so far (total emitted - retained). *)

  val contents : buf -> Event.t list
  (** Retained events, oldest first. *)
end
