(** Ranks, network potential, and local potential-difference
    prediction (Sec. IV of the paper).

    The rank of a node is [r(v) = log2 W(v)] (0 when [W(v) = 0]); the
    network potential is [Φ = Σ_v r(v)].  The decision of Algorithm 1
    needs only the potential difference [ΔΦ] that a candidate rotation
    would cause, and since a rotation changes the subtree contents of
    at most the nodes it touches, [ΔΦ] is computable from the weights
    of a constant-size neighbourhood — these are the [delta_*]
    functions. *)

val rank : int -> float
(** [rank w = log2 w], and [0.] for [w <= 1].  Served from a
    precomputed table for [w < 2^16] (bit-identical to the direct
    [Float.log2] computation); larger weights fall back to it. *)

val node_rank : Bstnet.Topology.t -> int -> float
(** [rank] of the node's current weight, memoized in the topology's
    {!Bstnet.Topology.rank_memo} slot; any weight mutation of the node
    invalidates the memo, so the value is always exact. *)

val phi : Bstnet.Topology.t -> float
(** Global potential [Φ(T)] — O(n), for analysis and tests only; the
    algorithms never call it. *)

val delta_promote : Bstnet.Topology.t -> int -> float
(** [delta_promote t c] — the ΔΦ that [Topology.rotate_up t c] (one
    single rotation promoting [c] over its parent) would cause, without
    performing it.  O(1).
    @raise Invalid_argument if [c] is the root. *)

val delta_double_promote : Bstnet.Topology.t -> int -> float
(** [delta_double_promote t c] — the ΔΦ of promoting [c] twice (the
    zig-zag double rotation: over its parent, then over its original
    grandparent), without performing it.  Only meaningful when [c] and
    its parent are children on opposite sides (the zig-zag shape).
    O(1).
    @raise Invalid_argument if [c] has no grandparent. *)

val transferred_child : Bstnet.Topology.t -> int -> int
(** The subtree root that promoting a node transfers to its demoted
    parent: the child on the opposite side of the node's own position
    (may be {!Bstnet.Topology.nil}).  Exposed so the concurrent
    executor can enumerate the exact weight read set of a speculated
    rotation. *)

(** Read-only twins for the parallel plan wave: same arithmetic and
    bit-identical floats, but no {!Bstnet.Topology.rank_memo} writes —
    safe to call from several domains concurrently on a frozen tree. *)

val node_rank_ro : Bstnet.Topology.t -> int -> float
val delta_promote_ro : Bstnet.Topology.t -> int -> float
val delta_double_promote_ro : Bstnet.Topology.t -> int -> float
