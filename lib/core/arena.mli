(** Preallocated message slab for the concurrent executor.

    Every message of a run — data and weight-update alike — lives in
    one growable array of {!Message.t} records, preallocated up front
    and reinitialized in place on allocation, so the executor's hot
    path creates no records while injecting or spawning.  A message's
    id {e is} its slot index, and slots are handed out in allocation
    order, which reproduces the id sequence an executor minting fresh
    records would produce.

    Since a data message spawns at most one weight update, a capacity
    of twice the trace length never grows. *)

type t

val create : capacity:int -> t
(** A slab of [capacity] (at least 1) blank messages; grows by
    doubling if exceeded. *)

val length : t -> int
(** Messages allocated so far (= the next id to be handed out). *)

val alloc_data : t -> src:int -> dst:int -> birth:int -> Message.t
(** The next slot, reinitialized as a data message. *)

val alloc_update : t -> origin:int -> birth:int -> Message.t
(** The next slot, reinitialized as a root-bound weight update. *)

val get : t -> int -> Message.t
(** [get a id] — the allocated message with that id.
    @raise Invalid_argument when [id] was not allocated. *)

val iter : t -> (Message.t -> unit) -> unit
(** All allocated messages, in id order. *)
