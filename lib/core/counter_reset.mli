(** Counter resetting — the extension the paper sketches in its final
    remarks (Sec. IX-D): on an infinite request sequence the counters
    make the topology ever more static, so older requests should
    contribute less to the weights used in potential computations.

    The decay operation multiplies every node counter by a factor in
    [0, 1) (rounding down, keeping weights consistent bottom-up).
    [run_sequential] serves a trace in chunks of [every] messages with
    a decay between chunks — the ablation harness compares it against
    plain {!Sequential.run} on drifting workloads. *)

val decay : Bstnet.Topology.t -> factor:float -> unit
(** Scale all counters by [factor] and rebuild the subtree weights.
    O(n).  @raise Invalid_argument unless [0 <= factor < 1]. *)

val run_concurrent :
  ?config:Config.t ->
  ?window:int ->
  ?max_rounds:int ->
  ?sink:Obskit.Sink.t ->
  ?profile:Profkit.Profile.t ->
  ?prof_sink:Obskit.Sink.t ->
  ?team_sink:Obskit.Sink.t ->
  ?faults:Faultkit.Plan.t ->
  ?check_invariants:bool ->
  ?domains:int ->
  every_rounds:int ->
  factor:float ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Run_stats.t
(** Concurrent CBNet with a decay every [every_rounds] rounds.  The
    decay is applied as an idealized global maintenance pass between
    rounds (a distributed implementation would stagger it; the
    ablation only needs the cost/benefit trade-off).  The optional
    arguments are passed through to {!Concurrent.scheduler} unchanged
    — telemetry, self-profiling, fault plans and the [?domains]
    plan-wave parallelism all compose with decay, and every output
    stays bit-identical across domain counts. *)

val combine : Run_stats.t -> Run_stats.t -> int -> Run_stats.t
(** [combine a b decay_slots] accumulates two chunk statistics,
    charging [decay_slots] rounds of maintenance time (one slot per
    node per decay pass) to the makespan and round count.  The
    [throughput] field of the result is 0 — recompute it once from the
    final totals.  Used by the chunked runners here and by
    [Servekit.Server]'s batch accumulation. *)

val run_sequential :
  ?config:Config.t ->
  every:int ->
  factor:float ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Run_stats.t
(** Like {!Sequential.run} with a decay after every [every] messages.
    Statistics are accumulated across chunks; the makespan is the sum
    of chunk makespans (decay itself is charged [n] slots of
    maintenance time, one per node). *)
