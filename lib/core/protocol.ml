module T = Bstnet.Topology
module M = Message

(* Node ids are ints; kind/phase tests go through M.is_* so nothing
   here compares structurally (see the no-poly-compare lint rule). *)
let ( = ) : int -> int -> bool = Int.equal
let ( <> ) a b = not (Int.equal a b)

type spawn = origin:int -> first_increment:int -> unit
type turn = Delivered | Plan of Step.t

(* Reach the LCA: spawn the (single) update message, accounting for a
   +1 the origin may already have received while climbing.  When the
   LCA is the root itself, P(LCA, r) = {r} and the update's full +2
   must land there (Algorithm 1, line 3) — this is also what keeps the
   realized W(r) = 2m exact: the root's aggregate only ever grows
   through increments applied directly to the standing root. *)
let flip_at_lca t (msg : M.t) ~spawn =
  if not msg.update_spawned then begin
    let first_increment =
      if T.is_root t msg.current then 2
      else if msg.up_credit = msg.current then 1
      else 2
    in
    spawn ~origin:msg.current ~first_increment;
    msg.update_spawned <- true
  end;
  msg.phase <- M.Descending

let born t ~spawn (msg : M.t) =
  match msg.kind with
  | M.Weight_update ->
      (* first_increment was applied by the spawner; an update born on
         the root is immediately done. *)
      if T.is_root t msg.current then msg.delivered <- true
  | M.Data -> (
      match T.direction_to t ~src:msg.current ~dst:msg.dst with
      | T.Up ->
          T.add_weight t msg.current 1;
          msg.up_credit <- msg.current
      | T.Down_left | T.Down_right -> flip_at_lca t msg ~spawn
      | T.Here ->
          (* Self-addressed: the source is its own LCA and destination;
             both counter increments arrive via the update message. *)
          flip_at_lca t msg ~spawn;
          msg.delivered <- true)

let begin_turn_probe buf t ~spawn (msg : M.t) =
  match msg.kind with
  | M.Weight_update ->
      if T.is_root t msg.current then false
      else begin
        Step.probe_up_into buf t ~current:msg.current ~dst:T.nil;
        true
      end
  | M.Data -> (
      match T.direction_to t ~src:msg.current ~dst:msg.dst with
      | T.Here ->
          (* Only reachable while climbing, when an in-place rotation
             promoted the current node into being the destination's
             position — impossible for distinct keys — or defensively
             after delivery races; treat as LCA + delivery. *)
          if M.is_climbing msg then flip_at_lca t msg ~spawn;
          false
      | T.Up ->
          (* A bypass may have evicted the destination from the current
             subtree mid-descent: resume climbing (the update message,
             if already sent, is not re-sent). *)
          if M.is_descending msg then msg.phase <- M.Climbing;
          Step.probe_up_into buf t ~current:msg.current ~dst:msg.dst;
          true
      | T.Down_left | T.Down_right ->
          if M.is_climbing msg then flip_at_lca t msg ~spawn;
          Step.probe_down_into buf t ~current:msg.current ~dst:msg.dst;
          true)

(* Speculative (side-effect-free) twin of [begin_turn_probe] for the
   parallel plan wave.  Same dispatch, but nothing is mutated: no
   flip_at_lca (its spawn writes weight(current) *before* the probe,
   so a speculated plan would be stale — the commit replans those
   turns sequentially), no phase writes.  Returns a bit set:
   [spec_planned] — the buffer holds a probe for this turn;
   [spec_flip] — the commit must run the full sequential turn (a
   climbing message crossing its LCA); [spec_climb] — the commit must
   set the phase to Climbing before using the plan. *)
let spec_planned = 1
let spec_flip = 2
let spec_climb = 4

(* lint: hot *)
(* effect: wave -- writes only the caller's plan buffer *)
let speculate_turn_probe buf t (msg : M.t) =
  match msg.kind with
  | M.Weight_update ->
      if T.is_root t msg.current then 0
      else begin
        Step.probe_up_into buf t ~current:msg.current ~dst:T.nil;
        spec_planned
      end
  | M.Data -> (
      match T.direction_to t ~src:msg.current ~dst:msg.dst with
      | T.Here -> if M.is_climbing msg then spec_flip else 0
      | T.Up ->
          Step.probe_up_into buf t ~current:msg.current ~dst:msg.dst;
          if M.is_descending msg then spec_planned lor spec_climb
          else spec_planned
      | T.Down_left | T.Down_right ->
          if M.is_climbing msg then spec_planned lor spec_flip
          else begin
            Step.probe_down_into buf t ~current:msg.current ~dst:msg.dst;
            spec_planned
          end)
(* lint: hot-end *)

let begin_turn_into buf config t ~spawn (msg : M.t) =
  if begin_turn_probe buf t ~spawn msg then begin
    Step.resolve_into buf config t;
    true
  end
  else false

let begin_turn config t ~spawn (msg : M.t) =
  let buf = Step.buffer () in
  if begin_turn_into buf config t ~spawn msg then Plan buf else Delivered

(* Apply the arrival bookkeeping for one node the message crossed. *)
let cross t ~spawn (msg : M.t) w =
  match msg.kind with
  | M.Weight_update -> T.add_weight t w 2
  | M.Data -> (
      match msg.phase with
      | M.Descending ->
          T.add_weight t w 1;
          if w = msg.dst then msg.delivered <- true
      | M.Climbing -> (
          match T.direction_to t ~src:w ~dst:msg.dst with
          | T.Up ->
              T.add_weight t w 1;
              msg.up_credit <- w
          | T.Down_left | T.Down_right ->
              (* w is the LCA: covered by the update message's +2. *)
              msg.current <- w;
              flip_at_lca t msg ~spawn
          | T.Here ->
              (* The destination is an ancestor of the source: w = dst
                 is simultaneously the LCA. *)
              msg.current <- w;
              flip_at_lca t msg ~spawn;
              msg.delivered <- true))

(* Walk the plan's (nil-padded) passed fields in travel order without
   materializing a list. *)
let cross_passed t ~spawn msg (plan : Step.t) =
  if plan.Step.passed0 <> T.nil then begin
    cross t ~spawn msg plan.Step.passed0;
    if plan.Step.passed1 <> T.nil then cross t ~spawn msg plan.Step.passed1
  end

let apply_step t ~spawn (msg : M.t) (plan : Step.t) =
  (* A top-down rotation can promote the crossed node(s) over the
     standing root; their +1 counter deposits belong to the
     pre-rotation tree (below the root), otherwise the root aggregate
     would absorb them and overshoot W(r) = 2m. *)
  let pre_increment =
    plan.Step.rotate && M.is_descending msg
    && T.is_root t plan.Step.current
  in
  if pre_increment then cross_passed t ~spawn msg plan;
  Step.execute t plan;
  msg.steps <- msg.steps + 1;
  msg.hops <- msg.hops + plan.Step.hops;
  msg.rotations <- msg.rotations + plan.Step.rotations;
  if not pre_increment then cross_passed t ~spawn msg plan;
  msg.current <- plan.Step.new_current;
  if M.is_update msg && T.is_root t msg.current then msg.delivered <- true
