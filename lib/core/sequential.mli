(** Sequential CBNet (Algorithm 1) — the SCBN baseline of Sec. IX-A.

    Messages are served one at a time in arrival order by a global
    scheduler: each data message runs to delivery, then its weight
    update message runs to the root, each step taking one time slot.
    The makespan therefore reflects full serialization, which is what
    the paper's SCBN/SN baselines measure. *)

val run :
  ?config:Config.t ->
  ?sink:Obskit.Sink.t ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Run_stats.t
(** [run t trace] executes the requests [(birth, src, dst)] — which
    must be sorted by birth time — on topology [t], mutating it.

    [sink] (default {!Obskit.Sink.null}) receives [Step_planned],
    [Rotation], [Msg_delivered] and one [Phi_sample] per served
    request, timestamped with the sequential clock.  Telemetry never
    changes the computed {!Run_stats.t}.

    @raise Invalid_argument on an unsorted trace or out-of-range
    endpoints. *)
