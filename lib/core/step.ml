module T = Bstnet.Topology

(* Node ids are ints; side/direction tests below use Bool.equal and
   pattern matches, so the shadow covers every (=) use in this file. *)
let ( = ) : int -> int -> bool = Int.equal
let ( <> ) a b = not (Int.equal a b)

type kind =
  | Bu_zig
  | Bu_semi_zig_zig
  | Bu_semi_zig_zag
  | Td_zig
  | Td_semi_zig_zig
  | Td_semi_zig_zag

let kind_to_string = function
  | Bu_zig -> "bu-zig"
  | Bu_semi_zig_zig -> "bu-semi-zig-zig"
  | Bu_semi_zig_zag -> "bu-semi-zig-zag"
  | Td_zig -> "td-zig"
  | Td_semi_zig_zig -> "td-semi-zig-zig"
  | Td_semi_zig_zag -> "td-semi-zig-zag"

(* A lone mutable float field inside [t] would be boxed (the record
   mixes floats with immediates), making every plan write allocate;
   nesting the float in its own all-float record keeps the storage
   flat and the write in place. *)
type fbox = { mutable v : float }

type t = {
  mutable current : int;
  mutable dst : int;
  mutable kind : kind;
  dphi : fbox;
  mutable rotate : bool;
  mutable rotations : int;
  mutable hops : int;
  mutable new_current : int;
  (* passed / cluster as fixed-arity fields ([T.nil]-padded at the
     tail), in the same order the list-building planner produced: a
     plan crosses at most 2 nodes and locks at most 4. *)
  mutable passed0 : int;
  mutable passed1 : int;
  mutable cluster0 : int;
  mutable cluster1 : int;
  mutable cluster2 : int;
  mutable cluster3 : int;
  (* Set by the probe_* planners: the node that joins the cluster only
     when the step rotates (the rotation anchor — the node above the
     rotating pair), or nil.  The claim-independent "core" cluster
     nodes go to cluster0..cluster2. *)
  mutable anchor : int;
}

let buffer () =
  {
    current = T.nil;
    dst = T.nil;
    kind = Bu_zig;
    dphi = { v = 0.0 };
    rotate = false;
    rotations = 0;
    hops = 0;
    new_current = T.nil;
    passed0 = T.nil;
    passed1 = T.nil;
    cluster0 = T.nil;
    cluster1 = T.nil;
    cluster2 = T.nil;
    cluster3 = T.nil;
    anchor = T.nil;
  }

let delta_phi st = st.dphi.v

let passed st =
  if st.passed0 = T.nil then []
  else if st.passed1 = T.nil then [ st.passed0 ]
  else [ st.passed0; st.passed1 ]

let cluster st =
  (* nil is tail padding only; cluster0 is always real. *)
  if st.cluster1 = T.nil then [ st.cluster0 ]
  else if st.cluster2 = T.nil then [ st.cluster0; st.cluster1 ]
  else if st.cluster3 = T.nil then [ st.cluster0; st.cluster1; st.cluster2 ]
  else [ st.cluster0; st.cluster1; st.cluster2; st.cluster3 ]

(* effect: wave -- fills this plan buffer only *)
let set_passed st a b =
  st.passed0 <- a;
  st.passed1 <- b

(* [head] is the optional anchor node ([T.nil] when absent) that the
   list planner prepended with [cons_if_real]; [d] may also be [nil]
   for three-element clusters. *)
(* effect: wave -- fills this plan buffer only *)
let set_cluster st head a b d =
  if head = T.nil then begin
    st.cluster0 <- a;
    st.cluster1 <- b;
    st.cluster2 <- d;
    st.cluster3 <- T.nil
  end
  else begin
    st.cluster0 <- head;
    st.cluster1 <- a;
    st.cluster2 <- b;
    st.cluster3 <- d
  end

(* The climb of a message ends at the LCA with its destination; the
   climb of a weight-update message (dst = nil) ends at the root. *)
(* lint: hot *)
(* effect: pure *)
let climb_continues t ~node ~dst =
  if dst = T.nil then T.parent t node <> T.nil
  else match T.direction_to t ~src:node ~dst with
    | T.Up -> true
    | T.Down_left | T.Down_right | T.Here -> false

(* Shape-only planning.  Classifies the step and records the nodes it
   would lock — the claim-independent "core" (the cluster minus its
   rotation anchor) in cluster0..cluster2 and the anchor separately —
   without touching the potential.  [resolve_into] finishes the plan;
   the split lets the concurrent executor pre-check cluster conflicts
   on the core alone and skip the ΔΦ evaluation for turns that are
   going to pause anyway (the anchor only joins the cluster when the
   step rotates, which ΔΦ decides). *)
(* effect: wave -- fills this plan buffer only *)
let probe_up_into st t ~current:x ~dst =
  let p = T.parent t x in
  if p = T.nil then invalid_arg "Step.plan_up: current node is the root";
  st.current <- x;
  st.dst <- dst;
  if not (climb_continues t ~node:p ~dst) then begin
    st.kind <- Bu_zig;
    st.anchor <- T.parent t p;
    st.cluster0 <- x;
    st.cluster1 <- p;
    st.cluster2 <- T.nil;
    st.cluster3 <- T.nil
  end
  else begin
    let g = T.parent t p in
    let same_side = Bool.equal (T.is_left_child t x) (T.is_left_child t p) in
    st.kind <- (if same_side then Bu_semi_zig_zig else Bu_semi_zig_zag);
    st.anchor <- T.parent t g;
    st.cluster0 <- x;
    st.cluster1 <- p;
    st.cluster2 <- g;
    st.cluster3 <- T.nil
  end

(* effect: wave -- fills this plan buffer only *)
let probe_down_into st t ~current:x ~dst =
  let y = T.next_hop t ~src:x ~dst in
  st.current <- x;
  st.dst <- dst;
  st.anchor <- T.parent t x;
  if y = dst then begin
    st.kind <- Td_zig;
    st.cluster0 <- x;
    st.cluster1 <- y;
    st.cluster2 <- T.nil;
    st.cluster3 <- T.nil
  end
  else begin
    let z = T.next_hop t ~src:y ~dst in
    let same_side = Bool.equal (y = T.left t x) (z = T.left t y) in
    st.kind <- (if same_side then Td_semi_zig_zig else Td_semi_zig_zag);
    st.cluster0 <- x;
    st.cluster1 <- y;
    st.cluster2 <- z;
    st.cluster3 <- T.nil
  end

(* ΔΦ of the probed step.  Memoizing variant for the serial (commit)
   path: [Potential.delta_*] may write the rank memo as it evaluates,
   so this twin must never run from the speculative wave. *)
let probe_dphi st t =
  match st.kind with
  | Bu_zig -> Potential.delta_promote t st.cluster0
  | Bu_semi_zig_zig -> Potential.delta_promote t st.cluster1
  | Bu_semi_zig_zag -> Potential.delta_double_promote t st.cluster0
  | Td_zig | Td_semi_zig_zig -> Potential.delta_promote t st.cluster1
  | Td_semi_zig_zag -> Potential.delta_double_promote t st.cluster2

(* Read-only twin for the parallel plan wave: bit-identical floats, no
   rank-memo writes.  The ro/rw choice lives at this seam (two sibling
   probes selected by the caller, not a [~ro] flag threaded through the
   resolver) so the wave's ΔΦ path is statically write-free — the
   effect analysis verifies it, a runtime flag it could not. *)
(* effect: pure *)
let probe_dphi_ro st t =
  match st.kind with
  | Bu_zig -> Potential.delta_promote_ro t st.cluster0
  | Bu_semi_zig_zig -> Potential.delta_promote_ro t st.cluster1
  | Bu_semi_zig_zag -> Potential.delta_double_promote_ro t st.cluster0
  | Td_zig | Td_semi_zig_zig -> Potential.delta_promote_ro t st.cluster1
  | Td_semi_zig_zag -> Potential.delta_double_promote_ro t st.cluster2

(* Completes a probed buffer into a full plan from an already-evaluated
   ΔΦ: decides the rotation and fills the movement/bookkeeping fields.
   When the step does not rotate the probed cluster is already final;
   when it does, the anchor is folded in at the front (matching the
   list planner's [cons_if_real] order).  Writes nothing but the plan
   buffer itself, so both the serial loop and the wave may call it. *)
(* effect: wave -- fills this plan buffer only *)
let resolve_with st config t ~delta_phi =
  let x = st.cluster0 in
  let dst = st.dst in
  match st.kind with
  | Bu_zig ->
      (* p is the top of this climb (the LCA, or the root for an update
         message): one-level zig boundary step.  A weight-update
         message must terminate by delivering its +2 at the standing
         root — its contract is to increment all of P(LCA, r)
         (Algorithm 1, line 3) — so it forwards here instead of
         rotating itself above the root. *)
      let p = st.cluster1 in
      let rotate =
        delta_phi < -.config.Config.delta && not (dst = T.nil && T.is_root t p)
      in
      st.dphi.v <- delta_phi;
      st.rotate <- rotate;
      st.rotations <- (if rotate then 1 else 0);
      st.hops <- (if rotate then 0 else 1);
      st.new_current <- (if rotate then x else p);
      if rotate then begin
        set_passed st T.nil T.nil;
        set_cluster st st.anchor x p T.nil
      end
      else set_passed st p T.nil
  | Bu_semi_zig_zig ->
      (* Semi zig-zig: one rotation promoting p over g; the message
         hops to p, which now sits two levels higher. *)
      let p = st.cluster1 and g = st.cluster2 in
      let rotate = delta_phi < -.config.Config.delta in
      st.dphi.v <- delta_phi;
      st.rotate <- rotate;
      st.rotations <- (if rotate then 1 else 0);
      st.hops <- (if rotate then 0 else 2);
      st.new_current <- (if rotate then p else g);
      if rotate then begin
        set_passed st p T.nil;
        set_cluster st st.anchor x p g
      end
      else set_passed st p g
  | Bu_semi_zig_zag ->
      (* Semi zig-zag: double rotation promoting x to the grandparent's
         position; the message stays on x.  As in the boundary case, an
         update message never promotes itself onto the root — it must
         end its climb by delivering +2 there. *)
      let p = st.cluster1 and g = st.cluster2 in
      let rotate =
        delta_phi < -.config.Config.delta && not (dst = T.nil && T.is_root t g)
      in
      st.dphi.v <- delta_phi;
      st.rotate <- rotate;
      st.rotations <- (if rotate then 2 else 0);
      st.hops <- (if rotate then 0 else 2);
      st.new_current <- (if rotate then x else g);
      if rotate then begin
        set_passed st T.nil T.nil;
        set_cluster st st.anchor x p g
      end
      else set_passed st p g
  | Td_zig ->
      (* One level left: zig boundary case promoting the destination. *)
      let y = st.cluster1 in
      let rotate = delta_phi < -.config.Config.delta in
      st.dphi.v <- delta_phi;
      st.rotate <- rotate;
      st.rotations <- (if rotate then 1 else 0);
      st.hops <- (if rotate then 0 else 1);
      st.new_current <- y;
      set_passed st y T.nil;
      if rotate then set_cluster st st.anchor x y T.nil
  | Td_semi_zig_zig ->
      (* Semi zig-zig: promote y over x; the path below is pulled one
         level up and the message lands on z. *)
      let y = st.cluster1 and z = st.cluster2 in
      let rotate = delta_phi < -.config.Config.delta in
      st.dphi.v <- delta_phi;
      st.rotate <- rotate;
      st.rotations <- (if rotate then 1 else 0);
      st.hops <- (if rotate then 0 else 2);
      st.new_current <- z;
      set_passed st y z;
      if rotate then set_cluster st st.anchor x y z
  | Td_semi_zig_zag ->
      (* Semi zig-zag: double-promote z to x's old position; y and x
         drop off the remaining path and the message lands on z. *)
      let y = st.cluster1 and z = st.cluster2 in
      let rotate = delta_phi < -.config.Config.delta in
      st.dphi.v <- delta_phi;
      st.rotate <- rotate;
      st.rotations <- (if rotate then 2 else 0);
      st.hops <- (if rotate then 0 else 2);
      st.new_current <- z;
      if rotate then begin
        set_passed st z T.nil;
        set_cluster st st.anchor x y z
      end
      else set_passed st y z

let resolve_into st config t =
  resolve_with st config t ~delta_phi:(probe_dphi st t)

(* effect: wave -- resolves from the read-only ΔΦ twin *)
let resolve_ro_into st config t =
  resolve_with st config t ~delta_phi:(probe_dphi_ro st t)
(* lint: hot-end *)

let plan_up_into st config t ~current ~dst =
  probe_up_into st t ~current ~dst;
  resolve_into st config t

let plan_down_into st config t ~current ~dst =
  probe_down_into st t ~current ~dst;
  resolve_into st config t

let plan_into st config t ~current ~dst =
  match T.direction_to t ~src:current ~dst with
  | T.Here -> false
  | T.Up ->
      plan_up_into st config t ~current ~dst;
      true
  | T.Down_left | T.Down_right ->
      plan_down_into st config t ~current ~dst;
      true

let plan_up config t ~current ~dst =
  let st = buffer () in
  plan_up_into st config t ~current ~dst;
  st

let plan_down config t ~current ~dst =
  let st = buffer () in
  plan_down_into st config t ~current ~dst;
  st

let plan config t ~current ~dst =
  let st = buffer () in
  if plan_into st config t ~current ~dst then Some st else None

let execute t plan =
  if plan.rotate then
    match plan.kind with
    | Bu_zig -> T.rotate_up t plan.current
    | Bu_semi_zig_zig -> T.rotate_up t (T.parent t plan.current)
    | Bu_semi_zig_zag ->
        T.rotate_up t plan.current;
        T.rotate_up t plan.current
    | Td_zig | Td_semi_zig_zig ->
        T.rotate_up t (T.next_hop t ~src:plan.current ~dst:plan.dst)
    | Td_semi_zig_zag ->
        let y = T.next_hop t ~src:plan.current ~dst:plan.dst in
        let z = T.next_hop t ~src:y ~dst:plan.dst in
        T.rotate_up t z;
        T.rotate_up t z

(* The node [execute] would promote first — mirrors the dispatch above
   exactly, so a fault-injected abort tears the same elementary
   rotation the healthy step would have started with. *)
let first_rotation_node t plan =
  match plan.kind with
  | Bu_zig | Bu_semi_zig_zag -> plan.current
  | Bu_semi_zig_zig -> T.parent t plan.current
  | Td_zig | Td_semi_zig_zig ->
      T.next_hop t ~src:plan.current ~dst:plan.dst
  | Td_semi_zig_zag ->
      let y = T.next_hop t ~src:plan.current ~dst:plan.dst in
      T.next_hop t ~src:y ~dst:plan.dst
