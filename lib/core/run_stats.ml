type t = {
  messages : int;
  routing_hops : int;
  routing_cost : int;
  rotations : int;
  work : float;
  makespan : int;
  throughput : float;
  steps : int;
  pauses : int;
  bypasses : int;
  update_messages : int;
  rounds : int;
}

let of_iter ~config ~rounds iter =
  let messages = ref 0 in
  let hops = ref 0 in
  let rotations = ref 0 in
  let steps = ref 0 in
  let pauses = ref 0 in
  let bypasses = ref 0 in
  let updates = ref 0 in
  let first_birth = ref max_int in
  let last_end = ref 0 in
  iter (fun (m : Message.t) ->
      hops := !hops + m.hops;
      rotations := !rotations + m.rotations;
      steps := !steps + m.steps;
      pauses := !pauses + m.pauses;
      bypasses := !bypasses + m.bypasses;
      match m.kind with
      | Message.Data ->
          incr messages;
          if m.birth < !first_birth then first_birth := m.birth;
          if m.end_time > !last_end then last_end := m.end_time
      | Message.Weight_update -> incr updates);
  let routing_cost = !hops + !messages in
  let makespan = if !messages = 0 then 0 else max 1 (!last_end - !first_birth) in
  {
    messages = !messages;
    routing_hops = !hops;
    routing_cost;
    rotations = !rotations;
    work =
      float_of_int routing_cost
      +. (config.Config.rotation_cost *. float_of_int !rotations);
    makespan;
    throughput =
      (if !messages = 0 then 0.0 else float_of_int !messages /. float_of_int makespan);
    steps = !steps;
    pauses = !pauses;
    bypasses = !bypasses;
    update_messages = !updates;
    rounds;
  }

let of_messages ~config ~rounds msgs =
  of_iter ~config ~rounds (fun f -> List.iter f msgs)

let pp fmt t =
  Format.fprintf fmt
    "m=%d routing=%d (hops=%d) rotations=%d work=%.0f makespan=%d \
     throughput=%.4f steps=%d pauses=%d bypasses=%d updates=%d rounds=%d"
    t.messages t.routing_cost t.routing_hops t.rotations t.work t.makespan
    t.throughput t.steps t.pauses t.bypasses t.update_messages t.rounds
