type chaos = {
  crashes : int;
  parks : int;
  lost : int;
  duplicated : int;
  delayed : int;
  aborted_rotations : int;
  repairs : int;
}

let no_chaos =
  {
    crashes = 0;
    parks = 0;
    lost = 0;
    duplicated = 0;
    delayed = 0;
    aborted_rotations = 0;
    repairs = 0;
  }

let chaos_is_zero c =
  c.crashes = 0 && c.parks = 0 && c.lost = 0 && c.duplicated = 0
  && c.delayed = 0 && c.aborted_rotations = 0 && c.repairs = 0

type t = {
  messages : int;
  routing_hops : int;
  routing_cost : int;
  rotations : int;
  work : float;
  makespan : int;
  throughput : float;
  steps : int;
  pauses : int;
  bypasses : int;
  update_messages : int;
  rounds : int;
  chaos : chaos;
}

let of_iter ?(chaos = no_chaos) ~config ~rounds iter =
  let messages = ref 0 in
  let hops = ref 0 in
  let rotations = ref 0 in
  let steps = ref 0 in
  let pauses = ref 0 in
  let bypasses = ref 0 in
  let updates = ref 0 in
  let first_birth = ref max_int in
  let last_end = ref 0 in
  iter (fun (m : Message.t) ->
      hops := !hops + m.hops;
      rotations := !rotations + m.rotations;
      steps := !steps + m.steps;
      pauses := !pauses + m.pauses;
      bypasses := !bypasses + m.bypasses;
      match m.kind with
      | Message.Data ->
          incr messages;
          if m.birth < !first_birth then first_birth := m.birth;
          if m.end_time > !last_end then last_end := m.end_time
      | Message.Weight_update -> incr updates);
  let routing_cost = !hops + !messages in
  let makespan = if !messages = 0 then 0 else max 1 (!last_end - !first_birth) in
  {
    messages = !messages;
    routing_hops = !hops;
    routing_cost;
    rotations = !rotations;
    work =
      float_of_int routing_cost
      +. (config.Config.rotation_cost *. float_of_int !rotations);
    makespan;
    throughput =
      (if !messages = 0 then 0.0 else float_of_int !messages /. float_of_int makespan);
    steps = !steps;
    pauses = !pauses;
    bypasses = !bypasses;
    update_messages = !updates;
    rounds;
    chaos;
  }

let of_messages ?chaos ~config ~rounds msgs =
  of_iter ?chaos ~config ~rounds (fun f -> List.iter f msgs)

let pp fmt t =
  Format.fprintf fmt
    "m=%d routing=%d (hops=%d) rotations=%d work=%.0f makespan=%d \
     throughput=%.4f steps=%d pauses=%d bypasses=%d updates=%d rounds=%d"
    t.messages t.routing_cost t.routing_hops t.rotations t.work t.makespan
    t.throughput t.steps t.pauses t.bypasses t.update_messages t.rounds;
  (* Chaos columns appear only when faults actually fired, keeping
     fault-free log lines byte-identical with pre-faultkit output. *)
  if not (chaos_is_zero t.chaos) then
    Format.fprintf fmt
      " crashes=%d parks=%d lost=%d dup=%d delayed=%d aborts=%d repairs=%d"
      t.chaos.crashes t.chaos.parks t.chaos.lost t.chaos.duplicated
      t.chaos.delayed t.chaos.aborted_rotations t.chaos.repairs
