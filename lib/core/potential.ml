module T = Bstnet.Topology

(* Node ids are ints; float comparisons below use >=/< only, so the
   monomorphic shadow covers every (=) use in this file. *)
let ( = ) : int -> int -> bool = Int.equal

let log2 = Float.log2

(* Weights are message counters, so the vast majority stay small; a
   one-time table of log2 values makes [rank] a single array read on
   the executor's hot path.  Entries are produced by the same
   [Float.log2] call as the fallback, so table hits are bit-identical
   to direct computation. *)
let table_size = 1 lsl 16

let table =
  Array.init table_size (fun w -> if w <= 1 then 0.0 else log2 (float_of_int w))

(* lint: hot *)
(* effect: pure *)
let rank w =
  if w <= 1 then 0.0
  else if w < table_size then Array.unsafe_get table w
  else log2 (float_of_int w)

(* Node ranks are additionally memoized in the topology's per-node
   slot: between weight changes a node's rank is read many times (each
   neighbour's ΔΦ prediction touches it), and [Topology] invalidates
   the slot on every weight mutation. *)
let node_rank t v =
  let r = T.rank_memo t v in
  if r >= 0.0 then r
  else begin
    let r = rank (T.weight t v) in
    T.set_rank_memo t v r;
    r
  end

(* Read-only twin of [node_rank] for the parallel speculative plan
   wave: reads the memo when fresh but never writes it (multiple
   domains probe concurrently; the tree must stay untouched).  Memoed
   and recomputed values are bit-identical — the memo always holds
   exactly [rank (weight v)] — so skipping the write cannot change any
   downstream float. *)
(* effect: pure *)
let node_rank_ro t v =
  let r = T.rank_memo t v in
  if r >= 0.0 then r else rank (T.weight t v)
(* lint: hot-end *)

let phi t =
  let acc = ref 0.0 in
  T.iter_subtree t (T.root t) (fun v -> acc := !acc +. node_rank t v);
  !acc

let weight_opt t v = if v = T.nil then 0 else T.weight t v

(* The subtree that a single rotation transfers from the promoted node
   to its demoted parent: the child on the opposite side of the
   promoted node's own position. *)
let transferred_child t c =
  if T.is_left_child t c then T.right t c else T.left t c

let delta_promote t c =
  let p = T.parent t c in
  if p = T.nil then invalid_arg "Potential.delta_promote: node is the root";
  let wp' = T.weight t p - T.weight t c + weight_opt t (transferred_child t c) in
  (* c inherits p's total weight, so its rank change cancels p's old
     rank; only the demoted parent's new rank matters. *)
  rank wp' -. node_rank t c

let delta_double_promote t c =
  let p = T.parent t c in
  if p = T.nil then invalid_arg "Potential.delta_double_promote: node is the root";
  let g = T.parent t p in
  if g = T.nil then invalid_arg "Potential.delta_double_promote: no grandparent";
  let t1 = transferred_child t c in
  (* After the first rotation c sits in p's old position, so its second
     transferred child is its other original child. *)
  let t2 = if t1 = T.left t c then T.right t c else T.left t c in
  let wp' = T.weight t p - T.weight t c + weight_opt t t1 in
  let wg' = T.weight t g - T.weight t p + weight_opt t t2 in
  rank wp' +. rank wg' -. node_rank t c -. node_rank t p

(* lint: hot *)
(* Side-effect-free ΔΦ twins (no rank-memo writes) for concurrent
   speculation.  Same arithmetic, same float results. *)
(* effect: pure *)
let delta_promote_ro t c =
  let p = T.parent t c in
  if p = T.nil then invalid_arg "Potential.delta_promote_ro: node is the root";
  let wp' = T.weight t p - T.weight t c + weight_opt t (transferred_child t c) in
  rank wp' -. node_rank_ro t c

(* effect: pure *)
let delta_double_promote_ro t c =
  let p = T.parent t c in
  if p = T.nil then
    invalid_arg "Potential.delta_double_promote_ro: node is the root";
  let g = T.parent t p in
  if g = T.nil then
    invalid_arg "Potential.delta_double_promote_ro: no grandparent";
  let t1 = transferred_child t c in
  let t2 = if t1 = T.left t c then T.right t c else T.left t c in
  let wp' = T.weight t p - T.weight t c + weight_opt t t1 in
  let wg' = T.weight t g - T.weight t p + weight_opt t t2 in
  rank wp' +. rank wg' -. node_rank_ro t c -. node_rank_ro t p
(* lint: hot-end *)

(* The "effect: pure" markers above are verified interprocedurally by
   cbnet_lint's effect-pure rule: lib/effectkit computes each
   function's transitive write set and fails the lint if a memo write
   ever leaks into a _ro twin.  See docs/LINTING.md, "Effect
   analysis". *)
