type kind = Data | Weight_update
type phase = Climbing | Descending

type t = {
  id : int;
  mutable kind : kind;
  mutable src : int;
  mutable dst : int;
  mutable birth : int;
  mutable current : int;
  mutable phase : phase;
  mutable up_credit : int;
  mutable update_spawned : bool;
  mutable delivered : bool;
  mutable end_time : int;
  mutable hops : int;
  mutable rotations : int;
  mutable steps : int;
  mutable pauses : int;
  mutable bypasses : int;
  (* First round the message may act again after a fault-injected
     delay (Faultkit); 0 = not sleeping.  Untouched on fault-free
     runs. *)
  mutable asleep_until : int;
  (* Step-shape cache for the concurrent executor's untraced fast
     path: the last probed core cluster + anchor and the structure
     versions of the core nodes at probe time (see
     Bstnet.Topology.version).  shape_c0 = -2 means empty. *)
  mutable shape_c0 : int;
  mutable shape_c1 : int;
  mutable shape_c2 : int;
  mutable shape_anchor : int;
  mutable shape_v0 : int;
  mutable shape_v1 : int;
  mutable shape_v2 : int;
}

let shape_none = -2

let make ~id ~kind ~src ~dst ~birth =
  {
    id;
    kind;
    src;
    dst;
    birth;
    current = src;
    phase = Climbing;
    up_credit = Bstnet.Topology.nil;
    update_spawned = false;
    delivered = false;
    end_time = -1;
    hops = 0;
    rotations = 0;
    steps = 0;
    pauses = 0;
    bypasses = 0;
    asleep_until = 0;
    shape_c0 = shape_none;
    shape_c1 = Bstnet.Topology.nil;
    shape_c2 = Bstnet.Topology.nil;
    shape_anchor = Bstnet.Topology.nil;
    shape_v0 = 0;
    shape_v1 = 0;
    shape_v2 = 0;
  }

let reinit m ~kind ~src ~dst ~birth =
  m.kind <- kind;
  m.src <- src;
  m.dst <- dst;
  m.birth <- birth;
  m.current <- src;
  m.phase <- Climbing;
  m.up_credit <- Bstnet.Topology.nil;
  m.update_spawned <- false;
  m.delivered <- false;
  m.end_time <- -1;
  m.hops <- 0;
  m.rotations <- 0;
  m.steps <- 0;
  m.pauses <- 0;
  m.bypasses <- 0;
  m.asleep_until <- 0;
  m.shape_c0 <- shape_none

let data ~id ~src ~dst ~birth = make ~id ~kind:Data ~src ~dst ~birth

let weight_update ~id ~origin ~birth =
  make ~id ~kind:Weight_update ~src:origin ~dst:Bstnet.Topology.nil ~birth

let is_data m = match m.kind with Data -> true | Weight_update -> false
let is_update m = match m.kind with Weight_update -> true | Data -> false
let is_climbing m = match m.phase with Climbing -> true | Descending -> false

let is_descending m =
  match m.phase with Descending -> true | Climbing -> false

let priority_compare a b =
  let c = Int.compare a.birth b.birth in
  if c <> 0 then c else Int.compare a.id b.id
