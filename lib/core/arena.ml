module M = Message

type t = { mutable slots : M.t array; mutable len : int }

let blank id = M.data ~id ~src:0 ~dst:0 ~birth:0

let create ~capacity =
  let capacity = max 1 capacity in
  { slots = Array.init capacity blank; len = 0 }

let length a = a.len

(* lint: hot *)
let alloc a =
  if Int.equal a.len (Array.length a.slots) then begin
    let old = a.slots in
    let n = Array.length old in
    (* lint: allow no-alloc -- amortized growth path, not the per-alloc case *)
    a.slots <- Array.init (2 * n) (fun i -> if i < n then old.(i) else blank i)
  end;
  let m = a.slots.(a.len) in
  a.len <- a.len + 1;
  m

let alloc_data a ~src ~dst ~birth =
  let m = alloc a in
  M.reinit m ~kind:M.Data ~src ~dst ~birth;
  m

let alloc_update a ~origin ~birth =
  let m = alloc a in
  M.reinit m ~kind:M.Weight_update ~src:origin ~dst:Bstnet.Topology.nil ~birth;
  m

let get a id =
  if id < 0 || id >= a.len then invalid_arg "Arena.get: id not allocated";
  a.slots.(id)

let iter a f =
  for i = 0 to a.len - 1 do
    f a.slots.(i)
  done
(* lint: hot-end *)
