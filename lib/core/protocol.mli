(** The per-turn message protocol shared by the sequential and the
    concurrent executors: LCA detection, weight increments along the
    travelled path, spawning of the weight-update control message, and
    delivery detection.

    Weight bookkeeping (Sec. IV/V): while climbing, every node the
    message crosses gains +1 (it is an ancestor of the source on the
    travelled path); at the LCA the message spawns a root-bound update
    message that adds +2 to every node it crosses (covering both
    endpoints' shared ancestors); while descending, every node crossed
    gains +1.  Under rotations the realized paths are the ones actually
    travelled — after quiescence the root's weight equals exactly [2m]
    (every update terminates at the current root), which Theorem 1
    relies on, while individual counters are the travel-path
    approximation inherent to the distributed protocol. *)

type spawn = origin:int -> first_increment:int -> unit
(** Callback invoked when a message reaches its LCA and must emit a
    weight-update message: the executor creates the control message at
    [origin], whose own weight must immediately grow by
    [first_increment] (2 in general; 1 when the origin already received
    this message's climb increment). *)

type turn = Delivered | Plan of Step.t

val born : Bstnet.Topology.t -> spawn:spawn -> Message.t -> unit
(** One-time bookkeeping when a message enters the network at its
    source: climb increment, or immediate LCA handling when the
    destination lies in the source's subtree (including self-messages,
    which deliver on the spot). *)

val begin_turn_probe :
  Step.t -> Bstnet.Topology.t -> spawn:spawn -> Message.t -> bool
(** The shape-only prefix of {!begin_turn_into}: performs the same
    direction re-evaluation, phase flips and update spawning, but
    fills the buffer with a {!Step.probe_up_into}-style shape (core
    cluster + anchor, no [ΔΦ]) instead of a full plan.  Returns
    [false] on delivery, like {!begin_turn_into}.  The concurrent
    executor uses this to pre-check cluster conflicts and only pay for
    {!Step.resolve_into} on turns that can actually act. *)

val spec_planned : int
val spec_flip : int
val spec_climb : int
(** Bit flags returned by {!speculate_turn_probe}. *)

val speculate_turn_probe : Step.t -> Bstnet.Topology.t -> Message.t -> int
(** Side-effect-free twin of {!begin_turn_probe} for the parallel plan
    wave: same direction dispatch, but no phase writes and no update
    spawning (the spawn's weight deposit precedes the probe in the
    sequential order, so any such turn must be replanned at commit
    time).  Returns a bit set: [spec_planned] — the buffer holds the
    turn's probe; [spec_climb] — the committing thread must set the
    phase to Climbing before using the plan (direction Up while
    descending); [spec_flip] — the turn crosses its LCA and must be
    rerun sequentially at commit.  A result of [0] means the turn
    delivers (subject to commit-time revalidation). *)

val begin_turn_into :
  Step.t -> Config.t -> Bstnet.Topology.t -> spawn:spawn -> Message.t -> bool
(** Start a turn for an undelivered message: re-evaluate the direction
    at the current node (it may have changed through bypasses or the
    message's own in-place rotations), flip phase / spawn the update
    when the LCA has been reached, and fill the buffer with the step
    plan (returning [true]) — or return [false] when the message is
    delivered instead (buffer untouched).  Safe to call repeatedly for
    a message paused by conflicts; allocation-free. *)

val begin_turn : Config.t -> Bstnet.Topology.t -> spawn:spawn -> Message.t -> turn
(** {!begin_turn_into} into a fresh buffer per plan — the original
    allocating interface, used by the sequential executor and
    {!Concurrent.Reference}. *)

val apply_step : Bstnet.Topology.t -> spawn:spawn -> Message.t -> Step.t -> unit
(** Commit a plan: execute its rotation (if any) with the weight
    deposits ordered correctly around it, advance the message, account
    hops/rotations/steps, apply the increments of the crossed nodes,
    flip phase at a crossed LCA, and mark delivery when the
    destination (or the root, for updates) is reached. *)
