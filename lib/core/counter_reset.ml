module T = Bstnet.Topology

let decay t ~factor =
  if factor < 0.0 || factor >= 1.0 then
    invalid_arg "Counter_reset.decay: factor must be in [0, 1)";
  (* Capture current counters, scale, rebuild aggregates bottom-up. *)
  let n = T.n t in
  let scaled = Array.make n 0 in
  for v = 0 to n - 1 do
    scaled.(v) <-
      int_of_float (Float.floor (float_of_int (max 0 (T.counter t v)) *. factor))
  done;
  let rec rebuild v =
    if Int.equal v T.nil then 0
    else begin
      let wl = rebuild (T.left t v) in
      let wr = rebuild (T.right t v) in
      let w = scaled.(v) + wl + wr in
      T.set_weight t v w;
      w
    end
  in
  ignore (rebuild (T.root t))

let combine_chaos (a : Run_stats.chaos) (b : Run_stats.chaos) =
  {
    Run_stats.crashes = a.crashes + b.crashes;
    parks = a.parks + b.parks;
    lost = a.lost + b.lost;
    duplicated = a.duplicated + b.duplicated;
    delayed = a.delayed + b.delayed;
    aborted_rotations = a.aborted_rotations + b.aborted_rotations;
    repairs = a.repairs + b.repairs;
  }

let combine (a : Run_stats.t) (b : Run_stats.t) decay_slots =
  {
    Run_stats.messages = a.messages + b.messages;
    routing_hops = a.routing_hops + b.routing_hops;
    routing_cost = a.routing_cost + b.routing_cost;
    rotations = a.rotations + b.rotations;
    work = a.work +. b.work;
    makespan = a.makespan + b.makespan + decay_slots;
    throughput = 0.0;
    steps = a.steps + b.steps;
    pauses = a.pauses + b.pauses;
    bypasses = a.bypasses + b.bypasses;
    update_messages = a.update_messages + b.update_messages;
    rounds = a.rounds + b.rounds + decay_slots;
    chaos = combine_chaos a.chaos b.chaos;
  }

let run_concurrent ?(config = Config.default) ?window ?(max_rounds = 100_000_000)
    ?sink ?profile ?prof_sink ?team_sink ?faults ?check_invariants ?domains
    ~every_rounds ~factor t trace =
  if every_rounds < 1 then
    invalid_arg "Counter_reset.run_concurrent: every_rounds must be >= 1";
  let sched, finalize =
    Concurrent.scheduler ~config ?window ?sink ?profile ?prof_sink ?team_sink
      ?faults ?check_invariants ?domains t trace
  in
  let round = ref 0 in
  while (not (sched.Simkit.Engine.is_done ())) && !round < max_rounds do
    sched.Simkit.Engine.tick !round;
    incr round;
    if !round mod every_rounds = 0 then decay t ~factor
  done;
  (* The finalizer also joins the plan-wave team, so it must run even
     on the budget-exhausted path before the exception escapes. *)
  let done_ = sched.Simkit.Engine.is_done () in
  let stats = finalize !round in
  if not done_ then
    raise (Simkit.Engine.Budget_exhausted "Counter_reset.run_concurrent");
  stats

let run_sequential ?(config = Config.default) ~every ~factor t trace =
  if every < 1 then invalid_arg "Counter_reset.run_sequential: every must be >= 1";
  let m = Array.length trace in
  let rec go start acc =
    if start >= m then acc
    else begin
      let len = min every (m - start) in
      let chunk = Array.sub trace start len in
      (* Re-anchor chunk births at zero; sequential execution only uses
         them for idle-time accounting. *)
      let base = match chunk.(0) with b, _, _ -> b in
      let chunk = Array.map (fun (b, s, d) -> (b - base, s, d)) chunk in
      let stats = Sequential.run ~config t chunk in
      let acc =
        match acc with
        | None -> Some stats
        | Some prev -> Some (combine prev stats (T.n t))
      in
      if start + len < m then decay t ~factor;
      go (start + len) acc
    end
  in
  match go 0 None with
  | None -> Sequential.run ~config t [||]
  | Some stats ->
      {
        stats with
        Run_stats.throughput =
          (if stats.Run_stats.makespan = 0 then 0.0
           else
             float_of_int stats.Run_stats.messages
             /. float_of_int stats.Run_stats.makespan);
      }
