(** Concurrent CBNet (Sec. VII) — the CBN algorithm of the paper.

    Execution is organised in synchronous rounds.  In every round each
    in-flight message (data and weight-update alike), visited in
    priority order (birth time, then id — Sec. VII-A rule 1), plans its
    step and computes the step's cluster (Def. 6).  If the cluster is
    disjoint from all clusters already claimed this round the step
    executes; otherwise the message records a conflict — a {e pause}
    when the winning step was of type routing, a {e bypass} when it was
    a rotation (Def. 7) — and retries next round.  The highest-priority
    message is never blocked, which gives liveness.

    Unlike DiSplayNet, the source and destination nodes are never
    locked for the lifetime of a request: nodes are only ever claimed
    for the single round in which a step touches them.

    The executor is allocation-free in steady state: messages live in
    a preallocated {!Arena}, the undelivered set is an array-backed
    {!Simkit.Pqueue}, and step planning fills one reusable
    {!Step.buffer}.  {!Reference} keeps the original list-based round
    loop as an executable specification; the two produce bit-identical
    statistics, telemetry payloads and final trees.

    With [domains > 1] the executor parallelizes each round internally
    (docs/PERFORMANCE.md): a team of domains speculatively plans the
    ready set's turns against the frozen start-of-round tree, recording
    each turn's exact read set with per-node mutation stamps, and the
    caller then commits the slots serially in sequential order —
    replanning any turn whose reads went stale.  Every output remains
    bit-identical to [domains = 1] at any domain count. *)

val run :
  ?config:Config.t ->
  ?window:int ->
  ?max_rounds:int ->
  ?sink:Obskit.Sink.t ->
  ?profile:Profkit.Profile.t ->
  ?prof_sink:Obskit.Sink.t ->
  ?team_sink:Obskit.Sink.t ->
  ?faults:Faultkit.Plan.t ->
  ?check_invariants:bool ->
  ?domains:int ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Run_stats.t
(** [run t trace] executes [(birth, src, dst)] requests (sorted by
    birth) concurrently on [t], mutating it, and runs until both all
    data messages and all weight-update messages have drained.

    [faults] injects deterministic faults (Faultkit, docs/ROBUSTNESS.md):
    node-crash windows park messages whose acting node or step cluster
    is down (charging makespan, never pauses/bypasses); in-transit
    losses re-arm the message at its source with its original birth;
    duplications fork an extra data message; delays put a message to
    sleep for a few rounds; rotation aborts tear the first elementary
    rotation mid-flight and immediately run the local repair protocol.
    Faults, like everything else, are driven by the plan's own seeded
    generator — the same plan on the same trace replays bit for bit.
    The tallies land in {!Run_stats.t}'s [chaos] field.  When [faults]
    is absent the executor takes the pre-faultkit allocation-free hot
    path and every output — statistics, latencies, telemetry, final
    tree — is bit-identical to a build without fault support.

    [check_invariants] (default [false]) verifies the
    {!Bstnet.Check.structural} suite — structure, BST order, interval
    labels — on the final tree (and, under a fault plan, after every
    repair), raising [Failure] on a violation.  Weight sums are
    deliberately excluded: they are a flow property, exact only
    relative to the weight-update deposits still in flight, so even a
    fault-free run can end with messages whose deposits never
    telescoped (clamped rotations, bypass re-climbs).

    [window] (default [max 64 n]) is source-side admission control: at
    most that many data messages are in the network simultaneously;
    later requests wait at their sources (their original birth time
    still anchors priority and makespan, so queueing is charged to the
    makespan).  This bounds the per-round simulation cost under
    saturation without affecting which steps conflict.

    [sink] (default {!Obskit.Sink.null}) receives per-round structured
    events: [Round_begin], [Step_planned], [Cluster_claimed],
    [Conflict], [Rotation], [Msg_delivered] and one [Phi_sample] per
    round.  Telemetry is purely observational — a traced run computes
    the exact same {!Run_stats.t} as an untraced one, bit for bit —
    and with the null sink every emission site is a single branch.

    [domains] (default 1) runs the round loop's plan phase on that
    many domains (including the caller).  [team_sink] (default
    {!Obskit.Sink.null}) receives one [Plan_wave] event per member per
    parallel round, in member order; it is separate from [sink]
    because the run sink's streams are bit-identical across domain
    counts while wave telemetry is inherently per-team.

    [profile] (default absent) turns on phase-level self-profiling
    (docs/OBSERVABILITY.md): every round is partitioned exclusively
    and contiguously into fault-injection, inject, plan-wave, commit,
    delivery, invariant-check and other phases whose times accumulate
    into the caller-owned {!Profkit.Profile.t}, alongside speculation
    counters (stamp hits/misses, replayed vs fallback slots,
    shape-cache hits, claim conflicts, per-member wave imbalance).
    Profiling is purely observational: a profiled run's statistics,
    telemetry and final tree are bit-identical to an unprofiled one at
    any domain count.  [prof_sink] (default {!Obskit.Sink.null})
    receives one [Phase_time] event per non-empty phase per round when
    [profile] is set; it is separate from [sink] for the same reason
    [team_sink] is — the run sink's streams stay identical whether or
    not profiling is on.

    @raise Invalid_argument on an unsorted trace, bad endpoints, or
    [domains < 1].
    @raise Simkit.Engine.Budget_exhausted if rounds exceed [max_rounds]
    (a liveness failure, not a legitimate outcome). *)

val run_with_latencies :
  ?config:Config.t ->
  ?window:int ->
  ?max_rounds:int ->
  ?sink:Obskit.Sink.t ->
  ?profile:Profkit.Profile.t ->
  ?prof_sink:Obskit.Sink.t ->
  ?team_sink:Obskit.Sink.t ->
  ?faults:Faultkit.Plan.t ->
  ?check_invariants:bool ->
  ?domains:int ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Run_stats.t * float array
(** Like {!run}, additionally returning each data message's delivery
    latency (rounds from birth to delivery, source queueing included)
    for distribution analyses.  Latencies are in message-id (creation)
    order; distribution consumers sort or summarize anyway. *)

val scheduler :
  ?config:Config.t ->
  ?window:int ->
  ?sink:Obskit.Sink.t ->
  ?profile:Profkit.Profile.t ->
  ?prof_sink:Obskit.Sink.t ->
  ?team_sink:Obskit.Sink.t ->
  ?faults:Faultkit.Plan.t ->
  ?check_invariants:bool ->
  ?domains:int ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Simkit.Engine.scheduler * (int -> Run_stats.t)
(** Lower-level access for embedding in a larger simulation: returns
    the engine scheduler plus a finalizer producing the statistics
    given the executed round count.  The finalizer folds over {e all}
    messages created so far (delivered or not), so it is meaningful
    after a truncated embedding too.  With [domains > 1] the finalizer
    also joins and shuts the plan-wave team down, so it must be called
    even on a truncated embedding (or the domains leak until exit). *)

(** The original list-based round loop, kept verbatim as the
    executable specification of the executor above: per-round
    [List.sort]/[List.merge] of freshly-allocated message records and
    list-valued clusters.  The equivalence test suite checks the two
    against each other event for event, and [bench perf] times them
    side by side.  Semantics and results are identical; only the
    machine profile differs. *)
module Reference : sig
  val run :
    ?config:Config.t ->
    ?window:int ->
    ?max_rounds:int ->
    ?sink:Obskit.Sink.t ->
    Bstnet.Topology.t ->
    (int * int * int) array ->
    Run_stats.t

  val run_with_latencies :
    ?config:Config.t ->
    ?window:int ->
    ?max_rounds:int ->
    ?sink:Obskit.Sink.t ->
    Bstnet.Topology.t ->
    (int * int * int) array ->
    Run_stats.t * float array
  (** Latencies are in reverse delivery order (the finish list is a
      cons stack); compare against {!Concurrent.run_with_latencies}
      after sorting. *)

  val scheduler :
    ?config:Config.t ->
    ?window:int ->
    ?sink:Obskit.Sink.t ->
    Bstnet.Topology.t ->
    (int * int * int) array ->
    Simkit.Engine.scheduler * (int -> Run_stats.t)
end
