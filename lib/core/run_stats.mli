(** Aggregate cost accounting of one execution, following the cost
    model of Sec. II (Def. 1-3). *)

type chaos = {
  crashes : int;  (** Node-crash windows opened by the fault plan. *)
  parks : int;
      (** Turns skipped because the acting node or a cluster node was
          down (each charges makespan, never pauses/bypasses). *)
  lost : int;  (** Messages dropped in transit and re-armed at source. *)
  duplicated : int;  (** Data messages duplicated in transit. *)
  delayed : int;  (** Messages put to sleep by a delay fault. *)
  aborted_rotations : int;  (** Rotations torn mid-flight by a fault. *)
  repairs : int;  (** Local repairs run (one per aborted rotation). *)
}
(** Fault-injection tallies (Faultkit); all zero on fault-free runs. *)

val no_chaos : chaos
(** The all-zero tally. *)

val chaos_is_zero : chaos -> bool

type t = {
  messages : int;  (** [m], number of data messages in σ. *)
  routing_hops : int;
      (** Total forwarding operations, data and update messages. *)
  routing_cost : int;
      (** [D(A, T0, σ) = Σ (d_ei + 1)]: hops plus one per data message. *)
  rotations : int;  (** [Σ ρ_i], elementary rotations (updates included). *)
  work : float;  (** [C = D + R · Σ ρ_i]. *)
  makespan : int;  (** [max e_i - min b_i] over data messages (Def. 2). *)
  throughput : float;  (** [m / makespan]. *)
  steps : int;  (** Steps executed (data and update messages). *)
  pauses : int;  (** Routing-vs-routing conflicts (concurrent only). *)
  bypasses : int;  (** Rotation-under-message conflicts (concurrent only). *)
  update_messages : int;  (** Weight-update control messages emitted. *)
  rounds : int;  (** Rounds until full quiescence (updates drained). *)
  chaos : chaos;  (** Fault-injection tallies; {!no_chaos} without faults. *)
}

val of_iter :
  ?chaos:chaos ->
  config:Config.t ->
  rounds:int ->
  ((Message.t -> unit) -> unit) ->
  t
(** Fold delivered messages into the aggregate, visiting them through
    the given iterator (e.g. {!Arena.iter} partially applied) — every
    accumulation is order-independent, so any visit order produces the
    same result.  Data messages contribute to [routing_cost]'s +1 term
    and to the makespan; update messages contribute hops and rotations
    only. *)

val of_messages :
  ?chaos:chaos -> config:Config.t -> rounds:int -> Message.t list -> t
(** {!of_iter} over a list. *)

val pp : Format.formatter -> t -> unit
(** One-line [key=value] rendering.  Every fault-free field is printed
    even when zero — in particular [pauses], [bypasses] and [rounds],
    which are always 0 for sequential executions — so sequential and
    concurrent runs produce the same columns and line up in logs and
    diffs.  The chaos columns are appended only when some fault tally
    is nonzero, keeping fault-free lines byte-identical with
    pre-faultkit output. *)
