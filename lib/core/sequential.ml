module T = Bstnet.Topology
module M = Message

let validate t trace =
  let n = T.n t in
  let last_birth = ref min_int in
  Array.iter
    (fun (birth, src, dst) ->
      if birth < !last_birth then invalid_arg "Sequential.run: trace not sorted";
      last_birth := birth;
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Sequential.run: endpoint out of range")
    trace

(* A message's climb and descent are both bounded by the tree height,
   and sequential execution has no bypass re-climbs; this budget only
   trips on a genuine progress bug. *)
let step_budget t = (8 * T.n t) + 64

(* [round] is the sequential clock value at which the message started
   being served; per-step events reuse it as their logical time. *)
let drive ~sink ~round config t ~spawn msg =
  let traced = Obskit.Sink.enabled sink in
  let budget = ref (step_budget t) in
  while not msg.M.delivered do
    decr budget;
    if !budget < 0 then failwith "Sequential.run: message failed to progress";
    match Protocol.begin_turn config t ~spawn msg with
    | Protocol.Delivered -> msg.M.delivered <- true
    | Protocol.Plan plan ->
        if traced then
          Obskit.Sink.record sink (fun () ->
              Obskit.Event.Step_planned
                {
                  round;
                  msg = msg.M.id;
                  kind = Step.kind_to_string plan.Step.kind;
                  rotate = plan.Step.rotate;
                  delta_phi = Step.delta_phi plan;
                });
        Protocol.apply_step t ~spawn msg plan;
        if traced && plan.Step.rotate then
          Obskit.Sink.record sink (fun () ->
              Obskit.Event.Rotation
                {
                  round;
                  msg = msg.M.id;
                  node = plan.Step.current;
                  count = plan.Step.rotations;
                  delta_phi = Step.delta_phi plan;
                })
  done

let run ?(config = Config.default) ?(sink = Obskit.Sink.null) t trace =
  validate t trace;
  let traced = Obskit.Sink.enabled sink in
  let delivered_event (msg : M.t) =
    if traced then
      Obskit.Sink.record sink (fun () ->
          Obskit.Event.Msg_delivered
            {
              round = msg.M.end_time;
              msg = msg.M.id;
              data = M.is_data msg;
              birth = msg.M.birth;
              hops = msg.M.hops;
              rotations = msg.M.rotations;
            })
  in
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let finished = ref [] in
  let clock = ref 0 in
  Array.iter
    (fun (birth, src, dst) ->
      let msg = M.data ~id:(fresh_id ()) ~src ~dst ~birth in
      let pending_update = ref None in
      let spawn ~origin ~first_increment =
        T.add_weight t origin first_increment;
        let u = M.weight_update ~id:(fresh_id ()) ~origin ~birth:!clock in
        if T.is_root t origin then u.M.delivered <- true;
        pending_update := Some u
      in
      clock := max !clock birth;
      Protocol.born t ~spawn msg;
      if not msg.M.delivered then drive ~sink ~round:!clock config t ~spawn msg;
      clock := !clock + max 1 msg.M.steps;
      msg.M.end_time <- !clock;
      delivered_event msg;
      (match !pending_update with
      | Some u ->
          drive ~sink ~round:!clock config t ~spawn u;
          clock := !clock + u.M.steps;
          u.M.end_time <- !clock;
          delivered_event u;
          finished := u :: !finished
      | None -> ());
      finished := msg :: !finished;
      (* Φ is O(n); sample it once per served request on traced runs
         so convergence curves can be reconstructed from the trace. *)
      if traced then
        Obskit.Sink.record sink (fun () ->
            Obskit.Event.Phi_sample { round = !clock; phi = Potential.phi t }))
    trace;
  Run_stats.of_messages ~config ~rounds:!clock !finished
