module T = Bstnet.Topology
module M = Message

(* Node ids, rounds and version stamps are ints; kind tests go through
   M.is_* (see the no-poly-compare lint rule). *)
let ( = ) : int -> int -> bool = Int.equal
let ( <> ) a b = not (Int.equal a b)

let validate t trace =
  let n = T.n t in
  let last_birth = ref min_int in
  Array.iter
    (fun (birth, src, dst) ->
      if birth < !last_birth then invalid_arg "Concurrent.run: trace not sorted";
      last_birth := birth;
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Concurrent.run: endpoint out of range")
    trace

let default_window t = function Some w -> w | None -> max 64 (T.n t)

(* Steady-state allocation-free executor: all messages live in a
   preallocated arena (slot index = message id, handed out in the same
   order the list-based executor minted ids), the undelivered set is
   an array-backed priority buffer, and every turn fills one reusable
   plan buffer.  The rhythm of a round is unchanged — newcomers
   admitted, the whole set visited in (birth, id) order, finished
   messages dropped — so statistics, telemetry and the final tree are
   bit-identical to {!Reference}. *)

(* --------------------------------------------------------------
   Intra-round parallelism: the speculative plan wave.

   Bit-identity rules out racing CAS claims — which message wins a
   contended cluster would depend on domain scheduling, and every
   pause/bypass counter, event and rotation downstream of it.  The
   parallel executor therefore splits each round's visit into

     1. a *wave*: the ready set is partitioned across a fixed team of
        domains ({!Simkit.Team}); each member speculatively probes and
        resolves its messages' turns against the frozen start-of-round
        tree — strictly read-only (no weight deposits, no rank-memo
        writes, no phase flips) — recording each turn's plan, its exact
        node read set and the nodes' mutation stamps
        ({!Bstnet.Topology.stamp});

     2. a *serial commit*: the caller walks the slots in the exact
        sequential (birth, id) order.  A slot whose read-set stamps
        still hold commits its speculated plan verbatim (the sequential
        executor, reaching this message now, would recompute exactly
        it); a stale or unspeculatable slot falls back to the plain
        sequential turn.  All tree mutations, claim writes, fault draws
        and telemetry happen here, on one domain, in sequential order.

   The claim words double-pack (round, rotate) into one int per node —
   [round lsl 1 lor rotate], initialized to -2 so [asr 1] never equals
   a real round — replacing the two parallel arrays; the commit phase
   stays their only writer.

   Turns the wave cannot speculate exactly are tagged [tag_seq]:
   *flip hazards* — a turn crossing its LCA spawns the weight-update
   message and deposits its first increment *before* probing, so any
   speculated ΔΦ would be stale — and, on untraced fault-free runs,
   turns whose step-shape cache is still valid, which the sequential
   fast path re-checks in a handful of loads anyway (speculating those
   would cost more than it saves: pause-dominated rounds are exactly
   the cache-friendly ones). *)

let tag_seq = 0 (* run the plain sequential turn at commit *)
let tag_deliver = 1 (* speculated delivery; validate the current node *)
let tag_plan = 2 (* speculated resolved plan; validate the read set *)

type slot = {
  mutable tag : int;
  mutable flags : int; (* Protocol.spec_* bits of the speculation *)
  splan : Step.t; (* this slot's private plan buffer *)
  (* Probe-time cluster layout (resolve folds the anchor into the
     cluster fields when the step rotates, and the untraced commit
     path must refresh the message's shape cache with the *probe*
     layout, exactly as the sequential path does). *)
  mutable c0 : int;
  mutable c1 : int;
  mutable c2 : int;
  mutable canchor : int;
  (* The turn's exact read set: cluster core + the ΔΦ weight reads
     (transferred children), with each node's stamp at wave time.  A
     slot is committable iff every stamp still holds. *)
  reads : int array;
  stamps : int array;
  mutable nreads : int;
}

let max_reads = 6 (* 3 cluster nodes + at most 2 ΔΦ extras *)

let new_slot () =
  {
    tag = tag_seq;
    flags = 0;
    splan = Step.buffer ();
    c0 = T.nil;
    c1 = T.nil;
    c2 = T.nil;
    canchor = T.nil;
    reads = Array.make max_reads T.nil;
    stamps = Array.make max_reads 0;
    nreads = 0;
  }

(* Below this ready-set size the wave's handoff dwarfs the work. *)
let par_threshold = 32

module Prof = Profkit.Profile

type state = {
  config : Config.t;
  t : T.t;
  trace : (int * int * int) array;
  window : int;  (* admission control: max data messages in flight *)
  sink : Obskit.Sink.t;  (* telemetry; Sink.null compiles to no-ops *)
  profile : Prof.t option;
      (* phase timers + speculation counters; [None] keeps every
         profiling site a single branch.  Strictly observational: a
         profiled run is bit-identical to an unprofiled one. *)
  prof_sink : Obskit.Sink.t;
      (* Phase_time events of profiled rounds.  A separate sink, like
         [team_sink]: the run sink's stream must stay bit-identical
         whether or not profiling is on. *)
  faults : Faultkit.Injector.t option;
      (* fault injection (Faultkit); [None] keeps the executor on the
         plain hot path, bit-identical to pre-faultkit behaviour *)
  check : bool;  (* verify Bstnet.Check.structural after every repair *)
  arena : Arena.t;  (* all messages ever created, by id *)
  queue : M.t Simkit.Pqueue.t;  (* undelivered, in priority order *)
  plan : Step.t;  (* the reusable plan buffer *)
  mutable next_inject : int;  (* index into trace *)
  (* The spawn callback is allocated once; it reads the round and the
     parent's birth from these fields instead of capturing them. *)
  mutable spawn : Protocol.spawn;
  mutable cur_round : int;
  mutable cur_birth : int;
  (* Per-node claim words: claims.(v) = (r lsl 1) lor rotate when v is
     locked in round r by a step that rotates (1) or routes (0).
     Initialized to -2: (-2) asr 1 = -1, never a real round. *)
  claims : int array;
  mutable live : int;  (* undelivered messages, data + update *)
  mutable live_data : int;  (* undelivered data messages in flight *)
  (* Parallel plan wave (domains > 1); see the design note above. *)
  team_sink : Obskit.Sink.t;  (* per-member wave telemetry *)
  mutable team : Simkit.Team.t option;
  mutable slots : slot array;  (* one per committed queue position *)
  mutable wave_planned : int array;  (* per-member tally of tag_plan slots *)
  mutable wave_count : int;  (* wave job inputs: ready-set size... *)
  mutable wave_chunk : int;  (* ...and slice width per member *)
  mutable wave_cache : bool;  (* honour the shape cache (untraced, fault-free) *)
  mutable wave_job : int -> unit;  (* preallocated member job *)
}

(* Profiling shims: a single branch (and no allocation) when profiling
   is off, a counter bump or clock read when on. *)
let prof st phase =
  match st.profile with None -> () | Some p -> Prof.enter p phase

let prof_conflict st =
  match st.profile with None -> () | Some p -> Prof.conflict p

let prof_shape_hit st =
  match st.profile with None -> () | Some p -> Prof.shape_hit p

(* lint: hot *)
let finish st (msg : M.t) =
  msg.M.delivered <- true;
  msg.M.end_time <- st.cur_round;
  st.live <- st.live - 1;
  if M.is_data msg then st.live_data <- st.live_data - 1;
  if Obskit.Sink.enabled st.sink then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Msg_delivered
          {
            round = st.cur_round;
            msg = msg.M.id;
            data = M.is_data msg;
            birth = msg.M.birth;
            hops = msg.M.hops;
            rotations = msg.M.rotations;
          })

(* The spawn callback shared by all protocol entry points: the update
   message becomes active in the next round.  It inherits its parent's
   birth time (priority): the update is part of serving that request,
   and a freshly-stamped update would be starved forever behind the
   steady stream of older data messages. *)
let spawner st ~origin ~first_increment =
  T.add_weight st.t origin first_increment;
  let u = Arena.alloc_update st.arena ~origin ~birth:st.cur_birth in
  st.live <- st.live + 1;
  if T.is_root st.t origin then finish st u
  else Simkit.Pqueue.stage st.queue u
(* lint: hot-end *)

let create config ~window ~sink ~profile ~prof_sink ~team_sink ~faults ~check
    t trace =
  validate t trace;
  if window < 1 then invalid_arg "Concurrent.run: window must be >= 1";
  (* Exactly one update per data message, so the arena never grows
     (fault-injected duplicates take the amortized growth path). *)
  let capacity = max 16 (2 * Array.length trace) in
  let dummy = M.data ~id:(-1) ~src:0 ~dst:0 ~birth:0 in
  let st =
    {
      config;
      t;
      trace;
      window;
      sink;
      profile;
      prof_sink;
      faults;
      check;
      arena = Arena.create ~capacity;
      queue =
        Simkit.Pqueue.create
          ~capacity:(min capacity (4 * window))
          ~dummy M.priority_compare;
      plan = Step.buffer ();
      next_inject = 0;
      spawn = (fun ~origin:_ ~first_increment:_ -> ());
      cur_round = 0;
      cur_birth = 0;
      claims = Array.make (T.n t) (-2);
      live = 0;
      live_data = 0;
      team_sink;
      team = None;
      slots = [||];
      wave_planned = [||];
      wave_count = 0;
      wave_chunk = 0;
      wave_cache = false;
      wave_job = (fun _ -> ());
    }
  in
  st.spawn <-
    (fun ~origin ~first_increment -> spawner st ~origin ~first_increment);
  st

(* lint: hot *)
let inject st ~round =
  let continue_ = ref true in
  while
    !continue_
    && st.next_inject < Array.length st.trace
    && st.live_data < st.window
  do
    let birth, src, dst = st.trace.(st.next_inject) in
    if birth > round then continue_ := false
    else begin
      st.next_inject <- st.next_inject + 1;
      let msg = Arena.alloc_data st.arena ~src ~dst ~birth in
      st.live <- st.live + 1;
      st.live_data <- st.live_data + 1;
      st.cur_birth <- birth;
      Protocol.born st.t ~spawn:st.spawn msg;
      if msg.M.delivered then finish st msg
      else Simkit.Pqueue.stage st.queue msg
    end
  done
(* lint: hot-end *)

(* Conflict probe, walking the plan's nil-padded cluster fields (nil
   is tail padding only).  Encoded as an int so the per-turn hot path
   allocates no option: -1 = free, 0 = loser of a routing step
   (pause), 1 = loser of a rotation (bypass).  Written without inner
   closures — the non-flambda compiler would allocate them per call.
   A node is claimed in this round iff its claim word shifts down to
   [round]; the low bit is the claimer's rotate verdict. *)
let conflict_free = -1

(* lint: hot *)
let cluster_conflict st ~round (p : Step.t) =
  let v0 = p.Step.cluster0 in
  if v0 <> T.nil && st.claims.(v0) asr 1 = round then st.claims.(v0) land 1
  else
    let v1 = p.Step.cluster1 in
    if v1 <> T.nil && st.claims.(v1) asr 1 = round then st.claims.(v1) land 1
    else
      let v2 = p.Step.cluster2 in
      if v2 <> T.nil && st.claims.(v2) asr 1 = round then
        st.claims.(v2) land 1
      else
        let v3 = p.Step.cluster3 in
        if v3 <> T.nil && st.claims.(v3) asr 1 = round then
          st.claims.(v3) land 1
        else conflict_free

let claim st ~round (p : Step.t) =
  let word = (round lsl 1) lor Bool.to_int p.Step.rotate in
  let v0 = p.Step.cluster0 in
  if v0 <> T.nil then st.claims.(v0) <- word;
  let v1 = p.Step.cluster1 in
  if v1 <> T.nil then st.claims.(v1) <- word;
  let v2 = p.Step.cluster2 in
  if v2 <> T.nil then st.claims.(v2) <- word;
  let v3 = p.Step.cluster3 in
  if v3 <> T.nil then st.claims.(v3) <- word

(* Record a lost conflict on the message (+ optional event). *)
let record_conflict st ~round ~traced (msg : M.t) ~was_rotation =
  if was_rotation then msg.M.bypasses <- msg.M.bypasses + 1
  else msg.M.pauses <- msg.M.pauses + 1;
  prof_conflict st;
  if traced then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Conflict
          {
            round;
            msg = msg.M.id;
            kind =
              (if was_rotation then Obskit.Event.Bypass
               else Obskit.Event.Pause);
          })

(* Commit the turn's plan: claim the cluster, apply the step, finish
   the message if it arrived.  Shared by the conflict-free branch of
   {!resolved_turn} and by the fault-injected path. *)
let commit_plan st ~round ~traced (msg : M.t) (plan : Step.t) =
  claim st ~round plan;
  if traced then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Cluster_claimed
          {
            round;
            msg = msg.M.id;
            cluster = Step.cluster plan;
            rotate = plan.Step.rotate;
          });
  msg.M.shape_c0 <- M.shape_none;
  Protocol.apply_step st.t ~spawn:st.spawn msg plan;
  if traced && plan.Step.rotate then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Rotation
          {
            round;
            msg = msg.M.id;
            node = plan.Step.current;
            count = plan.Step.rotations;
            delta_phi = Step.delta_phi plan;
          });
  if msg.M.delivered then finish st msg

(* Finish a turn whose buffer holds a complete (resolved) plan:
   conflict test on the final cluster, then claim + apply or record
   the pause/bypass. *)
let resolved_turn st ~round ~traced (msg : M.t) (plan : Step.t) =
  let conflict = cluster_conflict st ~round plan in
  if conflict <> conflict_free then
    record_conflict st ~round ~traced msg ~was_rotation:(conflict = 1)
  else commit_plan st ~round ~traced msg plan
(* lint: hot-end *)

(* Traced turn: full plan up front (Step_planned must carry ΔΦ). *)
let traced_turn st ~round (msg : M.t) =
  if Protocol.begin_turn_into st.plan st.config st.t ~spawn:st.spawn msg
  then begin
    let plan = st.plan in
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Step_planned
          {
            round;
            msg = msg.M.id;
            kind = Step.kind_to_string plan.Step.kind;
            rotate = plan.Step.rotate;
            delta_phi = Step.delta_phi plan;
          });
    resolved_turn st ~round ~traced:true msg plan
  end
  else finish st msg

(* Untraced turn: probe the step's shape first and only evaluate ΔΦ
   when it can matter.  Under contention most turns pause, and a pause
   is decidable from the shape alone: the rotation anchor is the only
   cluster node whose membership depends on ΔΦ, and it sits in {e
   front} of the cluster when present — so if some core node is
   already claimed while the anchor is not, the first colliding node
   (hence the pause/bypass verdict) is the same whether or not the
   step would rotate, and the plan can be discarded unresolved.  This
   is outcome-identical to the traced path; the equivalence suite
   checks it against {!Reference}. *)
(* lint: hot *)

(* The ΔΦ-free conflict pre-check on a probed core shape, shared by
   the shape-cache fast path, the probe path and the wave commit: the
   first claimed core node when the pause/bypass verdict is decidable
   without resolving (anchor unclaimed, or claimed by the same kind of
   winner), else nil. *)
let shape_hit st ~round ~c0 ~c1 ~c2 ~anchor =
  let hit =
    if st.claims.(c0) asr 1 = round then c0
    else if st.claims.(c1) asr 1 = round then c1
    else if c2 <> T.nil && st.claims.(c2) asr 1 = round then c2
    else T.nil
  in
  if
    hit <> T.nil
    && (anchor = T.nil
       || st.claims.(anchor) asr 1 <> round
       || st.claims.(anchor) land 1 = st.claims.(hit) land 1)
  then hit
  else T.nil

let untraced_probe_turn st ~round (msg : M.t) =
  if Protocol.begin_turn_probe st.plan st.t ~spawn:st.spawn msg then begin
    let p = st.plan in
    (* Refresh the message's shape cache: while the core nodes'
       structure versions hold and the message does not act, the next
       turn can skip the probe entirely. *)
    let c0 = p.Step.cluster0
    and c1 = p.Step.cluster1
    and c2 = p.Step.cluster2 in
    msg.M.shape_c0 <- c0;
    msg.M.shape_c1 <- c1;
    msg.M.shape_c2 <- c2;
    msg.M.shape_anchor <- p.Step.anchor;
    msg.M.shape_v0 <- T.version st.t c0;
    msg.M.shape_v1 <- T.version st.t c1;
    if c2 <> T.nil then msg.M.shape_v2 <- T.version st.t c2;
    let hit = shape_hit st ~round ~c0 ~c1 ~c2 ~anchor:p.Step.anchor in
    if hit <> T.nil then begin
      (* The anchor joins the cluster (in front) only if the step
         rotates; with the anchor unclaimed — or claimed by the same
         kind of winner as the first core hit — the verdict is the
         same either way, so ΔΦ is irrelevant. *)
      if st.claims.(hit) land 1 = 1 then
        msg.M.bypasses <- msg.M.bypasses + 1
      else msg.M.pauses <- msg.M.pauses + 1;
      prof_conflict st
    end
    else begin
      Step.resolve_into st.plan st.config st.t;
      resolved_turn st ~round ~traced:false msg st.plan
    end
  end
  else finish st msg

let untraced_turn st ~round (msg : M.t) =
  (* Cached-shape fast path: with the core nodes structurally
     unchanged since the last probe (and the message not having acted
     since — acting clears the cache), a re-probe would reproduce the
     cached shape verbatim and perform no protocol side effects, so
     the conflict pre-check can run straight off the cache. *)
  let c0 = msg.M.shape_c0 in
  if
    c0 <> M.shape_none
    && T.version st.t c0 = msg.M.shape_v0
    && T.version st.t msg.M.shape_c1 = msg.M.shape_v1
    && (msg.M.shape_c2 = T.nil || T.version st.t msg.M.shape_c2 = msg.M.shape_v2)
  then begin
    prof_shape_hit st;
    let hit =
      shape_hit st ~round ~c0 ~c1:msg.M.shape_c1 ~c2:msg.M.shape_c2
        ~anchor:msg.M.shape_anchor
    in
    if hit <> T.nil then begin
      if st.claims.(hit) land 1 = 1 then
        msg.M.bypasses <- msg.M.bypasses + 1
      else msg.M.pauses <- msg.M.pauses + 1;
      prof_conflict st
    end
    else begin
      (* Cluster free (or only the anchor contended): the turn may
         act, so take the full probe + resolve path. *)
        Protocol.begin_turn_probe st.plan st.t ~spawn:st.spawn msg |> ignore;
      Step.resolve_into st.plan st.config st.t;
      resolved_turn st ~round ~traced:false msg st.plan
    end
  end
  else untraced_probe_turn st ~round msg

(* lint: hot-end *)

(* ------------------------------------------------------------------
   Fault-injected path (Faultkit).  Every turn of a run with a fault
   plan goes through {!faulty_turn} — traced or not — so the fault
   draws never depend on whether telemetry is on and a traced chaos
   run computes the exact same statistics as an untraced one.  The
   plan is always fully resolved (no probe shortcut, no shape cache):
   chaos runs pay for clarity, the fault-free hot path above stays
   untouched. *)

(* The run-time gate audits the structural suite only: weight sums are
   a flow property, exact only once every weight-update message has
   deposited, so a mid-run (or end-of-run) tree legitimately fails
   Check.weights while being perfectly well-formed. *)
let check_now st =
  (* Only ever called mid-commit (abort-repair path), so the phase
     switch returns to Commit. *)
  prof st Prof.Invariant_check;
  (match Bstnet.Check.structural st.t with
  | Ok () -> ()
  | Error e -> failwith ("Concurrent: invariant violated after repair: " ^ e));
  prof st Prof.Commit

(* True when some node of the plan's cluster is crashed: the step
   cannot execute and the message parks, charging makespan only —
   a crash is not a cluster conflict, so no pause/bypass is counted. *)
let cluster_down inj (p : Step.t) =
  let down v = v <> T.nil && Faultkit.Injector.is_down inj v in
  down p.Step.cluster0 || down p.Step.cluster1 || down p.Step.cluster2
  || down p.Step.cluster3

(* A message dropped in transit re-arms at its source with its birth
   (priority and makespan anchor, Sec. VII-A) and its [update_spawned]
   flag preserved: the retransmission is part of serving the original
   request, and the single weight update per request stays single. *)
let rearm (msg : M.t) =
  msg.M.current <- msg.M.src;
  msg.M.phase <- M.Climbing;
  msg.M.up_credit <- T.nil;
  msg.M.shape_c0 <- M.shape_none

(* A duplicated data message: fresh identity, same endpoints and birth,
   forked at the original's current position.  It must never spawn a
   second weight update.  Staged, so it joins the queue next round. *)
let spawn_duplicate st (msg : M.t) =
  let twin =
    Arena.alloc_data st.arena ~src:msg.M.src ~dst:msg.M.dst ~birth:msg.M.birth
  in
  twin.M.current <- msg.M.current;
  twin.M.phase <- msg.M.phase;
  twin.M.update_spawned <- true;
  st.live <- st.live + 1;
  st.live_data <- st.live_data + 1;
  Simkit.Pqueue.stage st.queue twin;
  twin

(* Tear the first elementary rotation of the plan mid-flight — pair
   link surgery only, leaving the node above with a stale child
   pointer and the pair's labels and weight sums unrecomputed — then
   run the local repair protocol and (in check mode) verify the full
   invariant suite.  The cluster is claimed first: the torn nodes were
   about to mutate and no other step may see the intermediate state
   this round. *)
let abort_rotation st inj ~round (msg : M.t) (plan : Step.t) =
  claim st ~round plan;
  let x = Step.first_rotation_node st.t plan in
  if Obskit.Sink.enabled st.sink then begin
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Fault_injected
          { round; kind = Obskit.Event.Abort; node = x; msg = msg.M.id });
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Repair_begin { round; node = x })
  end;
  let damage = Faultkit.Repair.tear st.t x in
  Faultkit.Repair.heal st.t damage;
  Faultkit.Injector.note_repair inj;
  if Obskit.Sink.enabled st.sink then
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Repair_done { round; node = x });
  if st.check then check_now st;
  msg.M.shape_c0 <- M.shape_none

(* The tail of a fault-injected turn, once its plan is resolved (the
   buffer may be the shared sequential one or a wave slot's): the
   Step_planned event, crash parking, conflicts, and the commit draws.
   Factored out so the parallel commit can enter here with a validated
   speculated plan. *)
let faulty_resolved st inj ~round (msg : M.t) (plan : Step.t) =
  let traced = Obskit.Sink.enabled st.sink in
  if traced then
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Step_planned
          {
            round;
            msg = msg.M.id;
            kind = Step.kind_to_string plan.Step.kind;
            rotate = plan.Step.rotate;
            delta_phi = Step.delta_phi plan;
          });
  if Faultkit.Injector.any_down inj && cluster_down inj plan then
    Faultkit.Injector.note_park inj
  else begin
    let conflict = cluster_conflict st ~round plan in
    if conflict <> conflict_free then
      record_conflict st ~round ~traced msg ~was_rotation:(conflict = 1)
    else if plan.Step.rotate && Faultkit.Injector.draw_abort inj then
      abort_rotation st inj ~round msg plan
    else begin
        (* Commit draws, in fixed order: loss, duplication, delay.
           Each zero-rate family consumes no randomness (see
           Faultkit.Injector), so replays stay aligned. *)
        let crossings =
          (if plan.Step.passed0 <> T.nil then 1 else 0)
          + if plan.Step.passed1 <> T.nil then 1 else 0
        in
        if crossings > 0 && Faultkit.Injector.draw_loss inj ~crossings
        then begin
          Faultkit.Injector.note_lost inj;
          if traced then
            Obskit.Sink.record st.sink (fun () ->
                Obskit.Event.Msg_lost
                  { round; msg = msg.M.id; node = msg.M.current });
          rearm msg
        end
        else if
          crossings > 0 && M.is_data msg
          && Faultkit.Injector.draw_duplicate inj
        then begin
          let twin = spawn_duplicate st msg in
          Faultkit.Injector.note_duplicated inj;
          if traced then
            Obskit.Sink.record st.sink (fun () ->
                Obskit.Event.Fault_injected
                  {
                    round;
                    kind = Obskit.Event.Duplicate;
                    node = msg.M.current;
                    msg = twin.M.id;
                  });
          commit_plan st ~round ~traced msg plan
        end
        else begin
          let k = Faultkit.Injector.draw_delay inj in
          if k > 0 then begin
            msg.M.asleep_until <- round + k;
            Faultkit.Injector.note_delayed inj;
            if traced then
              Obskit.Sink.record st.sink (fun () ->
                  Obskit.Event.Fault_injected
                    {
                      round;
                      kind = Obskit.Event.Delay;
                      node = msg.M.current;
                      msg = msg.M.id;
                    })
          end
          else commit_plan st ~round ~traced msg plan
        end
      end
  end

let faulty_turn st inj ~round (msg : M.t) =
  if msg.M.asleep_until > round then () (* delayed in transit: skip *)
  else if Faultkit.Injector.is_down inj msg.M.current then
    (* Parked at a crashed node — checked before planning, so a dead
       node performs no protocol side effects (LCA update spawns). *)
    Faultkit.Injector.note_park inj
  else if Protocol.begin_turn_into st.plan st.config st.t ~spawn:st.spawn msg
  then faulty_resolved st inj ~round msg st.plan
  else finish st msg

(* Per-round Phase_time emission to the profiling sink — deliberately
   outside the hot region: it runs only when a profile and an enabled
   prof sink are both present, and the event closures are the point. *)
let emit_phase_times st p ~round =
  List.iter
    (fun phase ->
      let elapsed_us = Prof.phase_round_us p phase in
      if elapsed_us > 0. then
        Obskit.Sink.record st.prof_sink (fun () ->
            Obskit.Event.Phase_time
              { round; phase = Prof.phase_name phase; elapsed_us }))
    Prof.phases

(* ------------------------------------------------------------------
   The speculative plan wave (domains > 1).  Everything in this
   section up to the commit walk runs concurrently on team members and
   is strictly read-only on the tree, the messages and all shared
   state: each member writes only the slots of its own slice. *)

(* lint: hot *)
(* effect: wave -- writes this member's own slot only *)
let slot_add (slot : slot) t n v =
  if v <> T.nil then begin
    slot.reads.(n) <- v;
    slot.stamps.(n) <- T.stamp t v;
    n + 1
  end
  else n

(* The exact read set of a speculated plan: the probed cluster core
   plus the ΔΦ weight reads of its kind (the transferred child of the
   promoted node, or both children of a double-promoted one).  Anchor
   and parent links need no entries of their own: a parent pointer is
   the child's own field, and every mutation that re-routes one —
   including replacing a node as its parent's child — also bumps the
   stamp of the node it dethrones. *)
(* effect: wave -- writes this member's own slot only *)
let fill_reads st (slot : slot) =
  let t = st.t in
  let p = slot.splan in
  let n = slot_add slot t 0 p.Step.cluster0 in
  let n = slot_add slot t n p.Step.cluster1 in
  let n = slot_add slot t n p.Step.cluster2 in
  let n =
    match p.Step.kind with
    | Step.Bu_zig ->
        slot_add slot t n (Potential.transferred_child t p.Step.cluster0)
    | Step.Bu_semi_zig_zig | Step.Td_zig | Step.Td_semi_zig_zig ->
        slot_add slot t n (Potential.transferred_child t p.Step.cluster1)
    | Step.Bu_semi_zig_zag ->
        let n = slot_add slot t n (T.left t p.Step.cluster0) in
        slot_add slot t n (T.right t p.Step.cluster0)
    | Step.Td_semi_zig_zag ->
        let n = slot_add slot t n (T.left t p.Step.cluster2) in
        slot_add slot t n (T.right t p.Step.cluster2)
  in
  slot.nreads <- n

(* Speculate one message's turn into its slot.  Returns true iff the
   slot holds a fully resolved plan ([tag_plan]). *)
(* effect: wave -- writes this member's own slot and plan buffer only *)
let wave_speculate st (slot : slot) (msg : M.t) =
  if
    st.wave_cache
    && (let c0 = msg.M.shape_c0 in
        c0 <> M.shape_none
        && T.version st.t c0 = msg.M.shape_v0
        && T.version st.t msg.M.shape_c1 = msg.M.shape_v1
        && (msg.M.shape_c2 = T.nil
           || T.version st.t msg.M.shape_c2 = msg.M.shape_v2))
  then begin
    (* Valid shape cache (untraced, fault-free): the sequential fast
       path decides this turn in a handful of loads at commit time;
       speculating it would cost more than it saves.  Structure
       versions only grow, so a cache invalid now stays invalid. *)
    slot.tag <- tag_seq;
    false
  end
  else begin
    let flags = Protocol.speculate_turn_probe slot.splan st.t msg in
    if flags land Protocol.spec_flip <> 0 then begin
      (* Crossing the LCA deposits weight before probing: replan
         sequentially at commit. *)
      slot.tag <- tag_seq;
      false
    end
    else if flags land Protocol.spec_planned = 0 then begin
      (* Plain delivery.  Its only tree dependency is the current
         node (is-the-update-at-the-root), so validate just that. *)
      slot.tag <- tag_deliver;
      slot.flags <- flags;
      slot.reads.(0) <- msg.M.current;
      slot.stamps.(0) <- T.stamp st.t msg.M.current;
      slot.nreads <- 1;
      false
    end
    else begin
      let p = slot.splan in
      (* Save the probe-time cluster layout before resolve folds the
         anchor in: the untraced commit refreshes the message's shape
         cache from the probe layout, exactly as the sequential path
         does. *)
      slot.c0 <- p.Step.cluster0;
      slot.c1 <- p.Step.cluster1;
      slot.c2 <- p.Step.cluster2;
      slot.canchor <- p.Step.anchor;
      fill_reads st slot;
      Step.resolve_ro_into p st.config st.t;
      slot.tag <- tag_plan;
      slot.flags <- flags;
      true
    end
  end

(* One team member's share of the wave: a contiguous slice of the
   committed queue.  This is the concurrent entry point: everything it
   reaches is checked by the wave-race lint rule against the wave-local
   write allowlist (docs/LINTING.md, "Effect analysis"). *)
(* effect: wave -- concurrent wave root; slice-disjoint slot writes *)
let wave_member st m =
  let lo = m * st.wave_chunk in
  let hi = min st.wave_count (lo + st.wave_chunk) in
  (* lint: allow no-alloc -- one tally ref per member per round *)
  let planned = ref 0 in
  for k = lo to hi - 1 do
    let msg = Simkit.Pqueue.get st.queue k in
    if msg.M.delivered then st.slots.(k).tag <- tag_seq
    else if wave_speculate st st.slots.(k) msg then incr planned
  done;
  st.wave_planned.(m) <- !planned

let slot_valid st (slot : slot) =
  let ok = ref true in
  for i = 0 to slot.nreads - 1 do
    if T.stamp st.t slot.reads.(i) <> slot.stamps.(i) then ok := false
  done;
  !ok

(* The plain sequential turn, also the per-slot fallback of the
   parallel commit. *)
let seq_turn st ~round ~traced (msg : M.t) =
  match st.faults with
  | Some inj -> faulty_turn st inj ~round msg
  | None ->
      if traced then traced_turn st ~round msg else untraced_turn st ~round msg

(* Commit one message's turn from its wave slot, on the caller, in
   sequential order.  A stale or unspeculated slot falls back to the
   plain sequential turn; a valid one commits the speculated plan the
   sequential executor would have recomputed verbatim. *)
let commit_slot st ~round ~traced (slot : slot) (msg : M.t) =
  if slot.tag = tag_seq then begin
    (match st.profile with None -> () | Some p -> Prof.seq_slot p);
    seq_turn st ~round ~traced msg
  end
  else if not (slot_valid st slot) then begin
    (match st.profile with
    | None -> ()
    | Some p ->
        Prof.stamp_miss p;
        Prof.fallback p);
    seq_turn st ~round ~traced msg
  end
  else begin
    (match st.profile with
    | None -> ()
    | Some p ->
        Prof.stamp_hit p;
        if slot.tag = tag_deliver then Prof.deliver_slot p else Prof.replay p);
    (* The wave never flips phases; apply the climb resumption the
       sequential probe would have performed before using the plan. *)
    if slot.flags land Protocol.spec_climb <> 0 then
      msg.M.phase <- M.Climbing;
    match st.faults with
    | Some inj ->
        (* Mirror faulty_turn's gate order: sleep and crash checks
           precede any protocol action. *)
        if msg.M.asleep_until > round then ()
        else if Faultkit.Injector.is_down inj msg.M.current then
          Faultkit.Injector.note_park inj
        else if slot.tag = tag_deliver then finish st msg
        else faulty_resolved st inj ~round msg slot.splan
    | None ->
        if slot.tag = tag_deliver then finish st msg
        else if traced then begin
          let plan = slot.splan in
          (* lint: allow no-alloc -- closure built only when tracing is on *)
          Obskit.Sink.record st.sink (fun () ->
              Obskit.Event.Step_planned
                {
                  round;
                  msg = msg.M.id;
                  kind = Step.kind_to_string plan.Step.kind;
                  rotate = plan.Step.rotate;
                  delta_phi = Step.delta_phi plan;
                });
          resolved_turn st ~round ~traced:true msg plan
        end
        else begin
          (* Untraced: refresh the shape cache from the probe layout
             and run the ΔΦ-free pre-check, exactly as
             {!untraced_probe_turn} does. *)
          let c0 = slot.c0 and c1 = slot.c1 and c2 = slot.c2 in
          msg.M.shape_c0 <- c0;
          msg.M.shape_c1 <- c1;
          msg.M.shape_c2 <- c2;
          msg.M.shape_anchor <- slot.canchor;
          msg.M.shape_v0 <- T.version st.t c0;
          msg.M.shape_v1 <- T.version st.t c1;
          if c2 <> T.nil then msg.M.shape_v2 <- T.version st.t c2;
          let hit = shape_hit st ~round ~c0 ~c1 ~c2 ~anchor:slot.canchor in
          if hit <> T.nil then begin
            if st.claims.(hit) land 1 = 1 then
              msg.M.bypasses <- msg.M.bypasses + 1
            else msg.M.pauses <- msg.M.pauses + 1;
            prof_conflict st
          end
          else resolved_turn st ~round ~traced:false msg slot.splan
        end
  end

(* The sequential round visit, also the per-turn fallback above. *)
let seq_visit st ~round ~traced =
  (* lint: allow no-alloc -- one visitor closure per round, not per turn *)
  Simkit.Pqueue.iter_filter st.queue (fun (msg : M.t) ->
      if msg.M.delivered then false
      else begin
        st.cur_birth <- msg.M.birth;
        (match st.faults with
        | Some inj -> faulty_turn st inj ~round msg
        | None ->
            if traced then traced_turn st ~round msg
            else untraced_turn st ~round msg);
        not msg.M.delivered
      end)

let ensure_wave_capacity st count =
  if Array.length st.slots < count then begin
    let cap = max count (2 * Array.length st.slots) in
    (* lint: allow no-alloc -- amortized arena growth, not per-turn *)
    st.slots <- Array.init cap (fun _ -> new_slot ())
  end

(* Per-member wave telemetry, merged in fixed member order after the
   join so the stream is deterministic for a given domain count.  It
   goes to the dedicated team sink: the run sink's streams must stay
   bit-identical across domain counts. *)
let wave_merge st ~round =
  if Obskit.Sink.enabled st.team_sink then
    for m = 0 to Array.length st.wave_planned - 1 do
      let member = m in
      let planned = st.wave_planned.(m) in
      (* lint: allow no-alloc -- closure built only when tracing is on *)
      Obskit.Sink.record st.team_sink (fun () ->
          Obskit.Event.Plan_wave { round; member; planned })
    done

let parallel_visit st team ~round ~traced =
  prof st Prof.Plan_wave;
  let count = Simkit.Pqueue.length st.queue in
  ensure_wave_capacity st count;
  let members = Simkit.Team.members team in
  st.wave_count <- count;
  st.wave_chunk <- (count + members - 1) / members;
  st.wave_cache <-
    (not traced) && (match st.faults with None -> true | Some _ -> false);
  Simkit.Team.run team st.wave_job;
  wave_merge st ~round;
  (match st.profile with
  | None -> ()
  | Some p ->
      (* Per-member load balance of the wave, over the slots it
         actually speculated (tag_plan). *)
      (* lint: allow no-alloc -- two tally refs per wave, profiling on *)
      let slots = ref 0 and busiest = ref 0 in
      for m = 0 to Array.length st.wave_planned - 1 do
        let k = st.wave_planned.(m) in
        slots := !slots + k;
        if k > !busiest then busiest := k
      done;
      Prof.wave p ~members ~busiest:!busiest ~slots:!slots);
  prof st Prof.Commit;
  (* Serial in-order commit: the same mutation order as the
     sequential walk. *)
  for k = 0 to count - 1 do
    let msg = Simkit.Pqueue.get st.queue k in
    if not msg.M.delivered then begin
      st.cur_birth <- msg.M.birth;
      commit_slot st ~round ~traced st.slots.(k) msg
    end
  done;
  prof st Prof.Delivery;
  (* Drop the delivered in place, preserving order — the same final
     queue the sequential iter_filter leaves. *)
  (* lint: allow no-alloc -- one filter closure per round, not per turn *)
  Simkit.Pqueue.iter_filter st.queue (fun (msg : M.t) -> not msg.M.delivered)

let tick st round =
  st.cur_round <- round;
  (match st.profile with None -> () | Some p -> Prof.round_begin p);
  (* Fault-window maintenance and scheduled crashes happen at the
     round boundary, before admission.  Without a plan the match is a
     single branch — the hot path allocates nothing. *)
  (match st.faults with
  | None -> ()
  | Some inj ->
      prof st Prof.Fault_injection;
      Faultkit.Injector.begin_round inj st.t st.sink ~round;
      prof st Prof.Other);
  let traced = Obskit.Sink.enabled st.sink in
  if traced then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Round_begin
          { round; active = st.live; live_data = st.live_data });
  (* Newly admitted data messages join the staged batch alongside the
     updates spawned last round; one stable merge brings both into the
     priority buffer for this round. *)
  prof st Prof.Inject;
  inject st ~round;
  Simkit.Pqueue.commit st.queue;
  (match st.team with
  | Some team when Simkit.Pqueue.length st.queue >= par_threshold ->
      parallel_visit st team ~round ~traced
  | Some _ | None ->
      (* The sequential visit plans, commits and delivers in one fused
         walk: it all lands in the Commit phase (see Profkit.Profile). *)
      prof st Prof.Commit;
      seq_visit st ~round ~traced);
  prof st Prof.Other;
  (* Φ is O(n) to compute, so it is sampled only on traced runs. *)
  if traced then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Phi_sample { round; phi = Potential.phi st.t });
  match st.profile with
  | None -> ()
  | Some p ->
      Prof.round_close p;
      if Obskit.Sink.enabled st.prof_sink then emit_phase_times st p ~round;
      Prof.round_commit p
(* lint: hot-end *)

let shutdown st =
  match st.team with
  | None -> ()
  | Some team ->
      st.team <- None;
      Simkit.Team.shutdown team

let make ?(config = Config.default) ?window ?(sink = Obskit.Sink.null)
    ?profile ?(prof_sink = Obskit.Sink.null) ?(team_sink = Obskit.Sink.null)
    ?faults ?(check_invariants = false) ?(domains = 1) t trace =
  if domains < 1 then invalid_arg "Concurrent.run: domains must be >= 1";
  let window = default_window t window in
  let injector =
    match faults with
    | None -> None
    | Some plan -> Some (Faultkit.Injector.create plan ~n:(T.n t))
  in
  let st =
    create config ~window ~sink ~profile ~prof_sink ~team_sink ~faults:injector
      ~check:check_invariants t trace
  in
  if domains > 1 then begin
    st.team <- Some (Simkit.Team.create ~members:domains ());
    st.wave_planned <- Array.make domains 0;
    st.wave_job <- (fun m -> wave_member st m)
  end;
  let sched =
    {
      Simkit.Engine.label = "cbn";
      tick = (fun round -> tick st round);
      is_done =
        (fun () -> st.next_inject >= Array.length st.trace && st.live = 0);
    }
  in
  let finalize rounds =
    shutdown st;
    let chaos =
      match st.faults with
      | None -> Run_stats.no_chaos
      | Some inj ->
          let s = Faultkit.Injector.snapshot inj in
          {
            Run_stats.crashes = s.Faultkit.Injector.crashes;
            parks = s.Faultkit.Injector.parks;
            lost = s.Faultkit.Injector.lost;
            duplicated = s.Faultkit.Injector.duplicated;
            delayed = s.Faultkit.Injector.delayed;
            aborted_rotations = s.Faultkit.Injector.aborted_rotations;
            repairs = s.Faultkit.Injector.repairs;
          }
    in
    if check_invariants then Bstnet.Check.assert_ok (Bstnet.Check.structural st.t);
    Run_stats.of_iter ~chaos ~config ~rounds (fun f -> Arena.iter st.arena f)
  in
  (st, sched, finalize)

let scheduler ?config ?window ?sink ?profile ?prof_sink ?team_sink ?faults
    ?check_invariants ?domains t trace =
  let _, sched, finalize =
    make ?config ?window ?sink ?profile ?prof_sink ?team_sink ?faults
      ?check_invariants ?domains t trace
  in
  (sched, finalize)

let run ?config ?window ?max_rounds ?sink ?profile ?prof_sink ?team_sink
    ?faults ?check_invariants ?domains t trace =
  let st, sched, finalize =
    make ?config ?window ?sink ?profile ?prof_sink ?team_sink ?faults
      ?check_invariants ?domains t trace
  in
  let rounds =
    Fun.protect
      ~finally:(fun () -> shutdown st)
      (fun () -> Simkit.Engine.run_exn ?max_rounds sched)
  in
  finalize rounds

let run_with_latencies ?config ?window ?max_rounds ?sink ?profile ?prof_sink
    ?team_sink ?faults ?check_invariants ?domains t trace =
  let st, sched, finalize =
    make ?config ?window ?sink ?profile ?prof_sink ?team_sink ?faults
      ?check_invariants ?domains t trace
  in
  let rounds =
    Fun.protect
      ~finally:(fun () -> shutdown st)
      (fun () -> Simkit.Engine.run_exn ?max_rounds sched)
  in
  let stats = finalize rounds in
  let count = ref 0 in
  Arena.iter st.arena (fun m ->
      if M.is_data m && m.M.delivered then incr count);
  let latencies = Array.make !count 0.0 in
  let i = ref 0 in
  Arena.iter st.arena (fun m ->
      if M.is_data m && m.M.delivered then begin
        latencies.(!i) <- float_of_int (m.M.end_time - m.M.birth);
        incr i
      end);
  (stats, latencies)

(* The original list-based executor, kept verbatim as an executable
   specification: the equivalence test suite checks the arena/pqueue
   executor against it event for event, and [bench perf] times the two
   side by side.  Deliberately not refactored to share the round loop
   above — its value is being the independent implementation. *)
module Reference = struct
  type rstate = {
    config : Config.t;
    t : T.t;
    trace : (int * int * int) array;
    window : int;
    sink : Obskit.Sink.t;
    mutable next_inject : int;
    mutable next_id : int;
    mutable active : M.t list;  (* undelivered, kept priority-sorted *)
    mutable finished : M.t list;
    mutable spawned : M.t list;  (* updates born this round, join next round *)
    claimed_round : int array;
    claimed_rot : bool array;
    mutable live : int;
    mutable live_data : int;
  }

  let create config ~window ~sink t trace =
    validate t trace;
    if window < 1 then invalid_arg "Concurrent.run: window must be >= 1";
    {
      config;
      t;
      trace;
      window;
      sink;
      next_inject = 0;
      next_id = 0;
      active = [];
      finished = [];
      spawned = [];
      claimed_round = Array.make (T.n t) (-1);
      claimed_rot = Array.make (T.n t) false;
      live = 0;
      live_data = 0;
    }

  let fresh_id st =
    let id = st.next_id in
    st.next_id <- st.next_id + 1;
    id

  let finish st (msg : M.t) ~round =
    msg.M.delivered <- true;
    msg.M.end_time <- round;
    st.finished <- msg :: st.finished;
    st.live <- st.live - 1;
    if M.is_data msg then st.live_data <- st.live_data - 1;
    if Obskit.Sink.enabled st.sink then
      Obskit.Sink.record st.sink (fun () ->
          Obskit.Event.Msg_delivered
            {
              round;
              msg = msg.M.id;
              data = M.is_data msg;
              birth = msg.M.birth;
              hops = msg.M.hops;
              rotations = msg.M.rotations;
            })

  let spawner st ~round ~birth ~origin ~first_increment =
    T.add_weight st.t origin first_increment;
    let u = M.weight_update ~id:(fresh_id st) ~origin ~birth in
    st.live <- st.live + 1;
    if T.is_root st.t origin then finish st u ~round
    else st.spawned <- u :: st.spawned

  let inject st ~round =
    let injected = ref [] in
    let continue_ = ref true in
    while
      !continue_
      && st.next_inject < Array.length st.trace
      && st.live_data < st.window
    do
      let birth, src, dst = st.trace.(st.next_inject) in
      if birth > round then continue_ := false
      else begin
        st.next_inject <- st.next_inject + 1;
        let msg = M.data ~id:(fresh_id st) ~src ~dst ~birth in
        st.live <- st.live + 1;
        st.live_data <- st.live_data + 1;
        Protocol.born st.t ~spawn:(spawner st ~round ~birth) msg;
        if msg.M.delivered then finish st msg ~round
        else injected := msg :: !injected
      end
    done;
    List.rev !injected

  let cluster_conflict st ~round plan =
    let rec go = function
      | [] -> None
      | v :: rest ->
          if st.claimed_round.(v) = round then Some st.claimed_rot.(v)
          else go rest
    in
    go (Step.cluster plan)

  let claim st ~round plan =
    List.iter
      (fun v ->
        st.claimed_round.(v) <- round;
        st.claimed_rot.(v) <- plan.Step.rotate)
      (Step.cluster plan)

  let tick st round =
    let traced = Obskit.Sink.enabled st.sink in
    if traced then
      Obskit.Sink.record st.sink (fun () ->
          Obskit.Event.Round_begin
            { round; active = st.live; live_data = st.live_data });
    let injected = inject st ~round in
    let newcomers = List.sort M.priority_compare (st.spawned @ injected) in
    st.spawned <- [];
    let by_priority = List.merge M.priority_compare st.active newcomers in
    let still_active = ref [] in
    List.iter
      (fun (msg : M.t) ->
        if not msg.M.delivered then begin
          let spawn = spawner st ~round ~birth:msg.M.birth in
          (match Protocol.begin_turn st.config st.t ~spawn msg with
          | Protocol.Delivered -> finish st msg ~round
          | Protocol.Plan plan -> (
              if traced then
                Obskit.Sink.record st.sink (fun () ->
                    Obskit.Event.Step_planned
                      {
                        round;
                        msg = msg.M.id;
                        kind = Step.kind_to_string plan.Step.kind;
                        rotate = plan.Step.rotate;
                        delta_phi = Step.delta_phi plan;
                      });
              match cluster_conflict st ~round plan with
              | Some was_rotation ->
                  if was_rotation then msg.M.bypasses <- msg.M.bypasses + 1
                  else msg.M.pauses <- msg.M.pauses + 1;
                  if traced then
                    Obskit.Sink.record st.sink (fun () ->
                        Obskit.Event.Conflict
                          {
                            round;
                            msg = msg.M.id;
                            kind =
                              (if was_rotation then Obskit.Event.Bypass
                               else Obskit.Event.Pause);
                          })
              | None ->
                  claim st ~round plan;
                  if traced then
                    Obskit.Sink.record st.sink (fun () ->
                        Obskit.Event.Cluster_claimed
                          {
                            round;
                            msg = msg.M.id;
                            cluster = Step.cluster plan;
                            rotate = plan.Step.rotate;
                          });
                  Protocol.apply_step st.t ~spawn msg plan;
                  if traced && plan.Step.rotate then
                    Obskit.Sink.record st.sink (fun () ->
                        Obskit.Event.Rotation
                          {
                            round;
                            msg = msg.M.id;
                            node = plan.Step.current;
                            count = plan.Step.rotations;
                            delta_phi = Step.delta_phi plan;
                          });
                  if msg.M.delivered then finish st msg ~round));
          if not msg.M.delivered then still_active := msg :: !still_active
        end)
      by_priority;
    st.active <- List.rev !still_active;
    if traced then
      Obskit.Sink.record st.sink (fun () ->
          Obskit.Event.Phi_sample { round; phi = Potential.phi st.t })

  let make ?(config = Config.default) ?window ?(sink = Obskit.Sink.null) t
      trace =
    let window = default_window t window in
    let st = create config ~window ~sink t trace in
    let sched =
      {
        Simkit.Engine.label = "cbn-ref";
        tick = (fun round -> tick st round);
        is_done =
          (fun () -> st.next_inject >= Array.length st.trace && st.live = 0);
      }
    in
    let finalize rounds =
      Run_stats.of_messages ~config ~rounds (st.finished @ st.active)
    in
    (st, sched, finalize)

  let scheduler ?config ?window ?sink t trace =
    let _, sched, finalize = make ?config ?window ?sink t trace in
    (sched, finalize)

  let run ?config ?window ?max_rounds ?sink t trace =
    let sched, finalize = scheduler ?config ?window ?sink t trace in
    let rounds = Simkit.Engine.run_exn ?max_rounds sched in
    finalize rounds

  let run_with_latencies ?config ?window ?max_rounds ?sink t trace =
    let st, sched, finalize = make ?config ?window ?sink t trace in
    let rounds = Simkit.Engine.run_exn ?max_rounds sched in
    let stats = finalize rounds in
    let latencies =
      List.filter_map
        (fun (msg : M.t) ->
          match msg.M.kind with
          | M.Data when msg.M.delivered ->
              Some (float_of_int (msg.M.end_time - msg.M.birth))
          | _ -> None)
        (st.finished @ st.active)
      |> Array.of_list
    in
    (stats, latencies)
end
