module T = Bstnet.Topology
module M = Message

type state = {
  config : Config.t;
  t : T.t;
  trace : (int * int * int) array;
  window : int;  (* admission control: max data messages in flight *)
  sink : Obskit.Sink.t;  (* telemetry; Sink.null compiles to no-ops *)
  mutable next_inject : int;  (* index into trace *)
  mutable next_id : int;
  mutable active : M.t list;  (* undelivered, kept priority-sorted *)
  mutable finished : M.t list;
  mutable spawned : M.t list;  (* updates born this round, join next round *)
  (* Per-round cluster claims: claimed_round.(v) = r when v is locked in
     round r; claimed_rot.(v) tells whether the claiming step rotates. *)
  claimed_round : int array;
  claimed_rot : bool array;
  mutable live : int;  (* undelivered messages, data + update *)
  mutable live_data : int;  (* undelivered data messages in flight *)
}

let validate t trace =
  let n = T.n t in
  let last_birth = ref min_int in
  Array.iter
    (fun (birth, src, dst) ->
      if birth < !last_birth then invalid_arg "Concurrent.run: trace not sorted";
      last_birth := birth;
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Concurrent.run: endpoint out of range")
    trace

let create config ~window ~sink t trace =
  validate t trace;
  if window < 1 then invalid_arg "Concurrent.run: window must be >= 1";
  {
    config;
    t;
    trace;
    window;
    sink;
    next_inject = 0;
    next_id = 0;
    active = [];
    finished = [];
    spawned = [];
    claimed_round = Array.make (T.n t) (-1);
    claimed_rot = Array.make (T.n t) false;
    live = 0;
    live_data = 0;
  }

let fresh_id st =
  let id = st.next_id in
  st.next_id <- st.next_id + 1;
  id

let finish st (msg : M.t) ~round =
  msg.M.delivered <- true;
  msg.M.end_time <- round;
  st.finished <- msg :: st.finished;
  st.live <- st.live - 1;
  if msg.M.kind = M.Data then st.live_data <- st.live_data - 1;
  if Obskit.Sink.enabled st.sink then
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Msg_delivered
          {
            round;
            msg = msg.M.id;
            data = msg.M.kind = M.Data;
            birth = msg.M.birth;
            hops = msg.M.hops;
            rotations = msg.M.rotations;
          })

(* The spawn callback shared by all protocol entry points: the update
   message becomes active in the next round.  It inherits its parent's
   birth time (priority): the update is part of serving that request,
   and a freshly-stamped update would be starved forever behind the
   steady stream of older data messages. *)
let spawner st ~round ~birth ~origin ~first_increment =
  T.add_weight st.t origin first_increment;
  let u = M.weight_update ~id:(fresh_id st) ~origin ~birth in
  st.live <- st.live + 1;
  if T.is_root st.t origin then finish st u ~round
  else st.spawned <- u :: st.spawned

let inject st ~round =
  let injected = ref [] in
  let continue_ = ref true in
  while
    !continue_
    && st.next_inject < Array.length st.trace
    && st.live_data < st.window
  do
    let birth, src, dst = st.trace.(st.next_inject) in
    if birth > round then continue_ := false
    else begin
      st.next_inject <- st.next_inject + 1;
      let msg = M.data ~id:(fresh_id st) ~src ~dst ~birth in
      st.live <- st.live + 1;
      st.live_data <- st.live_data + 1;
      Protocol.born st.t ~spawn:(spawner st ~round ~birth) msg;
      if msg.M.delivered then finish st msg ~round
      else injected := msg :: !injected
    end
  done;
  List.rev !injected

let cluster_conflict st ~round plan =
  (* Returns [None] when free, [Some was_rotation] describing the
     already-claimed step we collide with. *)
  let rec go = function
    | [] -> None
    | v :: rest ->
        if st.claimed_round.(v) = round then Some st.claimed_rot.(v) else go rest
  in
  go plan.Step.cluster

let claim st ~round plan =
  List.iter
    (fun v ->
      st.claimed_round.(v) <- round;
      st.claimed_rot.(v) <- plan.Step.rotate)
    plan.Step.cluster

let tick st round =
  let traced = Obskit.Sink.enabled st.sink in
  if traced then
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Round_begin
          { round; active = st.live; live_data = st.live_data });
  (* Newly admitted data messages and updates spawned last round enter
     the priority list; both batches are small, so sorting them and
     merging into the already-sorted list keeps the round linear. *)
  let injected = inject st ~round in
  let newcomers = List.sort M.priority_compare (st.spawned @ injected) in
  st.spawned <- [];
  let by_priority = List.merge M.priority_compare st.active newcomers in
  let still_active = ref [] in
  List.iter
    (fun (msg : M.t) ->
      if not msg.M.delivered then begin
        let spawn = spawner st ~round ~birth:msg.M.birth in
        (match Protocol.begin_turn st.config st.t ~spawn msg with
        | Protocol.Delivered -> finish st msg ~round
        | Protocol.Plan plan -> (
            if traced then
              Obskit.Sink.record st.sink (fun () ->
                  Obskit.Event.Step_planned
                    {
                      round;
                      msg = msg.M.id;
                      kind = Step.kind_to_string plan.Step.kind;
                      rotate = plan.Step.rotate;
                      delta_phi = plan.Step.delta_phi;
                    });
            match cluster_conflict st ~round plan with
            | Some was_rotation ->
                if was_rotation then msg.M.bypasses <- msg.M.bypasses + 1
                else msg.M.pauses <- msg.M.pauses + 1;
                if traced then
                  Obskit.Sink.record st.sink (fun () ->
                      Obskit.Event.Conflict
                        {
                          round;
                          msg = msg.M.id;
                          kind =
                            (if was_rotation then Obskit.Event.Bypass
                             else Obskit.Event.Pause);
                        })
            | None ->
                claim st ~round plan;
                if traced then
                  Obskit.Sink.record st.sink (fun () ->
                      Obskit.Event.Cluster_claimed
                        {
                          round;
                          msg = msg.M.id;
                          cluster = plan.Step.cluster;
                          rotate = plan.Step.rotate;
                        });
                Protocol.apply_step st.t ~spawn msg plan;
                if traced && plan.Step.rotate then
                  Obskit.Sink.record st.sink (fun () ->
                      Obskit.Event.Rotation
                        {
                          round;
                          msg = msg.M.id;
                          node = plan.Step.current;
                          count = plan.Step.rotations;
                          delta_phi = plan.Step.delta_phi;
                        });
                if msg.M.delivered then finish st msg ~round));
        if not msg.M.delivered then still_active := msg :: !still_active
      end)
    by_priority;
  st.active <- List.rev !still_active;
  (* Φ is O(n) to compute, so it is sampled only on traced runs. *)
  if traced then
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Phi_sample { round; phi = Potential.phi st.t })

let scheduler ?(config = Config.default) ?window ?(sink = Obskit.Sink.null) t
    trace =
  let window = match window with Some w -> w | None -> max 64 (T.n t) in
  let st = create config ~window ~sink t trace in
  let sched =
    {
      Simkit.Engine.label = "cbn";
      tick = (fun round -> tick st round);
      is_done =
        (fun () -> st.next_inject >= Array.length st.trace && st.live = 0);
    }
  in
  let finalize rounds =
    Run_stats.of_messages ~config ~rounds (st.finished @ st.active)
  in
  (sched, finalize)

let run ?(config = Config.default) ?window ?max_rounds ?sink t trace =
  let sched, finalize = scheduler ~config ?window ?sink t trace in
  let rounds = Simkit.Engine.run_exn ?max_rounds sched in
  finalize rounds

let run_with_latencies ?(config = Config.default) ?window ?max_rounds
    ?(sink = Obskit.Sink.null) t trace =
  let window = match window with Some w -> w | None -> max 64 (T.n t) in
  let st = create config ~window ~sink t trace in
  let sched =
    {
      Simkit.Engine.label = "cbn";
      tick = (fun round -> tick st round);
      is_done = (fun () -> st.next_inject >= Array.length st.trace && st.live = 0);
    }
  in
  let rounds = Simkit.Engine.run_exn ?max_rounds sched in
  let latencies =
    List.filter_map
      (fun (msg : M.t) ->
        match msg.M.kind with
        | M.Data -> Some (float_of_int (msg.M.end_time - msg.M.birth))
        | M.Weight_update -> None)
      st.finished
    |> Array.of_list
  in
  (Run_stats.of_messages ~config ~rounds st.finished, latencies)
