module T = Bstnet.Topology
module M = Message

(* Node ids, rounds and version stamps are ints; kind tests go through
   M.is_* (see the no-poly-compare lint rule). *)
let ( = ) : int -> int -> bool = Int.equal
let ( <> ) a b = not (Int.equal a b)

let validate t trace =
  let n = T.n t in
  let last_birth = ref min_int in
  Array.iter
    (fun (birth, src, dst) ->
      if birth < !last_birth then invalid_arg "Concurrent.run: trace not sorted";
      last_birth := birth;
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Concurrent.run: endpoint out of range")
    trace

let default_window t = function Some w -> w | None -> max 64 (T.n t)

(* Steady-state allocation-free executor: all messages live in a
   preallocated arena (slot index = message id, handed out in the same
   order the list-based executor minted ids), the undelivered set is
   an array-backed priority buffer, and every turn fills one reusable
   plan buffer.  The rhythm of a round is unchanged — newcomers
   admitted, the whole set visited in (birth, id) order, finished
   messages dropped — so statistics, telemetry and the final tree are
   bit-identical to {!Reference}. *)
type state = {
  config : Config.t;
  t : T.t;
  trace : (int * int * int) array;
  window : int;  (* admission control: max data messages in flight *)
  sink : Obskit.Sink.t;  (* telemetry; Sink.null compiles to no-ops *)
  faults : Faultkit.Injector.t option;
      (* fault injection (Faultkit); [None] keeps the executor on the
         plain hot path, bit-identical to pre-faultkit behaviour *)
  check : bool;  (* verify Bstnet.Check.structural after every repair *)
  arena : Arena.t;  (* all messages ever created, by id *)
  queue : M.t Simkit.Pqueue.t;  (* undelivered, in priority order *)
  plan : Step.t;  (* the reusable plan buffer *)
  mutable next_inject : int;  (* index into trace *)
  (* The spawn callback is allocated once; it reads the round and the
     parent's birth from these fields instead of capturing them. *)
  mutable spawn : Protocol.spawn;
  mutable cur_round : int;
  mutable cur_birth : int;
  (* Per-round cluster claims: claimed_round.(v) = r when v is locked in
     round r; claimed_rot.(v) tells whether the claiming step rotates. *)
  claimed_round : int array;
  claimed_rot : bool array;
  mutable live : int;  (* undelivered messages, data + update *)
  mutable live_data : int;  (* undelivered data messages in flight *)
}

(* lint: hot *)
let finish st (msg : M.t) =
  msg.M.delivered <- true;
  msg.M.end_time <- st.cur_round;
  st.live <- st.live - 1;
  if M.is_data msg then st.live_data <- st.live_data - 1;
  if Obskit.Sink.enabled st.sink then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Msg_delivered
          {
            round = st.cur_round;
            msg = msg.M.id;
            data = M.is_data msg;
            birth = msg.M.birth;
            hops = msg.M.hops;
            rotations = msg.M.rotations;
          })

(* The spawn callback shared by all protocol entry points: the update
   message becomes active in the next round.  It inherits its parent's
   birth time (priority): the update is part of serving that request,
   and a freshly-stamped update would be starved forever behind the
   steady stream of older data messages. *)
let spawner st ~origin ~first_increment =
  T.add_weight st.t origin first_increment;
  let u = Arena.alloc_update st.arena ~origin ~birth:st.cur_birth in
  st.live <- st.live + 1;
  if T.is_root st.t origin then finish st u
  else Simkit.Pqueue.stage st.queue u
(* lint: hot-end *)

let create config ~window ~sink ~faults ~check t trace =
  validate t trace;
  if window < 1 then invalid_arg "Concurrent.run: window must be >= 1";
  (* Exactly one update per data message, so the arena never grows
     (fault-injected duplicates take the amortized growth path). *)
  let capacity = max 16 (2 * Array.length trace) in
  let dummy = M.data ~id:(-1) ~src:0 ~dst:0 ~birth:0 in
  let st =
    {
      config;
      t;
      trace;
      window;
      sink;
      faults;
      check;
      arena = Arena.create ~capacity;
      queue =
        Simkit.Pqueue.create
          ~capacity:(min capacity (4 * window))
          ~dummy M.priority_compare;
      plan = Step.buffer ();
      next_inject = 0;
      spawn = (fun ~origin:_ ~first_increment:_ -> ());
      cur_round = 0;
      cur_birth = 0;
      claimed_round = Array.make (T.n t) (-1);
      claimed_rot = Array.make (T.n t) false;
      live = 0;
      live_data = 0;
    }
  in
  st.spawn <-
    (fun ~origin ~first_increment -> spawner st ~origin ~first_increment);
  st

(* lint: hot *)
let inject st ~round =
  let continue_ = ref true in
  while
    !continue_
    && st.next_inject < Array.length st.trace
    && st.live_data < st.window
  do
    let birth, src, dst = st.trace.(st.next_inject) in
    if birth > round then continue_ := false
    else begin
      st.next_inject <- st.next_inject + 1;
      let msg = Arena.alloc_data st.arena ~src ~dst ~birth in
      st.live <- st.live + 1;
      st.live_data <- st.live_data + 1;
      st.cur_birth <- birth;
      Protocol.born st.t ~spawn:st.spawn msg;
      if msg.M.delivered then finish st msg
      else Simkit.Pqueue.stage st.queue msg
    end
  done
(* lint: hot-end *)

(* Conflict probe, walking the plan's nil-padded cluster fields (nil
   is tail padding only).  Encoded as an int so the per-turn hot path
   allocates no option: -1 = free, 0 = loser of a routing step
   (pause), 1 = loser of a rotation (bypass).  Written without inner
   closures — the non-flambda compiler would allocate them per call. *)
let conflict_free = -1

(* lint: hot *)
let cluster_conflict st ~round =
  let p = st.plan in
  let v0 = p.Step.cluster0 in
  if v0 <> T.nil && st.claimed_round.(v0) = round then
    Bool.to_int st.claimed_rot.(v0)
  else
    let v1 = p.Step.cluster1 in
    if v1 <> T.nil && st.claimed_round.(v1) = round then
      Bool.to_int st.claimed_rot.(v1)
    else
      let v2 = p.Step.cluster2 in
      if v2 <> T.nil && st.claimed_round.(v2) = round then
        Bool.to_int st.claimed_rot.(v2)
      else
        let v3 = p.Step.cluster3 in
        if v3 <> T.nil && st.claimed_round.(v3) = round then
          Bool.to_int st.claimed_rot.(v3)
        else conflict_free

let claim st ~round =
  let p = st.plan in
  let rotate = p.Step.rotate in
  let v0 = p.Step.cluster0 in
  if v0 <> T.nil then begin
    st.claimed_round.(v0) <- round;
    st.claimed_rot.(v0) <- rotate
  end;
  let v1 = p.Step.cluster1 in
  if v1 <> T.nil then begin
    st.claimed_round.(v1) <- round;
    st.claimed_rot.(v1) <- rotate
  end;
  let v2 = p.Step.cluster2 in
  if v2 <> T.nil then begin
    st.claimed_round.(v2) <- round;
    st.claimed_rot.(v2) <- rotate
  end;
  let v3 = p.Step.cluster3 in
  if v3 <> T.nil then begin
    st.claimed_round.(v3) <- round;
    st.claimed_rot.(v3) <- rotate
  end

(* Record a lost conflict on the message (+ optional event). *)
let record_conflict st ~round ~traced (msg : M.t) ~was_rotation =
  if was_rotation then msg.M.bypasses <- msg.M.bypasses + 1
  else msg.M.pauses <- msg.M.pauses + 1;
  if traced then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Conflict
          {
            round;
            msg = msg.M.id;
            kind =
              (if was_rotation then Obskit.Event.Bypass
               else Obskit.Event.Pause);
          })

(* Commit the turn's plan: claim the cluster, apply the step, finish
   the message if it arrived.  Shared by the conflict-free branch of
   {!resolved_turn} and by the fault-injected path. *)
let commit_plan st ~round ~traced (msg : M.t) =
  let plan = st.plan in
  claim st ~round;
  if traced then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Cluster_claimed
          {
            round;
            msg = msg.M.id;
            cluster = Step.cluster plan;
            rotate = plan.Step.rotate;
          });
  msg.M.shape_c0 <- M.shape_none;
  Protocol.apply_step st.t ~spawn:st.spawn msg plan;
  if traced && plan.Step.rotate then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Rotation
          {
            round;
            msg = msg.M.id;
            node = plan.Step.current;
            count = plan.Step.rotations;
            delta_phi = Step.delta_phi plan;
          });
  if msg.M.delivered then finish st msg

(* Finish a turn whose buffer holds a complete (resolved) plan:
   conflict test on the final cluster, then claim + apply or record
   the pause/bypass. *)
let resolved_turn st ~round ~traced (msg : M.t) =
  let conflict = cluster_conflict st ~round in
  if conflict <> conflict_free then
    record_conflict st ~round ~traced msg ~was_rotation:(conflict = 1)
  else commit_plan st ~round ~traced msg
(* lint: hot-end *)

(* Traced turn: full plan up front (Step_planned must carry ΔΦ). *)
let traced_turn st ~round (msg : M.t) =
  if Protocol.begin_turn_into st.plan st.config st.t ~spawn:st.spawn msg
  then begin
    let plan = st.plan in
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Step_planned
          {
            round;
            msg = msg.M.id;
            kind = Step.kind_to_string plan.Step.kind;
            rotate = plan.Step.rotate;
            delta_phi = Step.delta_phi plan;
          });
    resolved_turn st ~round ~traced:true msg
  end
  else finish st msg

(* Untraced turn: probe the step's shape first and only evaluate ΔΦ
   when it can matter.  Under contention most turns pause, and a pause
   is decidable from the shape alone: the rotation anchor is the only
   cluster node whose membership depends on ΔΦ, and it sits in {e
   front} of the cluster when present — so if some core node is
   already claimed while the anchor is not, the first colliding node
   (hence the pause/bypass verdict) is the same whether or not the
   step would rotate, and the plan can be discarded unresolved.  This
   is outcome-identical to the traced path; the equivalence suite
   checks it against {!Reference}. *)
(* lint: hot *)
let untraced_probe_turn st ~round (msg : M.t) =
  if Protocol.begin_turn_probe st.plan st.t ~spawn:st.spawn msg then begin
    let p = st.plan in
    (* Refresh the message's shape cache: while the core nodes'
       structure versions hold and the message does not act, the next
       turn can skip the probe entirely. *)
    let c0 = p.Step.cluster0
    and c1 = p.Step.cluster1
    and c2 = p.Step.cluster2 in
    msg.M.shape_c0 <- c0;
    msg.M.shape_c1 <- c1;
    msg.M.shape_c2 <- c2;
    msg.M.shape_anchor <- p.Step.anchor;
    msg.M.shape_v0 <- T.version st.t c0;
    msg.M.shape_v1 <- T.version st.t c1;
    if c2 <> T.nil then msg.M.shape_v2 <- T.version st.t c2;
    let hit =
      if st.claimed_round.(c0) = round then c0
      else if st.claimed_round.(c1) = round then c1
      else if c2 <> T.nil && st.claimed_round.(c2) = round then c2
      else T.nil
    in
    let anchor = p.Step.anchor in
    if
      hit <> T.nil
      && (anchor = T.nil
         || st.claimed_round.(anchor) <> round
         || Bool.equal st.claimed_rot.(anchor) st.claimed_rot.(hit))
    then begin
      (* The anchor joins the cluster (in front) only if the step
         rotates; with the anchor unclaimed — or claimed by the same
         kind of winner as the first core hit — the verdict is the
         same either way, so ΔΦ is irrelevant. *)
      if st.claimed_rot.(hit) then msg.M.bypasses <- msg.M.bypasses + 1
      else msg.M.pauses <- msg.M.pauses + 1
    end
    else begin
        Step.resolve_into st.plan st.config st.t;
      resolved_turn st ~round ~traced:false msg
    end
  end
  else finish st msg

let untraced_turn st ~round (msg : M.t) =
  (* Cached-shape fast path: with the core nodes structurally
     unchanged since the last probe (and the message not having acted
     since — acting clears the cache), a re-probe would reproduce the
     cached shape verbatim and perform no protocol side effects, so
     the conflict pre-check can run straight off the cache. *)
  let c0 = msg.M.shape_c0 in
  if
    c0 <> M.shape_none
    && T.version st.t c0 = msg.M.shape_v0
    && T.version st.t msg.M.shape_c1 = msg.M.shape_v1
    && (msg.M.shape_c2 = T.nil || T.version st.t msg.M.shape_c2 = msg.M.shape_v2)
  then begin
    let hit =
      if st.claimed_round.(c0) = round then c0
      else if st.claimed_round.(msg.M.shape_c1) = round then msg.M.shape_c1
      else if
        msg.M.shape_c2 <> T.nil && st.claimed_round.(msg.M.shape_c2) = round
      then msg.M.shape_c2
      else T.nil
    in
    let anchor = msg.M.shape_anchor in
    if
      hit <> T.nil
      && (anchor = T.nil
         || st.claimed_round.(anchor) <> round
         || Bool.equal st.claimed_rot.(anchor) st.claimed_rot.(hit))
    then begin
      if st.claimed_rot.(hit) then msg.M.bypasses <- msg.M.bypasses + 1
      else msg.M.pauses <- msg.M.pauses + 1
    end
    else begin
      (* Cluster free (or only the anchor contended): the turn may
         act, so take the full probe + resolve path. *)
        Protocol.begin_turn_probe st.plan st.t ~spawn:st.spawn msg |> ignore;
      Step.resolve_into st.plan st.config st.t;
      resolved_turn st ~round ~traced:false msg
    end
  end
  else untraced_probe_turn st ~round msg

(* lint: hot-end *)

(* ------------------------------------------------------------------
   Fault-injected path (Faultkit).  Every turn of a run with a fault
   plan goes through {!faulty_turn} — traced or not — so the fault
   draws never depend on whether telemetry is on and a traced chaos
   run computes the exact same statistics as an untraced one.  The
   plan is always fully resolved (no probe shortcut, no shape cache):
   chaos runs pay for clarity, the fault-free hot path above stays
   untouched. *)

(* The run-time gate audits the structural suite only: weight sums are
   a flow property, exact only once every weight-update message has
   deposited, so a mid-run (or end-of-run) tree legitimately fails
   Check.weights while being perfectly well-formed. *)
let check_now st =
  match Bstnet.Check.structural st.t with
  | Ok () -> ()
  | Error e -> failwith ("Concurrent: invariant violated after repair: " ^ e)

(* True when some node of the plan's cluster is crashed: the step
   cannot execute and the message parks, charging makespan only —
   a crash is not a cluster conflict, so no pause/bypass is counted. *)
let cluster_down inj (p : Step.t) =
  let down v = v <> T.nil && Faultkit.Injector.is_down inj v in
  down p.Step.cluster0 || down p.Step.cluster1 || down p.Step.cluster2
  || down p.Step.cluster3

(* A message dropped in transit re-arms at its source with its birth
   (priority and makespan anchor, Sec. VII-A) and its [update_spawned]
   flag preserved: the retransmission is part of serving the original
   request, and the single weight update per request stays single. *)
let rearm (msg : M.t) =
  msg.M.current <- msg.M.src;
  msg.M.phase <- M.Climbing;
  msg.M.up_credit <- T.nil;
  msg.M.shape_c0 <- M.shape_none

(* A duplicated data message: fresh identity, same endpoints and birth,
   forked at the original's current position.  It must never spawn a
   second weight update.  Staged, so it joins the queue next round. *)
let spawn_duplicate st (msg : M.t) =
  let twin =
    Arena.alloc_data st.arena ~src:msg.M.src ~dst:msg.M.dst ~birth:msg.M.birth
  in
  twin.M.current <- msg.M.current;
  twin.M.phase <- msg.M.phase;
  twin.M.update_spawned <- true;
  st.live <- st.live + 1;
  st.live_data <- st.live_data + 1;
  Simkit.Pqueue.stage st.queue twin;
  twin

(* Tear the first elementary rotation of the plan mid-flight — pair
   link surgery only, leaving the node above with a stale child
   pointer and the pair's labels and weight sums unrecomputed — then
   run the local repair protocol and (in check mode) verify the full
   invariant suite.  The cluster is claimed first: the torn nodes were
   about to mutate and no other step may see the intermediate state
   this round. *)
let abort_rotation st inj ~round (msg : M.t) =
  claim st ~round;
  let x = Step.first_rotation_node st.t st.plan in
  if Obskit.Sink.enabled st.sink then begin
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Fault_injected
          { round; kind = Obskit.Event.Abort; node = x; msg = msg.M.id });
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Repair_begin { round; node = x })
  end;
  let damage = Faultkit.Repair.tear st.t x in
  Faultkit.Repair.heal st.t damage;
  Faultkit.Injector.note_repair inj;
  if Obskit.Sink.enabled st.sink then
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Repair_done { round; node = x });
  if st.check then check_now st;
  msg.M.shape_c0 <- M.shape_none

let faulty_turn st inj ~round (msg : M.t) =
  if msg.M.asleep_until > round then () (* delayed in transit: skip *)
  else if Faultkit.Injector.is_down inj msg.M.current then
    (* Parked at a crashed node — checked before planning, so a dead
       node performs no protocol side effects (LCA update spawns). *)
    Faultkit.Injector.note_park inj
  else if Protocol.begin_turn_into st.plan st.config st.t ~spawn:st.spawn msg
  then begin
    let plan = st.plan in
    let traced = Obskit.Sink.enabled st.sink in
    if traced then
      Obskit.Sink.record st.sink (fun () ->
          Obskit.Event.Step_planned
            {
              round;
              msg = msg.M.id;
              kind = Step.kind_to_string plan.Step.kind;
              rotate = plan.Step.rotate;
              delta_phi = Step.delta_phi plan;
            });
    if Faultkit.Injector.any_down inj && cluster_down inj plan then
      Faultkit.Injector.note_park inj
    else begin
      let conflict = cluster_conflict st ~round in
      if conflict <> conflict_free then
        record_conflict st ~round ~traced msg ~was_rotation:(conflict = 1)
      else if plan.Step.rotate && Faultkit.Injector.draw_abort inj then
        abort_rotation st inj ~round msg
      else begin
        (* Commit draws, in fixed order: loss, duplication, delay.
           Each zero-rate family consumes no randomness (see
           Faultkit.Injector), so replays stay aligned. *)
        let crossings =
          (if plan.Step.passed0 <> T.nil then 1 else 0)
          + if plan.Step.passed1 <> T.nil then 1 else 0
        in
        if crossings > 0 && Faultkit.Injector.draw_loss inj ~crossings
        then begin
          Faultkit.Injector.note_lost inj;
          if traced then
            Obskit.Sink.record st.sink (fun () ->
                Obskit.Event.Msg_lost
                  { round; msg = msg.M.id; node = msg.M.current });
          rearm msg
        end
        else if
          crossings > 0 && M.is_data msg
          && Faultkit.Injector.draw_duplicate inj
        then begin
          let twin = spawn_duplicate st msg in
          Faultkit.Injector.note_duplicated inj;
          if traced then
            Obskit.Sink.record st.sink (fun () ->
                Obskit.Event.Fault_injected
                  {
                    round;
                    kind = Obskit.Event.Duplicate;
                    node = msg.M.current;
                    msg = twin.M.id;
                  });
          commit_plan st ~round ~traced msg
        end
        else begin
          let k = Faultkit.Injector.draw_delay inj in
          if k > 0 then begin
            msg.M.asleep_until <- round + k;
            Faultkit.Injector.note_delayed inj;
            if traced then
              Obskit.Sink.record st.sink (fun () ->
                  Obskit.Event.Fault_injected
                    {
                      round;
                      kind = Obskit.Event.Delay;
                      node = msg.M.current;
                      msg = msg.M.id;
                    })
          end
          else commit_plan st ~round ~traced msg
        end
      end
    end
  end
  else finish st msg

(* lint: hot *)
let tick st round =
  st.cur_round <- round;
  (* Fault-window maintenance and scheduled crashes happen at the
     round boundary, before admission.  Without a plan the match is a
     single branch — the hot path allocates nothing. *)
  (match st.faults with
  | None -> ()
  | Some inj -> Faultkit.Injector.begin_round inj st.t st.sink ~round);
  let traced = Obskit.Sink.enabled st.sink in
  if traced then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Round_begin
          { round; active = st.live; live_data = st.live_data });
  (* Newly admitted data messages join the staged batch alongside the
     updates spawned last round; one stable merge brings both into the
     priority buffer for this round. *)
  inject st ~round;
  Simkit.Pqueue.commit st.queue;
  (* lint: allow no-alloc -- one visitor closure per round, not per turn *)
  Simkit.Pqueue.iter_filter st.queue (fun (msg : M.t) ->
      if msg.M.delivered then false
      else begin
        st.cur_birth <- msg.M.birth;
        (match st.faults with
        | Some inj -> faulty_turn st inj ~round msg
        | None ->
            if traced then traced_turn st ~round msg
            else untraced_turn st ~round msg);
        not msg.M.delivered
      end);
  (* Φ is O(n) to compute, so it is sampled only on traced runs. *)
  if traced then
    (* lint: allow no-alloc -- closure built only when tracing is on *)
    Obskit.Sink.record st.sink (fun () ->
        Obskit.Event.Phi_sample { round; phi = Potential.phi st.t })
(* lint: hot-end *)

let make ?(config = Config.default) ?window ?(sink = Obskit.Sink.null) ?faults
    ?(check_invariants = false) t trace =
  let window = default_window t window in
  let injector =
    match faults with
    | None -> None
    | Some plan -> Some (Faultkit.Injector.create plan ~n:(T.n t))
  in
  let st =
    create config ~window ~sink ~faults:injector ~check:check_invariants t
      trace
  in
  let sched =
    {
      Simkit.Engine.label = "cbn";
      tick = (fun round -> tick st round);
      is_done =
        (fun () -> st.next_inject >= Array.length st.trace && st.live = 0);
    }
  in
  let finalize rounds =
    let chaos =
      match st.faults with
      | None -> Run_stats.no_chaos
      | Some inj ->
          let s = Faultkit.Injector.snapshot inj in
          {
            Run_stats.crashes = s.Faultkit.Injector.crashes;
            parks = s.Faultkit.Injector.parks;
            lost = s.Faultkit.Injector.lost;
            duplicated = s.Faultkit.Injector.duplicated;
            delayed = s.Faultkit.Injector.delayed;
            aborted_rotations = s.Faultkit.Injector.aborted_rotations;
            repairs = s.Faultkit.Injector.repairs;
          }
    in
    if check_invariants then Bstnet.Check.assert_ok (Bstnet.Check.structural st.t);
    Run_stats.of_iter ~chaos ~config ~rounds (fun f -> Arena.iter st.arena f)
  in
  (st, sched, finalize)

let scheduler ?config ?window ?sink ?faults ?check_invariants t trace =
  let _, sched, finalize =
    make ?config ?window ?sink ?faults ?check_invariants t trace
  in
  (sched, finalize)

let run ?config ?window ?max_rounds ?sink ?faults ?check_invariants t trace =
  let sched, finalize =
    scheduler ?config ?window ?sink ?faults ?check_invariants t trace
  in
  let rounds = Simkit.Engine.run_exn ?max_rounds sched in
  finalize rounds

let run_with_latencies ?config ?window ?max_rounds ?sink ?faults
    ?check_invariants t trace =
  let st, sched, finalize =
    make ?config ?window ?sink ?faults ?check_invariants t trace
  in
  let rounds = Simkit.Engine.run_exn ?max_rounds sched in
  let stats = finalize rounds in
  let count = ref 0 in
  Arena.iter st.arena (fun m ->
      if M.is_data m && m.M.delivered then incr count);
  let latencies = Array.make !count 0.0 in
  let i = ref 0 in
  Arena.iter st.arena (fun m ->
      if M.is_data m && m.M.delivered then begin
        latencies.(!i) <- float_of_int (m.M.end_time - m.M.birth);
        incr i
      end);
  (stats, latencies)

(* The original list-based executor, kept verbatim as an executable
   specification: the equivalence test suite checks the arena/pqueue
   executor against it event for event, and [bench perf] times the two
   side by side.  Deliberately not refactored to share the round loop
   above — its value is being the independent implementation. *)
module Reference = struct
  type rstate = {
    config : Config.t;
    t : T.t;
    trace : (int * int * int) array;
    window : int;
    sink : Obskit.Sink.t;
    mutable next_inject : int;
    mutable next_id : int;
    mutable active : M.t list;  (* undelivered, kept priority-sorted *)
    mutable finished : M.t list;
    mutable spawned : M.t list;  (* updates born this round, join next round *)
    claimed_round : int array;
    claimed_rot : bool array;
    mutable live : int;
    mutable live_data : int;
  }

  let create config ~window ~sink t trace =
    validate t trace;
    if window < 1 then invalid_arg "Concurrent.run: window must be >= 1";
    {
      config;
      t;
      trace;
      window;
      sink;
      next_inject = 0;
      next_id = 0;
      active = [];
      finished = [];
      spawned = [];
      claimed_round = Array.make (T.n t) (-1);
      claimed_rot = Array.make (T.n t) false;
      live = 0;
      live_data = 0;
    }

  let fresh_id st =
    let id = st.next_id in
    st.next_id <- st.next_id + 1;
    id

  let finish st (msg : M.t) ~round =
    msg.M.delivered <- true;
    msg.M.end_time <- round;
    st.finished <- msg :: st.finished;
    st.live <- st.live - 1;
    if M.is_data msg then st.live_data <- st.live_data - 1;
    if Obskit.Sink.enabled st.sink then
      Obskit.Sink.record st.sink (fun () ->
          Obskit.Event.Msg_delivered
            {
              round;
              msg = msg.M.id;
              data = M.is_data msg;
              birth = msg.M.birth;
              hops = msg.M.hops;
              rotations = msg.M.rotations;
            })

  let spawner st ~round ~birth ~origin ~first_increment =
    T.add_weight st.t origin first_increment;
    let u = M.weight_update ~id:(fresh_id st) ~origin ~birth in
    st.live <- st.live + 1;
    if T.is_root st.t origin then finish st u ~round
    else st.spawned <- u :: st.spawned

  let inject st ~round =
    let injected = ref [] in
    let continue_ = ref true in
    while
      !continue_
      && st.next_inject < Array.length st.trace
      && st.live_data < st.window
    do
      let birth, src, dst = st.trace.(st.next_inject) in
      if birth > round then continue_ := false
      else begin
        st.next_inject <- st.next_inject + 1;
        let msg = M.data ~id:(fresh_id st) ~src ~dst ~birth in
        st.live <- st.live + 1;
        st.live_data <- st.live_data + 1;
        Protocol.born st.t ~spawn:(spawner st ~round ~birth) msg;
        if msg.M.delivered then finish st msg ~round
        else injected := msg :: !injected
      end
    done;
    List.rev !injected

  let cluster_conflict st ~round plan =
    let rec go = function
      | [] -> None
      | v :: rest ->
          if st.claimed_round.(v) = round then Some st.claimed_rot.(v)
          else go rest
    in
    go (Step.cluster plan)

  let claim st ~round plan =
    List.iter
      (fun v ->
        st.claimed_round.(v) <- round;
        st.claimed_rot.(v) <- plan.Step.rotate)
      (Step.cluster plan)

  let tick st round =
    let traced = Obskit.Sink.enabled st.sink in
    if traced then
      Obskit.Sink.record st.sink (fun () ->
          Obskit.Event.Round_begin
            { round; active = st.live; live_data = st.live_data });
    let injected = inject st ~round in
    let newcomers = List.sort M.priority_compare (st.spawned @ injected) in
    st.spawned <- [];
    let by_priority = List.merge M.priority_compare st.active newcomers in
    let still_active = ref [] in
    List.iter
      (fun (msg : M.t) ->
        if not msg.M.delivered then begin
          let spawn = spawner st ~round ~birth:msg.M.birth in
          (match Protocol.begin_turn st.config st.t ~spawn msg with
          | Protocol.Delivered -> finish st msg ~round
          | Protocol.Plan plan -> (
              if traced then
                Obskit.Sink.record st.sink (fun () ->
                    Obskit.Event.Step_planned
                      {
                        round;
                        msg = msg.M.id;
                        kind = Step.kind_to_string plan.Step.kind;
                        rotate = plan.Step.rotate;
                        delta_phi = Step.delta_phi plan;
                      });
              match cluster_conflict st ~round plan with
              | Some was_rotation ->
                  if was_rotation then msg.M.bypasses <- msg.M.bypasses + 1
                  else msg.M.pauses <- msg.M.pauses + 1;
                  if traced then
                    Obskit.Sink.record st.sink (fun () ->
                        Obskit.Event.Conflict
                          {
                            round;
                            msg = msg.M.id;
                            kind =
                              (if was_rotation then Obskit.Event.Bypass
                               else Obskit.Event.Pause);
                          })
              | None ->
                  claim st ~round plan;
                  if traced then
                    Obskit.Sink.record st.sink (fun () ->
                        Obskit.Event.Cluster_claimed
                          {
                            round;
                            msg = msg.M.id;
                            cluster = Step.cluster plan;
                            rotate = plan.Step.rotate;
                          });
                  Protocol.apply_step st.t ~spawn msg plan;
                  if traced && plan.Step.rotate then
                    Obskit.Sink.record st.sink (fun () ->
                        Obskit.Event.Rotation
                          {
                            round;
                            msg = msg.M.id;
                            node = plan.Step.current;
                            count = plan.Step.rotations;
                            delta_phi = Step.delta_phi plan;
                          });
                  if msg.M.delivered then finish st msg ~round));
          if not msg.M.delivered then still_active := msg :: !still_active
        end)
      by_priority;
    st.active <- List.rev !still_active;
    if traced then
      Obskit.Sink.record st.sink (fun () ->
          Obskit.Event.Phi_sample { round; phi = Potential.phi st.t })

  let make ?(config = Config.default) ?window ?(sink = Obskit.Sink.null) t
      trace =
    let window = default_window t window in
    let st = create config ~window ~sink t trace in
    let sched =
      {
        Simkit.Engine.label = "cbn-ref";
        tick = (fun round -> tick st round);
        is_done =
          (fun () -> st.next_inject >= Array.length st.trace && st.live = 0);
      }
    in
    let finalize rounds =
      Run_stats.of_messages ~config ~rounds (st.finished @ st.active)
    in
    (st, sched, finalize)

  let scheduler ?config ?window ?sink t trace =
    let _, sched, finalize = make ?config ?window ?sink t trace in
    (sched, finalize)

  let run ?config ?window ?max_rounds ?sink t trace =
    let sched, finalize = scheduler ?config ?window ?sink t trace in
    let rounds = Simkit.Engine.run_exn ?max_rounds sched in
    finalize rounds

  let run_with_latencies ?config ?window ?max_rounds ?sink t trace =
    let st, sched, finalize = make ?config ?window ?sink t trace in
    let rounds = Simkit.Engine.run_exn ?max_rounds sched in
    let stats = finalize rounds in
    let latencies =
      List.filter_map
        (fun (msg : M.t) ->
          match msg.M.kind with
          | M.Data when msg.M.delivered ->
              Some (float_of_int (msg.M.end_time - msg.M.birth))
          | _ -> None)
        (st.finished @ st.active)
      |> Array.of_list
    in
    (stats, latencies)
end
