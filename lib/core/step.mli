(** Planning and execution of CBNet steps (Def. 5 of the paper).

    A step is taken by the current node [x] of a message heading to
    key [dst].  It spans up to two tree levels: the node inspects its
    ≤2-hop neighbourhood, classifies the local shape (zig / semi
    zig-zig / semi zig-zag, bottom-up or top-down), predicts the
    potential change [ΔΦ] the corresponding semi-splay rotation would
    cause, and decides — rotate if [ΔΦ < -δ], forward otherwise
    (Algorithm 1, lines 4-10).

    Planning is the read-only decision; [execute] carries a plan out.
    The two are separated so that the concurrent engine can compute a
    plan's cluster and test it for conflicts before committing
    (Sec. VII).

    A plan is a {e reusable mutable buffer}: the concurrent executor
    allocates one with {!buffer} and refills it with the [*_into]
    planners every turn, so the per-round hot path allocates nothing.
    The [passed] and [cluster] node sets are stored as fixed-arity
    fields ([passed0]/[passed1], [cluster0]..[cluster3],
    [Bstnet.Topology.nil]-padded at the tail) — a step crosses at most
    2 nodes and locks at most 4 — and can be walked without building
    lists.  The allocating {!plan_up}/{!plan_down}/{!plan} wrappers
    return a fresh buffer per call. *)

type kind =
  | Bu_zig  (** one level from the top of the climb: promote [x] over its parent *)
  | Bu_semi_zig_zig  (** same-side climb: promote the parent over the grandparent; message moves to the parent *)
  | Bu_semi_zig_zag  (** opposite-side climb: double-promote [x]; message stays on [x] *)
  | Td_zig  (** one level left to the destination: promote the child *)
  | Td_semi_zig_zig  (** same-side descent: promote the child; message lands two levels down *)
  | Td_semi_zig_zag  (** opposite-side descent: double-promote the grandchild; message lands on it *)

val kind_to_string : kind -> string

type fbox = { mutable v : float }
(** Flat (unboxed) storage for the plan's [ΔΦ]; a lone mutable float
    field in the mixed record below would be boxed and re-allocated on
    every write.  Read through {!delta_phi}. *)

type t = {
  mutable current : int;  (** Node taking the step. *)
  mutable dst : int;
      (** Message destination key ([-1] for root-bound weight updates). *)
  mutable kind : kind;  (** The rotation this step would perform. *)
  dphi : fbox;  (** Predicted potential change — read via {!delta_phi}. *)
  mutable rotate : bool;
      (** True when [delta_phi < -δ]: the step is of type rotation. *)
  mutable rotations : int;
      (** Number of elementary rotations if [rotate] (1 or 2). *)
  mutable hops : int;  (** Routing hops if [not rotate] (1 or 2). *)
  mutable new_current : int;  (** Where the message sits after the step. *)
  mutable passed0 : int;
  mutable passed1 : int;
      (** Nodes (in travel order, ending with [new_current] when the
          message moves, [nil]-padded) that newly carry the message's
          path and must receive weight increments — see {!Sequential}. *)
  mutable cluster0 : int;
  mutable cluster1 : int;
  mutable cluster2 : int;
  mutable cluster3 : int;
      (** The cluster K_t of Def. 6: nodes locked by this step, in
          plan order, [nil]-padded at the tail ([cluster0] is always a
          real node). *)
  mutable anchor : int;
      (** After {!probe_up_into}/{!probe_down_into}: the node that
          joins the cluster only if the step rotates (the node above
          the rotating pair), or [nil].  Consumed by
          {!resolve_into}. *)
}

val buffer : unit -> t
(** A blank plan buffer for the [*_into] planners. *)

val delta_phi : t -> float
(** The plan's predicted [ΔΦ]. *)

val passed : t -> int list
(** The passed nodes as a list (allocates; for tests and telemetry). *)

val cluster : t -> int list
(** The cluster as a list (allocates; for tests and telemetry). *)

val probe_up_into : t -> Bstnet.Topology.t -> current:int -> dst:int -> unit
(** Shape-only half of {!plan_up_into}: classify the step, fill
    [current]/[dst]/[kind], record the claim-independent core cluster
    nodes in [cluster0..cluster2] ([nil]-padded, [cluster3 = nil]) and
    the rotation anchor in [anchor] — without evaluating [ΔΦ].  The
    core is the exact cluster of the eventual plan when it does not
    rotate; a rotating plan additionally locks [anchor] (in front).
    The concurrent executor uses this to decide pauses without paying
    for the potential computation; {!resolve_into} completes the plan.
    @raise Invalid_argument when [current] is the root. *)

val probe_down_into : t -> Bstnet.Topology.t -> current:int -> dst:int -> unit
(** Shape-only half of {!plan_down_into}; see {!probe_up_into}. *)

val resolve_into : t -> Config.t -> Bstnet.Topology.t -> unit
(** Complete a probed buffer into a full plan: evaluate [ΔΦ], decide
    the rotation, fill the movement fields and fold the anchor into
    the cluster if the step rotates.  The topology must not have
    changed since the probe. *)

val resolve_ro_into : t -> Config.t -> Bstnet.Topology.t -> unit
(** Exactly {!resolve_into} but strictly read-only on the topology
    (uses the [Potential.*_ro] ΔΦ twins, which skip the rank-memo
    writes).  Produces bit-identical plan contents; safe to run from
    several domains concurrently on a frozen tree — the parallel plan
    wave's resolver. *)

val plan_up_into :
  t -> Config.t -> Bstnet.Topology.t -> current:int -> dst:int -> unit
(** Fill the buffer with a bottom-up step plan (direction Up) —
    {!probe_up_into} followed by {!resolve_into}.  The climb stops at
    the LCA with [dst]; pass [dst = Bstnet.Topology.nil] for a
    root-bound weight-update message, whose climb stops only at the
    root.
    @raise Invalid_argument when [current] is the root. *)

val plan_down_into :
  t -> Config.t -> Bstnet.Topology.t -> current:int -> dst:int -> unit
(** Fill the buffer with a top-down step plan toward [dst], which must
    lie strictly inside the current node's subtree. *)

val plan_into :
  t -> Config.t -> Bstnet.Topology.t -> current:int -> dst:int -> bool
(** Dispatch on {!Bstnet.Topology.direction_to}: [false] (buffer
    untouched) when the message already sits on its destination,
    otherwise fill the up/down plan and return [true]. *)

val plan_up : Config.t -> Bstnet.Topology.t -> current:int -> dst:int -> t
(** {!plan_up_into} into a fresh buffer. *)

val plan_down : Config.t -> Bstnet.Topology.t -> current:int -> dst:int -> t
(** {!plan_down_into} into a fresh buffer. *)

val plan : Config.t -> Bstnet.Topology.t -> current:int -> dst:int -> t option
(** {!plan_into} into a fresh buffer; [None] when already at the
    destination. *)

val execute : Bstnet.Topology.t -> t -> unit
(** Perform the plan's mutation (if [rotate]); moving the message to
    [new_current] is the caller's bookkeeping.  The topology must not
    have changed since planning — the concurrent engine guarantees
    this with clusters; the sequential engine trivially. *)

val first_rotation_node : Bstnet.Topology.t -> t -> int
(** The node {!execute} would promote first for this (rotating) plan —
    the tear point a fault-injected rotation abort targets, so the
    abort damages exactly the elementary rotation the healthy step
    would have started with. *)
