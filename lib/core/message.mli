(** In-flight message state.

    CBNet is message-oriented: a data message travels from its source
    bottom-up to the LCA with its destination, then top-down; at the
    LCA it spawns a small root-bound weight-update control message
    (Algorithm 1, lines 2-3) that carries no data but is still subject
    to rotation steps and is included in the work cost. *)

type kind = Data | Weight_update

type phase =
  | Climbing  (** Heading for the LCA (or the root, for an update). *)
  | Descending  (** Past the LCA, heading for the destination. *)

type t = {
  id : int;  (** Unique; breaks priority ties deterministically. *)
  mutable kind : kind;
  mutable src : int;
  mutable dst : int;
      (** [Bstnet.Topology.nil] for weight updates (root-bound). *)
  mutable birth : int;
      (** Time slot of generation; the priority of Sec. VII. *)
  mutable current : int;
  mutable phase : phase;
  mutable up_credit : int;
      (** Last node that received this message's climb increment, or
          [nil]; decides whether an LCA discovered in place still needs
          +1 or the full +2. *)
  mutable update_spawned : bool;
      (** A message spawns at most one weight update, even if a bypass
          forces it to re-climb to a fresh LCA. *)
  mutable delivered : bool;
  mutable end_time : int;
  mutable hops : int;  (** Forwarding operations performed (routing cost). *)
  mutable rotations : int;  (** Elementary rotations performed. *)
  mutable steps : int;
  mutable pauses : int;  (** Conflicts suffered where the winner routed. *)
  mutable bypasses : int;  (** Conflicts suffered where the winner rotated. *)
  mutable asleep_until : int;
      (** First round the message may act again after a fault-injected
          delay ([Faultkit]); 0 = not sleeping.  Untouched on
          fault-free runs. *)
  mutable shape_c0 : int;
  mutable shape_c1 : int;
  mutable shape_c2 : int;
  mutable shape_anchor : int;
  mutable shape_v0 : int;
  mutable shape_v1 : int;
  mutable shape_v2 : int;
      (** Step-shape cache owned by [Concurrent]'s untraced fast path:
          the last probed core cluster nodes + rotation anchor
          ([nil]-padded) and the {!Bstnet.Topology.version} stamps of
          the core nodes at probe time.  While every stamped version
          is unchanged and the message has not acted, re-probing would
          reproduce exactly this shape, so the turn's conflict
          pre-check can run straight off the cache.
          [shape_c0 = {!shape_none}] marks an empty cache. *)
}

val shape_none : int
(** Sentinel for [shape_c0]: no cached shape (distinct from [nil],
    which is legitimate tail padding in [shape_c1]/[shape_c2]). *)

val data : id:int -> src:int -> dst:int -> birth:int -> t
val weight_update : id:int -> origin:int -> birth:int -> t

val reinit : t -> kind:kind -> src:int -> dst:int -> birth:int -> unit
(** Reset a record to the state [data]/[weight_update] would build
    (keeping its [id]), for preallocated-slot reuse in {!Arena}.  The
    identity fields are mutable only to support this; once a message
    is in flight they must not change. *)

val is_data : t -> bool
val is_update : t -> bool
val is_climbing : t -> bool

val is_descending : t -> bool
(** Monomorphic [kind]/[phase] tests; callers use these instead of
    structural [=] on the variants (see the [no-poly-compare] lint
    rule). *)

val priority_compare : t -> t -> int
(** Earlier birth first, then smaller id — the total order used for
    the prioritization rule of Sec. VII-A. *)
