let generate ?(n = 256) ?(m = 10_000) ?(temporal = 0.0) ?(window = 64)
    ?(alpha = 0.0) ?support ~seed () =
  (* A wide default support keeps the alpha = 0 corner genuinely
     structureless (pairs rarely repeat at the default m). *)
  let support = match support with Some s -> s | None -> min (n * (n - 1)) 16_384 in
  if n < 2 then invalid_arg "Tunable.generate: n must be >= 2";
  if temporal < 0.0 || temporal >= 1.0 then
    invalid_arg "Tunable.generate: temporal must be in [0, 1)";
  if window < 1 then invalid_arg "Tunable.generate: window must be >= 1";
  if support > n * (n - 1) then invalid_arg "Tunable.generate: support too large";
  let rng = Simkit.Rng.create seed in
  (* Fixed Zipf-weighted matrix over a random pair support. *)
  let seen = Hashtbl.create (2 * support) in
  let pairs = Array.make support (0, 1) in
  let filled = ref 0 in
  while !filled < support do
    let s = Simkit.Rng.int rng n in
    let d = Simkit.Rng.int rng n in
    if s <> d && not (Hashtbl.mem seen (s, d)) then begin
      Hashtbl.add seen (s, d) ();
      pairs.(!filled) <- (s, d);
      incr filled
    end
  done;
  let zipf = Zipf.create ~alpha ~k:support in
  let history = Array.make window (0, 1) in
  let history_len = ref 0 in
  let history_next = ref 0 in
  let fresh () = pairs.(Zipf.sample zipf rng) in
  let requests =
    Array.init m (fun _ ->
        let req =
          if !history_len > 0 && Simkit.Rng.float rng 1.0 < temporal then
            history.(Simkit.Rng.int rng !history_len)
          else fresh ()
        in
        history.(!history_next) <- req;
        history_next := (!history_next + 1) mod window;
        if !history_len < window then incr history_len;
        req)
  in
  Trace.make ~name:(Printf.sprintf "tunable-t%.2f-a%.2f" temporal alpha) ~n requests

let grid ?n ?m ~seed ~temporal_levels ~alpha_levels () =
  List.concat_map
    (fun temporal ->
      List.map
        (fun alpha ->
          (temporal, alpha, generate ?n ?m ~temporal ~alpha ~seed ()))
        alpha_levels)
    temporal_levels
