let generate ?(n = 128) ?(m = 10_000) ?(support = 8367) ?(alpha = 2.0)
    ?(hot_fraction = 0.25) ~seed () =
  if n < 2 then invalid_arg "Projector.generate: n must be >= 2";
  if support < n then
    invalid_arg
      (Printf.sprintf
         "Projector.generate: support %d < n %d (the pair matrix would leave \
          nodes unused; pass a support >= n)"
         support n);
  if support > n * (n - 1) then invalid_arg "Projector.generate: support too large";
  if hot_fraction <= 0.0 || hot_fraction > 1.0 then
    invalid_arg "Projector.generate: hot_fraction outside (0, 1]";
  let rng = Simkit.Rng.create seed in
  let hot = max 2 (int_of_float (hot_fraction *. float_of_int n)) in
  (* Hot racks are a random subset; heavy ranks draw both endpoints
     from it, the tail from the whole cluster. *)
  let perm = Array.init n (fun i -> i) in
  Simkit.Rng.shuffle rng perm;
  let seen = Hashtbl.create (2 * support) in
  let pairs = Array.make support (0, 1) in
  let filled = ref 0 in
  (* Keep the hot ranks well below the number of distinct hot pairs so
     rejection sampling terminates quickly. *)
  let hot_ranks = min (support / 4) (hot * (hot - 1) * 3 / 4) in
  while !filled < support do
    let from_hot = !filled < hot_ranks in
    let pick () =
      if from_hot then perm.(Simkit.Rng.int rng hot)
      else perm.(Simkit.Rng.int rng n)
    in
    let s = pick () and d = pick () in
    if s <> d && not (Hashtbl.mem seen (s, d)) then begin
      Hashtbl.add seen (s, d) ();
      pairs.(!filled) <- (s, d);
      incr filled
    end
  done;
  let zipf = Zipf.create ~alpha ~k:support in
  let requests = Array.init m (fun _ -> pairs.(Zipf.sample zipf rng)) in
  Trace.make ~name:"projector" ~n requests
