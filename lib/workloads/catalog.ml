type scale = Smoke | Default | Full

type entry = {
  key : string;
  description : string;
  n : int;
  generate : scale -> seed:int -> Trace.t;
}

(* The "(n=...)" suffix every description carries is derived from the
   entry's [n] field, so catalog text can never drift from the actual
   default size. *)
let entry ~key ~base ~n ~generate =
  { key; description = Printf.sprintf "%s (n=%d)" base n; n; generate }

let all =
  [
    entry ~key:"projector" ~base:"ProjecToR-like: skewed fixed matrix, i.i.d."
      ~n:128
      ~generate:(fun scale ~seed ->
        match scale with
        | Smoke -> Projector.generate ~n:32 ~m:2_000 ~support:300 ~seed ()
        | Default | Full -> Projector.generate ~seed ());
    entry ~key:"skewed" ~base:"Zipf pairs, i.i.d." ~n:1024
      ~generate:(fun scale ~seed ->
        match scale with
        | Smoke -> Skewed.generate ~n:64 ~m:2_000 ~support:256 ~seed ()
        | Default | Full -> Skewed.generate ~seed ());
    entry ~key:"pfabric" ~base:"pFabric-like flow bursts" ~n:144
      ~generate:(fun scale ~seed ->
        match scale with
        | Smoke -> Pfabric.generate ~n:36 ~m:2_000 ~seed ()
        | Default -> Pfabric.generate ~m:50_000 ~seed ()
        | Full -> Pfabric.generate ~m:1_000_000 ~seed ());
    entry ~key:"bursty" ~base:"geometric repeat bursts, uniform pairs" ~n:1024
      ~generate:(fun scale ~seed ->
        match scale with
        | Smoke -> Bursty.generate ~n:64 ~m:2_000 ~seed ()
        | Default | Full -> Bursty.generate ~seed ());
    entry ~key:"hpc" ~base:"2-D stencil + binomial collectives" ~n:1024
      ~generate:(fun scale ~seed ->
        match scale with
        | Smoke -> Hpc.generate ~side:8 ~m:2_000 ~seed ()
        | Default -> Hpc.generate ~m:50_000 ~seed ()
        | Full -> Hpc.generate ~m:1_000_000 ~seed ());
    entry ~key:"datastructure" ~base:"root destination, normal sources" ~n:128
      ~generate:(fun scale ~seed ->
        match scale with
        | Smoke -> Datastructure.generate ~n:32 ~m:2_000 ~seed ()
        | Default | Full -> Datastructure.generate ~seed ());
    entry ~key:"uniform" ~base:"uniform i.i.d. reference" ~n:128
      ~generate:(fun scale ~seed ->
        match scale with
        | Smoke -> Uniform.generate ~n:32 ~m:2_000 ~seed ()
        | Default | Full -> Uniform.generate ~seed ());
  ]

let find key = List.find (fun e -> e.key = key) all
let keys = List.map (fun e -> e.key) all

let paper_six =
  [ "projector"; "skewed"; "pfabric"; "bursty"; "hpc"; "datastructure" ]

(* Families with genuine (n, m) scaling knobs, for the forest sweeps
   (n from 1k to 1M).  Keys deliberately overlap [all] where the
   family supports arbitrary n; "zipf" is an alias for "skewed". *)
let scaled_keys = [ "pfabric"; "hpc"; "skewed"; "zipf"; "bursty"; "uniform" ]

let scaled key ~n ~m ~seed =
  if n < 2 then invalid_arg "Catalog.scaled: n must be >= 2";
  if m < 1 then invalid_arg "Catalog.scaled: m must be >= 1";
  match key with
  | "pfabric" -> Pfabric.generate ~n ~m ~seed ()
  | "hpc" ->
      (* The stencil needs a square grid: round n down to side^2 (the
         trace's own [n] field carries the actual size). *)
      let side = max 2 (int_of_float (sqrt (float_of_int n))) in
      Hpc.generate ~side ~m ~seed ()
  | "skewed" | "zipf" ->
      (* Keep the hot-pair matrix proportional to n so locality (and
         rejection-sampling cost) stays comparable across sizes. *)
      let support = max n (min (4 * n) (n * (n - 1))) in
      Skewed.generate ~n ~m ~support ~seed ()
  | "bursty" -> Bursty.generate ~n ~m ~seed ()
  | "uniform" -> Uniform.generate ~n ~m ~seed ()
  | _ ->
      invalid_arg
        (Printf.sprintf "Catalog.scaled: unknown family %S (known: %s)" key
           (String.concat ", " scaled_keys))
