type scale = Smoke | Default | Full

type entry = {
  key : string;
  description : string;
  n : int;
  generate : scale -> seed:int -> Trace.t;
}

let all =
  [
    {
      key = "projector";
      description = "ProjecToR-like: skewed fixed matrix, i.i.d. (n=128)";
      n = 128;
      generate =
        (fun scale ~seed ->
          match scale with
          | Smoke -> Projector.generate ~n:32 ~m:2_000 ~support:300 ~seed ()
          | Default | Full -> Projector.generate ~seed ());
    };
    {
      key = "skewed";
      description = "Zipf pairs, i.i.d. (n=1024)";
      n = 1024;
      generate =
        (fun scale ~seed ->
          match scale with
          | Smoke -> Skewed.generate ~n:64 ~m:2_000 ~support:256 ~seed ()
          | Default | Full -> Skewed.generate ~seed ());
    };
    {
      key = "pfabric";
      description = "pFabric-like flow bursts (n=144)";
      n = 144;
      generate =
        (fun scale ~seed ->
          match scale with
          | Smoke -> Pfabric.generate ~n:36 ~m:2_000 ~seed ()
          | Default -> Pfabric.generate ~m:50_000 ~seed ()
          | Full -> Pfabric.generate ~m:1_000_000 ~seed ());
    };
    {
      key = "bursty";
      description = "geometric repeat bursts, uniform pairs (n=1024)";
      n = 1024;
      generate =
        (fun scale ~seed ->
          match scale with
          | Smoke -> Bursty.generate ~n:64 ~m:2_000 ~seed ()
          | Default | Full -> Bursty.generate ~seed ());
    };
    {
      key = "hpc";
      description = "2-D stencil + binomial collectives (n=1024)";
      n = 1024;
      generate =
        (fun scale ~seed ->
          match scale with
          | Smoke -> Hpc.generate ~side:8 ~m:2_000 ~seed ()
          | Default -> Hpc.generate ~m:50_000 ~seed ()
          | Full -> Hpc.generate ~m:1_000_000 ~seed ());
    };
    {
      key = "datastructure";
      description = "root destination, normal sources (n=128)";
      n = 128;
      generate =
        (fun scale ~seed ->
          match scale with
          | Smoke -> Datastructure.generate ~n:32 ~m:2_000 ~seed ()
          | Default | Full -> Datastructure.generate ~seed ());
    };
    {
      key = "uniform";
      description = "uniform i.i.d. reference (n=128)";
      n = 128;
      generate =
        (fun scale ~seed ->
          match scale with
          | Smoke -> Uniform.generate ~n:32 ~m:2_000 ~seed ()
          | Default | Full -> Uniform.generate ~seed ());
    };
  ]

let find key = List.find (fun e -> e.key = key) all
let keys = List.map (fun e -> e.key) all

let paper_six =
  [ "projector"; "skewed"; "pfabric"; "bursty"; "hpc"; "datastructure" ]
