let generate ?(n = 256) ?(m = 20_000) ?(phases = 2) ?(alpha = 1.2)
    ?(support = 512) ~seed () =
  if n < 2 then invalid_arg "Drifting.generate: n must be >= 2";
  if phases < 1 then invalid_arg "Drifting.generate: phases must be >= 1";
  if phases * support > n * (n - 1) / 2 then
    invalid_arg "Drifting.generate: support too large for disjoint phases";
  let rng = Simkit.Rng.create seed in
  let seen = Hashtbl.create (4 * phases * support) in
  let phase_pairs =
    Array.init phases (fun _ ->
        let pairs = Array.make support (0, 1) in
        let filled = ref 0 in
        while !filled < support do
          let s = Simkit.Rng.int rng n in
          let d = Simkit.Rng.int rng n in
          if s <> d && not (Hashtbl.mem seen (s, d)) then begin
            Hashtbl.add seen (s, d) ();
            pairs.(!filled) <- (s, d);
            incr filled
          end
        done;
        pairs)
  in
  let zipf = Zipf.create ~alpha ~k:support in
  let per_phase = (m + phases - 1) / phases in
  let requests =
    Array.init m (fun i ->
        let phase = min (phases - 1) (i / per_phase) in
        phase_pairs.(phase).(Zipf.sample zipf rng))
  in
  Trace.make ~name:"drifting" ~n requests
