(** ProjecToR-like workload (Sec. VIII).

    The paper samples m = 10,000 i.i.d. requests from the published
    ProjecToR communication-probability matrix: 128 top-of-rack nodes,
    8,367 active directed pairs, heavily skewed mass.  The dataset
    itself is not redistributable, so we synthesize a matrix with the
    same shape — fixed support of 8,367 directed pairs whose weights
    follow a Zipf law, plus the hot-row structure of a production
    cluster (a small set of heavy racks participate in most heavy
    pairs) — and sample i.i.d. from it, which reproduces the property
    the evaluation depends on: high non-temporal locality, no temporal
    locality. *)

val generate :
  ?n:int -> ?m:int -> ?support:int -> ?alpha:float -> ?hot_fraction:float ->
  seed:int -> unit -> Trace.t
(** Defaults: [n = 128], [m = 10_000], [support = 8367],
    [alpha = 2.0] (the published matrix is heavily concentrated on few pairs), [hot_fraction = 0.25] (heavy pairs are drawn with
    both endpoints in the hot quarter of the racks).

    @raise Invalid_argument if [n < 2], [support] falls outside
    [[n, n * (n - 1)]], or [hot_fraction] is outside [(0, 1]]. *)
