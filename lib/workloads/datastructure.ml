let generate ?(n = 128) ?(m = 10_000) ?(std = 1.6) ~seed () =
  if n < 2 then invalid_arg "Datastructure.generate: n must be >= 2";
  if std <= 0.0 then invalid_arg "Datastructure.generate: std must be positive";
  let rng = Simkit.Rng.create seed in
  let root = (n - 1) / 2 in
  let rec sample_src () =
    let x = Simkit.Rng.normal rng ~mean:(float_of_int root) ~std in
    let v = int_of_float (Float.round x) in
    if v < 0 || v >= n || v = root then sample_src () else v
  in
  let requests = Array.init m (fun _ -> (sample_src (), root)) in
  Trace.make ~name:"datastructure" ~n requests
