(* Load shapes: deterministic arrival schedules over the catalog
   families.  The schedule is pure integer/float arithmetic driven by
   a piecewise rate function — no RNG — so the same shape string
   yields the same birth array on every run; only the request payload
   (src, dst pairs) depends on the seed, via the family generator. *)

type kind =
  | Fixed
  | Rampup of { peak : float }
  | Pausing of { rate : float; on : int; off : int }
  | Shaped of { segments : (int * float) list }

type t = { kind : kind; family : string; n : int; m : int }

let families = Catalog.scaled_keys @ [ "drifting" ]

(* Schedules are bounded: a rate function that cannot deliver [m]
   arrivals within this many rounds is a configuration error, not a
   reason to spin. *)
let horizon = 10_000_000

let validate_kind = function
  | Fixed -> ()
  | Rampup { peak } ->
      if not (peak > 0.) then invalid_arg "Shape.make: rampup peak must be > 0"
  | Pausing { rate; on; off } ->
      if not (rate > 0.) then invalid_arg "Shape.make: pausing rate must be > 0";
      if on < 1 then invalid_arg "Shape.make: pausing on must be >= 1";
      if off < 0 then invalid_arg "Shape.make: pausing off must be >= 0"
  | Shaped { segments } ->
      if List.length segments = 0 then
        invalid_arg "Shape.make: shaped needs segments";
      List.iter
        (fun (rounds, rate) ->
          if rounds < 1 then
            invalid_arg "Shape.make: shaped segment rounds must be >= 1";
          if rate < 0. then
            invalid_arg "Shape.make: shaped segment rate must be >= 0")
        segments;
      if not (List.exists (fun (_, rate) -> rate > 0.) segments) then
        invalid_arg "Shape.make: shaped needs a positive-rate segment"

let make ~kind ~family ~n ~m =
  if not (List.exists (String.equal family) families) then
    invalid_arg
      (Printf.sprintf "Shape.make: unknown family %S (expected %s)" family
         (String.concat ", " families));
  if n < 2 then invalid_arg "Shape.make: n must be >= 2";
  if m < 1 then invalid_arg "Shape.make: m must be >= 1";
  validate_kind kind;
  { kind; family; n; m }

(* Emit [m] births by integrating [rate_at] one round at a time:
   fractional requests-per-round accumulate as credit, and each whole
   unit of credit stamps the next arrival into the current round. *)
let births_by_rate ~m rate_at =
  let births = Array.make m 0 in
  let credit = ref 0. in
  let i = ref 0 in
  let t = ref 0 in
  while !i < m do
    if !t >= horizon then
      invalid_arg
        (Printf.sprintf
           "Shape.births: rate too low to emit %d requests within %d rounds" m
           horizon);
    credit := !credit +. rate_at !t;
    while !credit >= 1. && !i < m do
      births.(!i) <- !t;
      incr i;
      credit := !credit -. 1.
    done;
    incr t
  done;
  births

let births { kind; m; _ } =
  match kind with
  | Fixed -> Array.make m 0
  | Rampup { peak } ->
      (* Linear ramp 0 -> peak over [ramp] rounds sized so the area
         under the rate curve is exactly [m]; past the ramp the rate
         holds at [peak] to absorb rounding shortfall. *)
      let ramp = Float.max 1. (2. *. float_of_int m /. peak) in
      births_by_rate ~m (fun t ->
          let x = Float.min (float_of_int t +. 0.5) ramp in
          peak *. x /. ramp)
  | Pausing { rate; on; off } ->
      let cycle = on + off in
      births_by_rate ~m (fun t -> if t mod cycle < on then rate else 0.)
  | Shaped { segments } ->
      let segs = Array.of_list segments in
      let last_positive =
        Array.fold_left
          (fun acc (_, rate) -> if rate > 0. then rate else acc)
          0. segs
      in
      let ends = Array.make (Array.length segs) 0 in
      let _ =
        Array.fold_left
          (fun (acc, i) (rounds, _) ->
            ends.(i) <- acc + rounds;
            (acc + rounds, i + 1))
          (0, 0) segs
      in
      births_by_rate ~m (fun t ->
          let rec find i =
            if i >= Array.length segs then last_positive
            else if t < ends.(i) then snd segs.(i)
            else find (i + 1)
          in
          find 0)

let kind_name = function
  | Fixed -> "fixed"
  | Rampup _ -> "rampup"
  | Pausing _ -> "pausing"
  | Shaped _ -> "shaped"

let label t = kind_name t.kind ^ ":" ^ t.family

let to_string t =
  let params =
    match t.kind with
    | Fixed -> []
    | Rampup { peak } -> [ Printf.sprintf "peak=%g" peak ]
    | Pausing { rate; on; off } ->
        [ Printf.sprintf "rate=%g" rate; Printf.sprintf "on=%d" on;
          Printf.sprintf "off=%d" off ]
    | Shaped { segments } ->
        [ "seg="
          ^ String.concat "+"
              (List.map
                 (fun (rounds, rate) -> Printf.sprintf "%dx%g" rounds rate)
                 segments) ]
  in
  let params =
    Printf.sprintf "n=%d" t.n :: Printf.sprintf "m=%d" t.m :: params
  in
  Printf.sprintf "%s:%s:%s" (kind_name t.kind) t.family
    (String.concat "," params)

let schedule t ~seed =
  let base =
    if String.equal t.family "drifting" then
      Drifting.generate ~n:t.n ~m:t.m ~seed ()
    else Catalog.scaled t.family ~n:t.n ~m:t.m ~seed
  in
  let trace = Trace.with_births base (births t) in
  { trace with Trace.name = label t }

(* --- parsing -------------------------------------------------------- *)

let ( let* ) r f = Result.bind r f

let parse_int key v =
  match int_of_string_opt v with
  | Some i -> Ok i
  | None -> Error (Printf.sprintf "shape: %s expects an integer, got %S" key v)

let parse_float key v =
  match float_of_string_opt v with
  | Some f -> Ok f
  | None -> Error (Printf.sprintf "shape: %s expects a number, got %S" key v)

let parse_seg v =
  let parse_one part =
    match String.split_on_char 'x' part with
    | [ rounds; rate ] ->
        let* rounds = parse_int "seg rounds" rounds in
        let* rate = parse_float "seg rate" rate in
        Ok (rounds, rate)
    | _ ->
        Error
          (Printf.sprintf "shape: seg expects <rounds>x<rate>, got %S" part)
  in
  List.fold_left
    (fun acc part ->
      let* acc = acc in
      let* seg = parse_one part in
      Ok (seg :: acc))
    (Ok [])
    (String.split_on_char '+' v)
  |> Result.map List.rev

type params = {
  p_n : int;
  p_m : int;
  p_peak : float;
  p_rate : float;
  p_on : int;
  p_off : int;
  p_seg : (int * float) list;
}

let defaults =
  {
    p_n = 256;
    p_m = 10_000;
    p_peak = 4.;
    p_rate = 4.;
    p_on = 50;
    p_off = 200;
    (* A flash crowd: background trickle, short spike, recovery. *)
    p_seg = [ (300, 2.); (40, 50.); (300, 2.) ];
  }

let parse_param acc kv =
  match String.index_opt kv '=' with
  | None -> Error (Printf.sprintf "shape: expected key=value, got %S" kv)
  | Some eq -> (
      let key = String.sub kv 0 eq in
      let v = String.sub kv (eq + 1) (String.length kv - eq - 1) in
      match key with
      | "n" ->
          let* n = parse_int key v in
          Ok { acc with p_n = n }
      | "m" ->
          let* m = parse_int key v in
          Ok { acc with p_m = m }
      | "peak" ->
          let* peak = parse_float key v in
          Ok { acc with p_peak = peak }
      | "rate" ->
          let* rate = parse_float key v in
          Ok { acc with p_rate = rate }
      | "on" ->
          let* on = parse_int key v in
          Ok { acc with p_on = on }
      | "off" ->
          let* off = parse_int key v in
          Ok { acc with p_off = off }
      | "seg" ->
          let* seg = parse_seg v in
          Ok { acc with p_seg = seg }
      | _ -> Error (Printf.sprintf "shape: unknown parameter %S" key))

let grammar =
  "<kind>:<family>[:<key>=<value>,...] where <kind> is fixed, rampup, \
   pausing or shaped; <family> is " ^ String.concat ", " families
  ^ "; keys: n, m (all), peak (rampup), rate/on/off (pausing), \
     seg=<rounds>x<rate>+... (shaped).  Example: \
     shaped:zipf:n=128,m=4000,seg=300x2+40x50+300x2"

let of_string s =
  let kind_str, family, param_str =
    match String.split_on_char ':' s with
    | [ k; f ] -> (k, f, "")
    | [ k; f; p ] -> (k, f, p)
    | _ -> (s, "", "")
  in
  if String.equal family "" then
    Error (Printf.sprintf "shape: expected %s" grammar)
  else
    let* p =
      if String.equal param_str "" then Ok defaults
      else
        List.fold_left
          (fun acc kv ->
            let* acc = acc in
            parse_param acc kv)
          (Ok defaults)
          (String.split_on_char ',' param_str)
    in
    let* kind =
      match kind_str with
      | "fixed" -> Ok Fixed
      | "rampup" -> Ok (Rampup { peak = p.p_peak })
      | "pausing" -> Ok (Pausing { rate = p.p_rate; on = p.p_on; off = p.p_off })
      | "shaped" -> Ok (Shaped { segments = p.p_seg })
      | k ->
          Error
            (Printf.sprintf
               "shape: unknown kind %S (expected fixed, rampup, pausing or \
                shaped)"
               k)
    in
    match make ~kind ~family ~n:p.p_n ~m:p.p_m with
    | t -> Ok t
    | exception Invalid_argument msg -> Error msg
