(** The Skewed synthetic workload (Sec. VIII): high non-temporal
    locality, essentially no temporal locality.

    Communication pairs are ranked and sampled i.i.d. from a Zipf
    distribution (the approach of Avin et al. [1]); the rank→pair
    assignment is a random injection so key adjacency carries no
    signal.  Paper parameters: n = 1024, m = 10,000. *)

val generate :
  ?n:int -> ?m:int -> ?alpha:float -> ?support:int -> seed:int -> unit ->
  Trace.t
(** Defaults: [n = 1024], [m = 10_000], [alpha = 2.0], [support =
    4096] distinct hot pairs.

    @raise Invalid_argument if [n < 2] or [support] falls outside
    [[n, n * (n - 1)]]. *)

val generate_with_entropy :
  ?n:int -> ?m:int -> ?support:int -> entropy:float -> seed:int -> unit ->
  Trace.t
(** The paper's parameterization (Sec. VIII): the Zipf exponent is
    solved analytically so the pair distribution has the requested
    Shannon entropy (bits, in [(0, log2 support)]). *)
