let random_distinct_pairs rng ~n ~count =
  let seen = Hashtbl.create (2 * count) in
  let pairs = Array.make count (0, 1) in
  let filled = ref 0 in
  while !filled < count do
    let s = Simkit.Rng.int rng n in
    let d = Simkit.Rng.int rng n in
    if s <> d && not (Hashtbl.mem seen (s, d)) then begin
      Hashtbl.add seen (s, d) ();
      pairs.(!filled) <- (s, d);
      incr filled
    end
  done;
  pairs

let generate ?(n = 1024) ?(m = 10_000) ?(alpha = 2.0) ?(support = 4096) ~seed () =
  if n < 2 then invalid_arg "Skewed.generate: n must be >= 2";
  if support < n then
    invalid_arg
      (Printf.sprintf
         "Skewed.generate: support %d < n %d (the Zipf pair matrix would \
          leave nodes unused; pass a support >= n)"
         support n);
  if support > n * (n - 1) then invalid_arg "Skewed.generate: support too large";
  let rng = Simkit.Rng.create seed in
  let pairs = random_distinct_pairs rng ~n ~count:support in
  let zipf = Zipf.create ~alpha ~k:support in
  let requests =
    Array.init m (fun _ ->
        let rank = Zipf.sample zipf rng in
        pairs.(rank))
  in
  Trace.make ~name:"skewed" ~n requests

let generate_with_entropy ?n ?m ?(support = 4096) ~entropy ~seed () =
  (* The paper fixes the Zipf parameters analytically from a target
     entropy (Sec. VIII): invert H(alpha) by bisection. *)
  let alpha = Zipf.alpha_for_entropy ~k:support ~target:entropy in
  generate ?n ?m ~alpha ~support ~seed ()
