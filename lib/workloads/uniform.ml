let generate ?(n = 128) ?(m = 10_000) ~seed () =
  if n < 2 then invalid_arg "Uniform.generate: n must be >= 2";
  let rng = Simkit.Rng.create seed in
  let requests =
    Array.init m (fun _ -> (Simkit.Rng.int rng n, Simkit.Rng.int rng n))
  in
  Trace.make ~name:"uniform" ~n requests
