let generate ?(n = 1024) ?(m = 10_000) ?(mean_burst = 50.0) ~seed () =
  if n < 2 then invalid_arg "Bursty.generate: n must be >= 2";
  if mean_burst < 1.0 then invalid_arg "Bursty.generate: mean_burst must be >= 1";
  let rng = Simkit.Rng.create seed in
  let fresh_pair () =
    let s = Simkit.Rng.int rng n in
    let d = Simkit.Rng.int rng n in
    if s = d then (s, (d + 1) mod n) else (s, d)
  in
  let continue_p = 1.0 -. (1.0 /. mean_burst) in
  let requests = Array.make m (0, 0) in
  let current = ref (fresh_pair ()) in
  for i = 0 to m - 1 do
    requests.(i) <- !current;
    if Simkit.Rng.float rng 1.0 >= continue_p then current := fresh_pair ()
  done;
  Trace.make ~name:"bursty" ~n requests
