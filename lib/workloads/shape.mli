(** Time-varying load shapes: arrival-schedule generators layered over
    the request catalog, the serve-mode analogue of Clue2's workload
    taxonomy (fixed / rampup / pausing / shaped).  A shape decides
    {e when} requests arrive; {e what} they ask for still comes from
    the seeded catalog families, so a (shape, family, seed) triple is
    fully deterministic and replayable.

    The textual grammar (accepted by {!of_string}) is

    {v
    <shape>   ::= <kind> ":" <family> [ ":" <params> ]
    <kind>    ::= fixed | rampup | pausing | shaped
    <family>  ::= pfabric | hpc | skewed | zipf | bursty | uniform
                | drifting
    <params>  ::= <key> "=" <value> ("," <key> "=" <value>)*
    v}

    with the common keys [n] (nodes) and [m] (requests), plus
    per-kind keys: [peak] (rampup, requests/round at the end of the
    ramp), [rate]/[on]/[off] (pausing, requests/round during a burst
    and the burst/idle durations in rounds), and [seg] (shaped, a
    ["+"]-separated list of [<rounds>x<rate>] segments, e.g.
    [seg=300x2+40x50+300x2] for a flash crowd). *)

type kind =
  | Fixed
      (** The whole backlog arrives at round 0: maximum pressure for a
          fixed number of requests (the closed-loop batch setting). *)
  | Rampup of { peak : float }
      (** Arrival rate grows linearly from zero to [peak]
          requests/round; the ramp length is derived so the stream
          carries exactly [m] requests. *)
  | Pausing of { rate : float; on : int; off : int }
      (** Bursts of [rate] requests/round for [on] rounds separated by
          [off] fully idle rounds. *)
  | Shaped of { segments : (int * float) list }
      (** Piecewise-constant rate: each [(rounds, rate)] segment in
          order; if the segments end before [m] arrivals the last
          positive rate continues. *)

type t = {
  kind : kind;
  family : string;  (** Catalog family (or ["drifting"]). *)
  n : int;
  m : int;
}

val families : string list
(** The request families a shape can draw from: the catalog's scaled
    families plus ["drifting"] (the counter-reset ablation stream). *)

val make : kind:kind -> family:string -> n:int -> m:int -> t
(** @raise Invalid_argument on an unknown family, [n < 2], [m < 1] or
    out-of-range shape parameters. *)

val of_string : string -> (t, string) result
(** Parse the grammar above.  Defaults: [n = 256], [m = 10_000],
    [peak = 4.0], [rate = 4.0], [on = 50], [off = 200] and a
    flash-crowd [seg] for [shaped]. *)

val to_string : t -> string
(** Canonical round-trippable form ([of_string (to_string t) = Ok t]). *)

val label : t -> string
(** Short ["kind:family"] tag for report rows. *)

val births : t -> int array
(** The arrival schedule alone: [m] sorted, non-negative round
    numbers.  Pure shape arithmetic — no RNG — so it is identical
    across seeds and runs. *)

val schedule : t -> seed:int -> Trace.t
(** Materialize the shaped stream: requests from the family generator
    at [seed], births from {!births}.  Deterministic per
    [(shape, seed)]. *)

val grammar : string
(** One-paragraph usage text for [--help] screens. *)
