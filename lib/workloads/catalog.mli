(** The named workload catalog used by the experiment harness: the six
    families of the paper's evaluation plus the uniform reference,
    each at the paper's size ("full"), a scaled-down default that
    keeps every figure reproducible in minutes, or a tiny smoke-test
    size that keeps the full matrix under a few seconds (CI and the
    [bench-smoke] harness mode). *)

type scale = Smoke | Default | Full

type entry = {
  key : string;  (** e.g. "projector" *)
  description : string;
      (** One-line summary; its "(n=...)" suffix is derived from the
          [n] field, never hand-written. *)
  n : int;
  generate : scale -> seed:int -> Trace.t;
}

val all : entry list
(** projector, skewed, pfabric, bursty, hpc, datastructure, uniform. *)

val find : string -> entry
(** @raise Not_found for an unknown key. *)

val keys : string list

val paper_six : string list
(** The six workloads of Figures 2-4, in the paper's grouping order. *)

val scaled_keys : string list
(** The families with genuine (n, m) scaling knobs: pfabric, hpc,
    skewed (alias zipf), bursty, uniform. *)

val scaled : string -> n:int -> m:int -> seed:int -> Trace.t
(** [scaled key ~n ~m ~seed] generates family [key] at an arbitrary
    size — the forest sweeps use it for n from 1k to 1M.  "hpc" rounds
    [n] down to the nearest square (the returned trace's [n] field is
    authoritative); "skewed"/"zipf" size the hot-pair support
    proportionally to [n].

    @raise Invalid_argument for an unknown family, [n < 2] or
    [m < 1]. *)
