(** The named workload catalog used by the experiment harness: the six
    families of the paper's evaluation plus the uniform reference,
    each at the paper's size ("full"), a scaled-down default that
    keeps every figure reproducible in minutes, or a tiny smoke-test
    size that keeps the full matrix under a few seconds (CI and the
    [bench-smoke] harness mode). *)

type scale = Smoke | Default | Full

type entry = {
  key : string;  (** e.g. "projector" *)
  description : string;
  n : int;
  generate : scale -> seed:int -> Trace.t;
}

val all : entry list
(** projector, skewed, pfabric, bursty, hpc, datastructure, uniform. *)

val find : string -> entry
(** @raise Not_found for an unknown key. *)

val keys : string list

val paper_six : string list
(** The six workloads of Figures 2-4, in the paper's grouping order. *)
