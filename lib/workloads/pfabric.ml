type flow = { pair : int * int; mutable remaining : int }

let pareto rng ~shape ~scale =
  let u = 1.0 -. Simkit.Rng.float rng 1.0 in
  scale /. Float.pow u (1.0 /. shape)

let generate ?(n = 144) ?(m = 100_000) ?(mean_flow = 300.0) ?(pareto_shape = 1.5)
    ?(concurrency = 4) ~seed () =
  if n < 2 then invalid_arg "Pfabric.generate: n must be >= 2";
  if concurrency < 1 then invalid_arg "Pfabric.generate: concurrency must be >= 1";
  let rng = Simkit.Rng.create seed in
  (* Pareto with mean = scale * shape / (shape - 1): choose scale to
     match the requested mean flow size. *)
  let scale = mean_flow *. (pareto_shape -. 1.0) /. pareto_shape in
  let fresh_flow () =
    let s = Simkit.Rng.int rng n in
    let d = Simkit.Rng.int rng n in
    let pair = if s = d then (s, (d + 1) mod n) else (s, d) in
    let size = max 1 (int_of_float (pareto rng ~shape:pareto_shape ~scale)) in
    { pair; remaining = size }
  in
  let active = Array.init concurrency (fun _ -> fresh_flow ()) in
  let requests =
    Array.init m (fun _ ->
        let i = Simkit.Rng.int rng concurrency in
        let f = active.(i) in
        let pair = f.pair in
        f.remaining <- f.remaining - 1;
        if f.remaining <= 0 then active.(i) <- fresh_flow ();
        pair)
  in
  Trace.make ~name:"pfabric" ~n requests
