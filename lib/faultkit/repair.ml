module T = Bstnet.Topology

(* Node ids are ints (see the no-poly-compare lint rule). *)
let ( = ) : int -> int -> bool = Int.equal

type damage = {
  torn : int;
  demoted : int;
  counter_torn : int;
  counter_demoted : int;
}

let tear t x =
  let p = T.parent t x in
  if p = T.nil then invalid_arg "Faultkit.Repair.tear: node is the root";
  (* Counters must be read before the surgery: afterwards the pair's
     aggregates are stale and [T.counter] is garbage. *)
  let counter_torn = T.counter t x and counter_demoted = T.counter t p in
  T.rotate_up_torn t x;
  { torn = x; demoted = p; counter_torn; counter_demoted }

let heal t d =
  let x = d.torn in
  (* Roll forward.  The torn surgery already set x's parent to the old
     grandparent (or nil); only the downward pointer is stale.  x lands
     on the same side of the grandparent its old parent occupied (BST
     order: x came from p's subtree), so [set_child] overwrites exactly
     the stale slot. *)
  let g = T.parent t x in
  if g = T.nil then T.set_root t x else T.set_child t ~parent:g ~child:x;
  (* Derived caches, bottom-up: the demoted node first (its children
     are final), then the promoted node on top of it. *)
  T.repair_local t d.demoted ~counter:d.counter_demoted;
  T.repair_local t x ~counter:d.counter_torn
