(** Deterministic fault plans.

    A plan is a pure description of the faults a chaos run injects: a
    seed plus a list of clauses.  The same plan against the same
    executor inputs reproduces the same run bit for bit — every random
    decision is drawn from {!Simkit.Rng} streams split from the plan
    seed, never from wall-clock or global state.

    Clauses come in two families.  {e Scheduled} crashes fire at round
    boundaries ({!at_round} once, {!periodic} repeatedly) and pick
    their victims with a {!pick} strategy; {e rate} clauses ([lose],
    [duplicate], [delay], [abort_rotations]) are Bernoulli draws
    consulted at step-commit time.  The root is never crashed (it
    anchors routing and update delivery), so every plan keeps the run
    live: crash windows are finite, lost messages re-arm rather than
    die, and the run still drains.

    {!to_string}/{!of_string} round-trip a plan through one line of
    text, so a failing chaos run is reproducible from its log line. *)

type pick =
  | Deepest  (** The currently deepest non-root node (ties: smallest key). *)
  | Random_nodes of float  (** Each non-root node, independently, at this rate. *)
  | Node of int  (** One specific node (ignored if it is the root). *)

type schedule =
  | At_round of int
  | Every of { every : int; offset : int }
      (** Fires at rounds [offset], [offset + every], ... *)

type clause =
  | Crash of { pick : pick; at : schedule; duration : int }
      (** Picked nodes go down for [duration] rounds. *)
  | Lose of float
      (** Per edge-crossing loss rate: the message is dropped and
          re-armed at its source with its original birth. *)
  | Duplicate of float
      (** Per committing data-message step: a twin with the same birth
          joins the network (its weight update stays unique). *)
  | Delay of { rate : float; rounds : int }
      (** Per committing step: the message sleeps for [rounds]. *)
  | Abort_rotations of float
      (** Per committing rotation step: the rotation tears mid-flight
          and the self-healing repair protocol runs. *)

type t = { seed : int; clauses : clause list }

val make : seed:int -> clause list -> t
(** Validates every clause: rates in [0, 1], durations and periods
    >= 1, rounds and offsets >= 0.  @raise Invalid_argument otherwise.
    [make ~seed []] is a valid empty plan (no faults ever fire). *)

val is_empty : t -> bool

(** {2 Combinators} *)

val at_round : int -> schedule
val periodic : ?offset:int -> int -> schedule
val deepest : pick
val random_nodes : rate:float -> pick
val node : int -> pick
val crash : at:schedule -> duration:int -> pick -> clause
val lose : rate:float -> clause
val duplicate : rate:float -> clause
val delay : rate:float -> rounds:int -> clause
val abort_rotations : rate:float -> clause

(** {2 Text round-trip}

    Grammar (single line, space-separated clauses):
    {v
    seed=42 crash@round(5):deepest*12 crash@every(40,0):random(0.1)*8
    crash@round(9):node(3)*4 lose=0.05 dup=0.01 delay=0.02x3 abort=0.1
    v}
    Rates are printed with enough digits to re-parse to the exact same
    float, so [of_string (to_string p)] always yields [p]. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parse failures return [Error] with a human-readable reason. *)

val of_string_exn : string -> t
(** @raise Invalid_argument on a parse failure. *)

val pp : Format.formatter -> t -> unit
