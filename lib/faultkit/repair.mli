(** Self-healing repair of torn rotations.

    The fault model: {!Bstnet.Topology.rotate_up} is a node-local
    composite of (a) the rotating pair's link surgery, (b) swinging
    the node above the pair to the promoted node, and (c) recomputing
    the pair's derived caches — interval labels and weight aggregates
    — from its durable per-node counters.  A rotation that "dies
    mid-flight" completes (a) but not (b) or (c)
    ({!Bstnet.Topology.rotate_up_torn}), leaving a tree that fails
    {!Bstnet.Check.structure}, [interval_labels] and [weights].

    Repair {e rolls the rotation forward}: the promoted node still
    knows its stale parent, so the protocol re-attaches it there (or
    declares it root) and rebuilds the pair's derived state bottom-up
    from the counters captured at tear time — the durable state a real
    node would recover from its log.  After [heal] the tree is exactly
    the tree the untorn rotation would have produced, and
    {!Bstnet.Check.all} holds again. *)

type damage = {
  torn : int;  (** The node whose promotion tore ([x]). *)
  demoted : int;  (** Its pre-tear parent, now its child ([p]). *)
  counter_torn : int;  (** Durable counter [c(x)] captured pre-tear. *)
  counter_demoted : int;  (** Durable counter [c(p)] captured pre-tear. *)
}

val tear : Bstnet.Topology.t -> int -> damage
(** [tear t x] captures the pair's durable counters, performs the torn
    rotation promoting [x], and returns the damage record [heal]
    needs.  @raise Invalid_argument if [x] is the root. *)

val heal : Bstnet.Topology.t -> damage -> unit
(** Complete the torn rotation: swing the stale parent (or root)
    pointer to the promoted node, then restore interval labels and
    weight aggregates of the demoted and promoted nodes, in that
    (bottom-up) order, from the captured counters. *)
