module T = Bstnet.Topology

(* Node ids and rounds are ints (see the no-poly-compare lint rule). *)
let ( = ) : int -> int -> bool = Int.equal
let ( <> ) a b = not (Int.equal a b)

type snapshot = {
  crashes : int;
  parks : int;
  lost : int;
  duplicated : int;
  delayed : int;
  aborted_rotations : int;
  repairs : int;
}

type t = {
  plan : Plan.t;
  n : int;
  (* Node v is down at round r iff up_at.(v) > r. *)
  up_at : int array;
  mutable down_count : int;
  mutable cur_round : int;
  rng_crash : Simkit.Rng.t;
  rng_loss : Simkit.Rng.t;
  rng_dup : Simkit.Rng.t;
  rng_delay : Simkit.Rng.t;
  rng_abort : Simkit.Rng.t;
  (* Rates resolved once from the plan; the last clause of each rate
     family wins.  A zero rate never consumes a draw. *)
  loss_rate : float;
  dup_rate : float;
  delay_rate : float;
  delay_rounds : int;
  abort_rate : float;
  mutable crashes : int;
  mutable parks : int;
  mutable lost : int;
  mutable duplicated : int;
  mutable delayed : int;
  mutable repairs : int;
}

let create (plan : Plan.t) ~n =
  if n < 1 then invalid_arg "Faultkit.Injector.create: n must be >= 1";
  (* Fixed split order gives each fault family its own stream. *)
  let base = Simkit.Rng.create plan.Plan.seed in
  let rng_crash = Simkit.Rng.split base in
  let rng_loss = Simkit.Rng.split base in
  let rng_dup = Simkit.Rng.split base in
  let rng_delay = Simkit.Rng.split base in
  let rng_abort = Simkit.Rng.split base in
  let loss_rate = ref 0.0
  and dup_rate = ref 0.0
  and delay_rate = ref 0.0
  and delay_rounds = ref 1
  and abort_rate = ref 0.0 in
  List.iter
    (fun (c : Plan.clause) ->
      match c with
      | Plan.Crash _ -> ()
      | Plan.Lose r -> loss_rate := r
      | Plan.Duplicate r -> dup_rate := r
      | Plan.Delay { rate; rounds } ->
          delay_rate := rate;
          delay_rounds := rounds
      | Plan.Abort_rotations r -> abort_rate := r)
    plan.Plan.clauses;
  {
    plan;
    n;
    up_at = Array.make n 0;
    down_count = 0;
    cur_round = -1;
    rng_crash;
    rng_loss;
    rng_dup;
    rng_delay;
    rng_abort;
    loss_rate = !loss_rate;
    dup_rate = !dup_rate;
    delay_rate = !delay_rate;
    delay_rounds = !delay_rounds;
    abort_rate = !abort_rate;
    crashes = 0;
    parks = 0;
    lost = 0;
    duplicated = 0;
    delayed = 0;
    repairs = 0;
  }

let plan inj = inj.plan
let is_down inj v = inj.up_at.(v) > inj.cur_round
let any_down inj = inj.down_count > 0

let fires (at : Plan.schedule) ~round =
  match at with
  | Plan.At_round r -> r = round
  | Plan.Every { every; offset } ->
      round >= offset && (round - offset) mod every = 0

(* The currently deepest non-root node that is still up (ties broken
   by smallest key) — the targeted-pick twin of
   [Runtime.Adversary.deepest_leaf], evaluated against the live tree
   at firing time. *)
let deepest_alive inj t =
  let root = T.root t in
  let best = ref T.nil and best_depth = ref (-1) in
  for v = 0 to inj.n - 1 do
    if v <> root && not (is_down inj v) then begin
      let d = T.depth t v in
      if d > !best_depth then begin
        best := v;
        best_depth := d
      end
    end
  done;
  !best

let emit sink payload =
  if Obskit.Sink.enabled sink then Obskit.Sink.record sink payload

let crash_node inj sink ~round ~duration v =
  inj.up_at.(v) <- round + duration;
  inj.down_count <- inj.down_count + 1;
  inj.crashes <- inj.crashes + 1;
  emit sink (fun () ->
      Obskit.Event.Node_down { round; node = v; until = round + duration })

let fire_crash inj t sink ~round (pick : Plan.pick) ~duration =
  let root = T.root t in
  match pick with
  | Plan.Deepest ->
      let v = deepest_alive inj t in
      if v <> T.nil then crash_node inj sink ~round ~duration v
  | Plan.Node v ->
      if v < inj.n && v <> root && not (is_down inj v) then
        crash_node inj sink ~round ~duration v
  | Plan.Random_nodes rate ->
      if rate > 0.0 then
        (* One draw per node, in node order, down or not: the draw
           sequence depends only on (round, n), never on which nodes
           happen to be down, which keeps replays independent of
           earlier fault outcomes. *)
        for v = 0 to inj.n - 1 do
          let hit = Simkit.Rng.float inj.rng_crash 1.0 < rate in
          if hit && v <> root && not (is_down inj v) then
            crash_node inj sink ~round ~duration v
        done

let begin_round inj t sink ~round =
  inj.cur_round <- round;
  (* Close windows expiring exactly now. *)
  if inj.down_count > 0 then
    for v = 0 to inj.n - 1 do
      if inj.up_at.(v) = round then begin
        inj.down_count <- inj.down_count - 1;
        emit sink (fun () -> Obskit.Event.Node_up { round; node = v })
      end
    done;
  List.iter
    (fun (c : Plan.clause) ->
      match c with
      | Plan.Crash { pick; at; duration } ->
          if fires at ~round then fire_crash inj t sink ~round pick ~duration
      | Plan.Lose _ | Plan.Duplicate _ | Plan.Delay _ | Plan.Abort_rotations _
        ->
          ())
    inj.plan.Plan.clauses

let draw rng rate = rate > 0.0 && Simkit.Rng.float rng 1.0 < rate
let draw_abort inj = draw inj.rng_abort inj.abort_rate

let draw_loss inj ~crossings =
  if inj.loss_rate > 0.0 then begin
    let hit = ref false in
    for _ = 1 to crossings do
      (* Fixed draw count per crossing set: no short-circuit, so the
         stream position never depends on which draw fired. *)
      if Simkit.Rng.float inj.rng_loss 1.0 < inj.loss_rate then hit := true
    done;
    !hit
  end
  else false

let draw_duplicate inj = draw inj.rng_dup inj.dup_rate

let draw_delay inj =
  if draw inj.rng_delay inj.delay_rate then inj.delay_rounds else 0

let note_park inj = inj.parks <- inj.parks + 1
let note_lost inj = inj.lost <- inj.lost + 1
let note_duplicated inj = inj.duplicated <- inj.duplicated + 1
let note_delayed inj = inj.delayed <- inj.delayed + 1
let note_repair inj = inj.repairs <- inj.repairs + 1

let snapshot inj =
  {
    crashes = inj.crashes;
    parks = inj.parks;
    lost = inj.lost;
    duplicated = inj.duplicated;
    delayed = inj.delayed;
    aborted_rotations = inj.repairs;
    repairs = inj.repairs;
  }
