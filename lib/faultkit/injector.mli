(** Runtime instance of a {!Plan} for one execution.

    The injector owns the plan's randomness (independent
    {!Simkit.Rng} streams split from the plan seed, one per fault
    family, so adding a clause of one kind never perturbs another
    kind's draws), the node down/up windows, and the fault counters
    that end up in [Cbnet.Run_stats].  The executor consults it at two
    points: {!begin_round} at the round boundary (crash windows open
    and close, [Node_down]/[Node_up] events fire) and the [draw_*]
    probes at step-commit time.

    Determinism contract: draws happen only for clauses present in
    the plan (a zero-rate family consumes nothing), in a fixed order
    per committing step — abort, loss, duplication, delay — so the
    same plan over the same executor inputs replays bit for bit. *)

type t

type snapshot = {
  crashes : int;  (** Crash windows opened. *)
  parks : int;  (** Turns skipped because a cluster node was down. *)
  lost : int;  (** Messages dropped and re-armed at their source. *)
  duplicated : int;  (** Twin data messages injected. *)
  delayed : int;  (** Messages put to sleep. *)
  aborted_rotations : int;  (** Rotations torn mid-flight. *)
  repairs : int;  (** Repair protocol runs (one per aborted rotation). *)
}

val create : Plan.t -> n:int -> t
(** [n] is the topology size; node picks stay in [0, n). *)

val plan : t -> Plan.t

val begin_round : t -> Bstnet.Topology.t -> Obskit.Sink.t -> round:int -> unit
(** Advance the injector's clock to [round]: close crash windows that
    expire now (emitting [Node_up]) and fire the plan's crash
    schedules against the {e current} topology (emitting [Node_down]).
    The root and already-down nodes are never picked. *)

val is_down : t -> int -> bool
(** Whether the node is inside a crash window at the current round. *)

val any_down : t -> bool

val draw_abort : t -> bool
(** One Bernoulli draw against the abort rate (no draw at rate 0). *)

val draw_loss : t -> crossings:int -> bool
(** One draw per edge crossing; true if any fires. *)

val draw_duplicate : t -> bool
val draw_delay : t -> int
(** 0 when the delay clause does not fire, else its sleep length. *)

val note_park : t -> unit
val note_lost : t -> unit
val note_duplicated : t -> unit
val note_delayed : t -> unit

val note_repair : t -> unit
(** Counts one aborted rotation and its repair. *)

val snapshot : t -> snapshot
