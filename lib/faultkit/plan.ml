type pick = Deepest | Random_nodes of float | Node of int
type schedule = At_round of int | Every of { every : int; offset : int }

type clause =
  | Crash of { pick : pick; at : schedule; duration : int }
  | Lose of float
  | Duplicate of float
  | Delay of { rate : float; rounds : int }
  | Abort_rotations of float

type t = { seed : int; clauses : clause list }

let at_round r = At_round r
let periodic ?(offset = 0) every = Every { every; offset }
let deepest = Deepest
let random_nodes ~rate = Random_nodes rate
let node v = Node v
let crash ~at ~duration pick = Crash { pick; at; duration }
let lose ~rate = Lose rate
let duplicate ~rate = Duplicate rate
let delay ~rate ~rounds = Delay { rate; rounds }
let abort_rotations ~rate = Abort_rotations rate

let bad fmt = Format.kasprintf invalid_arg fmt

let check_rate what r =
  if not (Float.is_finite r) || r < 0.0 || r > 1.0 then
    bad "Faultkit.Plan.make: %s rate %g outside [0, 1]" what r

let check_clause = function
  | Crash { pick; at; duration } -> (
      if duration < 1 then
        bad "Faultkit.Plan.make: crash duration %d < 1" duration;
      (match at with
      | At_round r when r < 0 -> bad "Faultkit.Plan.make: crash round %d < 0" r
      | Every { every; _ } when every < 1 ->
          bad "Faultkit.Plan.make: crash period %d < 1" every
      | Every { offset; _ } when offset < 0 ->
          bad "Faultkit.Plan.make: crash offset %d < 0" offset
      | At_round _ | Every _ -> ());
      match pick with
      | Random_nodes r -> check_rate "crash pick" r
      | Node v when v < 0 -> bad "Faultkit.Plan.make: crash node %d < 0" v
      | Deepest | Node _ -> ())
  | Lose r -> check_rate "loss" r
  | Duplicate r -> check_rate "duplication" r
  | Delay { rate; rounds } ->
      check_rate "delay" rate;
      if rounds < 1 then bad "Faultkit.Plan.make: delay of %d rounds < 1" rounds
  | Abort_rotations r -> check_rate "abort" r

let make ~seed clauses =
  List.iter check_clause clauses;
  { seed; clauses }

let is_empty t = match t.clauses with [] -> true | _ :: _ -> false

(* Shortest float rendering that re-parses to the exact same value, so
   the text form is bit-faithful. *)
let float_to_string x =
  let s = Printf.sprintf "%.12g" x in
  if Float.equal (float_of_string s) x then s else Printf.sprintf "%.17g" x

let pick_to_string = function
  | Deepest -> "deepest"
  | Random_nodes r -> Printf.sprintf "random(%s)" (float_to_string r)
  | Node v -> Printf.sprintf "node(%d)" v

let schedule_to_string = function
  | At_round r -> Printf.sprintf "round(%d)" r
  | Every { every; offset } -> Printf.sprintf "every(%d,%d)" every offset

let clause_to_string = function
  | Crash { pick; at; duration } ->
      Printf.sprintf "crash@%s:%s*%d" (schedule_to_string at)
        (pick_to_string pick) duration
  | Lose r -> Printf.sprintf "lose=%s" (float_to_string r)
  | Duplicate r -> Printf.sprintf "dup=%s" (float_to_string r)
  | Delay { rate; rounds } ->
      Printf.sprintf "delay=%sx%d" (float_to_string rate) rounds
  | Abort_rotations r -> Printf.sprintf "abort=%s" (float_to_string r)

let to_string t =
  String.concat " "
    (Printf.sprintf "seed=%d" t.seed :: List.map clause_to_string t.clauses)

let pp fmt t = Format.pp_print_string fmt (to_string t)

(* --- parsing --- *)

let ( let* ) = Result.bind

(* ["round(5)"] with callee ["round"] -> [Some "5"]. *)
let inside ~callee s =
  let cl = String.length callee and sl = String.length s in
  if
    sl >= cl + 2
    && String.equal (String.sub s 0 cl) callee
    && Char.equal s.[cl] '('
    && Char.equal s.[sl - 1] ')'
  then Some (String.sub s (cl + 1) (sl - cl - 2))
  else None

let parse_int what s =
  match int_of_string_opt s with
  | Some v -> Ok v
  | None -> Error (Printf.sprintf "%s: expected an integer, got %S" what s)

let parse_rate what s =
  match float_of_string_opt s with
  | Some r when Float.is_finite r && r >= 0.0 && r <= 1.0 -> Ok r
  | _ -> Error (Printf.sprintf "%s: expected a rate in [0, 1], got %S" what s)

let parse_pick s =
  match inside ~callee:"random" s with
  | Some r ->
      let* r = parse_rate "random pick" r in
      Ok (Random_nodes r)
  | None -> (
      match inside ~callee:"node" s with
      | Some v ->
          let* v = parse_int "node pick" v in
          Ok (Node v)
      | None ->
          if String.equal s "deepest" then Ok Deepest
          else Error (Printf.sprintf "unknown pick %S" s))

let parse_schedule s =
  match inside ~callee:"round" s with
  | Some r ->
      let* r = parse_int "round schedule" r in
      Ok (At_round r)
  | None -> (
      match inside ~callee:"every" s with
      | Some body -> (
          match String.split_on_char ',' body with
          | [ e ] ->
              let* every = parse_int "period" e in
              Ok (Every { every; offset = 0 })
          | [ e; o ] ->
              let* every = parse_int "period" e in
              let* offset = parse_int "offset" o in
              Ok (Every { every; offset })
          | _ -> Error (Printf.sprintf "bad schedule arguments %S" body))
      | None -> Error (Printf.sprintf "unknown schedule %S" s))

let parse_crash body =
  (* body = SCHED:PICK*DURATION *)
  match String.index_opt body ':' with
  | None -> Error (Printf.sprintf "crash clause %S: missing ':'" body)
  | Some i -> (
      let sched = String.sub body 0 i in
      let rest = String.sub body (i + 1) (String.length body - i - 1) in
      match String.rindex_opt rest '*' with
      | None -> Error (Printf.sprintf "crash clause %S: missing duration" body)
      | Some j ->
          let pick = String.sub rest 0 j in
          let dur = String.sub rest (j + 1) (String.length rest - j - 1) in
          let* at = parse_schedule sched in
          let* pick = parse_pick pick in
          let* duration = parse_int "crash duration" dur in
          Ok (Crash { pick; at; duration }))

let key_value tok =
  match String.index_opt tok '=' with
  | Some i ->
      Some
        ( String.sub tok 0 i,
          String.sub tok (i + 1) (String.length tok - i - 1) )
  | None -> None

let parse_clause tok =
  let crash_prefix = "crash@" in
  if
    String.length tok > String.length crash_prefix
    && String.equal (String.sub tok 0 (String.length crash_prefix)) crash_prefix
  then
    parse_crash
      (String.sub tok (String.length crash_prefix)
         (String.length tok - String.length crash_prefix))
  else
    match key_value tok with
    | Some ("lose", v) ->
        let* r = parse_rate "lose" v in
        Ok (Lose r)
    | Some ("dup", v) ->
        let* r = parse_rate "dup" v in
        Ok (Duplicate r)
    | Some ("abort", v) ->
        let* r = parse_rate "abort" v in
        Ok (Abort_rotations r)
    | Some ("delay", v) -> (
        match String.index_opt v 'x' with
        | None -> Error (Printf.sprintf "delay clause %S: missing xROUNDS" v)
        | Some i ->
            let* rate = parse_rate "delay" (String.sub v 0 i) in
            let* rounds =
              parse_int "delay rounds"
                (String.sub v (i + 1) (String.length v - i - 1))
            in
            Ok (Delay { rate; rounds }))
    | Some (k, _) -> Error (Printf.sprintf "unknown clause %S" k)
    | None -> Error (Printf.sprintf "unparseable token %S" tok)

let of_string s =
  let tokens =
    List.filter
      (fun tok -> not (String.equal tok ""))
      (String.split_on_char ' ' (String.trim s))
  in
  match tokens with
  | [] -> Error "empty plan text"
  | seed_tok :: clause_toks -> (
      let* seed =
        match key_value seed_tok with
        | Some ("seed", v) -> parse_int "seed" v
        | _ -> Error (Printf.sprintf "plan must start with seed=N, got %S" seed_tok)
      in
      let* clauses =
        List.fold_left
          (fun acc tok ->
            let* acc = acc in
            let* c = parse_clause tok in
            Ok (c :: acc))
          (Ok []) clause_toks
      in
      let plan = { seed; clauses = List.rev clauses } in
      match List.iter check_clause plan.clauses with
      | () -> Ok plan
      | exception Invalid_argument msg -> Error msg)

let of_string_exn s =
  match of_string s with
  | Ok p -> p
  | Error msg -> invalid_arg (Printf.sprintf "Faultkit.Plan.of_string: %s" msg)
