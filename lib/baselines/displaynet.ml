module T = Bstnet.Topology

type stage =
  | Waiting  (* endpoints not yet acquired *)
  | Handshake of int  (* leg 1 (syn), 2 (syn-ack) or 3 (ack) in flight *)
  | Splaying
  | Delivered

type request = {
  id : int;
  src : int;
  dst : int;
  birth : int;
  mutable stage : stage;
  mutable courier : int;  (* position of the in-flight handshake signal *)
  mutable src_active : bool;  (* source has learnt it may start splaying *)
  mutable dst_active : bool;
  mutable end_time : int;
  mutable handshake_hops : int;
  mutable delivery_hops : int;
  mutable rotations : int;
  mutable bypasses : int;
  mutable pauses : int;
}

type state = {
  config : Cbnet.Config.t;
  t : T.t;
  trace : (int * int * int) array;
  mutable next_inject : int;
  mutable active : request list;  (* lock holders, priority-sorted; <= n/2 *)
  (* Waiting requests form a FIFO (= priority) queue, amortized with a
     front list and a reversed back list.  Only a prefix is scanned per
     round (see [admit]): once fewer than two endpoints remain free and
     unwanted, no further waiter can possibly acquire. *)
  mutable waiting_front : request list;
  mutable waiting_back : request list;
  mutable waiting_len : int;
  mutable finished : request list;
  mutable live : int;
  mutable free_endpoints : int;  (* nodes not endpoint-locked *)
  mutable bulk_pauses : int;  (* pauses of unscanned waiters, in bulk *)
  owner : int array;  (* endpoint lock: owning request id, or -1 *)
  (* wanted_round.(v) = r when an older request failed to acquire v in
     round r: younger requests must then leave v free (priority
     queueing, so the oldest waiter cannot starve). *)
  wanted_round : int array;
  (* Priority propagation (Sec. VII-A of [11], adapted): a node is
     protected in a round once a higher-priority lock-holding request
     has been processed whose endpoints' root-paths contain it;
     protected nodes cannot take part in lower-priority rotations, so
     no rotation can demote an older request's splay progress. *)
  protected_round : int array;
}

let validate t trace =
  let n = T.n t in
  let last_birth = ref min_int in
  Array.iter
    (fun (birth, src, dst) ->
      if birth < !last_birth then invalid_arg "Displaynet.run: trace not sorted";
      last_birth := birth;
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Displaynet.run: endpoint out of range")
    trace

let create config t trace =
  validate t trace;
  {
    config;
    t;
    trace;
    next_inject = 0;
    active = [];
    waiting_front = [];
    waiting_back = [];
    waiting_len = 0;
    finished = [];
    live = 0;
    free_endpoints = T.n t;
    bulk_pauses = 0;
    owner = Array.make (T.n t) (-1);
    wanted_round = Array.make (T.n t) (-1);
    protected_round = Array.make (T.n t) (-1);
  }

let finish st r ~round =
  r.stage <- Delivered;
  r.end_time <- round;
  st.owner.(r.src) <- -1;
  st.owner.(r.dst) <- -1;
  st.free_endpoints <- st.free_endpoints + (if r.src = r.dst then 1 else 2);
  st.finished <- r :: st.finished;
  st.live <- st.live - 1

let inject st ~round =
  let continue_ = ref true in
  while !continue_ && st.next_inject < Array.length st.trace do
    let birth, src, dst = st.trace.(st.next_inject) in
    if birth > round then continue_ := false
    else begin
      let r =
        {
          id = st.next_inject;
          src;
          dst;
          birth;
          stage = Waiting;
          courier = src;
          src_active = false;
          dst_active = false;
          end_time = -1;
          handshake_hops = 0;
          delivery_hops = 0;
          rotations = 0;
          bypasses = 0;
          pauses = 0;
        }
      in
      st.next_inject <- st.next_inject + 1;
      st.live <- st.live + 1;
      st.waiting_back <- r :: st.waiting_back;
      st.waiting_len <- st.waiting_len + 1
    end
  done

(* The cluster a splay step of [x] below [guard] would lock: the nodes
   whose links the 1-2 rotations modify, plus the subtree anchor. *)
let step_cluster t x ~guard =
  let p = T.parent t x in
  if p = guard then []
  else begin
    let g = T.parent t p in
    if g = guard then if g = T.nil then [ x; p ] else [ x; p; g ]
    else begin
      let gg = T.parent t g in
      if gg = T.nil then [ x; p; g ] else [ x; p; g; gg ]
    end
  end

let cluster_free st ~round cluster =
  List.for_all (fun v -> st.protected_round.(v) <> round) cluster

(* Mark the root-paths of both endpoints: younger requests may not
   rotate anything on them this round. *)
let protect_request st ~round r =
  let rec mark v =
    if v <> T.nil && st.protected_round.(v) <> round then begin
      st.protected_round.(v) <- round;
      mark (T.parent st.t v)
    end
  in
  mark r.src;
  mark r.dst;
  (* The handshake courier also needs a stable path to make progress. *)
  mark r.courier

(* One splay step toward the current meeting point, subject to the
   protection of higher-priority requests. *)
let try_splay_step st ~round r x ~guard =
  let cluster = step_cluster st.t x ~guard in
  if cluster = [] then ()
  else if cluster_free st ~round cluster then begin
    let res = Splay.splay_step st.t x ~guard in
    r.rotations <- r.rotations + res.Splay.rotations
  end
  else r.bypasses <- r.bypasses + 1

let guard_for st r ~node ~other =
  if T.in_subtree st.t ~root:other node then other
  else T.parent st.t (T.lca st.t r.src r.dst)

let splay_phase st ~round r =
  let t = st.t in
  (* Adjacent endpoints exchange the message: one routed hop. *)
  if T.parent t r.dst = r.src || T.parent t r.src = r.dst then begin
    r.delivery_hops <- 1;
    finish st r ~round
  end
  else begin
    (* The source splays until it owns the destination's subtree. *)
    if r.src_active && not (T.in_subtree t ~root:r.src r.dst) then
      try_splay_step st ~round r r.src
        ~guard:(guard_for st r ~node:r.src ~other:r.dst);
    (* The destination splays toward the source's position. *)
    if
      r.dst_active
      && (not (T.parent t r.dst = r.src))
      && not (T.in_subtree t ~root:r.dst r.src)
    then
      try_splay_step st ~round r r.dst
        ~guard:(guard_for st r ~node:r.dst ~other:r.src);
    (* Re-check adjacency reached this very round. *)
    if T.parent t r.dst = r.src || T.parent t r.src = r.dst then begin
      r.delivery_hops <- 1;
      finish st r ~round
    end
  end

let courier_hop st r ~target =
  if r.courier = target then true
  else begin
    r.courier <- T.next_hop st.t ~src:r.courier ~dst:target;
    r.handshake_hops <- r.handshake_hops + 1;
    r.courier = target
  end

let handshake_phase st ~round r leg =
  let target = match leg with 1 -> r.dst | 2 -> r.src | _ -> r.dst in
  if courier_hop st r ~target then begin
    match leg with
    | 1 -> r.stage <- Handshake 2
    | 2 ->
        r.src_active <- true;
        r.stage <- Handshake 3
    | _ ->
        r.dst_active <- true;
        r.stage <- Splaying
  end;
  (* While the final ack travels, the source already splays. *)
  match r.stage with
  | Handshake 3 | Splaying -> if r.src_active then splay_phase st ~round r
  | _ -> ()

(* Scan the waiting queue in priority order, admitting requests whose
   endpoints are free and not wanted by an older waiter.  Stops as soon
   as fewer than two endpoints could still be granted; the unscanned
   tail is charged its pauses in bulk.  Returns the admitted requests
   in priority order. *)
let admit st ~round =
  let admitted = ref [] in
  let failed_rev = ref [] in
  let failed_len = ref 0 in
  (* Upper bound of endpoints still grantable in this scan. *)
  let avail = ref st.free_endpoints in
  (* Cap the number of candidates examined per round: at most n/2
     admissions are possible anyway, and an uncapped scan makes a
     saturated run quadratic in the backlog.  This models the bounded
     per-node request queues of a real deployment. *)
  let scan_budget = ref (2 * T.n st.t) in
  let stop = ref (!avail < 1) in
  while not !stop do
    decr scan_budget;
    if !scan_budget < 0 then stop := true
    else
    match st.waiting_front with
    | [] ->
        if st.waiting_back = [] then stop := true
        else begin
          st.waiting_front <- List.rev st.waiting_back;
          st.waiting_back <- []
        end
    | r :: rest ->
        st.waiting_front <- rest;
        st.waiting_len <- st.waiting_len - 1;
        if
          st.owner.(r.src) < 0
          && st.owner.(r.dst) < 0
          && st.wanted_round.(r.src) <> round
          && st.wanted_round.(r.dst) <> round
        then begin
          st.owner.(r.src) <- r.id;
          st.owner.(r.dst) <- r.id;
          let taken = if r.src = r.dst then 1 else 2 in
          st.free_endpoints <- st.free_endpoints - taken;
          avail := !avail - taken;
          admitted := r :: !admitted
        end
        else begin
          r.pauses <- r.pauses + 1;
          if st.wanted_round.(r.src) <> round then begin
            st.wanted_round.(r.src) <- round;
            if st.owner.(r.src) < 0 then decr avail
          end;
          if r.dst <> r.src && st.wanted_round.(r.dst) <> round then begin
            st.wanted_round.(r.dst) <- round;
            if st.owner.(r.dst) < 0 then decr avail
          end;
          failed_rev := r :: !failed_rev;
          incr failed_len
        end;
        if !avail < 1 then stop := true
  done;
  (* Unscanned waiters could not have acquired anything: bulk-account
     their pauses and leave them queued in order. *)
  st.bulk_pauses <- st.bulk_pauses + st.waiting_len;
  st.waiting_front <- List.rev_append !failed_rev st.waiting_front;
  st.waiting_len <- st.waiting_len + !failed_len;
  List.rev !admitted

let tick st round =
  inject st ~round;
  let process r =
    match r.stage with
    | Delivered | Waiting -> ()
    | Handshake leg -> handshake_phase st ~round r leg
    | Splaying -> splay_phase st ~round r
  in
  let process_and_protect r =
    process r;
    if r.stage <> Delivered then protect_request st ~round r
  in
  List.iter process_and_protect st.active;
  let admitted = admit st ~round in
  (* Admitted requests start their handshake in the same round. *)
  List.iter
    (fun r ->
      if r.src = r.dst then begin
        r.delivery_hops <- 0;
        finish st r ~round
      end
      else begin
        r.stage <- Handshake 1;
        handshake_phase st ~round r 1;
        if r.stage <> Delivered then protect_request st ~round r
      end)
    admitted;
  let still =
    List.filter (fun r -> r.stage <> Delivered) (st.active @ admitted)
  in
  st.active <- List.sort (fun a b -> compare a.id b.id) still

let to_stats st config rounds =
  let m = ref 0 in
  let hops = ref 0 in
  let rotations = ref 0 in
  let pauses = ref st.bulk_pauses in
  let bypasses = ref 0 in
  let steps = ref 0 in
  let first_birth = ref max_int in
  let last_end = ref 0 in
  let waiting = st.waiting_front @ List.rev st.waiting_back in
  List.iter
    (fun r ->
      incr m;
      hops := !hops + r.delivery_hops;
      rotations := !rotations + r.rotations;
      pauses := !pauses + r.pauses;
      bypasses := !bypasses + r.bypasses;
      steps := !steps + r.handshake_hops + r.rotations + r.delivery_hops;
      if r.birth < !first_birth then first_birth := r.birth;
      if r.end_time > !last_end then last_end := r.end_time)
    (st.finished @ st.active @ waiting);
  let routing_cost = !hops + !m in
  let makespan = if !m = 0 then 0 else max 1 (!last_end - !first_birth) in
  {
    Cbnet.Run_stats.messages = !m;
    routing_hops = !hops;
    routing_cost;
    rotations = !rotations;
    work =
      float_of_int routing_cost
      +. (config.Cbnet.Config.rotation_cost *. float_of_int !rotations);
    makespan;
    throughput =
      (if !m = 0 then 0.0 else float_of_int !m /. float_of_int makespan);
    steps = !steps;
    pauses = !pauses;
    bypasses = !bypasses;
    update_messages = 0;
    rounds;
    chaos = Cbnet.Run_stats.no_chaos;
  }

let dump_active st fmt () =
  let stage_name r =
    match r.stage with
    | Waiting -> "waiting"
    | Handshake k -> Printf.sprintf "hs%d" k
    | Splaying -> "splay"
    | Delivered -> "done"
  in
  List.iter
    (fun r ->
      Format.fprintf fmt
        "req %d (%d->%d) %s courier=%d src_act=%b dst_act=%b rot=%d@." r.id
        r.src r.dst (stage_name r) r.courier r.src_active r.dst_active
        r.rotations)
    st.active

let make_scheduler st =
  {
    Simkit.Engine.label = "dsn";
    tick = (fun round -> tick st round);
    is_done = (fun () -> st.next_inject >= Array.length st.trace && st.live = 0);
  }

let scheduler ?(config = Cbnet.Config.default) t trace =
  let st = create config t trace in
  (make_scheduler st, fun rounds -> to_stats st config rounds)

let scheduler_debug ?(config = Cbnet.Config.default) t trace =
  let st = create config t trace in
  (make_scheduler st, (fun rounds -> to_stats st config rounds), dump_active st)

let run ?(config = Cbnet.Config.default) ?max_rounds t trace =
  let sched, finalize = scheduler ~config t trace in
  let rounds = Simkit.Engine.run_exn ?max_rounds sched in
  finalize rounds

let run_with_latencies ?(config = Cbnet.Config.default) ?max_rounds t trace =
  let st = create config t trace in
  let rounds = Simkit.Engine.run_exn ?max_rounds (make_scheduler st) in
  let latencies =
    List.map (fun r -> float_of_int (r.end_time - r.birth)) st.finished
    |> Array.of_list
  in
  (to_stats st config rounds, latencies)
