module T = Bstnet.Topology

let run ?config:(_ = Cbnet.Config.default) t trace =
  let hops = ref 0 in
  Array.iter
    (fun (_, src, dst) ->
      if src <> dst then hops := !hops + T.distance t src dst)
    trace;
  let m = Array.length trace in
  let routing_cost = !hops + m in
  {
    Cbnet.Run_stats.messages = m;
    routing_hops = !hops;
    routing_cost;
    rotations = 0;
    work = float_of_int routing_cost;
    makespan = 0;
    throughput = 0.0;
    steps = m;
    pauses = 0;
    bypasses = 0;
    update_messages = 0;
    rounds = 0;
    chaos = Cbnet.Run_stats.no_chaos;
  }

let balanced_tree n = Bstnet.Build.balanced n

let opt_tree ?knuth ~n trace =
  let demand = Demand.of_trace ~n trace in
  Opt_dp.tree (Opt_dp.solve ?knuth demand)
