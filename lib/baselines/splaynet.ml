module T = Bstnet.Topology

let validate t trace =
  let n = T.n t in
  let last_birth = ref min_int in
  Array.iter
    (fun (birth, src, dst) ->
      if birth < !last_birth then invalid_arg "Splaynet.run: trace not sorted";
      last_birth := birth;
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Splaynet.run: endpoint out of range")
    trace

let run ?(config = Cbnet.Config.default) t trace =
  validate t trace;
  let clock = ref 0 in
  let total_rotations = ref 0 in
  let hops = ref 0 in
  let first_birth = ref max_int in
  let m = Array.length trace in
  Array.iter
    (fun (birth, src, dst) ->
      if birth < !first_birth then first_birth := birth;
      clock := max !clock birth;
      let rotations =
        if src = dst then 0
        else begin
          let r1 = Splay.splay_until_ancestor_of t src ~target:dst in
          let r2 = Splay.splay_until_child_of t dst ~ancestor:src in
          r1 + r2
        end
      in
      total_rotations := !total_rotations + rotations;
      let delivery_hops = if src = dst then 0 else 1 in
      hops := !hops + delivery_hops;
      (* One slot per rotation, plus the delivery slot. *)
      clock := !clock + rotations + 1)
    trace;
  let routing_cost = !hops + m in
  let makespan = if m = 0 then 0 else max 1 (!clock - !first_birth) in
  {
    Cbnet.Run_stats.messages = m;
    routing_hops = !hops;
    routing_cost;
    rotations = !total_rotations;
    work =
      float_of_int routing_cost
      +. (config.Cbnet.Config.rotation_cost *. float_of_int !total_rotations);
    makespan;
    throughput = (if m = 0 then 0.0 else float_of_int m /. float_of_int makespan);
    steps = !total_rotations + m;
    pauses = 0;
    bypasses = 0;
    update_messages = 0;
    rounds = makespan;
    chaos = Cbnet.Run_stats.no_chaos;
  }
