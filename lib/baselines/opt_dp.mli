(** Optimal static BST network (the OPT baseline) via dynamic
    programming, as in the SplayNet paper [7].

    Decomposition: the total routing cost of a static BST equals the
    sum over all non-root subtrees of the traffic crossing the link
    above that subtree, and BST subtrees are exactly the key intervals
    chosen recursively.  So
    [C(a,b) = min_k (C(a,k-1) + X(a,k-1)) + (C(k+1,b) + X(k+1,b))],
    where [X] is {!Demand.cut_cost}.

    The exact DP is O(n³) — about 6 s at n = 1024, the largest size the
    paper uses, so exact is the default.  With [~knuth:true] the root
    search is restricted to the classic Knuth window
    [root(a,b-1) .. root(a+1,b)], giving O(n²).

    Validity caveat: Knuth's window is provably optimal only under the
    quadrangle inequality, and {!Demand.cut_cost} violates it on real
    demands (random sweeps found violations on ~95% of instances, with
    cost gaps up to ~18%), so the window variant is in general a fast
    {e upper-bound heuristic}, never better than exact.  It is exact
    exactly when the window assumption actually holds on the instance:
    if the exact solve's root matrix is monotone
    ({!roots_monotone}), the window never excludes the (first)
    optimal root, and [~knuth:true] returns the identical tree and
    cost — the test suite checks both directions. *)

type t

val solve : ?knuth:bool -> Demand.t -> t
(** Default [knuth = false] (exact).  O(n²) memory. *)

val cost : t -> int
(** The optimal total routing distance [Σ w(u,v) · d(u,v)]. *)

val tree : t -> Bstnet.Topology.t
(** Build the optimal topology. *)

val root_of : t -> lo:int -> hi:int -> int
(** Chosen root of the interval (for tests). *)

val roots_monotone : t -> bool
(** Whether the solution's root matrix satisfies Knuth monotonicity,
    [root(a,b-1) <= root(a,b) <= root(a+1,b)] for every interval.  On
    an exact solve, [true] certifies that [solve ~knuth:true] would
    have produced the same trees and costs (the O(n²) window is
    lossless for this instance). *)
