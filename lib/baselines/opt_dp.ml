type t = {
  n : int;
  cost : int array;  (* interval cost, index lo*n+hi, 0 when lo > hi *)
  root : int array;  (* argmin root of each interval *)
}

let idx n lo hi = (lo * n) + hi

let solve ?(knuth = false) demand =
  let n = Demand.n demand in
  let cost = Array.make (n * n) 0 in
  let root = Array.make (n * n) (-1) in
  let interval_cost lo hi =
    if lo > hi then 0 else cost.(idx n lo hi) + Demand.cut_cost demand ~lo ~hi
  in
  for lo = n - 1 downto 0 do
    root.(idx n lo lo) <- lo;
    for hi = lo + 1 to n - 1 do
      let k_min, k_max =
        if knuth && hi - lo >= 2 then
          (root.(idx n lo (hi - 1)), root.(idx n (lo + 1) hi))
        else (lo, hi)
      in
      let best = ref max_int and best_k = ref lo in
      for k = k_min to k_max do
        let c = interval_cost lo (k - 1) + interval_cost (k + 1) hi in
        if c < !best then begin
          best := c;
          best_k := k
        end
      done;
      cost.(idx n lo hi) <- !best;
      root.(idx n lo hi) <- !best_k
    done
  done;
  { n; cost; root }

let cost t = t.cost.(idx t.n 0 (t.n - 1))

let roots_monotone t =
  let ok = ref true in
  for lo = 0 to t.n - 1 do
    for hi = lo + 1 to t.n - 1 do
      let r = t.root.(idx t.n lo hi) in
      if t.root.(idx t.n lo (hi - 1)) > r || r > t.root.(idx t.n (lo + 1) hi)
      then ok := false
    done
  done;
  !ok
let root_of t ~lo ~hi = t.root.(idx t.n lo hi)

let tree t =
  Bstnet.Build.of_interval_roots t.n (fun ~lo ~hi -> t.root.(idx t.n lo hi))
