(** A fixed team of worker domains for intra-round data parallelism.

    Where {!Pool} distributes a bag of independent tasks (one result
    each, arbitrary completion order), a team repeatedly fans the
    {e same} short job out over member ids [0 .. members-1] and joins —
    the shape of a per-round parallel phase.  The workers are spawned
    once and parked between rounds, so the steady-state cost of a
    round is one publication and one join rather than [members] domain
    spawns.

    The calling thread is member 0 and runs its share in place; only
    [members - 1] domains are spawned ([members = 1] spawns none and
    degenerates to a plain call). *)

type t

type mode =
  | Spin  (** park on [Domain.cpu_relax] — lowest handoff latency *)
  | Block
      (** park on a condition variable — chosen automatically when the
          team would oversubscribe the machine, where spinning workers
          starve each other off the physical cores *)

val create : ?mode:mode -> members:int -> unit -> t
(** Spawn a team of [members] (>= 1, caller included).  Without [?mode]
    the team spins iff [members <= Domain.recommended_domain_count ()].
    @raise Invalid_argument when [members < 1]. *)

val members : t -> int
val mode : t -> mode

val run : t -> (int -> unit) -> unit
(** [run t job] executes [job id] once for every member id, member 0 on
    the calling thread, and returns when all members are done.  The job
    must partition its work by id; writes made by the workers are
    visible to the caller after [run] returns (the join is an acquire).
    If any member raises, [run] re-raises the first recorded exception
    after all members finish.  Not reentrant: one [run] at a time. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent; the team must not
    be [run] afterwards. *)
