(* Observation streams are log-bucketed histograms (Profkit.Histogram),
   not sample-retaining accumulators: telemetry recorders observe once
   per event on paths that emit millions of events, so the registry
   must absorb observations at O(1) time and fixed memory.  Quantiles
   in summaries and exports are therefore bucket-reconstructed, with
   relative error bounded by the histogram's sub-bucket resolution
   (~3.1%); count/mean/std/min/max/total stay exact. *)

type t = {
  counters : (string, int ref) Hashtbl.t;
  streams : (string, Profkit.Histogram.t) Hashtbl.t;
}

let create () = { counters = Hashtbl.create 16; streams = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)
let add t name k = counter_ref t name := !(counter_ref t name) + k

let histogram_ref t name =
  match Hashtbl.find_opt t.streams name with
  | Some h -> h
  | None ->
      let h = Profkit.Histogram.create () in
      Hashtbl.add t.streams name h;
      h

let observe t name x = Profkit.Histogram.record (histogram_ref t name) x

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let summary_of_histogram h =
  {
    Stats.n = Profkit.Histogram.count h;
    mean = Profkit.Histogram.mean h;
    std = Profkit.Histogram.std h;
    min = Profkit.Histogram.min h;
    max = Profkit.Histogram.max h;
    total = Profkit.Histogram.sum h;
    p50 = Profkit.Histogram.p50 h;
    p95 = Profkit.Histogram.p95 h;
    p99 = Profkit.Histogram.p99 h;
  }

let stream t name =
  Option.map summary_of_histogram (Hashtbl.find_opt t.streams name)

let histogram t name = Hashtbl.find_opt t.streams name

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters ( ! )
let streams t = sorted_bindings t.streams summary_of_histogram
let histograms t = sorted_bindings t.streams Fun.id

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.streams

let merge_into ~dst src =
  Hashtbl.iter (fun name r -> add dst name !r) src.counters;
  Hashtbl.iter
    (fun name h ->
      match Hashtbl.find_opt dst.streams name with
      | Some d -> Profkit.Histogram.merge_into ~dst:d h
      | None ->
          let d = Profkit.Histogram.create ~scale:(Profkit.Histogram.scale h) () in
          Profkit.Histogram.merge_into ~dst:d h;
          Hashtbl.add dst.streams name d)
    src.streams

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s = %d@." k v) (counters t);
  List.iter
    (fun (k, s) -> Format.fprintf fmt "%s : %a@." k Stats.pp_summary s)
    (streams t)
