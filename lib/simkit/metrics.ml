type t = {
  counters : (string, int ref) Hashtbl.t;
  streams : (string, Stats.t) Hashtbl.t;
  raw : (string, float list ref) Hashtbl.t;
}

let create () =
  { counters = Hashtbl.create 16; streams = Hashtbl.create 16; raw = Hashtbl.create 16 }

let counter_ref t name =
  match Hashtbl.find_opt t.counters name with
  | Some r -> r
  | None ->
      let r = ref 0 in
      Hashtbl.add t.counters name r;
      r

let incr t name = Stdlib.incr (counter_ref t name)
let add t name k = counter_ref t name := !(counter_ref t name) + k

let observe t name x =
  let s =
    match Hashtbl.find_opt t.streams name with
    | Some s -> s
    | None ->
        let s = Stats.create () in
        Hashtbl.add t.streams name s;
        s
  in
  Stats.add s x;
  let r =
    match Hashtbl.find_opt t.raw name with
    | Some r -> r
    | None ->
        let r = ref [] in
        Hashtbl.add t.raw name r;
        r
  in
  r := x :: !r

let counter t name =
  match Hashtbl.find_opt t.counters name with Some r -> !r | None -> 0

let stream t name = Option.map Stats.summary (Hashtbl.find_opt t.streams name)

let samples t name =
  match Hashtbl.find_opt t.raw name with
  | Some r -> Array.of_list (List.rev !r)
  | None -> [||]

let sorted_bindings tbl f =
  Hashtbl.fold (fun k v acc -> (k, f v) :: acc) tbl []
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters t = sorted_bindings t.counters ( ! )
let streams t = sorted_bindings t.streams Stats.summary

let reset t =
  Hashtbl.reset t.counters;
  Hashtbl.reset t.streams;
  Hashtbl.reset t.raw

let merge_into ~dst src =
  Hashtbl.iter (fun name r -> add dst name !r) src.counters;
  Hashtbl.iter
    (fun name r -> List.iter (fun x -> observe dst name x) (List.rev !r))
    src.raw

let pp fmt t =
  List.iter (fun (k, v) -> Format.fprintf fmt "%s = %d@." k v) (counters t);
  List.iter
    (fun (k, s) -> Format.fprintf fmt "%s : %a@." k Stats.pp_summary s)
    (streams t)
