type t = {
  mutable n : int;
  mutable mean : float;
  mutable m2 : float;
  mutable min : float;
  mutable max : float;
  mutable total : float;
  mutable samples : float list;  (* newest first, for percentiles *)
}

let create () =
  {
    n = 0;
    mean = 0.0;
    m2 = 0.0;
    min = infinity;
    max = neg_infinity;
    total = 0.0;
    samples = [];
  }

let add t x =
  t.n <- t.n + 1;
  let delta = x -. t.mean in
  t.mean <- t.mean +. (delta /. float_of_int t.n);
  t.m2 <- t.m2 +. (delta *. (x -. t.mean));
  if x < t.min then t.min <- x;
  if x > t.max then t.max <- x;
  t.total <- t.total +. x;
  t.samples <- x :: t.samples

let count t = t.n
let mean t = if t.n = 0 then 0.0 else t.mean
let variance t = if t.n < 2 then 0.0 else t.m2 /. float_of_int (t.n - 1)
let std t = sqrt (variance t)
let min t = if t.n = 0 then 0.0 else t.min
let max t = if t.n = 0 then 0.0 else t.max
let total t = t.total

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  total : float;
  p50 : float;
  p95 : float;
  p99 : float;
}

let of_list xs =
  let t = create () in
  List.iter (add t) xs;
  t

let of_array xs =
  let t = create () in
  Array.iter (add t) xs;
  t

let percentile data p =
  let n = Array.length data in
  if n = 0 then invalid_arg "Stats.percentile: empty data";
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile: p out of range";
  let sorted = Array.copy data in
  Array.sort compare sorted;
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then sorted.(lo)
  else
    let frac = rank -. float_of_int lo in
    sorted.(lo) +. (frac *. (sorted.(hi) -. sorted.(lo)))

let summary (acc : t) =
  (* Percentiles need the retained samples; a single sorted copy
     serves all three order statistics. *)
  let pct =
    if acc.n = 0 then fun _ -> 0.0
    else begin
      let data = Array.of_list acc.samples in
      Array.sort compare data;
      let n = acc.n in
      fun p ->
        let rank = p /. 100.0 *. float_of_int (n - 1) in
        let lo = int_of_float (Float.floor rank) in
        let hi = int_of_float (Float.ceil rank) in
        if lo = hi then data.(lo)
        else
          let frac = rank -. float_of_int lo in
          data.(lo) +. (frac *. (data.(hi) -. data.(lo)))
    end
  in
  {
    n = acc.n;
    mean = mean acc;
    std = std acc;
    min = min acc;
    max = max acc;
    total = acc.total;
    p50 = pct 50.0;
    p95 = pct 95.0;
    p99 = pct 99.0;
  }

let confidence95 (acc : t) =
  if acc.n < 2 then 0.0 else 1.96 *. std acc /. sqrt (float_of_int acc.n)

let pp_summary fmt s =
  Format.fprintf fmt
    "n=%d mean=%.3f std=%.3f min=%.3f max=%.3f total=%.3f p50=%.3f p95=%.3f \
     p99=%.3f"
    s.n s.mean s.std s.min s.max s.total s.p50 s.p95 s.p99
