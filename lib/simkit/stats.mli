(** Streaming descriptive statistics (Welford's online algorithm) and
    small helpers for summarising repeated experiment runs. *)

type t
(** Accumulator over a stream of float observations. *)

val create : unit -> t
val add : t -> float -> unit
val count : t -> int
val mean : t -> float
val variance : t -> float
(** Unbiased sample variance; 0 for fewer than two observations. *)

val std : t -> float
val min : t -> float
val max : t -> float
val total : t -> float

type summary = {
  n : int;
  mean : float;
  std : float;
  min : float;
  max : float;
  total : float;
  p50 : float;  (** Median (0 when empty). *)
  p95 : float;
  p99 : float;
}

val summary : t -> summary
(** Snapshot of the accumulator.  Percentiles are exact (linear
    interpolation between order statistics, like {!percentile}),
    computed from samples the accumulator retains — O(n log n) per
    call, so summarize once per stream, not per observation. *)

val of_list : float list -> t
val of_array : float array -> t

val percentile : float array -> float -> float
(** [percentile data p] with [p] in [0,100]; linear interpolation
    between order statistics.  Sorts a copy of [data]. *)

val confidence95 : t -> float
(** Half-width of the normal-approximation 95% confidence interval of
    the mean ([1.96 * std / sqrt n]); 0 for fewer than two samples. *)

val pp_summary : Format.formatter -> summary -> unit
