type 'a t = {
  cmp : 'a -> 'a -> int;
  dummy : 'a;
  mutable data : 'a array;  (* sorted, committed elements in [0, size) *)
  mutable size : int;
  mutable batch : 'a array;  (* sorted, staged newcomers in [0, staged) *)
  mutable staged : int;
}

let create ?(capacity = 64) ~dummy cmp =
  let capacity = max 1 capacity in
  {
    cmp;
    dummy;
    data = Array.make capacity dummy;
    size = 0;
    batch = Array.make (max 8 (capacity / 8)) dummy;
    staged = 0;
  }

let length q = q.size
let staged q = q.staged
let is_empty q = q.size = 0 && q.staged = 0

let grow a dummy needed =
  let cap = ref (max 1 (Array.length a)) in
  while !cap < needed do
    cap := !cap * 2
  done;
  let b = Array.make !cap dummy in
  Array.blit a 0 b 0 (Array.length a);
  b

(* lint: hot *)
let stage q x =
  if q.staged = Array.length q.batch then
    q.batch <- grow q.batch q.dummy (q.staged + 1);
  (* Insertion from the back keeps the batch sorted and stable: an
     element equal to one already staged lands after it. *)
  let i = ref q.staged in
  while !i > 0 && q.cmp q.batch.(!i - 1) x > 0 do
    q.batch.(!i) <- q.batch.(!i - 1);
    decr i
  done;
  q.batch.(!i) <- x;
  q.staged <- q.staged + 1

let commit q =
  if q.staged > 0 then begin
    let total = q.size + q.staged in
    if total > Array.length q.data then q.data <- grow q.data q.dummy total;
    (* Backward merge; on ties the batch element is written first (to
       the higher index), so committed elements precede staged ones. *)
    let i = ref (q.size - 1) and j = ref (q.staged - 1) in
    let k = ref (total - 1) in
    while !j >= 0 do
      if !i >= 0 && q.cmp q.data.(!i) q.batch.(!j) > 0 then begin
        q.data.(!k) <- q.data.(!i);
        decr i
      end
      else begin
        q.data.(!k) <- q.batch.(!j);
        decr j
      end;
      decr k
    done;
    Array.fill q.batch 0 q.staged q.dummy;
    q.size <- total;
    q.staged <- 0
  end

let iter_filter q f =
  let w = ref 0 in
  for r = 0 to q.size - 1 do
    let x = q.data.(r) in
    if f x then begin
      if !w < r then q.data.(!w) <- x;
      incr w
    end
  done;
  if !w < q.size then Array.fill q.data !w (q.size - !w) q.dummy;
  q.size <- !w

let iter q f =
  for i = 0 to q.size - 1 do
    f q.data.(i)
  done

let get q i =
  if i < 0 || i >= q.size then invalid_arg "Pqueue.get: index out of bounds";
  q.data.(i)
(* lint: hot-end *)

let clear q =
  Array.fill q.data 0 q.size q.dummy;
  Array.fill q.batch 0 q.staged q.dummy;
  q.size <- 0;
  q.staged <- 0

let to_list q =
  let rec go i acc = if i < 0 then acc else go (i - 1) (q.data.(i) :: acc) in
  go (q.size - 1) []
