(** Named metric registry used by simulations to report counters and
    gauges without threading a record of every possible measurement
    through all call sites.

    Observation streams are backed by {!Profkit.Histogram}s — O(1)
    allocation-free recording at a fixed memory footprint — so the
    registry can sit behind a telemetry sink on paths that emit
    millions of events.  Summary percentiles are bucket-reconstructed
    (bounded relative error, ~3.1%); the other summary fields are
    exact. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment a counter by one, creating it at zero if absent. *)

val add : t -> string -> int -> unit
(** Add [k] to a counter. *)

val observe : t -> string -> float -> unit
(** Feed a value into the named histogram stream. *)

val counter : t -> string -> int
(** Current counter value (0 if never touched). *)

val stream : t -> string -> Stats.summary option
(** Summary of an observation stream, if it exists.  Percentiles are
    histogram-reconstructed, not exact order statistics. *)

val histogram : t -> string -> Profkit.Histogram.t option
(** The live histogram behind a stream — the input for
    bucket-exposition exports. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val streams : t -> (string * Stats.summary) list
(** All streams, sorted by name. *)

val histograms : t -> (string * Profkit.Histogram.t) list
(** All stream histograms, sorted by name. *)

val reset : t -> unit
val merge_into : dst:t -> t -> unit
(** Add all counters and merge all stream histograms of the source
    into [dst] (bucket-wise, exact). *)

val pp : Format.formatter -> t -> unit
