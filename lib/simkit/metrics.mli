(** Named metric registry used by simulations to report counters and
    gauges without threading a record of every possible measurement
    through all call sites. *)

type t

val create : unit -> t

val incr : t -> string -> unit
(** Increment a counter by one, creating it at zero if absent. *)

val add : t -> string -> int -> unit
(** Add [k] to a counter. *)

val observe : t -> string -> float -> unit
(** Feed a value into the named {!Stats.t} stream. *)

val counter : t -> string -> int
(** Current counter value (0 if never touched). *)

val stream : t -> string -> Stats.summary option
(** Summary of an observation stream, if it exists. *)

val samples : t -> string -> float array
(** Raw observations of a stream in arrival order ([[||]] if the
    stream does not exist) — the input for quantile exports. *)

val counters : t -> (string * int) list
(** All counters, sorted by name. *)

val streams : t -> (string * Stats.summary) list
(** All streams, sorted by name. *)

val reset : t -> unit
val merge_into : dst:t -> t -> unit
(** Add all counters and observations of the source into [dst]. *)

val pp : Format.formatter -> t -> unit
