(* A fixed team of domains for intra-round fan-out: unlike [Pool]
   (queue of independent tasks, results gathered), a team re-runs a
   short data-parallel job every round, so the workers stay alive and
   the per-round cost is one publication + one join, not a domain
   spawn.  The caller is member 0; [members - 1] domains serve the
   remaining ids. *)

type mode = Spin | Block

type t = {
  members : int;
  mode : mode;
  mutable job : int -> unit;
  (* Publication protocol: the caller writes [job], resets [pending],
     then increments [epoch] — the atomic write publishes the plain
     [job] write to every worker that observes the new epoch (OCaml's
     memory model orders plain accesses around atomics). *)
  epoch : int Atomic.t;
  pending : int Atomic.t;
  failed : exn option Atomic.t;
  stop : bool Atomic.t;
  lock : Mutex.t;
  cond : Condition.t;
  mutable domains : unit Domain.t array;
  mutable alive : bool;
}

let is_block = function Block -> true | Spin -> false

let with_lock t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let record_failure t e = ignore (Atomic.compare_and_set t.failed None (Some e))

let worker t _id =
  let seen = ref 0 in
  let running = ref true in
  while !running do
    (match t.mode with
    | Spin ->
        while
          Atomic.get t.epoch = !seen && not (Atomic.get t.stop)
        do
          Domain.cpu_relax ()
        done
    | Block ->
        with_lock t (fun () ->
            while Atomic.get t.epoch = !seen && not (Atomic.get t.stop) do
              Condition.wait t.cond t.lock
            done));
    if Atomic.get t.stop then running := false
    else begin
      seen := Atomic.get t.epoch;
      (try t.job _id with e -> record_failure t e);
      let left = Atomic.fetch_and_add t.pending (-1) - 1 in
      (* The last worker home wakes the (possibly blocked) caller. *)
      if left = 0 && is_block t.mode then
        with_lock t (fun () -> Condition.broadcast t.cond)
    end
  done

let create ?mode ~members () =
  if members < 1 then invalid_arg "Team.create: members must be >= 1";
  let mode =
    match mode with
    | Some m -> m
    | None ->
        (* Spinning workers on an oversubscribed machine would starve
           each other (and the caller) out of the physical cores;
           block on a condvar instead and pay the wake-up latency. *)
        if members <= Domain.recommended_domain_count () then Spin
        else Block
  in
  let t =
    {
      members;
      mode;
      job = (fun _ -> ());
      epoch = Atomic.make 0;
      pending = Atomic.make 0;
      failed = Atomic.make None;
      stop = Atomic.make false;
      lock = Mutex.create ();
      cond = Condition.create ();
      domains = [||];
      alive = true;
    }
  in
  t.domains <-
    Array.init (members - 1) (fun i ->
        Domain.spawn (fun () -> worker t (i + 1)));
  t

let members t = t.members
let mode t = t.mode

let run t job =
  if t.members = 1 then job 0
  else begin
    t.job <- job;
    Atomic.set t.pending (t.members - 1);
    Atomic.incr t.epoch;
    (match t.mode with
    | Spin -> ()
    | Block -> with_lock t (fun () -> Condition.broadcast t.cond));
    (* The caller is member 0; its failure is recorded like a worker's
       so the join below always happens (workers must not outlive the
       round holding a reference to [job]). *)
    (try job 0 with e -> record_failure t e);
    (match t.mode with
    | Spin -> while Atomic.get t.pending > 0 do Domain.cpu_relax () done
    | Block ->
        with_lock t (fun () ->
            while Atomic.get t.pending > 0 do
              Condition.wait t.cond t.lock
            done));
    match Atomic.exchange t.failed None with
    | None -> ()
    | Some e -> raise e
  end

let shutdown t =
  if t.alive then begin
    t.alive <- false;
    Atomic.set t.stop true;
    (match t.mode with
    | Spin -> ()
    | Block -> with_lock t (fun () -> Condition.broadcast t.cond));
    Array.iter Domain.join t.domains
  end
