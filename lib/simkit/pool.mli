(** A fixed-size pool of worker domains with a shared work queue.

    The pool exists to fan independent experiment tasks (seeds, matrix
    cells) out across cores.  Tasks are indexed; {!map} collects each
    task's result into a pre-sized array slot, so callers that
    aggregate in index order observe results that are bit-identical to
    a sequential run — parallelism never reorders observable state.

    With [num_domains <= 1] no domains are spawned and every task runs
    in the calling domain, in index order: the pool degrades to a
    plain loop, which keeps single-core CI and debugging runs on the
    exact sequential code path.

    Tasks must be independent: they must not submit work to the pool
    they run on (the caller blocks until its batch drains, so nested
    submission can deadlock) and must not share mutable state unless
    that state is synchronised elsewhere. *)

type t

val with_lock : Mutex.t -> (unit -> 'a) -> 'a
(** [with_lock m f] runs [f ()] with [m] held and always releases [m],
    also when [f] raises.  This is the only locking idiom the codebase
    uses (enforced by the [lock-safety] lint rule); bare
    [Mutex.lock]/[Mutex.unlock] pairs leak the lock on exceptions. *)

val default_num_domains : unit -> int
(** [Domain.recommended_domain_count () - 1] (one core left for the
    submitting domain), never below 1. *)

val default_jobs : unit -> int
(** Parallelism requested by the environment: [CBNET_JOBS] when set to
    a positive integer, {!default_num_domains} otherwise. *)

val create : ?num_domains:int -> ?sink:Obskit.Sink.t -> unit -> t
(** Spawn a pool of [num_domains] workers (default
    {!default_num_domains}).  [num_domains <= 1] spawns nothing and
    runs all work in the caller.

    [sink] (default {!Obskit.Sink.null}) receives one
    [Obskit.Event.Pool_task] per task and phase: [Enqueue] when the
    task enters the shared queue, [Start] when a worker picks it up and
    [Done] when it finishes ([Done] carries the task's wall time in
    microseconds).  All three carry the live queue depth.  In-caller
    pools emit the same lifecycle with depth 0, so traces look alike
    at every pool size.  Task ids are unique per pool and assigned in
    submission (index) order.  With the null sink no event is
    constructed — the hot path stays allocation-free. *)

val num_domains : t -> int
(** Worker count of [t]; 1 for an in-caller (sequential) pool. *)

val map : t -> int -> (int -> 'a) -> 'a array
(** [map t n f] computes [[| f 0; ...; f (n - 1) |]], distributing the
    [n] calls across the pool's workers and blocking until all have
    finished.  Result slot [i] always holds [f i].

    If one or more tasks raise, the exception of the {e
    lowest-indexed} failing task is re-raised in the caller (with its
    backtrace) after the batch completes — the same exception a
    sequential left-to-right loop would surface, independent of
    scheduling.  An exception that escapes the task wrapper itself
    (e.g. from trace emission) cannot be attributed to a slot; the
    first such failure is recorded in the pool and re-raised from the
    next batch wait instead of being dropped.  Workers survive either
    kind of failure, so the pool stays usable afterwards. *)

val run : t -> (unit -> 'a) list -> 'a list
(** {!map} over a list of thunks, preserving list order. *)

val shutdown : t -> unit
(** Close the queue and join all workers.  Idempotent.  Outstanding
    {!map} batches finish first; subsequent {!map} calls raise
    [Invalid_argument]. *)

val with_pool : ?num_domains:int -> ?sink:Obskit.Sink.t -> (t -> 'a) -> 'a
(** [create], run, and always [shutdown] (also on exceptions). *)
