type t = {
  size : int;  (* worker domains; 0 = run in the caller *)
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
  sink : Obskit.Sink.t;
  mutable next_task_id : int;  (* under [mutex] *)
  mutable failure : (exn * Printexc.raw_backtrace) option;  (* under [mutex] *)
}

let with_lock m f =
  Mutex.lock m;
  Fun.protect ~finally:(fun () -> Mutex.unlock m) f

let default_num_domains () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let default_jobs () =
  match Sys.getenv_opt "CBNET_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some j when j >= 1 -> j
      | _ -> default_num_domains ())
  | None -> default_num_domains ()

(* First recorded exception wins; concurrent losers are dropped, which
   mirrors the lowest-index rule [map] applies to task-body failures. *)
let record_failure t e bt =
  with_lock t.mutex (fun () ->
      if Option.is_none t.failure then t.failure <- Some (e, bt))

let take_failure t =
  with_lock t.mutex (fun () ->
      let f = t.failure in
      t.failure <- None;
      f)

let worker t () =
  let rec next_task () =
    (* mutex held *)
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.closed then None
    else begin
      Condition.wait t.has_work t.mutex;
      next_task ()
    end
  in
  let rec loop () =
    match with_lock t.mutex next_task with
    | None -> ()
    | Some task ->
        (* [map]'s wrapper stores task-body exceptions per result slot;
           anything that escapes the wrapper itself (telemetry, slot
           bookkeeping) is recorded here and re-raised from the next
           batch wait rather than silently dropped. *)
        (match task () with
        | () -> ()
        | exception e -> record_failure t e (Printexc.get_raw_backtrace ()));
        loop ()
  in
  loop ()

let create ?num_domains ?(sink = Obskit.Sink.null) () =
  let requested =
    match num_domains with Some n -> n | None -> default_num_domains ()
  in
  let size = if requested <= 1 then 0 else requested in
  let t =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      closed = false;
      workers = [];
      sink;
      next_task_id = 0;
      failure = None;
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (worker t));
  t

let num_domains t = Stdlib.max 1 t.size

let reserve_ids t n =
  with_lock t.mutex (fun () ->
      let base = t.next_task_id in
      t.next_task_id <- base + n;
      base)

let queue_depth t = with_lock t.mutex (fun () -> Queue.length t.queue)

(* Emit the [Start]/[Done] pair around one task body.  [Done] carries
   the task's wall time; both carry the live queue depth so the trace
   shows backlog draining per domain. *)
let observed t ~id body =
  if not (Obskit.Sink.enabled t.sink) then body ()
  else begin
    let t0 = Obskit.Clock.now_us () in
    let depth = queue_depth t in
    Obskit.Sink.record t.sink (fun () ->
        Obskit.Event.Pool_task
          {
            task = id;
            phase = Obskit.Event.Start;
            queue_depth = depth;
            elapsed_us = 0.0;
          });
    Fun.protect
      ~finally:(fun () ->
        let elapsed_us = Obskit.Clock.now_us () -. t0 in
        let depth = queue_depth t in
        Obskit.Sink.record t.sink (fun () ->
            Obskit.Event.Pool_task
              {
                task = id;
                phase = Obskit.Event.Done;
                queue_depth = depth;
                elapsed_us;
              }))
      body
  end

let submit_batch t tasks =
  with_lock t.mutex (fun () ->
      if t.closed then invalid_arg "Pool.map: pool is shut down";
      let traced = Obskit.Sink.enabled t.sink in
      List.iter
        (fun (id, task) ->
          Queue.push task t.queue;
          if traced then begin
            let depth = Queue.length t.queue in
            Obskit.Sink.record t.sink (fun () ->
                Obskit.Event.Pool_task
                  {
                    task = id;
                    phase = Obskit.Event.Enqueue;
                    queue_depth = depth;
                    elapsed_us = 0.0;
                  })
          end)
        tasks;
      Condition.broadcast t.has_work)

let map t n f =
  if n <= 0 then [||]
  else if t.size = 0 then begin
    (* In-caller execution, in index order: the sequential path.  The
       task never sits in the shared queue, but traced runs still get
       the full Enqueue/Start/Done lifecycle (at depth 0) so exporters
       see the same event shape at every pool size. *)
    let base = reserve_ids t n in
    let run i =
      let id = base + i in
      if Obskit.Sink.enabled t.sink then
        Obskit.Sink.record t.sink (fun () ->
            Obskit.Event.Pool_task
              {
                task = id;
                phase = Obskit.Event.Enqueue;
                queue_depth = 0;
                elapsed_us = 0.0;
              });
      observed t ~id (fun () -> f i)
    in
    let first = run 0 in
    let results = Array.make n first in
    for i = 1 to n - 1 do
      results.(i) <- run i
    done;
    results
  end
  else begin
    let base = reserve_ids t n in
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let task i () =
      (* The [finally] keeps a raising body (or raising telemetry in
         [observed]'s own finalizer) from leaving [remaining] stuck and
         hanging the batch wait below. *)
      Fun.protect
        ~finally:(fun () ->
          with_lock batch_mutex (fun () ->
              decr remaining;
              if !remaining = 0 then Condition.signal batch_done))
        (fun () ->
          match observed t ~id:(base + i) (fun () -> f i) with
          | v -> results.(i) <- Some v
          | exception e ->
              errors.(i) <- Some (e, Printexc.get_raw_backtrace ()))
    in
    submit_batch t (List.init n (fun i -> (base + i, task i)));
    with_lock batch_mutex (fun () ->
        while !remaining > 0 do
          Condition.wait batch_done batch_mutex
        done);
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    (match take_failure t with
    | Some (e, bt) -> Printexc.raise_with_backtrace e bt
    | None -> ());
    Array.map
      (function
        | Some v -> v | None -> assert false (* every slot filled or raised *))
      results
  end

let run t thunks =
  let arr = Array.of_list thunks in
  map t (Array.length arr) (fun i -> arr.(i) ()) |> Array.to_list

let shutdown t =
  let was_closed =
    with_lock t.mutex (fun () ->
        let was_closed = t.closed in
        t.closed <- true;
        Condition.broadcast t.has_work;
        was_closed)
  in
  if not was_closed then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?num_domains ?sink f =
  let t = create ?num_domains ?sink () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
