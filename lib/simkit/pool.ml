type t = {
  size : int;  (* worker domains; 0 = run in the caller *)
  queue : (unit -> unit) Queue.t;
  mutex : Mutex.t;
  has_work : Condition.t;
  mutable closed : bool;
  mutable workers : unit Domain.t list;
}

let default_num_domains () = Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let default_jobs () =
  match Sys.getenv_opt "CBNET_JOBS" with
  | Some v -> (
      match int_of_string_opt (String.trim v) with
      | Some j when j >= 1 -> j
      | _ -> default_num_domains ())
  | None -> default_num_domains ()

let worker t () =
  let rec next_task () =
    (* mutex held *)
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.closed then None
    else begin
      Condition.wait t.has_work t.mutex;
      next_task ()
    end
  in
  let rec loop () =
    Mutex.lock t.mutex;
    let task = next_task () in
    Mutex.unlock t.mutex;
    match task with
    | None -> ()
    | Some task ->
        (* Tasks are wrapped by [map] and never raise; the catch-all
           keeps a stray exception from killing the worker anyway. *)
        (try task () with _ -> ());
        loop ()
  in
  loop ()

let create ?num_domains () =
  let requested =
    match num_domains with Some n -> n | None -> default_num_domains ()
  in
  let size = if requested <= 1 then 0 else requested in
  let t =
    {
      size;
      queue = Queue.create ();
      mutex = Mutex.create ();
      has_work = Condition.create ();
      closed = false;
      workers = [];
    }
  in
  t.workers <- List.init size (fun _ -> Domain.spawn (worker t));
  t

let num_domains t = Stdlib.max 1 t.size

let submit_batch t tasks =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool.map: pool is shut down"
  end;
  List.iter (fun task -> Queue.push task t.queue) tasks;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex

let map t n f =
  if n <= 0 then [||]
  else if t.size = 0 then begin
    (* In-caller execution, in index order: the sequential path. *)
    let first = f 0 in
    let results = Array.make n first in
    for i = 1 to n - 1 do
      results.(i) <- f i
    done;
    results
  end
  else begin
    let results = Array.make n None in
    let errors = Array.make n None in
    let remaining = ref n in
    let batch_mutex = Mutex.create () in
    let batch_done = Condition.create () in
    let task i () =
      (match f i with
      | v -> results.(i) <- Some v
      | exception e -> errors.(i) <- Some (e, Printexc.get_raw_backtrace ()));
      Mutex.lock batch_mutex;
      decr remaining;
      if !remaining = 0 then Condition.signal batch_done;
      Mutex.unlock batch_mutex
    in
    submit_batch t (List.init n (fun i -> task i));
    Mutex.lock batch_mutex;
    while !remaining > 0 do
      Condition.wait batch_done batch_mutex
    done;
    Mutex.unlock batch_mutex;
    Array.iter
      (function
        | Some (e, bt) -> Printexc.raise_with_backtrace e bt | None -> ())
      errors;
    Array.map
      (function
        | Some v -> v | None -> assert false (* every slot filled or raised *))
      results
  end

let run t thunks =
  let arr = Array.of_list thunks in
  map t (Array.length arr) (fun i -> arr.(i) ()) |> Array.to_list

let shutdown t =
  Mutex.lock t.mutex;
  let was_closed = t.closed in
  t.closed <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  if not was_closed then begin
    List.iter Domain.join t.workers;
    t.workers <- []
  end

let with_pool ?num_domains f =
  let t = create ?num_domains () in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
