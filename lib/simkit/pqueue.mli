(** Array-backed stable priority buffer for round-synchronous
    executors.

    The element set of a round loop changes in a rhythm that ordinary
    heaps serve poorly: a small batch of newcomers arrives between
    rounds, every round then visits {e all} elements in priority order
    and drops the finished ones.  This structure keeps the elements in
    one sorted array and the pending newcomers in a second small sorted
    array; [commit] merges the two with a single backward pass and
    [iter_filter] visits and compacts in place — no per-round list
    allocation, no re-sorting of the already-sorted bulk.

    Ordering is {e stable}: elements that compare equal are visited in
    insertion order, with previously-committed elements before newly
    staged ones.  With a total order (unique keys) the visit order is
    exactly the order [List.merge]-based code would produce. *)

type 'a t

val create : ?capacity:int -> dummy:'a -> ('a -> 'a -> int) -> 'a t
(** [create ~dummy cmp] — an empty buffer ordered by [cmp] (smallest
    first).  [dummy] fills unused slots so stale elements are not
    retained against the GC.  [capacity] (default 64) is a hint; the
    arrays grow by doubling. *)

val length : 'a t -> int
(** Committed elements only; staged newcomers are not counted. *)

val staged : 'a t -> int
(** Newcomers staged since the last [commit]. *)

val is_empty : 'a t -> bool
(** No committed and no staged elements. *)

val stage : 'a t -> 'a -> unit
(** Add a newcomer to the pending batch.  O(batch) worst case (the
    batch is kept sorted by insertion from the back), O(1) when
    arriving in priority order.  Safe to call from inside an
    [iter_filter] callback: staged elements never join the iteration
    in progress. *)

val commit : 'a t -> unit
(** Merge the staged batch into the committed array (stable backward
    merge, O(length + batch)).  Must not be called from inside
    [iter_filter]. *)

val iter_filter : 'a t -> ('a -> bool) -> unit
(** Visit all committed elements in priority order; keep those for
    which the callback returns [true], dropping the rest.  Retained
    elements are compacted in place (one pass, no allocation) and
    vacated slots are reset to [dummy]. *)

val iter : 'a t -> ('a -> unit) -> unit
(** Visit all committed elements in priority order. *)

val get : 'a t -> int -> 'a
(** [get q i] — the [i]-th committed element in priority order.
    @raise Invalid_argument when [i] is out of bounds. *)

val clear : 'a t -> unit
(** Drop all committed and staged elements (slots reset to [dummy]). *)

val to_list : 'a t -> 'a list
(** Committed elements in priority order — tests and debugging. *)
