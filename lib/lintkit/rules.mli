(** The Parsetree-level lint rules.

    All checks are syntactic (untyped AST), so each is a conservative
    approximation of the invariant it guards; docs/LINTING.md spells
    out the exact shapes recognised.  Rules scope themselves by path:
    [no-poly-compare] fires only under [lib/core/] and [lib/bstnet/],
    [no-stdout] only under [lib/]. *)

val all : (string * string) list
(** Every rule as [(id, one-line description)]. *)

val known : string -> bool
(** Is [rule] a valid rule id? *)

val lib_scope : string -> bool
(** Does this repo-relative path live under a [lib/] tree (the scope
    of [no-stdout] and [mli-coverage])? *)

type ctx = {
  relpath : string;  (** repo-relative path, drives rule scoping *)
  enabled : string -> bool;
  hot : int -> bool;  (** is this 1-based line inside a hot region? *)
  report : line:int -> col:int -> rule:string -> string -> unit;
}

val check_structure : ctx -> Parsetree.structure -> unit
(** Run every AST rule over one parsed implementation, reporting raw
    findings through [ctx.report] (suppression and baselining happen
    in {!Engine}). *)
