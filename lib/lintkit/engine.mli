(** Drives one lint run: discovery, per-file checks, suppression, and
    the baseline ratchet.  [bin/cbnet_lint.ml] is a thin CLI over
    {!run}; tests exercise {!lint_string} on inline fixtures. *)

val meta_parse_error : string
(** Rule id reported when a file fails to parse. *)

val meta_directive : string
(** Rule id reported for malformed [(* lint: ... *)] directives. *)

val lint_string :
  enabled:(string -> bool) ->
  path:string ->
  ?mli_exists:bool ->
  string ->
  Finding.t list * int
(** Lint one in-memory file.  [path] is the repo-relative name the
    rules scope on (e.g. ["lib/core/foo.ml"]); [mli_exists] (default
    true) feeds the [mli-coverage] rule.  Returns the kept findings
    (sorted) and the count suppressed by allow comments. *)

val discover : string list -> string list
(** All [.ml]/[.mli] files under the given files/directories, skipping
    [_build] and dot-directories, in deterministic order. *)

type outcome = {
  findings : Finding.t list;  (** kept: not suppressed, not baselined *)
  files : int;
  suppressed : int;
  baselined : int;
  stale : string list;
      (** baseline entries whose finding no longer exists — ratchet
          violations; remove them from the baseline file *)
}

val clean : outcome -> bool
(** No findings and no stale baseline entries. *)

type pass =
  enabled:(string -> bool) -> (string * Source.t) list -> Finding.t list
(** A tree-wide pass: sees every loaded [(relpath, source)] pair at
    once, so interprocedural analyses (lib/effectkit) can plug in.
    Pass findings go through the same allow-comment suppression and
    baseline ratchet as the per-file rules. *)

val run :
  ?enabled:(string -> bool) ->
  ?passes:pass list ->
  ?baseline:Baseline.t ->
  string list ->
  outcome
(** Lint every file under the given paths.  [enabled] toggles rules by
    id (default: all on). *)

val lint_strings :
  enabled:(string -> bool) ->
  ?passes:pass list ->
  (string * string) list ->
  Finding.t list * int
(** In-memory twin of {!run} over [(path, code)] fixtures: no
    discovery, no baseline.  Returns kept findings (sorted) and the
    suppressed count.  Test entry point for multi-file passes. *)
