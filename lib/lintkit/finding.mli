(** One lint diagnostic, rendered as [file:line:col [rule] message]. *)

type t = {
  file : string;
  line : int;  (** 1-based *)
  col : int;  (** 1-based *)
  rule : string;
  message : string;
}

val v : file:string -> line:int -> col:int -> rule:string -> string -> t
val to_string : t -> string

val key : t -> string
(** Position-independent identity ([file|rule|message]) used by the
    baseline ratchet, so entries survive unrelated line shifts. *)

val compare : t -> t -> int
(** Order by file, line, column, rule, message. *)
