(* Lexical view of one OCaml source file.  The compiler-libs parser
   discards comments, so everything comment-borne — [(* lint: allow
   ... *)] suppressions and [(* lint: hot *)] region markers — is
   recovered here by a small scanner that understands nested comments,
   string literals (including [{tag|...|tag}] quoted strings) and
   character literals, mirroring the real lexer closely enough for
   valid source files. *)

type comment = { text : string; start_line : int; end_line : int }

type t = {
  path : string;
  code : string;
  lines : string array;
  comments : comment list;
  allows : (int * int * string list) list;  (* lo, hi (incl.), rules *)
  hot : (int * int) list;  (* inclusive line ranges *)
  errors : (int * string) list;
}

let path t = t.path
let code t = t.code
let lines t = t.lines
let comments t = t.comments
let hot_ranges t = t.hot
let directive_errors t = t.errors

let split_lines code =
  let lines = String.split_on_char '\n' code in
  (* A trailing newline produces a final empty "line" that no source
     position can refer to; drop it. *)
  let lines =
    match List.rev lines with
    | "" :: rest when not (List.is_empty rest) -> List.rev rest
    | _ -> lines
  in
  Array.of_list lines

(* Index -> 1-based line, via the sorted offsets of line starts. *)
let line_starts code =
  let starts = ref [ 0 ] in
  String.iteri
    (fun i c -> if Char.equal c '\n' then starts := (i + 1) :: !starts)
    code;
  Array.of_list (List.rev !starts)

let line_of starts i =
  let lo = ref 0 and hi = ref (Array.length starts - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi + 1) / 2 in
    if starts.(mid) <= i then lo := mid else hi := mid - 1
  done;
  !lo + 1

(* Position just past the closing quote of a ["..."] literal whose
   opening quote sits at [i - 1]. *)
let rec string_end code n i =
  if i >= n then n
  else
    match code.[i] with
    | '\\' -> string_end code n (i + 2)
    | '"' -> i + 1
    | _ -> string_end code n (i + 1)

let find_sub code sub from =
  let n = String.length code and m = String.length sub in
  let rec go i =
    if i + m > n then None
    else if String.equal (String.sub code i m) sub then Some i
    else go (i + 1)
  in
  go from

(* [i] sits on a '{'.  Some j past the closing [|tag}] when this opens
   a quoted string, None otherwise. *)
let quoted_string_end code n i =
  let j = ref (i + 1) in
  while
    !j < n && (match code.[!j] with 'a' .. 'z' | '_' -> true | _ -> false)
  do
    incr j
  done;
  if !j < n && Char.equal code.[!j] '|' then begin
    let tag = String.sub code (i + 1) (!j - i - 1) in
    let close = "|" ^ tag ^ "}" in
    match find_sub code close (!j + 1) with
    | Some k -> Some (k + String.length close)
    | None -> Some n
  end
  else None

(* [i] sits on a single quote.  Some j past the literal when this is a
   character literal, None when it is a type variable or a name's
   prime suffix. *)
let char_literal_end code n i =
  if i + 1 < n && Char.equal code.[i + 1] '\\' then begin
    let j = ref (i + 2) in
    while !j < n && not (Char.equal code.[!j] '\'') do
      incr j
    done;
    Some (!j + 1)
  end
  else if i + 2 < n && Char.equal code.[i + 2] '\'' then Some (i + 3)
  else None

(* [i] is just past an opening "(*".  Position just past the matching
   "*)", honouring nesting and embedded (quoted) strings. *)
let rec comment_end code n i depth =
  if i >= n then n
  else if i + 1 < n && Char.equal code.[i] '(' && Char.equal code.[i + 1] '*'
  then comment_end code n (i + 2) (depth + 1)
  else if i + 1 < n && Char.equal code.[i] '*' && Char.equal code.[i + 1] ')'
  then if depth <= 1 then i + 2 else comment_end code n (i + 2) (depth - 1)
  else if Char.equal code.[i] '"' then
    comment_end code n (string_end code n (i + 1)) depth
  else if Char.equal code.[i] '{' then
    match quoted_string_end code n i with
    | Some j -> comment_end code n j depth
    | None -> comment_end code n (i + 1) depth
  else comment_end code n (i + 1) depth

(* All comments as (start index, end index) spans, in file order. *)
let scan code =
  let n = String.length code in
  let spans = ref [] in
  let i = ref 0 in
  while !i < n do
    let c = code.[!i] in
    if Char.equal c '(' && !i + 1 < n && Char.equal code.[!i + 1] '*' then begin
      let stop = comment_end code n (!i + 2) 1 in
      spans := (!i, stop) :: !spans;
      i := stop
    end
    else if Char.equal c '"' then i := string_end code n (!i + 1)
    else if Char.equal c '{' then
      match quoted_string_end code n !i with
      | Some j -> i := j
      | None -> incr i
    else if Char.equal c '\'' then
      match char_literal_end code n !i with
      | Some j -> i := j
      | None -> incr i
    else incr i
  done;
  List.rev !spans

type directive = Allow of string list | Hot | Hot_end

let is_separator tok =
  String.equal tok "--" || String.equal tok "\xe2\x80\x94" (* em dash *)

let rule_name_ok tok =
  String.length tok > 0
  && String.for_all
       (fun c ->
         match c with 'a' .. 'z' | '0' .. '9' | '-' -> true | _ -> false)
       tok

(* [Some (Ok d)] for a well-formed [lint:] directive, [Some (Error m)]
   for a malformed one, [None] for an ordinary comment. *)
let directive_of_text ~known text =
  let text = String.trim text in
  let prefix = "lint:" in
  let plen = String.length prefix in
  if String.length text < plen || not (String.equal (String.sub text 0 plen) prefix)
  then None
  else
    let rest = String.sub text plen (String.length text - plen) in
    let tokens =
      String.split_on_char ' ' rest
      |> List.concat_map (String.split_on_char '\t')
      |> List.concat_map (String.split_on_char '\n')
      |> List.filter (fun s -> not (String.equal s ""))
    in
    match tokens with
    | [ "hot" ] -> Some (Ok Hot)
    | [ "hot-end" ] -> Some (Ok Hot_end)
    | "hot" :: _ -> Some (Error "lint: hot takes no arguments")
    | "hot-end" :: _ -> Some (Error "lint: hot-end takes no arguments")
    | "allow" :: rest -> (
        let rec take acc = function
          | tok :: tl when not (is_separator tok) -> take (tok :: acc) tl
          | _ -> List.rev acc
        in
        let rules = take [] rest in
        match rules with
        | [] -> Some (Error "lint: allow needs at least one rule name")
        | rules -> (
            match
              List.find_opt
                (fun r -> (not (rule_name_ok r)) || not (known r))
                rules
            with
            | Some bad ->
                Some
                  (Error
                     (Printf.sprintf
                        "unknown rule %S in lint: allow (separate the \
                         justification with --)"
                        bad))
            | None -> Some (Ok (Allow rules))))
    | kw :: _ -> Some (Error (Printf.sprintf "unknown lint directive %S" kw))
    | [] -> Some (Error "empty lint directive")

let of_string ?(known = fun _ -> true) ~path code =
  let lines = split_lines code in
  let starts = line_starts code in
  let spans = scan code in
  let comments =
    List.map
      (fun (lo, hi) ->
        let body_lo = lo + 2 in
        let body_hi = Stdlib.max body_lo (hi - 2) in
        {
          text = String.sub code body_lo (body_hi - body_lo);
          start_line = line_of starts lo;
          end_line = line_of starts (Stdlib.max lo (hi - 1));
        })
      spans
  in
  let allows = ref [] in
  let errors = ref [] in
  let hot_open = ref None in
  let hot = ref [] in
  List.iter
    (fun c ->
      match directive_of_text ~known c.text with
      | None -> ()
      | Some (Error msg) -> errors := (c.start_line, msg) :: !errors
      | Some (Ok (Allow rules)) ->
          (* A suppression covers every line the comment spans plus the
             line right after it, so both end-of-line and line-above
             placement work. *)
          allows := (c.start_line, c.end_line + 1, rules) :: !allows
      | Some (Ok Hot) -> (
          match !hot_open with
          | None -> hot_open := Some c.start_line
          | Some _ ->
              errors :=
                (c.start_line, "lint: hot region is already open") :: !errors)
      | Some (Ok Hot_end) -> (
          match !hot_open with
          | Some lo ->
              hot := (lo, c.start_line) :: !hot;
              hot_open := None
          | None ->
              errors :=
                (c.start_line, "lint: hot-end without an open hot region")
                :: !errors))
    comments;
  (match !hot_open with
  | Some lo -> hot := (lo, Array.length lines) :: !hot
  | None -> ());
  {
    path;
    code;
    lines;
    comments;
    allows = List.rev !allows;
    hot = List.rev !hot;
    errors = List.rev !errors;
  }

let load ?known p =
  let ic = open_in_bin p in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let code = really_input_string ic (in_channel_length ic) in
      of_string ?known ~path:p code)

let allowed t ~line ~rule =
  List.exists
    (fun (lo, hi, rules) ->
      lo <= line && line <= hi && List.exists (String.equal rule) rules)
    t.allows

let in_hot t ~line =
  List.exists (fun (lo, hi) -> lo <= line && line <= hi) t.hot
