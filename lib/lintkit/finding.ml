type t = {
  file : string;
  line : int;  (* 1-based *)
  col : int;  (* 1-based *)
  rule : string;
  message : string;
}

let v ~file ~line ~col ~rule message = { file; line; col; rule; message }

let to_string t =
  Printf.sprintf "%s:%d:%d [%s] %s" t.file t.line t.col t.rule t.message

(* Baseline identity: line/column numbers shift under unrelated edits,
   so the ratchet keys on (file, rule, message) only. *)
let key t = Printf.sprintf "%s|%s|%s" t.file t.rule t.message

let compare a b =
  let c = String.compare a.file b.file in
  if c <> 0 then c
  else
    let c = Int.compare a.line b.line in
    if c <> 0 then c
    else
      let c = Int.compare a.col b.col in
      if c <> 0 then c
      else
        let c = String.compare a.rule b.rule in
        if c <> 0 then c else String.compare a.message b.message
