(* The Parsetree-level lint rules.  Everything here is syntactic: the
   checks run on the untyped AST (compiler-libs [Parse] +
   [Ast_iterator]), so each rule is an approximation of the semantic
   property it guards, tuned to the idioms of this codebase and
   documented in docs/LINTING.md.  False positives are silenced with
   [(* lint: allow <rule> -- why *)] (see {!Source}). *)

open Parsetree

let all =
  [
    ( "catch-all",
      "try/match handler that silently drops the caught exception" );
    ( "lock-safety",
      "Mutex.lock whose unlock is not exception-safe (use Pool.with_lock \
       or Fun.protect)" );
    ( "no-poly-compare",
      "structural =/<>/compare/Hashtbl.hash in lib/core or lib/bstnet" );
    ( "no-alloc",
      "allocation (lists, arrays, tuples, closures, List./Printf. calls) \
       inside a (* lint: hot *) region" );
    ("no-stdout", "printing to stdout from lib/ (use Obskit or Runtime.Export)");
    ("mli-coverage", "lib/ module without an interface file");
    ("whitespace", "tab characters or trailing whitespace");
    (* The three effectkit rules (interprocedural; implemented as an
       engine pass in lib/effectkit, plugged in by bin/cbnet_lint). *)
    ( "effect-pure",
      "(* effect: pure *) function with a transitive write, \
       nondeterminism, or an unknown callee" );
    ( "wave-race",
      "plan-wave code writing outside the wave-local/claim allowlist" );
    ( "determinism",
      "clock/RNG/poly-hash/domain-identity source in lib/core, lib/bstnet, \
       lib/forest or lib/servekit (Servekit.Vclock reads wall time only \
       through Obskit.Clock, outside the scope)" );
  ]

let known rule = List.exists (fun (r, _) -> String.equal r rule) all

type ctx = {
  relpath : string;
  enabled : string -> bool;
  hot : int -> bool;  (* 1-based line inside a hot region? *)
  report : line:int -> col:int -> rule:string -> string -> unit;
}

let position (loc : Location.t) =
  let p = loc.Location.loc_start in
  (p.Lexing.pos_lnum, p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)

let loc_key (loc : Location.t) =
  let line, col = position loc in
  Printf.sprintf "%d:%d" line col

(* Longident as a dotted string; "" for functor applications. *)
let rec flatten_lid acc = function
  | Longident.Lident s -> Some (s :: acc)
  | Longident.Ldot (l, s) -> flatten_lid (s :: acc) l
  | Longident.Lapply _ -> None

let lid_name lid =
  match flatten_lid [] lid with
  | Some parts -> String.concat "." parts
  | None -> ""

let strip_stdlib name =
  let p = "Stdlib." in
  let plen = String.length p in
  if String.length name > plen && String.equal (String.sub name 0 plen) p then
    String.sub name plen (String.length name - plen)
  else name

let ident_name e =
  match e.pexp_desc with
  | Pexp_ident { txt; _ } -> strip_stdlib (lid_name txt)
  | _ -> ""

let starts_with ~prefix s =
  let plen = String.length prefix in
  String.length s >= plen && String.equal (String.sub s 0 plen) prefix

let contains_sub s sub =
  let n = String.length s and m = String.length sub in
  let rec go i =
    if i + m > n then false
    else String.equal (String.sub s i m) sub || go (i + 1)
  in
  go 0

(* Rule scoping, matching the invariants' blast radius: polymorphic
   comparison is a correctness trap where node/message records flow
   (lib/core, lib/bstnet); stdout discipline applies to all libraries. *)
let poly_compare_scope relpath =
  contains_sub relpath "lib/core/" || contains_sub relpath "lib/bstnet/"

let lib_scope relpath =
  starts_with ~prefix:"lib/" relpath || contains_sub relpath "/lib/"

(* A handler pattern that catches everything without keeping the
   exception: [_], or a binder spelled as intentionally unused. *)
let rec drops_exception p =
  match p.ppat_desc with
  | Ppat_any -> true
  | Ppat_var { txt; _ } -> String.length txt > 0 && Char.equal txt.[0] '_'
  | Ppat_alias (p, _) | Ppat_constraint (p, _) -> drops_exception p
  | Ppat_or (a, b) -> drops_exception a || drops_exception b
  | _ -> false

let is_literal_operand e =
  match e.pexp_desc with
  | Pexp_constant (Pconst_integer _ | Pconst_char _) -> true
  | Pexp_construct ({ txt = Longident.Lident ("true" | "false" | "()"); _ }, None)
    ->
      true
  | _ -> false

let stdout_idents =
  [
    "print_string";
    "print_bytes";
    "print_int";
    "print_float";
    "print_char";
    "print_endline";
    "print_newline";
    "Printf.printf";
    "Format.printf";
    "Format.print_string";
    "Format.print_newline";
    "Format.print_flush";
    "Format.std_formatter";
  ]

let contains_ident name e =
  let found = ref false in
  let super = Ast_iterator.default_iterator in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_ident { txt; _ } when String.equal (strip_stdlib (lid_name txt)) name
      ->
        found := true
    | _ -> ());
    super.expr self e
  in
  let it = { super with expr } in
  it.expr it e;
  !found

let apply_head e =
  match e.pexp_desc with Pexp_apply (f, _) -> ident_name f | _ -> ""

(* [Fun.protect ~finally:(... Mutex.unlock ...) ...], possibly at the
   head of a longer sequence. *)
let rec protected_unlock e =
  match e.pexp_desc with
  | Pexp_apply (f, args) when String.equal (ident_name f) "Fun.protect" ->
      List.exists
        (fun (lbl, a) ->
          match lbl with
          | Asttypes.Labelled "finally" -> contains_ident "Mutex.unlock" a
          | _ -> false)
        args
  | Pexp_sequence (e1, _) -> protected_unlock e1
  | _ -> false

let iterator ctx =
  let super = Ast_iterator.default_iterator in
  (* Locations (as "line:col") of fun-expressions in definition
     position — [let f x = ...] chains — which the no-alloc rule does
     not treat as per-call closure allocations. *)
  let defined_funs = Hashtbl.create 64 in
  (* Mutex.lock calls blessed by the canonical protect shape. *)
  let safe_locks = Hashtbl.create 16 in
  (* =/<> uses exempted because one operand is an immediate literal. *)
  let literal_cmps = Hashtbl.create 16 in
  (* Tuples that are really cons cells: [a :: b] carries its arguments
     as a tuple node, which must not double-report with the list. *)
  let cons_tuples = Hashtbl.create 16 in
  (* Top-level shadowing of =/<>/compare with monomorphic versions
     makes every use in the file type-checked, which is exactly the
     enforcement this rule wants. *)
  let waived_ops = Hashtbl.create 4 in
  let report_at loc rule msg =
    let line, col = position loc in
    ctx.report ~line ~col ~rule msg
  in
  let rec binding_name p =
    match p.ppat_desc with
    | Ppat_var { txt; _ } -> Some txt
    | Ppat_constraint (p, _) -> binding_name p
    | _ -> None
  in
  let scan_shadows str =
    List.iter
      (fun item ->
        match item.pstr_desc with
        | Pstr_value (_, vbs) ->
            List.iter
              (fun vb ->
                match binding_name vb.pvb_pat with
                | Some (("=" | "<>" | "compare") as op) ->
                    Hashtbl.replace waived_ops op ()
                | _ -> ())
              vbs
        | _ -> ())
      str
  in
  let check_handler_case case =
    if Option.is_none case.pc_guard && drops_exception case.pc_lhs then
      report_at case.pc_lhs.ppat_loc "catch-all"
        "handler drops the exception; match specific exceptions or re-raise"
  in
  let check_match_case case =
    match case.pc_lhs.ppat_desc with
    | Ppat_exception p when Option.is_none case.pc_guard && drops_exception p ->
        report_at case.pc_lhs.ppat_loc "catch-all"
          "handler drops the exception; match specific exceptions or re-raise"
    | _ -> ()
  in
  let value_binding self vb =
    let rec mark e =
      Hashtbl.replace defined_funs (loc_key e.pexp_loc) ();
      match e.pexp_desc with
      | Pexp_fun (_, _, _, body) -> mark body
      | Pexp_constraint (e, _) | Pexp_newtype (_, e) -> mark e
      | _ -> ()
    in
    mark vb.pvb_expr;
    super.value_binding self vb
  in
  let check_poly_compare e =
    if ctx.enabled "no-poly-compare" && poly_compare_scope ctx.relpath then begin
      (match e.pexp_desc with
      | Pexp_apply (f, args) -> (
          match ident_name f with
          | "=" | "<>" when List.exists (fun (_, a) -> is_literal_operand a) args
            ->
              Hashtbl.replace literal_cmps (loc_key f.pexp_loc) ()
          | _ -> ())
      | _ -> ());
      match e.pexp_desc with
      | Pexp_ident { txt; _ } -> (
          match strip_stdlib (lid_name txt) with
          | ("=" | "<>") as op ->
              if
                (not (Hashtbl.mem waived_ops op))
                && not (Hashtbl.mem literal_cmps (loc_key e.pexp_loc))
              then
                report_at e.pexp_loc "no-poly-compare"
                  (Printf.sprintf
                     "polymorphic %s; use Int.equal/String.equal or shadow \
                      (%s) monomorphically"
                     op op)
          | "compare" ->
              if not (Hashtbl.mem waived_ops "compare") then
                report_at e.pexp_loc "no-poly-compare"
                  "polymorphic compare; use Int.compare or a dedicated \
                   comparator"
          | "Hashtbl.hash" ->
              report_at e.pexp_loc "no-poly-compare"
                "polymorphic Hashtbl.hash; hash an explicit key instead"
          | _ -> ())
      | _ -> ()
    end
  in
  let check_no_alloc e =
    let line, _ = position e.pexp_loc in
    if ctx.enabled "no-alloc" && ctx.hot line then
      match e.pexp_desc with
      | Pexp_tuple _ ->
          if not (Hashtbl.mem cons_tuples (loc_key e.pexp_loc)) then
            report_at e.pexp_loc "no-alloc" "tuple allocation in hot region"
      | Pexp_array (_ :: _) ->
          report_at e.pexp_loc "no-alloc" "array literal allocation in hot region"
      | Pexp_construct ({ txt = Longident.Lident "::"; _ }, arg) ->
          (match arg with
          | Some ({ pexp_desc = Pexp_tuple _; _ } as a) ->
              Hashtbl.replace cons_tuples (loc_key a.pexp_loc) ()
          | _ -> ());
          report_at e.pexp_loc "no-alloc" "list allocation in hot region"
      | Pexp_fun _ | Pexp_function _ ->
          if not (Hashtbl.mem defined_funs (loc_key e.pexp_loc)) then
            report_at e.pexp_loc "no-alloc"
              "closure allocation in hot region; hoist it or justify with an \
               allow comment"
      | Pexp_ident _ -> (
          let name = ident_name e in
          if String.equal name "@" || String.equal name "List.append" then
            report_at e.pexp_loc "no-alloc" "list append in hot region"
          else if starts_with ~prefix:"List." name then
            report_at e.pexp_loc "no-alloc"
              (Printf.sprintf "%s in hot region; iterate arrays instead" name)
          else if starts_with ~prefix:"Printf." name then
            report_at e.pexp_loc "no-alloc"
              (Printf.sprintf "%s in hot region" name))
      | _ -> ()
  in
  let check_no_stdout e =
    if ctx.enabled "no-stdout" && lib_scope ctx.relpath then
      match e.pexp_desc with
      | Pexp_ident _ ->
          let name = ident_name e in
          if List.exists (String.equal name) stdout_idents then
            report_at e.pexp_loc "no-stdout"
              (Printf.sprintf
                 "%s writes to stdout from lib/; route output through Obskit \
                  sinks or Runtime.Export"
                 name)
      | _ -> ()
  in
  let check_lock_safety e =
    if ctx.enabled "lock-safety" then begin
      (match e.pexp_desc with
      | Pexp_sequence (e1, e2)
        when String.equal (apply_head e1) "Mutex.lock" && protected_unlock e2
        ->
          Hashtbl.replace safe_locks (loc_key e1.pexp_loc) ()
      | _ -> ());
      match e.pexp_desc with
      | Pexp_apply (f, _)
        when String.equal (ident_name f) "Mutex.lock"
             && not (Hashtbl.mem safe_locks (loc_key e.pexp_loc)) ->
          report_at e.pexp_loc "lock-safety"
            "Mutex.lock without an exception-safe unlock; use Pool.with_lock \
             or follow it directly with Fun.protect ~finally:(fun () -> \
             Mutex.unlock ...)"
      | _ -> ()
    end
  in
  let expr self e =
    (match e.pexp_desc with
    | Pexp_try (_, cases) when ctx.enabled "catch-all" ->
        List.iter check_handler_case cases
    | Pexp_match (_, cases) when ctx.enabled "catch-all" ->
        List.iter check_match_case cases
    | _ -> ());
    check_lock_safety e;
    check_poly_compare e;
    check_no_alloc e;
    check_no_stdout e;
    super.expr self e
  in
  let it = { super with expr; value_binding } in
  (it, scan_shadows)

let check_structure ctx str =
  let it, scan_shadows = iterator ctx in
  scan_shadows str;
  it.Ast_iterator.structure it str
