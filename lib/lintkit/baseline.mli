(** The baseline ratchet: committed grandfathered findings that may
    only shrink.  See docs/LINTING.md for the workflow. *)

type t

val empty : unit -> t

val of_lines : string list -> t
(** Parse baseline content: one {!Finding.key} per line, [#] comments
    and blank lines ignored. *)

val load : string -> t
(** {!of_lines} over a file; a missing file is an empty baseline. *)

val matches : t -> string -> bool
(** [matches t key] consumes a grandfather match for [key] (recording
    it for {!stale} accounting) and returns whether one existed. *)

val stale : t -> string list
(** Entries that matched no finding — the ratchet violation: their
    findings are fixed, so the entries must be removed. *)

val size : t -> int

val save : string -> string list -> unit
(** Write a baseline file with the standard header and the given
    finding keys, sorted and deduplicated. *)
