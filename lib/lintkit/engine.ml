(* Drives one lint run: file discovery, per-file checks (lexical +
   parsed), suppression comments, and the baseline ratchet. *)

let meta_parse_error = "parse-error"
let meta_directive = "lint-directive"

let normalize path =
  let p = "./" in
  if String.length path > 2 && String.equal (String.sub path 0 2) p then
    String.sub path 2 (String.length path - 2)
  else path

(* --- per-file lexical checks ------------------------------------- *)

let whitespace_findings ~relpath src acc =
  let acc = ref acc in
  Array.iteri
    (fun i line ->
      let lno = i + 1 in
      (match String.index_opt line '\t' with
      | Some col ->
          acc :=
            Finding.v ~file:relpath ~line:lno ~col:(col + 1) ~rule:"whitespace"
              "tab character; indent with spaces"
            :: !acc
      | None -> ());
      let len = String.length line in
      if len > 0 && (Char.equal line.[len - 1] ' ' || Char.equal line.[len - 1] '\t')
      then
        acc :=
          Finding.v ~file:relpath ~line:lno ~col:len ~rule:"whitespace"
            "trailing whitespace"
          :: !acc)
    (Source.lines src);
  !acc

let directive_findings ~relpath src acc =
  List.fold_left
    (fun acc (line, msg) ->
      Finding.v ~file:relpath ~line ~col:1 ~rule:meta_directive msg :: acc)
    acc
    (Source.directive_errors src)

(* --- parsed checks ----------------------------------------------- *)

let parse_findings ~enabled ~relpath src acc =
  let acc = ref acc in
  let report ~line ~col ~rule msg =
    acc := Finding.v ~file:relpath ~line ~col ~rule msg :: !acc
  in
  let lexbuf = Lexing.from_string (Source.code src) in
  Location.init lexbuf relpath;
  (match Parse.implementation lexbuf with
  | str ->
      let ctx =
        {
          Rules.relpath;
          enabled;
          hot = (fun line -> Source.in_hot src ~line);
          report;
        }
      in
      Rules.check_structure ctx str
  | exception (Syntaxerr.Error _ | Lexer.Error _) ->
      let p = lexbuf.Lexing.lex_curr_p in
      report ~line:p.Lexing.pos_lnum
        ~col:(p.Lexing.pos_cnum - p.Lexing.pos_bol + 1)
        ~rule:meta_parse_error "file does not parse");
  !acc

(* --- one file ----------------------------------------------------- *)

let is_ml relpath = Filename.check_suffix relpath ".ml"

let lint_source ~enabled ~relpath ?(mli_exists = true) src =
  let raw = [] in
  let raw =
    if enabled "whitespace" then whitespace_findings ~relpath src raw else raw
  in
  let raw = directive_findings ~relpath src raw in
  let raw =
    if is_ml relpath then parse_findings ~enabled ~relpath src raw else raw
  in
  let raw =
    if
      is_ml relpath
      && enabled "mli-coverage"
      && Rules.lib_scope relpath
      && not mli_exists
    then
      Finding.v ~file:relpath ~line:1 ~col:1 ~rule:"mli-coverage"
        "module has no .mli; every lib/ module must declare its interface"
      :: raw
    else raw
  in
  let kept, suppressed =
    List.partition
      (fun (f : Finding.t) ->
        not (Source.allowed src ~line:f.Finding.line ~rule:f.Finding.rule))
      raw
  in
  (List.sort Finding.compare kept, List.length suppressed)

let lint_string ~enabled ~path ?mli_exists code =
  let relpath = normalize path in
  let src = Source.of_string ~known:Rules.known ~path:relpath code in
  lint_source ~enabled ~relpath ?mli_exists src

(* --- discovery ---------------------------------------------------- *)

let rec walk path acc =
  if Sys.is_directory path then
    Array.fold_left
      (fun acc name ->
        if String.length name > 0 && Char.equal name.[0] '.' then acc
        else if String.equal name "_build" then acc
        else walk (Filename.concat path name) acc)
      acc
      (let names = Sys.readdir path in
       Array.sort String.compare names;
       names)
  else if
    Filename.check_suffix path ".ml" || Filename.check_suffix path ".mli"
  then path :: acc
  else acc

let discover paths =
  List.concat_map (fun p -> List.rev (walk p [])) (List.map normalize paths)

(* --- a whole run --------------------------------------------------- *)

type outcome = {
  findings : Finding.t list;  (* kept: not suppressed, not baselined *)
  files : int;
  suppressed : int;
  baselined : int;
  stale : string list;  (* baseline entries whose finding is gone *)
}

type pass =
  enabled:(string -> bool) -> (string * Source.t) list -> Finding.t list

let clean o =
  List.is_empty o.findings && List.is_empty o.stale

(* Tree passes see every loaded source at once (interprocedural
   analyses need the whole map); their findings go through the same
   per-line allow-comment suppression as the per-file rules. *)
let run_passes ~enabled passes sources =
  let raw = List.concat_map (fun p -> p ~enabled sources) passes in
  List.partition
    (fun (f : Finding.t) ->
      match List.assoc_opt f.Finding.file sources with
      | Some src ->
          not (Source.allowed src ~line:f.Finding.line ~rule:f.Finding.rule)
      | None -> true)
    raw

let run ?(enabled = fun _ -> true) ?(passes = []) ?baseline paths =
  let files = discover paths in
  let sources =
    List.map
      (fun relpath -> (relpath, Source.load ~known:Rules.known relpath))
      files
  in
  let all, suppressed =
    List.fold_left
      (fun (acc, supp) (relpath, src) ->
        let mli_exists =
          (not (is_ml relpath)) || Sys.file_exists (relpath ^ "i")
        in
        let kept, s = lint_source ~enabled ~relpath ~mli_exists src in
        (List.rev_append kept acc, supp + s))
      ([], 0) sources
  in
  let pass_kept, pass_suppressed = run_passes ~enabled passes sources in
  let all = List.rev_append pass_kept all in
  let suppressed = suppressed + List.length pass_suppressed in
  let base = match baseline with Some b -> b | None -> Baseline.empty () in
  let kept, baselined =
    List.partition (fun f -> not (Baseline.matches base (Finding.key f))) all
  in
  {
    findings = List.sort Finding.compare kept;
    files = List.length files;
    suppressed;
    baselined = List.length baselined;
    stale = Baseline.stale base;
  }

(* In-memory twin of {!run} for multi-file + pass fixtures in tests:
   no discovery, no baseline. *)
let lint_strings ~enabled ?(passes = []) files =
  let sources =
    List.map
      (fun (path, code) ->
        let relpath = normalize path in
        (relpath, Source.of_string ~known:Rules.known ~path:relpath code))
      files
  in
  let all, suppressed =
    List.fold_left
      (fun (acc, supp) (relpath, src) ->
        let kept, s = lint_source ~enabled ~relpath ~mli_exists:true src in
        (List.rev_append kept acc, supp + s))
      ([], 0) sources
  in
  let pass_kept, pass_suppressed = run_passes ~enabled passes sources in
  let all = List.rev_append pass_kept all in
  (List.sort Finding.compare all, suppressed + List.length pass_suppressed)
