(* The ratchet: a committed list of grandfathered findings that may
   only shrink.  Entries are position-independent finding keys
   ([file|rule|message], see {!Finding.key}); a current finding whose
   key appears here is reported as baselined instead of failing the
   run, and an entry matching no current finding is itself an error —
   the fix landed, so the entry must be deleted. *)

type t = { entries : (string, int ref) Hashtbl.t; order : string list }

let empty () = { entries = Hashtbl.create 8; order = [] }

let of_lines lines =
  let entries = Hashtbl.create 8 in
  let order =
    List.filter_map
      (fun line ->
        let line = String.trim line in
        if String.equal line "" || Char.equal line.[0] '#' then None
        else begin
          if not (Hashtbl.mem entries line) then
            Hashtbl.replace entries line (ref 0);
          Some line
        end)
      lines
  in
  { entries; order }

let load path =
  if not (Sys.file_exists path) then empty ()
  else begin
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () ->
        let lines = ref [] in
        (try
           while true do
             lines := input_line ic :: !lines
           done
         with End_of_file -> ());
        of_lines (List.rev !lines))
  end

(* Consume a match for [key]; true when the finding is grandfathered. *)
let matches t key =
  match Hashtbl.find_opt t.entries key with
  | Some count ->
      incr count;
      true
  | None -> false

let stale t =
  List.filter
    (fun key ->
      match Hashtbl.find_opt t.entries key with
      | Some count -> Int.equal !count 0
      | None -> false)
    t.order

let size t = List.length t.order

let header =
  [
    "# lintkit baseline — grandfathered findings, one key per line.";
    "# Format: file|rule|message (no positions, so entries survive";
    "# unrelated line shifts).  This file may only shrink: fixing a";
    "# finding makes its entry stale and the lint run fails until the";
    "# entry is deleted.  Justify any entry with a # comment above it.";
  ]

let save path keys =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      List.iter
        (fun l ->
          output_string oc l;
          output_char oc '\n')
        header;
      List.iter
        (fun k ->
          output_string oc k;
          output_char oc '\n')
        (List.sort_uniq String.compare keys))
