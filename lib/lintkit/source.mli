(** Lexical view of one OCaml source file: raw lines, extracted
    comments, and the lint directives they carry.

    Directive syntax (anywhere in a comment, leading whitespace
    ignored):

    - [(* lint: allow <rule> ... -- justification *)] suppresses the
      named rules on every line the comment spans and on the line
      immediately after it.  The justification must be separated from
      the rule names by [--] (or an em dash).
    - [(* lint: hot *)] opens a hot region (enforced by the [no-alloc]
      rule); [(* lint: hot-end *)] closes it.  An unclosed region runs
      to the end of the file. *)

type comment = { text : string; start_line : int; end_line : int }
type t

val of_string : ?known:(string -> bool) -> path:string -> string -> t
(** Scan [code].  [known] validates rule names appearing in
    [lint: allow] directives (default: accept anything); failures are
    reported via {!directive_errors}, never raised. *)

val load : ?known:(string -> bool) -> string -> t
val path : t -> string
val code : t -> string
val lines : t -> string array
val comments : t -> comment list

val allowed : t -> line:int -> rule:string -> bool
(** Is [rule] suppressed on [line] by an allow directive? *)

val hot_ranges : t -> (int * int) list
(** Inclusive 1-based line ranges marked hot. *)

val in_hot : t -> line:int -> bool

val directive_errors : t -> (int * string) list
(** Malformed directives as [(line, message)], e.g. unknown rule names
    or unbalanced hot markers. *)
