(* Node ids are ints; monomorphic (<>) as in Topology.  Header and
   field tags compare with String.equal explicitly. *)
let ( <> ) (a : int) b = not (Int.equal a b)

let to_string t =
  let n = Topology.n t in
  let buf = Buffer.create (16 * n) in
  Buffer.add_string buf (Printf.sprintf "cbnet-topology v1\nn %d\nroot %d\n" n (Topology.root t));
  Buffer.add_string buf "parents";
  for v = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf " %d" (Topology.parent t v))
  done;
  Buffer.add_string buf "\nweights";
  for v = 0 to n - 1 do
    Buffer.add_string buf (Printf.sprintf " %d" (Topology.weight t v))
  done;
  Buffer.add_char buf '\n';
  Buffer.contents buf

let of_string s =
  let lines = String.split_on_char '\n' s in
  let field name line =
    match String.split_on_char ' ' (String.trim line) with
    | tag :: rest when String.equal tag name -> rest
    | _ -> failwith (Printf.sprintf "Serialize.of_string: expected %S field" name)
  in
  match lines with
  | header :: n_line :: root_line :: parents_line :: weights_line :: _ ->
      if not (String.equal (String.trim header) "cbnet-topology v1") then
        failwith "Serialize.of_string: bad header";
      let n =
        match field "n" n_line with
        | [ v ] -> int_of_string v
        | _ -> failwith "Serialize.of_string: bad n"
      in
      let root =
        match field "root" root_line with
        | [ v ] -> int_of_string v
        | _ -> failwith "Serialize.of_string: bad root"
      in
      let parents = Array.of_list (List.map int_of_string (field "parents" parents_line)) in
      let weights = Array.of_list (List.map int_of_string (field "weights" weights_line)) in
      if Array.length parents <> n || Array.length weights <> n then
        failwith "Serialize.of_string: array length mismatch";
      let t = Topology.create ~n ~root in
      Array.iteri
        (fun child parent ->
          if parent <> Topology.nil then begin
            if parent < 0 || parent >= n then
              failwith "Serialize.of_string: parent out of range";
            Topology.set_child t ~parent ~child
          end
          else if child <> root then
            failwith "Serialize.of_string: non-root orphan node")
        parents;
      (* Rebuild interval labels bottom-up, then install the saved
         weights verbatim. *)
      let rec refresh v =
        if v <> Topology.nil then begin
          refresh (Topology.left t v);
          refresh (Topology.right t v);
          Topology.refresh_local t v
        end
      in
      refresh root;
      Array.iteri (fun v w -> Topology.set_weight t v w) weights;
      (match Check.structure t with
      | Ok () -> ()
      | Error e -> failwith ("Serialize.of_string: " ^ e));
      (match Check.bst_order t with
      | Ok () -> ()
      | Error e -> failwith ("Serialize.of_string: " ^ e));
      t
  | _ -> failwith "Serialize.of_string: truncated input"

let save t path =
  let oc = open_out path in
  Fun.protect ~finally:(fun () -> close_out oc) (fun () -> output_string oc (to_string t))

let load path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let len = in_channel_length ic in
      let buf = really_input_string ic len in
      of_string buf)
