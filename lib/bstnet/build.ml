(* Node ids are ints; monomorphic (=)/(<>) as in Topology. *)
let ( = ) : int -> int -> bool = Int.equal
let ( <> ) a b = not (Int.equal a b)

let of_interval_roots n choose =
  if n <= 0 then invalid_arg "Build.of_interval_roots: n must be positive";
  let root = choose ~lo:0 ~hi:(n - 1) in
  if root < 0 || root >= n then
    invalid_arg "Build.of_interval_roots: root choice out of interval";
  let t = Topology.create ~n ~root in
  let rec attach lo hi parent =
    if lo <= hi then begin
      let r = choose ~lo ~hi in
      if r < lo || r > hi then
        invalid_arg "Build.of_interval_roots: root choice out of interval";
      if parent <> Topology.nil then Topology.set_child t ~parent ~child:r;
      attach lo (r - 1) r;
      attach (r + 1) hi r
    end
  in
  attach 0 (n - 1) Topology.nil;
  (* Refresh labels bottom-up over the whole tree. *)
  let rec refresh v =
    if v <> Topology.nil then begin
      refresh (Topology.left t v);
      refresh (Topology.right t v);
      Topology.refresh_local t v
    end
  in
  refresh (Topology.root t);
  t

let balanced n = of_interval_roots n (fun ~lo ~hi -> (lo + hi) / 2)
let path n = of_interval_roots n (fun ~lo ~hi:_ -> lo)

let of_insertions n order =
  let seen = Array.make n false in
  let count = ref 0 in
  List.iter
    (fun k ->
      if k < 0 || k >= n || seen.(k) then
        invalid_arg "Build.of_insertions: not a permutation";
      seen.(k) <- true;
      incr count)
    order;
  if !count <> n then invalid_arg "Build.of_insertions: not a permutation";
  match order with
  | [] -> invalid_arg "Build.of_insertions: empty order"
  | root :: rest ->
      let t = Topology.create ~n ~root in
      let insert k =
        let rec descend v =
          if k < v then
            let l = Topology.left t v in
            if l = Topology.nil then Topology.set_child t ~parent:v ~child:k
            else descend l
          else
            let r = Topology.right t v in
            if r = Topology.nil then Topology.set_child t ~parent:v ~child:k
            else descend r
        in
        descend root
      in
      List.iter insert rest;
      let rec refresh v =
        if v <> Topology.nil then begin
          refresh (Topology.left t v);
          refresh (Topology.right t v);
          Topology.refresh_local t v
        end
      in
      refresh root;
      t

let random rng n =
  let order = Array.init n (fun i -> i) in
  Simkit.Rng.shuffle rng order;
  of_insertions n (Array.to_list order)
