let to_dot ?(name = "cbnet") ?(highlight = []) ?show_weights t =
  let buf = Buffer.create 1024 in
  let weighted =
    match show_weights with
    | Some b -> b
    | None ->
        let any = ref false in
        Topology.iter_subtree t (Topology.root t) (fun v ->
            if Topology.weight t v <> 0 then any := true);
        !any
  in
  Buffer.add_string buf (Printf.sprintf "digraph %s {\n" name);
  Buffer.add_string buf "  node [shape=circle, fontsize=10];\n";
  Topology.iter_subtree t (Topology.root t) (fun v ->
      let label =
        if weighted then Printf.sprintf "%d\\nw=%d" v (Topology.weight t v)
        else string_of_int v
      in
      let style =
        if List.mem v highlight then ", style=filled, fillcolor=lightblue"
        else ""
      in
      Buffer.add_string buf
        (Printf.sprintf "  n%d [label=\"%s\"%s];\n" v label style));
  Topology.iter_subtree t (Topology.root t) (fun v ->
      let edge child tag =
        if not (Int.equal child Topology.nil) then
          Buffer.add_string buf
            (Printf.sprintf "  n%d -> n%d [label=\"%s\", fontsize=8];\n" v child
               tag)
      in
      edge (Topology.left t v) "L";
      edge (Topology.right t v) "R");
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_dot ?name ?highlight ?show_weights t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_dot ?name ?highlight ?show_weights t))
