type t = {
  n : int;
  parent : int array;
  left : int array;
  right : int array;
  smallest : int array;
  largest : int array;
  weight : int array;
  rank_memo : float array;  (* cached rank per node; < 0 = stale *)
  version : int array;  (* bumped when a node's structural fields change *)
  stamp : int array;  (* bumped on EVERY mutation of a node: structure or weight *)
  mutable root : int;
  mutable added : int;
}

let nil = -1

(* Node ids are plain ints.  Shadowing (=)/(<>) monomorphically makes
   the type-checker reject any structural comparison that sneaks in,
   which is the enforcement the no-poly-compare lint rule wants. *)
let ( = ) : int -> int -> bool = Int.equal
let ( <> ) a b = not (Int.equal a b)

let create ~n ~root =
  if n <= 0 then invalid_arg "Topology.create: n must be positive";
  if root < 0 || root >= n then invalid_arg "Topology.create: root out of range";
  {
    n;
    parent = Array.make n nil;
    left = Array.make n nil;
    right = Array.make n nil;
    smallest = Array.init n (fun i -> i);
    largest = Array.init n (fun i -> i);
    weight = Array.make n 0;
    rank_memo = Array.make n (-1.0);
    version = Array.make n 0;
    stamp = Array.make n 0;
    root;
    added = 0;
  }

let n t = t.n
let root t = t.root
let parent t v = t.parent.(v)
let left t v = t.left.(v)
let right t v = t.right.(v)
let smallest t v = t.smallest.(v)
let largest t v = t.largest.(v)
let weight t v = t.weight.(v)

let counter t v =
  let wl = if t.left.(v) = nil then 0 else t.weight.(t.left.(v)) in
  let wr = if t.right.(v) = nil then 0 else t.weight.(t.right.(v)) in
  t.weight.(v) - wl - wr

let rank_memo t v = t.rank_memo.(v)
let version t v = t.version.(v)
let stamp t v = t.stamp.(v)
let set_rank_memo t v r = t.rank_memo.(v) <- r

(* Unlike [version] (structural shape only — the routing/shape caches
   depend on that), [stamp] counts every mutation of a node, weight
   writes included: the concurrent executor's speculative plan wave
   re-validates its read set against it before committing. *)
let bump_stamp t v = t.stamp.(v) <- t.stamp.(v) + 1

let set_weight t v w =
  t.weight.(v) <- w;
  t.rank_memo.(v) <- -1.0;
  bump_stamp t v

let add_weight t v k =
  t.weight.(v) <- t.weight.(v) + k;
  t.rank_memo.(v) <- -1.0;
  t.added <- t.added + k;
  bump_stamp t v

let weight_added t = t.added

let set_child t ~parent:p ~child:c =
  if p = c then invalid_arg "Topology.set_child: parent = child";
  if c < p then t.left.(p) <- c else t.right.(p) <- c;
  t.parent.(c) <- p;
  t.version.(p) <- t.version.(p) + 1;
  t.version.(c) <- t.version.(c) + 1;
  bump_stamp t p;
  bump_stamp t c

let set_root t v =
  if t.parent.(v) <> nil then
    invalid_arg "Topology.set_root: node has a parent";
  t.root <- v;
  t.version.(v) <- t.version.(v) + 1;
  bump_stamp t v

let refresh_local t v =
  let l = t.left.(v) and r = t.right.(v) in
  t.smallest.(v) <- (if l = nil then v else t.smallest.(l));
  t.largest.(v) <- (if r = nil then v else t.largest.(r));
  let c = max 0 (counter t v) in
  let wl = if l = nil then 0 else t.weight.(l) in
  let wr = if r = nil then 0 else t.weight.(r) in
  t.weight.(v) <- c + wl + wr;
  t.rank_memo.(v) <- -1.0;
  bump_stamp t v

let rec refresh_upward t v =
  if v <> nil then begin
    refresh_local t v;
    refresh_upward t t.parent.(v)
  end

let is_root t v = t.parent.(v) = nil
let is_left_child t v = (not (is_root t v)) && t.left.(t.parent.(v)) = v
let is_right_child t v = (not (is_root t v)) && t.right.(t.parent.(v)) = v

let in_subtree t ~root:v u = t.smallest.(v) <= u && u <= t.largest.(v)

(* Promote x over its parent p.  Mirror-symmetric right/left rotation:

       p                x
      / \              / \
     x   C    ==>     A   p
    / \                  / \
   A   B                B   C

   Only p and x change subtree contents; intervals and weights of A, B,
   C subtrees are untouched. *)
let rotate_up t x =
  let p = t.parent.(x) in
  if p = nil then invalid_arg "Topology.rotate_up: node is the root";
  let g = t.parent.(p) in
  let cx = counter t x and cp = counter t p in
  if t.left.(p) = x then begin
    (* Right rotation: x's right subtree B moves under p. *)
    let b = t.right.(x) in
    t.left.(p) <- b;
    if b <> nil then t.parent.(b) <- p;
    if b <> nil then t.version.(b) <- t.version.(b) + 1;
    if b <> nil then bump_stamp t b;
    t.right.(x) <- p
  end
  else begin
    (* Left rotation: x's left subtree B moves under p. *)
    let b = t.left.(x) in
    t.right.(p) <- b;
    if b <> nil then t.parent.(b) <- p;
    if b <> nil then t.version.(b) <- t.version.(b) + 1;
    if b <> nil then bump_stamp t b;
    t.left.(x) <- p
  end;
  (* x, p (links + intervals) and g (child link) changed shape. *)
  t.version.(x) <- t.version.(x) + 1;
  t.version.(p) <- t.version.(p) + 1;
  if g <> nil then t.version.(g) <- t.version.(g) + 1;
  bump_stamp t x;
  bump_stamp t p;
  if g <> nil then bump_stamp t g;
  t.parent.(p) <- x;
  t.parent.(x) <- g;
  if g = nil then t.root <- x
  else if t.left.(g) = p then t.left.(g) <- x
  else t.right.(g) <- x;
  (* x inherits p's interval and total weight; p is recomputed from its
     new children.  Order matters: p first (its children are final). *)
  let old_interval_lo = min t.smallest.(x) t.smallest.(p)
  and old_interval_hi = max t.largest.(x) t.largest.(p) in
  let pl = t.left.(p) and pr = t.right.(p) in
  t.smallest.(p) <- (if pl = nil then p else t.smallest.(pl));
  t.largest.(p) <- (if pr = nil then p else t.largest.(pr));
  let wpl = if pl = nil then 0 else t.weight.(pl) in
  let wpr = if pr = nil then 0 else t.weight.(pr) in
  t.weight.(p) <- cp + wpl + wpr;
  t.rank_memo.(p) <- -1.0;
  t.smallest.(x) <- old_interval_lo;
  t.largest.(x) <- old_interval_hi;
  let xl = t.left.(x) and xr = t.right.(x) in
  let wxl = if xl = nil then 0 else t.weight.(xl) in
  let wxr = if xr = nil then 0 else t.weight.(xr) in
  t.weight.(x) <- cx + wxl + wxr;
  t.rank_memo.(x) <- -1.0

(* The torn prefix of {!rotate_up}: the pair's local link surgery
   completes (B transferred, x over p), but the node "dies" before the
   two follow-up actions — swinging the grandparent's child pointer
   (or the root pointer) to x, and recomputing the pair's interval
   labels and weight aggregates.  The result deliberately violates
   [Check.structure]/[interval_labels]/[weights]; [Faultkit.Repair]
   rolls the rotation forward from this state. *)
let rotate_up_torn t x =
  let p = t.parent.(x) in
  if p = nil then invalid_arg "Topology.rotate_up_torn: node is the root";
  let g = t.parent.(p) in
  if t.left.(p) = x then begin
    let b = t.right.(x) in
    t.left.(p) <- b;
    if b <> nil then t.parent.(b) <- p;
    if b <> nil then t.version.(b) <- t.version.(b) + 1;
    if b <> nil then bump_stamp t b;
    t.right.(x) <- p
  end
  else begin
    let b = t.left.(x) in
    t.right.(p) <- b;
    if b <> nil then t.parent.(b) <- p;
    if b <> nil then t.version.(b) <- t.version.(b) + 1;
    if b <> nil then bump_stamp t b;
    t.left.(x) <- p
  end;
  t.version.(x) <- t.version.(x) + 1;
  t.version.(p) <- t.version.(p) + 1;
  bump_stamp t x;
  bump_stamp t p;
  t.parent.(p) <- x;
  t.parent.(x) <- g

(* Restore one node's derived state — interval labels and weight
   aggregate — from its (already correct) children plus its durable
   node counter.  Unlike {!refresh_local} this does not read the
   node's own stale aggregate: after a torn rotation [counter t v]
   computed from unrecomputed weights is garbage, so the caller
   supplies the counter captured before the tear. *)
(* No non-negativity guard on [counter]: like [rotate_up]'s own derived
   cx/cp, a counter read mid-flow (weight-update deposits in flight)
   can be legitimately negative, and repair must tolerate exactly the
   weight states the healthy rotation path does. *)
let repair_local t v ~counter =
  let l = t.left.(v) and r = t.right.(v) in
  t.smallest.(v) <- (if l = nil then v else t.smallest.(l));
  t.largest.(v) <- (if r = nil then v else t.largest.(r));
  let wl = if l = nil then 0 else t.weight.(l) in
  let wr = if r = nil then 0 else t.weight.(r) in
  t.weight.(v) <- counter + wl + wr;
  t.rank_memo.(v) <- -1.0;
  bump_stamp t v

type direction = Up | Down_left | Down_right | Here

let direction_to t ~src ~dst =
  if src = dst then Here
  else if dst < src && dst >= t.smallest.(src) then Down_left
  else if dst > src && dst <= t.largest.(src) then Down_right
  else Up

let next_hop t ~src ~dst =
  match direction_to t ~src ~dst with
  | Here -> invalid_arg "Topology.next_hop: src = dst"
  | Up -> t.parent.(src)
  | Down_left -> t.left.(src)
  | Down_right -> t.right.(src)

let depth t v =
  let rec go v acc = if t.parent.(v) = nil then acc else go t.parent.(v) (acc + 1) in
  go v 0

let lca t u v =
  let lo = min u v and hi = max u v in
  let rec descend x =
    if x >= lo && x <= hi then x
    else if x > hi then descend t.left.(x)
    else descend t.right.(x)
  in
  descend t.root

let path_to_root t v =
  let rec go v acc = if v = nil then List.rev acc else go t.parent.(v) (v :: acc) in
  go v []

let path t u v =
  let a = lca t u v in
  let rec climb x acc = if x = a then List.rev (x :: acc) else climb t.parent.(x) (x :: acc) in
  let up = climb u [] in
  let rec climb_v x acc = if x = a then acc else climb_v t.parent.(x) (x :: acc) in
  up @ climb_v v []

let distance t u v =
  let a = lca t u v in
  let rec climb x acc = if x = a then acc else climb t.parent.(x) (acc + 1) in
  climb u 0 + climb v 0

let total_weight t = t.weight.(t.root)

let copy t =
  {
    n = t.n;
    parent = Array.copy t.parent;
    left = Array.copy t.left;
    right = Array.copy t.right;
    smallest = Array.copy t.smallest;
    largest = Array.copy t.largest;
    weight = Array.copy t.weight;
    rank_memo = Array.copy t.rank_memo;
    version = Array.copy t.version;
    stamp = Array.copy t.stamp;
    root = t.root;
    added = t.added;
  }

let rec iter_subtree t v f =
  if v <> nil then begin
    f v;
    iter_subtree t t.left.(v) f;
    iter_subtree t t.right.(v) f
  end

let pp fmt t =
  let rec render v prefix is_tail =
    if v <> nil then begin
      Format.fprintf fmt "%s%s%d (w=%d, [%d..%d])@." prefix
        (if is_tail then "`-- " else "|-- ")
        v t.weight.(v) t.smallest.(v) t.largest.(v);
      let child_prefix = prefix ^ if is_tail then "    " else "|   " in
      let kids =
        List.filter (fun c -> c <> nil) [ t.left.(v); t.right.(v) ]
      in
      let rec loop = function
        | [] -> ()
        | [ last ] -> render last child_prefix true
        | k :: rest ->
            render k child_prefix false;
            loop rest
      in
      loop kids
    end
  in
  Format.fprintf fmt "root=%d@." t.root;
  render t.root "" true
