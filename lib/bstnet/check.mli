(** Structural invariant checkers, used by tests and by simulators in
    debug mode.  Each check returns [Ok ()] or a description of the
    first violation found. *)

val structure : Topology.t -> (unit, string) result
(** Parent/child links are mutually consistent, every node is reachable
    from the root exactly once, and there are no cycles. *)

val bst_order : Topology.t -> (unit, string) result
(** In-order traversal yields [0, 1, ..., n-1]. *)

val interval_labels : Topology.t -> (unit, string) result
(** Every node's [smallest]/[largest] equal the true subtree min/max. *)

val weights : ?counters:int array -> Topology.t -> (unit, string) result
(** Every node's weight equals its counter plus its children's weights
    and counters are non-negative; when [counters] is given, the
    derived counters must equal it. *)

val structural : Topology.t -> (unit, string) result
(** {!structure}, {!bst_order} and {!interval_labels} in sequence —
    everything except {!weights}.  This is the suite run-time invariant
    gates use: weight sums are a {e flow} property, exact only relative
    to the weight-update deposits still in flight, so a mid-run (or
    even end-of-run) tree of a concurrent execution can legitimately
    fail {!weights} while being perfectly well-formed. *)

val all : ?counters:int array -> Topology.t -> (unit, string) result
(** All of the above in sequence ({!structural} then {!weights}). *)

val assert_ok : (unit, string) result -> unit
(** @raise Failure with the violation description on [Error]. *)
