(** Binary-search-tree network topology.

    Nodes are the integers [0 .. n-1]; the node id is its BST key (the
    paper identifies nodes with their identifiers and routes by key
    comparison).  The structure is stored in flat arrays — parent /
    left / right links plus, per node, the [smallest] and [largest]
    keys of its subtree (the local routing labels of Sec. V) and the
    subtree [weight] used by counting-based reconfiguration (Sec. IV).

    All mutations go through {!rotate_up}, which performs one local
    rotation in O(1), preserving the BST property, the interval labels
    and the subtree weights — exactly the "local reconfiguration at
    constant cost" of the paper's model. *)

type t

val nil : int
(** Sentinel for "no node" ([-1]). *)

val create : n:int -> root:int -> t
(** A topology shell with [n] isolated nodes and declared root; links
    must then be installed with {!set_child}.  Prefer the builders in
    {!Build}. *)

val n : t -> int
val root : t -> int
val parent : t -> int -> int
val left : t -> int -> int
val right : t -> int -> int
val smallest : t -> int -> int
val largest : t -> int -> int

val weight : t -> int -> int
(** Subtree weight [W(v)] (Eq. 1 of the paper). *)

val counter : t -> int -> int
(** Node counter [c(v) = W(v) - W(v.l) - W(v.r)] (Sec. IV). *)

val set_weight : t -> int -> int -> unit
val add_weight : t -> int -> int -> unit
(** [add_weight t v k] adds [k] to [W(v)] only — callers are
    responsible for the ancestor updates the protocol performs via
    travelling messages. *)

val weight_added : t -> int
(** Total weight ever applied through {!add_weight} — the protocol's
    increment budget, used by conservation tests. *)

val rank_memo : t -> int -> float
(** Per-node memo slot maintained for [Cbnet.Potential]'s cached node
    ranks: the value last stored with {!set_rank_memo}, or a negative
    sentinel when the node's weight has changed since (every weight
    mutation — {!set_weight}, {!add_weight}, {!refresh_local},
    {!rotate_up} — invalidates the slot).  {!copy} preserves memos. *)

val set_rank_memo : t -> int -> float -> unit
(** Store a (non-negative) memoized value for a node. *)

val version : t -> int -> int
(** Per-node structure version: a monotone counter bumped whenever the
    node's links or key interval change ({!rotate_up} bumps the
    rotated pair, the node above it and the transferred subtree root;
    {!set_child} bumps both endpoints).  Weight updates do {e not}
    bump it.  Lets callers cache derived data about a node's
    neighbourhood — a cached value read from nodes whose versions are
    unchanged is still exact (used by [Cbnet.Concurrent]'s step-shape
    cache). *)

val stamp : t -> int -> int
(** Per-node mutation stamp: a monotone counter bumped on {e every}
    mutation touching the node — structural changes (the same sites as
    {!version}) {e and} weight writes ({!set_weight}, {!add_weight},
    {!refresh_local}, {!repair_local}, {!rotate_up}'s aggregate
    recomputes).  Strictly finer than {!version}: a plan speculated
    against a set of nodes is still exact iff all their stamps are
    unchanged.  Used by [Cbnet.Concurrent]'s parallel plan wave to
    validate speculated steps before committing them. *)

val set_child : t -> parent:int -> child:int -> unit
(** Attach [child] (with its current subtree) under [parent] on the
    side determined by key order.  Interval labels and weights are not
    refreshed — the caller must call {!refresh_upward}, or use the
    builders in {!Build}, which do this for you. *)

val set_root : t -> int -> unit
(** Declare a parentless node the root (used by [Faultkit.Repair] to
    complete a torn rotation whose victim was promoted over the old
    root).  @raise Invalid_argument if the node has a parent. *)

val refresh_local : t -> int -> unit
(** Recompute [smallest]/[largest]/[weight] of one node from its
    children (children must already be correct). *)

val refresh_upward : t -> int -> unit
(** {!refresh_local} on a node and all its ancestors. *)

val is_root : t -> int -> bool
val is_left_child : t -> int -> bool
val is_right_child : t -> int -> bool

val in_subtree : t -> root:int -> int -> bool
(** [in_subtree t ~root:v u] — key-interval test, O(1). *)

val rotate_up : t -> int -> unit
(** [rotate_up t x] promotes [x] over its parent (a "zig"): a right
    rotation when [x] is a left child, left rotation otherwise.
    Updates links, interval labels and subtree weights of the two
    nodes involved; O(1).
    @raise Invalid_argument if [x] is the root. *)

val rotate_up_torn : t -> int -> unit
(** Fault-injection hook ([Faultkit]): perform only the torn prefix of
    [rotate_up t x] — the rotated pair's local link surgery — leaving
    the grandparent's child pointer (or the root pointer) stale and
    the pair's interval labels and weight aggregates unrecomputed.
    The tree {e deliberately} violates the {!Check} invariants until
    the rotation is rolled forward ({!set_child}/{!set_root} plus
    {!repair_local} with the pair's pre-tear counters).
    @raise Invalid_argument if [x] is the root. *)

val repair_local : t -> int -> counter:int -> unit
(** [repair_local t v ~counter] rebuilds [v]'s derived state —
    interval labels and weight aggregate — from its (already correct)
    children and the given durable node counter [c(v)].  Unlike
    {!refresh_local} it never reads [v]'s own stale aggregate, so it
    is usable on a tree damaged by {!rotate_up_torn}; repair proceeds
    bottom-up (demoted node first).  A negative [counter] is accepted:
    counters read mid-flow (weight-update deposits in flight) can dip
    below zero, just as {!rotate_up}'s own derived counters can. *)

type direction = Up | Down_left | Down_right | Here

val direction_to : t -> src:int -> dst:int -> direction
(** Local routing decision of Sec. V: where must a message standing at
    [src] go to reach key [dst]?  Uses only [src]'s interval labels. *)

val next_hop : t -> src:int -> dst:int -> int
(** The neighbour [direction_to] points at.
    @raise Invalid_argument when [src = dst]. *)

val depth : t -> int -> int
(** Distance to the root (root has depth 0). *)

val lca : t -> int -> int -> int
(** Lowest common ancestor, found by descending from the root by key
    order; O(depth). *)

val distance : t -> int -> int -> int
(** Path length (number of links) between two nodes. *)

val path : t -> int -> int -> int list
(** Node sequence from [u] to [v] inclusive (through their LCA). *)

val path_to_root : t -> int -> int list
(** Node sequence from [v] up to and including the root. *)

val total_weight : t -> int
(** [W(root)] — equals [2m] after [m] delivered messages (Thm 1). *)

val copy : t -> t

val iter_subtree : t -> int -> (int -> unit) -> unit
(** Preorder visit of the subtree rooted at a node. *)

val pp : Format.formatter -> t -> unit
(** Multi-line ASCII rendering, for debugging small trees. *)
