let ( let* ) = Result.bind

(* Node ids are ints; monomorphic (=)/(<>) as in Topology. *)
let ( = ) : int -> int -> bool = Int.equal
let ( <> ) a b = not (Int.equal a b)

let structure t =
  let n = Topology.n t in
  let r = Topology.root t in
  if Topology.parent t r <> Topology.nil then
    Error (Printf.sprintf "root %d has a parent" r)
  else begin
    let visited = Array.make n false in
    let violation = ref None in
    let count = ref 0 in
    let rec visit v =
      if Option.is_none !violation && v <> Topology.nil then
        if visited.(v) then violation := Some (Printf.sprintf "node %d visited twice" v)
        else begin
          visited.(v) <- true;
          incr count;
          let l = Topology.left t v and rt = Topology.right t v in
          if l <> Topology.nil && Topology.parent t l <> v then
            violation := Some (Printf.sprintf "left child %d of %d has wrong parent" l v)
          else if rt <> Topology.nil && Topology.parent t rt <> v then
            violation := Some (Printf.sprintf "right child %d of %d has wrong parent" rt v)
          else begin
            visit l;
            visit rt
          end
        end
    in
    visit r;
    match !violation with
    | Some msg -> Error msg
    | None ->
        if !count <> n then
          Error (Printf.sprintf "only %d of %d nodes reachable from root" !count n)
        else Ok ()
  end

let bst_order t =
  let expected = ref 0 in
  let violation = ref None in
  let rec inorder v =
    if Option.is_none !violation && v <> Topology.nil then begin
      inorder (Topology.left t v);
      if Option.is_none !violation then begin
        if v <> !expected then
          violation := Some (Printf.sprintf "in-order position %d holds key %d" !expected v);
        incr expected;
        inorder (Topology.right t v)
      end
    end
  in
  inorder (Topology.root t);
  match !violation with Some msg -> Error msg | None -> Ok ()

let interval_labels t =
  let violation = ref None in
  (* Returns (min, max) of subtree. *)
  let rec visit v =
    let l = Topology.left t v and r = Topology.right t v in
    let lo = if l = Topology.nil then v else fst (visit l) in
    let hi = if r = Topology.nil then v else snd (visit r) in
    if Option.is_none !violation then begin
      if Topology.smallest t v <> lo then
        violation :=
          Some (Printf.sprintf "node %d: smallest=%d, actual=%d" v (Topology.smallest t v) lo);
      if Topology.largest t v <> hi then
        violation :=
          Some (Printf.sprintf "node %d: largest=%d, actual=%d" v (Topology.largest t v) hi)
    end;
    (lo, hi)
  in
  ignore (visit (Topology.root t));
  match !violation with Some msg -> Error msg | None -> Ok ()

let weights ?counters t =
  let violation = ref None in
  (* Recompute the expected subtree weight from derived node counters
     (or, when [counters] is given, from that ground truth) and compare
     with the stored aggregate. *)
  let rec visit v =
    if v = Topology.nil then 0
    else begin
      let wl = visit (Topology.left t v) in
      let wr = visit (Topology.right t v) in
      let c = Topology.counter t v in
      let c_expected = match counters with Some cs -> cs.(v) | None -> c in
      if Option.is_none !violation then begin
        if c < 0 then violation := Some (Printf.sprintf "node %d: negative counter %d" v c);
        if c <> c_expected then
          violation := Some (Printf.sprintf "node %d: counter %d, expected %d" v c c_expected);
        if Topology.weight t v <> c_expected + wl + wr then
          violation :=
            Some
              (Printf.sprintf "node %d: weight %d <> counter %d + children %d" v
                 (Topology.weight t v) c_expected (wl + wr))
      end;
      c_expected + wl + wr
    end
  in
  ignore (visit (Topology.root t));
  match !violation with Some msg -> Error msg | None -> Ok ()

let structural t =
  let* () = structure t in
  let* () = bst_order t in
  interval_labels t

let all ?counters t =
  let* () = structural t in
  weights ?counters t

let assert_ok = function Ok () -> () | Error msg -> failwith msg
