(* Benchmark and reproduction harness.

   Usage:
     dune exec bench/main.exe                  -- every artifact (Fig. 2-4,
                                                  Thm 1-2, ablations, micro)
     dune exec bench/main.exe -- fig2 fig3 ... -- a subset
     dune exec bench/main.exe -- --full ...    -- paper-size workloads
     dune exec bench/main.exe -- --seeds 30    -- paper-size repetitions

   Each FIG* table regenerates the rows/series of the corresponding
   figure of the paper; micro runs Bechamel on the core operations. *)

let micro fmt =
  let open Bechamel in
  let rng = Simkit.Rng.create 7 in
  let tree_n = 1024 in
  (* Pre-built state reused across benchmarked closures. *)
  let tree = Bstnet.Build.balanced tree_n in
  let rec fill v =
    if v = Bstnet.Topology.nil then 0
    else begin
      let w =
        1
        + fill (Bstnet.Topology.left tree v)
        + fill (Bstnet.Topology.right tree v)
      in
      Bstnet.Topology.set_weight tree v w;
      w
    end
  in
  ignore (fill (Bstnet.Topology.root tree));
  let zipf = Workloads.Zipf.create ~alpha:1.2 ~k:4096 in
  let lz_data = Array.init 10_000 (fun i -> (i * 37) mod 512) in
  let small_trace =
    Array.init 256 (fun i -> (i, (i * 7) mod 127, (i * 13) mod 127))
  in
  let config = Cbnet.Config.default in
  let tests =
    [
      Test.make ~name:"rotate_up+undo"
        (Staged.stage (fun () ->
             (* Rotate a mid-tree node up and back: constant-size local
                reconfiguration, the paper's unit of adjustment cost. *)
             let x = 300 in
             let p = Bstnet.Topology.parent tree x in
             Bstnet.Topology.rotate_up tree x;
             Bstnet.Topology.rotate_up tree p));
      Test.make ~name:"delta_promote"
        (Staged.stage (fun () -> ignore (Cbnet.Potential.delta_promote tree 300)));
      Test.make ~name:"step-plan"
        (Staged.stage (fun () ->
             ignore (Cbnet.Step.plan config tree ~current:5 ~dst:900)));
      Test.make ~name:"lca"
        (Staged.stage (fun () -> ignore (Bstnet.Topology.lca tree 5 900)));
      Test.make ~name:"zipf-sample"
        (Staged.stage (fun () -> ignore (Workloads.Zipf.sample zipf rng)));
      Test.make ~name:"lz78-10k-symbols"
        (Staged.stage (fun () -> ignore (Tracekit.Lz78.compressed_bits lz_data)));
      Test.make ~name:"scbn-256msg-n127"
        (Staged.stage (fun () ->
             ignore (Cbnet.Sequential.run (Bstnet.Build.balanced 127) small_trace)));
    ]
  in
  let grouped = Test.make_grouped ~name:"cbnet" ~fmt:"%s/%s" tests in
  let instance = Toolkit.Instance.monotonic_clock in
  let cfg =
    Benchmark.cfg ~limit:2000 ~quota:(Time.second 0.5) ~kde:(Some 1000) ()
  in
  let raw = Benchmark.all cfg [ instance ] grouped in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:true ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols instance raw in
  Format.fprintf fmt "== MICRO: core operation latencies (monotonic clock) ==@.";
  let rows = ref [] in
  Hashtbl.iter
    (fun name result ->
      match Bechamel.Analyze.OLS.estimates result with
      | Some [ est ] -> rows := (name, est) :: !rows
      | _ -> ())
    results;
  List.iter
    (fun (name, ns) -> Format.fprintf fmt "%-28s %12.1f ns/run@." name ns)
    (List.sort compare !rows);
  Format.fprintf fmt "@."

let export_csv dir options =
  let cells =
    Runtime.Experiment.run_matrix ~scale:options.Runtime.Figures.scale
      ~seeds:options.Runtime.Figures.seeds
      ~lambda:options.Runtime.Figures.lambda
      ~base_seed:options.Runtime.Figures.base_seed
      ~workloads:Workloads.Catalog.paper_six ~algos:Runtime.Algo.all ()
  in
  let path = Filename.concat dir "measurements.csv" in
  Runtime.Export.measurements_csv cells path;
  Format.printf "wrote %d cells to %s@." (List.length cells) path

let () =
  let args = Array.to_list Sys.argv |> List.tl in
  let full = List.mem "--full" args in
  let seeds =
    let rec find = function
      | "--seeds" :: v :: _ -> int_of_string v
      | _ :: rest -> find rest
      | [] -> if full then 30 else 3
    in
    find args
  in
  let options =
    {
      Runtime.Figures.default_options with
      Runtime.Figures.scale =
        (if full then Workloads.Catalog.Full else Workloads.Catalog.Default);
      seeds;
    }
  in
  let wanted =
    List.filter
      (fun a -> not (String.length a >= 2 && String.sub a 0 2 = "--"))
      (List.filter (fun a -> a <> string_of_int seeds) args)
  in
  let fmt = Format.std_formatter in
  let artifacts =
    [
      ("fig2", fun () -> Runtime.Figures.fig2 ~options fmt);
      ("fig3", fun () -> Runtime.Figures.fig3 ~options fmt);
      ("fig4", fun () -> Runtime.Figures.fig4 ~options fmt);
      ("thm1", fun () -> Runtime.Figures.thm1 ~options fmt);
      ("thm2", fun () -> Runtime.Figures.thm2 ~options fmt);
      ( "ablation",
        fun () ->
          Runtime.Figures.ablation_delta ~options fmt;
          Runtime.Figures.ablation_reset ~options fmt;
          Runtime.Figures.ablation_mtr ~options fmt;
          Runtime.Figures.ablation_rcost ~options fmt );
      ("timeline", fun () -> Runtime.Figures.timeline ~options fmt);
      ("latency", fun () -> Runtime.Figures.latency ~options fmt);
      ("trace-map", fun () -> Runtime.Figures.trace_map_sweep ~options fmt);
      ("micro", fun () -> micro fmt);
    ]
  in
  let csv_dir =
    let rec find = function
      | "--csv" :: dir :: _ -> Some dir
      | _ :: rest -> find rest
      | [] -> None
    in
    find args
  in
  (match csv_dir with Some dir -> export_csv dir options | None -> ());
  let wanted = List.filter (fun a -> Some a <> csv_dir) wanted in
  match wanted with
  | [] ->
      (* Everything: figures share one matrix computation. *)
      Runtime.Figures.all ~options fmt;
      micro fmt
  | names ->
      List.iter
        (fun name ->
          match List.assoc_opt name artifacts with
          | Some run -> run ()
          | None ->
              Format.eprintf "unknown artifact %S (known: %s)@." name
                (String.concat ", " (List.map fst artifacts));
              exit 2)
        names
