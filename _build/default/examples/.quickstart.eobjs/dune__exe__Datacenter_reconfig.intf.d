examples/datacenter_reconfig.mli:
