examples/hpc_collective.ml: Cbnet Format List Printf Runtime Simkit Workloads
