examples/hpc_collective.mli:
