examples/concurrency_scaling.mli:
