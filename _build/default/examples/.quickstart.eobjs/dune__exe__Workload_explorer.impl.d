examples/workload_explorer.ml: Baselines Bstnet Cbnet Format List Printf Runtime Tracekit Workloads
