examples/quickstart.ml: Array Bstnet Cbnet Format
