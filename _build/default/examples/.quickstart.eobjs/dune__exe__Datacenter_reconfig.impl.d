examples/datacenter_reconfig.ml: Cbnet Format List Printf Runtime Tracekit Workloads
