examples/workload_explorer.mli:
