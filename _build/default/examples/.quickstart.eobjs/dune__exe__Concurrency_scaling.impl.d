examples/concurrency_scaling.ml: Array Baselines Bstnet Cbnet Format List Printf Runtime Simkit
