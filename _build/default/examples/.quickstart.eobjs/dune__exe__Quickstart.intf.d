examples/quickstart.mli:
