(* Workload explorer: sweep the two locality knobs of the tunable
   generator and watch (a) where each trace lands on the paper's
   trace-complexity map and (b) how CBNet's work responds — the
   empirical version of the paper's premise that counting-based
   reconfiguration monetizes non-temporal locality.

   Run with:  dune exec examples/workload_explorer.exe *)

let () =
  let n = 256 in
  let m = 8_000 in
  let grid =
    Workloads.Tunable.grid ~n ~m ~seed:5
      ~temporal_levels:[ 0.0; 0.5; 0.9 ]
      ~alpha_levels:[ 0.0; 1.0; 2.0 ]
      ()
  in
  let rows =
    List.map
      (fun (temporal, alpha, trace) ->
        let c = Tracekit.Complexity.measure ~seed:11 trace in
        let runs = Workloads.Trace.to_runs trace in
        let cbn = Cbnet.Sequential.run (Bstnet.Build.balanced n) runs in
        let bt = Baselines.Static.run (Bstnet.Build.balanced n) runs in
        [
          Printf.sprintf "%.1f" temporal;
          Printf.sprintf "%.1f" alpha;
          Printf.sprintf "%.2f" c.Tracekit.Complexity.temporal;
          Printf.sprintf "%.2f" c.Tracekit.Complexity.non_temporal;
          Printf.sprintf "%.2f" c.Tracekit.Complexity.complexity;
          Printf.sprintf "%.0f" cbn.Cbnet.Run_stats.work;
          Printf.sprintf "%.2f" (cbn.Cbnet.Run_stats.work /. bt.Cbnet.Run_stats.work);
        ])
      grid
  in
  Runtime.Report.table
    ~title:
      "Locality knobs vs CBNet gains (n=256, m=8k; work ratio < 1 = beats \
       the static balanced tree)"
    ~headers:[ "p-temp"; "alpha"; "T"; "NT"; "Psi"; "cbnet-work"; "vs-BT" ]
    rows Format.std_formatter;
  Format.printf
    "@.Reading the table: the alpha knob (rows with alpha = 2.0) drives NT \
     down and CBNet's relative work with it; the temporal knob alone \
     (p-temp = 0.9, alpha = 0) barely helps, exactly the trade the paper \
     describes for counting-based reconfiguration.@."
