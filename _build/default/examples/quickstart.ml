(* Quickstart: build a small CBNet, send traffic between two chatty
   nodes, and watch the topology adapt.

   Run with:  dune exec examples/quickstart.exe *)

module T = Bstnet.Topology

let () =
  (* A demand-aware network over 15 nodes, starting balanced. *)
  let net = Bstnet.Build.balanced 15 in
  Format.printf "Initial topology:@.%a@." T.pp net;

  (* Nodes 2 and 13 exchange 1,000 messages (alternating directions),
     one request per time slot. *)
  let trace =
    Array.init 1_000 (fun i -> if i mod 2 = 0 then (i, 2, 13) else (i, 13, 2))
  in
  Format.printf "distance(2, 13) before: %d@.@." (T.distance net 2 13);

  let stats = Cbnet.Sequential.run net trace in

  Format.printf "After 1,000 messages:@.%a@." T.pp net;
  Format.printf "distance(2, 13) after: %d@.@." (T.distance net 2 13);
  Format.printf
    "routing cost: %d   rotations: %d   (counting-based reconfiguration \
     converges with a handful of rotations)@."
    stats.Cbnet.Run_stats.routing_cost stats.Cbnet.Run_stats.rotations;

  (* The same workload served concurrently: many messages in flight. *)
  let net2 = Bstnet.Build.balanced 15 in
  let stats2 = Cbnet.Concurrent.run net2 trace in
  Format.printf
    "concurrent execution: makespan %d rounds (sequential needed %d slots), \
     throughput %.2f msg/round@."
    stats2.Cbnet.Run_stats.makespan stats.Cbnet.Run_stats.makespan
    stats2.Cbnet.Run_stats.throughput
