(* Concurrency scaling: how the makespan of CBNet and DiSplayNet react
   to the number of messages simultaneously in flight, on the same
   request sequence.  CBNet keeps scaling because it never locks
   endpoints; DiSplayNet saturates at the endpoint-lock limit.

   Run with:  dune exec examples/concurrency_scaling.exe *)

let () =
  let n = 255 in
  let m = 8_000 in
  let rng = Simkit.Rng.create 13 in
  let reqs =
    Array.init m (fun _ ->
        let s = Simkit.Rng.int rng n in
        let d = Simkit.Rng.int rng n in
        (s, d))
  in
  let trace_all_at_once =
    Array.mapi (fun i (s, d) -> (i / 100, s, d)) reqs
  in

  (* CBNet with increasing admission windows. *)
  let rows =
    List.map
      (fun window ->
        let t = Bstnet.Build.balanced n in
        let stats = Cbnet.Concurrent.run ~window t trace_all_at_once in
        [
          string_of_int window;
          string_of_int stats.Cbnet.Run_stats.makespan;
          Printf.sprintf "%.3f" stats.Cbnet.Run_stats.throughput;
          string_of_int stats.Cbnet.Run_stats.pauses;
          string_of_int stats.Cbnet.Run_stats.bypasses;
        ])
      [ 1; 4; 16; 64; 256 ]
  in
  Runtime.Report.table
    ~title:"CBNet: in-flight window vs completion time (n=255, m=8k)"
    ~headers:[ "window"; "makespan"; "throughput"; "pauses"; "bypasses" ]
    rows Format.std_formatter;

  (* Head-to-head at full concurrency. *)
  let t1 = Bstnet.Build.balanced n in
  let cbn = Cbnet.Concurrent.run t1 trace_all_at_once in
  let t2 = Bstnet.Build.balanced n in
  let dsn = Baselines.Displaynet.run ~max_rounds:10_000_000 t2 trace_all_at_once in
  let t3 = Bstnet.Build.balanced n in
  let scbn = Cbnet.Sequential.run t3 trace_all_at_once in
  Format.printf "@.";
  Runtime.Report.table ~title:"Head-to-head under saturation"
    ~headers:[ "algo"; "makespan"; "throughput" ]
    [
      [ "CBN"; string_of_int cbn.Cbnet.Run_stats.makespan;
        Printf.sprintf "%.3f" cbn.Cbnet.Run_stats.throughput ];
      [ "DSN"; string_of_int dsn.Cbnet.Run_stats.makespan;
        Printf.sprintf "%.3f" dsn.Cbnet.Run_stats.throughput ];
      [ "SCBN"; string_of_int scbn.Cbnet.Run_stats.makespan;
        Printf.sprintf "%.3f" scbn.Cbnet.Run_stats.throughput ];
    ]
    Format.std_formatter
