(* Datacenter scenario: a skewed, fixed communication matrix (the
   ProjecToR-like workload of the paper) served by a reconfigurable
   tree.  Compares CBNet against the static balanced/optimal trees and
   the splaying baselines — the Fig. 3 story on one workload.

   Run with:  dune exec examples/datacenter_reconfig.exe *)

let () =
  let trace =
    Runtime.Experiment.trace_for ~workload:"projector" ~seed:7 ()
  in
  Format.printf "workload: %a@.@." Workloads.Trace.pp_summary trace;

  let complexity = Tracekit.Complexity.measure ~seed:11 trace in
  Format.printf "trace locality: %a@.@." Tracekit.Complexity.pp complexity;

  let rows =
    List.map
      (fun algo ->
        let stats = Runtime.Algo.run algo trace in
        [
          Runtime.Algo.name algo;
          string_of_int stats.Cbnet.Run_stats.routing_cost;
          string_of_int stats.Cbnet.Run_stats.rotations;
          Printf.sprintf "%.0f" stats.Cbnet.Run_stats.work;
          (if Runtime.Algo.is_static algo then "-"
           else string_of_int stats.Cbnet.Run_stats.makespan);
        ])
      Runtime.Algo.all
  in
  Runtime.Report.table
    ~title:"Skewed datacenter matrix: the CBNet trade (rotations for routing)"
    ~headers:[ "algo"; "routing"; "rotations"; "work"; "makespan" ]
    rows Format.std_formatter;
  Format.printf
    "@.CBNet serves the skew almost entirely by routing over a \
     demand-shaped tree, with a few hundred rotations in total; the splay \
     baselines pay a rotation-heavy price per message.@."
