(* HPC scenario: iterative stencil exchange plus periodic collectives
   on 1,024 ranks (the paper's HPC workload, scaled down for an
   example).  High temporal locality favours aggressive splaying in
   work terms, but CBNet's concurrency wins the time domain — the
   Fig. 4 story.

   Run with:  dune exec examples/hpc_collective.exe *)

let () =
  let trace = Workloads.Hpc.generate ~side:16 ~m:20_000 ~seed:3 () in
  let trace =
    Workloads.Trace.with_poisson_births (Simkit.Rng.create 4) ~lambda:0.05 trace
  in
  Format.printf "workload: %a@.@." Workloads.Trace.pp_summary trace;

  let rows =
    List.map
      (fun algo ->
        let stats = Runtime.Algo.run algo trace in
        [
          Runtime.Algo.name algo;
          Printf.sprintf "%.0f" stats.Cbnet.Run_stats.work;
          string_of_int stats.Cbnet.Run_stats.rotations;
          string_of_int stats.Cbnet.Run_stats.makespan;
          Printf.sprintf "%.4f" stats.Cbnet.Run_stats.throughput;
        ])
      Runtime.Algo.dynamic
  in
  Runtime.Report.table
    ~title:"HPC stencil + collectives (n=256, m=20k)"
    ~headers:[ "algo"; "work"; "rotations"; "makespan"; "throughput" ]
    rows Format.std_formatter;
  Format.printf
    "@.The splaying networks convert the per-iteration repetition into \
     short paths and do less total work; CBNet still finishes first \
     because nothing blocks on endpoints and rotations are rare.@."
