(** Topology persistence — save an adapted network (its shape and its
    learnt weights) and restore it later, e.g. to warm-start an
    experiment from a converged state. *)

val to_string : Topology.t -> string
(** One-line-per-field text format: [n], [root], the parent array and
    the weight array (interval labels are derivable and rebuilt on
    load). *)

val of_string : string -> Topology.t
(** Inverse of {!to_string}; validates structure and BST order.
    @raise Failure on malformed or inconsistent input. *)

val save : Topology.t -> string -> unit
val load : string -> Topology.t
