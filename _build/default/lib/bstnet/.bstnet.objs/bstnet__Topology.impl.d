lib/bstnet/topology.ml: Array Format List
