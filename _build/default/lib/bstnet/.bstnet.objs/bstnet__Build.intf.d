lib/bstnet/build.mli: Simkit Topology
