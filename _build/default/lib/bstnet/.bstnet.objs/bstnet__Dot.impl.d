lib/bstnet/dot.ml: Buffer Fun List Printf Topology
