lib/bstnet/topology.mli: Format
