lib/bstnet/check.ml: Array Printf Result Topology
