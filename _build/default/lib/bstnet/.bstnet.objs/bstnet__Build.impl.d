lib/bstnet/build.ml: Array List Simkit Topology
