lib/bstnet/serialize.mli: Topology
