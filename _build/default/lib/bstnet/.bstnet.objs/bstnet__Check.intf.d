lib/bstnet/check.mli: Topology
