lib/bstnet/dot.mli: Topology
