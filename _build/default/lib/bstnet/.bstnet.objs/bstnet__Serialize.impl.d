lib/bstnet/serialize.ml: Array Buffer Check Fun List Printf String Topology
