(** Graphviz DOT rendering of network topologies — for inspecting what
    the algorithms actually built ([dot -Tsvg]). *)

val to_dot :
  ?name:string ->
  ?highlight:int list ->
  ?show_weights:bool ->
  Topology.t ->
  string
(** A digraph with one node per key, edges parent→child, [highlight]ed
    nodes filled, and weights in the labels when [show_weights] (the
    default when any weight is non-zero). *)

val write_dot :
  ?name:string -> ?highlight:int list -> ?show_weights:bool ->
  Topology.t -> string -> unit
(** {!to_dot} into a file. *)
