(** Constructors for initial BST network topologies. *)

val balanced : int -> Topology.t
(** Perfectly height-balanced BST over keys [0 .. n-1] — the BT
    baseline of Sec. IX-A and the default initial topology [T_0]. *)

val path : int -> Topology.t
(** Degenerate left-spine-free chain [0 -> 1 -> ... -> n-1] (each node
    the right child of its predecessor) — worst-case initial tree for
    adversarial tests. *)

val random : Simkit.Rng.t -> int -> Topology.t
(** BST built by inserting keys in a uniformly random order. *)

val of_insertions : int -> int list -> Topology.t
(** [of_insertions n order] inserts the keys of [order] (a permutation
    of [0 .. n-1]) into an empty BST, first key becoming the root.
    @raise Invalid_argument if [order] is not a permutation. *)

val of_interval_roots : int -> (lo:int -> hi:int -> int) -> Topology.t
(** [of_interval_roots n choose] builds the BST in which the subtree
    spanning keys [lo..hi] is rooted at [choose ~lo ~hi] — the shape
    produced by the optimal-static-tree dynamic program.
    @raise Invalid_argument if a choice falls outside its interval. *)
