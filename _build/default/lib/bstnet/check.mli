(** Structural invariant checkers, used by tests and by simulators in
    debug mode.  Each check returns [Ok ()] or a description of the
    first violation found. *)

val structure : Topology.t -> (unit, string) result
(** Parent/child links are mutually consistent, every node is reachable
    from the root exactly once, and there are no cycles. *)

val bst_order : Topology.t -> (unit, string) result
(** In-order traversal yields [0, 1, ..., n-1]. *)

val interval_labels : Topology.t -> (unit, string) result
(** Every node's [smallest]/[largest] equal the true subtree min/max. *)

val weights : ?counters:int array -> Topology.t -> (unit, string) result
(** Every node's weight equals its counter plus its children's weights
    and counters are non-negative; when [counters] is given, the
    derived counters must equal it. *)

val all : ?counters:int array -> Topology.t -> (unit, string) result
(** All of the above in sequence. *)

val assert_ok : (unit, string) result -> unit
(** @raise Failure with the violation description on [Error]. *)
