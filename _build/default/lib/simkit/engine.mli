(** Synchronous round-driven simulation engine.

    The model of the paper (Sec. II) divides time into rounds; in one
    round every independent node may take one local step.  Algorithms
    plug into the engine as a {!scheduler}: the engine repeatedly calls
    [tick] with the current round number until [is_done] holds, and
    guards against livelock with a round budget. *)

type scheduler = {
  label : string;  (** Short algorithm name, e.g. ["cbn"], for logs. *)
  tick : int -> unit;  (** Execute one synchronous round; the argument is the round number. *)
  is_done : unit -> bool;  (** All work delivered. *)
}

type outcome = {
  rounds : int;  (** Number of rounds executed (the makespan). *)
  completed : bool;  (** False when the round budget was exhausted first. *)
}

exception Budget_exhausted of string
(** Raised by {!run_exn} when the round budget runs out — this always
    indicates a liveness bug in a scheduler, never a legitimate result. *)

val run : ?max_rounds:int -> scheduler -> outcome
(** Drive [scheduler] to completion.  [max_rounds] defaults to
    100 million, far above any legitimate experiment in this repo. *)

val run_exn : ?max_rounds:int -> scheduler -> int
(** Like {!run} but returns the round count and raises
    {!Budget_exhausted} when the scheduler fails to terminate. *)
