let poisson rng ~lambda ~count =
  if count < 0 then invalid_arg "Arrivals.poisson: negative count";
  let times = Array.make count 0 in
  let t = ref 0.0 in
  for i = 0 to count - 1 do
    let gap = Float.max 1.0 (Float.ceil (Rng.exponential rng lambda)) in
    t := !t +. gap;
    times.(i) <- int_of_float !t
  done;
  times

let poisson_discrete rng ~lambda ~count =
  if count < 0 then invalid_arg "Arrivals.poisson_discrete: negative count";
  let times = Array.make count 0 in
  let t = ref 0 in
  for i = 0 to count - 1 do
    t := !t + max 1 (Rng.poisson rng lambda);
    times.(i) <- !t
  done;
  times

let uniform_spacing ~gap ~count =
  if gap < 1 then invalid_arg "Arrivals.uniform_spacing: gap must be >= 1";
  Array.init count (fun i -> i * gap)

let batched ~batch ~gap ~count =
  if batch < 1 || gap < 1 then invalid_arg "Arrivals.batched: bad parameters";
  Array.init count (fun i -> i / batch * gap)

let all_at_once ~count = Array.make count 0
