(** Arrival-time processes for stamping request sequences.

    The paper spaces requests with a Poisson process of rate
    [lambda = 0.05] per time slot (Sec. IX-B); the model additionally
    requires at least one slot between successive arrivals (Sec. II). *)

val poisson : Rng.t -> lambda:float -> count:int -> int array
(** [poisson rng ~lambda ~count] returns [count] strictly increasing
    integer arrival slots with exponential inter-arrival times of rate
    [lambda], rounded up and floored at one slot. *)

val poisson_discrete : Rng.t -> lambda:float -> count:int -> int array
(** The paper's literal spacing (Sec. IX-B): successive gaps drawn
    from a discrete Poisson distribution with mean [lambda], floored
    at the model's one-slot minimum.  With [lambda = 0.05] almost all
    gaps are a single slot, which is what makes the workload heavily
    concurrent. *)

val uniform_spacing : gap:int -> count:int -> int array
(** Deterministic arrivals every [gap] slots, starting at slot 0. *)

val batched : batch:int -> gap:int -> count:int -> int array
(** [batch] simultaneous arrivals every [gap] slots — used to stress
    concurrency (many messages born in the same round). *)

val all_at_once : count:int -> int array
(** Every message born at slot 0 (maximum concurrency pressure). *)
