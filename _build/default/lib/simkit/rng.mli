(** Deterministic pseudo-random number generation for simulations.

    All stochastic components of the simulator draw from an explicit
    [Rng.t] state so that every experiment is reproducible bit-for-bit
    from its seed.  The generator is SplitMix64 (Steele, Lea, Flood,
    OOPSLA 2014): a tiny, fast, well-distributed 64-bit generator whose
    streams can be split deterministically. *)

type t
(** Mutable generator state. *)

val create : int -> t
(** [create seed] returns a fresh generator.  Two generators created
    with the same seed produce identical streams. *)

val split : t -> t
(** [split t] derives an independent generator from [t], advancing [t].
    Used to give each workload/run its own stream without correlation. *)

val copy : t -> t
(** [copy t] duplicates the current state (same future stream). *)

val bits64 : t -> int64
(** Next raw 64-bit output. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)].  [bound] must be positive. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in [\[lo, hi\]] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool
(** Fair coin. *)

val exponential : t -> float -> float
(** [exponential t lambda] draws from Exp(lambda), mean [1/lambda]. *)

val normal : t -> mean:float -> std:float -> float
(** Gaussian via Box-Muller. *)

val poisson : t -> float -> int
(** [poisson t lambda] draws from a Poisson distribution with mean
    [lambda] (Knuth's product method; intended for small [lambda]). *)

val geometric : t -> float -> int
(** [geometric t p] is the number of failures before the first success
    of a Bernoulli(p) sequence (support 0, 1, 2, ...). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choice : t -> 'a array -> 'a
(** Uniform element of a non-empty array. *)

val choose_weighted : t -> float array -> int
(** [choose_weighted t w] samples index [i] with probability
    [w.(i) / sum w].  Weights must be non-negative with positive sum.
    Linear scan; use {!Discrete_dist} for repeated sampling. *)
