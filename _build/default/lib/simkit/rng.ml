type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.(mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L) in
  let z = Int64.(mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL) in
  Int64.(logxor z (shift_right_logical z 31))

let create seed = { state = mix64 (Int64.of_int seed) }

let bits64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let split t =
  let s = bits64 t in
  { state = mix64 s }

let copy t = { state = t.state }

(* Non-negative int from the top 62 bits (OCaml ints are 63-bit). *)
let bits62 t = Int64.to_int (Int64.shift_right_logical (bits64 t) 2)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias. *)
  let rec go () =
    let r = bits62 t in
    let v = r mod bound in
    if r - v + (bound - 1) < 0 then go () else v
  in
  go ()

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

let float t bound =
  (* 53 random bits into [0, 1). *)
  let r = Int64.to_float (Int64.shift_right_logical (bits64 t) 11) in
  r /. 9007199254740992.0 *. bound

let bool t = Int64.compare (bits64 t) 0L < 0

let exponential t lambda =
  if lambda <= 0.0 then invalid_arg "Rng.exponential: lambda must be positive";
  let u = 1.0 -. float t 1.0 in
  -.log u /. lambda

let normal t ~mean ~std =
  let u1 = 1.0 -. float t 1.0 in
  let u2 = float t 1.0 in
  let z = sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2) in
  mean +. (std *. z)

let poisson t lambda =
  if lambda < 0.0 then invalid_arg "Rng.poisson: negative lambda";
  let threshold = exp (-.lambda) in
  let rec go k p =
    let p = p *. float t 1.0 in
    if p <= threshold then k else go (k + 1) p
  in
  go 0 1.0

let geometric t p =
  if p <= 0.0 || p > 1.0 then invalid_arg "Rng.geometric: p must be in (0,1]";
  if p >= 1.0 then 0
  else
    let u = 1.0 -. float t 1.0 in
    int_of_float (Float.floor (log u /. log (1.0 -. p)))

let shuffle t a =
  for i = Array.length a - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = a.(i) in
    a.(i) <- a.(j);
    a.(j) <- tmp
  done

let choice t a =
  if Array.length a = 0 then invalid_arg "Rng.choice: empty array";
  a.(int t (Array.length a))

let choose_weighted t w =
  let total = Array.fold_left ( +. ) 0.0 w in
  if total <= 0.0 then invalid_arg "Rng.choose_weighted: weights sum to zero";
  let x = float t total in
  let n = Array.length w in
  let rec go i acc =
    if i = n - 1 then i
    else
      let acc = acc +. w.(i) in
      if x < acc then i else go (i + 1) acc
  in
  go 0 0.0
