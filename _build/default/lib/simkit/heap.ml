type 'a entry = { value : 'a; seq : int }

type 'a t = {
  cmp : 'a -> 'a -> int;
  mutable data : 'a entry array;
  mutable size : int;
  mutable next_seq : int;
}

let create ?capacity:(_ = 16) cmp = { cmp; data = [||]; size = 0; next_seq = 0 }

let length h = h.size
let is_empty h = h.size = 0

(* Stable order: by [cmp], ties by insertion sequence. *)
let lt h a b =
  let c = h.cmp a.value b.value in
  c < 0 || (c = 0 && a.seq < b.seq)

let grow h =
  let cap = max 16 (2 * Array.length h.data) in
  if h.size > 0 then begin
    let data = Array.make cap h.data.(0) in
    Array.blit h.data 0 data 0 h.size;
    h.data <- data
  end

let rec sift_up h i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if lt h h.data.(i) h.data.(parent) then begin
      let tmp = h.data.(i) in
      h.data.(i) <- h.data.(parent);
      h.data.(parent) <- tmp;
      sift_up h parent
    end
  end

let rec sift_down h i =
  let l = (2 * i) + 1 and r = (2 * i) + 2 in
  let smallest = ref i in
  if l < h.size && lt h h.data.(l) h.data.(!smallest) then smallest := l;
  if r < h.size && lt h h.data.(r) h.data.(!smallest) then smallest := r;
  if !smallest <> i then begin
    let tmp = h.data.(i) in
    h.data.(i) <- h.data.(!smallest);
    h.data.(!smallest) <- tmp;
    sift_down h !smallest
  end

let push h v =
  let e = { value = v; seq = h.next_seq } in
  h.next_seq <- h.next_seq + 1;
  if h.size = Array.length h.data then
    if h.size = 0 then h.data <- Array.make 16 e else grow h;
  h.data.(h.size) <- e;
  h.size <- h.size + 1;
  sift_up h (h.size - 1)

let peek h = if h.size = 0 then None else Some h.data.(0).value

let pop h =
  if h.size = 0 then None
  else begin
    let top = h.data.(0).value in
    h.size <- h.size - 1;
    if h.size > 0 then begin
      h.data.(0) <- h.data.(h.size);
      sift_down h 0
    end;
    Some top
  end

let pop_exn h =
  match pop h with
  | Some v -> v
  | None -> invalid_arg "Heap.pop_exn: empty heap"

let clear h =
  h.size <- 0;
  h.next_seq <- 0

let to_list h =
  let copy =
    {
      cmp = h.cmp;
      data = Array.sub h.data 0 h.size;
      size = h.size;
      next_seq = h.next_seq;
    }
  in
  let rec drain acc =
    match pop copy with None -> List.rev acc | Some v -> drain (v :: acc)
  in
  drain []

let of_array cmp a =
  let h = create cmp in
  Array.iter (fun v -> push h v) a;
  h
