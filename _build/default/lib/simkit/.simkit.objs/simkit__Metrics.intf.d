lib/simkit/metrics.mli: Format Stats
