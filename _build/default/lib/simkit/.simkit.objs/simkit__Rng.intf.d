lib/simkit/rng.mli:
