lib/simkit/arrivals.mli: Rng
