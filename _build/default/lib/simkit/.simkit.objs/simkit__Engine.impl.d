lib/simkit/engine.ml: Logs Printf
