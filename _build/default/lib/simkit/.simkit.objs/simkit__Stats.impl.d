lib/simkit/stats.ml: Array Float Format List
