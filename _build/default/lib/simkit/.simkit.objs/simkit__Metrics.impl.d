lib/simkit/metrics.ml: Format Hashtbl List Option Stats Stdlib String
