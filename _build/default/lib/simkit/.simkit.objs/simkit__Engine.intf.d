lib/simkit/engine.mli:
