lib/simkit/stats.mli: Format
