lib/simkit/heap.mli:
