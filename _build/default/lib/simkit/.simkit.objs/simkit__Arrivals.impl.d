lib/simkit/arrivals.ml: Array Float Rng
