let src = Logs.Src.create "simkit.engine" ~doc:"Round engine"

module Log = (val Logs.src_log src : Logs.LOG)

type scheduler = {
  label : string;
  tick : int -> unit;
  is_done : unit -> bool;
}

type outcome = { rounds : int; completed : bool }

exception Budget_exhausted of string

let default_budget = 100_000_000

let run ?(max_rounds = default_budget) s =
  let rec go round =
    if s.is_done () then { rounds = round; completed = true }
    else if round >= max_rounds then { rounds = round; completed = false }
    else begin
      s.tick round;
      go (round + 1)
    end
  in
  go 0

let run_exn ?max_rounds s =
  let o = run ?max_rounds s in
  if o.completed then o.rounds
  else begin
    Log.err (fun m ->
        m "scheduler %s exhausted its %d-round budget" s.label o.rounds);
    raise (Budget_exhausted (Printf.sprintf "scheduler %s did not terminate" s.label))
  end
