(** Array-backed binary min-heap, polymorphic in element type.

    Used for event queues and priority scheduling.  The comparison
    function is fixed at creation; ties are broken by insertion order
    (the heap is made stable by an internal sequence number), which
    matters for deterministic simulation replay. *)

type 'a t

val create : ?capacity:int -> ('a -> 'a -> int) -> 'a t
(** [create cmp] is an empty heap ordered by [cmp] (minimum first). *)

val length : 'a t -> int
val is_empty : 'a t -> bool

val push : 'a t -> 'a -> unit

val peek : 'a t -> 'a option
(** Minimum element without removing it. *)

val pop : 'a t -> 'a option
(** Remove and return the minimum element. *)

val pop_exn : 'a t -> 'a
(** @raise Invalid_argument on an empty heap. *)

val clear : 'a t -> unit

val to_list : 'a t -> 'a list
(** Elements in ascending order; O(n log n), does not modify the heap. *)

val of_array : ('a -> 'a -> int) -> 'a array -> 'a t
(** Heapify in O(n). *)
