(** LZ78 compression-length estimation.

    Trace complexity (Avin et al., SIGMETRICS 2020; Def. 8 of the
    paper) measures the entropy of a request sequence by the size of
    its compressed encoding.  The original work uses off-the-shelf
    byte compressors; this container has none, so we implement LZ78,
    the textbook universal code: asymptotically optimal for ergodic
    sources and monotone in exactly the temporal/non-temporal
    structure the measure needs.

    The encoder works over an arbitrary integer alphabet — a trace is
    compressed as its sequence of request symbols (pair identifiers),
    which avoids the byte-alignment artifacts a fixed binary encoding
    would introduce.  Each emitted phrase costs
    ⌈log2 (dictionary size)⌉ bits of back-reference plus
    ⌈log2 (alphabet size)⌉ bits for the extension symbol. *)

val compressed_bits : ?alphabet:int -> int array -> int
(** Length of the LZ78 encoding in bits.  [alphabet] defaults to the
    number of distinct symbols in the input (at least 2). *)

val compressed_bytes : ?alphabet:int -> int array -> int
(** [compressed_bits / 8], rounded up. *)

val phrase_count : int array -> int
(** Number of LZ78 phrases (for tests: sub-linear growth on
    structured input, near-linear on noise). *)

val bits_for : int -> int
(** ⌈log2 n⌉ with a minimum of 1 (exposed for tests). *)
