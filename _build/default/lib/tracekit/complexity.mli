(** Trace complexity (Sec. VIII, Def. 8; after Avin et al. [1]).

    For a request sequence σ, two transformations isolate the locality
    components: Γ(σ) shuffles the request order (destroying temporal
    structure) and U(σ) replaces requests by uniform ones (destroying
    all structure).  With C(·) a compressed-size estimate,

    - temporal complexity      T(σ)  = C(σ) / C(Γ(σ)),
    - non-temporal complexity  NT(σ) = C(Γ(σ)) / C(U(σ)),
    - trace complexity         Ψ(σ)  = T(σ) × NT(σ) = C(σ) / C(U(σ)).

    Low complexity = high locality.  Both ratios are clamped to [0,1]
    (sampling noise can push a raw ratio marginally above 1). *)

type result = {
  c_sigma : int;  (** C(σ) in bytes. *)
  c_shuffled : int;  (** C(Γ(σ)), averaged over shuffles. *)
  c_uniform : int;  (** C(U(σ)), averaged over draws. *)
  temporal : float;  (** T(σ). *)
  non_temporal : float;  (** NT(σ). *)
  complexity : float;  (** Ψ(σ). *)
}

val encode : Workloads.Trace.t -> int array
(** Symbol serialization: each request becomes one symbol, its pair
    identifier [src * n + dst], so the compressor sees exactly the
    request process. *)

val measure : ?samples:int -> seed:int -> Workloads.Trace.t -> result
(** [samples] (default 3) shuffles/uniform draws are averaged. *)

val pp : Format.formatter -> result -> unit
