lib/tracekit/lz78.mli:
