lib/tracekit/complexity.ml: Array Float Format Lz78 Simkit Workloads
