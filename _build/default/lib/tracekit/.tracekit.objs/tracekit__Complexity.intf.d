lib/tracekit/complexity.mli: Format Workloads
