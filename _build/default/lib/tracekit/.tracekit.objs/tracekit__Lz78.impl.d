lib/tracekit/lz78.ml: Array Hashtbl
