(* Dictionary nodes are numbered from 1 (0 = empty prefix); the
   transition table maps (node, symbol) to the extended node. *)

let fold_phrases data ~emit =
  let table : (int * int, int) Hashtbl.t = Hashtbl.create 1024 in
  let next_id = ref 1 in
  let node = ref 0 in
  let len = Array.length data in
  for i = 0 to len - 1 do
    let c = data.(i) in
    match Hashtbl.find_opt table (!node, c) with
    | Some id ->
        node := id;
        (* A phrase that ends exactly at the input's last symbol is
           emitted as a (reference, no-extension) token. *)
        if i = len - 1 then emit ~dict_size:!next_id ~extended:false
    | None ->
        Hashtbl.add table (!node, c) !next_id;
        incr next_id;
        emit ~dict_size:(!next_id - 1) ~extended:true;
        node := 0
  done

let bits_for n =
  (* ⌈log2 n⌉ for n >= 1, with at least 1 bit. *)
  let rec go acc v = if v <= 1 then max 1 acc else go (acc + 1) ((v + 1) / 2) in
  go 0 n

let distinct data =
  let seen = Hashtbl.create 64 in
  Array.iter (fun s -> if not (Hashtbl.mem seen s) then Hashtbl.add seen s ()) data;
  max 2 (Hashtbl.length seen)

let compressed_bits ?alphabet data =
  let alphabet = match alphabet with Some a -> max 2 a | None -> distinct data in
  let symbol_bits = bits_for alphabet in
  let total = ref 0 in
  fold_phrases data ~emit:(fun ~dict_size ~extended ->
      total := !total + bits_for dict_size + if extended then symbol_bits else 0);
  !total

let compressed_bytes ?alphabet data = (compressed_bits ?alphabet data + 7) / 8

let phrase_count data =
  let count = ref 0 in
  fold_phrases data ~emit:(fun ~dict_size:_ ~extended:_ -> incr count);
  !count
