module Trace = Workloads.Trace

type result = {
  c_sigma : int;
  c_shuffled : int;
  c_uniform : int;
  temporal : float;
  non_temporal : float;
  complexity : float;
}

let encode (t : Trace.t) =
  let n = t.Trace.n in
  Array.map (fun (s, d) -> (s * n) + d) t.Trace.requests

let clamp01 x = Float.min 1.0 (Float.max 0.0 x)

let measure ?(samples = 3) ~seed t =
  if samples < 1 then invalid_arg "Complexity.measure: samples must be >= 1";
  let rng = Simkit.Rng.create seed in
  (* One alphabet size for all three measurements so the ratios compare
     code lengths, not alphabet choices. *)
  let alphabet = t.Trace.n * t.Trace.n in
  let c_sigma = Lz78.compressed_bytes ~alphabet (encode t) in
  let average f =
    let acc = ref 0 in
    for _ = 1 to samples do
      acc := !acc + Lz78.compressed_bytes ~alphabet (encode (f (Simkit.Rng.split rng)))
    done;
    !acc / samples
  in
  let c_shuffled = average (fun r -> Trace.shuffled r t) in
  let c_uniform = average (fun r -> Trace.uniform_like r t) in
  let temporal = clamp01 (float_of_int c_sigma /. float_of_int (max 1 c_shuffled)) in
  let non_temporal =
    clamp01 (float_of_int c_shuffled /. float_of_int (max 1 c_uniform))
  in
  {
    c_sigma;
    c_shuffled;
    c_uniform;
    temporal;
    non_temporal;
    complexity = temporal *. non_temporal;
  }

let pp fmt r =
  Format.fprintf fmt "T=%.3f NT=%.3f Psi=%.3f (C=%d, CΓ=%d, CU=%d bytes)"
    r.temporal r.non_temporal r.complexity r.c_sigma r.c_shuffled r.c_uniform
