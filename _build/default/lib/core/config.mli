(** Tunable parameters of CBNet. *)

type t = {
  delta : float;
      (** Rotation threshold [δ ∈ (0, 2]] of Algorithm 1: a rotation is
          performed only when it decreases the network potential by
          more than [δ].  The paper's implementation uses [2.0]. *)
  rotation_cost : float;
      (** Cost [R] of one rotation relative to forwarding over one
          link.  The paper's experiments use [R = 1]. *)
}

val default : t
(** [{ delta = 2.0; rotation_cost = 1.0 }] — the paper's setting. *)

val make : ?delta:float -> ?rotation_cost:float -> unit -> t
(** @raise Invalid_argument when [delta] is outside [(0, 2]] or
    [rotation_cost] is negative. *)
