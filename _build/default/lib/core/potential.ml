module T = Bstnet.Topology

let log2 = Float.log2

let rank w = if w <= 1 then 0.0 else log2 (float_of_int w)

let node_rank t v = rank (T.weight t v)

let phi t =
  let acc = ref 0.0 in
  T.iter_subtree t (T.root t) (fun v -> acc := !acc +. node_rank t v);
  !acc

let weight_opt t v = if v = T.nil then 0 else T.weight t v

(* The subtree that a single rotation transfers from the promoted node
   to its demoted parent: the child on the opposite side of the
   promoted node's own position. *)
let transferred_child t c =
  if T.is_left_child t c then T.right t c else T.left t c

let delta_promote t c =
  let p = T.parent t c in
  if p = T.nil then invalid_arg "Potential.delta_promote: node is the root";
  let wp' = T.weight t p - T.weight t c + weight_opt t (transferred_child t c) in
  (* c inherits p's total weight, so its rank change cancels p's old
     rank; only the demoted parent's new rank matters. *)
  rank wp' -. rank (T.weight t c)

let delta_double_promote t c =
  let p = T.parent t c in
  if p = T.nil then invalid_arg "Potential.delta_double_promote: node is the root";
  let g = T.parent t p in
  if g = T.nil then invalid_arg "Potential.delta_double_promote: no grandparent";
  let t1 = transferred_child t c in
  (* After the first rotation c sits in p's old position, so its second
     transferred child is its other original child. *)
  let t2 = if t1 = T.left t c then T.right t c else T.left t c in
  let wp' = T.weight t p - T.weight t c + weight_opt t t1 in
  let wg' = T.weight t g - T.weight t p + weight_opt t t2 in
  rank wp' +. rank wg' -. rank (T.weight t c) -. rank (T.weight t p)
