module T = Bstnet.Topology

type kind =
  | Bu_zig
  | Bu_semi_zig_zig
  | Bu_semi_zig_zag
  | Td_zig
  | Td_semi_zig_zig
  | Td_semi_zig_zag

let kind_to_string = function
  | Bu_zig -> "bu-zig"
  | Bu_semi_zig_zig -> "bu-semi-zig-zig"
  | Bu_semi_zig_zag -> "bu-semi-zig-zag"
  | Td_zig -> "td-zig"
  | Td_semi_zig_zig -> "td-semi-zig-zig"
  | Td_semi_zig_zag -> "td-semi-zig-zag"

type t = {
  current : int;
  dst : int;
  kind : kind;
  delta_phi : float;
  rotate : bool;
  rotations : int;
  hops : int;
  new_current : int;
  passed : int list;
  cluster : int list;
}

let cons_if_real v rest = if v = T.nil then rest else v :: rest

(* The climb of a message ends at the LCA with its destination; the
   climb of a weight-update message (dst = nil) ends at the root. *)
let climb_continues t ~node ~dst =
  if dst = T.nil then T.parent t node <> T.nil
  else T.direction_to t ~src:node ~dst = T.Up

let plan_up config t ~current:x ~dst =
  let p = T.parent t x in
  if p = T.nil then invalid_arg "Step.plan_up: current node is the root";
  if not (climb_continues t ~node:p ~dst) then begin
    (* p is the top of this climb (the LCA, or the root for an update
       message): one-level zig boundary step.  A weight-update message
       must terminate by delivering its +2 at the standing root — its
       contract is to increment all of P(LCA, r) (Algorithm 1, line 3)
       — so it forwards here instead of rotating itself above the
       root. *)
    let delta_phi = Potential.delta_promote t x in
    let rotate =
      delta_phi < -.config.Config.delta && not (dst = T.nil && T.is_root t p)
    in
    let g = T.parent t p in
    {
      current = x;
      dst;
      kind = Bu_zig;
      delta_phi;
      rotate;
      rotations = (if rotate then 1 else 0);
      hops = (if rotate then 0 else 1);
      new_current = (if rotate then x else p);
      passed = (if rotate then [] else [ p ]);
      cluster = (if rotate then cons_if_real g [ x; p ] else [ x; p ]);
    }
  end
  else begin
    let g = T.parent t p in
    let same_side = T.is_left_child t x = T.is_left_child t p in
    if same_side then begin
      (* Semi zig-zig: one rotation promoting p over g; the message
         hops to p, which now sits two levels higher. *)
      let delta_phi = Potential.delta_promote t p in
      let rotate = delta_phi < -.config.Config.delta in
      let gg = T.parent t g in
      {
        current = x;
        dst;
        kind = Bu_semi_zig_zig;
        delta_phi;
        rotate;
        rotations = (if rotate then 1 else 0);
        hops = (if rotate then 0 else 2);
        new_current = (if rotate then p else g);
        passed = (if rotate then [ p ] else [ p; g ]);
        cluster = (if rotate then cons_if_real gg [ x; p; g ] else [ x; p; g ]);
      }
    end
    else begin
      (* Semi zig-zag: double rotation promoting x to the grandparent's
         position; the message stays on x.  As in the boundary case, an
         update message never promotes itself onto the root — it must
         end its climb by delivering +2 there. *)
      let delta_phi = Potential.delta_double_promote t x in
      let rotate =
        delta_phi < -.config.Config.delta && not (dst = T.nil && T.is_root t g)
      in
      let gg = T.parent t g in
      {
        current = x;
        dst;
        kind = Bu_semi_zig_zag;
        delta_phi;
        rotate;
        rotations = (if rotate then 2 else 0);
        hops = (if rotate then 0 else 2);
        new_current = (if rotate then x else g);
        passed = (if rotate then [] else [ p; g ]);
        cluster = (if rotate then cons_if_real gg [ x; p; g ] else [ x; p; g ]);
      }
    end
  end

let plan_down config t ~current:x ~dst =
  let y = T.next_hop t ~src:x ~dst in
  let px = T.parent t x in
  if y = dst then begin
    (* One level left: zig boundary case promoting the destination. *)
    let delta_phi = Potential.delta_promote t y in
    let rotate = delta_phi < -.config.Config.delta in
    {
      current = x;
      dst;
      kind = Td_zig;
      delta_phi;
      rotate;
      rotations = (if rotate then 1 else 0);
      hops = (if rotate then 0 else 1);
      new_current = y;
      passed = [ y ];
      cluster = (if rotate then cons_if_real px [ x; y ] else [ x; y ]);
    }
  end
  else begin
    let z = T.next_hop t ~src:y ~dst in
    let same_side = (y = T.left t x) = (z = T.left t y) in
    if same_side then begin
      (* Semi zig-zig: promote y over x; the path below is pulled one
         level up and the message lands on z. *)
      let delta_phi = Potential.delta_promote t y in
      let rotate = delta_phi < -.config.Config.delta in
      {
        current = x;
        dst;
        kind = Td_semi_zig_zig;
        delta_phi;
        rotate;
        rotations = (if rotate then 1 else 0);
        hops = (if rotate then 0 else 2);
        new_current = z;
        passed = [ y; z ];
        cluster = (if rotate then cons_if_real px [ x; y; z ] else [ x; y; z ]);
      }
    end
    else begin
      (* Semi zig-zag: double-promote z to x's old position; y and x
         drop off the remaining path and the message lands on z. *)
      let delta_phi = Potential.delta_double_promote t z in
      let rotate = delta_phi < -.config.Config.delta in
      {
        current = x;
        dst;
        kind = Td_semi_zig_zag;
        delta_phi;
        rotate;
        rotations = (if rotate then 2 else 0);
        hops = (if rotate then 0 else 2);
        new_current = z;
        passed = (if rotate then [ z ] else [ y; z ]);
        cluster = (if rotate then cons_if_real px [ x; y; z ] else [ x; y; z ]);
      }
    end
  end

let plan config t ~current ~dst =
  match T.direction_to t ~src:current ~dst with
  | T.Here -> None
  | T.Up -> Some (plan_up config t ~current ~dst)
  | T.Down_left | T.Down_right -> Some (plan_down config t ~current ~dst)

let execute t plan =
  if plan.rotate then
    match plan.kind with
    | Bu_zig -> T.rotate_up t plan.current
    | Bu_semi_zig_zig -> T.rotate_up t (T.parent t plan.current)
    | Bu_semi_zig_zag ->
        T.rotate_up t plan.current;
        T.rotate_up t plan.current
    | Td_zig | Td_semi_zig_zig ->
        T.rotate_up t (T.next_hop t ~src:plan.current ~dst:plan.dst)
    | Td_semi_zig_zag ->
        let y = T.next_hop t ~src:plan.current ~dst:plan.dst in
        let z = T.next_hop t ~src:y ~dst:plan.dst in
        T.rotate_up t z;
        T.rotate_up t z
