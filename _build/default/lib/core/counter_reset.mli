(** Counter resetting — the extension the paper sketches in its final
    remarks (Sec. IX-D): on an infinite request sequence the counters
    make the topology ever more static, so older requests should
    contribute less to the weights used in potential computations.

    The decay operation multiplies every node counter by a factor in
    [0, 1) (rounding down, keeping weights consistent bottom-up).
    [run_sequential] serves a trace in chunks of [every] messages with
    a decay between chunks — the ablation harness compares it against
    plain {!Sequential.run} on drifting workloads. *)

val decay : Bstnet.Topology.t -> factor:float -> unit
(** Scale all counters by [factor] and rebuild the subtree weights.
    O(n).  @raise Invalid_argument unless [0 <= factor < 1]. *)

val run_concurrent :
  ?config:Config.t ->
  ?window:int ->
  ?max_rounds:int ->
  every_rounds:int ->
  factor:float ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Run_stats.t
(** Concurrent CBNet with a decay every [every_rounds] rounds.  The
    decay is applied as an idealized global maintenance pass between
    rounds (a distributed implementation would stagger it; the
    ablation only needs the cost/benefit trade-off). *)

val run_sequential :
  ?config:Config.t ->
  every:int ->
  factor:float ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Run_stats.t
(** Like {!Sequential.run} with a decay after every [every] messages.
    Statistics are accumulated across chunks; the makespan is the sum
    of chunk makespans (decay itself is charged [n] slots of
    maintenance time, one per node). *)
