module T = Bstnet.Topology
module M = Message

let validate t trace =
  let n = T.n t in
  let last_birth = ref min_int in
  Array.iter
    (fun (birth, src, dst) ->
      if birth < !last_birth then invalid_arg "Sequential.run: trace not sorted";
      last_birth := birth;
      if src < 0 || src >= n || dst < 0 || dst >= n then
        invalid_arg "Sequential.run: endpoint out of range")
    trace

(* A message's climb and descent are both bounded by the tree height,
   and sequential execution has no bypass re-climbs; this budget only
   trips on a genuine progress bug. *)
let step_budget t = (8 * T.n t) + 64

let drive config t ~spawn msg =
  let budget = ref (step_budget t) in
  while not msg.M.delivered do
    decr budget;
    if !budget < 0 then failwith "Sequential.run: message failed to progress";
    match Protocol.begin_turn config t ~spawn msg with
    | Protocol.Delivered -> msg.M.delivered <- true
    | Protocol.Plan plan ->
        Protocol.apply_step t ~spawn msg plan
  done

let run ?(config = Config.default) t trace =
  validate t trace;
  let next_id = ref 0 in
  let fresh_id () =
    let id = !next_id in
    incr next_id;
    id
  in
  let finished = ref [] in
  let clock = ref 0 in
  Array.iter
    (fun (birth, src, dst) ->
      let msg = M.data ~id:(fresh_id ()) ~src ~dst ~birth in
      let pending_update = ref None in
      let spawn ~origin ~first_increment =
        T.add_weight t origin first_increment;
        let u = M.weight_update ~id:(fresh_id ()) ~origin ~birth:!clock in
        if T.is_root t origin then u.M.delivered <- true;
        pending_update := Some u
      in
      clock := max !clock birth;
      Protocol.born t ~spawn msg;
      if not msg.M.delivered then drive config t ~spawn msg;
      clock := !clock + max 1 msg.M.steps;
      msg.M.end_time <- !clock;
      (match !pending_update with
      | Some u ->
          drive config t ~spawn u;
          clock := !clock + u.M.steps;
          u.M.end_time <- !clock;
          finished := u :: !finished
      | None -> ());
      finished := msg :: !finished)
    trace;
  Run_stats.of_messages ~config ~rounds:!clock !finished
