type t = { delta : float; rotation_cost : float }

let default = { delta = 2.0; rotation_cost = 1.0 }

let make ?(delta = 2.0) ?(rotation_cost = 1.0) () =
  if delta <= 0.0 || delta > 2.0 then
    invalid_arg "Config.make: delta must be in (0, 2]";
  if rotation_cost < 0.0 then invalid_arg "Config.make: rotation_cost < 0";
  { delta; rotation_cost }
