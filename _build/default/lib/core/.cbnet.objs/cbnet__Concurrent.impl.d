lib/core/concurrent.ml: Array Bstnet Config List Message Protocol Run_stats Simkit Step
