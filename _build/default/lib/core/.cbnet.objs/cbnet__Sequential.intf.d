lib/core/sequential.mli: Bstnet Config Run_stats
