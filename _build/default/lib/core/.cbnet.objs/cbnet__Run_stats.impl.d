lib/core/run_stats.ml: Config Format List Message
