lib/core/message.ml: Bstnet
