lib/core/config.ml:
