lib/core/config.mli:
