lib/core/counter_reset.mli: Bstnet Config Run_stats
