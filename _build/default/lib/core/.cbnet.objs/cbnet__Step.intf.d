lib/core/step.mli: Bstnet Config
