lib/core/potential.mli: Bstnet
