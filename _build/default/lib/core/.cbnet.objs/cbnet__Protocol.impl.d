lib/core/protocol.ml: Bstnet List Message Step
