lib/core/concurrent.mli: Bstnet Config Run_stats Simkit
