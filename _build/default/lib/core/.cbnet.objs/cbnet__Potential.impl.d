lib/core/potential.ml: Bstnet Float
