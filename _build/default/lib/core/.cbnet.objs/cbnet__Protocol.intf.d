lib/core/protocol.mli: Bstnet Config Message Step
