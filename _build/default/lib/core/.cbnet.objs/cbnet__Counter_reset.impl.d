lib/core/counter_reset.ml: Array Bstnet Concurrent Config Float Run_stats Sequential Simkit
