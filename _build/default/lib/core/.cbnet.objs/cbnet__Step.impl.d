lib/core/step.ml: Bstnet Config Potential
