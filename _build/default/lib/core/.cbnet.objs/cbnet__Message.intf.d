lib/core/message.mli:
