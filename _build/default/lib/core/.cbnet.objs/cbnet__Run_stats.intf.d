lib/core/run_stats.mli: Config Format Message
