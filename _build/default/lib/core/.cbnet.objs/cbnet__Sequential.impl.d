lib/core/sequential.ml: Array Bstnet Config Message Protocol Run_stats
