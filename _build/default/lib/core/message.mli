(** In-flight message state.

    CBNet is message-oriented: a data message travels from its source
    bottom-up to the LCA with its destination, then top-down; at the
    LCA it spawns a small root-bound weight-update control message
    (Algorithm 1, lines 2-3) that carries no data but is still subject
    to rotation steps and is included in the work cost. *)

type kind = Data | Weight_update

type phase =
  | Climbing  (** Heading for the LCA (or the root, for an update). *)
  | Descending  (** Past the LCA, heading for the destination. *)

type t = {
  id : int;  (** Unique; breaks priority ties deterministically. *)
  kind : kind;
  src : int;
  dst : int;  (** [Bstnet.Topology.nil] for weight updates (root-bound). *)
  birth : int;  (** Time slot of generation; the priority of Sec. VII. *)
  mutable current : int;
  mutable phase : phase;
  mutable up_credit : int;
      (** Last node that received this message's climb increment, or
          [nil]; decides whether an LCA discovered in place still needs
          +1 or the full +2. *)
  mutable update_spawned : bool;
      (** A message spawns at most one weight update, even if a bypass
          forces it to re-climb to a fresh LCA. *)
  mutable delivered : bool;
  mutable end_time : int;
  mutable hops : int;  (** Forwarding operations performed (routing cost). *)
  mutable rotations : int;  (** Elementary rotations performed. *)
  mutable steps : int;
  mutable pauses : int;  (** Conflicts suffered where the winner routed. *)
  mutable bypasses : int;  (** Conflicts suffered where the winner rotated. *)
}

val data : id:int -> src:int -> dst:int -> birth:int -> t
val weight_update : id:int -> origin:int -> birth:int -> t

val priority_compare : t -> t -> int
(** Earlier birth first, then smaller id — the total order used for
    the prioritization rule of Sec. VII-A. *)
