type kind = Data | Weight_update
type phase = Climbing | Descending

type t = {
  id : int;
  kind : kind;
  src : int;
  dst : int;
  birth : int;
  mutable current : int;
  mutable phase : phase;
  mutable up_credit : int;
  mutable update_spawned : bool;
  mutable delivered : bool;
  mutable end_time : int;
  mutable hops : int;
  mutable rotations : int;
  mutable steps : int;
  mutable pauses : int;
  mutable bypasses : int;
}

let make ~id ~kind ~src ~dst ~birth =
  {
    id;
    kind;
    src;
    dst;
    birth;
    current = src;
    phase = Climbing;
    up_credit = Bstnet.Topology.nil;
    update_spawned = false;
    delivered = false;
    end_time = -1;
    hops = 0;
    rotations = 0;
    steps = 0;
    pauses = 0;
    bypasses = 0;
  }

let data ~id ~src ~dst ~birth = make ~id ~kind:Data ~src ~dst ~birth

let weight_update ~id ~origin ~birth =
  make ~id ~kind:Weight_update ~src:origin ~dst:Bstnet.Topology.nil ~birth

let priority_compare a b =
  let c = compare a.birth b.birth in
  if c <> 0 then c else compare a.id b.id
