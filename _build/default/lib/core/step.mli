(** Planning and execution of CBNet steps (Def. 5 of the paper).

    A step is taken by the current node [x] of a message heading to
    key [dst].  It spans up to two tree levels: the node inspects its
    ≤2-hop neighbourhood, classifies the local shape (zig / semi
    zig-zig / semi zig-zag, bottom-up or top-down), predicts the
    potential change [ΔΦ] the corresponding semi-splay rotation would
    cause, and decides — rotate if [ΔΦ < -δ], forward otherwise
    (Algorithm 1, lines 4-10).

    [plan] performs the read-only decision; [execute] carries a plan
    out.  The two are separated so that the concurrent engine can
    compute a plan's {!cluster} and test it for conflicts before
    committing (Sec. VII). *)

type kind =
  | Bu_zig  (** one level from the top of the climb: promote [x] over its parent *)
  | Bu_semi_zig_zig  (** same-side climb: promote the parent over the grandparent; message moves to the parent *)
  | Bu_semi_zig_zag  (** opposite-side climb: double-promote [x]; message stays on [x] *)
  | Td_zig  (** one level left to the destination: promote the child *)
  | Td_semi_zig_zig  (** same-side descent: promote the child; message lands two levels down *)
  | Td_semi_zig_zag  (** opposite-side descent: double-promote the grandchild; message lands on it *)

val kind_to_string : kind -> string

type t = {
  current : int;  (** Node taking the step. *)
  dst : int;  (** Message destination key ([-1] for root-bound weight updates). *)
  kind : kind;  (** The rotation this step would perform. *)
  delta_phi : float;  (** Predicted potential change of that rotation. *)
  rotate : bool;  (** True when [delta_phi < -δ]: the step is of type rotation. *)
  rotations : int;  (** Number of elementary rotations if [rotate] (1 or 2). *)
  hops : int;  (** Routing hops if [not rotate] (1 or 2). *)
  new_current : int;  (** Where the message sits after the step. *)
  passed : int list;
      (** Nodes (in travel order, ending with [new_current] when the
          message moves) that newly carry the message's path and must
          receive weight increments — see {!Sequential}. *)
  cluster : int list;
      (** The cluster K_t of Def. 6: nodes locked by this step. *)
}

val plan_up : Config.t -> Bstnet.Topology.t -> current:int -> dst:int -> t
(** Plan a bottom-up step (direction Up).  The climb stops at the LCA
    with [dst]; pass [dst = Bstnet.Topology.nil] for a root-bound
    weight-update message, whose climb stops only at the root.
    @raise Invalid_argument when [current] is the root. *)

val plan_down : Config.t -> Bstnet.Topology.t -> current:int -> dst:int -> t
(** Plan a top-down step toward [dst], which must lie strictly inside
    the current node's subtree. *)

val plan : Config.t -> Bstnet.Topology.t -> current:int -> dst:int -> t option
(** Dispatch on {!Bstnet.Topology.direction_to}: [None] when the
    message already sits on its destination, otherwise the up/down
    plan. *)

val execute : Bstnet.Topology.t -> t -> unit
(** Perform the plan's mutation (if [rotate]); moving the message to
    [new_current] is the caller's bookkeeping.  The topology must not
    have changed since [plan] — the concurrent engine guarantees this
    with clusters; the sequential engine trivially. *)
