(** Classic bottom-up splaying primitives (Sleator & Tarjan), used by
    the SplayNet / DiSplayNet baselines.  Unlike CBNet's semi-splays
    these always rotate, and the zig-zig case performs two rotations
    (promoting the splayed node two levels), fully halving path depths
    along the way. *)

type step_result = {
  rotations : int;  (** Elementary rotations performed (1 or 2). *)
  done_ : bool;  (** The stop condition held before the step. *)
}

val splay_step : Bstnet.Topology.t -> int -> guard:int -> step_result
(** One classic splay step of a node within the subtree hanging below
    [guard] ([Bstnet.Topology.nil] = the whole tree); done when the
    node's parent is [guard].  This is the per-round unit of work of
    the DiSplayNet baseline. *)

val splay_step_until :
  Bstnet.Topology.t -> int -> stop:(unit -> bool) -> step_result
(** Perform one full splay step (zig, zig-zig or zig-zag) moving the
    node up to two levels towards the point where [stop] holds.  The
    caller loops — or, in a concurrent setting, spends one round per
    step.  When [stop ()] is already true, nothing is rotated. *)

val splay_until : Bstnet.Topology.t -> int -> stop:(unit -> bool) -> int
(** Iterate {!splay_step_until} to completion; returns the number of
    elementary rotations. *)

val splay_to_root : Bstnet.Topology.t -> int -> int
(** Splay a node all the way to the root; returns rotations. *)

val splay_until_ancestor_of : Bstnet.Topology.t -> int -> target:int -> int
(** Splay a node until [target] lies in its subtree — i.e. until the
    node occupies the (original) LCA position (the first phase of a
    SplayNet request). *)

val splay_until_child_of : Bstnet.Topology.t -> int -> ancestor:int -> int
(** Splay a node (currently in the subtree of [ancestor]) until it is
    a direct child of [ancestor] (the second phase of a SplayNet
    request).  The splayed node never crosses [ancestor]. *)
