(** DiSplayNet (Peres et al., INFOCOM 2019) — the DSN baseline, in the
    variant the paper itself implements (Sec. IX-A): a 3-way handshake
    first travels source → destination → source → destination so both
    endpoints learn of the request, then both endpoints concurrently
    perform full bottom-up splay steps toward their LCA until they are
    adjacent, and the message is exchanged over the resulting link.

    Both endpoints stay locked for the whole lifetime of a request —
    requests sharing an endpoint serialize — which is precisely the
    concurrency limitation CBNet removes.  Splay steps are serialized
    through per-round clusters with birth-time priorities, like
    concurrent CBNet; a blocked step counts as a bypass (all DSN steps
    are rotations).

    Handshake hops consume time but, being tiny control signals, are
    not charged to the work cost (the paper's Fig. 3 shows DSN's work
    as rotation-dominated, which fixes this interpretation); the
    delivery hop is charged as routing. *)

val run :
  ?config:Cbnet.Config.t ->
  ?max_rounds:int ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Cbnet.Run_stats.t
(** Same trace contract as {!Cbnet.Concurrent.run}. *)

val run_with_latencies :
  ?config:Cbnet.Config.t ->
  ?max_rounds:int ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Cbnet.Run_stats.t * float array
(** Like {!run}, additionally returning per-request delivery latencies
    (rounds from birth to delivery, endpoint-lock waiting included). *)

val scheduler :
  ?config:Cbnet.Config.t ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Simkit.Engine.scheduler * (int -> Cbnet.Run_stats.t)

val scheduler_debug :
  ?config:Cbnet.Config.t ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Simkit.Engine.scheduler
  * (int -> Cbnet.Run_stats.t)
  * (Format.formatter -> unit -> unit)
(** Like {!scheduler}, with a dumper of in-flight request states for
    debugging liveness issues. *)
