module T = Bstnet.Topology

type step_result = { rotations : int; done_ : bool }

(* One classic splay step of x within the subtree hanging below
   [guard] ([nil] = the whole tree): terminates when x's parent is
   [guard], i.e. x has become the subtree's root. *)
let splay_step t x ~guard =
  let p = T.parent t x in
  if p = guard then { rotations = 0; done_ = true }
  else begin
    let g = T.parent t p in
    if g = guard then begin
      (* zig *)
      T.rotate_up t x;
      { rotations = 1; done_ = false }
    end
    else if T.is_left_child t x = T.is_left_child t p then begin
      (* zig-zig: rotate the parent first, then the node. *)
      T.rotate_up t p;
      T.rotate_up t x;
      { rotations = 2; done_ = false }
    end
    else begin
      (* zig-zag: rotate the node twice. *)
      T.rotate_up t x;
      T.rotate_up t x;
      { rotations = 2; done_ = false }
    end
  end

let splay_step_until t x ~stop =
  if stop () then { rotations = 0; done_ = true }
  else begin
    let p = T.parent t x in
    if p = T.nil then { rotations = 0; done_ = true }
    else begin
      let g = T.parent t p in
      if g = T.nil then begin
        T.rotate_up t x;
        { rotations = 1; done_ = false }
      end
      else if T.is_left_child t x = T.is_left_child t p then begin
        T.rotate_up t p;
        T.rotate_up t x;
        { rotations = 2; done_ = false }
      end
      else begin
        T.rotate_up t x;
        T.rotate_up t x;
        { rotations = 2; done_ = false }
      end
    end
  end

let splay_until t x ~stop =
  let rec go acc =
    let r = splay_step_until t x ~stop in
    if r.done_ then acc else go (acc + r.rotations)
  in
  go 0

let splay_to_root t x = splay_until t x ~stop:(fun () -> T.is_root t x)

let splay_until_ancestor_of t x ~target =
  (* x occupies the LCA position exactly when the target has entered
     its subtree (or x reached the root). *)
  let stop () = T.in_subtree t ~root:x target || T.is_root t x in
  let guarded_rotations = ref 0 in
  let rec go () =
    if stop () then !guarded_rotations
    else begin
      let anchor =
        (* Splay within the subtree of the current LCA: its parent is
           the guard, so the step never overshoots the LCA position. *)
        T.parent t (T.lca t x target)
      in
      let r = splay_step t x ~guard:anchor in
      if r.done_ then !guarded_rotations
      else begin
        guarded_rotations := !guarded_rotations + r.rotations;
        go ()
      end
    end
  in
  go ()

let splay_until_child_of t x ~ancestor =
  let rec go acc =
    let r = splay_step t x ~guard:ancestor in
    if r.done_ then acc else go (acc + r.rotations)
  in
  go 0
