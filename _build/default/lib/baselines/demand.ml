type t = {
  n : int;
  w : int array;  (* symmetric pair weights, row-major n*n, zero diagonal *)
  prefix : int array;  (* (n+1)*(n+1) 2-D prefix sums of w *)
  degree : int array;
  degree_prefix : int array;  (* degree_prefix.(i) = Σ_{u<i} degree.(u) *)
  src_count : int array;
  dst_count : int array;
  messages : int;
  self_messages : int;
}

let of_trace ~n trace =
  if n <= 0 then invalid_arg "Demand.of_trace: n must be positive";
  let w = Array.make (n * n) 0 in
  let src_count = Array.make n 0 in
  let dst_count = Array.make n 0 in
  let self_messages = ref 0 in
  Array.iter
    (fun (_, s, d) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        invalid_arg "Demand.of_trace: endpoint out of range";
      src_count.(s) <- src_count.(s) + 1;
      dst_count.(d) <- dst_count.(d) + 1;
      if s = d then incr self_messages
      else begin
        w.((s * n) + d) <- w.((s * n) + d) + 1;
        w.((d * n) + s) <- w.((d * n) + s) + 1
      end)
    trace;
  let degree = Array.make n 0 in
  for u = 0 to n - 1 do
    let acc = ref 0 in
    for v = 0 to n - 1 do
      acc := !acc + w.((u * n) + v)
    done;
    degree.(u) <- !acc
  done;
  let stride = n + 1 in
  let prefix = Array.make (stride * stride) 0 in
  for i = 1 to n do
    for j = 1 to n do
      prefix.((i * stride) + j) <-
        w.(((i - 1) * n) + (j - 1))
        + prefix.(((i - 1) * stride) + j)
        + prefix.((i * stride) + j - 1)
        - prefix.(((i - 1) * stride) + j - 1)
    done
  done;
  let degree_prefix = Array.make (n + 1) 0 in
  for u = 0 to n - 1 do
    degree_prefix.(u + 1) <- degree_prefix.(u) + degree.(u)
  done;
  {
    n;
    w;
    prefix;
    degree;
    degree_prefix;
    src_count;
    dst_count;
    messages = Array.length trace;
    self_messages = !self_messages;
  }

let n t = t.n
let pair_weight t u v = if u = v then 0 else t.w.((u * t.n) + v)
let degree t u = t.degree.(u)
let messages t = t.messages
let self_messages t = t.self_messages

(* Σ_{u,v ∈ [lo..hi]} w(u,v), ordered pairs. *)
let block_sum t ~lo ~hi =
  let s = t.n + 1 in
  let a = lo and b = hi + 1 in
  t.prefix.((b * s) + b)
  - t.prefix.((a * s) + b)
  - t.prefix.((b * s) + a)
  + t.prefix.((a * s) + a)

let cut_cost t ~lo ~hi =
  if lo > hi then 0
  else t.degree_prefix.(hi + 1) - t.degree_prefix.(lo) - block_sum t ~lo ~hi

let routing_cost t topo =
  let acc = ref 0 in
  for u = 0 to t.n - 1 do
    for v = u + 1 to t.n - 1 do
      let w = t.w.((u * t.n) + v) in
      if w > 0 then acc := !acc + (w * Bstnet.Topology.distance topo u v)
    done
  done;
  !acc

let entropy counts total =
  if total = 0 then 0.0
  else begin
    let h = ref 0.0 in
    Array.iter
      (fun c ->
        if c > 0 then begin
          let p = float_of_int c /. float_of_int total in
          h := !h -. (p *. Float.log2 p)
        end)
      counts;
    !h
  end

let source_entropy t = entropy t.src_count t.messages
let destination_entropy t = entropy t.dst_count t.messages
