(** SplayNet (Schmid et al., ToN 2016) — the SN baseline of Sec. IX-A.

    For each request [(u, v)] the network aggressively splays: [u] is
    splayed (full bottom-up splaying) up to the position of the
    original LCA of [u] and [v], then [v] is splayed until it becomes
    a direct child of [u]; the message is then exchanged over that
    single link.  Requests are served one at a time by a global
    scheduler (SplayNet is not fully distributed).

    Cost accounting: every elementary rotation costs [R] and one time
    slot; the final delivery is one hop of routing (plus the uniform
    +1 of Def. 1).  Splaying dominates — the work profile is the
    mirror image of CBNet's. *)

val run :
  ?config:Cbnet.Config.t ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Cbnet.Run_stats.t
(** [run t trace] serves [(birth, src, dst)] requests in order,
    mutating [t].  Same trace contract as {!Cbnet.Sequential.run}. *)
