lib/baselines/move_to_root.mli: Bstnet Cbnet
