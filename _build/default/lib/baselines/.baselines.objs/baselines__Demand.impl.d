lib/baselines/demand.ml: Array Bstnet Float
