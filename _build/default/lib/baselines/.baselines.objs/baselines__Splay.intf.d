lib/baselines/splay.mli: Bstnet
