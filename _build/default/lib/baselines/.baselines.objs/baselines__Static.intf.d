lib/baselines/static.mli: Bstnet Cbnet
