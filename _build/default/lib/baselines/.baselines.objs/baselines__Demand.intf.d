lib/baselines/demand.mli: Bstnet
