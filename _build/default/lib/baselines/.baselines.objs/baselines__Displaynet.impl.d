lib/baselines/displaynet.ml: Array Bstnet Cbnet Format List Printf Simkit Splay
