lib/baselines/opt_dp.ml: Array Bstnet Demand
