lib/baselines/splay.ml: Bstnet
