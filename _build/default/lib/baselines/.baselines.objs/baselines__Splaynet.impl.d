lib/baselines/splaynet.ml: Array Bstnet Cbnet Splay
