lib/baselines/splaynet.mli: Bstnet Cbnet
