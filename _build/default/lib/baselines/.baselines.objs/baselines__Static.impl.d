lib/baselines/static.ml: Array Bstnet Cbnet Demand Opt_dp
