lib/baselines/displaynet.mli: Bstnet Cbnet Format Simkit
