lib/baselines/move_to_root.ml: Array Bstnet Cbnet
