lib/baselines/opt_dp.mli: Bstnet Demand
