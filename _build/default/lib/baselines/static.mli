(** Serving a trace on a static (non-reconfiguring) tree — the BT and
    OPT baselines.  Only routing cost is defined; the paper excludes
    static networks from makespan/throughput plots ("there is no
    defined time model for them"), so those fields are zero. *)

val run :
  ?config:Cbnet.Config.t ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Cbnet.Run_stats.t
(** Routing each request over its (fixed) tree path; [d + 1] per
    message per Def. 1. *)

val balanced_tree : int -> Bstnet.Topology.t
(** The BT baseline topology (re-exported from {!Bstnet.Build}). *)

val opt_tree : ?knuth:bool -> n:int -> (int * int * int) array -> Bstnet.Topology.t
(** The OPT baseline topology for a trace (requires knowing the whole
    demand in advance — the paper calls this unrealistic but uses it as
    a reference). *)
