(** Move-to-root network — the simpler rotation heuristic the paper
    dismisses in Sec. II ("a property not shared by other, simpler
    rotation heuristics, such as move-to-root [31]").

    Per request, the source is rotated straight to the position of the
    LCA with single rotations (no zig-zig/zig-zag pairing), then the
    destination straight up to become its child.  Unlike splaying this
    does not halve the depths along the path, so adversarial sequences
    keep it at Θ(n) amortized — the ablation bench makes the contrast
    measurable. *)

val run :
  ?config:Cbnet.Config.t ->
  Bstnet.Topology.t ->
  (int * int * int) array ->
  Cbnet.Run_stats.t
(** Sequential execution; same contract as {!Splaynet.run}. *)
