(** Pairwise demand matrix extracted from a trace — the input of the
    optimal static tree DP and of entropy computations. *)

type t

val of_trace : n:int -> (int * int * int) array -> t
(** Count each request [(­_, src, dst)] once; self-addressed requests
    are recorded separately (no tree affects their cost). *)

val n : t -> int
val pair_weight : t -> int -> int -> int
(** Symmetric demand [f(u,v) + f(v,u)] between two distinct keys. *)

val degree : t -> int -> int
(** Total demand incident to a node (excluding self-traffic). *)

val messages : t -> int
(** Total requests counted, self-traffic included. *)

val self_messages : t -> int

val cut_cost : t -> lo:int -> hi:int -> int
(** Traffic with exactly one endpoint inside the key interval
    [lo..hi] — the load of the link above a subtree spanning it.
    O(1) after construction (2-D prefix sums). *)

val routing_cost : t -> Bstnet.Topology.t -> int
(** [Σ_pairs w(u,v) · d_T(u,v)]: the total routing distance of serving
    the whole demand on a static tree (excluding the per-message +1 and
    self-traffic). *)

val source_entropy : t -> float
(** Empirical entropy [H(Ŝ)] of the source frequency distribution
    (Def. 4). *)

val destination_entropy : t -> float
