(** Adaptation timelines: how a self-adjusting network's per-message
    cost evolves as it learns the demand — the dynamics behind the
    aggregate bars of Fig. 3.

    A trace is served in windows of fixed size on one evolving
    topology; per window we record the amortized routing cost, the
    rotations spent, and the network potential Φ, giving the
    convergence curve (and, on drifting demand, the re-convergence
    transient). *)

type point = {
  window_index : int;
  first_message : int;
  messages : int;
  amortized_routing : float;  (** Routing cost per message in this window. *)
  rotations : int;
  phi : float;  (** Potential Φ(T) at the window's end. *)
  mean_distance : float;  (** Mean tree distance of this window's pairs, measured on the topology at the window's end. *)
}

val sequential_cbnet :
  ?config:Cbnet.Config.t ->
  window:int ->
  Workloads.Trace.t ->
  point list
(** Serve the trace with sequential CBNet in windows of [window]
    messages on a balanced initial topology. *)

val pp : Format.formatter -> point list -> unit
(** Table plus a sparkline of the amortized routing column. *)
