type point = {
  window_index : int;
  first_message : int;
  messages : int;
  amortized_routing : float;
  rotations : int;
  phi : float;
  mean_distance : float;
}

let sequential_cbnet ?(config = Cbnet.Config.default) ~window trace =
  if window < 1 then invalid_arg "Timeline.sequential_cbnet: window must be >= 1";
  let n = trace.Workloads.Trace.n in
  let runs = Workloads.Trace.to_runs trace in
  let t = Bstnet.Build.balanced n in
  let m = Array.length runs in
  let rec go start idx acc =
    if start >= m then List.rev acc
    else begin
      let len = min window (m - start) in
      let chunk = Array.sub runs start len in
      let base = match chunk.(0) with b, _, _ -> b in
      let chunk = Array.map (fun (b, s, d) -> (b - base, s, d)) chunk in
      let stats = Cbnet.Sequential.run ~config t chunk in
      let dist_total =
        Array.fold_left
          (fun acc (_, s, d) ->
            if s = d then acc else acc +. float_of_int (Bstnet.Topology.distance t s d))
          0.0 chunk
      in
      let point =
        {
          window_index = idx;
          first_message = start;
          messages = len;
          amortized_routing =
            float_of_int stats.Cbnet.Run_stats.routing_cost /. float_of_int len;
          rotations = stats.Cbnet.Run_stats.rotations;
          phi = Cbnet.Potential.phi t;
          mean_distance = dist_total /. float_of_int len;
        }
      in
      go (start + len) (idx + 1) (point :: acc)
    end
  in
  go 0 0 []

let pp fmt points =
  let max_routing =
    List.fold_left (fun acc p -> Float.max acc p.amortized_routing) 0.0 points
  in
  Report.table ~title:"adaptation timeline"
    ~headers:[ "win"; "msgs"; "amortized-routing"; "rotations"; "phi"; "curve" ]
    (List.map
       (fun p ->
         [
           string_of_int p.window_index;
           string_of_int p.messages;
           Printf.sprintf "%.3f" p.amortized_routing;
           string_of_int p.rotations;
           Printf.sprintf "%.1f" p.phi;
           Report.bar ~value:p.amortized_routing ~max:max_routing ~width:30;
         ])
       points)
    fmt
