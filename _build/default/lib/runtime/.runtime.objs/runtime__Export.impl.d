lib/runtime/export.ml: Algo Array Experiment Fun List Printf Simkit Timeline
