lib/runtime/experiment.mli: Algo Cbnet Simkit Workloads
