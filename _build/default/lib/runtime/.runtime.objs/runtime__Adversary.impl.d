lib/runtime/adversary.ml: Bstnet Cbnet
