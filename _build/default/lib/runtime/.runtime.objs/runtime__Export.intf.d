lib/runtime/export.mli: Experiment Timeline
