lib/runtime/algo.ml: Baselines Bstnet Cbnet Printf String Workloads
