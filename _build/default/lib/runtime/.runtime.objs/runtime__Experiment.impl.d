lib/runtime/experiment.ml: Algo Cbnet List Simkit Workloads
