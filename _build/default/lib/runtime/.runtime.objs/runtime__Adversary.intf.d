lib/runtime/adversary.mli: Bstnet Cbnet
