lib/runtime/figures.mli: Format Workloads
