lib/runtime/timeline.ml: Array Bstnet Cbnet Float List Printf Report Workloads
