lib/runtime/timeline.mli: Cbnet Format Workloads
