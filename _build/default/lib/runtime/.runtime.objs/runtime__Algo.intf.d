lib/runtime/algo.mli: Cbnet Workloads
