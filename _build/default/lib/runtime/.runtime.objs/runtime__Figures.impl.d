lib/runtime/figures.ml: Adversary Algo Baselines Bstnet Cbnet Char Experiment Float Format List Printf Report Simkit String Timeline Tracekit Workloads
