lib/runtime/report.ml: Array Float Format List Printf Stdlib String
