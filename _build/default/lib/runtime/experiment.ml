type measurement = {
  algo : Algo.t;
  workload : string;
  seeds : int;
  routing : Simkit.Stats.summary;
  rotations : Simkit.Stats.summary;
  work : Simkit.Stats.summary;
  makespan : Simkit.Stats.summary;
  throughput : Simkit.Stats.summary;
  pauses : Simkit.Stats.summary;
  bypasses : Simkit.Stats.summary;
}

let trace_for ?(scale = Workloads.Catalog.Default) ?(lambda = 0.05) ~workload
    ~seed () =
  let entry = Workloads.Catalog.find workload in
  let trace = entry.Workloads.Catalog.generate scale ~seed in
  let rng = Simkit.Rng.create (seed lxor 0x5bd1e995) in
  Workloads.Trace.with_poisson_births rng ~lambda trace

let run_cell ?(config = Cbnet.Config.default) ?(scale = Workloads.Catalog.Default)
    ?(seeds = 5) ?(lambda = 0.05) ?(base_seed = 1) ~workload ~algo () =
  if seeds < 1 then invalid_arg "Experiment.run_cell: seeds must be >= 1";
  let routing = Simkit.Stats.create () in
  let rotations = Simkit.Stats.create () in
  let work = Simkit.Stats.create () in
  let makespan = Simkit.Stats.create () in
  let throughput = Simkit.Stats.create () in
  let pauses = Simkit.Stats.create () in
  let bypasses = Simkit.Stats.create () in
  for i = 0 to seeds - 1 do
    let seed = base_seed + (1009 * i) in
    let trace = trace_for ~scale ~lambda ~workload ~seed () in
    let stats = Algo.run ~config algo trace in
    Simkit.Stats.add routing (float_of_int stats.Cbnet.Run_stats.routing_cost);
    Simkit.Stats.add rotations (float_of_int stats.Cbnet.Run_stats.rotations);
    Simkit.Stats.add work stats.Cbnet.Run_stats.work;
    Simkit.Stats.add makespan (float_of_int stats.Cbnet.Run_stats.makespan);
    Simkit.Stats.add throughput stats.Cbnet.Run_stats.throughput;
    Simkit.Stats.add pauses (float_of_int stats.Cbnet.Run_stats.pauses);
    Simkit.Stats.add bypasses (float_of_int stats.Cbnet.Run_stats.bypasses)
  done;
  {
    algo;
    workload;
    seeds;
    routing = Simkit.Stats.summary routing;
    rotations = Simkit.Stats.summary rotations;
    work = Simkit.Stats.summary work;
    makespan = Simkit.Stats.summary makespan;
    throughput = Simkit.Stats.summary throughput;
    pauses = Simkit.Stats.summary pauses;
    bypasses = Simkit.Stats.summary bypasses;
  }

let run_matrix ?config ?scale ?seeds ?lambda ?base_seed ~workloads ~algos () =
  List.concat_map
    (fun workload ->
      List.map
        (fun algo -> run_cell ?config ?scale ?seeds ?lambda ?base_seed ~workload ~algo ())
        algos)
    workloads
