(** CSV export of measurements, for external plotting (gnuplot,
    matplotlib, R): one row per (workload, algorithm) with mean and
    95%-CI columns, and per-point rows for timelines and latency
    distributions. *)

val measurements_csv : Experiment.measurement list -> string -> unit
(** Header: workload,algo,seeds,metric columns (mean and ci95 each). *)

val timeline_csv : Timeline.point list -> string -> unit

val latencies_csv : float array -> string -> unit
(** One latency per row, plus a percentile summary block as trailing
    comment lines. *)
