type t = { cdf : float array; pmf : float array }

let create ~alpha ~k =
  if alpha < 0.0 then invalid_arg "Zipf.create: negative alpha";
  if k <= 0 then invalid_arg "Zipf.create: k must be positive";
  let pmf = Array.init k (fun i -> 1.0 /. Float.pow (float_of_int (i + 1)) alpha) in
  let total = Array.fold_left ( +. ) 0.0 pmf in
  let cdf = Array.make k 0.0 in
  let acc = ref 0.0 in
  Array.iteri
    (fun i w ->
      pmf.(i) <- w /. total;
      acc := !acc +. pmf.(i);
      cdf.(i) <- !acc)
    pmf;
  cdf.(k - 1) <- 1.0;
  { cdf; pmf }

let sample t rng =
  let u = Simkit.Rng.float rng 1.0 in
  (* Smallest index with cdf.(i) >= u. *)
  let lo = ref 0 and hi = ref (Array.length t.cdf - 1) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if t.cdf.(mid) >= u then hi := mid else lo := mid + 1
  done;
  !lo

let probability t i = t.pmf.(i)

let entropy t =
  Array.fold_left
    (fun acc p -> if p > 0.0 then acc -. (p *. Float.log2 p) else acc)
    0.0 t.pmf

let alpha_for_entropy ~k ~target =
  let max_h = Float.log2 (float_of_int k) in
  if target <= 0.0 || target >= max_h then
    invalid_arg "Zipf.alpha_for_entropy: target outside (0, log2 k)";
  (* Entropy decreases monotonically in alpha: bisect. *)
  let h_of alpha = entropy (create ~alpha ~k) in
  let lo = ref 0.0 and hi = ref 64.0 in
  for _ = 1 to 60 do
    let mid = 0.5 *. (!lo +. !hi) in
    if h_of mid > target then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)
