(** Drifting-hotspot workload: the demand distribution changes
    mid-trace.  Phase 1 samples a Zipf-skewed set of hot pairs; phase
    2 samples a disjoint set.  Self-adjusting networks that remember
    the full history adapt slowly to the second phase — the scenario
    motivating the counter-reset extension (paper Sec. IX-D). *)

val generate :
  ?n:int -> ?m:int -> ?phases:int -> ?alpha:float -> ?support:int ->
  seed:int -> unit -> Trace.t
(** Defaults: [n = 256], [m = 20_000], [phases = 2], [alpha = 1.2],
    [support = 512] hot pairs per phase. *)
