let generate ?(n = 128) ?(m = 10_000) ~seed () =
  let rng = Simkit.Rng.create seed in
  let requests =
    Array.init m (fun _ -> (Simkit.Rng.int rng n, Simkit.Rng.int rng n))
  in
  Trace.make ~name:"uniform" ~n requests
