(** HPC mini-app workload (Sec. VIII): both temporal and non-temporal
    locality.

    The paper samples the DOE "characterization of mini-apps" traces
    (MOCFE and friends: Poisson solvers, Navier-Stokes hyperbolic
    components, elliptic linear systems) on 1,024 ranks.  Their
    communication skeleton is an iterative 2-D stencil exchange plus
    periodic tree-structured collectives, which is what we generate:
    ranks form a [side × side] grid; each iteration every rank
    exchanges with its 4-neighbourhood (fixed partners → non-temporal
    locality; per-iteration repetition → temporal locality), and every
    [collective_every] iterations a binomial reduction tree funnels to
    rank 0. *)

val generate :
  ?side:int -> ?m:int -> ?collective_every:int -> seed:int -> unit -> Trace.t
(** Defaults: [side = 32] (n = 1024), [m = 100_000] (paper: 1,000,000),
    [collective_every = 8].  The seed randomizes rank placement (the
    grid→key mapping) and traversal order jitter. *)
