(** The Bursty synthetic workload (Sec. VIII): extreme temporal
    locality — the sequence is mostly consecutive repetitions of the
    same request — with essentially no non-temporal locality (the pair
    starting each burst is uniform).  Paper parameters: n = 1024,
    m = 10,000. *)

val generate :
  ?n:int -> ?m:int -> ?mean_burst:float -> seed:int -> unit -> Trace.t
(** Bursts have geometric length with the given mean (default 50);
    burst pairs are i.i.d. uniform over distinct node pairs. *)
