(** Uniform i.i.d. requests: the zero-locality reference point used by
    the trace-complexity normalization U(σ) and as a sanity baseline. *)

val generate : ?n:int -> ?m:int -> seed:int -> unit -> Trace.t
(** Defaults: [n = 128], [m = 10_000]. *)
