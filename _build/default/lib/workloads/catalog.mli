(** The named workload catalog used by the experiment harness: the six
    families of the paper's evaluation plus the uniform reference,
    each at the paper's size ("full") or a scaled-down default that
    keeps every figure reproducible in minutes. *)

type scale = Default | Full

type entry = {
  key : string;  (** e.g. "projector" *)
  description : string;
  n : int;
  generate : scale -> seed:int -> Trace.t;
}

val all : entry list
(** projector, skewed, pfabric, bursty, hpc, datastructure, uniform. *)

val find : string -> entry
(** @raise Not_found for an unknown key. *)

val keys : string list

val paper_six : string list
(** The six workloads of Figures 2-4, in the paper's grouping order. *)
