(** Tunable-locality traces, after the sampling scheme of Avin et
    al. [1] that the paper's Skewed and Bursty workloads instantiate:
    two independent knobs set the two locality axes of the trace map.

    With probability [temporal] the next request repeats one drawn
    uniformly from the last [window] requests (temporal structure);
    otherwise it is sampled i.i.d. from a Zipf-weighted fixed pair
    matrix whose skew [alpha] sets the non-temporal structure
    ([alpha = 0] = uniform matrix).  Sweeping the two knobs traces out
    the whole plane of Fig. 2. *)

val generate :
  ?n:int ->
  ?m:int ->
  ?temporal:float ->
  ?window:int ->
  ?alpha:float ->
  ?support:int ->
  seed:int ->
  unit ->
  Trace.t
(** Defaults: [n = 256], [m = 10_000], [temporal = 0.0],
    [window = 64], [alpha = 0.0], [support = min (n(n-1)) 16384].
    @raise Invalid_argument for [temporal] outside [0, 1). *)

val grid :
  ?n:int -> ?m:int -> seed:int ->
  temporal_levels:float list -> alpha_levels:float list ->
  unit -> (float * float * Trace.t) list
(** The full sweep: one trace per (temporal, alpha) combination, for
    the trace-map calibration bench. *)
