(** Communication traces: the request sequences σ of the paper.

    A trace is a sequence of (source, destination) requests over nodes
    [0 .. n-1], plus the time slots at which the requests enter the
    network.  Generators produce untimed request sequences; arrival
    stamping is applied separately so the same σ can be replayed under
    different load models. *)

type t = {
  name : string;
  n : int;  (** Number of network nodes. *)
  requests : (int * int) array;  (** (src, dst) pairs, in σ order. *)
  births : int array;  (** Entry slot of each request (same length). *)
}

val make : name:string -> n:int -> (int * int) array -> t
(** Untimed: births default to one request per slot (slot = index).
    @raise Invalid_argument on out-of-range endpoints. *)

val length : t -> int

val with_births : t -> int array -> t
(** Replace the arrival stamps (must be sorted, same length). *)

val with_poisson_births : Simkit.Rng.t -> lambda:float -> t -> t
(** Stamp with the paper's arrival process: successive gaps drawn from
    a discrete Poisson of mean [lambda], floored at one slot
    (Sec. IX-B, λ = 0.05). *)

val to_runs : t -> (int * int * int) array
(** [(birth, src, dst)] triples, the executor input format. *)

val sub : t -> int -> t
(** Prefix of the first [k] requests. *)

val concat_name : t -> string -> t
(** Rename (e.g. to tag a transformation). *)

val shuffled : Simkit.Rng.t -> t -> t
(** The Γ(σ) transformation of Sec. VIII: same multiset of requests in
    a uniformly random order (temporal structure destroyed);
    births are kept as the original slots. *)

val uniform_like : Simkit.Rng.t -> t -> t
(** The U(σ) transformation: same length and node domain, requests
    drawn i.i.d. uniformly (all structure destroyed). *)

val save_csv : t -> string -> unit
(** Write "birth,src,dst" lines (with a header) to a file. *)

val load_csv : name:string -> n:int -> string -> t
(** Inverse of {!save_csv}.
    @raise Failure on malformed input. *)

val pp_summary : Format.formatter -> t -> unit
