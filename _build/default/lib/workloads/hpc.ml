let generate ?(side = 32) ?(m = 100_000) ?(collective_every = 8) ~seed () =
  if side < 2 then invalid_arg "Hpc.generate: side must be >= 2";
  if collective_every < 1 then
    invalid_arg "Hpc.generate: collective_every must be >= 1";
  let n = side * side in
  let rng = Simkit.Rng.create seed in
  (* Random placement of MPI ranks onto network keys: locality in the
     application is not locality in the key space. *)
  let place = Array.init n (fun i -> i) in
  Simkit.Rng.shuffle rng place;
  let grid r c = place.((r * side) + c) in
  let buf = ref [] in
  let count = ref 0 in
  let push s d =
    if !count < m then begin
      buf := (s, d) :: !buf;
      incr count
    end
  in
  let stencil_iteration () =
    for r = 0 to side - 1 do
      for c = 0 to side - 1 do
        let self = grid r c in
        if r > 0 then push self (grid (r - 1) c);
        if c > 0 then push self (grid r (c - 1));
        if r < side - 1 then push self (grid (r + 1) c);
        if c < side - 1 then push self (grid r (c + 1))
      done
    done
  in
  let reduction () =
    (* Binomial tree to rank (0,0): at distance d = 1, 2, 4, ... ranks
       r with r mod 2d = d send to r - d (flattened order). *)
    let dist = ref 1 in
    while !dist < n do
      let d = !dist in
      let r = ref d in
      while !r < n do
        push place.(!r) place.(!r - d);
        r := !r + (2 * d)
      done;
      dist := 2 * d
    done
  in
  let iteration = ref 0 in
  while !count < m do
    stencil_iteration ();
    incr iteration;
    if !iteration mod collective_every = 0 then reduction ()
  done;
  let requests = Array.of_list (List.rev !buf) in
  Trace.make ~name:"hpc" ~n requests
