type t = {
  name : string;
  n : int;
  requests : (int * int) array;
  births : int array;
}

let validate ~n requests =
  Array.iter
    (fun (s, d) ->
      if s < 0 || s >= n || d < 0 || d >= n then
        invalid_arg "Trace.make: endpoint out of range")
    requests

let make ~name ~n requests =
  if n <= 0 then invalid_arg "Trace.make: n must be positive";
  validate ~n requests;
  { name; n; requests; births = Array.init (Array.length requests) (fun i -> i) }

let length t = Array.length t.requests

let with_births t births =
  if Array.length births <> length t then
    invalid_arg "Trace.with_births: length mismatch";
  let sorted = ref true in
  for i = 1 to Array.length births - 1 do
    if births.(i) < births.(i - 1) then sorted := false
  done;
  if not !sorted then invalid_arg "Trace.with_births: births not sorted";
  { t with births }

let with_poisson_births rng ~lambda t =
  with_births t (Simkit.Arrivals.poisson_discrete rng ~lambda ~count:(length t))

let to_runs t =
  Array.init (length t) (fun i ->
      let s, d = t.requests.(i) in
      (t.births.(i), s, d))

let sub t k =
  if k < 0 || k > length t then invalid_arg "Trace.sub: bad length";
  {
    t with
    requests = Array.sub t.requests 0 k;
    births = Array.sub t.births 0 k;
  }

let concat_name t suffix = { t with name = t.name ^ suffix }

let shuffled rng t =
  let requests = Array.copy t.requests in
  Simkit.Rng.shuffle rng requests;
  { t with name = t.name ^ "-shuffled"; requests }

let uniform_like rng t =
  let requests =
    Array.init (length t) (fun _ ->
        (Simkit.Rng.int rng t.n, Simkit.Rng.int rng t.n))
  in
  { t with name = t.name ^ "-uniform"; requests }

let save_csv t path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      output_string oc "birth,src,dst\n";
      Array.iteri
        (fun i (s, d) -> Printf.fprintf oc "%d,%d,%d\n" t.births.(i) s d)
        t.requests)

let load_csv ~name ~n path =
  let ic = open_in path in
  Fun.protect
    ~finally:(fun () -> close_in ic)
    (fun () ->
      let header = input_line ic in
      if not (String.length header >= 5 && String.sub header 0 5 = "birth") then
        failwith "Trace.load_csv: missing header";
      let rows = ref [] in
      (try
         while true do
           let line = input_line ic in
           if String.trim line <> "" then
             match String.split_on_char ',' line with
             | [ b; s; d ] ->
                 rows :=
                   (int_of_string (String.trim b),
                    int_of_string (String.trim s),
                    int_of_string (String.trim d))
                   :: !rows
             | _ -> failwith "Trace.load_csv: malformed row"
         done
       with End_of_file -> ());
      let rows = Array.of_list (List.rev !rows) in
      let requests = Array.map (fun (_, s, d) -> (s, d)) rows in
      let births = Array.map (fun (b, _, _) -> b) rows in
      validate ~n requests;
      { name; n; requests; births })

let pp_summary fmt t =
  Format.fprintf fmt "%s: n=%d m=%d span=[%d..%d]" t.name t.n (length t)
    (if length t = 0 then 0 else t.births.(0))
    (if length t = 0 then 0 else t.births.(length t - 1))
