(** The Data Structure workload (Sec. VIII): low locality on both
    axes, mimicking access sequences of self-adjusting data
    structures.

    Every message is addressed to the root node of the initial
    balanced network; the source is drawn from a (truncated, rounded)
    normal distribution with std 1.6 over the remaining n-1 nodes.
    Paper parameters: n = 128, m = 10,000. *)

val generate : ?n:int -> ?m:int -> ?std:float -> seed:int -> unit -> Trace.t
(** The destination is [(n - 1) / 2] — the root of
    {!Bstnet.Build.balanced}; sources are normal around it. *)
