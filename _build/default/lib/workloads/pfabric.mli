(** PFabric-like workload (Sec. VIII): the highest temporal locality
    among the paper's real traces, with a near-uniform communication
    matrix.

    The original traces come from NS2 simulations of the pFabric
    datacenter transport (144 nodes, web-search / data-mining flow
    size distributions).  We reproduce the generative process at flow
    granularity: flows arrive as a Poisson process between uniformly
    random pairs, flow sizes are Pareto-heavy-tailed, and each flow's
    packets appear as consecutive requests of the same pair, with a
    small number of flows interleaving — exactly the structure that
    yields high temporal and low non-temporal locality. *)

val generate :
  ?n:int -> ?m:int -> ?mean_flow:float -> ?pareto_shape:float ->
  ?concurrency:int -> seed:int -> unit -> Trace.t
(** Defaults: [n = 144], [m = 100_000] (paper: 1,000,000 — pass [~m]
    explicitly for full scale), [mean_flow = 300.0] packets (pFabric web-search flows average ~MBs, i.e. hundreds of packets),
    [pareto_shape = 1.5], [concurrency = 4] interleaved flows. *)
