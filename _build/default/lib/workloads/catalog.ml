type scale = Default | Full

type entry = {
  key : string;
  description : string;
  n : int;
  generate : scale -> seed:int -> Trace.t;
}

let all =
  [
    {
      key = "projector";
      description = "ProjecToR-like: skewed fixed matrix, i.i.d. (n=128)";
      n = 128;
      generate = (fun _scale ~seed -> Projector.generate ~seed ());
    };
    {
      key = "skewed";
      description = "Zipf pairs, i.i.d. (n=1024)";
      n = 1024;
      generate = (fun _scale ~seed -> Skewed.generate ~seed ());
    };
    {
      key = "pfabric";
      description = "pFabric-like flow bursts (n=144)";
      n = 144;
      generate =
        (fun scale ~seed ->
          let m = match scale with Default -> 50_000 | Full -> 1_000_000 in
          Pfabric.generate ~m ~seed ());
    };
    {
      key = "bursty";
      description = "geometric repeat bursts, uniform pairs (n=1024)";
      n = 1024;
      generate = (fun _scale ~seed -> Bursty.generate ~seed ());
    };
    {
      key = "hpc";
      description = "2-D stencil + binomial collectives (n=1024)";
      n = 1024;
      generate =
        (fun scale ~seed ->
          let m = match scale with Default -> 50_000 | Full -> 1_000_000 in
          Hpc.generate ~m ~seed ());
    };
    {
      key = "datastructure";
      description = "root destination, normal sources (n=128)";
      n = 128;
      generate = (fun _scale ~seed -> Datastructure.generate ~seed ());
    };
    {
      key = "uniform";
      description = "uniform i.i.d. reference (n=128)";
      n = 128;
      generate = (fun _scale ~seed -> Uniform.generate ~seed ());
    };
  ]

let find key = List.find (fun e -> e.key = key) all
let keys = List.map (fun e -> e.key) all

let paper_six =
  [ "projector"; "skewed"; "pfabric"; "bursty"; "hpc"; "datastructure" ]
