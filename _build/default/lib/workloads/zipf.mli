(** Zipf (power-law) sampling, the non-temporal locality knob of the
    synthetic workloads (Sec. VIII): item [k] (1-based rank) has
    probability proportional to [1 / k^alpha]. *)

type t

val create : alpha:float -> k:int -> t
(** Precomputes the cumulative distribution; O(k).
    @raise Invalid_argument for [alpha < 0] or [k <= 0]. *)

val sample : t -> Simkit.Rng.t -> int
(** 0-based rank, by binary search over the CDF; O(log k). *)

val probability : t -> int -> float
(** Probability of 0-based rank [i]. *)

val entropy : t -> float
(** Shannon entropy (bits) of the distribution. *)

val alpha_for_entropy : k:int -> target:float -> float
(** Invert {!entropy} over [alpha] by bisection: the paper generates
    Skewed traces with an analytically chosen entropy (Sec. VIII).
    [target] must lie in [(0, log2 k)]. *)
