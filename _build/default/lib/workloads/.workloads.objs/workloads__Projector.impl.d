lib/workloads/projector.ml: Array Hashtbl Simkit Trace Zipf
