lib/workloads/tunable.mli: Trace
