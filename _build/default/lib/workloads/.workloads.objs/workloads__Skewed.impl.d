lib/workloads/skewed.ml: Array Hashtbl Simkit Trace Zipf
