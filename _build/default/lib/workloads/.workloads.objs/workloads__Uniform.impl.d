lib/workloads/uniform.ml: Array Simkit Trace
