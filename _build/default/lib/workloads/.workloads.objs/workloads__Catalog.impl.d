lib/workloads/catalog.ml: Bursty Datastructure Hpc List Pfabric Projector Skewed Trace Uniform
