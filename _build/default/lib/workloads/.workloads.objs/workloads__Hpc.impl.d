lib/workloads/hpc.ml: Array List Simkit Trace
