lib/workloads/tunable.ml: Array Hashtbl List Printf Simkit Trace Zipf
