lib/workloads/catalog.mli: Trace
