lib/workloads/zipf.ml: Array Float Simkit
