lib/workloads/bursty.mli: Trace
