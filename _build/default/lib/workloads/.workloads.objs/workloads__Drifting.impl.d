lib/workloads/drifting.ml: Array Hashtbl Simkit Trace Zipf
