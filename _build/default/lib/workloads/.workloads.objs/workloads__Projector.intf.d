lib/workloads/projector.mli: Trace
