lib/workloads/pfabric.ml: Array Float Simkit Trace
