lib/workloads/datastructure.ml: Array Float Simkit Trace
