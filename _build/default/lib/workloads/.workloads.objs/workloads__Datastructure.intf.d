lib/workloads/datastructure.mli: Trace
