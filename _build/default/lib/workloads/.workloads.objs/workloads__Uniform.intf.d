lib/workloads/uniform.mli: Trace
