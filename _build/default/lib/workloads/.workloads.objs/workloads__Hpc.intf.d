lib/workloads/hpc.mli: Trace
