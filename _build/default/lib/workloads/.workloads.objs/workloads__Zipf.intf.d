lib/workloads/zipf.mli: Simkit
