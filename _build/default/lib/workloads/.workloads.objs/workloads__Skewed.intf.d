lib/workloads/skewed.mli: Trace
