lib/workloads/trace.mli: Format Simkit
