lib/workloads/drifting.mli: Trace
