lib/workloads/bursty.ml: Array Simkit Trace
