lib/workloads/trace.ml: Array Format Fun List Printf Simkit String
