lib/workloads/pfabric.mli: Trace
