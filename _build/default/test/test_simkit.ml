(* Unit and property tests for the simulation substrate. *)

module Rng = Simkit.Rng
module Heap = Simkit.Heap
module Stats = Simkit.Stats

let test_rng_determinism () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seed_sensitivity () =
  let a = Rng.create 1 and b = Rng.create 2 in
  let same = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 a = Rng.bits64 b then incr same
  done;
  Alcotest.(check bool) "different streams" true (!same < 4)

let test_rng_int_range () =
  let rng = Rng.create 7 in
  for _ = 1 to 10_000 do
    let v = Rng.int rng 127 in
    if v < 0 || v >= 127 then Alcotest.failf "out of range: %d" v
  done

let test_rng_int_covers () =
  let rng = Rng.create 11 in
  let seen = Array.make 10 false in
  for _ = 1 to 1000 do
    seen.(Rng.int rng 10) <- true
  done;
  Array.iteri (fun i s -> if not s then Alcotest.failf "value %d never drawn" i) seen

let test_rng_split_independent () =
  let parent = Rng.create 3 in
  let child = Rng.split parent in
  let equal = ref 0 in
  for _ = 1 to 64 do
    if Rng.bits64 parent = Rng.bits64 child then incr equal
  done;
  Alcotest.(check bool) "split decorrelated" true (!equal < 4)

let test_rng_float_unit_interval () =
  let rng = Rng.create 13 in
  for _ = 1 to 10_000 do
    let v = Rng.float rng 1.0 in
    if v < 0.0 || v >= 1.0 then Alcotest.failf "float out of range: %f" v
  done

let test_rng_exponential_mean () =
  let rng = Rng.create 17 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Rng.exponential rng 0.05)
  done;
  let mean = Stats.mean s in
  Alcotest.(check bool) "mean near 20" true (mean > 18.0 && mean < 22.0)

let test_rng_normal_moments () =
  let rng = Rng.create 19 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (Rng.normal rng ~mean:5.0 ~std:2.0)
  done;
  Alcotest.(check bool) "mean" true (Float.abs (Stats.mean s -. 5.0) < 0.1);
  Alcotest.(check bool) "std" true (Float.abs (Stats.std s -. 2.0) < 0.1)

let test_rng_poisson_mean () =
  let rng = Rng.create 23 in
  let s = Stats.create () in
  for _ = 1 to 50_000 do
    Stats.add s (float_of_int (Rng.poisson rng 0.05))
  done;
  Alcotest.(check bool) "mean near lambda" true
    (Float.abs (Stats.mean s -. 0.05) < 0.01)

let test_rng_shuffle_permutation () =
  let rng = Rng.create 29 in
  let a = Array.init 100 (fun i -> i) in
  Rng.shuffle rng a;
  let sorted = Array.copy a in
  Array.sort compare sorted;
  Alcotest.(check bool) "is permutation" true (sorted = Array.init 100 (fun i -> i));
  Alcotest.(check bool) "actually shuffled" true (a <> Array.init 100 (fun i -> i))

let test_rng_choose_weighted () =
  let rng = Rng.create 31 in
  let counts = Array.make 3 0 in
  for _ = 1 to 30_000 do
    let i = Rng.choose_weighted rng [| 1.0; 2.0; 7.0 |] in
    counts.(i) <- counts.(i) + 1
  done;
  Alcotest.(check bool) "weights respected" true
    (counts.(2) > counts.(1) && counts.(1) > counts.(0));
  let p2 = float_of_int counts.(2) /. 30_000.0 in
  Alcotest.(check bool) "heaviest near 0.7" true (Float.abs (p2 -. 0.7) < 0.05)

let test_heap_sorts () =
  let h = Heap.create compare in
  List.iter (Heap.push h) [ 5; 3; 8; 1; 9; 2; 7 ];
  Alcotest.(check (list int)) "ascending" [ 1; 2; 3; 5; 7; 8; 9 ] (Heap.to_list h);
  Alcotest.(check int) "length" 7 (Heap.length h)

let test_heap_pop_order () =
  let h = Heap.create compare in
  List.iter (Heap.push h) [ 4; 2; 6 ];
  Alcotest.(check (option int)) "min" (Some 2) (Heap.pop h);
  Heap.push h 1;
  Alcotest.(check (option int)) "new min" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "next" (Some 4) (Heap.pop h);
  Alcotest.(check (option int)) "next" (Some 6) (Heap.pop h);
  Alcotest.(check (option int)) "empty" None (Heap.pop h)

let test_heap_stability () =
  (* Equal keys pop in insertion order. *)
  let h = Heap.create (fun (a, _) (b, _) -> compare a b) in
  List.iter (Heap.push h) [ (1, "a"); (1, "b"); (0, "z"); (1, "c") ];
  let order = List.map snd (Heap.to_list h) in
  Alcotest.(check (list string)) "stable ties" [ "z"; "a"; "b"; "c" ] order

let test_heap_empty () =
  let h = Heap.create compare in
  Alcotest.(check bool) "is_empty" true (Heap.is_empty h);
  Alcotest.(check (option int)) "peek" None (Heap.peek h);
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h))

let test_heap_of_array () =
  let h = Heap.of_array compare [| 3; 1; 2 |] in
  Alcotest.(check (list int)) "heapified" [ 1; 2; 3 ] (Heap.to_list h)

let test_stats_basic () =
  let s = Stats.of_list [ 1.0; 2.0; 3.0; 4.0 ] in
  Alcotest.(check (float 1e-9)) "mean" 2.5 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "min" 1.0 (Stats.min s);
  Alcotest.(check (float 1e-9)) "max" 4.0 (Stats.max s);
  Alcotest.(check (float 1e-9)) "total" 10.0 (Stats.total s);
  Alcotest.(check (float 1e-6)) "variance" (5.0 /. 3.0) (Stats.variance s)

let test_stats_empty () =
  let s = Stats.create () in
  Alcotest.(check int) "count" 0 (Stats.count s);
  Alcotest.(check (float 1e-9)) "mean" 0.0 (Stats.mean s);
  Alcotest.(check (float 1e-9)) "std" 0.0 (Stats.std s)

let test_stats_percentile () =
  let data = Array.init 101 (fun i -> float_of_int i) in
  Alcotest.(check (float 1e-9)) "p0" 0.0 (Stats.percentile data 0.0);
  Alcotest.(check (float 1e-9)) "p50" 50.0 (Stats.percentile data 50.0);
  Alcotest.(check (float 1e-9)) "p100" 100.0 (Stats.percentile data 100.0);
  Alcotest.(check (float 1e-9)) "interpolated" 24.75 (Stats.percentile [| 0.; 33.; 66.; 99. |] 25.0)

let test_metrics_counters () =
  let m = Simkit.Metrics.create () in
  Simkit.Metrics.incr m "a";
  Simkit.Metrics.incr m "a";
  Simkit.Metrics.add m "b" 5;
  Alcotest.(check int) "a" 2 (Simkit.Metrics.counter m "a");
  Alcotest.(check int) "b" 5 (Simkit.Metrics.counter m "b");
  Alcotest.(check int) "missing" 0 (Simkit.Metrics.counter m "zzz")

let test_metrics_merge () =
  let a = Simkit.Metrics.create () in
  let b = Simkit.Metrics.create () in
  Simkit.Metrics.add a "x" 1;
  Simkit.Metrics.add b "x" 2;
  Simkit.Metrics.observe b "lat" 4.0;
  Simkit.Metrics.merge_into ~dst:a b;
  Alcotest.(check int) "summed" 3 (Simkit.Metrics.counter a "x");
  match Simkit.Metrics.stream a "lat" with
  | Some s -> Alcotest.(check int) "stream copied" 1 s.Stats.n
  | None -> Alcotest.fail "stream missing"

let test_arrivals_poisson_monotone () =
  let rng = Rng.create 5 in
  let t = Simkit.Arrivals.poisson rng ~lambda:0.05 ~count:1000 in
  for i = 1 to 999 do
    if t.(i) <= t.(i - 1) then Alcotest.failf "not strictly increasing at %d" i
  done

let test_arrivals_poisson_discrete_gaps () =
  let rng = Rng.create 5 in
  let t = Simkit.Arrivals.poisson_discrete rng ~lambda:0.05 ~count:10_000 in
  let ones = ref 0 in
  for i = 1 to 9_999 do
    let gap = t.(i) - t.(i - 1) in
    if gap < 1 then Alcotest.failf "gap below one at %d" i;
    if gap = 1 then incr ones
  done;
  (* With lambda = 0.05 nearly every gap is the one-slot minimum. *)
  Alcotest.(check bool) "mostly unit gaps" true (!ones > 9_000)

let test_arrivals_batched () =
  let t = Simkit.Arrivals.batched ~batch:3 ~gap:10 ~count:7 in
  Alcotest.(check (list int)) "batch layout" [ 0; 0; 0; 10; 10; 10; 20 ]
    (Array.to_list t)

let test_engine_runs_to_completion () =
  let remaining = ref 5 in
  let sched =
    {
      Simkit.Engine.label = "count";
      tick = (fun _ -> decr remaining);
      is_done = (fun () -> !remaining = 0);
    }
  in
  Alcotest.(check int) "rounds" 5 (Simkit.Engine.run_exn sched)

let test_engine_budget () =
  let sched =
    { Simkit.Engine.label = "stuck"; tick = (fun _ -> ()); is_done = (fun () -> false) }
  in
  let o = Simkit.Engine.run ~max_rounds:10 sched in
  Alcotest.(check bool) "not completed" false o.Simkit.Engine.completed;
  Alcotest.(check int) "rounds" 10 o.Simkit.Engine.rounds;
  Alcotest.check_raises "run_exn raises"
    (Simkit.Engine.Budget_exhausted "scheduler stuck did not terminate")
    (fun () -> ignore (Simkit.Engine.run_exn ~max_rounds:10 sched))

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"heap sorts any int list" ~count:200
         Gen.(list int)
         (fun l ->
           let h = Simkit.Heap.of_array compare (Array.of_list l) in
           Simkit.Heap.to_list h = List.sort compare l));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"percentile within data range" ~count:200
         Gen.(pair (list_size (int_range 1 50) (float_bound_inclusive 100.0))
                (float_bound_inclusive 100.0))
         (fun (l, p) ->
           let data = Array.of_list l in
           let v = Stats.percentile data p in
           let lo = Array.fold_left Float.min infinity data in
           let hi = Array.fold_left Float.max neg_infinity data in
           v >= lo -. 1e-9 && v <= hi +. 1e-9));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"rng int respects bound" ~count:500
         Gen.(pair (int_range 1 1_000_000) int)
         (fun (bound, seed) ->
           let rng = Rng.create seed in
           let v = Rng.int rng bound in
           v >= 0 && v < bound));
  ]

let () =
  Alcotest.run "simkit"
    [
      ( "rng",
        [
          Alcotest.test_case "determinism" `Quick test_rng_determinism;
          Alcotest.test_case "seed sensitivity" `Quick test_rng_seed_sensitivity;
          Alcotest.test_case "int range" `Quick test_rng_int_range;
          Alcotest.test_case "int covers" `Quick test_rng_int_covers;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "float unit interval" `Quick test_rng_float_unit_interval;
          Alcotest.test_case "exponential mean" `Quick test_rng_exponential_mean;
          Alcotest.test_case "normal moments" `Quick test_rng_normal_moments;
          Alcotest.test_case "poisson mean" `Quick test_rng_poisson_mean;
          Alcotest.test_case "shuffle permutation" `Quick test_rng_shuffle_permutation;
          Alcotest.test_case "choose weighted" `Quick test_rng_choose_weighted;
        ] );
      ( "heap",
        [
          Alcotest.test_case "sorts" `Quick test_heap_sorts;
          Alcotest.test_case "pop order" `Quick test_heap_pop_order;
          Alcotest.test_case "stability" `Quick test_heap_stability;
          Alcotest.test_case "empty" `Quick test_heap_empty;
          Alcotest.test_case "of_array" `Quick test_heap_of_array;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basic" `Quick test_stats_basic;
          Alcotest.test_case "empty" `Quick test_stats_empty;
          Alcotest.test_case "percentile" `Quick test_stats_percentile;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counters" `Quick test_metrics_counters;
          Alcotest.test_case "merge" `Quick test_metrics_merge;
        ] );
      ( "arrivals",
        [
          Alcotest.test_case "poisson monotone" `Quick test_arrivals_poisson_monotone;
          Alcotest.test_case "discrete gaps" `Quick test_arrivals_poisson_discrete_gaps;
          Alcotest.test_case "batched" `Quick test_arrivals_batched;
        ] );
      ( "engine",
        [
          Alcotest.test_case "completion" `Quick test_engine_runs_to_completion;
          Alcotest.test_case "budget" `Quick test_engine_budget;
        ] );
      ("properties", qcheck_tests);
    ]
