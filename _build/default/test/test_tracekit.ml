(* LZ78 and trace complexity (Def. 8). *)

module Lz78 = Tracekit.Lz78
module Complexity = Tracekit.Complexity
module Trace = Workloads.Trace

let test_bits_for () =
  Alcotest.(check int) "1" 1 (Lz78.bits_for 1);
  Alcotest.(check int) "2" 1 (Lz78.bits_for 2);
  Alcotest.(check int) "3" 2 (Lz78.bits_for 3);
  Alcotest.(check int) "4" 2 (Lz78.bits_for 4);
  Alcotest.(check int) "5" 3 (Lz78.bits_for 5);
  Alcotest.(check int) "1024" 10 (Lz78.bits_for 1024);
  Alcotest.(check int) "1025" 11 (Lz78.bits_for 1025)

let test_empty_input () =
  Alcotest.(check int) "no phrases" 0 (Lz78.phrase_count [||]);
  Alcotest.(check int) "no bits" 0 (Lz78.compressed_bits [||])

let test_constant_input_sublinear () =
  (* A constant sequence has O(sqrt m) phrases. *)
  let data = Array.make 10_000 7 in
  let phrases = Lz78.phrase_count data in
  Alcotest.(check bool)
    (Printf.sprintf "phrases %d ~ sqrt(10000)" phrases)
    true
    (phrases < 300)

let test_random_input_near_linear () =
  let rng = Simkit.Rng.create 3 in
  let data = Array.init 10_000 (fun _ -> Simkit.Rng.int rng 1_000_000) in
  let phrases = Lz78.phrase_count data in
  Alcotest.(check bool) "almost one phrase per symbol" true (phrases > 9_000)

let test_structured_compresses_better_than_noise () =
  let rng = Simkit.Rng.create 5 in
  let alphabet = 4096 in
  let noise = Array.init 20_000 (fun _ -> Simkit.Rng.int rng alphabet) in
  let structured = Array.init 20_000 (fun i -> (i / 100) mod 7) in
  Alcotest.(check bool) "structure wins" true
    (Lz78.compressed_bits ~alphabet structured
    < Lz78.compressed_bits ~alphabet noise / 3)

let test_phrase_decomposition_known () =
  (* Classic example: a b ab ba aba -> 5 phrases for "ababbaaba"?  Use
     the canonical "aaaaaa" = a, aa, aaa -> 3 phrases. *)
  Alcotest.(check int) "aaaaaa" 3 (Lz78.phrase_count [| 0; 0; 0; 0; 0; 0 |]);
  Alcotest.(check int) "abab" 3 (Lz78.phrase_count [| 0; 1; 0; 1 |])

let test_complexity_uniform_near_one () =
  let t = Workloads.Uniform.generate ~n:128 ~m:10_000 ~seed:3 () in
  let r = Complexity.measure ~seed:7 t in
  Alcotest.(check bool) "T near 1" true (r.Complexity.temporal > 0.95);
  Alcotest.(check bool) "NT near 1" true (r.Complexity.non_temporal > 0.9);
  Alcotest.(check bool) "Psi near 1" true (r.Complexity.complexity > 0.85)

let test_complexity_bursty_low_temporal () =
  let t = Workloads.Bursty.generate ~n:1024 ~m:10_000 ~seed:3 () in
  let r = Complexity.measure ~seed:7 t in
  Alcotest.(check bool)
    (Printf.sprintf "T low (%.3f)" r.Complexity.temporal)
    true (r.Complexity.temporal < 0.7);
  Alcotest.(check bool)
    (Printf.sprintf "NT higher than T (%.3f)" r.Complexity.non_temporal)
    true
    (r.Complexity.non_temporal > r.Complexity.temporal)

let test_complexity_skewed_low_nontemporal () =
  let t = Workloads.Skewed.generate ~n:1024 ~m:10_000 ~seed:3 () in
  let r = Complexity.measure ~seed:7 t in
  Alcotest.(check bool)
    (Printf.sprintf "NT low (%.3f)" r.Complexity.non_temporal)
    true (r.Complexity.non_temporal < 0.9);
  Alcotest.(check bool)
    (Printf.sprintf "T near 1 (%.3f)" r.Complexity.temporal)
    true (r.Complexity.temporal > 0.9)

let test_complexity_identity () =
  (* Psi = T * NT by construction. *)
  let t = Workloads.Hpc.generate ~side:8 ~m:5_000 ~seed:3 () in
  let r = Complexity.measure ~seed:7 t in
  Alcotest.(check (float 1e-9)) "product identity"
    (r.Complexity.temporal *. r.Complexity.non_temporal)
    r.Complexity.complexity

let test_complexity_ratios_in_unit_interval () =
  List.iter
    (fun key ->
      let e = Workloads.Catalog.find key in
      let t = e.Workloads.Catalog.generate Workloads.Catalog.Default ~seed:5 in
      let t = Trace.sub t (min 5_000 (Trace.length t)) in
      let r = Complexity.measure ~seed:9 t in
      let ok v = v >= 0.0 && v <= 1.0 in
      if
        not
          (ok r.Complexity.temporal && ok r.Complexity.non_temporal
         && ok r.Complexity.complexity)
      then Alcotest.failf "%s ratios out of range" key)
    Workloads.Catalog.keys

let test_encode_symbols () =
  let t = Trace.make ~name:"x" ~n:4 [| (0, 1); (3, 2) |] in
  Alcotest.(check bool) "pair ids" true (Complexity.encode t = [| 1; 14 |])

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"compressed size monotone-ish in length" ~count:50
         Gen.(pair (int_range 10 2000) (int_bound 99999))
         (fun (m, seed) ->
           let rng = Simkit.Rng.create seed in
           let data = Array.init m (fun _ -> Simkit.Rng.int rng 64) in
           let half = Array.sub data 0 (m / 2) in
           Lz78.compressed_bits ~alphabet:64 half
           <= Lz78.compressed_bits ~alphabet:64 data));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"phrase count bounded by length" ~count:100
         Gen.(list_size (int_range 0 500) (int_bound 10))
         (fun l ->
           let data = Array.of_list l in
           Lz78.phrase_count data <= Array.length data));
  ]

let () =
  Alcotest.run "tracekit"
    [
      ( "lz78",
        [
          Alcotest.test_case "bits_for" `Quick test_bits_for;
          Alcotest.test_case "empty" `Quick test_empty_input;
          Alcotest.test_case "constant sublinear" `Quick test_constant_input_sublinear;
          Alcotest.test_case "random near linear" `Quick test_random_input_near_linear;
          Alcotest.test_case "structure beats noise" `Quick
            test_structured_compresses_better_than_noise;
          Alcotest.test_case "known decompositions" `Quick test_phrase_decomposition_known;
        ] );
      ( "complexity",
        [
          Alcotest.test_case "uniform near one" `Quick test_complexity_uniform_near_one;
          Alcotest.test_case "bursty low T" `Quick test_complexity_bursty_low_temporal;
          Alcotest.test_case "skewed low NT" `Quick test_complexity_skewed_low_nontemporal;
          Alcotest.test_case "product identity" `Quick test_complexity_identity;
          Alcotest.test_case "unit interval" `Quick test_complexity_ratios_in_unit_interval;
          Alcotest.test_case "encode" `Quick test_encode_symbols;
        ] );
      ("properties", qcheck_tests);
    ]
