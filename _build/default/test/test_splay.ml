(* Classic splay primitives used by the SplayNet/DiSplayNet baselines. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module Splay = Baselines.Splay

let test_splay_to_root () =
  let rng = Simkit.Rng.create 3 in
  for _ = 1 to 20 do
    let n = 2 + Simkit.Rng.int rng 100 in
    let t = Build.random rng n in
    let v = Simkit.Rng.int rng n in
    let rotations = Splay.splay_to_root t v in
    Alcotest.(check int) "is root" v (T.root t);
    Alcotest.(check bool) "rotation count sane" true (rotations <= 2 * n);
    Bstnet.Check.assert_ok (Bstnet.Check.structure t);
    Bstnet.Check.assert_ok (Bstnet.Check.bst_order t);
    Bstnet.Check.assert_ok (Bstnet.Check.interval_labels t)
  done

let test_splay_halves_depth () =
  (* Splaying the deep end of a chain roughly halves the depths along
     the path — the property move-to-root lacks. *)
  let t = Build.path 64 in
  ignore (Splay.splay_to_root t 63);
  Alcotest.(check int) "splayed to root" 63 (T.root t);
  let max_depth = ref 0 in
  T.iter_subtree t (T.root t) (fun v -> max_depth := max !max_depth (T.depth t v));
  Alcotest.(check bool)
    (Printf.sprintf "depth %d halved vs 63" !max_depth)
    true (!max_depth <= 33)

let test_splay_step_guard () =
  let t = Build.path 8 in
  (* Guard at node 2: splaying 7 stops when its parent is 2. *)
  let guard = 2 in
  let rec go budget =
    if budget = 0 then Alcotest.fail "no convergence";
    let r = Splay.splay_step t 7 ~guard in
    if not r.Splay.done_ then go (budget - 1)
  in
  go 20;
  Alcotest.(check int) "parent is guard" guard (T.parent t 7);
  Bstnet.Check.assert_ok (Bstnet.Check.bst_order t)

let test_splay_until_ancestor () =
  let rng = Simkit.Rng.create 17 in
  for _ = 1 to 30 do
    let n = 3 + Simkit.Rng.int rng 80 in
    let t = Build.random rng n in
    let u = Simkit.Rng.int rng n and v = Simkit.Rng.int rng n in
    if u <> v then begin
      ignore (Splay.splay_until_ancestor_of t u ~target:v);
      Alcotest.(check bool) "u is ancestor of v" true (T.in_subtree t ~root:u v);
      Bstnet.Check.assert_ok (Bstnet.Check.bst_order t)
    end
  done

let test_splay_until_child_of () =
  let rng = Simkit.Rng.create 19 in
  for _ = 1 to 30 do
    let n = 3 + Simkit.Rng.int rng 80 in
    let t = Build.random rng n in
    let u = Simkit.Rng.int rng n and v = Simkit.Rng.int rng n in
    if u <> v then begin
      ignore (Splay.splay_until_ancestor_of t u ~target:v);
      ignore (Splay.splay_until_child_of t v ~ancestor:u);
      Alcotest.(check int) "v child of u" u (T.parent t v);
      Bstnet.Check.assert_ok (Bstnet.Check.bst_order t)
    end
  done

let test_zig_zig_rotates_parent_first () =
  (* Chain 0 <- 1 <- 2 (2 root, left children): one zig-zig splay step
     of 0 must produce the classic shape, not the naive move-to-root
     result.  After rotating p then x: 0 root, 1 its right child, 2
     right child of 1. *)
  let t = Build.of_insertions 3 [ 2; 1; 0 ] in
  let r = Splay.splay_step t 0 ~guard:T.nil in
  Alcotest.(check int) "two rotations" 2 r.Splay.rotations;
  Alcotest.(check int) "new root" 0 (T.root t);
  Alcotest.(check int) "1 under 0" 0 (T.parent t 1);
  Alcotest.(check int) "2 under 1" 1 (T.parent t 2)

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"splay_to_root keeps invariants" ~count:100
         Gen.(triple (int_range 2 64) (int_bound 999) (int_bound 99999))
         (fun (n, pick, seed) ->
           let rng = Simkit.Rng.create seed in
           let t = Build.random rng n in
           ignore (Splay.splay_to_root t (pick mod n));
           T.root t = pick mod n && Result.is_ok (Bstnet.Check.all t)));
  ]

let () =
  Alcotest.run "splay"
    [
      ( "primitives",
        [
          Alcotest.test_case "to root" `Quick test_splay_to_root;
          Alcotest.test_case "halving" `Quick test_splay_halves_depth;
          Alcotest.test_case "guarded step" `Quick test_splay_step_guard;
          Alcotest.test_case "until ancestor" `Quick test_splay_until_ancestor;
          Alcotest.test_case "until child" `Quick test_splay_until_child_of;
          Alcotest.test_case "zig-zig order" `Quick test_zig_zig_rotates_parent_first;
        ] );
      ("properties", qcheck_tests);
    ]
