(* SplayNet, DiSplayNet and the static baselines. *)

module T = Bstnet.Topology
module Build = Bstnet.Build

let mk_trace reqs = Array.of_list (List.mapi (fun i (s, d) -> (i, s, d)) reqs)

(* -------------------- SplayNet -------------------- *)

let test_sn_delivers_and_stays_valid () =
  let rng = Simkit.Rng.create 3 in
  let n = 63 in
  let m = 500 in
  let t = Build.balanced n in
  let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let stats = Baselines.Splaynet.run t trace in
  Alcotest.(check int) "delivered" m stats.Cbnet.Run_stats.messages;
  let non_self =
    Array.fold_left (fun acc (_, s, d) -> if s = d then acc else acc + 1) 0 trace
  in
  Alcotest.(check int) "one hop per non-self message" (m + non_self)
    stats.Cbnet.Run_stats.routing_cost;
  Bstnet.Check.assert_ok (Bstnet.Check.structure t);
  Bstnet.Check.assert_ok (Bstnet.Check.bst_order t)

let test_sn_repeat_pair_cheap () =
  (* After the first request the endpoints are adjacent; later requests
     splay very little. *)
  let t = Build.balanced 63 in
  let trace = mk_trace (List.init 200 (fun _ -> (5, 40))) in
  let stats = Baselines.Splaynet.run t trace in
  Alcotest.(check bool)
    (Printf.sprintf "rotations %d stay small" stats.Cbnet.Run_stats.rotations)
    true
    (stats.Cbnet.Run_stats.rotations < 30);
  Alcotest.(check int) "adjacent now" 5 (T.parent t 40)

let test_sn_rotation_dominated_on_uniform () =
  let rng = Simkit.Rng.create 5 in
  let n = 127 in
  let m = 2000 in
  let t = Build.balanced n in
  let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let stats = Baselines.Splaynet.run t trace in
  Alcotest.(check bool) "rotations >> routing" true
    (stats.Cbnet.Run_stats.rotations > stats.Cbnet.Run_stats.routing_cost)

let test_sn_self_message () =
  let t = Build.balanced 7 in
  let stats = Baselines.Splaynet.run t [| (0, 3, 3) |] in
  Alcotest.(check int) "no rotations" 0 stats.Cbnet.Run_stats.rotations;
  Alcotest.(check int) "routing 1" 1 stats.Cbnet.Run_stats.routing_cost

(* -------------------- DiSplayNet -------------------- *)

let test_dsn_delivers_and_stays_valid () =
  let rng = Simkit.Rng.create 7 in
  let n = 63 in
  let m = 800 in
  let t = Build.balanced n in
  let trace = Array.init m (fun i -> (i / 4, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let stats = Baselines.Displaynet.run ~max_rounds:2_000_000 t trace in
  Alcotest.(check int) "delivered" m stats.Cbnet.Run_stats.messages;
  Bstnet.Check.assert_ok (Bstnet.Check.structure t);
  Bstnet.Check.assert_ok (Bstnet.Check.bst_order t);
  Bstnet.Check.assert_ok (Bstnet.Check.interval_labels t)

let test_dsn_endpoint_locking_serializes_shared_endpoints () =
  (* All requests share one endpoint: they must serialize, and still
     all deliver. *)
  let n = 31 in
  let m = 300 in
  let rng = Simkit.Rng.create 11 in
  let t = Build.balanced n in
  let trace = Array.init m (fun _ -> (0, 5, 6 + Simkit.Rng.int rng (n - 6))) in
  let stats = Baselines.Displaynet.run ~max_rounds:2_000_000 t trace in
  Alcotest.(check int) "delivered" m stats.Cbnet.Run_stats.messages;
  Alcotest.(check bool) "waiting observed" true (stats.Cbnet.Run_stats.pauses > 0)

let test_dsn_hot_pair_livelock_regression () =
  (* Regression for the path-protection deadlock: a saturated stream of
     requests between two fixed groups must drain. *)
  let n = 63 in
  let rng = Simkit.Rng.create 99 in
  let m = 2000 in
  let trace =
    Array.init m (fun i ->
        let s = Simkit.Rng.int rng 8 and d = 8 + Simkit.Rng.int rng 8 in
        (i, s, d))
  in
  let t = Build.balanced n in
  let stats = Baselines.Displaynet.run ~max_rounds:2_000_000 t trace in
  Alcotest.(check int) "drained" m stats.Cbnet.Run_stats.messages

let test_dsn_concurrent_beats_sn_makespan () =
  let rng = Simkit.Rng.create 13 in
  let n = 127 in
  let m = 2000 in
  let reqs = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let t1 = Build.balanced n in
  let sn = Baselines.Splaynet.run t1 reqs in
  let t2 = Build.balanced n in
  let dsn = Baselines.Displaynet.run ~max_rounds:5_000_000 t2 reqs in
  Alcotest.(check bool)
    (Printf.sprintf "DSN %d < SN %d" dsn.Cbnet.Run_stats.makespan sn.Cbnet.Run_stats.makespan)
    true
    (dsn.Cbnet.Run_stats.makespan < sn.Cbnet.Run_stats.makespan)

let test_dsn_self_message () =
  let t = Build.balanced 7 in
  let stats = Baselines.Displaynet.run t [| (0, 3, 3) |] in
  Alcotest.(check int) "delivered" 1 stats.Cbnet.Run_stats.messages;
  Alcotest.(check int) "no rotations" 0 stats.Cbnet.Run_stats.rotations

(* -------------------- Static baselines -------------------- *)

let test_static_run_costs () =
  let t = Build.balanced 15 in
  let stats = Baselines.Static.run t (mk_trace [ (0, 14); (7, 7); (0, 1) ]) in
  (* distance(0,14) = 6, self = 0, distance(0,1) = 1, plus +1 each. *)
  Alcotest.(check int) "routing" (6 + 0 + 1 + 3) stats.Cbnet.Run_stats.routing_cost;
  Alcotest.(check int) "no rotations" 0 stats.Cbnet.Run_stats.rotations

let test_demand_counts () =
  let d = Baselines.Demand.of_trace ~n:8 (mk_trace [ (0, 1); (1, 0); (0, 1); (3, 3) ]) in
  Alcotest.(check int) "pair weight symmetric" 3 (Baselines.Demand.pair_weight d 0 1);
  Alcotest.(check int) "pair weight symmetric'" 3 (Baselines.Demand.pair_weight d 1 0);
  Alcotest.(check int) "self excluded" 0 (Baselines.Demand.pair_weight d 3 3);
  Alcotest.(check int) "messages" 4 (Baselines.Demand.messages d);
  Alcotest.(check int) "self messages" 1 (Baselines.Demand.self_messages d);
  Alcotest.(check int) "degree" 3 (Baselines.Demand.degree d 0)

let test_demand_cut_cost () =
  let d = Baselines.Demand.of_trace ~n:8 (mk_trace [ (0, 5); (1, 2); (6, 7) ]) in
  (* Interval [0..3]: one request, (0,5), crosses it. *)
  Alcotest.(check int) "cut [0..3]" 1 (Baselines.Demand.cut_cost d ~lo:0 ~hi:3);
  Alcotest.(check int) "cut all" 0 (Baselines.Demand.cut_cost d ~lo:0 ~hi:7);
  Alcotest.(check int) "cut empty" 0 (Baselines.Demand.cut_cost d ~lo:5 ~hi:4)

let test_demand_routing_cost_matches_brute_force () =
  let rng = Simkit.Rng.create 17 in
  for _ = 1 to 10 do
    let n = 4 + Simkit.Rng.int rng 20 in
    let m = 100 in
    let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
    let d = Baselines.Demand.of_trace ~n trace in
    let t = Build.random rng n in
    let brute =
      Array.fold_left
        (fun acc (_, s, dd) -> if s = dd then acc else acc + T.distance t s dd)
        0 trace
    in
    Alcotest.(check int) "matches" brute (Baselines.Demand.routing_cost d t)
  done

let test_entropies () =
  let d = Baselines.Demand.of_trace ~n:4 (mk_trace [ (0, 1); (0, 2); (0, 3); (0, 1) ]) in
  Alcotest.(check (float 1e-9)) "source entropy zero" 0.0
    (Baselines.Demand.source_entropy d);
  Alcotest.(check bool) "dest entropy positive" true
    (Baselines.Demand.destination_entropy d > 1.0)

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"SN and DSN keep BST order on random traces" ~count:30
         Gen.(triple (int_range 2 48) (int_range 1 200) (int_bound 99999))
         (fun (n, m, seed) ->
           let rng = Simkit.Rng.create seed in
           let trace =
             Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n))
           in
           let t1 = Build.balanced n in
           ignore (Baselines.Splaynet.run t1 trace);
           let t2 = Build.balanced n in
           ignore (Baselines.Displaynet.run ~max_rounds:2_000_000 t2 trace);
           Result.is_ok (Bstnet.Check.bst_order t1)
           && Result.is_ok (Bstnet.Check.structure t1)
           && Result.is_ok (Bstnet.Check.bst_order t2)
           && Result.is_ok (Bstnet.Check.structure t2)));
  ]

let () =
  Alcotest.run "baselines"
    [
      ( "splaynet",
        [
          Alcotest.test_case "delivers" `Quick test_sn_delivers_and_stays_valid;
          Alcotest.test_case "repeat pair cheap" `Quick test_sn_repeat_pair_cheap;
          Alcotest.test_case "rotation dominated" `Quick
            test_sn_rotation_dominated_on_uniform;
          Alcotest.test_case "self message" `Quick test_sn_self_message;
        ] );
      ( "displaynet",
        [
          Alcotest.test_case "delivers" `Quick test_dsn_delivers_and_stays_valid;
          Alcotest.test_case "endpoint locking" `Quick
            test_dsn_endpoint_locking_serializes_shared_endpoints;
          Alcotest.test_case "livelock regression" `Quick
            test_dsn_hot_pair_livelock_regression;
          Alcotest.test_case "beats SN makespan" `Quick test_dsn_concurrent_beats_sn_makespan;
          Alcotest.test_case "self message" `Quick test_dsn_self_message;
        ] );
      ( "static",
        [
          Alcotest.test_case "run costs" `Quick test_static_run_costs;
          Alcotest.test_case "demand counts" `Quick test_demand_counts;
          Alcotest.test_case "cut cost" `Quick test_demand_cut_cost;
          Alcotest.test_case "routing cost brute force" `Quick
            test_demand_routing_cost_matches_brute_force;
          Alcotest.test_case "entropies" `Quick test_entropies;
        ] );
      ("properties", qcheck_tests);
    ]
