(* The experiment harness: algorithm roster, matrix runs, counter
   reset, and the qualitative claims the figures assert. *)

module Algo = Runtime.Algo
module Experiment = Runtime.Experiment
module Report = Runtime.Report

let small_trace seed =
  let t = Workloads.Uniform.generate ~n:31 ~m:400 ~seed () in
  Workloads.Trace.with_poisson_births (Simkit.Rng.create (seed + 1)) ~lambda:0.05 t

let test_algo_names_roundtrip () =
  List.iter
    (fun a -> Alcotest.(check bool) "roundtrip" true (Algo.of_name (Algo.name a) = a))
    Algo.all;
  Alcotest.(check bool) "alias" true (Algo.of_name "cbnet" = Algo.CBN);
  Alcotest.check_raises "unknown"
    (Invalid_argument "Algo.of_name: unknown algorithm \"xx\"") (fun () ->
      ignore (Algo.of_name "xx"))

let test_every_algorithm_runs () =
  let trace = small_trace 3 in
  List.iter
    (fun a ->
      let stats = Algo.run a trace in
      Alcotest.(check int) (Algo.name a ^ " messages") 400
        stats.Cbnet.Run_stats.messages;
      if Algo.is_static a then
        Alcotest.(check int) (Algo.name a ^ " static no rotations") 0
          stats.Cbnet.Run_stats.rotations)
    Algo.all

let test_static_have_no_time_model () =
  let trace = small_trace 5 in
  List.iter
    (fun a ->
      let stats = Algo.run a trace in
      Alcotest.(check int) "zero makespan" 0 stats.Cbnet.Run_stats.makespan)
    [ Algo.BT; Algo.OPT ]

let test_opt_beats_bt_on_skewed () =
  let t = Workloads.Skewed.generate ~n:64 ~m:4000 ~alpha:1.4 ~support:200 ~seed:11 () in
  let bt = Algo.run Algo.BT t in
  let opt = Algo.run Algo.OPT t in
  Alcotest.(check bool) "OPT < BT" true (opt.Cbnet.Run_stats.work < bt.Cbnet.Run_stats.work)

let test_cbn_routing_dominated_sn_rotation_dominated () =
  let t = Workloads.Skewed.generate ~n:64 ~m:4000 ~alpha:1.4 ~support:200 ~seed:13 () in
  let cbn = Algo.run Algo.CBN t in
  let sn = Algo.run Algo.SN t in
  Alcotest.(check bool) "CBN mostly routing" true
    (float_of_int cbn.Cbnet.Run_stats.rotations
    < 0.1 *. float_of_int cbn.Cbnet.Run_stats.routing_cost);
  Alcotest.(check bool) "SN mostly rotations" true
    (sn.Cbnet.Run_stats.rotations > sn.Cbnet.Run_stats.routing_cost)

let test_run_cell_aggregates () =
  let cell =
    Experiment.run_cell ~seeds:3 ~workload:"datastructure" ~algo:Algo.SCBN ()
  in
  Alcotest.(check int) "three seeds" 3 cell.Experiment.seeds;
  Alcotest.(check int) "stats hold all runs" 3 cell.Experiment.work.Simkit.Stats.n;
  Alcotest.(check bool) "positive work" true (cell.Experiment.work.Simkit.Stats.mean > 0.0)

let test_run_matrix_shape () =
  let cells =
    Experiment.run_matrix ~seeds:1 ~workloads:[ "datastructure"; "uniform" ]
      ~algos:[ Algo.BT; Algo.SCBN ] ()
  in
  Alcotest.(check int) "2x2 cells" 4 (List.length cells)

let test_trace_for_deterministic () =
  let a = Experiment.trace_for ~workload:"projector" ~seed:9 () in
  let b = Experiment.trace_for ~workload:"projector" ~seed:9 () in
  Alcotest.(check bool) "same" true
    (a.Workloads.Trace.requests = b.Workloads.Trace.requests
    && a.Workloads.Trace.births = b.Workloads.Trace.births)

let test_counter_reset_decay () =
  let t = Bstnet.Build.balanced 15 in
  ignore (Cbnet.Sequential.run t (Array.init 100 (fun i -> (i, 3, 12))));
  let before = Bstnet.Topology.total_weight t in
  Cbnet.Counter_reset.decay t ~factor:0.5;
  let after = Bstnet.Topology.total_weight t in
  Alcotest.(check bool) "halved-ish" true (after <= (before / 2) + 15);
  Bstnet.Check.assert_ok (Bstnet.Check.weights t)

let test_counter_reset_adapts_to_drift () =
  let trace = Workloads.Drifting.generate ~n:128 ~m:8000 ~support:128 ~seed:21 () in
  let runs = Workloads.Trace.to_runs trace in
  let plain = Cbnet.Sequential.run (Bstnet.Build.balanced 128) runs in
  let reset =
    Cbnet.Counter_reset.run_sequential ~every:1000 ~factor:0.25
      (Bstnet.Build.balanced 128) runs
  in
  (* Resetting must not be catastrophically worse; on drifting demand it
     should reduce routing noticeably. *)
  Alcotest.(check bool)
    (Printf.sprintf "reset routing %d <= plain %d * 1.05"
       reset.Cbnet.Run_stats.routing_cost plain.Cbnet.Run_stats.routing_cost)
    true
    (float_of_int reset.Cbnet.Run_stats.routing_cost
    <= 1.05 *. float_of_int plain.Cbnet.Run_stats.routing_cost)

let test_counter_reset_concurrent () =
  let trace = Workloads.Drifting.generate ~n:128 ~m:6000 ~support:128 ~seed:23 () in
  let runs = Workloads.Trace.to_runs trace in
  let t = Bstnet.Build.balanced 128 in
  let stats =
    Cbnet.Counter_reset.run_concurrent ~every_rounds:2000 ~factor:0.25 t runs
  in
  Alcotest.(check int) "all delivered" 6000 stats.Cbnet.Run_stats.messages;
  Bstnet.Check.assert_ok (Bstnet.Check.structure t);
  Bstnet.Check.assert_ok (Bstnet.Check.bst_order t);
  Bstnet.Check.assert_ok (Bstnet.Check.interval_labels t)

let test_report_table_renders () =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Report.table ~title:"t" ~headers:[ "a"; "bb" ] [ [ "1"; "2" ]; [ "333"; "4" ] ] fmt;
  Format.pp_print_flush fmt ();
  let s = Buffer.contents buf in
  Alcotest.(check bool) "has title" true (String.length s > 0 && String.sub s 0 2 = "==");
  Alcotest.(check bool) "contains row" true
    (String.split_on_char '\n' s |> List.exists (fun l -> l = "333  4"))

let test_report_bars () =
  Alcotest.(check string) "full" "##########" (Report.bar ~value:1.0 ~max:1.0 ~width:10);
  Alcotest.(check string) "half" "#####" (Report.bar ~value:0.5 ~max:1.0 ~width:10);
  Alcotest.(check string) "stacked" "rrXX"
    (Report.stacked_bar ~parts:[ ('r', 0.2); ('X', 0.2) ] ~max:1.0 ~width:10)

let test_figures_smoke () =
  (* The figure drivers must run end-to-end on a tiny configuration. *)
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let options =
    { Runtime.Figures.default_options with Runtime.Figures.seeds = 1 }
  in
  Runtime.Figures.thm1 ~options fmt;
  Runtime.Figures.ablation_reset ~options fmt;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "output produced" true (Buffer.length buf > 200)

let () =
  Alcotest.run "runtime"
    [
      ( "algo",
        [
          Alcotest.test_case "names" `Quick test_algo_names_roundtrip;
          Alcotest.test_case "every algorithm runs" `Quick test_every_algorithm_runs;
          Alcotest.test_case "static time model" `Quick test_static_have_no_time_model;
        ] );
      ( "claims",
        [
          Alcotest.test_case "OPT beats BT" `Quick test_opt_beats_bt_on_skewed;
          Alcotest.test_case "work composition" `Quick
            test_cbn_routing_dominated_sn_rotation_dominated;
        ] );
      ( "experiment",
        [
          Alcotest.test_case "run_cell" `Quick test_run_cell_aggregates;
          Alcotest.test_case "run_matrix" `Quick test_run_matrix_shape;
          Alcotest.test_case "trace_for deterministic" `Quick test_trace_for_deterministic;
        ] );
      ( "counter-reset",
        [
          Alcotest.test_case "decay" `Quick test_counter_reset_decay;
          Alcotest.test_case "adapts to drift" `Quick test_counter_reset_adapts_to_drift;
          Alcotest.test_case "concurrent decay" `Quick test_counter_reset_concurrent;
        ] );
      ( "report",
        [
          Alcotest.test_case "table" `Quick test_report_table_renders;
          Alcotest.test_case "bars" `Quick test_report_bars;
          Alcotest.test_case "figures smoke" `Slow test_figures_smoke;
        ] );
    ]
