(* Concurrent CBNet: liveness, conflict accounting, consistency with
   the sequential semantics, and concurrency benefits. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module Conc = Cbnet.Concurrent
module Seq = Cbnet.Sequential


let test_single_message_matches_sequential () =
  let trace = [| (0, 0, 14) |] in
  let ts = Build.balanced 15 in
  let ss = Seq.run ts trace in
  let tc = Build.balanced 15 in
  let sc = Conc.run tc trace in
  Alcotest.(check int) "same hops" ss.Cbnet.Run_stats.routing_hops
    sc.Cbnet.Run_stats.routing_hops;
  Alcotest.(check int) "same rotations" ss.Cbnet.Run_stats.rotations
    sc.Cbnet.Run_stats.rotations;
  Alcotest.(check int) "same root weight" (T.total_weight ts) (T.total_weight tc)

let test_widely_spaced_trace_matches_sequential_work () =
  (* When arrivals never overlap, the concurrent execution serves one
     message at a time and must do exactly the sequential work. *)
  let rng = Simkit.Rng.create 21 in
  let n = 31 in
  let reqs = Array.init 200 (fun _ -> (Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let spaced = Array.mapi (fun i (s, d) -> (i * 1000, s, d)) reqs in
  let ts = Build.balanced n in
  let ss = Seq.run ts spaced in
  let tc = Build.balanced n in
  let sc = Conc.run tc spaced in
  Alcotest.(check int) "same routing" ss.Cbnet.Run_stats.routing_cost
    sc.Cbnet.Run_stats.routing_cost;
  Alcotest.(check int) "same rotations" ss.Cbnet.Run_stats.rotations
    sc.Cbnet.Run_stats.rotations;
  (* The only possible conflicts are between a message and its own
     weight update near the LCA — they cost rounds, never work. *)
  Alcotest.(check int) "no bypasses" 0 sc.Cbnet.Run_stats.bypasses

let test_all_delivered_under_saturation () =
  let rng = Simkit.Rng.create 31 in
  let n = 63 in
  let m = 3000 in
  let trace = Array.init m (fun i -> (i / 10, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let t = Build.balanced n in
  let stats = Conc.run t trace in
  Alcotest.(check int) "all delivered" m stats.Cbnet.Run_stats.messages;
  Alcotest.(check int) "all updates emitted" m stats.Cbnet.Run_stats.update_messages;
  Bstnet.Check.assert_ok (Bstnet.Check.structure t);
  Bstnet.Check.assert_ok (Bstnet.Check.bst_order t);
  Bstnet.Check.assert_ok (Bstnet.Check.interval_labels t)

let test_root_weight_drift_bounded () =
  (* Concurrency lets rotations interleave with in-flight increments;
     the realized W(root) may drift from 2m by at most a small multiple
     of the conflicts+rotations that actually happened. *)
  let rng = Simkit.Rng.create 37 in
  for _ = 1 to 8 do
    let n = 15 + Simkit.Rng.int rng 60 in
    let m = 200 + Simkit.Rng.int rng 2000 in
    let t = Build.balanced n in
    let trace = Array.init m (fun i -> (i / 5, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
    let stats = Conc.run t trace in
    let drift = abs (T.total_weight t - (2 * m)) in
    let budget = 2 * (stats.Cbnet.Run_stats.rotations + stats.Cbnet.Run_stats.bypasses + 1) in
    if drift > budget then
      Alcotest.failf "drift %d exceeds budget %d (rot=%d byp=%d)" drift budget
        stats.Cbnet.Run_stats.rotations stats.Cbnet.Run_stats.bypasses
  done

let test_concurrent_beats_sequential_makespan () =
  let rng = Simkit.Rng.create 41 in
  let n = 127 in
  let m = 4000 in
  let reqs = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let ts = Build.balanced n in
  let ss = Seq.run ts reqs in
  let tc = Build.balanced n in
  let sc = Conc.run tc reqs in
  Alcotest.(check bool)
    (Printf.sprintf "concurrent %d < sequential %d" sc.Cbnet.Run_stats.makespan
       ss.Cbnet.Run_stats.makespan)
    true
    (sc.Cbnet.Run_stats.makespan < ss.Cbnet.Run_stats.makespan)

let test_conflicts_happen_and_are_classified () =
  let rng = Simkit.Rng.create 43 in
  let n = 31 in
  (* Everyone talks to everyone through the root region: conflicts are
     unavoidable when all messages are born together. *)
  let m = 500 in
  let trace = Array.init m (fun _ -> (0, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let t = Build.balanced n in
  let stats = Conc.run t trace in
  Alcotest.(check bool) "pauses observed" true (stats.Cbnet.Run_stats.pauses > 0);
  Alcotest.(check int) "delivered" m stats.Cbnet.Run_stats.messages

let test_window_admission_limits_in_flight () =
  let rng = Simkit.Rng.create 47 in
  let n = 31 in
  let m = 1000 in
  let trace = Array.init m (fun _ -> (0, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let t1 = Build.balanced n in
  let s1 = Conc.run ~window:1 t1 trace in
  let t2 = Build.balanced n in
  let s2 = Conc.run ~window:256 t2 trace in
  (* A window of one serializes the data plane (residual conflicts can
     only involve trailing weight updates); a wide window must finish
     at least as fast. *)
  Alcotest.(check bool) "wide window is faster" true
    (s2.Cbnet.Run_stats.makespan <= s1.Cbnet.Run_stats.makespan);
  Alcotest.(check bool) "narrow window has fewer conflicts" true
    (s1.Cbnet.Run_stats.pauses <= s2.Cbnet.Run_stats.pauses)

let test_priority_liveness_stress () =
  (* Hammer a tiny tree with identical hot pairs — the worst case for
     cluster conflicts — and require termination within the round
     budget. *)
  let n = 7 in
  let m = 2000 in
  let trace = Array.init m (fun i -> (i / 100, (if i mod 2 = 0 then 0 else 6), if i mod 2 = 0 then 6 else 0)) in
  let t = Build.balanced n in
  let stats = Conc.run ~max_rounds:1_000_000 t trace in
  Alcotest.(check int) "all delivered" m stats.Cbnet.Run_stats.messages

let test_makespan_not_smaller_than_optimal_floor () =
  (* Sanity: m messages, each needing >= 1 round. *)
  let rng = Simkit.Rng.create 53 in
  let n = 15 in
  let m = 300 in
  let trace = Array.init m (fun _ -> (0, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let t = Build.balanced n in
  let stats = Conc.run t trace in
  Alcotest.(check bool) "nontrivial makespan" true (stats.Cbnet.Run_stats.makespan >= 1)

let test_deterministic_replay () =
  let rng = Simkit.Rng.create 59 in
  let n = 63 in
  let m = 1000 in
  let trace = Array.init m (fun i -> (i / 4, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let t1 = Build.balanced n in
  let s1 = Conc.run t1 trace in
  let t2 = Build.balanced n in
  let s2 = Conc.run t2 trace in
  Alcotest.(check int) "same makespan" s1.Cbnet.Run_stats.makespan s2.Cbnet.Run_stats.makespan;
  Alcotest.(check int) "same rotations" s1.Cbnet.Run_stats.rotations s2.Cbnet.Run_stats.rotations;
  Alcotest.(check int) "same hops" s1.Cbnet.Run_stats.routing_hops s2.Cbnet.Run_stats.routing_hops;
  (* Topologies must be identical. *)
  for v = 0 to n - 1 do
    Alcotest.(check int) "same parent" (T.parent t1 v) (T.parent t2 v)
  done

let test_skewed_hot_pair_concurrent () =
  let t = Build.balanced 31 in
  let m = 3000 in
  let trace = Array.init m (fun i -> (i, (if i mod 2 = 0 then 3 else 27), if i mod 2 = 0 then 27 else 3)) in
  let stats = Conc.run t trace in
  Alcotest.(check bool) "hot pair pulled together" true (T.distance t 3 27 <= 4);
  Alcotest.(check bool) "few rotations" true (stats.Cbnet.Run_stats.rotations < 40)

let test_disjoint_clusters_progress_same_round () =
  (* The Fig. 1 scenario: messages working in disjoint regions of the
     tree all make progress in the same round — no false conflicts. *)
  let t = Build.balanced 31 in
  (* Three messages in the three disjoint subtrees under depth 2. *)
  let trace = [| (0, 0, 6); (0, 8, 14); (0, 16, 22) |] in
  let sched, finalize = Conc.scheduler t trace in
  sched.Simkit.Engine.tick 0;
  sched.Simkit.Engine.tick 1;
  (* After two rounds each message must have moved: their sources and
     climbed-through nodes carry weight deposits in all three regions. *)
  List.iter
    (fun v ->
      Alcotest.(check bool)
        (Printf.sprintf "region of %d active" v)
        true
        (T.weight t v > 0))
    [ 0; 8; 16 ];
  let rec drain r =
    if not (sched.Simkit.Engine.is_done ()) then begin
      sched.Simkit.Engine.tick r;
      drain (r + 1)
    end
    else r
  in
  let rounds = drain 2 in
  let stats = finalize rounds in
  Alcotest.(check int) "all delivered" 3 stats.Cbnet.Run_stats.messages;
  (* The data messages never conflict (disjoint clusters); only their
     root-bound weight updates can briefly contend near the root. *)
  Alcotest.(check int) "no bypasses" 0 stats.Cbnet.Run_stats.bypasses;
  Alcotest.(check bool)
    (Printf.sprintf "only brief update contention (%d pauses)"
       stats.Cbnet.Run_stats.pauses)
    true
    (stats.Cbnet.Run_stats.pauses <= 10);
  (* Fully parallel: the makespan matches a single message's journey,
     far below three sequential journeys. *)
  Alcotest.(check bool)
    (Printf.sprintf "parallel makespan %d" stats.Cbnet.Run_stats.makespan)
    true
    (stats.Cbnet.Run_stats.makespan <= 12)

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"concurrent run always terminates valid" ~count:40
         Gen.(quad (int_range 2 48) (int_range 1 400) (int_range 1 20) (int_bound 99999))
         (fun (n, m, density, seed) ->
           let rng = Simkit.Rng.create seed in
           let trace =
             Array.init m (fun i ->
                 (i / density, Simkit.Rng.int rng n, Simkit.Rng.int rng n))
           in
           let t = Build.balanced n in
           let stats = Conc.run ~max_rounds:2_000_000 t trace in
           stats.Cbnet.Run_stats.messages = m
           && Result.is_ok (Bstnet.Check.structure t)
           && Result.is_ok (Bstnet.Check.bst_order t)
           && Result.is_ok (Bstnet.Check.interval_labels t)));
  ]

let () =
  Alcotest.run "concurrent"
    [
      ( "consistency",
        [
          Alcotest.test_case "single message" `Quick test_single_message_matches_sequential;
          Alcotest.test_case "spaced = sequential" `Quick
            test_widely_spaced_trace_matches_sequential_work;
          Alcotest.test_case "deterministic replay" `Quick test_deterministic_replay;
        ] );
      ( "liveness",
        [
          Alcotest.test_case "saturation" `Quick test_all_delivered_under_saturation;
          Alcotest.test_case "hot pair stress" `Quick test_priority_liveness_stress;
          Alcotest.test_case "makespan floor" `Quick test_makespan_not_smaller_than_optimal_floor;
        ] );
      ( "weights",
        [ Alcotest.test_case "drift bounded" `Quick test_root_weight_drift_bounded ] );
      ( "concurrency",
        [
          Alcotest.test_case "beats sequential makespan" `Quick
            test_concurrent_beats_sequential_makespan;
          Alcotest.test_case "conflicts classified" `Quick
            test_conflicts_happen_and_are_classified;
          Alcotest.test_case "window admission" `Quick test_window_admission_limits_in_flight;
          Alcotest.test_case "disjoint clusters (Fig. 1)" `Quick
            test_disjoint_clusters_progress_same_round;
          Alcotest.test_case "hot pair adapts" `Quick test_skewed_hot_pair_concurrent;
        ] );
      ("properties", qcheck_tests);
    ]
