(* Fine-grained tests of the message protocol: birth handling, LCA
   flips, update spawning, crossing deposits — the glue between step
   execution and cost accounting. *)

module T = Bstnet.Topology
module M = Cbnet.Message
module P = Cbnet.Protocol

let config = Cbnet.Config.default

type spawn_record = { mutable origin : int; mutable first : int; mutable count : int }

let recorder () =
  let r = { origin = -1; first = 0; count = 0 } in
  let spawn ~origin ~first_increment =
    r.origin <- origin;
    r.first <- first_increment;
    r.count <- r.count + 1
  in
  (r, spawn)

let test_born_climbing () =
  let t = Bstnet.Build.balanced 15 in
  let r, spawn = recorder () in
  let msg = M.data ~id:0 ~src:0 ~dst:14 ~birth:0 in
  P.born t ~spawn msg;
  Alcotest.(check int) "source weight +1" 1 (T.weight t 0);
  Alcotest.(check int) "no update yet" 0 r.count;
  Alcotest.(check bool) "climbing" true (msg.M.phase = M.Climbing);
  Alcotest.(check int) "up credit" 0 msg.M.up_credit

let test_born_at_lca () =
  (* Destination inside the source's subtree: the source is the LCA. *)
  let t = Bstnet.Build.balanced 15 in
  let r, spawn = recorder () in
  let msg = M.data ~id:0 ~src:3 ~dst:0 ~birth:0 in
  P.born t ~spawn msg;
  Alcotest.(check int) "update spawned" 1 r.count;
  Alcotest.(check int) "at the source" 3 r.origin;
  Alcotest.(check int) "full deposit" 2 r.first;
  Alcotest.(check bool) "descending" true (msg.M.phase = M.Descending);
  Alcotest.(check bool) "not delivered" false msg.M.delivered

let test_born_self_message () =
  let t = Bstnet.Build.balanced 15 in
  let r, spawn = recorder () in
  let msg = M.data ~id:0 ~src:5 ~dst:5 ~birth:0 in
  P.born t ~spawn msg;
  Alcotest.(check int) "update spawned" 1 r.count;
  Alcotest.(check int) "deposit 2" 2 r.first;
  Alcotest.(check bool) "delivered on the spot" true msg.M.delivered

let test_born_at_root_lca () =
  (* LCA = root: the full +2 must be deposited at the root. *)
  let t = Bstnet.Build.balanced 15 in
  let r, spawn = recorder () in
  let msg = M.data ~id:0 ~src:7 ~dst:0 ~birth:0 in
  P.born t ~spawn msg;
  Alcotest.(check int) "origin is root" 7 r.origin;
  Alcotest.(check int) "deposit 2" 2 r.first

let test_update_message_turns () =
  let t = Bstnet.Build.balanced 15 in
  let _, spawn = recorder () in
  let u = M.weight_update ~id:1 ~origin:0 ~birth:0 in
  (match P.begin_turn config t ~spawn u with
  | P.Plan plan ->
      Alcotest.(check int) "two hops up" 2 plan.Cbnet.Step.hops;
      P.apply_step t ~spawn u plan;
      Alcotest.(check int) "+2 on parent" 2 (T.weight t 1);
      Alcotest.(check int) "+2 on grandparent" 2 (T.weight t 3);
      Alcotest.(check int) "now at grandparent" 3 u.M.current
  | P.Delivered -> Alcotest.fail "should not be delivered yet");
  (match P.begin_turn config t ~spawn u with
  | P.Plan plan ->
      P.apply_step t ~spawn u plan;
      Alcotest.(check int) "+2 on root" 2 (T.weight t 7);
      Alcotest.(check bool) "delivered at root" true u.M.delivered
  | P.Delivered -> Alcotest.fail "one more step expected");
  Alcotest.(check int) "total deposit 6" 6 (T.weight_added t)

let test_full_delivery_accounting () =
  (* Drive one message by hand and verify the per-node deposits. *)
  let t = Bstnet.Build.balanced 15 in
  let updates = ref [] in
  let spawn ~origin ~first_increment =
    T.add_weight t origin first_increment;
    updates := M.weight_update ~id:99 ~origin ~birth:0 :: !updates
  in
  let msg = M.data ~id:0 ~src:0 ~dst:6 ~birth:0 in
  P.born t ~spawn msg;
  let guard = ref 20 in
  while (not msg.M.delivered) && !guard > 0 do
    decr guard;
    match P.begin_turn config t ~spawn msg with
    | P.Delivered -> msg.M.delivered <- true
    | P.Plan plan -> P.apply_step t ~spawn msg plan
  done;
  Alcotest.(check bool) "delivered" true msg.M.delivered;
  (* Path 0 -> 1 -> 3 (LCA) -> 5 -> 6, no rotations on a fresh tree:
     source side +1 at 0 and 1, +2 at the LCA 3 (update's first),
     descent +1 at 5 and 6. *)
  Alcotest.(check int) "src" 1 (T.weight t 0);
  Alcotest.(check int) "src parent" 1 (T.weight t 1);
  Alcotest.(check int) "lca" 2 (T.weight t 3);
  Alcotest.(check int) "descent" 1 (T.weight t 5);
  Alcotest.(check int) "dst" 1 (T.weight t 6);
  Alcotest.(check int) "hops: 2 up + 2 down" 4 msg.M.hops;
  Alcotest.(check int) "one update" 1 (List.length !updates)

let test_bypass_reclimb () =
  (* Simulate a bypass: mid-descent, rewire the tree so the destination
     leaves the current subtree; the message must flip back to
     climbing. *)
  let t = Bstnet.Build.balanced 15 in
  let _, spawn = recorder () in
  let msg = M.data ~id:0 ~src:0 ~dst:6 ~birth:0 in
  P.born t ~spawn msg;
  (* Hand-place the message at node 5 descending. *)
  msg.M.current <- 5;
  msg.M.phase <- M.Descending;
  msg.M.update_spawned <- true;
  (* An external rotation promotes 6 over 5: direction flips to Up. *)
  T.rotate_up t 6;
  match P.begin_turn config t ~spawn msg with
  | P.Plan plan ->
      Alcotest.(check bool) "climbing again" true (msg.M.phase = M.Climbing);
      Alcotest.(check bool) "plans upward" true
        (plan.Cbnet.Step.kind = Cbnet.Step.Bu_zig
        || plan.Cbnet.Step.kind = Cbnet.Step.Bu_semi_zig_zig
        || plan.Cbnet.Step.kind = Cbnet.Step.Bu_semi_zig_zag)
  | P.Delivered -> Alcotest.fail "not delivered"

let test_no_double_update_after_reclimb () =
  let t = Bstnet.Build.balanced 15 in
  let r, spawn = recorder () in
  let msg = M.data ~id:0 ~src:0 ~dst:6 ~birth:0 in
  P.born t ~spawn msg;
  msg.M.current <- 3;
  msg.M.phase <- M.Climbing;
  msg.M.update_spawned <- true;
  (* Reaching a (new) LCA with the update already sent must not spawn
     another one. *)
  (match P.begin_turn config t ~spawn msg with P.Plan _ | P.Delivered -> ());
  Alcotest.(check int) "no second update" 0 r.count

let test_td_rotation_over_root_deposit_order () =
  (* Regression: a top-down rotation promoting the destination over the
     root must deposit the crossing +1 before the rotation, or the root
     aggregate absorbs it and overshoots 2m. *)
  let t = Bstnet.Build.balanced 3 in
  (* Preload weights so the Td_zig rotation fires: heavy destination. *)
  T.set_weight t 0 1000;
  T.set_weight t 1 1001;
  let spawned = ref 0 in
  let spawn ~origin ~first_increment =
    T.add_weight t origin first_increment;
    incr spawned
  in
  let msg = M.data ~id:0 ~src:1 ~dst:0 ~birth:0 in
  (* 1 is the root: born at the LCA. *)
  P.born t ~spawn msg;
  Alcotest.(check int) "update spawned at root LCA" 1 !spawned;
  let before_root_weight = T.weight t (T.root t) in
  (match P.begin_turn (Cbnet.Config.make ~delta:0.01 ()) t ~spawn msg with
  | P.Plan plan ->
      Alcotest.(check bool) "rotation fires" true plan.Cbnet.Step.rotate;
      P.apply_step t ~spawn msg plan
  | P.Delivered -> Alcotest.fail "expected a step");
  Alcotest.(check bool) "delivered" true msg.M.delivered;
  (* The crossing +1 was applied below the root and telescopes away; the
     promoted root must carry exactly the old total — depositing after
     the rotation would have inflated it by one. *)
  Alcotest.(check int) "root conserves deposits" before_root_weight
    (T.weight t (T.root t))

let () =
  Alcotest.run "protocol"
    [
      ( "born",
        [
          Alcotest.test_case "climbing" `Quick test_born_climbing;
          Alcotest.test_case "at LCA" `Quick test_born_at_lca;
          Alcotest.test_case "self message" `Quick test_born_self_message;
          Alcotest.test_case "root LCA" `Quick test_born_at_root_lca;
        ] );
      ( "updates",
        [
          Alcotest.test_case "turn by turn" `Quick test_update_message_turns;
          Alcotest.test_case "delivery accounting" `Quick test_full_delivery_accounting;
        ] );
      ( "bypass",
        [
          Alcotest.test_case "re-climb" `Quick test_bypass_reclimb;
          Alcotest.test_case "no double update" `Quick test_no_double_update_after_reclimb;
        ] );
      ( "regressions",
        [
          Alcotest.test_case "td-over-root deposit order" `Quick
            test_td_rotation_over_root_deposit_order;
        ] );
    ]
