(* End-to-end tests of sequential CBNet (Algorithm 1): cost accounting,
   weight bookkeeping, adaptation behaviour, and Theorems 1 and 2. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module Seq = Cbnet.Sequential

let mk_trace reqs = Array.of_list (List.mapi (fun i (s, d) -> (i, s, d)) reqs)

let test_single_message () =
  let t = Build.balanced 15 in
  let stats = Seq.run t (mk_trace [ (0, 14) ]) in
  Alcotest.(check int) "one message" 1 stats.Cbnet.Run_stats.messages;
  (* distance(0,14) = 6 in the balanced tree; no rotations happen on an
     unweighted tree, and the weight update climbs from the root LCA. *)
  Alcotest.(check int) "routing = hops + 1" (stats.Cbnet.Run_stats.routing_hops + 1)
    stats.Cbnet.Run_stats.routing_cost;
  Alcotest.(check int) "root weight 2" 2 (T.total_weight t);
  Alcotest.(check int) "one update message" 1 stats.Cbnet.Run_stats.update_messages

let test_self_message () =
  let t = Build.balanced 7 in
  let stats = Seq.run t (mk_trace [ (4, 4) ]) in
  Alcotest.(check int) "delivered" 1 stats.Cbnet.Run_stats.messages;
  (* The data part costs only the +1 of Def. 1; the spawned weight
     update still climbs from node 4 to the root (2 hops here). *)
  Alcotest.(check int) "routing = update hops + 1"
    (stats.Cbnet.Run_stats.routing_hops + 1)
    stats.Cbnet.Run_stats.routing_cost;
  Alcotest.(check int) "update climb hops" 2 stats.Cbnet.Run_stats.routing_hops;
  Alcotest.(check int) "root weight 2" 2 (T.total_weight t);
  (* Counter of the self-addressed node is +2 (source and dest). *)
  Alcotest.(check int) "counter" 2 (T.counter t 4)

let test_root_weight_is_2m () =
  let rng = Simkit.Rng.create 42 in
  for _ = 1 to 10 do
    let n = 4 + Simkit.Rng.int rng 60 in
    let m = 50 + Simkit.Rng.int rng 500 in
    let t = Build.balanced n in
    let trace =
      Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n))
    in
    ignore (Seq.run t trace);
    Alcotest.(check int) "W(root) = 2m" (2 * m) (T.total_weight t)
  done

let test_counters_exact_without_rotations () =
  (* With delta at its maximum and mild weights, no rotation fires:
     the protocol's increments must reproduce the exact counters
     c(v) = (#times source) + (#times destination). *)
  let rng = Simkit.Rng.create 7 in
  let n = 31 in
  let m = 400 in
  let t = Build.balanced n in
  let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  (* A balanced tree under uniform traffic yields only weak potential
     drops; still, force no rotations via a custom huge threshold by
     pre-loading uniform weights?  Simpler: check against realized
     rotations — if none happened, counters must be exact. *)
  let stats = Seq.run t trace in
  let expected = Array.make n 0 in
  Array.iter
    (fun (_, s, d) ->
      expected.(s) <- expected.(s) + 1;
      expected.(d) <- expected.(d) + 1)
    trace;
  if stats.Cbnet.Run_stats.rotations = 0 then
    Bstnet.Check.assert_ok (Bstnet.Check.weights ~counters:expected t)
  else begin
    (* Otherwise the drift is bounded by the number of rotations. *)
    let drift = ref 0 in
    for v = 0 to n - 1 do
      drift := !drift + abs (T.counter t v - expected.(v))
    done;
    Alcotest.(check bool) "drift bounded by 4x rotations" true
      (!drift <= 4 * stats.Cbnet.Run_stats.rotations)
  end

let test_skewed_pair_converges () =
  (* Two chatty nodes end up close; total rotations stay tiny. *)
  let t = Build.balanced 15 in
  let trace =
    Array.init 2000 (fun i ->
        if i mod 2 = 0 then (i, 3, 12) else (i, 12, 3))
  in
  let stats = Seq.run t trace in
  Alcotest.(check bool) "distance shrank" true (T.distance t 3 12 <= 2);
  Alcotest.(check bool) "rotations amortize out" true
    (stats.Cbnet.Run_stats.rotations < 20);
  Alcotest.(check bool) "hops near 2 per message" true
    (stats.Cbnet.Run_stats.routing_hops < 3 * 2000);
  Bstnet.Check.assert_ok (Bstnet.Check.structure t);
  Bstnet.Check.assert_ok (Bstnet.Check.bst_order t);
  Bstnet.Check.assert_ok (Bstnet.Check.interval_labels t)

let test_rotations_subconstant_amortized () =
  (* Theorem 2: O(n log (m/n)) rotations — far below m for large m. *)
  let n = 64 in
  let rng = Simkit.Rng.create 5 in
  let m = 20_000 in
  let t = Build.balanced n in
  let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let stats = Seq.run t trace in
  let bound = float_of_int n *. Float.log2 (float_of_int m /. float_of_int n) in
  Alcotest.(check bool)
    (Printf.sprintf "rotations %d <= 3 * n log(m/n) = %.0f"
       stats.Cbnet.Run_stats.rotations (3.0 *. bound))
    true
    (float_of_int stats.Cbnet.Run_stats.rotations <= 3.0 *. bound)

let test_amortized_routing_entropy_bound () =
  (* Theorem 1: amortized routing is O(H(S) + H(D)).  Constant factor
     is checked loosely (the analysis gives ~ 2/(1 - δ/2) per bit plus
     boundary terms; we assert a generous 6x + 8). *)
  let n = 128 in
  let m = 10_000 in
  let trace = Workloads.Skewed.generate ~n ~m ~alpha:1.4 ~support:500 ~seed:3 () in
  let runs = Workloads.Trace.to_runs trace in
  let demand = Baselines.Demand.of_trace ~n runs in
  let h =
    Baselines.Demand.source_entropy demand +. Baselines.Demand.destination_entropy demand
  in
  let t = Build.balanced n in
  let stats = Seq.run t runs in
  let amortized = float_of_int stats.Cbnet.Run_stats.routing_cost /. float_of_int m in
  Alcotest.(check bool)
    (Printf.sprintf "amortized %.2f within 6*(H=%.2f)+8" amortized h)
    true
    (amortized <= (6.0 *. h) +. 8.0)

let test_work_decomposition () =
  let t = Build.balanced 31 in
  let rng = Simkit.Rng.create 9 in
  let trace = Array.init 500 (fun i -> (i, Simkit.Rng.int rng 31, Simkit.Rng.int rng 31)) in
  let stats = Seq.run t trace in
  Alcotest.(check (float 1e-6)) "work = routing + R*rotations"
    (float_of_int stats.Cbnet.Run_stats.routing_cost
    +. float_of_int stats.Cbnet.Run_stats.rotations)
    stats.Cbnet.Run_stats.work

let test_rotation_cost_scales_work () =
  let mk () =
    let t = Build.balanced 31 in
    let rng = Simkit.Rng.create 9 in
    ( t,
      Array.init 500 (fun i -> (i, Simkit.Rng.int rng 31, Simkit.Rng.int rng 31)) )
  in
  let t1, tr1 = mk () in
  let s1 = Seq.run ~config:(Cbnet.Config.make ~rotation_cost:1.0 ()) t1 tr1 in
  let t2, tr2 = mk () in
  let s2 = Seq.run ~config:(Cbnet.Config.make ~rotation_cost:5.0 ()) t2 tr2 in
  Alcotest.(check int) "same rotations" s1.Cbnet.Run_stats.rotations
    s2.Cbnet.Run_stats.rotations;
  Alcotest.(check (float 1e-6)) "work scales with R"
    (s1.Cbnet.Run_stats.work
    +. (4.0 *. float_of_int s1.Cbnet.Run_stats.rotations))
    s2.Cbnet.Run_stats.work

let test_unsorted_trace_rejected () =
  let t = Build.balanced 7 in
  Alcotest.check_raises "unsorted" (Invalid_argument "Sequential.run: trace not sorted")
    (fun () -> ignore (Seq.run t [| (5, 0, 1); (2, 1, 0) |]))

let test_out_of_range_rejected () =
  let t = Build.balanced 7 in
  Alcotest.check_raises "range"
    (Invalid_argument "Sequential.run: endpoint out of range") (fun () ->
      ignore (Seq.run t [| (0, 0, 9) |]))

let test_makespan_accounts_idle_time () =
  let t = Build.balanced 7 in
  (* Two messages far apart in time: makespan covers the gap. *)
  let stats = Seq.run t [| (0, 0, 6); (1000, 6, 0) |] in
  Alcotest.(check bool) "makespan spans arrivals" true
    (stats.Cbnet.Run_stats.makespan >= 1000)

let test_empty_trace () =
  let t = Build.balanced 7 in
  let stats = Seq.run t [||] in
  Alcotest.(check int) "no messages" 0 stats.Cbnet.Run_stats.messages;
  Alcotest.(check int) "no work" 0 stats.Cbnet.Run_stats.routing_cost

let test_ancestor_descendant_messages () =
  (* Destination is an ancestor of the source and vice versa. *)
  let t = Build.balanced 15 in
  let stats = Seq.run t (mk_trace [ (0, 7); (7, 0); (0, 1); (1, 0) ]) in
  Alcotest.(check int) "all delivered" 4 stats.Cbnet.Run_stats.messages;
  Alcotest.(check int) "W(root)=8" 8 (T.total_weight t)

let test_adversarial_chain () =
  (* Degenerate initial topology: messages between the two ends. *)
  let t = Build.path 32 in
  let trace = Array.init 500 (fun i -> (i, (if i mod 2 = 0 then 0 else 31), if i mod 2 = 0 then 31 else 0)) in
  let stats = Seq.run t trace in
  Alcotest.(check bool) "adapted: distance collapsed" true (T.distance t 0 31 < 8);
  Alcotest.(check bool) "work well below naive m*n" true
    (stats.Cbnet.Run_stats.work < float_of_int (500 * 32));
  Bstnet.Check.assert_ok (Bstnet.Check.structure t)

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"W(root) = 2m and tree valid after any trace" ~count:60
         Gen.(triple (int_range 2 48) (int_range 1 300) (int_bound 99999))
         (fun (n, m, seed) ->
           let rng = Simkit.Rng.create seed in
           let t = Build.balanced n in
           let trace =
             Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n))
           in
           ignore (Seq.run t trace);
           T.total_weight t = 2 * m
           && Result.is_ok (Bstnet.Check.structure t)
           && Result.is_ok (Bstnet.Check.bst_order t)
           && Result.is_ok (Bstnet.Check.interval_labels t)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"routing cost >= m (the +1 per message)" ~count:60
         Gen.(triple (int_range 2 32) (int_range 1 200) (int_bound 99999))
         (fun (n, m, seed) ->
           let rng = Simkit.Rng.create seed in
           let t = Build.balanced n in
           let trace =
             Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n))
           in
           let stats = Seq.run t trace in
           stats.Cbnet.Run_stats.routing_cost >= m));
  ]

let () =
  Alcotest.run "sequential"
    [
      ( "basics",
        [
          Alcotest.test_case "single message" `Quick test_single_message;
          Alcotest.test_case "self message" `Quick test_self_message;
          Alcotest.test_case "empty trace" `Quick test_empty_trace;
          Alcotest.test_case "ancestor/descendant" `Quick test_ancestor_descendant_messages;
          Alcotest.test_case "unsorted rejected" `Quick test_unsorted_trace_rejected;
          Alcotest.test_case "range rejected" `Quick test_out_of_range_rejected;
        ] );
      ( "weights",
        [
          Alcotest.test_case "W(root) = 2m" `Quick test_root_weight_is_2m;
          Alcotest.test_case "counters exact / bounded drift" `Quick
            test_counters_exact_without_rotations;
        ] );
      ( "behaviour",
        [
          Alcotest.test_case "skewed pair converges" `Quick test_skewed_pair_converges;
          Alcotest.test_case "thm2 rotation bound" `Quick
            test_rotations_subconstant_amortized;
          Alcotest.test_case "thm1 entropy bound" `Quick
            test_amortized_routing_entropy_bound;
          Alcotest.test_case "adversarial chain" `Quick test_adversarial_chain;
        ] );
      ( "accounting",
        [
          Alcotest.test_case "work decomposition" `Quick test_work_decomposition;
          Alcotest.test_case "rotation cost scales" `Quick test_rotation_cost_scales_work;
          Alcotest.test_case "makespan idle time" `Quick test_makespan_accounts_idle_time;
        ] );
      ("properties", qcheck_tests);
    ]
