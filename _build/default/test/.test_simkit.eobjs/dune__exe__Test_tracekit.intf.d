test/test_tracekit.mli:
