test/test_baselines.ml: Alcotest Array Baselines Bstnet Cbnet Gen List Printf QCheck2 QCheck_alcotest Result Simkit Test
