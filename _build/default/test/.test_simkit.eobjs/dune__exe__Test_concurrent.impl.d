test/test_concurrent.ml: Alcotest Array Bstnet Cbnet Gen List Printf QCheck2 QCheck_alcotest Result Simkit Test
