test/test_potential.ml: Alcotest Bstnet Cbnet Float Gen QCheck2 QCheck_alcotest Simkit Test
