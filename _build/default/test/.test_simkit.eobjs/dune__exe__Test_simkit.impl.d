test/test_simkit.ml: Alcotest Array Float Gen List QCheck2 QCheck_alcotest Simkit Test
