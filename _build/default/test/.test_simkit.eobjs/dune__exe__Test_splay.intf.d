test/test_splay.mli:
