test/test_workloads.ml: Alcotest Array Filename Float Fun Gen Hashtbl List Option Printf QCheck2 QCheck_alcotest Simkit Sys Test Workloads
