test/test_extensions.ml: Alcotest Array Baselines Bstnet Cbnet Filename Float Fun List Printf Runtime Simkit String Sys Tracekit Workloads
