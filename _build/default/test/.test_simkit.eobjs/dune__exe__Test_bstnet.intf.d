test/test_bstnet.mli:
