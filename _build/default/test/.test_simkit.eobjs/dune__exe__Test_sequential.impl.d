test/test_sequential.ml: Alcotest Array Baselines Bstnet Cbnet Float Gen List Printf QCheck2 QCheck_alcotest Result Simkit Test Workloads
