test/test_step.mli:
