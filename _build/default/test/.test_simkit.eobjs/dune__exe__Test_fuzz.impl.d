test/test_fuzz.ml: Alcotest Array Baselines Bstnet Cbnet List Simkit
