test/test_opt.ml: Alcotest Array Baselines Bstnet Gen List QCheck2 QCheck_alcotest Simkit Test
