test/test_bstnet.ml: Alcotest Array Bstnet Float Gen List QCheck2 QCheck_alcotest Result Simkit String Test
