test/test_protocol.ml: Alcotest Bstnet Cbnet List
