test/test_runtime.ml: Alcotest Array Bstnet Buffer Cbnet Format List Printf Runtime Simkit String Workloads
