test/test_splay.ml: Alcotest Baselines Bstnet Gen Printf QCheck2 QCheck_alcotest Result Simkit Test
