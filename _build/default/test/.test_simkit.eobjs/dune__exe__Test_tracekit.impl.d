test/test_tracekit.ml: Alcotest Array Gen List Printf QCheck2 QCheck_alcotest Simkit Test Tracekit Workloads
