test/test_step.ml: Alcotest Array Bstnet Cbnet Float Gen List QCheck2 QCheck_alcotest Simkit Test
