test/test_adversary.ml: Alcotest Bstnet Cbnet Float Printf Runtime
