(* Cross-algorithm fuzz: every executor, on every tiny tree shape,
   under chaotic traces (self messages, duplicates, bursts of identical
   pairs, saturated arrivals).  Tiny n maximizes boundary-case density:
   every step is near the root, the LCA, or a leaf. *)

module T = Bstnet.Topology

let check_tree name t =
  (match Bstnet.Check.structure t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: structure: %s" name e);
  (match Bstnet.Check.bst_order t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: order: %s" name e);
  match Bstnet.Check.interval_labels t with
  | Ok () -> ()
  | Error e -> Alcotest.failf "%s: intervals: %s" name e

let fuzz_round rng =
  let n = 2 + Simkit.Rng.int rng 5 in
  let m = 1 + Simkit.Rng.int rng 30 in
  let density = 1 + Simkit.Rng.int rng 3 in
  let trace =
    Array.init m (fun i ->
        (i / density, Simkit.Rng.int rng n, Simkit.Rng.int rng n))
  in
  let t1 = Bstnet.Build.balanced n in
  ignore (Cbnet.Sequential.run t1 trace);
  check_tree "sequential" t1;
  if T.total_weight t1 <> 2 * m then
    Alcotest.failf "sequential W(root) = %d, expected %d" (T.total_weight t1) (2 * m);
  let t2 = Bstnet.Build.balanced n in
  let stats = Cbnet.Concurrent.run ~max_rounds:500_000 t2 trace in
  check_tree "concurrent" t2;
  if stats.Cbnet.Run_stats.messages <> m then
    Alcotest.failf "concurrent delivered %d of %d" stats.Cbnet.Run_stats.messages m;
  let t3 = Bstnet.Build.balanced n in
  ignore (Baselines.Displaynet.run ~max_rounds:500_000 t3 trace);
  check_tree "displaynet" t3;
  let t4 = Bstnet.Build.balanced n in
  ignore (Baselines.Splaynet.run t4 trace);
  check_tree "splaynet" t4;
  let t5 = Bstnet.Build.balanced n in
  ignore (Baselines.Move_to_root.run t5 trace);
  check_tree "move-to-root" t5

let test_tiny_tree_fuzz () =
  let rng = Simkit.Rng.create 20260705 in
  for _ = 1 to 2_000 do
    fuzz_round rng
  done

let fuzz_degenerate_start rng =
  (* Same chaos from the adversarial chain topology. *)
  let n = 2 + Simkit.Rng.int rng 12 in
  let m = 1 + Simkit.Rng.int rng 40 in
  let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let t1 = Bstnet.Build.path n in
  ignore (Cbnet.Sequential.run t1 trace);
  check_tree "sequential/path" t1;
  if T.total_weight t1 <> 2 * m then
    Alcotest.failf "path-start W(root) = %d, expected %d" (T.total_weight t1) (2 * m);
  let t2 = Bstnet.Build.path n in
  ignore (Cbnet.Concurrent.run ~max_rounds:500_000 t2 trace);
  check_tree "concurrent/path" t2

let test_degenerate_start_fuzz () =
  let rng = Simkit.Rng.create 424242 in
  for _ = 1 to 1_000 do
    fuzz_degenerate_start rng
  done

let test_extreme_delta_fuzz () =
  (* Both ends of the rotation-threshold range. *)
  let rng = Simkit.Rng.create 777 in
  List.iter
    (fun delta ->
      let config = Cbnet.Config.make ~delta () in
      for _ = 1 to 500 do
        let n = 2 + Simkit.Rng.int rng 8 in
        let m = 1 + Simkit.Rng.int rng 30 in
        let trace =
          Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n))
        in
        let t = Bstnet.Build.balanced n in
        ignore (Cbnet.Sequential.run ~config t trace);
        check_tree "delta" t;
        if T.total_weight t <> 2 * m then
          Alcotest.failf "delta=%.2f W(root) = %d, expected %d" delta
            (T.total_weight t) (2 * m)
      done)
    [ 0.01; 2.0 ]

let () =
  Alcotest.run "fuzz"
    [
      ( "fuzz",
        [
          Alcotest.test_case "tiny trees, all algorithms" `Slow test_tiny_tree_fuzz;
          Alcotest.test_case "degenerate starts" `Slow test_degenerate_start_fuzz;
          Alcotest.test_case "extreme deltas" `Slow test_extreme_delta_fuzz;
        ] );
    ]
