(* The ΔΦ predictions must agree exactly with the potential difference
   measured by performing the rotation — this is the correctness core
   of Algorithm 1's rotate-or-forward decision. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module P = Cbnet.Potential

let install_random_weights rng t =
  let n = T.n t in
  let rec go v =
    if v = T.nil then 0
    else begin
      let c = Simkit.Rng.int rng 20 in
      let w = c + go (T.left t v) + go (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (go (T.root t));
  ignore n

let test_rank () =
  Alcotest.(check (float 1e-9)) "rank 0" 0.0 (P.rank 0);
  Alcotest.(check (float 1e-9)) "rank 1" 0.0 (P.rank 1);
  Alcotest.(check (float 1e-9)) "rank 2" 1.0 (P.rank 2);
  Alcotest.(check (float 1e-9)) "rank 8" 3.0 (P.rank 8);
  Alcotest.(check (float 1e-9)) "negative clamps" 0.0 (P.rank (-3))

let test_phi_empty_weights () =
  let t = Build.balanced 15 in
  Alcotest.(check (float 1e-9)) "zero potential" 0.0 (P.phi t)

let test_phi_simple () =
  let t = Build.balanced 3 in
  T.set_weight t 0 2;
  T.set_weight t 2 4;
  T.set_weight t 1 8;
  Alcotest.(check (float 1e-9)) "sum of ranks" (1.0 +. 2.0 +. 3.0) (P.phi t)

let check_single_prediction t v =
  let predicted = P.delta_promote t v in
  let before = P.phi t in
  let copy = T.copy t in
  T.rotate_up copy v;
  let actual = P.phi copy -. before in
  if Float.abs (predicted -. actual) > 1e-9 then
    Alcotest.failf "delta_promote %d: predicted %.6f, actual %.6f" v predicted actual

let check_double_prediction t v =
  let predicted = P.delta_double_promote t v in
  let before = P.phi t in
  let copy = T.copy t in
  T.rotate_up copy v;
  T.rotate_up copy v;
  let actual = P.phi copy -. before in
  if Float.abs (predicted -. actual) > 1e-9 then
    Alcotest.failf "delta_double_promote %d: predicted %.6f, actual %.6f" v predicted
      actual

let test_delta_promote_matches_reality () =
  let rng = Simkit.Rng.create 77 in
  for _ = 1 to 50 do
    let n = 2 + Simkit.Rng.int rng 60 in
    let t = Build.random rng n in
    install_random_weights rng t;
    for v = 0 to n - 1 do
      if not (T.is_root t v) then check_single_prediction t v
    done
  done

let test_delta_double_promote_zig_zag () =
  let rng = Simkit.Rng.create 78 in
  let checked = ref 0 in
  for _ = 1 to 80 do
    let n = 3 + Simkit.Rng.int rng 60 in
    let t = Build.random rng n in
    install_random_weights rng t;
    for v = 0 to n - 1 do
      let p = T.parent t v in
      if p <> T.nil && T.parent t p <> T.nil then begin
        (* The prediction formula is specific to the zig-zag shape. *)
        let zig_zag = T.is_left_child t v <> T.is_left_child t p in
        if zig_zag then begin
          check_double_prediction t v;
          incr checked
        end
      end
    done
  done;
  Alcotest.(check bool) "exercised many shapes" true (!checked > 100)

let test_delta_promote_rejects_root () =
  let t = Build.balanced 7 in
  Alcotest.check_raises "root"
    (Invalid_argument "Potential.delta_promote: node is the root") (fun () ->
      ignore (P.delta_promote t 3))

let test_rotation_toward_heavy_subtree_decreases_phi () =
  (* A heavy node deep in the tree: promoting it should lower Φ. *)
  let t = Build.path 8 in
  (* Chain 0 -> 1 -> ... -> 7; make node 7 (deepest) very heavy. *)
  let rec go v =
    if v = T.nil then 0
    else begin
      let c = if v = 7 then 1000 else 1 in
      let w = c + go (T.left t v) + go (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (go (T.root t));
  Alcotest.(check bool) "promoting heavy node decreases potential" true
    (P.delta_promote t 7 < 0.0)

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"single-rotation prediction is exact" ~count:200
         Gen.(triple (int_range 2 40) (int_bound 10_000) (int_bound 1000))
         (fun (n, wseed, pick) ->
           let rng = Simkit.Rng.create wseed in
           let t = Build.random rng n in
           install_random_weights rng t;
           let v = pick mod n in
           if T.is_root t v then true
           else begin
             let predicted = P.delta_promote t v in
             let before = P.phi t in
             let copy = T.copy t in
             T.rotate_up copy v;
             Float.abs (predicted -. (P.phi copy -. before)) < 1e-9
           end));
  ]

let () =
  Alcotest.run "potential"
    [
      ( "rank-phi",
        [
          Alcotest.test_case "rank" `Quick test_rank;
          Alcotest.test_case "phi empty" `Quick test_phi_empty_weights;
          Alcotest.test_case "phi simple" `Quick test_phi_simple;
        ] );
      ( "delta",
        [
          Alcotest.test_case "single matches reality" `Quick
            test_delta_promote_matches_reality;
          Alcotest.test_case "double (zig-zag) matches reality" `Quick
            test_delta_double_promote_zig_zag;
          Alcotest.test_case "rejects root" `Quick test_delta_promote_rejects_root;
          Alcotest.test_case "heavy subtree attracts" `Quick
            test_rotation_toward_heavy_subtree_decreases_phi;
        ] );
      ("properties", qcheck_tests);
    ]
