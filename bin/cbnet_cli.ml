(* Command-line driver: run single experiments, reproduce the paper's
   figures, inspect workloads.  `cbnet --help` lists everything. *)

open Cmdliner

let scale_arg =
  let conv_scale =
    Arg.enum
      [
        ("smoke", Workloads.Catalog.Smoke);
        ("default", Workloads.Catalog.Default);
        ("full", Workloads.Catalog.Full);
      ]
  in
  Arg.(
    value
    & opt conv_scale Workloads.Catalog.Default
    & info [ "scale" ]
        ~doc:
          "Workload scale: $(b,smoke) (seconds), $(b,default) (minutes) or \
           $(b,full) (paper sizes).")

let seeds_arg =
  Arg.(value & opt int 5 & info [ "seeds" ] ~doc:"Repetitions per cell (paper: 30).")

let lambda_arg =
  Arg.(value & opt float 0.05 & info [ "lambda" ] ~doc:"Poisson arrival parameter (Sec. IX-B).")

let base_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ]
        ~doc:
          "Worker domains for multi-seed runs (results are bit-identical at \
           every setting); 0 = CBNET_JOBS or cores - 1.")

let options_term =
  let make scale seeds lambda base_seed jobs =
    let jobs = if jobs <= 0 then Simkit.Pool.default_jobs () else jobs in
    { Runtime.Figures.scale; seeds; lambda; base_seed; jobs }
  in
  Term.(const make $ scale_arg $ seeds_arg $ lambda_arg $ base_seed_arg $ jobs_arg)

let figure_cmd name doc
    (render : ?options:Runtime.Figures.options -> Format.formatter -> unit) =
  let run options = render ~options Format.std_formatter in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ options_term)

let workload_arg =
  Arg.(
    required
    & opt (some (enum (List.map (fun k -> (k, k)) Workloads.Catalog.keys))) None
    & info [ "workload"; "w" ] ~doc:"Workload name.")

let algo_arg =
  let algos =
    List.map
      (fun a -> (Runtime.Algo.name a, a))
      (Runtime.Algo.all @ [ Runtime.Algo.CBN_FOREST ])
  in
  Arg.(
    required
    & opt (some (enum algos)) None
    & info [ "algo"; "a" ]
        ~doc:
          "Algorithm: BT, OPT, SN, DSN, SCBN, CBN or CBN-forest (the sharded \
           overlay; size it with $(b,--shards)).")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the run to $(docv) (open in \
           Perfetto or chrome://tracing).")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write run metrics to $(docv) in the Prometheus text exposition \
           format.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains"; "d" ]
        ~doc:
          "Domains for the CBN executor's intra-run plan wave (results are \
           bit-identical at every setting); 0 = all recommended cores.  \
           Other algorithms ignore it.")

let resolve_domains d =
  if d < 0 then failwith "--domains must be >= 0"
  else if d = 0 then Domain.recommended_domain_count ()
  else d

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards"; "k" ]
        ~doc:
          "Shards of the CBN-forest directory (contiguous key ranges; results \
           are bit-identical at every shards x domains combination).  Other \
           algorithms ignore it.")

let check_invariants_arg =
  Arg.(
    value & flag
    & info [ "check-invariants" ]
        ~doc:
          "Audit the final tree with the structural invariant suite \
           (parent/child links, BST order, interval labels) and fail on a \
           violation.")

let run_cmd =
  let doc = "Run one algorithm on one workload and print its statistics." in
  let run workload algo trace_file metrics_file check_invariants domains
      shards options =
    let domains = resolve_domains domains in
    let trace =
      Runtime.Experiment.trace_for ~scale:options.Runtime.Figures.scale
        ~lambda:options.Runtime.Figures.lambda ~workload
        ~seed:options.Runtime.Figures.base_seed ()
    in
    Format.printf "%a@." Workloads.Trace.pp_summary trace;
    let ring =
      match trace_file with
      | Some _ -> Some (Obskit.Sink.Ring.create ~capacity:1_000_000)
      | None -> None
    in
    let registry =
      match metrics_file with
      | Some _ -> Some (Simkit.Metrics.create ())
      | None -> None
    in
    let sink =
      Obskit.Sink.tee
        ((match ring with Some r -> [ Obskit.Sink.Ring.sink r ] | None -> [])
        @
        match registry with
        | Some reg -> [ Runtime.Telemetry.metrics_sink reg ]
        | None -> [])
    in
    let stats =
      Runtime.Algo.run ~sink ~check_invariants ~domains ~shards algo trace
    in
    Format.printf "%s: %a@." (Runtime.Algo.name algo) Cbnet.Run_stats.pp stats;
    (match (trace_file, ring) with
    | Some path, Some r ->
        let dropped = Obskit.Sink.Ring.dropped r in
        Runtime.Export.chrome_trace ~dropped (Obskit.Sink.Ring.contents r) path;
        Format.printf "wrote %d trace events to %s%s@."
          (Obskit.Sink.Ring.length r)
          path
          (if dropped > 0 then Printf.sprintf " (%d oldest dropped)" dropped
           else "")
    | _ -> ());
    match (metrics_file, registry) with
    | Some path, Some reg ->
        let events_dropped =
          match ring with Some r -> Obskit.Sink.Ring.dropped r | None -> 0
        in
        Runtime.Export.prometheus ~events_dropped reg path;
        Format.printf "wrote metrics to %s@." path
    | _ -> ()
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ workload_arg $ algo_arg $ trace_file_arg $ metrics_file_arg
      $ check_invariants_arg $ domains_arg $ shards_arg $ options_term)

let report_profile_cmd =
  let doc =
    "Run the concurrent CBNet executor on one workload with phase-level \
     self-profiling and print the attribution report."
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Also write the machine-readable profile JSON to $(docv).")
  in
  let run workload out check_invariants domains options =
    let domains = resolve_domains domains in
    let trace =
      Runtime.Experiment.trace_for ~scale:options.Runtime.Figures.scale
        ~lambda:options.Runtime.Figures.lambda ~workload
        ~seed:options.Runtime.Figures.base_seed ()
    in
    Format.printf "%a@." Workloads.Trace.pp_summary trace;
    let profile = Profkit.Profile.create () in
    let stats =
      Runtime.Algo.run ~profile ~check_invariants ~domains Runtime.Algo.CBN
        trace
    in
    Format.printf "CBN: %a@." Cbnet.Run_stats.pp stats;
    Runtime.Report.profile
      ~title:
        (Printf.sprintf "CBN phase attribution (%s, domains=%d)" workload
           domains)
      profile Format.std_formatter;
    match out with
    | Some path ->
        Runtime.Export.profile_json ~commit:"cli" ~timestamp:"" ~workload
          ~domains profile path;
        Format.printf "wrote profile to %s@." path
    | None -> ()
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ workload_arg $ out_arg $ check_invariants_arg $ domains_arg
      $ options_term)

let report_cmd =
  let doc = "Self-profiling reports of the executors." in
  Cmd.group (Cmd.info "report" ~doc) [ report_profile_cmd ]

let complexity_cmd =
  let doc = "Measure the trace complexity (T, NT, Psi) of a workload." in
  let run workload options =
    let entry = Workloads.Catalog.find workload in
    let trace =
      entry.Workloads.Catalog.generate options.Runtime.Figures.scale
        ~seed:options.Runtime.Figures.base_seed
    in
    let r =
      Tracekit.Complexity.measure ~seed:(options.Runtime.Figures.base_seed + 17) trace
    in
    Format.printf "%s: %a@." workload Tracekit.Complexity.pp r
  in
  Cmd.v (Cmd.info "complexity" ~doc) Term.(const run $ workload_arg $ options_term)

let export_cmd =
  let doc = "Generate a workload and write it to a CSV file." in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc:"Output path.")
  in
  let run workload out options =
    let trace =
      Runtime.Experiment.trace_for ~scale:options.Runtime.Figures.scale
        ~lambda:options.Runtime.Figures.lambda ~workload
        ~seed:options.Runtime.Figures.base_seed ()
    in
    Workloads.Trace.save_csv trace out;
    Format.printf "wrote %a to %s@." Workloads.Trace.pp_summary trace out
  in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ workload_arg $ out_arg $ options_term)

let timeline_cmd =
  let doc = "Print the adaptation timeline of sequential CBNet on a workload." in
  let window_arg =
    Arg.(value & opt int 1000 & info [ "window" ] ~doc:"Messages per window.")
  in
  let run workload window options =
    let entry = Workloads.Catalog.find workload in
    let trace =
      entry.Workloads.Catalog.generate options.Runtime.Figures.scale
        ~seed:options.Runtime.Figures.base_seed
    in
    Runtime.Timeline.pp Format.std_formatter
      (Runtime.Timeline.sequential_cbnet ~window trace)
  in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(const run $ workload_arg $ window_arg $ options_term)

let matrix_cmd =
  let doc =
    "Run the full (workload x algorithm) matrix and write a CSV of the      aggregated measurements."
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc:"Output CSV path.")
  in
  let run out options =
    let matrix pool =
      Runtime.Experiment.run_matrix ?pool ~scale:options.Runtime.Figures.scale
        ~seeds:options.Runtime.Figures.seeds
        ~lambda:options.Runtime.Figures.lambda
        ~base_seed:options.Runtime.Figures.base_seed
        ~workloads:Workloads.Catalog.paper_six ~algos:Runtime.Algo.all ()
    in
    let cells =
      if options.Runtime.Figures.jobs <= 1 then matrix None
      else
        Simkit.Pool.with_pool ~num_domains:options.Runtime.Figures.jobs
          (fun p -> matrix (Some p))
    in
    Runtime.Export.measurements_csv cells out;
    Format.printf "wrote %d cells to %s@." (List.length cells) out
  in
  Cmd.v (Cmd.info "matrix" ~doc) Term.(const run $ out_arg $ options_term)

(* --- serve: the streaming service mode (docs/SERVING.md) ----------- *)

let tcp_listener port =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.setsockopt fd Unix.SO_REUSEADDR true;
  Unix.bind fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  Unix.listen fd 16;
  fd

let unix_listener path =
  (try Unix.unlink path with Unix.Unix_error _ -> ());
  let fd = Unix.socket Unix.PF_UNIX Unix.SOCK_STREAM 0 in
  Unix.bind fd (Unix.ADDR_UNIX path);
  Unix.listen fd 16;
  fd

let serve_cmd =
  let doc =
    "Long-running service mode: stream (src, dst) requests into the \
     concurrent executor with bounded-queue back-pressure, counter-reset \
     epochs and live metrics."
  in
  let man =
    [
      `S Manpage.s_description;
      `P
        "Requests arrive as protocol lines ($(b,src,dst) per line; see \
         docs/SERVING.md) on stdin, a TCP port or a Unix-domain socket, or \
         from a load shape replayed deterministically with $(b,--replay).  \
         Arrivals are batched into rounds for the Cbnet.Concurrent \
         executor; a full ingest queue sheds or parks according to \
         $(b,--on-full); $(b,--decay-every)/$(b,--decay-secs) roll \
         counter-reset epochs so the weights track recent demand.";
      `P ("Shape grammar: " ^ Workloads.Shape.grammar);
    ]
  in
  let replay_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "replay" ] ~docv:"SHAPE"
          ~doc:
            "Replay a load shape under the virtual clock (deterministic per \
             $(b,--seed)) instead of reading live input.")
  in
  let stdin_arg =
    Arg.(value & flag & info [ "stdin" ] ~doc:"Read protocol lines from stdin.")
  in
  let listen_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "listen" ] ~docv:"PORT"
          ~doc:"Accept line-protocol connections on 127.0.0.1:$(docv).")
  in
  let unix_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "unix" ] ~docv:"PATH"
          ~doc:
            "Accept line-protocol connections on a Unix-domain socket at \
             $(docv) (mutually exclusive with $(b,--listen)).")
  in
  let metrics_port_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "metrics-port" ] ~docv:"PORT"
          ~doc:
            "Serve GET /metrics (Prometheus text exposition) on \
             127.0.0.1:$(docv).")
  in
  let n_arg =
    Arg.(
      value
      & opt int 256
      & info [ "n"; "nodes" ]
          ~doc:
            "Nodes of the served tree in live mode (replay takes it from \
             the shape).")
  in
  let queue_cap_arg =
    Arg.(
      value
      & opt int 1024
      & info [ "queue-cap" ]
          ~doc:"Ingest queue capacity (the back-pressure bound).")
  in
  let on_full_arg =
    Arg.(
      value
      & opt
          (enum
             [ ("shed", Servekit.Server.Shed); ("park", Servekit.Server.Park) ])
          Servekit.Server.Shed
      & info [ "on-full" ]
          ~doc:
            "Full-queue policy: $(b,shed) drops (and counts) arrivals, \
             $(b,park) stops reading so pressure reaches the sender.")
  in
  let batch_max_arg =
    Arg.(
      value
      & opt int 256
      & info [ "batch-max" ]
          ~doc:"Max requests per executor batch (0 = unbounded).")
  in
  let batch_min_arg =
    Arg.(
      value
      & opt int 1
      & info [ "batch-min" ]
          ~doc:"Wait for this many queued requests before batching.")
  in
  let decay_every_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "decay-every" ] ~docv:"ROUNDS"
          ~doc:"Roll a counter-reset epoch every $(docv) clock rounds.")
  in
  let decay_secs_arg =
    Arg.(
      value
      & opt (some float) None
      & info [ "decay-secs" ] ~docv:"SECS"
          ~doc:
            "Roll a counter-reset epoch every $(docv) seconds of wall time \
             (under $(b,--virtual-clock): microseconds-as-rounds).")
  in
  let decay_factor_arg =
    Arg.(
      value
      & opt float 0.25
      & info [ "decay-factor" ]
          ~doc:"Counter decay factor in [0, 1); 0 forgets everything.")
  in
  let virtual_clock_arg =
    Arg.(
      value & flag
      & info [ "virtual-clock" ]
          ~doc:
            "Deterministic round-based clock (replay always uses it; in \
             live mode it makes pipe-driven runs reproducible).")
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Write the final report as a serve JSON row to $(docv).")
  in
  let report_every_arg =
    Arg.(
      value
      & opt int 50
      & info [ "report-every" ]
          ~doc:"Status line to stderr every that many batches (0 = never).")
  in
  let window_arg =
    Arg.(
      value
      & opt (some int) None
      & info [ "window" ]
          ~doc:"Executor admission window (default: max 64 n).")
  in
  let run replay use_stdin listen_port unix_path metrics_port n queue_capacity
      policy batch_max batch_min decay_every decay_secs decay_factor
      virtual_clock out report_every window check_invariants domains seed =
    let domains = resolve_domains domains in
    let epoch =
      match (decay_every, decay_secs) with
      | None, None -> Servekit.Epoch.disabled ()
      | every_rounds, secs ->
          Servekit.Epoch.create ?every_rounds
            ?every_us:(Option.map (fun s -> s *. 1e6) secs)
            ~factor:decay_factor ()
    in
    let registry = Simkit.Metrics.create () in
    let status line = Format.eprintf "%s@." line in
    let emit_report ~shape ~n ~wall_seconds (r : Servekit.Server.report) =
      Format.printf "%a@." Servekit.Server.pp_report r;
      match out with
      | None -> ()
      | Some path ->
          let row =
            {
              Runtime.Export.shape;
              n;
              seed;
              requests = r.Servekit.Server.seen;
              admitted = r.Servekit.Server.admitted;
              shed = r.Servekit.Server.shed;
              batches = r.Servekit.Server.batches;
              decays = r.Servekit.Server.decays;
              busy_rounds = r.Servekit.Server.busy_rounds;
              idle_rounds = r.Servekit.Server.idle_rounds;
              messages = r.Servekit.Server.stats.Cbnet.Run_stats.messages;
              makespan = r.Servekit.Server.stats.Cbnet.Run_stats.makespan;
              q_max = r.Servekit.Server.max_queue_depth;
              q_p50 = Profkit.Histogram.p50 r.Servekit.Server.queue_depth;
              q_p95 = Profkit.Histogram.p95 r.Servekit.Server.queue_depth;
              q_p99 = Profkit.Histogram.p99 r.Servekit.Server.queue_depth;
              wall_seconds;
            }
          in
          Runtime.Export.serve_json ~commit:"unknown" ~timestamp:"unknown"
            [ row ] path;
          Format.printf "wrote serve report to %s@." path
    in
    match replay with
    | Some shape_str -> (
        match Workloads.Shape.of_string shape_str with
        | Error e ->
            prerr_endline e;
            exit 2
        | Ok shape ->
            let trace = Workloads.Shape.schedule shape ~seed in
            let n = trace.Workloads.Trace.n in
            let tree = Bstnet.Build.balanced n in
            let cfg =
              Servekit.Server.config ~queue_capacity ~policy ~batch_max
                ~batch_min ~domains ?window ~check_invariants ~n ()
            in
            let t0 = Obskit.Clock.now_us () in
            let report =
              Servekit.Server.replay ~epoch ~registry ~status ~report_every
                cfg tree
                (Workloads.Trace.to_runs trace)
            in
            let wall_seconds = (Obskit.Clock.now_us () -. t0) /. 1e6 in
            emit_report ~shape:(Workloads.Shape.label shape) ~n ~wall_seconds
              report)
    | None ->
        if (not use_stdin) && Option.is_none listen_port
           && Option.is_none unix_path
        then begin
          prerr_endline
            "cbnet serve: need an input source (--replay, --stdin, --listen \
             or --unix)";
          exit 2
        end;
        if Option.is_some listen_port && Option.is_some unix_path then begin
          prerr_endline "cbnet serve: --listen and --unix are exclusive";
          exit 2
        end;
        let tree = Bstnet.Build.balanced n in
        let cfg =
          Servekit.Server.config ~queue_capacity ~policy ~batch_max ~batch_min
            ~domains ?window ~check_invariants ~n ()
        in
        let clock =
          if virtual_clock then Servekit.Vclock.virtual_ ()
          else Servekit.Vclock.wall ()
        in
        let feeds = if use_stdin then [ Unix.stdin ] else [] in
        let listen =
          match (listen_port, unix_path) with
          | Some port, _ -> Some (tcp_listener port)
          | None, Some path -> Some (unix_listener path)
          | None, None -> None
        in
        let metrics =
          Option.map
            (fun port ->
              ( tcp_listener port,
                fun () -> Runtime.Export.prometheus_string registry ))
            metrics_port
        in
        let stop_flag = ref false in
        let request_stop _ = stop_flag := true in
        Sys.set_signal Sys.sigterm (Sys.Signal_handle request_stop);
        Sys.set_signal Sys.sigint (Sys.Signal_handle request_stop);
        let t0 = Obskit.Clock.now_us () in
        let report =
          Servekit.Server.serve ~epoch ~registry ~status ~report_every ~clock
            ?listen ?metrics
            ~stop:(fun () -> !stop_flag)
            cfg tree feeds
        in
        let wall_seconds = (Obskit.Clock.now_us () -. t0) /. 1e6 in
        (match listen with Some fd -> Unix.close fd | None -> ());
        (match metrics with Some (fd, _) -> Unix.close fd | None -> ());
        (match unix_path with
        | Some path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
        | None -> ());
        emit_report ~shape:"live" ~n ~wall_seconds report
  in
  Cmd.v
    (Cmd.info "serve" ~doc ~man)
    Term.(
      const run $ replay_arg $ stdin_arg $ listen_arg $ unix_arg
      $ metrics_port_arg $ n_arg $ queue_cap_arg $ on_full_arg $ batch_max_arg
      $ batch_min_arg $ decay_every_arg $ decay_secs_arg $ decay_factor_arg
      $ virtual_clock_arg $ out_arg $ report_every_arg $ window_arg
      $ check_invariants_arg $ domains_arg $ base_seed_arg)

let main =
  let doc = "CBNet: concurrent counting-based self-adjusting tree networks" in
  let info = Cmd.info "cbnet" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      figure_cmd "fig2" "Reproduce Fig. 2 (trace map)." Runtime.Figures.fig2;
      figure_cmd "fig3" "Reproduce Fig. 3 (work cost)." Runtime.Figures.fig3;
      figure_cmd "fig4" "Reproduce Fig. 4 (makespan & throughput)." Runtime.Figures.fig4;
      figure_cmd "thm1" "Validate Theorem 1 (routing vs entropy)." Runtime.Figures.thm1;
      figure_cmd "thm2" "Validate Theorem 2 (rotation bound)." Runtime.Figures.thm2;
      figure_cmd "ablation-delta" "Rotation-threshold sweep." Runtime.Figures.ablation_delta;
      figure_cmd "ablation-reset" "Counter-reset extension." Runtime.Figures.ablation_reset;
      figure_cmd "ablation-mtr" "Move-to-root contrast." Runtime.Figures.ablation_mtr;
      figure_cmd "all" "Reproduce every artifact." Runtime.Figures.all;
      figure_cmd "timeline-fig" "Adaptation timelines." Runtime.Figures.timeline;
      figure_cmd "latency" "Delivery-latency percentiles." Runtime.Figures.latency;
      run_cmd;
      serve_cmd;
      report_cmd;
      complexity_cmd;
      export_cmd;
      timeline_cmd;
      matrix_cmd;
    ]

let () = exit (Cmd.eval main)
