(* Command-line driver: run single experiments, reproduce the paper's
   figures, inspect workloads.  `cbnet --help` lists everything. *)

open Cmdliner

let scale_arg =
  let conv_scale =
    Arg.enum
      [
        ("smoke", Workloads.Catalog.Smoke);
        ("default", Workloads.Catalog.Default);
        ("full", Workloads.Catalog.Full);
      ]
  in
  Arg.(
    value
    & opt conv_scale Workloads.Catalog.Default
    & info [ "scale" ]
        ~doc:
          "Workload scale: $(b,smoke) (seconds), $(b,default) (minutes) or \
           $(b,full) (paper sizes).")

let seeds_arg =
  Arg.(value & opt int 5 & info [ "seeds" ] ~doc:"Repetitions per cell (paper: 30).")

let lambda_arg =
  Arg.(value & opt float 0.05 & info [ "lambda" ] ~doc:"Poisson arrival parameter (Sec. IX-B).")

let base_seed_arg =
  Arg.(value & opt int 1 & info [ "seed" ] ~doc:"Base random seed.")

let jobs_arg =
  Arg.(
    value
    & opt int 1
    & info [ "jobs"; "j" ]
        ~doc:
          "Worker domains for multi-seed runs (results are bit-identical at \
           every setting); 0 = CBNET_JOBS or cores - 1.")

let options_term =
  let make scale seeds lambda base_seed jobs =
    let jobs = if jobs <= 0 then Simkit.Pool.default_jobs () else jobs in
    { Runtime.Figures.scale; seeds; lambda; base_seed; jobs }
  in
  Term.(const make $ scale_arg $ seeds_arg $ lambda_arg $ base_seed_arg $ jobs_arg)

let figure_cmd name doc
    (render : ?options:Runtime.Figures.options -> Format.formatter -> unit) =
  let run options = render ~options Format.std_formatter in
  Cmd.v (Cmd.info name ~doc) Term.(const run $ options_term)

let workload_arg =
  Arg.(
    required
    & opt (some (enum (List.map (fun k -> (k, k)) Workloads.Catalog.keys))) None
    & info [ "workload"; "w" ] ~doc:"Workload name.")

let algo_arg =
  let algos =
    List.map
      (fun a -> (Runtime.Algo.name a, a))
      (Runtime.Algo.all @ [ Runtime.Algo.CBN_FOREST ])
  in
  Arg.(
    required
    & opt (some (enum algos)) None
    & info [ "algo"; "a" ]
        ~doc:
          "Algorithm: BT, OPT, SN, DSN, SCBN, CBN or CBN-forest (the sharded \
           overlay; size it with $(b,--shards)).")

let trace_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "trace" ] ~docv:"FILE"
        ~doc:
          "Write a Chrome trace-event JSON of the run to $(docv) (open in \
           Perfetto or chrome://tracing).")

let metrics_file_arg =
  Arg.(
    value
    & opt (some string) None
    & info [ "metrics" ] ~docv:"FILE"
        ~doc:
          "Write run metrics to $(docv) in the Prometheus text exposition \
           format.")

let domains_arg =
  Arg.(
    value
    & opt int 1
    & info [ "domains"; "d" ]
        ~doc:
          "Domains for the CBN executor's intra-run plan wave (results are \
           bit-identical at every setting); 0 = all recommended cores.  \
           Other algorithms ignore it.")

let resolve_domains d =
  if d < 0 then failwith "--domains must be >= 0"
  else if d = 0 then Domain.recommended_domain_count ()
  else d

let shards_arg =
  Arg.(
    value
    & opt int 1
    & info [ "shards"; "k" ]
        ~doc:
          "Shards of the CBN-forest directory (contiguous key ranges; results \
           are bit-identical at every shards x domains combination).  Other \
           algorithms ignore it.")

let check_invariants_arg =
  Arg.(
    value & flag
    & info [ "check-invariants" ]
        ~doc:
          "Audit the final tree with the structural invariant suite \
           (parent/child links, BST order, interval labels) and fail on a \
           violation.")

let run_cmd =
  let doc = "Run one algorithm on one workload and print its statistics." in
  let run workload algo trace_file metrics_file check_invariants domains
      shards options =
    let domains = resolve_domains domains in
    let trace =
      Runtime.Experiment.trace_for ~scale:options.Runtime.Figures.scale
        ~lambda:options.Runtime.Figures.lambda ~workload
        ~seed:options.Runtime.Figures.base_seed ()
    in
    Format.printf "%a@." Workloads.Trace.pp_summary trace;
    let ring =
      match trace_file with
      | Some _ -> Some (Obskit.Sink.Ring.create ~capacity:1_000_000)
      | None -> None
    in
    let registry =
      match metrics_file with
      | Some _ -> Some (Simkit.Metrics.create ())
      | None -> None
    in
    let sink =
      Obskit.Sink.tee
        ((match ring with Some r -> [ Obskit.Sink.Ring.sink r ] | None -> [])
        @
        match registry with
        | Some reg -> [ Runtime.Telemetry.metrics_sink reg ]
        | None -> [])
    in
    let stats =
      Runtime.Algo.run ~sink ~check_invariants ~domains ~shards algo trace
    in
    Format.printf "%s: %a@." (Runtime.Algo.name algo) Cbnet.Run_stats.pp stats;
    (match (trace_file, ring) with
    | Some path, Some r ->
        let dropped = Obskit.Sink.Ring.dropped r in
        Runtime.Export.chrome_trace ~dropped (Obskit.Sink.Ring.contents r) path;
        Format.printf "wrote %d trace events to %s%s@."
          (Obskit.Sink.Ring.length r)
          path
          (if dropped > 0 then Printf.sprintf " (%d oldest dropped)" dropped
           else "")
    | _ -> ());
    match (metrics_file, registry) with
    | Some path, Some reg ->
        let events_dropped =
          match ring with Some r -> Obskit.Sink.Ring.dropped r | None -> 0
        in
        Runtime.Export.prometheus ~events_dropped reg path;
        Format.printf "wrote metrics to %s@." path
    | _ -> ()
  in
  Cmd.v (Cmd.info "run" ~doc)
    Term.(
      const run $ workload_arg $ algo_arg $ trace_file_arg $ metrics_file_arg
      $ check_invariants_arg $ domains_arg $ shards_arg $ options_term)

let report_profile_cmd =
  let doc =
    "Run the concurrent CBNet executor on one workload with phase-level \
     self-profiling and print the attribution report."
  in
  let out_arg =
    Arg.(
      value
      & opt (some string) None
      & info [ "out"; "o" ] ~docv:"FILE"
          ~doc:"Also write the machine-readable profile JSON to $(docv).")
  in
  let run workload out check_invariants domains options =
    let domains = resolve_domains domains in
    let trace =
      Runtime.Experiment.trace_for ~scale:options.Runtime.Figures.scale
        ~lambda:options.Runtime.Figures.lambda ~workload
        ~seed:options.Runtime.Figures.base_seed ()
    in
    Format.printf "%a@." Workloads.Trace.pp_summary trace;
    let profile = Profkit.Profile.create () in
    let stats =
      Runtime.Algo.run ~profile ~check_invariants ~domains Runtime.Algo.CBN
        trace
    in
    Format.printf "CBN: %a@." Cbnet.Run_stats.pp stats;
    Runtime.Report.profile
      ~title:
        (Printf.sprintf "CBN phase attribution (%s, domains=%d)" workload
           domains)
      profile Format.std_formatter;
    match out with
    | Some path ->
        Runtime.Export.profile_json ~commit:"cli" ~timestamp:"" ~workload
          ~domains profile path;
        Format.printf "wrote profile to %s@." path
    | None -> ()
  in
  Cmd.v (Cmd.info "profile" ~doc)
    Term.(
      const run $ workload_arg $ out_arg $ check_invariants_arg $ domains_arg
      $ options_term)

let report_cmd =
  let doc = "Self-profiling reports of the executors." in
  Cmd.group (Cmd.info "report" ~doc) [ report_profile_cmd ]

let complexity_cmd =
  let doc = "Measure the trace complexity (T, NT, Psi) of a workload." in
  let run workload options =
    let entry = Workloads.Catalog.find workload in
    let trace =
      entry.Workloads.Catalog.generate options.Runtime.Figures.scale
        ~seed:options.Runtime.Figures.base_seed
    in
    let r =
      Tracekit.Complexity.measure ~seed:(options.Runtime.Figures.base_seed + 17) trace
    in
    Format.printf "%s: %a@." workload Tracekit.Complexity.pp r
  in
  Cmd.v (Cmd.info "complexity" ~doc) Term.(const run $ workload_arg $ options_term)

let export_cmd =
  let doc = "Generate a workload and write it to a CSV file." in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc:"Output path.")
  in
  let run workload out options =
    let trace =
      Runtime.Experiment.trace_for ~scale:options.Runtime.Figures.scale
        ~lambda:options.Runtime.Figures.lambda ~workload
        ~seed:options.Runtime.Figures.base_seed ()
    in
    Workloads.Trace.save_csv trace out;
    Format.printf "wrote %a to %s@." Workloads.Trace.pp_summary trace out
  in
  Cmd.v (Cmd.info "export" ~doc)
    Term.(const run $ workload_arg $ out_arg $ options_term)

let timeline_cmd =
  let doc = "Print the adaptation timeline of sequential CBNet on a workload." in
  let window_arg =
    Arg.(value & opt int 1000 & info [ "window" ] ~doc:"Messages per window.")
  in
  let run workload window options =
    let entry = Workloads.Catalog.find workload in
    let trace =
      entry.Workloads.Catalog.generate options.Runtime.Figures.scale
        ~seed:options.Runtime.Figures.base_seed
    in
    Runtime.Timeline.pp Format.std_formatter
      (Runtime.Timeline.sequential_cbnet ~window trace)
  in
  Cmd.v (Cmd.info "timeline" ~doc)
    Term.(const run $ workload_arg $ window_arg $ options_term)

let matrix_cmd =
  let doc =
    "Run the full (workload x algorithm) matrix and write a CSV of the      aggregated measurements."
  in
  let out_arg =
    Arg.(required & opt (some string) None & info [ "out"; "o" ] ~doc:"Output CSV path.")
  in
  let run out options =
    let matrix pool =
      Runtime.Experiment.run_matrix ?pool ~scale:options.Runtime.Figures.scale
        ~seeds:options.Runtime.Figures.seeds
        ~lambda:options.Runtime.Figures.lambda
        ~base_seed:options.Runtime.Figures.base_seed
        ~workloads:Workloads.Catalog.paper_six ~algos:Runtime.Algo.all ()
    in
    let cells =
      if options.Runtime.Figures.jobs <= 1 then matrix None
      else
        Simkit.Pool.with_pool ~num_domains:options.Runtime.Figures.jobs
          (fun p -> matrix (Some p))
    in
    Runtime.Export.measurements_csv cells out;
    Format.printf "wrote %d cells to %s@." (List.length cells) out
  in
  Cmd.v (Cmd.info "matrix" ~doc) Term.(const run $ out_arg $ options_term)

let main =
  let doc = "CBNet: concurrent counting-based self-adjusting tree networks" in
  let info = Cmd.info "cbnet" ~version:"1.0.0" ~doc in
  Cmd.group info
    [
      figure_cmd "fig2" "Reproduce Fig. 2 (trace map)." Runtime.Figures.fig2;
      figure_cmd "fig3" "Reproduce Fig. 3 (work cost)." Runtime.Figures.fig3;
      figure_cmd "fig4" "Reproduce Fig. 4 (makespan & throughput)." Runtime.Figures.fig4;
      figure_cmd "thm1" "Validate Theorem 1 (routing vs entropy)." Runtime.Figures.thm1;
      figure_cmd "thm2" "Validate Theorem 2 (rotation bound)." Runtime.Figures.thm2;
      figure_cmd "ablation-delta" "Rotation-threshold sweep." Runtime.Figures.ablation_delta;
      figure_cmd "ablation-reset" "Counter-reset extension." Runtime.Figures.ablation_reset;
      figure_cmd "ablation-mtr" "Move-to-root contrast." Runtime.Figures.ablation_mtr;
      figure_cmd "all" "Reproduce every artifact." Runtime.Figures.all;
      figure_cmd "timeline-fig" "Adaptation timelines." Runtime.Figures.timeline;
      figure_cmd "latency" "Delivery-latency percentiles." Runtime.Figures.latency;
      run_cmd;
      report_cmd;
      complexity_cmd;
      export_cmd;
      timeline_cmd;
      matrix_cmd;
    ]

let () = exit (Cmd.eval main)
