(* CBNet's lint driver: parse every .ml/.mli under the given paths
   with compiler-libs and enforce the concurrency/hot-path invariants
   (see docs/LINTING.md).  Exit 0 when clean, 1 on findings or stale
   baseline entries, 2 on usage errors. *)

let default_baseline = "lint/baseline.txt"

let usage () =
  prerr_endline
    "usage: cbnet_lint [options] <dir|file>...\n\
     \n\
     Static analysis enforcing CBNet's concurrency and hot-path\n\
     invariants.  See docs/LINTING.md for the rule catalog.\n\
     \n\
     options:\n\
    \  --baseline FILE    baseline ratchet file (default lint/baseline.txt\n\
    \                     when it exists)\n\
    \  --no-baseline      ignore any baseline file\n\
    \  --update-baseline  rewrite the baseline with the current findings\n\
    \  --only R1,R2       enable only these rules\n\
    \  --disable R1,R2    disable these rules\n\
    \  --format FMT       finding output: plain (default) or github\n\
    \                     (::error workflow annotations)\n\
    \  --list-rules       print the rule catalog and exit\n\
     \n\
     exit status: 0 clean, 1 findings or stale baseline entries, 2 usage"

let split_rules s =
  String.split_on_char ',' s
  |> List.map String.trim
  |> List.filter (fun r -> not (String.equal r ""))

let bad_usage msg =
  Printf.eprintf "cbnet_lint: %s\n\n" msg;
  usage ();
  exit 2

let validate_rules rules =
  List.iter
    (fun r ->
      if not (Lintkit.Rules.known r) then
        bad_usage (Printf.sprintf "unknown rule %S (try --list-rules)" r))
    rules

(* GitHub workflow-command data escaping: the message part escapes
   %/CR/LF, the property parts additionally , and :. *)
let gh_escape_data s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '\r' -> Buffer.add_string b "%0D"
      | '\n' -> Buffer.add_string b "%0A"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let gh_escape_prop s =
  let b = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '%' -> Buffer.add_string b "%25"
      | '\r' -> Buffer.add_string b "%0D"
      | '\n' -> Buffer.add_string b "%0A"
      | ',' -> Buffer.add_string b "%2C"
      | ':' -> Buffer.add_string b "%3A"
      | c -> Buffer.add_char b c)
    s;
  Buffer.contents b

let print_finding ~format (f : Lintkit.Finding.t) =
  match format with
  | `Plain -> print_endline (Lintkit.Finding.to_string f)
  | `Github ->
      Printf.printf "::error file=%s,line=%d,col=%d,title=%s::%s\n"
        (gh_escape_prop f.Lintkit.Finding.file)
        f.Lintkit.Finding.line f.Lintkit.Finding.col
        (gh_escape_prop f.Lintkit.Finding.rule)
        (gh_escape_data f.Lintkit.Finding.message)

let print_stale ~format ~baseline_file key =
  match format with
  | `Plain ->
      Printf.printf "stale baseline entry (fixed — remove it from %s): %s\n"
        baseline_file key
  | `Github ->
      Printf.printf "::error title=stale-baseline::%s\n"
        (gh_escape_data
           (Printf.sprintf
              "stale baseline entry (fixed — remove it from %s): %s"
              baseline_file key))

let () =
  let paths = ref [] in
  let baseline_path = ref None in
  let no_baseline = ref false in
  let update_baseline = ref false in
  let only = ref None in
  let disabled = ref [] in
  let format = ref `Plain in
  let args = Array.to_list Sys.argv |> List.tl in
  let rec parse = function
    | [] -> ()
    | "--list-rules" :: _ ->
        List.iter
          (fun (id, desc) -> Printf.printf "%-16s %s\n" id desc)
          Lintkit.Rules.all;
        exit 0
    | "--baseline" :: file :: rest ->
        baseline_path := Some file;
        parse rest
    | "--baseline" :: [] -> bad_usage "--baseline needs a file argument"
    | "--no-baseline" :: rest ->
        no_baseline := true;
        parse rest
    | "--update-baseline" :: rest ->
        update_baseline := true;
        parse rest
    | "--only" :: rules :: rest ->
        let rules = split_rules rules in
        validate_rules rules;
        only := Some rules;
        parse rest
    | "--only" :: [] -> bad_usage "--only needs a rule list"
    | "--disable" :: rules :: rest ->
        let rules = split_rules rules in
        validate_rules rules;
        disabled := rules @ !disabled;
        parse rest
    | "--disable" :: [] -> bad_usage "--disable needs a rule list"
    | "--format" :: fmt :: rest ->
        (match fmt with
        | "plain" -> format := `Plain
        | "github" -> format := `Github
        | other ->
            bad_usage
              (Printf.sprintf "unknown format %S (expected plain or github)"
                 other));
        parse rest
    | "--format" :: [] -> bad_usage "--format needs plain or github"
    | arg :: _ when String.length arg > 2 && String.equal (String.sub arg 0 2) "--"
      ->
        bad_usage (Printf.sprintf "unknown option %s" arg)
    | path :: rest ->
        paths := path :: !paths;
        parse rest
  in
  parse args;
  let paths = List.rev !paths in
  if List.is_empty paths then bad_usage "no files or directories given";
  List.iter
    (fun p -> if not (Sys.file_exists p) then bad_usage (p ^ ": no such path"))
    paths;
  let enabled rule =
    (match !only with
    | Some rules -> List.exists (String.equal rule) rules
    | None -> true)
    && not (List.exists (String.equal rule) !disabled)
  in
  let baseline_file =
    if !no_baseline then None
    else
      match !baseline_path with
      | Some f -> Some f
      | None -> if Sys.file_exists default_baseline then Some default_baseline
                else None
  in
  let passes = [ Effectkit.Analyze.pass ] in
  if !update_baseline then begin
    let target =
      match !baseline_path with Some f -> f | None -> default_baseline
    in
    let outcome = Lintkit.Engine.run ~enabled ~passes paths in
    let keys = List.map Lintkit.Finding.key outcome.Lintkit.Engine.findings in
    Lintkit.Baseline.save target keys;
    Printf.printf "cbnet_lint: wrote %d baseline entries to %s\n"
      (List.length (List.sort_uniq String.compare keys))
      target;
    exit 0
  end;
  let baseline = Option.map Lintkit.Baseline.load baseline_file in
  let outcome = Lintkit.Engine.run ~enabled ~passes ?baseline paths in
  List.iter
    (fun f -> print_finding ~format:!format f)
    outcome.Lintkit.Engine.findings;
  List.iter
    (print_stale ~format:!format
       ~baseline_file:(Option.value baseline_file ~default:default_baseline))
    outcome.Lintkit.Engine.stale;
  Printf.eprintf
    "cbnet_lint: %d finding(s), %d baselined, %d suppressed in %d file(s)\n"
    (List.length outcome.Lintkit.Engine.findings)
    outcome.Lintkit.Engine.baselined outcome.Lintkit.Engine.suppressed
    outcome.Lintkit.Engine.files;
  exit (if Lintkit.Engine.clean outcome then 0 else 1)
