(* Extensions beyond the paper's core: move-to-root contrast, tunable
   locality, adaptation timelines, CSV export, latency capture. *)

module T = Bstnet.Topology

(* ---------------- move-to-root ---------------- *)

let test_mtr_delivers_and_valid () =
  let rng = Simkit.Rng.create 3 in
  let n = 63 in
  let m = 500 in
  let t = Bstnet.Build.balanced n in
  let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let stats = Baselines.Move_to_root.run t trace in
  Alcotest.(check int) "delivered" m stats.Cbnet.Run_stats.messages;
  Bstnet.Check.assert_ok (Bstnet.Check.structure t);
  Bstnet.Check.assert_ok (Bstnet.Check.bst_order t)

let test_mtr_repeat_pair_cheap () =
  let t = Bstnet.Build.balanced 63 in
  let trace = Array.init 100 (fun i -> (i, 5, 40)) in
  let stats = Baselines.Move_to_root.run t trace in
  Alcotest.(check bool) "adjacency reached" true (T.parent t 40 = 5);
  Alcotest.(check bool) "few rotations after first" true
    (stats.Cbnet.Run_stats.rotations < 30)

let test_mtr_loses_to_splay_under_adversary () =
  (* The depth-halving contrast of Sec. II: under the deep-access
     adversary, move-to-root must do strictly more work than SplayNet
     and than CBNet. *)
  let n = 64 in
  let m = 1500 in
  let run exec =
    let t = Bstnet.Build.path n in
    Runtime.Adversary.online_worst_case ~m t ~next:Runtime.Adversary.deep_access
      (fun trace -> exec t trace)
  in
  let mtr = run (fun t tr -> Baselines.Move_to_root.run t tr) in
  let sn = run (fun t tr -> Baselines.Splaynet.run t tr) in
  let scbn = run (fun t tr -> Cbnet.Sequential.run t tr) in
  Alcotest.(check bool)
    (Printf.sprintf "MTR %.0f > SN %.0f" mtr.Cbnet.Run_stats.work sn.Cbnet.Run_stats.work)
    true
    (mtr.Cbnet.Run_stats.work > sn.Cbnet.Run_stats.work);
  Alcotest.(check bool)
    (Printf.sprintf "MTR %.0f > SCBN %.0f" mtr.Cbnet.Run_stats.work
       scbn.Cbnet.Run_stats.work)
    true
    (mtr.Cbnet.Run_stats.work > scbn.Cbnet.Run_stats.work)

(* ---------------- tunable locality ---------------- *)

let test_tunable_knobs_move_complexity () =
  let measure temporal alpha =
    let t = Workloads.Tunable.generate ~n:256 ~m:8000 ~temporal ~alpha ~seed:5 () in
    Tracekit.Complexity.measure ~seed:9 t
  in
  let base = measure 0.0 0.0 in
  let temporal = measure 0.9 0.0 in
  let skewed = measure 0.0 2.0 in
  Alcotest.(check bool) "neutral near (1,1)" true
    (base.Tracekit.Complexity.temporal > 0.9
    && base.Tracekit.Complexity.non_temporal > 0.8);
  Alcotest.(check bool) "temporal knob lowers T" true
    (temporal.Tracekit.Complexity.temporal < base.Tracekit.Complexity.temporal -. 0.1);
  Alcotest.(check bool) "alpha knob lowers NT" true
    (skewed.Tracekit.Complexity.non_temporal
    < base.Tracekit.Complexity.non_temporal -. 0.1)

let test_tunable_validation () =
  Alcotest.check_raises "temporal range"
    (Invalid_argument "Tunable.generate: temporal must be in [0, 1)") (fun () ->
      ignore (Workloads.Tunable.generate ~temporal:1.0 ~seed:1 ()))

let test_tunable_grid () =
  let grid =
    Workloads.Tunable.grid ~n:64 ~m:500 ~seed:3 ~temporal_levels:[ 0.0; 0.5 ]
      ~alpha_levels:[ 0.0; 1.0; 2.0 ] ()
  in
  Alcotest.(check int) "6 combinations" 6 (List.length grid);
  List.iter
    (fun (_, _, t) -> Alcotest.(check int) "length" 500 (Workloads.Trace.length t))
    grid

(* ---------------- timeline ---------------- *)

let test_timeline_windows () =
  let trace = Workloads.Skewed.generate ~n:64 ~m:3000 ~support:300 ~seed:7 () in
  let points = Runtime.Timeline.sequential_cbnet ~window:1000 trace in
  Alcotest.(check int) "three windows" 3 (List.length points);
  List.iteri
    (fun i p ->
      Alcotest.(check int) "index" i p.Runtime.Timeline.window_index;
      Alcotest.(check int) "messages" 1000 p.Runtime.Timeline.messages;
      Alcotest.(check bool) "positive routing" true
        (p.Runtime.Timeline.amortized_routing > 0.0))
    points;
  (* Potential is cumulative and non-decreasing across windows. *)
  let phis = List.map (fun p -> p.Runtime.Timeline.phi) points in
  Alcotest.(check bool) "phi grows" true (List.sort compare phis = phis)

let test_timeline_converges_on_skew () =
  let trace = Workloads.Skewed.generate ~n:256 ~m:10_000 ~alpha:2.5 ~support:512 ~seed:11 () in
  let points = Runtime.Timeline.sequential_cbnet ~window:2000 trace in
  match (List.nth_opt points 0, List.nth_opt points 4) with
  | Some first, Some last ->
      Alcotest.(check bool)
        (Printf.sprintf "improved %.2f -> %.2f"
           first.Runtime.Timeline.amortized_routing
           last.Runtime.Timeline.amortized_routing)
        true
        (last.Runtime.Timeline.amortized_routing
        <= first.Runtime.Timeline.amortized_routing +. 0.2)
  | _ -> Alcotest.fail "expected 5 windows"

(* ---------------- export ---------------- *)

let test_measurements_csv () =
  let cell =
    Runtime.Experiment.run_cell ~seeds:2 ~workload:"uniform" ~algo:Runtime.Algo.BT ()
  in
  let path = Filename.temp_file "cells" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Runtime.Export.measurements_csv [ cell ] path;
      let ic = open_in path in
      let header = input_line ic in
      let row = input_line ic in
      close_in ic;
      Alcotest.(check bool) "header" true
        (String.length header > 20 && String.sub header 0 8 = "workload");
      Alcotest.(check bool) "row tagged" true
        (String.length row > 10 && String.sub row 0 7 = "uniform"))

let test_latencies_csv () =
  let path = Filename.temp_file "lat" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Runtime.Export.latencies_csv [| 1.0; 2.0; 3.0 |] path;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> ());
      close_in ic;
      Alcotest.(check int) "header + 3 rows + 8 summary lines" 12
        (List.length !lines);
      List.iter
        (fun prefix ->
          Alcotest.(check bool)
            (Printf.sprintf "summary line %s present" prefix)
            true
            (List.exists
               (fun l ->
                 String.length l >= String.length prefix
                 && String.sub l 0 (String.length prefix) = prefix)
               !lines))
        [ "# p50 = "; "# p95 = "; "# p99 = "; "# mean = " ])

(* ---------------- latency capture ---------------- *)

let test_run_with_latencies () =
  let rng = Simkit.Rng.create 13 in
  let n = 31 in
  let m = 300 in
  let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
  let t = Bstnet.Build.balanced n in
  let stats, lats = Cbnet.Concurrent.run_with_latencies t trace in
  Alcotest.(check int) "one latency per message" m (Array.length lats);
  Alcotest.(check int) "stats agree" m stats.Cbnet.Run_stats.messages;
  Array.iter (fun l -> if l < 0.0 then Alcotest.fail "negative latency") lats;
  let max_lat = Array.fold_left Float.max 0.0 lats in
  Alcotest.(check bool) "bounded by makespan" true
    (int_of_float max_lat <= stats.Cbnet.Run_stats.makespan + 1)

let () =
  Alcotest.run "extensions"
    [
      ( "move-to-root",
        [
          Alcotest.test_case "delivers" `Quick test_mtr_delivers_and_valid;
          Alcotest.test_case "repeat pair" `Quick test_mtr_repeat_pair_cheap;
          Alcotest.test_case "loses to splay" `Quick test_mtr_loses_to_splay_under_adversary;
        ] );
      ( "tunable",
        [
          Alcotest.test_case "knobs" `Quick test_tunable_knobs_move_complexity;
          Alcotest.test_case "validation" `Quick test_tunable_validation;
          Alcotest.test_case "grid" `Quick test_tunable_grid;
        ] );
      ( "timeline",
        [
          Alcotest.test_case "windows" `Quick test_timeline_windows;
          Alcotest.test_case "convergence" `Quick test_timeline_converges_on_skew;
        ] );
      ( "export",
        [
          Alcotest.test_case "measurements csv" `Quick test_measurements_csv;
          Alcotest.test_case "latencies csv" `Quick test_latencies_csv;
        ] );
      ( "latency",
        [ Alcotest.test_case "capture" `Quick test_run_with_latencies ] );
    ]
