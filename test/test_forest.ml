(* The sharded forest overlay: directory partition arithmetic, router
   leg decomposition, and — the load-bearing property — bit-identity
   of the forest against the single-tree oracle at 1 shard, and of the
   forest against itself at every domain count and shard execution
   order. *)

module Dir = Forest.Directory
module Router = Forest.Router
module Overlay = Forest.Overlay
module Build = Bstnet.Build
module Conc = Cbnet.Concurrent
module Stats = Cbnet.Run_stats

let trace_for ~workload ~n ~m ~seed =
  let trace = Workloads.Catalog.scaled workload ~n ~m ~seed in
  let rng = Simkit.Rng.create (seed lxor 0x5bd1e995) in
  Workloads.Trace.to_runs
    (Workloads.Trace.with_poisson_births rng ~lambda:0.05 trace)

let check_stats ctx (a : Stats.t) (b : Stats.t) =
  let s x = Format.asprintf "%a" Stats.pp x in
  Alcotest.(check string) (ctx ^ ": run stats") (s b) (s a);
  Alcotest.(check bool)
    (ctx ^ ": stats bit-identical") true
    (a.Stats.work = b.Stats.work
    && a.Stats.throughput = b.Stats.throughput
    && { a with Stats.work = 0.0; throughput = 0.0 }
       = { b with Stats.work = 0.0; throughput = 0.0 })

let check_trees ctx ta tb =
  Alcotest.(check string)
    (ctx ^ ": final tree")
    (Bstnet.Serialize.to_string tb)
    (Bstnet.Serialize.to_string ta)

let capture_payloads run =
  let acc = ref [] in
  let sink =
    Obskit.Sink.stream (fun (e : Obskit.Event.t) ->
        acc := e.Obskit.Event.payload :: !acc)
  in
  let result = run sink in
  (result, List.rev !acc)

(* {2 Directory} *)

let test_directory_partition () =
  List.iter
    (fun (n, k) ->
      let d = Dir.create ~n ~shards:k in
      let total = ref 0 in
      for s = 0 to k - 1 do
        let size = Dir.size d s in
        Alcotest.(check bool)
          (Printf.sprintf "n=%d k=%d shard %d has >= 2 keys" n k s)
          true (size >= 2);
        Alcotest.(check int)
          (Printf.sprintf "n=%d k=%d shard %d contiguous" n k s)
          (Dir.lo d s + size - 1) (Dir.hi d s);
        if s > 0 then
          Alcotest.(check int)
            (Printf.sprintf "n=%d k=%d shard %d starts after %d" n k s (s - 1))
            (Dir.hi d (s - 1) + 1)
            (Dir.lo d s);
        Alcotest.(check bool)
          (Printf.sprintf "n=%d k=%d sizes near-equal" n k)
          true
          (abs (size - Dir.size d 0) <= 1);
        total := !total + size
      done;
      Alcotest.(check int) (Printf.sprintf "n=%d k=%d sizes sum" n k) n !total;
      for g = 0 to n - 1 do
        let s = Dir.shard_of d g in
        if g < Dir.lo d s || g > Dir.hi d s then
          Alcotest.failf "n=%d k=%d key %d mapped outside shard %d" n k g s;
        Alcotest.(check int)
          (Printf.sprintf "n=%d k=%d key %d roundtrip" n k g)
          g
          (Dir.global_of d ~shard:s (Dir.local_of d g))
      done)
    [ (2, 1); (7, 3); (16, 4); (100, 7); (1024, 16); (1000, 13) ]

let test_directory_validation () =
  let rejects label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  rejects "n < 2" (fun () -> Dir.create ~n:1 ~shards:1);
  rejects "shards < 1" (fun () -> Dir.create ~n:16 ~shards:0);
  rejects "one-key shards" (fun () -> Dir.create ~n:7 ~shards:4);
  ignore (Dir.create ~n:8 ~shards:4)

(* {2 Router} *)

let test_router_decomposition () =
  let d = Dir.create ~n:16 ~shards:3 in
  (* Sizes 6, 5, 5: shard 0 owns [0,5], shard 1 [6,10], shard 2 [11,15]. *)
  let trace =
    [| (0, 1, 4); (1, 2, 12); (3, 9, 9); (3, 15, 0); (7, 6, 10) |]
  in
  let r = Router.build d trace in
  Alcotest.(check int) "intra" 3 r.Router.intra;
  Alcotest.(check int) "cross" 2 r.Router.cross;
  let legs =
    Array.fold_left (fun a runs -> a + Array.length runs) 0 r.Router.runs
  in
  Alcotest.(check int) "leg conservation"
    (r.Router.intra + (2 * r.Router.cross))
    legs;
  (* Shard 0: intra (0,1,4); up-leg of (1,2,12) to its top boundary,
     local 5; down-leg of (3,15,0) arriving at its top boundary. *)
  Alcotest.(check (array (triple int int int)))
    "shard 0 legs"
    [| (0, 1, 4); (1, 2, 5); (3, 5, 0) |]
    r.Router.runs.(0);
  Alcotest.(check (array (triple int int int)))
    "shard 1 legs"
    [| (3, 3, 3); (7, 0, 4) |]
    r.Router.runs.(1);
  Alcotest.(check (array (triple int int int)))
    "shard 2 legs"
    [| (1, 0, 1); (3, 4, 0) |]
    r.Router.runs.(2);
  Alcotest.(check (array int)) "first births" [| 0; 3; 1 |]
    r.Router.first_births;
  (* Sub-traces stay birth-sorted for any input. *)
  let big = trace_for ~workload:"uniform" ~n:100 ~m:2_000 ~seed:11 in
  let r = Router.build (Dir.create ~n:100 ~shards:7) big in
  Array.iteri
    (fun s runs ->
      for i = 1 to Array.length runs - 1 do
        let b0, _, _ = runs.(i - 1) and b1, _, _ = runs.(i) in
        if b1 < b0 then Alcotest.failf "shard %d sub-trace unsorted at %d" s i
      done)
    r.Router.runs

let test_router_validation () =
  let d = Dir.create ~n:16 ~shards:2 in
  let rejects label trace =
    match Router.build d trace with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  rejects "unsorted" [| (5, 0, 1); (4, 2, 3) |];
  rejects "src out of range" [| (0, 16, 1) |];
  rejects "dst negative" [| (0, 1, -1) |]

(* {2 Overlay: 1-shard bit-identity against the single-tree oracle} *)

let test_single_shard_oracle ~workload ~seed () =
  let ctx = Printf.sprintf "%s/seed %d" workload seed in
  let n = 96 in
  let runs = trace_for ~workload ~n ~m:1_500 ~seed in
  let oracle_tree = Build.balanced n in
  let (oracle_stats, oracle_lat), oracle_events =
    capture_payloads (fun sink ->
        Conc.run_with_latencies ~sink oracle_tree runs)
  in
  let (result, lat), events =
    capture_payloads (fun sink ->
        Overlay.run_with_latencies ~sink ~shards:1 ~n runs)
  in
  check_stats ctx result.Overlay.stats oracle_stats;
  check_stats (ctx ^ "/per-shard") result.Overlay.per_shard.(0) oracle_stats;
  check_trees ctx result.Overlay.topologies.(0) oracle_tree;
  Alcotest.(check int)
    (ctx ^ ": requests")
    (Array.length runs) result.Overlay.requests;
  Alcotest.(check int) (ctx ^ ": cross") 0 result.Overlay.cross;
  Alcotest.(check int)
    (ctx ^ ": directory hops")
    0 result.Overlay.directory_hops;
  Alcotest.(check int) (ctx ^ ": shard count") 1 (Array.length lat);
  Alcotest.(check (array (float 0.0))) (ctx ^ ": latencies") oracle_lat lat.(0);
  Alcotest.(check int)
    (ctx ^ ": event count")
    (List.length oracle_events) (List.length events);
  List.iteri
    (fun i (pa, pb) ->
      if pa <> pb then
        Alcotest.failf "%s: event %d differs: %s vs %s" ctx i
          (Obskit.Event.name pa) (Obskit.Event.name pb))
    (List.combine events oracle_events)

(* {2 Overlay: invariance across domain counts and execution orders} *)

let test_domain_invariance ~workload ~seed () =
  let ctx = Printf.sprintf "%s/seed %d" workload seed in
  let n = 96 and shards = 4 in
  let runs = trace_for ~workload ~n ~m:1_500 ~seed in
  let base = Overlay.run ~shards ~domains:1 ~n runs in
  List.iter
    (fun domains ->
      let r = Overlay.run ~shards ~domains ~n runs in
      let ctx = Printf.sprintf "%s domains=%d" ctx domains in
      check_stats ctx r.Overlay.stats base.Overlay.stats;
      Array.iteri
        (fun s st ->
          check_stats
            (Printf.sprintf "%s shard %d" ctx s)
            st
            base.Overlay.per_shard.(s))
        r.Overlay.per_shard;
      Array.iteri
        (fun s t ->
          check_trees
            (Printf.sprintf "%s shard %d tree" ctx s)
            t
            base.Overlay.topologies.(s))
        r.Overlay.topologies)
    [ 2; 4 ];
  (* Shard execution order cannot matter: replaying the router's
     sub-traces in reverse shard order reproduces every shard's
     statistics and final tree. *)
  let router = Router.build base.Overlay.directory runs in
  for s = shards - 1 downto 0 do
    let tree = Build.balanced (Dir.size base.Overlay.directory s) in
    let stats = Conc.run tree router.Router.runs.(s) in
    check_stats (Printf.sprintf "%s reverse shard %d" ctx s) stats
      base.Overlay.per_shard.(s);
    check_trees
      (Printf.sprintf "%s reverse shard %d tree" ctx s)
      tree
      base.Overlay.topologies.(s)
  done

let test_conservation () =
  let n = 128 in
  let runs = trace_for ~workload:"pfabric" ~n ~m:2_000 ~seed:5 in
  List.iter
    (fun shards ->
      let r = Overlay.run ~shards ~n runs in
      let ctx = Printf.sprintf "shards=%d" shards in
      Alcotest.(check int)
        (ctx ^ ": requests")
        (Array.length runs) r.Overlay.requests;
      Alcotest.(check int)
        (ctx ^ ": intra + cross")
        (Array.length runs)
        (r.Overlay.intra + r.Overlay.cross);
      Alcotest.(check int)
        (ctx ^ ": directory hops = cross")
        r.Overlay.cross r.Overlay.directory_hops;
      Alcotest.(check int)
        (ctx ^ ": delivered legs")
        (r.Overlay.intra + (2 * r.Overlay.cross))
        r.Overlay.stats.Stats.messages)
    [ 1; 2; 4; 8 ]

let test_overlay_validation () =
  let runs = [| (0, 0, 1) |] in
  let rejects label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  rejects "domains < 1" (fun () -> Overlay.run ~domains:0 ~n:4 runs);
  rejects "too many shards" (fun () -> Overlay.run ~shards:3 ~n:4 runs);
  rejects "n < 2" (fun () -> Overlay.run ~n:1 [||])

let workloads = [ "uniform"; "skewed"; "pfabric" ]
let seeds = [ 1; 2 ]

let oracle_tests =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" workload seed)
            `Quick
            (test_single_shard_oracle ~workload ~seed))
        seeds)
    workloads

let invariance_tests =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" workload seed)
            `Quick
            (test_domain_invariance ~workload ~seed))
        seeds)
    workloads

let () =
  Alcotest.run "forest"
    [
      ( "directory",
        [
          Alcotest.test_case "partition" `Quick test_directory_partition;
          Alcotest.test_case "validation" `Quick test_directory_validation;
        ] );
      ( "router",
        [
          Alcotest.test_case "decomposition" `Quick test_router_decomposition;
          Alcotest.test_case "validation" `Quick test_router_validation;
        ] );
      ("single-shard oracle", oracle_tests);
      ("domain invariance", invariance_tests);
      ( "overlay",
        [
          Alcotest.test_case "conservation" `Quick test_conservation;
          Alcotest.test_case "validation" `Quick test_overlay_validation;
        ] );
    ]
