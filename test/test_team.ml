(* Simkit.Team: fixed worker-domain teams for intra-round fan-out.
   Both parking modes are forced explicitly — the CI box may report a
   single recommended domain, which would otherwise always pick
   Block. *)

module Team = Simkit.Team

let modes = [ ("spin", Team.Spin); ("block", Team.Block) ]

(* Every member must run exactly once per round, and the caller must
   see all their writes after the join. *)
let test_slice_sums mode () =
  let members = 4 in
  let team = Team.create ~mode ~members () in
  Fun.protect
    ~finally:(fun () -> Team.shutdown team)
    (fun () ->
      Alcotest.(check int) "members" members (Team.members team);
      let items = 1000 in
      let data = Array.init items (fun i -> i + 1) in
      let partial = Array.make members 0 in
      let chunk = (items + members - 1) / members in
      Team.run team (fun m ->
          let lo = m * chunk in
          let hi = min items (lo + chunk) in
          let acc = ref 0 in
          for i = lo to hi - 1 do
            acc := !acc + data.(i)
          done;
          partial.(m) <- !acc);
      let total = Array.fold_left ( + ) 0 partial in
      Alcotest.(check int) "slice sum" (items * (items + 1) / 2) total)

(* Reuse: many rounds over the same team, each publishing a fresh job
   closure, must all join correctly. *)
let test_reuse mode () =
  let members = 3 in
  let team = Team.create ~mode ~members () in
  Fun.protect
    ~finally:(fun () -> Team.shutdown team)
    (fun () ->
      let hits = Array.make members 0 in
      for _round = 1 to 50 do
        Team.run team (fun m -> hits.(m) <- hits.(m) + 1)
      done;
      Array.iteri
        (fun m h ->
          Alcotest.(check int) (Printf.sprintf "member %d rounds" m) 50 h)
        hits)

exception Boom of int

(* A member failure surfaces on the caller after the join, and the
   team survives it: the next round still runs. *)
let test_exception mode () =
  let team = Team.create ~mode ~members:2 () in
  Fun.protect
    ~finally:(fun () -> Team.shutdown team)
    (fun () ->
      let raised =
        try
          Team.run team (fun m -> if m = 1 then raise (Boom m));
          false
        with Boom 1 -> true
      in
      Alcotest.(check bool) "worker exception re-raised" true raised;
      let ok = Array.make 2 false in
      Team.run team (fun m -> ok.(m) <- true);
      Alcotest.(check bool) "team survives a failed round" true
        (ok.(0) && ok.(1)))

(* members = 1 degenerates to a plain call: no domains, job runs on
   the caller. *)
let test_solo () =
  let team = Team.create ~members:1 () in
  let ran = ref false in
  Team.run team (fun m ->
      Alcotest.(check int) "solo member id" 0 m;
      ran := true);
  Alcotest.(check bool) "solo job ran" true !ran;
  Team.shutdown team

let test_shutdown_idempotent mode () =
  let team = Team.create ~mode ~members:3 () in
  Team.run team (fun _ -> ());
  Team.shutdown team;
  Team.shutdown team

let test_bad_members () =
  Alcotest.check_raises "members = 0" (Invalid_argument
    "Team.create: members must be >= 1") (fun () ->
      ignore (Team.create ~members:0 ()))

let per_mode name f =
  List.map
    (fun (label, mode) ->
      Alcotest.test_case (Printf.sprintf "%s (%s)" name label) `Quick (f mode))
    modes

let () =
  Alcotest.run "team"
    [
      ("slice sums", per_mode "slice sums" test_slice_sums);
      ("reuse", per_mode "reuse across rounds" test_reuse);
      ("failures", per_mode "exception propagation" test_exception);
      ( "lifecycle",
        Alcotest.test_case "solo team" `Quick test_solo
        :: Alcotest.test_case "bad members" `Quick test_bad_members
        :: per_mode "shutdown idempotent" test_shutdown_idempotent );
    ]
