(* Unit and property tests for the BST network substrate. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module Check = Bstnet.Check

let check_ok what = function
  | Ok () -> ()
  | Error msg -> Alcotest.failf "%s: %s" what msg

let check_all t = check_ok "invariants" (Check.all t)

let test_balanced_shape () =
  let t = Build.balanced 15 in
  Alcotest.(check int) "root" 7 (T.root t);
  Alcotest.(check int) "n" 15 (T.n t);
  Alcotest.(check int) "depth of leaf" 3 (T.depth t 0);
  Alcotest.(check int) "depth of root" 0 (T.depth t 7);
  check_all t

let test_balanced_sizes () =
  List.iter
    (fun n ->
      let t = Build.balanced n in
      check_all t;
      (* A perfectly balanced tree has height <= ceil(log2 (n+1)). *)
      let max_depth = ref 0 in
      T.iter_subtree t (T.root t) (fun v -> max_depth := max !max_depth (T.depth t v));
      let bound = int_of_float (Float.ceil (Float.log2 (float_of_int (n + 1)))) in
      if !max_depth > bound then
        Alcotest.failf "n=%d: height %d exceeds %d" n !max_depth bound)
    [ 1; 2; 3; 7; 10; 100; 1024 ]

let test_path_tree () =
  let t = Build.path 8 in
  check_all t;
  Alcotest.(check int) "root" 0 (T.root t);
  Alcotest.(check int) "deepest" 7 (T.depth t 7);
  Alcotest.(check int) "distance ends" 7 (T.distance t 0 7)

let test_of_insertions () =
  let t = Build.of_insertions 7 [ 3; 1; 5; 0; 2; 4; 6 ] in
  check_all t;
  Alcotest.(check int) "root" 3 (T.root t);
  Alcotest.(check int) "left" 1 (T.left t 3);
  Alcotest.(check int) "right" 5 (T.right t 3)

let test_of_insertions_rejects_non_permutation () =
  Alcotest.check_raises "duplicate"
    (Invalid_argument "Build.of_insertions: not a permutation") (fun () ->
      ignore (Build.of_insertions 3 [ 0; 0; 2 ]));
  Alcotest.check_raises "short"
    (Invalid_argument "Build.of_insertions: not a permutation") (fun () ->
      ignore (Build.of_insertions 3 [ 0; 2 ]))

let test_random_tree_valid () =
  let rng = Simkit.Rng.create 99 in
  for _ = 1 to 20 do
    let n = 1 + Simkit.Rng.int rng 200 in
    check_all (Build.random rng n)
  done

let test_direction_and_next_hop () =
  let t = Build.balanced 15 in
  Alcotest.(check bool) "down-left" true (T.direction_to t ~src:7 ~dst:2 = T.Down_left);
  Alcotest.(check bool) "down-right" true (T.direction_to t ~src:7 ~dst:12 = T.Down_right);
  Alcotest.(check bool) "up" true (T.direction_to t ~src:1 ~dst:12 = T.Up);
  Alcotest.(check bool) "here" true (T.direction_to t ~src:5 ~dst:5 = T.Here);
  Alcotest.(check int) "hop left" 3 (T.next_hop t ~src:7 ~dst:2);
  Alcotest.(check int) "hop up" 3 (T.next_hop t ~src:1 ~dst:12)

let test_greedy_routing_reaches_destination () =
  let rng = Simkit.Rng.create 5 in
  for _ = 1 to 30 do
    let n = 2 + Simkit.Rng.int rng 100 in
    let t = Build.random rng n in
    for _ = 1 to 20 do
      let src = Simkit.Rng.int rng n and dst = Simkit.Rng.int rng n in
      let rec walk v hops =
        if hops > 2 * n then Alcotest.failf "routing loop from %d to %d" src dst
        else if v = dst then hops
        else walk (T.next_hop t ~src:v ~dst) (hops + 1)
      in
      let hops = walk src 0 in
      Alcotest.(check int) "greedy route = tree distance" (T.distance t src dst) hops
    done
  done

let test_lca_and_paths () =
  let t = Build.balanced 15 in
  Alcotest.(check int) "lca siblings" 1 (T.lca t 0 2);
  Alcotest.(check int) "lca cousins" 3 (T.lca t 0 5);
  Alcotest.(check int) "lca across root" 7 (T.lca t 2 12);
  Alcotest.(check int) "lca with ancestor" 3 (T.lca t 3 4);
  Alcotest.(check int) "lca self" 5 (T.lca t 5 5);
  Alcotest.(check (list int)) "path" [ 0; 1; 3; 5; 4 ] (T.path t 0 4);
  Alcotest.(check (list int)) "path to root" [ 0; 1; 3; 7 ] (T.path_to_root t 0);
  Alcotest.(check int) "distance" 4 (T.distance t 0 4)

let test_rotate_up_shapes () =
  (* Right rotation at the root of a small tree. *)
  let t = Build.of_insertions 3 [ 2; 1; 0 ] in
  (* 2 -> 1 -> 0 chain. *)
  T.rotate_up t 1;
  check_all t;
  Alcotest.(check int) "new root" 1 (T.root t);
  Alcotest.(check int) "left" 0 (T.left t 1);
  Alcotest.(check int) "right" 2 (T.right t 1)

let test_rotate_up_rejects_root () =
  let t = Build.balanced 7 in
  Alcotest.check_raises "root" (Invalid_argument "Topology.rotate_up: node is the root")
    (fun () -> T.rotate_up t (T.root t))

let test_rotate_preserves_weights () =
  let t = Build.balanced 15 in
  (* Install an arbitrary consistent weight profile. *)
  let counters = Array.init 15 (fun i -> i + 1) in
  let rec install v =
    if v = T.nil then 0
    else begin
      let w = counters.(v) + install (T.left t v) + install (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (install (T.root t));
  check_ok "before" (Check.weights ~counters t);
  let rng = Simkit.Rng.create 3 in
  for _ = 1 to 200 do
    let v = Simkit.Rng.int rng 15 in
    if not (T.is_root t v) then T.rotate_up t v;
    check_ok "after rotation" (Check.all ~counters t)
  done

let test_total_weight_constant_under_rotations () =
  let t = Build.balanced 31 in
  let rng = Simkit.Rng.create 4 in
  for v = 0 to 30 do
    T.set_weight t v 0
  done;
  let counters = Array.make 31 0 in
  (* Random counter profile installed bottom-up. *)
  let rec install v =
    if v = T.nil then 0
    else begin
      let c = Simkit.Rng.int rng 10 in
      counters.(v) <- c;
      let w = c + install (T.left t v) + install (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (install (T.root t));
  let total = T.total_weight t in
  for _ = 1 to 500 do
    let v = Simkit.Rng.int rng 31 in
    if not (T.is_root t v) then T.rotate_up t v
  done;
  Alcotest.(check int) "total preserved" total (T.total_weight t);
  check_ok "counters preserved" (Check.weights ~counters t)

let test_interval_labels_after_rotations () =
  let rng = Simkit.Rng.create 6 in
  let t = Build.random rng 64 in
  for _ = 1 to 1000 do
    let v = Simkit.Rng.int rng 64 in
    if not (T.is_root t v) then T.rotate_up t v
  done;
  check_all t

let test_in_subtree () =
  let t = Build.balanced 15 in
  Alcotest.(check bool) "yes" true (T.in_subtree t ~root:3 0);
  Alcotest.(check bool) "self" true (T.in_subtree t ~root:3 3);
  Alcotest.(check bool) "no" false (T.in_subtree t ~root:3 8)

let test_copy_independent () =
  let t = Build.balanced 7 in
  let c = T.copy t in
  T.rotate_up t 1;
  Alcotest.(check int) "copy root unchanged" 3 (T.root c);
  check_all c

let test_weight_added_accounting () =
  let t = Build.balanced 7 in
  T.add_weight t 2 5;
  T.add_weight t 4 3;
  Alcotest.(check int) "sum" 8 (T.weight_added t)

let test_check_detects_bad_interval () =
  let t = Build.balanced 7 in
  (* Corrupt a label behind the checker's back. *)
  let t' = T.copy t in
  T.set_child t' ~parent:1 ~child:0;
  (* set_child alone is consistent; instead corrupt via set_weight and
     the weights checker. *)
  T.set_weight t' 0 42;
  Alcotest.(check bool) "weights violation detected" true
    (Result.is_error (Check.weights t'))

let test_dot_rendering () =
  let t = Build.balanced 7 in
  let dot = Bstnet.Dot.to_dot ~highlight:[ 3 ] t in
  Alcotest.(check bool) "digraph" true (String.length dot > 0);
  let contains needle =
    let n = String.length needle and h = String.length dot in
    let rec go i = i + n <= h && (String.sub dot i n = needle || go (i + 1)) in
    go 0
  in
  Alcotest.(check bool) "has root node" true (contains "n3 [label=");
  Alcotest.(check bool) "highlights" true (contains "fillcolor=lightblue");
  Alcotest.(check bool) "left edges" true (contains "label=\"L\"");
  (* 6 edges for 7 nodes. *)
  let edge_count = ref 0 in
  String.iteri (fun i c -> if c = '>' && i > 0 && dot.[i-1] = '-' then incr edge_count) dot;
  Alcotest.(check int) "n-1 edges" 6 !edge_count;
  (* Weighted variant switches labels. *)
  T.set_weight t 3 5;
  let dot2 = Bstnet.Dot.to_dot t in
  Alcotest.(check bool) "weight label" true
    (String.length dot2 > String.length dot - 100)

let test_serialize_roundtrip () =
  let rng = Simkit.Rng.create 51 in
  for _ = 1 to 20 do
    let n = 1 + Simkit.Rng.int rng 100 in
    let t = Build.random rng n in
    (* Give it a realistic weight profile via some traffic. *)
    for v = 0 to n - 1 do
      T.set_weight t v 0
    done;
    let rec install v =
      if v = T.nil then 0
      else begin
        let w = Simkit.Rng.int rng 5 + install (T.left t v) + install (T.right t v) in
        T.set_weight t v w;
        w
      end
    in
    ignore (install (T.root t));
    let t' = Bstnet.Serialize.of_string (Bstnet.Serialize.to_string t) in
    Alcotest.(check int) "same root" (T.root t) (T.root t');
    for v = 0 to n - 1 do
      Alcotest.(check int) "parent" (T.parent t v) (T.parent t' v);
      Alcotest.(check int) "weight" (T.weight t v) (T.weight t' v);
      Alcotest.(check int) "smallest" (T.smallest t v) (T.smallest t' v);
      Alcotest.(check int) "largest" (T.largest t v) (T.largest t' v)
    done
  done

(* Large-n smoke: the flat-array topology, structural checker and
   serializer must stay linear-time and correct well past the old
   n=1024 defaults — the forest overlay builds shards at these sizes. *)
let large_n_roundtrip n () =
  let t = Build.balanced n in
  Bstnet.Check.assert_ok (Bstnet.Check.structural t);
  let t' = Bstnet.Serialize.of_string (Bstnet.Serialize.to_string t) in
  Alcotest.(check int) "same n" (T.n t) (T.n t');
  Alcotest.(check int) "same root" (T.root t) (T.root t');
  for v = 0 to n - 1 do
    if
      T.parent t v <> T.parent t' v
      || T.left t v <> T.left t' v
      || T.right t v <> T.right t' v
      || T.weight t v <> T.weight t' v
    then Alcotest.failf "n=%d: round-trip differs at node %d" n v
  done;
  Bstnet.Check.assert_ok (Bstnet.Check.structural t')

let test_serialize_rejects_garbage () =
  Alcotest.(check bool) "bad header" true
    (try ignore (Bstnet.Serialize.of_string "nope"); false with Failure _ -> true);
  Alcotest.(check bool) "orphan" true
    (try
       ignore
         (Bstnet.Serialize.of_string
            "cbnet-topology v1\nn 3\nroot 1\nparents -1 -1 1\nweights 0 0 0\n");
       false
     with Failure _ -> true)

let qcheck_tests =
  let open QCheck2 in
  let arb_tree_ops =
    Gen.(pair (int_range 2 64) (list_size (int_range 0 200) (int_bound 1000)))
  in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"random rotations keep all invariants" ~count:100
         arb_tree_ops
         (fun (n, ops) ->
           let rng = Simkit.Rng.create 11 in
           let t = Build.random rng n in
           List.iter
             (fun x ->
               let v = x mod n in
               if not (T.is_root t v) then T.rotate_up t v)
             ops;
           Result.is_ok (Check.all t)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"lca is symmetric and on both root paths" ~count:100
         Gen.(triple (int_range 2 64) (int_bound 1000) (int_bound 1000))
         (fun (n, a, b) ->
           let rng = Simkit.Rng.create 17 in
           let t = Build.random rng n in
           let u = a mod n and v = b mod n in
           let l = T.lca t u v in
           l = T.lca t v u
           && List.mem l (T.path_to_root t u)
           && List.mem l (T.path_to_root t v)));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"distance is a metric on the tree" ~count:100
         Gen.(quad (int_range 2 48) (int_bound 999) (int_bound 999) (int_bound 999))
         (fun (n, a, b, c) ->
           let rng = Simkit.Rng.create 23 in
           let t = Build.random rng n in
           let u = a mod n and v = b mod n and w = c mod n in
           T.distance t u u = 0
           && T.distance t u v = T.distance t v u
           && T.distance t u w <= T.distance t u v + T.distance t v w));
  ]

let () =
  Alcotest.run "bstnet"
    [
      ( "build",
        [
          Alcotest.test_case "balanced shape" `Quick test_balanced_shape;
          Alcotest.test_case "balanced sizes" `Quick test_balanced_sizes;
          Alcotest.test_case "path" `Quick test_path_tree;
          Alcotest.test_case "of_insertions" `Quick test_of_insertions;
          Alcotest.test_case "rejects non-permutation" `Quick
            test_of_insertions_rejects_non_permutation;
          Alcotest.test_case "random valid" `Quick test_random_tree_valid;
        ] );
      ( "routing",
        [
          Alcotest.test_case "direction/next_hop" `Quick test_direction_and_next_hop;
          Alcotest.test_case "greedy reaches dst" `Quick
            test_greedy_routing_reaches_destination;
          Alcotest.test_case "lca and paths" `Quick test_lca_and_paths;
          Alcotest.test_case "in_subtree" `Quick test_in_subtree;
        ] );
      ( "rotation",
        [
          Alcotest.test_case "shapes" `Quick test_rotate_up_shapes;
          Alcotest.test_case "rejects root" `Quick test_rotate_up_rejects_root;
          Alcotest.test_case "preserves weights" `Quick test_rotate_preserves_weights;
          Alcotest.test_case "total weight constant" `Quick
            test_total_weight_constant_under_rotations;
          Alcotest.test_case "interval labels" `Quick
            test_interval_labels_after_rotations;
        ] );
      ( "misc",
        [
          Alcotest.test_case "copy independent" `Quick test_copy_independent;
          Alcotest.test_case "weight_added" `Quick test_weight_added_accounting;
          Alcotest.test_case "checker detects corruption" `Quick
            test_check_detects_bad_interval;
          Alcotest.test_case "dot rendering" `Quick test_dot_rendering;
          Alcotest.test_case "serialize roundtrip" `Quick test_serialize_roundtrip;
          Alcotest.test_case "serialize rejects garbage" `Quick
            test_serialize_rejects_garbage;
          Alcotest.test_case "large n=1e5 roundtrip" `Quick
            (large_n_roundtrip 100_000);
          Alcotest.test_case "large n=1e6 roundtrip" `Slow
            (large_n_roundtrip 1_000_000);
        ] );
      ("properties", qcheck_tests);
    ]
