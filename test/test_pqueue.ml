(* Simkit.Pqueue: ordering, stability (FIFO among equals, committed
   before staged), in-place filtering, staging re-entrancy, growth. *)

module Q = Simkit.Pqueue

(* Elements carry a sort key and a distinct sequence tag so stability
   is observable: the comparator looks at [key] only. *)
type elt = { key : int; seq : int }

let dummy = { key = min_int; seq = -1 }
let cmp a b = compare a.key b.key
let make_q ?(capacity = 4) () = Q.create ~capacity ~dummy cmp
let keys q = List.map (fun e -> e.key) (Q.to_list q)
let seqs q = List.map (fun e -> e.seq) (Q.to_list q)

let test_sorted_commit () =
  let q = make_q () in
  List.iteri
    (fun i k -> Q.stage q { key = k; seq = i })
    [ 5; 1; 4; 1; 3; 9; 2; 6 ];
  Alcotest.(check int) "staged count" 8 (Q.staged q);
  Alcotest.(check int) "not committed yet" 0 (Q.length q);
  Q.commit q;
  Alcotest.(check int) "committed" 8 (Q.length q);
  Alcotest.(check int) "batch drained" 0 (Q.staged q);
  Alcotest.(check (list int)) "sorted" [ 1; 1; 2; 3; 4; 5; 6; 9 ] (keys q)

let test_stability_within_batch () =
  (* Equal keys staged in sequence order must be visited in that
     order (FIFO tie-break). *)
  let q = make_q () in
  List.iteri (fun i k -> Q.stage q { key = k; seq = i }) [ 7; 7; 3; 7; 3 ];
  Q.commit q;
  Alcotest.(check (list int)) "keys" [ 3; 3; 7; 7; 7 ] (keys q);
  Alcotest.(check (list int)) "FIFO among equals" [ 2; 4; 0; 1; 3 ] (seqs q)

let test_stability_across_commits () =
  (* On equal keys, elements committed earlier precede ones staged
     later — the List.merge convention. *)
  let q = make_q () in
  List.iteri (fun i k -> Q.stage q { key = k; seq = i }) [ 2; 5 ];
  Q.commit q;
  List.iteri (fun i k -> Q.stage q { key = k; seq = 10 + i }) [ 5; 2; 1 ];
  Q.commit q;
  Alcotest.(check (list int)) "keys" [ 1; 2; 2; 5; 5 ] (keys q);
  Alcotest.(check (list int)) "old before new" [ 12; 0; 11; 1; 10 ] (seqs q)

let test_iter_filter_compacts () =
  let q = make_q () in
  List.iteri (fun i k -> Q.stage q { key = k; seq = i }) [ 4; 1; 3; 2; 5 ];
  Q.commit q;
  Q.iter_filter q (fun e -> e.key mod 2 = 1);
  Alcotest.(check (list int)) "odd keys kept, order preserved" [ 1; 3; 5 ]
    (keys q);
  Q.iter_filter q (fun _ -> false);
  Alcotest.(check int) "all dropped" 0 (Q.length q);
  Alcotest.(check bool) "empty" true (Q.is_empty q)

let test_stage_during_iter_filter () =
  (* Elements staged from inside the callback must not join the
     iteration in progress — only the next commit. *)
  let q = make_q () in
  List.iteri (fun i k -> Q.stage q { key = k; seq = i }) [ 1; 2; 3 ];
  Q.commit q;
  let visited = ref [] in
  Q.iter_filter q (fun e ->
      visited := e.key :: !visited;
      if e.key = 2 then Q.stage q { key = 0; seq = 99 };
      true);
  Alcotest.(check (list int)) "visited pre-existing only" [ 1; 2; 3 ]
    (List.rev !visited);
  Alcotest.(check int) "newcomer staged" 1 (Q.staged q);
  Q.commit q;
  Alcotest.(check (list int)) "newcomer first after commit" [ 0; 1; 2; 3 ]
    (keys q)

let test_growth_and_get () =
  let q = make_q ~capacity:2 () in
  for i = 0 to 99 do
    Q.stage q { key = 100 - i; seq = i }
  done;
  Q.commit q;
  Alcotest.(check int) "all there" 100 (Q.length q);
  Alcotest.(check int) "min first" 1 (Q.get q 0).key;
  Alcotest.(check int) "max last" 100 (Q.get q 99).key;
  Alcotest.check_raises "get out of bounds"
    (Invalid_argument "Pqueue.get: index out of bounds") (fun () ->
      ignore (Q.get q 100));
  Q.clear q;
  Alcotest.(check bool) "cleared" true (Q.is_empty q)

let test_interleaved_rounds () =
  (* Round-loop rhythm: repeated stage/commit/filter cycles keep the
     exact order a sort-and-merge implementation would produce. *)
  let rng = Simkit.Rng.create 7 in
  let q = make_q () in
  let model = ref [] in
  let seq = ref 0 in
  let stable_sort l = List.stable_sort cmp l in
  for _round = 0 to 49 do
    let batch =
      List.init (Simkit.Rng.int rng 5) (fun _ ->
          incr seq;
          { key = Simkit.Rng.int rng 10; seq = !seq })
    in
    List.iter (Q.stage q) batch;
    Q.commit q;
    model := List.merge cmp !model (stable_sort batch);
    let keep e = e.seq mod 3 <> 0 in
    Q.iter_filter q keep;
    model := List.filter keep !model;
    Alcotest.(check (list int))
      "matches sort-and-merge model"
      (List.map (fun e -> e.seq) !model)
      (seqs q)
  done

let () =
  Alcotest.run "pqueue"
    [
      ( "ordering",
        [
          Alcotest.test_case "sorted commit" `Quick test_sorted_commit;
          Alcotest.test_case "growth and get" `Quick test_growth_and_get;
        ] );
      ( "stability",
        [
          Alcotest.test_case "within batch" `Quick test_stability_within_batch;
          Alcotest.test_case "across commits" `Quick
            test_stability_across_commits;
        ] );
      ( "filtering",
        [
          Alcotest.test_case "compaction" `Quick test_iter_filter_compacts;
          Alcotest.test_case "stage during iteration" `Quick
            test_stage_during_iter_filter;
          Alcotest.test_case "interleaved rounds" `Quick
            test_interleaved_rounds;
        ] );
    ]
