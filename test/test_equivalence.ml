(* The arena/pqueue concurrent executor against its list-based
   executable specification (Cbnet.Concurrent.Reference): statistics,
   latencies, telemetry payload streams and final trees must be
   bit-identical across seeds and workload families. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module Conc = Cbnet.Concurrent
module Ref = Cbnet.Concurrent.Reference
module Stats = Cbnet.Run_stats

let workloads = [ "projector"; "skewed"; "datastructure"; "uniform" ]
let seeds = [ 1; 2; 3; 4; 5 ]

let trace_of ~workload ~seed =
  let entry = Workloads.Catalog.find workload in
  ( entry.Workloads.Catalog.n,
    Workloads.Trace.to_runs
      (entry.Workloads.Catalog.generate Workloads.Catalog.Smoke ~seed) )

let check_stats ctx (a : Stats.t) (b : Stats.t) =
  let s x = Format.asprintf "%a" Stats.pp x in
  Alcotest.(check string) (ctx ^ ": run stats") (s b) (s a);
  (* pp rounds floats; the float fields must also match exactly. *)
  Alcotest.(check bool)
    (ctx ^ ": stats bit-identical") true
    (a.Stats.work = b.Stats.work
    && a.Stats.throughput = b.Stats.throughput
    && { a with Stats.work = 0.0; throughput = 0.0 }
       = { b with Stats.work = 0.0; throughput = 0.0 })

let check_trees ctx ta tb =
  let n = T.n ta in
  Alcotest.(check int) (ctx ^ ": same n") n (T.n tb);
  Alcotest.(check int) (ctx ^ ": same root") (T.root ta) (T.root tb);
  for v = 0 to n - 1 do
    if
      T.parent ta v <> T.parent tb v
      || T.left ta v <> T.left tb v
      || T.right ta v <> T.right tb v
      || T.weight ta v <> T.weight tb v
    then Alcotest.failf "%s: tree differs at node %d" ctx v
  done

let capture_payloads run =
  let acc = ref [] in
  let sink =
    Obskit.Sink.stream (fun (e : Obskit.Event.t) ->
        acc := e.Obskit.Event.payload :: !acc)
  in
  let result = run sink in
  (result, List.rev !acc)

let test_pair ~workload ~seed () =
  let ctx = Printf.sprintf "%s/seed %d" workload seed in
  let n, trace = trace_of ~workload ~seed in
  let ta = Build.balanced n and tb = Build.balanced n in
  let (sa, la), ea =
    capture_payloads (fun sink -> Conc.run_with_latencies ~sink ta trace)
  in
  let (sb, lb), eb =
    capture_payloads (fun sink -> Ref.run_with_latencies ~sink tb trace)
  in
  check_stats ctx sa sb;
  check_trees ctx ta tb;
  Array.sort compare la;
  Array.sort compare lb;
  Alcotest.(check (array (float 0.0))) (ctx ^ ": sorted latencies") lb la;
  Alcotest.(check int)
    (ctx ^ ": event count")
    (List.length eb) (List.length ea);
  List.iteri
    (fun i (pa, pb) ->
      if pa <> pb then
        Alcotest.failf "%s: event %d differs: %s vs %s" ctx i
          (Obskit.Event.name pa) (Obskit.Event.name pb))
    (List.combine ea eb)

(* The untraced hot path takes a different route through the executor
   (shape probe + conflict pre-check, ΔΦ evaluated lazily), so it gets
   its own pairwise check: stats, trees and latencies must match the
   reference executor with the null sink too. *)
let test_pair_untraced ~workload ~seed () =
  let ctx = Printf.sprintf "untraced %s/seed %d" workload seed in
  let n, trace = trace_of ~workload ~seed in
  let ta = Build.balanced n and tb = Build.balanced n in
  let sa, la = Conc.run_with_latencies ta trace in
  let sb, lb = Ref.run_with_latencies tb trace in
  check_stats ctx sa sb;
  check_trees ctx ta tb;
  Array.sort compare la;
  Array.sort compare lb;
  Alcotest.(check (array (float 0.0))) (ctx ^ ": sorted latencies") lb la

(* An *empty* fault plan still routes every message through the
   fault-aware turn (full plan resolution, draw checks), so this pair
   proves that path equivalent to the reference executor: stats,
   trees, latencies and the telemetry payload stream. *)
let test_pair_empty_plan ~workload ~seed () =
  let ctx = Printf.sprintf "empty plan %s/seed %d" workload seed in
  let empty = Faultkit.Plan.make ~seed:0 [] in
  let n, trace = trace_of ~workload ~seed in
  let ta = Build.balanced n and tb = Build.balanced n in
  let (sa, la), ea =
    capture_payloads (fun sink ->
        Conc.run_with_latencies ~sink ~faults:empty ta trace)
  in
  let (sb, lb), eb =
    capture_payloads (fun sink -> Ref.run_with_latencies ~sink tb trace)
  in
  check_stats ctx sa sb;
  check_trees ctx ta tb;
  Array.sort compare la;
  Array.sort compare lb;
  Alcotest.(check (array (float 0.0))) (ctx ^ ": sorted latencies") lb la;
  Alcotest.(check int)
    (ctx ^ ": event count")
    (List.length eb) (List.length ea);
  List.iteri
    (fun i (pa, pb) ->
      if pa <> pb then
        Alcotest.failf "%s: event %d differs: %s vs %s" ctx i
          (Obskit.Event.name pa) (Obskit.Event.name pb))
    (List.combine ea eb);
  (* Untraced too: the null-sink fault path has its own branches. *)
  let tc = Build.balanced n and td = Build.balanced n in
  let sc = Conc.run ~faults:empty tc trace in
  let sd = Ref.run td trace in
  check_stats (ctx ^ " untraced") sc sd;
  check_trees (ctx ^ " untraced") tc td

(* The scheduler finalizer must account for in-flight messages too:
   truncating both executors mid-run (before quiescence) must still
   produce identical statistics. *)
let test_truncated_finalize () =
  let n, trace = trace_of ~workload:"projector" ~seed:3 in
  let ta = Build.balanced n and tb = Build.balanced n in
  let sched_a, fin_a = Conc.scheduler ta trace in
  let sched_b, fin_b = Ref.scheduler tb trace in
  let rounds = 20 in
  for r = 0 to rounds - 1 do
    sched_a.Simkit.Engine.tick r;
    sched_b.Simkit.Engine.tick r
  done;
  Alcotest.(check bool)
    "neither executor finished (test needs in-flight messages)" false
    (sched_a.Simkit.Engine.is_done () || sched_b.Simkit.Engine.is_done ());
  check_stats "truncated" (fin_a rounds) (fin_b rounds);
  check_trees "truncated" ta tb

(* run and run_with_latencies must agree with each other: the stats
   path is shared, latencies are derived, not re-simulated. *)
let test_run_vs_run_with_latencies () =
  let n, trace = trace_of ~workload:"skewed" ~seed:2 in
  let s1 = Conc.run (Build.balanced n) trace in
  let s2, lats = Conc.run_with_latencies (Build.balanced n) trace in
  check_stats "run vs run_with_latencies" s1 s2;
  Alcotest.(check int)
    "one latency per data message" s1.Stats.messages (Array.length lats)

let pair_cases =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" workload seed)
            `Quick
            (test_pair ~workload ~seed))
        seeds)
    workloads

let untraced_cases =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" workload seed)
            `Quick
            (test_pair_untraced ~workload ~seed))
        seeds)
    workloads

let empty_plan_cases =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" workload seed)
            `Quick
            (test_pair_empty_plan ~workload ~seed))
        seeds)
    workloads

let () =
  Alcotest.run "equivalence"
    [
      ("executor pairs", pair_cases);
      ("executor pairs untraced", untraced_cases);
      ("executor pairs empty fault plan", empty_plan_cases);
      ( "finalization",
        [
          Alcotest.test_case "truncated finalize" `Quick
            test_truncated_finalize;
          Alcotest.test_case "run vs run_with_latencies" `Quick
            test_run_vs_run_with_latencies;
        ] );
    ]
