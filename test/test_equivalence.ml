(* The arena/pqueue concurrent executor against its list-based
   executable specification (Cbnet.Concurrent.Reference): statistics,
   latencies, telemetry payload streams and final trees must be
   bit-identical across seeds and workload families. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module Conc = Cbnet.Concurrent
module Ref = Cbnet.Concurrent.Reference
module Stats = Cbnet.Run_stats

let workloads = [ "projector"; "skewed"; "datastructure"; "uniform" ]
let seeds = [ 1; 2; 3; 4; 5 ]

let trace_of ~workload ~seed =
  let entry = Workloads.Catalog.find workload in
  ( entry.Workloads.Catalog.n,
    Workloads.Trace.to_runs
      (entry.Workloads.Catalog.generate Workloads.Catalog.Smoke ~seed) )

let check_stats ctx (a : Stats.t) (b : Stats.t) =
  let s x = Format.asprintf "%a" Stats.pp x in
  Alcotest.(check string) (ctx ^ ": run stats") (s b) (s a);
  (* pp rounds floats; the float fields must also match exactly. *)
  Alcotest.(check bool)
    (ctx ^ ": stats bit-identical") true
    (a.Stats.work = b.Stats.work
    && a.Stats.throughput = b.Stats.throughput
    && { a with Stats.work = 0.0; throughput = 0.0 }
       = { b with Stats.work = 0.0; throughput = 0.0 })

let check_trees ctx ta tb =
  let n = T.n ta in
  Alcotest.(check int) (ctx ^ ": same n") n (T.n tb);
  Alcotest.(check int) (ctx ^ ": same root") (T.root ta) (T.root tb);
  for v = 0 to n - 1 do
    if
      T.parent ta v <> T.parent tb v
      || T.left ta v <> T.left tb v
      || T.right ta v <> T.right tb v
      || T.weight ta v <> T.weight tb v
    then Alcotest.failf "%s: tree differs at node %d" ctx v
  done

let capture_payloads run =
  let acc = ref [] in
  let sink =
    Obskit.Sink.stream (fun (e : Obskit.Event.t) ->
        acc := e.Obskit.Event.payload :: !acc)
  in
  let result = run sink in
  (result, List.rev !acc)

let test_pair ~workload ~seed () =
  let ctx = Printf.sprintf "%s/seed %d" workload seed in
  let n, trace = trace_of ~workload ~seed in
  let ta = Build.balanced n and tb = Build.balanced n in
  let (sa, la), ea =
    capture_payloads (fun sink -> Conc.run_with_latencies ~sink ta trace)
  in
  let (sb, lb), eb =
    capture_payloads (fun sink -> Ref.run_with_latencies ~sink tb trace)
  in
  check_stats ctx sa sb;
  check_trees ctx ta tb;
  Array.sort compare la;
  Array.sort compare lb;
  Alcotest.(check (array (float 0.0))) (ctx ^ ": sorted latencies") lb la;
  Alcotest.(check int)
    (ctx ^ ": event count")
    (List.length eb) (List.length ea);
  List.iteri
    (fun i (pa, pb) ->
      if pa <> pb then
        Alcotest.failf "%s: event %d differs: %s vs %s" ctx i
          (Obskit.Event.name pa) (Obskit.Event.name pb))
    (List.combine ea eb)

(* The untraced hot path takes a different route through the executor
   (shape probe + conflict pre-check, ΔΦ evaluated lazily), so it gets
   its own pairwise check: stats, trees and latencies must match the
   reference executor with the null sink too. *)
let test_pair_untraced ~workload ~seed () =
  let ctx = Printf.sprintf "untraced %s/seed %d" workload seed in
  let n, trace = trace_of ~workload ~seed in
  let ta = Build.balanced n and tb = Build.balanced n in
  let sa, la = Conc.run_with_latencies ta trace in
  let sb, lb = Ref.run_with_latencies tb trace in
  check_stats ctx sa sb;
  check_trees ctx ta tb;
  Array.sort compare la;
  Array.sort compare lb;
  Alcotest.(check (array (float 0.0))) (ctx ^ ": sorted latencies") lb la

(* An *empty* fault plan still routes every message through the
   fault-aware turn (full plan resolution, draw checks), so this pair
   proves that path equivalent to the reference executor: stats,
   trees, latencies and the telemetry payload stream. *)
let test_pair_empty_plan ~workload ~seed () =
  let ctx = Printf.sprintf "empty plan %s/seed %d" workload seed in
  let empty = Faultkit.Plan.make ~seed:0 [] in
  let n, trace = trace_of ~workload ~seed in
  let ta = Build.balanced n and tb = Build.balanced n in
  let (sa, la), ea =
    capture_payloads (fun sink ->
        Conc.run_with_latencies ~sink ~faults:empty ta trace)
  in
  let (sb, lb), eb =
    capture_payloads (fun sink -> Ref.run_with_latencies ~sink tb trace)
  in
  check_stats ctx sa sb;
  check_trees ctx ta tb;
  Array.sort compare la;
  Array.sort compare lb;
  Alcotest.(check (array (float 0.0))) (ctx ^ ": sorted latencies") lb la;
  Alcotest.(check int)
    (ctx ^ ": event count")
    (List.length eb) (List.length ea);
  List.iteri
    (fun i (pa, pb) ->
      if pa <> pb then
        Alcotest.failf "%s: event %d differs: %s vs %s" ctx i
          (Obskit.Event.name pa) (Obskit.Event.name pb))
    (List.combine ea eb);
  (* Untraced too: the null-sink fault path has its own branches. *)
  let tc = Build.balanced n and td = Build.balanced n in
  let sc = Conc.run ~faults:empty tc trace in
  let sd = Ref.run td trace in
  check_stats (ctx ^ " untraced") sc sd;
  check_trees (ctx ^ " untraced") tc td

(* ------------------------------------------------------------------
   Intra-round parallelism: at every domain count the parallel
   executor must be bit-identical to the sequential oracle — stats,
   latencies, run-sink payload streams and final trees — traced and
   untraced, with and without an (empty) fault plan.  The reference
   run for each (workload, seed) is computed once and shared across
   domain counts. *)

let parallel_workloads = [ "projector"; "skewed"; "uniform" ]
let domain_counts = [ 1; 2; 4 ]
let oracle_cache = Hashtbl.create 16

(* Reference oracle for (workload, seed): trace, stats, sorted
   latencies, traced payload stream and final tree. *)
let oracle ~workload ~seed =
  let key = Printf.sprintf "%s/%d" workload seed in
  match Hashtbl.find_opt oracle_cache key with
  | Some o -> o
  | None ->
      let n, trace = trace_of ~workload ~seed in
      let tb = Build.balanced n in
      let (sb, lb), eb =
        capture_payloads (fun sink -> Ref.run_with_latencies ~sink tb trace)
      in
      Array.sort compare lb;
      let o = (n, trace, sb, lb, eb, tb) in
      Hashtbl.add oracle_cache key o;
      o

let check_events ctx ea eb =
  Alcotest.(check int)
    (ctx ^ ": event count")
    (List.length eb) (List.length ea);
  List.iteri
    (fun i (pa, pb) ->
      if pa <> pb then
        Alcotest.failf "%s: event %d differs: %s vs %s" ctx i
          (Obskit.Event.name pa) (Obskit.Event.name pb))
    (List.combine ea eb)

let test_parallel ~workload ~seed ~domains () =
  let ctx = Printf.sprintf "parallel d=%d %s/seed %d" domains workload seed in
  let n, trace, sb, lb, eb, tb = oracle ~workload ~seed in
  (* Traced. *)
  let ta = Build.balanced n in
  let (sa, la), ea =
    capture_payloads (fun sink ->
        Conc.run_with_latencies ~sink ~domains ta trace)
  in
  check_stats ctx sa sb;
  check_trees ctx ta tb;
  Array.sort compare la;
  Alcotest.(check (array (float 0.0))) (ctx ^ ": sorted latencies") lb la;
  check_events ctx ea eb;
  (* Untraced (the shape-cache fast path interleaves with the wave). *)
  let tc = Build.balanced n in
  let sc = Conc.run ~domains tc trace in
  check_stats (ctx ^ " untraced") sc sb;
  check_trees (ctx ^ " untraced") tc tb;
  (* Empty fault plan: every turn takes the fault-aware commit. *)
  let td = Build.balanced n in
  let empty = Faultkit.Plan.make ~seed:0 [] in
  let (sd, ld), ed =
    capture_payloads (fun sink ->
        Conc.run_with_latencies ~sink ~faults:empty ~domains td trace)
  in
  check_stats (ctx ^ " empty plan") sd sb;
  check_trees (ctx ^ " empty plan") td tb;
  Array.sort compare ld;
  Alcotest.(check (array (float 0.0)))
    (ctx ^ " empty plan: sorted latencies")
    lb ld;
  check_events (ctx ^ " empty plan") ed eb

(* Profiling is purely observational: a profiled traced run must stay
   bit-identical to the oracle at every domain count (stats, trees,
   latencies and the *run-sink* payload stream — Phase_time events go
   to the separate prof sink only), and the profile's own counters must
   obey the executor's accounting identities. *)
let test_parallel_profiled ~workload ~seed ~domains () =
  let module P = Profkit.Profile in
  let ctx = Printf.sprintf "profiled d=%d %s/seed %d" domains workload seed in
  let n, trace, sb, lb, eb, tb = oracle ~workload ~seed in
  let profile = P.create () in
  let ta = Build.balanced n in
  let (sa, la), ea =
    capture_payloads (fun sink ->
        Conc.run_with_latencies ~sink ~profile ~domains ta trace)
  in
  check_stats ctx sa sb;
  check_trees ctx ta tb;
  Array.sort compare la;
  Alcotest.(check (array (float 0.0))) (ctx ^ ": sorted latencies") lb la;
  check_events ctx ea eb;
  (* Accounting identities against the run's own statistics. *)
  Alcotest.(check int) (ctx ^ ": profiled rounds") sa.Stats.rounds
    (P.rounds profile);
  Alcotest.(check int)
    (ctx ^ ": conflicts = pauses + bypasses")
    (sa.Stats.pauses + sa.Stats.bypasses)
    (P.conflicts profile);
  (* Every validated slot either replayed its plan or was a delivery;
     every invalidated one fell back to a serial re-probe. *)
  Alcotest.(check int)
    (ctx ^ ": stamp hits split into replayed + delivered")
    (P.stamp_hits profile)
    (P.replayed profile + P.deliver_slots profile);
  Alcotest.(check int)
    (ctx ^ ": stamp misses all fell back")
    (P.stamp_misses profile) (P.fallback_slots profile);
  if domains = 1 then
    Alcotest.(check int) (ctx ^ ": no waves at domains=1") 0 (P.waves profile)
  else
    Alcotest.(check int)
      (ctx ^ ": every wave spans the whole team")
      (P.waves profile * domains)
      (P.wave_members profile);
  (* Exclusive attribution: phase totals telescope to the wall. *)
  let covered =
    List.fold_left (fun acc ph -> acc +. P.total_us profile ph) 0.0 P.phases
  in
  let wall = P.wall_us profile in
  Alcotest.(check bool) (ctx ^ ": phases cover the wall") true
    (Float.abs (covered -. wall) <= 1e-6 *. Float.max 1.0 wall)

(* Phase_time telemetry goes to the dedicated prof sink: well-formed
   events whose per-round times sum back to the profile's wall. *)
let test_profile_sink_events () =
  let module P = Profkit.Profile in
  let n, trace = trace_of ~workload:"projector" ~seed:1 in
  let profile = P.create () in
  let events = ref [] in
  let prof_sink =
    Obskit.Sink.stream (fun (e : Obskit.Event.t) ->
        events := e.Obskit.Event.payload :: !events)
  in
  let _ = Conc.run ~domains:2 ~profile ~prof_sink (Build.balanced n) trace in
  let evs = List.rev !events in
  Alcotest.(check bool) "phase_time events emitted" true
    (List.length evs > 0);
  let names = List.map P.phase_name P.phases in
  let total =
    List.fold_left
      (fun acc p ->
        match p with
        | Obskit.Event.Phase_time { round; phase; elapsed_us } ->
            Alcotest.(check bool) "round non-negative" true (round >= 0);
            Alcotest.(check bool) "elapsed positive" true (elapsed_us > 0.0);
            Alcotest.(check bool) "phase name known" true
              (List.mem phase names);
            acc +. elapsed_us
        | p -> Alcotest.failf "unexpected prof event %s" (Obskit.Event.name p))
      0.0 evs
  in
  let wall = P.wall_us profile in
  Alcotest.(check bool) "phase events sum to the wall" true
    (Float.abs (total -. wall) <= 1e-3 *. Float.max 1.0 wall)

(* The wave must actually engage (the ready set crosses the parallel
   threshold) and report itself: every team-sink event is a Plan_wave
   with a member id below the domain count, covering member 0. *)
let test_parallel_wave_telemetry () =
  let domains = 2 in
  let n, trace = trace_of ~workload:"projector" ~seed:1 in
  let events = ref [] in
  let team_sink =
    Obskit.Sink.stream (fun (e : Obskit.Event.t) ->
        events := e.Obskit.Event.payload :: !events)
  in
  let _ = Conc.run ~domains ~team_sink (Build.balanced n) trace in
  let waves = List.rev !events in
  Alcotest.(check bool)
    "parallel rounds happened (threshold crossed)" true
    (List.length waves > 0);
  let seen0 = ref false in
  List.iter
    (fun p ->
      match p with
      | Obskit.Event.Plan_wave { member; planned; _ } ->
          if member = 0 then seen0 := true;
          Alcotest.(check bool) "member in range" true (member < domains);
          Alcotest.(check bool) "planned non-negative" true (planned >= 0)
      | p -> Alcotest.failf "unexpected team event %s" (Obskit.Event.name p))
    waves;
  Alcotest.(check bool) "member 0 reported" true !seen0

(* Truncating a parallel run mid-flight must produce the oracle's
   statistics too, and the finalizer must shut the team down. *)
let test_parallel_truncated_finalize () =
  let n, trace = trace_of ~workload:"projector" ~seed:3 in
  let ta = Build.balanced n and tb = Build.balanced n in
  let sched_a, fin_a = Conc.scheduler ~domains:4 ta trace in
  let sched_b, fin_b = Ref.scheduler tb trace in
  let rounds = 20 in
  for r = 0 to rounds - 1 do
    sched_a.Simkit.Engine.tick r;
    sched_b.Simkit.Engine.tick r
  done;
  check_stats "parallel truncated" (fin_a rounds) (fin_b rounds);
  check_trees "parallel truncated" ta tb

(* The scheduler finalizer must account for in-flight messages too:
   truncating both executors mid-run (before quiescence) must still
   produce identical statistics. *)
let test_truncated_finalize () =
  let n, trace = trace_of ~workload:"projector" ~seed:3 in
  let ta = Build.balanced n and tb = Build.balanced n in
  let sched_a, fin_a = Conc.scheduler ta trace in
  let sched_b, fin_b = Ref.scheduler tb trace in
  let rounds = 20 in
  for r = 0 to rounds - 1 do
    sched_a.Simkit.Engine.tick r;
    sched_b.Simkit.Engine.tick r
  done;
  Alcotest.(check bool)
    "neither executor finished (test needs in-flight messages)" false
    (sched_a.Simkit.Engine.is_done () || sched_b.Simkit.Engine.is_done ());
  check_stats "truncated" (fin_a rounds) (fin_b rounds);
  check_trees "truncated" ta tb

(* run and run_with_latencies must agree with each other: the stats
   path is shared, latencies are derived, not re-simulated. *)
let test_run_vs_run_with_latencies () =
  let n, trace = trace_of ~workload:"skewed" ~seed:2 in
  let s1 = Conc.run (Build.balanced n) trace in
  let s2, lats = Conc.run_with_latencies (Build.balanced n) trace in
  check_stats "run vs run_with_latencies" s1 s2;
  Alcotest.(check int)
    "one latency per data message" s1.Stats.messages (Array.length lats)

let pair_cases =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" workload seed)
            `Quick
            (test_pair ~workload ~seed))
        seeds)
    workloads

let untraced_cases =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" workload seed)
            `Quick
            (test_pair_untraced ~workload ~seed))
        seeds)
    workloads

let empty_plan_cases =
  List.concat_map
    (fun workload ->
      List.map
        (fun seed ->
          Alcotest.test_case
            (Printf.sprintf "%s seed %d" workload seed)
            `Quick
            (test_pair_empty_plan ~workload ~seed))
        seeds)
    workloads

let parallel_cases =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun seed ->
          List.map
            (fun domains ->
              Alcotest.test_case
                (Printf.sprintf "%s seed %d domains %d" workload seed domains)
                `Quick
                (test_parallel ~workload ~seed ~domains))
            domain_counts)
        seeds)
    parallel_workloads

let profiled_cases =
  List.concat_map
    (fun workload ->
      List.concat_map
        (fun seed ->
          List.map
            (fun domains ->
              Alcotest.test_case
                (Printf.sprintf "%s seed %d domains %d" workload seed domains)
                `Quick
                (test_parallel_profiled ~workload ~seed ~domains))
            domain_counts)
        [ 1; 2 ])
    [ "projector"; "skewed" ]

let () =
  Alcotest.run "equivalence"
    [
      ("executor pairs", pair_cases);
      ("executor pairs untraced", untraced_cases);
      ("executor pairs empty fault plan", empty_plan_cases);
      ("parallel executor", parallel_cases);
      ( "profiled executor",
        profiled_cases
        @ [
            Alcotest.test_case "prof sink phase events" `Quick
              test_profile_sink_events;
          ] );
      ( "parallel machinery",
        [
          Alcotest.test_case "wave telemetry" `Quick
            test_parallel_wave_telemetry;
          Alcotest.test_case "parallel truncated finalize" `Quick
            test_parallel_truncated_finalize;
        ] );
      ( "finalization",
        [
          Alcotest.test_case "truncated finalize" `Quick
            test_truncated_finalize;
          Alcotest.test_case "run vs run_with_latencies" `Quick
            test_run_vs_run_with_latencies;
        ] );
    ]
