(* The effect analysis: per-rule violating and clean fixtures, the
   least fixpoint over mutual recursion, unknown-callee conservatism,
   module-scoped wave allowlisting, annotation errors, suppression
   through the engine, and the seeded-mutation catch over the real
   lib/ tree (which the (source_tree ../lib) dep makes visible to this
   binary).  Fixtures live in strings so the lint run over test/
   never trips on them. *)

module A = Effectkit.Analyze
module C = Effectkit.Callgraph
module E = Lintkit.Engine
module F = Lintkit.Finding

let rules findings = List.map (fun f -> f.F.rule) findings

let check_rules label expected findings =
  Alcotest.(check (list string)) label expected (rules findings)

let analyze files = A.analyze_strings files

let one ?(path = "lib/core/fixture.ml") code = analyze [ (path, code) ]

(* --- effect-pure --------------------------------------------------- *)

let test_pure () =
  check_rules "ref write in a pure function" [ A.rule_pure ]
    (one "(* effect: pure *)\nlet f r = r := 1\n");
  check_rules "field write in a pure function" [ A.rule_pure ]
    (one "(* effect: pure *)\nlet f st = st.weight <- 1\n");
  check_rules "array write in a pure function" [ A.rule_pure ]
    (one "(* effect: pure *)\nlet f a = a.(0) <- 1\n");
  check_rules "impure external in a pure function" [ A.rule_pure ]
    (one "(* effect: pure *)\nlet f tbl k = Hashtbl.replace tbl k 0\n");
  check_rules "arithmetic stays clean" []
    (one "(* effect: pure *)\nlet f x = (x * 2) + 1\n");
  check_rules "array read stays clean" []
    (one "(* effect: pure *)\nlet f a i = a.(i) + 1\n");
  check_rules "local ref inside an unannotated caller is its business" []
    (one "let f x = x + 1\n\nlet g r = r := 1\n")

let test_pure_transitive () =
  (* The write sits two calls away; the annotated root is blamed at
     its own call site, with the chain in the message. *)
  let fs =
    one
      "let sink st = st.weight <- 1\n\
       let middle st = sink st\n\
       (* effect: pure *)\n\
       let root st = middle st\n"
  in
  check_rules "transitive write reaches the annotated root" [ A.rule_pure ] fs;
  let f = List.hd fs in
  Alcotest.(check string) "blamed file" "lib/core/fixture.ml" f.F.file;
  Alcotest.(check int) "blamed at the root's call site" 4 f.F.line

let test_fixpoint_mutual_recursion () =
  (* even/odd form a cycle; the fixpoint must terminate and carry
     even's write around it to the annotated caller. *)
  check_rules "cycle propagates the write" [ A.rule_pure ]
    (one
       "let rec even n tbl =\n\
       \  if n = 0 then true\n\
       \  else begin Hashtbl.replace tbl n true; odd (n - 1) tbl end\n\
       and odd n tbl = if n = 0 then false else even (n - 1) tbl\n\
       (* effect: pure *)\n\
       let check tbl = even 4 tbl\n");
  check_rules "clean cycle stays clean" []
    (one
       "let rec even n = if n = 0 then true else odd (n - 1)\n\
        and odd n = if n = 0 then false else even (n - 1)\n\
        (* effect: pure *)\n\
        let check () = even 4\n")

let test_unknown_callee () =
  (* A module the graph has never seen must not be assumed pure. *)
  let fs = one "(* effect: pure *)\nlet f x = Mystery.fn x\n" in
  check_rules "unknown callee is conservative" [ A.rule_pure ] fs;
  let msg = (List.hd fs).F.message in
  Alcotest.(check bool) "message says unknown" true
    (let re = Str.regexp_string "unknown" in
     try
       ignore (Str.search_forward re msg 0);
       true
     with Not_found -> false)

let test_required_callee_frontier () =
  (* A dirty pure-annotated helper is blamed once, at the frontier:
     its annotated callers trust the annotation instead of repeating
     the finding. *)
  let fs =
    one
      "(* effect: pure *)\n\
       let helper st = st.weight <- 1\n\
       (* effect: pure *)\n\
       let caller st = helper st\n"
  in
  check_rules "one finding at the frontier" [ A.rule_pure ] fs;
  Alcotest.(check int) "blamed on the helper" 2 (List.hd fs).F.line

(* --- wave-race ----------------------------------------------------- *)

let test_wave () =
  check_rules "non-allowlisted write from the wave" [ A.rule_wave ]
    (one "(* effect: wave *)\nlet f st = st.weight <- 1\n");
  check_rules "allowlisted plan-buffer write is wave-local" []
    (one ~path:"lib/core/step.ml"
       "(* effect: wave *)\nlet f st = st.current <- 0\n");
  check_rules "allowlisted slot write is wave-local" []
    (one ~path:"lib/core/concurrent.ml"
       "(* effect: wave *)\nlet wave_go slot = slot.tag <- 1\n");
  (* The allowlist is module-scoped: Concurrent's slot fields are not
     writable from other modules. *)
  check_rules "slot field from the wrong module" [ A.rule_wave ]
    (one "(* effect: wave *)\nlet f slot = slot.tag <- 1\n");
  check_rules "nondeterminism banned in the wave" [ A.rule_wave ]
    (one ~path:"lib/simkit/fixture.ml"
       "(* effect: wave *)\nlet f () = Unix.gettimeofday ()\n")

let test_implicit_ro_seeding () =
  (* _ro names keep their read-only contract even with no annotation:
     deleting the comment cannot dodge the check. *)
  check_rules "suffix _ro is seeded" [ A.rule_wave ]
    (one "let probe_ro st = st.weight <- 1\n");
  check_rules "infix _ro_ is seeded" [ A.rule_wave ]
    (one "let resolve_ro_into st = st.weight <- 1\n");
  check_rules "speculation probe is seeded" [ A.rule_wave ]
    (one "let speculate_turn_probe st = st.weight <- 1\n");
  check_rules "plain name is not seeded" []
    (one "let resolve_into st = st.weight <- 1\n")

let test_wave_anchor () =
  (* The real Concurrent module must declare its wave roots; a
     fixture that drops them all is itself a finding. *)
  check_rules "anchor module without wave roots" [ A.rule_wave ]
    (one ~path:"lib/core/concurrent.ml" "let commit st = st.x <- 1\n");
  check_rules "anchor module with a wave root" []
    (one ~path:"lib/core/concurrent.ml"
       "(* effect: wave *)\nlet wave_member slot = slot.tag <- 1\n");
  check_rules "other modules carry no anchor duty" []
    (one "let commit st = ignore st\n")

(* --- determinism --------------------------------------------------- *)

let test_determinism () =
  check_rules "wall clock in lib/core" [ A.rule_det ]
    (one "let now () = Unix.gettimeofday ()\n");
  check_rules "self-seeded RNG in lib/bstnet" [ A.rule_det ]
    (one ~path:"lib/bstnet/fixture.ml" "let seed () = Random.self_init ()\n");
  check_rules "polymorphic hash as data in lib/forest" [ A.rule_det ]
    (one ~path:"lib/forest/fixture.ml" "let h x = Hashtbl.hash x\n");
  check_rules "domain identity as data in lib/core" [ A.rule_det ]
    (one "let me () = Domain.self ()\n");
  check_rules "wall clock outside the scope" []
    (one ~path:"lib/obskit/fixture.ml" "let now () = Unix.gettimeofday ()\n");
  check_rules "deterministic code in scope" []
    (one "let f x = x + 1\n")

(* --- annotations --------------------------------------------------- *)

let test_annotation_errors () =
  let directive = E.meta_directive in
  check_rules "unknown effect kind" [ directive ]
    (one "(* effect: bogus *)\nlet f x = x\n");
  check_rules "empty effect annotation" [ directive ]
    (one "(* effect: *)\nlet f x = x\n");
  check_rules "unattached annotation" [ directive ]
    (one "(* effect: pure *)\n\ntype t = int\n");
  check_rules "justification after the separator is fine" []
    (one "(* effect: wave -- writes nothing at all *)\nlet f x = x\n");
  Alcotest.(check bool) "parser accepts pure" true
    (match C.annotation_of_text " effect: pure " with
    | Some (Ok Effectkit.Summary.Pure) -> true
    | _ -> false);
  Alcotest.(check bool) "ordinary comments are not annotations" true
    (Option.is_none (C.annotation_of_text " plain old comment "))

(* --- engine integration -------------------------------------------- *)

let test_suppression () =
  let run code =
    E.lint_strings
      ~enabled:(fun _ -> true)
      ~passes:[ A.pass ]
      [ ("lib/core/fixture.ml", code) ]
  in
  let findings, suppressed =
    run
      "(* effect: pure *)\n\
       let f r = r := 1 (* lint: allow effect-pure -- fixture *)\n"
  in
  check_rules "allow comment suppresses the finding" [] findings;
  Alcotest.(check int) "and counts it" 1 suppressed;
  let findings, suppressed = run "(* effect: pure *)\nlet f r = r := 1\n" in
  check_rules "unsuppressed finding survives the engine" [ A.rule_pure ]
    findings;
  Alcotest.(check int) "nothing suppressed" 0 suppressed

let test_rule_toggles () =
  let findings, _ =
    E.lint_strings
      ~enabled:(fun r -> not (String.equal r A.rule_pure))
      ~passes:[ A.pass ]
      [ ("lib/core/fixture.ml", "(* effect: pure *)\nlet f r = r := 1\n") ]
  in
  check_rules "disabled rule reports nothing" [] findings

(* --- the real tree ------------------------------------------------- *)

let read_file path =
  let ic = open_in_bin path in
  let n = in_channel_length ic in
  let s = really_input_string ic n in
  close_in ic;
  s

let rec walk dir acc =
  Array.fold_left
    (fun acc name ->
      let path = Filename.concat dir name in
      if Sys.is_directory path then walk path acc
      else if Filename.check_suffix path ".ml" then path :: acc
      else acc)
    acc (Sys.readdir dir)

(* Under `dune runtest` the binary runs in _build/default/test/, where
   the source_tree dep materializes ../lib; under `dune exec` from the
   repo root, lib/ is right here. *)
let lib_root () =
  if Sys.file_exists "../lib" && Sys.is_directory "../lib" then "../lib"
  else "lib"

let lib_sources () =
  let root = lib_root () in
  let files = List.sort String.compare (walk root []) in
  Alcotest.(check bool) "found the lib tree" true (List.length files > 20);
  List.map
    (fun path ->
      (* ../lib/core/step.ml -> lib/core/step.ml *)
      let rel =
        if String.length path > 3 && String.equal (String.sub path 0 3) "../"
        then String.sub path 3 (String.length path - 3)
        else path
      in
      (rel, read_file path))
    files

let mutation_marker = "  if r >= 0.0 then r else rank (T.weight t v)"

let mutation_body =
  "  if r >= 0.0 then r\n\
  \  else begin\n\
  \    let r = rank (T.weight t v) in\n\
  \    T.set_rank_memo t v r;\n\
  \    r\n\
  \  end"

let test_real_tree_clean () =
  check_rules "the shipped lib/ tree carries no effect findings" []
    (analyze (lib_sources ()))

let test_seeded_mutation () =
  (* Injecting a single memo write into the node_rank_ro twin must
     produce exactly one finding, on that function. *)
  let mutated = ref false in
  let files =
    List.map
      (fun (path, code) ->
        if String.equal path "lib/core/potential.ml" then begin
          let re = Str.regexp_string mutation_marker in
          (try ignore (Str.search_forward re code 0)
           with Not_found ->
             Alcotest.fail
               "mutation marker not found in lib/core/potential.ml — keep \
                test_effectkit.ml's marker in sync with node_rank_ro");
          mutated := true;
          (path, Str.replace_first re mutation_body code)
        end
        else (path, code))
      (lib_sources ())
  in
  Alcotest.(check bool) "potential.ml was in the tree" true !mutated;
  match analyze files with
  | [ f ] ->
      Alcotest.(check string) "rule" A.rule_pure f.F.rule;
      Alcotest.(check string) "file" "lib/core/potential.ml" f.F.file
  | fs ->
      Alcotest.failf "expected exactly one finding, got %d:\n%s"
        (List.length fs)
        (String.concat "\n" (List.map F.to_string fs))

let () =
  Alcotest.run "effectkit"
    [
      ( "effect-pure",
        [
          Alcotest.test_case "direct writes" `Quick test_pure;
          Alcotest.test_case "transitive blame" `Quick test_pure_transitive;
          Alcotest.test_case "mutual recursion fixpoint" `Quick
            test_fixpoint_mutual_recursion;
          Alcotest.test_case "unknown callee" `Quick test_unknown_callee;
          Alcotest.test_case "frontier blame" `Quick
            test_required_callee_frontier;
        ] );
      ( "wave-race",
        [
          Alcotest.test_case "allowlist" `Quick test_wave;
          Alcotest.test_case "implicit _ro seeding" `Quick
            test_implicit_ro_seeding;
          Alcotest.test_case "anchor module" `Quick test_wave_anchor;
        ] );
      ( "determinism",
        [ Alcotest.test_case "banned sources" `Quick test_determinism ] );
      ( "annotations",
        [ Alcotest.test_case "errors" `Quick test_annotation_errors ] );
      ( "engine",
        [
          Alcotest.test_case "suppression" `Quick test_suppression;
          Alcotest.test_case "rule toggles" `Quick test_rule_toggles;
        ] );
      ( "tree",
        [
          Alcotest.test_case "clean" `Quick test_real_tree_clean;
          Alcotest.test_case "seeded mutation" `Quick test_seeded_mutation;
        ] );
    ]
