(* Optimal static tree DP: exactness against brute force, tree
   construction consistency, dominance over other trees. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module Opt = Baselines.Opt_dp
module Demand = Baselines.Demand

(* Minimum routing cost over every BST shape on [0..n-1], by
   enumerating insertion orders — every shape arises from some order.
   Keep n tiny (n! orders). *)
let brute_force_optimum demand n =
  let best = ref max_int in
  let rec permutations = function
    | [] -> [ [] ]
    | l ->
        List.concat_map
          (fun x ->
            let rest = List.filter (fun y -> y <> x) l in
            List.map (fun p -> x :: p) (permutations rest))
          l
  in
  List.iter
    (fun order ->
      let t = Build.of_insertions n order in
      let c = Demand.routing_cost demand t in
      if c < !best then best := c)
    (permutations (List.init n (fun i -> i)));
  !best

let test_dp_matches_brute_force () =
  let rng = Simkit.Rng.create 23 in
  for _ = 1 to 20 do
    let n = 2 + Simkit.Rng.int rng 4 in
    (* n in 2..5: at most 120 permutations. *)
    let m = 30 in
    let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
    let demand = Demand.of_trace ~n trace in
    let sol = Opt.solve demand in
    Alcotest.(check int) "dp = brute force" (brute_force_optimum demand n) (Opt.cost sol)
  done

let test_dp_cost_equals_built_tree_cost () =
  let rng = Simkit.Rng.create 29 in
  for _ = 1 to 15 do
    let n = 2 + Simkit.Rng.int rng 40 in
    let m = 200 in
    let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
    let demand = Demand.of_trace ~n trace in
    let sol = Opt.solve demand in
    let tree = Opt.tree sol in
    Bstnet.Check.assert_ok (Bstnet.Check.all tree);
    Alcotest.(check int) "built tree realizes the DP cost"
      (Opt.cost sol) (Demand.routing_cost demand tree)
  done

let test_opt_dominates_balanced_and_random () =
  let rng = Simkit.Rng.create 31 in
  for _ = 1 to 15 do
    let n = 2 + Simkit.Rng.int rng 40 in
    let m = 300 in
    let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
    let demand = Demand.of_trace ~n trace in
    let opt_cost = Opt.cost (Opt.solve demand) in
    Alcotest.(check bool) "<= balanced" true
      (opt_cost <= Demand.routing_cost demand (Build.balanced n));
    Alcotest.(check bool) "<= random" true
      (opt_cost <= Demand.routing_cost demand (Build.random rng n))
  done

let test_single_hot_pair_made_adjacent () =
  let n = 16 in
  let trace = Array.init 100 (fun i -> (i, 2, 11)) in
  let demand = Demand.of_trace ~n trace in
  let tree = Opt.tree (Opt.solve demand) in
  Alcotest.(check int) "hot pair adjacent" 1 (T.distance tree 2 11)

let test_opt_on_star_demand () =
  (* Everyone talks to node 0.  Because 0 is the extreme key, hanging
     it at the root forces everyone else deep on one side; the DP finds
     the better balanced arrangement and must beat the naive
     0-at-the-root tree. *)
  let n = 15 in
  let trace = Array.init 140 (fun i -> (i, 1 + (i mod (n - 1)), 0)) in
  let demand = Demand.of_trace ~n trace in
  let sol = Opt.solve demand in
  let zero_root =
    Build.of_interval_roots n (fun ~lo ~hi -> if lo = 0 then 0 else (lo + hi) / 2)
  in
  Alcotest.(check bool) "beats 0-at-root" true
    (Opt.cost sol <= Demand.routing_cost demand zero_root)

(* An independent statement of the recurrence — top-down, memoized,
   structured nothing like the production bottom-up loop — must agree
   with [solve] on every interval's cost and chosen root (both
   tie-break to the smallest minimizing k), hence on the whole tree. *)
let test_matches_naive_recurrence () =
  let rng = Simkit.Rng.create 101 in
  let check_n n =
    let m = 400 in
    let trace =
      Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n))
    in
    let demand = Demand.of_trace ~n trace in
    let memo = Hashtbl.create 97 in
    let rec naive lo hi =
      if lo > hi then (0, -1)
      else
        match Hashtbl.find_opt memo (lo, hi) with
        | Some r -> r
        | None ->
            let best = ref max_int and best_k = ref lo in
            for k = lo to hi do
              let sub lo' hi' =
                if lo' > hi' then 0
                else fst (naive lo' hi') + Demand.cut_cost demand ~lo:lo' ~hi:hi'
              in
              let c = sub lo (k - 1) + sub (k + 1) hi in
              if c < !best then begin
                best := c;
                best_k := k
              end
            done;
            Hashtbl.add memo (lo, hi) (!best, !best_k);
            (!best, !best_k)
    in
    let sol = Opt.solve demand in
    let ctx lo hi = Printf.sprintf "n=%d [%d,%d]" n lo hi in
    for lo = 0 to n - 1 do
      for hi = lo to n - 1 do
        let _, k = naive lo hi in
        Alcotest.(check int) (ctx lo hi ^ " root") k (Opt.root_of sol ~lo ~hi)
      done
    done;
    Alcotest.(check int)
      (Printf.sprintf "n=%d cost" n)
      (fst (naive 0 (n - 1)))
      (Opt.cost sol);
    (* Same per-interval roots imply the same tree; check it end to
       end anyway through the builder. *)
    let ta = Opt.tree sol in
    let tb =
      Build.of_interval_roots n (fun ~lo ~hi -> snd (naive lo hi))
    in
    for v = 0 to n - 1 do
      if T.parent ta v <> T.parent tb v then
        Alcotest.failf "n=%d: tree differs at node %d" n v
    done
  in
  List.iter check_n [ 2; 3; 7; 16; 33; 64 ]

(* Knuth's window is lossless exactly when the exact root matrix is
   monotone: on such instances the O(n²) variant must reproduce the
   exact trees and costs bit for bit. *)
let test_knuth_exact_when_monotone () =
  let rng = Simkit.Rng.create 53 in
  let monotone_seen = ref 0 in
  let check (n, demand) =
    let exact = Opt.solve ~knuth:false demand in
    if Opt.roots_monotone exact then begin
      incr monotone_seen;
      let windowed = Opt.solve ~knuth:true demand in
      Alcotest.(check int) "same cost" (Opt.cost exact) (Opt.cost windowed);
      let ta = Opt.tree exact and tb = Opt.tree windowed in
      for v = 0 to n - 1 do
        if T.parent ta v <> T.parent tb v then
          Alcotest.failf "monotone instance: tree differs at node %d" v
      done
    end
  in
  (* Random dense demands essentially never satisfy monotonicity (the
     quadrangle inequality fails on them), so the sweep mixes in
     structured instances that do. *)
  let uniform n =
    let pairs = ref [] in
    for u = 0 to n - 1 do
      for v = 0 to n - 1 do
        if u <> v then pairs := (List.length !pairs, u, v) :: !pairs
      done
    done;
    (n, Demand.of_trace ~n (Array.of_list !pairs))
  in
  let structured =
    [
      (8, Demand.of_trace ~n:8 [||]);
      uniform 12;
      (16, Demand.of_trace ~n:16 (Array.init 50 (fun i -> (i, 3, 12))));
    ]
  in
  let random =
    List.init 30 (fun _ ->
        let n = 4 + Simkit.Rng.int rng 28 in
        let m = 100 + Simkit.Rng.int rng 300 in
        ( n,
          Demand.of_trace ~n
            (Array.init m (fun i ->
                 (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n))) ))
  in
  List.iter check (structured @ random);
  Alcotest.(check bool)
    "sweep exercised at least one monotone instance" true (!monotone_seen > 0)

let test_knuth_heuristic_upper_bound () =
  (* The Knuth-window variant is a heuristic: never better than exact,
     and produces a consistent tree. *)
  let rng = Simkit.Rng.create 37 in
  for _ = 1 to 10 do
    let n = 4 + Simkit.Rng.int rng 30 in
    let m = 200 in
    let trace = Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n)) in
    let demand = Demand.of_trace ~n trace in
    let exact = Opt.cost (Opt.solve ~knuth:false demand) in
    let sol = Opt.solve ~knuth:true demand in
    Alcotest.(check bool) "heuristic >= exact" true (Opt.cost sol >= exact);
    Alcotest.(check int) "tree realizes heuristic cost" (Opt.cost sol)
      (Demand.routing_cost demand (Opt.tree sol))
  done

let test_empty_demand () =
  let demand = Demand.of_trace ~n:8 [||] in
  let sol = Opt.solve demand in
  Alcotest.(check int) "zero cost" 0 (Opt.cost sol);
  Bstnet.Check.assert_ok (Bstnet.Check.all (Opt.tree sol))

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"OPT never worse than 50 random trees" ~count:20
         Gen.(triple (int_range 2 24) (int_range 1 200) (int_bound 99999))
         (fun (n, m, seed) ->
           let rng = Simkit.Rng.create seed in
           let trace =
             Array.init m (fun i -> (i, Simkit.Rng.int rng n, Simkit.Rng.int rng n))
           in
           let demand = Demand.of_trace ~n trace in
           let opt_cost = Opt.cost (Opt.solve demand) in
           let ok = ref true in
           for _ = 1 to 50 do
             if Demand.routing_cost demand (Build.random rng n) < opt_cost then
               ok := false
           done;
           !ok));
  ]

let () =
  Alcotest.run "opt"
    [
      ( "dp",
        [
          Alcotest.test_case "matches brute force" `Quick test_dp_matches_brute_force;
          Alcotest.test_case "tree realizes cost" `Quick test_dp_cost_equals_built_tree_cost;
          Alcotest.test_case "dominates others" `Quick test_opt_dominates_balanced_and_random;
          Alcotest.test_case "hot pair adjacent" `Quick test_single_hot_pair_made_adjacent;
          Alcotest.test_case "star demand" `Quick test_opt_on_star_demand;
          Alcotest.test_case "matches naive recurrence" `Quick
            test_matches_naive_recurrence;
          Alcotest.test_case "knuth exact when monotone" `Quick
            test_knuth_exact_when_monotone;
          Alcotest.test_case "knuth heuristic" `Quick test_knuth_heuristic_upper_bound;
          Alcotest.test_case "empty demand" `Quick test_empty_demand;
        ] );
      ("properties", qcheck_tests);
    ]
