(* Servekit: the load-shape DSL, the ingest protocol, the bounded
   queue, and the serve loop's determinism / back-pressure / epoch
   decay contracts (docs/SERVING.md). *)

module Shape = Workloads.Shape
module Server = Servekit.Server
module Epoch = Servekit.Epoch

let report_text r = Format.asprintf "%a" Server.pp_report r

(* ---------- load-shape DSL ---------- *)

let roundtrip spec =
  match Shape.of_string spec with
  | Error e -> Alcotest.fail (spec ^ ": " ^ e)
  | Ok t -> (
      let s = Shape.to_string t in
      match Shape.of_string s with
      | Ok t' when t' = t -> ()
      | Ok _ -> Alcotest.fail (spec ^ ": round trip changed the shape")
      | Error e -> Alcotest.fail (s ^ ": " ^ e))

let test_shape_roundtrip () =
  List.iter roundtrip
    [
      "fixed:pfabric";
      "fixed:uniform:n=64,m=500";
      "rampup:skewed:peak=8";
      "rampup:drifting:n=128,m=2000,peak=2.5";
      "pausing:zipf:rate=12,on=40,off=160";
      "shaped:hpc:seg=100x2+30x90+100x2";
      "shaped:bursty:n=32,m=100,seg=10x1.5+5x20";
    ]

let test_shape_parse_errors () =
  List.iter
    (fun spec ->
      match Shape.of_string spec with
      | Ok _ -> Alcotest.fail (spec ^ ": expected a parse error")
      | Error _ -> ())
    [
      "";
      "fixed";
      "sawtooth:pfabric";
      "fixed:unknown-family";
      "fixed:pfabric:n=1";
      "fixed:pfabric:m=0";
      "rampup:zipf:peak=-2";
      "pausing:zipf:on=0";
      "shaped:zipf:seg=abc";
      "shaped:zipf:seg=10x-3";
      "fixed:pfabric:bogus=7";
    ]

let shape_of spec =
  match Shape.of_string spec with
  | Ok t -> t
  | Error e -> Alcotest.fail (spec ^ ": " ^ e)

let check_births spec =
  let t = shape_of spec in
  let b = Shape.births t in
  Alcotest.(check int) (spec ^ ": conserves count") t.Shape.m (Array.length b);
  Array.iteri
    (fun i r ->
      if r < 0 then Alcotest.fail (spec ^ ": negative birth");
      if i > 0 && r < b.(i - 1) then Alcotest.fail (spec ^ ": births unsorted"))
    b;
  let b' = Shape.births t in
  Alcotest.(check bool) (spec ^ ": births pure") true (b = b')

let test_shape_births_contract () =
  List.iter check_births
    [
      "fixed:pfabric:m=1000";
      "rampup:skewed:m=1000,peak=5";
      "pausing:zipf:m=1000,rate=8,on=20,off=100";
      "shaped:uniform:m=1000,seg=50x4+10x40+50x4";
    ]

let test_shape_fixed_all_zero () =
  let b = Shape.births (shape_of "fixed:zipf:m=400") in
  Alcotest.(check bool) "all at round 0" true (Array.for_all (( = ) 0) b)

let test_shape_pausing_has_gaps () =
  let t = shape_of "pausing:zipf:m=600,rate=10,on=20,off=150" in
  let b = Shape.births t in
  let max_gap = ref 0 in
  for i = 1 to Array.length b - 1 do
    max_gap := max !max_gap (b.(i) - b.(i - 1))
  done;
  (* Consecutive bursts are separated by the full off period. *)
  Alcotest.(check bool)
    (Printf.sprintf "max gap %d >= off" !max_gap)
    true (!max_gap >= 150)

let test_shape_schedule_deterministic () =
  let t = shape_of "rampup:drifting:n=64,m=1500,peak=6" in
  let a = Shape.schedule t ~seed:7 in
  let b = Shape.schedule t ~seed:7 in
  let c = Shape.schedule t ~seed:8 in
  Alcotest.(check bool) "same seed identical" true
    (a.Workloads.Trace.requests = b.Workloads.Trace.requests
    && a.Workloads.Trace.births = b.Workloads.Trace.births);
  Alcotest.(check bool) "seed changes requests only" true
    (c.Workloads.Trace.requests <> a.Workloads.Trace.requests
    && c.Workloads.Trace.births = a.Workloads.Trace.births)

(* ---------- ingest protocol ---------- *)

let test_ingest_parse () =
  let open Servekit.Ingest in
  let ok s expect =
    match parse_line ~n:16 s with
    | Ok l when l = expect -> ()
    | Ok _ -> Alcotest.fail (s ^ ": wrong parse")
    | Error e -> Alcotest.fail (s ^ ": " ^ e)
  in
  ok "1,5" (Request (1, 5));
  ok "1 5" (Request (1, 5));
  ok "1\t5" (Request (1, 5));
  ok " 12 , 3 " (Request (12, 3));
  ok "1,5\r" (Request (1, 5));
  ok "" Blank;
  ok "   " Blank;
  ok "# comment" Blank;
  List.iter
    (fun s ->
      match parse_line ~n:16 s with
      | Error _ -> ()
      | Ok _ -> Alcotest.fail (s ^ ": expected an error"))
    [ "x,5"; "1,y"; "1"; "1,2,3"; "-1,5"; "1,16"; "7,7" ]

(* ---------- bounded queue ---------- *)

let test_bqueue_fifo_bounds () =
  let open Servekit.Bqueue in
  let q = create ~capacity:4 in
  Alcotest.(check bool) "accepts to cap" true
    (List.for_all
       (fun i -> offer q ~birth:i ~src:i ~dst:(i + 1))
       [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "rejects past cap" false
    (offer q ~birth:4 ~src:4 ~dst:5);
  Alcotest.(check int) "high water" 4 (max_depth q);
  Alcotest.(check bool) "fifo" true
    (take q ~max:2 = [| (0, 0, 1); (1, 1, 2) |]);
  (* Wrap around the ring: two slots freed, two more admitted. *)
  Alcotest.(check bool) "refills after take" true
    (offer q ~birth:4 ~src:4 ~dst:5 && offer q ~birth:5 ~src:5 ~dst:6);
  Alcotest.(check bool) "fifo across wrap" true
    (take q ~max:0 = [| (2, 2, 3); (3, 3, 4); (4, 4, 5); (5, 5, 6) |]);
  Alcotest.(check bool) "drained" true (is_empty q);
  Alcotest.(check int) "high water sticks" 4 (max_depth q)

(* ---------- replay: determinism and the batch oracle ---------- *)

let replay ?(domains = 1) ?(queue_capacity = 8192) ?(batch_max = 256) ?epoch
    spec ~seed =
  let shape = shape_of spec in
  let trace = Shape.schedule shape ~seed in
  let n = trace.Workloads.Trace.n in
  let cfg = Server.config ~queue_capacity ~batch_max ~domains ~n () in
  let tree = Bstnet.Build.balanced n in
  let report = Server.replay ?epoch cfg tree (Workloads.Trace.to_runs trace) in
  (report, Bstnet.Serialize.to_string tree)

let test_replay_bit_identical () =
  let spec = "pausing:zipf:n=64,m=1500,rate=10,on=30,off=120" in
  let epoch () = Epoch.create ~every_rounds:200 ~factor:0.25 () in
  let r1, t1 = replay ~epoch:(epoch ()) spec ~seed:5 in
  let r2, t2 = replay ~epoch:(epoch ()) spec ~seed:5 in
  Alcotest.(check string) "report identical" (report_text r1) (report_text r2);
  Alcotest.(check string) "tree identical" t1 t2

let test_replay_accounting () =
  let spec = "rampup:skewed:n=64,m=1200,peak=6" in
  let r, _ = replay spec ~seed:3 in
  Alcotest.(check int) "seen = admitted + shed" r.Server.seen
    (r.Server.admitted + r.Server.shed);
  Alcotest.(check int) "all delivered" r.Server.admitted
    r.Server.stats.Cbnet.Run_stats.messages;
  Alcotest.(check bool) "queue bounded" true (r.Server.max_queue_depth <= 8192)

let test_replay_matches_batch_oracle () =
  let spec = "fixed:pfabric:n=64,m=2000" in
  let shape = shape_of spec in
  let trace = Shape.schedule shape ~seed:1 in
  let runs = Workloads.Trace.to_runs trace in
  let oracle = Cbnet.Concurrent.run (Bstnet.Build.balanced 64) runs in
  let oracle_tree =
    let t = Bstnet.Build.balanced 64 in
    ignore (Cbnet.Concurrent.run t runs);
    Bstnet.Serialize.to_string t
  in
  List.iter
    (fun domains ->
      let r, tree =
        replay ~domains ~queue_capacity:2048 ~batch_max:0 spec ~seed:1
      in
      Alcotest.(check bool)
        (Printf.sprintf "stats = Concurrent.run (domains=%d)" domains)
        true
        (r.Server.stats = oracle);
      Alcotest.(check string)
        (Printf.sprintf "tree = Concurrent.run (domains=%d)" domains)
        oracle_tree tree;
      Alcotest.(check int) "one batch" 1 r.Server.batches)
    [ 1; 2 ]

(* ---------- back-pressure ---------- *)

let flash_crowd = "shaped:uniform:n=64,m=2000,seg=80x2+25x100+80x2"

let test_backpressure_shed_bounded () =
  let shape = shape_of flash_crowd in
  let trace = Shape.schedule shape ~seed:2 in
  let cfg =
    Server.config ~queue_capacity:128 ~policy:Server.Shed ~n:64 ()
  in
  let r = Server.replay cfg (Bstnet.Build.balanced 64) (Workloads.Trace.to_runs trace) in
  Alcotest.(check bool) "queue never exceeds cap" true
    (r.Server.max_queue_depth <= 128);
  Alcotest.(check bool) "flash crowd sheds" true (r.Server.shed > 0);
  Alcotest.(check int) "seen = admitted + shed" r.Server.seen
    (r.Server.admitted + r.Server.shed);
  Alcotest.(check int) "admitted all delivered" r.Server.admitted
    r.Server.stats.Cbnet.Run_stats.messages

let test_backpressure_park_lossless () =
  let shape = shape_of flash_crowd in
  let trace = Shape.schedule shape ~seed:2 in
  let cfg =
    Server.config ~queue_capacity:128 ~policy:Server.Park ~n:64 ()
  in
  let r = Server.replay cfg (Bstnet.Build.balanced 64) (Workloads.Trace.to_runs trace) in
  Alcotest.(check int) "park sheds nothing" 0 r.Server.shed;
  Alcotest.(check int) "every arrival admitted" r.Server.seen r.Server.admitted;
  Alcotest.(check bool) "queue never exceeds cap" true
    (r.Server.max_queue_depth <= 128)

(* ---------- epoch decay ---------- *)

let test_epoch_decay_beats_stale_counters () =
  (* Drifting demand: weights learned on dead hotspots mislead the
     reconfiguration, so periodic decay must lower the route cost. *)
  let spec = "rampup:drifting:n=128,m=6000,peak=8" in
  let plain, _ = replay ~queue_capacity:8192 spec ~seed:21 in
  let decayed, _ =
    replay ~queue_capacity:8192
      ~epoch:(Epoch.create ~every_rounds:150 ~factor:0.25 ())
      spec ~seed:21
  in
  let cost (r : Server.report) = r.Server.stats.Cbnet.Run_stats.routing_cost in
  Alcotest.(check bool)
    (Printf.sprintf "decayed routing %d < stale %d" (cost decayed) (cost plain))
    true
    (cost decayed < cost plain);
  Alcotest.(check bool) "decay passes happened" true (decayed.Server.decays > 0)

let test_epoch_decay_zero_resets_counters () =
  let t = Bstnet.Build.balanced 31 in
  ignore (Cbnet.Sequential.run t (Array.init 200 (fun i -> (i, 2, 27))));
  Alcotest.(check bool) "weights accumulated" true
    (Bstnet.Topology.total_weight t > 0);
  Cbnet.Counter_reset.decay t ~factor:0.0;
  (* factor 0 is the fresh rebuild: every counter back to zero. *)
  for v = 0 to 30 do
    Alcotest.(check int)
      (Printf.sprintf "counter %d" v)
      0
      (Bstnet.Topology.counter t v)
  done;
  Alcotest.(check int) "total weight zero" 0 (Bstnet.Topology.total_weight t);
  Bstnet.Check.assert_ok (Bstnet.Check.weights t)

let test_epoch_cadence () =
  let e = Epoch.create ~every_rounds:10 ~factor:0.5 () in
  let clock = Servekit.Vclock.virtual_ () in
  let t = Bstnet.Build.balanced 7 in
  Alcotest.(check bool) "not yet" false (Epoch.maybe_roll e ~clock t);
  Servekit.Vclock.advance clock 10;
  Alcotest.(check bool) "fires at cadence" true (Epoch.maybe_roll e ~clock t);
  Alcotest.(check bool) "rearms" false (Epoch.maybe_roll e ~clock t);
  Servekit.Vclock.advance clock 10;
  Alcotest.(check bool) "fires again" true (Epoch.maybe_roll e ~clock t);
  Alcotest.(check int) "counted" 2 (Epoch.decays e);
  let off = Epoch.disabled () in
  Servekit.Vclock.advance clock 1000;
  Alcotest.(check bool) "disabled never fires" false
    (Epoch.maybe_roll off ~clock t)

(* ---------- run_concurrent parity (Counter_reset) ---------- *)

let test_run_concurrent_parity () =
  let trace = Workloads.Drifting.generate ~n:64 ~m:3000 ~seed:17 () in
  let runs = Workloads.Trace.to_runs trace in
  let plain = Cbnet.Concurrent.run (Bstnet.Build.balanced 64) runs in
  (* A cadence beyond the run's makespan never decays: bit-identical
     to the plain executor. *)
  let never =
    Cbnet.Counter_reset.run_concurrent ~every_rounds:100_000_000 ~factor:0.5
      (Bstnet.Build.balanced 64) runs
  in
  Alcotest.(check bool) "huge cadence = plain run" true (never = plain);
  (* The widened signature composes with the executor's knobs. *)
  let seen = ref 0 in
  let sink = Obskit.Sink.stream (fun _ -> incr seen) in
  let multi =
    Cbnet.Counter_reset.run_concurrent ~every_rounds:500 ~factor:0.25
      ~domains:2 ~sink ~check_invariants:true (Bstnet.Build.balanced 64) runs
  in
  let single =
    Cbnet.Counter_reset.run_concurrent ~every_rounds:500 ~factor:0.25
      ~domains:1 (Bstnet.Build.balanced 64) runs
  in
  Alcotest.(check bool) "domains invariant" true (multi = single);
  Alcotest.(check bool) "sink saw events" true (!seen > 0)

(* ---------- live serve loop over a pipe ---------- *)

let test_serve_pipe_drains_on_eof () =
  let rd, wr = Unix.pipe () in
  let lines = "0,9\n3 14\n# comment\n\nnope,2\n15,4\n" in
  let _ = Unix.write_substring wr lines 0 (String.length lines) in
  Unix.close wr;
  let cfg = Server.config ~n:16 () in
  let clock = Servekit.Vclock.virtual_ () in
  let r = Server.serve ~clock cfg (Bstnet.Build.balanced 16) [ rd ] in
  Alcotest.(check int) "valid lines seen" 3 r.Server.seen;
  Alcotest.(check int) "admitted" 3 r.Server.admitted;
  Alcotest.(check int) "parse errors" 1 r.Server.parse_errors;
  Alcotest.(check int) "delivered" 3 r.Server.stats.Cbnet.Run_stats.messages

(* ---------- /metrics plumbing ---------- *)

let test_http_response_and_route () =
  let body () = "cbnet_serve_requests_total 3\n" in
  let resp = Servekit.Http.route "GET /metrics HTTP/1.1" ~path:"/metrics" ~body in
  Alcotest.(check bool) "200" true
    (String.length resp >= 15 && String.sub resp 0 15 = "HTTP/1.0 200 OK");
  Alcotest.(check bool) "content length" true
    (let marker = Printf.sprintf "Content-Length: %d" (String.length (body ())) in
     let rec find i =
       i + String.length marker <= String.length resp
       && (String.sub resp i (String.length marker) = marker || find (i + 1))
     in
     find 0);
  let missing = Servekit.Http.route "GET /other HTTP/1.1" ~path:"/metrics" ~body in
  Alcotest.(check bool) "404" true
    (String.length missing >= 12 && String.sub missing 0 12 = "HTTP/1.0 404");
  let post = Servekit.Http.route "POST /metrics HTTP/1.1" ~path:"/metrics" ~body in
  Alcotest.(check bool) "405" true
    (String.length post >= 12 && String.sub post 0 12 = "HTTP/1.0 405")

let () =
  Alcotest.run "servekit"
    [
      ( "shape",
        [
          Alcotest.test_case "roundtrip" `Quick test_shape_roundtrip;
          Alcotest.test_case "parse errors" `Quick test_shape_parse_errors;
          Alcotest.test_case "births contract" `Quick test_shape_births_contract;
          Alcotest.test_case "fixed all zero" `Quick test_shape_fixed_all_zero;
          Alcotest.test_case "pausing gaps" `Quick test_shape_pausing_has_gaps;
          Alcotest.test_case "schedule deterministic" `Quick
            test_shape_schedule_deterministic;
        ] );
      ( "ingest",
        [ Alcotest.test_case "line protocol" `Quick test_ingest_parse ] );
      ( "bqueue",
        [ Alcotest.test_case "fifo and bounds" `Quick test_bqueue_fifo_bounds ] );
      ( "replay",
        [
          Alcotest.test_case "bit identical" `Quick test_replay_bit_identical;
          Alcotest.test_case "accounting" `Quick test_replay_accounting;
          Alcotest.test_case "batch oracle" `Quick
            test_replay_matches_batch_oracle;
        ] );
      ( "backpressure",
        [
          Alcotest.test_case "shed bounded" `Quick
            test_backpressure_shed_bounded;
          Alcotest.test_case "park lossless" `Quick
            test_backpressure_park_lossless;
        ] );
      ( "epoch",
        [
          Alcotest.test_case "decay beats stale counters" `Quick
            test_epoch_decay_beats_stale_counters;
          Alcotest.test_case "factor 0 resets" `Quick
            test_epoch_decay_zero_resets_counters;
          Alcotest.test_case "cadence" `Quick test_epoch_cadence;
        ] );
      ( "counter_reset",
        [
          Alcotest.test_case "run_concurrent parity" `Quick
            test_run_concurrent_parity;
        ] );
      ( "serve",
        [
          Alcotest.test_case "pipe drains on EOF" `Quick
            test_serve_pipe_drains_on_eof;
          Alcotest.test_case "http metrics" `Quick
            test_http_response_and_route;
        ] );
    ]
