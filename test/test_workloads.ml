(* Workload generators: sizes, ranges, determinism, and the locality
   characteristics each family is designed to exhibit. *)

module Trace = Workloads.Trace

let in_range t =
  Array.for_all
    (fun (s, d) -> s >= 0 && s < t.Trace.n && d >= 0 && d < t.Trace.n)
    t.Trace.requests

let distinct_pairs t =
  let tbl = Hashtbl.create 1024 in
  Array.iter (fun p -> Hashtbl.replace tbl p ()) t.Trace.requests;
  Hashtbl.length tbl

let repeat_fraction t =
  let reqs = t.Trace.requests in
  let m = Array.length reqs in
  if m < 2 then 0.0
  else begin
    let rep = ref 0 in
    for i = 1 to m - 1 do
      if reqs.(i) = reqs.(i - 1) then incr rep
    done;
    float_of_int !rep /. float_of_int (m - 1)
  end

let test_trace_make_validates () =
  Alcotest.check_raises "range" (Invalid_argument "Trace.make: endpoint out of range")
    (fun () -> ignore (Trace.make ~name:"x" ~n:4 [| (0, 4) |]))

let test_trace_births_default () =
  let t = Trace.make ~name:"x" ~n:4 [| (0, 1); (2, 3) |] in
  Alcotest.(check (list int)) "slots" [ 0; 1 ] (Array.to_list t.Trace.births)

let test_trace_poisson_births () =
  let t = Trace.make ~name:"x" ~n:4 (Array.make 1000 (0, 1)) in
  let t = Trace.with_poisson_births (Simkit.Rng.create 3) ~lambda:0.05 t in
  let b = t.Trace.births in
  for i = 1 to 999 do
    if b.(i) < b.(i - 1) then Alcotest.fail "births unsorted"
  done;
  Alcotest.(check bool) "dense arrivals" true (b.(999) < 1300)

let test_trace_to_runs () =
  let t = Trace.make ~name:"x" ~n:4 [| (0, 1); (2, 3) |] in
  Alcotest.(check bool) "triples" true (Trace.to_runs t = [| (0, 0, 1); (1, 2, 3) |])

let test_trace_shuffle_preserves_multiset () =
  let t = Workloads.Bursty.generate ~n:32 ~m:500 ~seed:1 () in
  let s = Trace.shuffled (Simkit.Rng.create 2) t in
  let sort a = List.sort compare (Array.to_list a) in
  Alcotest.(check bool) "same multiset" true
    (sort t.Trace.requests = sort s.Trace.requests);
  Alcotest.(check bool) "order changed" true (t.Trace.requests <> s.Trace.requests)

let test_trace_csv_roundtrip () =
  let t = Workloads.Uniform.generate ~n:16 ~m:50 ~seed:3 () in
  let path = Filename.temp_file "trace" ".csv" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Trace.save_csv t path;
      let t' = Trace.load_csv ~name:"uniform" ~n:16 path in
      Alcotest.(check bool) "requests roundtrip" true (t.Trace.requests = t'.Trace.requests);
      Alcotest.(check bool) "births roundtrip" true (t.Trace.births = t'.Trace.births))

let test_generator_determinism () =
  List.iter
    (fun key ->
      let e = Workloads.Catalog.find key in
      let a = e.Workloads.Catalog.generate Workloads.Catalog.Default ~seed:5 in
      let b = e.Workloads.Catalog.generate Workloads.Catalog.Default ~seed:5 in
      let c = e.Workloads.Catalog.generate Workloads.Catalog.Default ~seed:6 in
      Alcotest.(check bool) (key ^ " same seed same trace") true
        (a.Trace.requests = b.Trace.requests);
      Alcotest.(check bool) (key ^ " diff seed diff trace") true
        (a.Trace.requests <> c.Trace.requests))
    Workloads.Catalog.keys

let test_generator_ranges_and_sizes () =
  List.iter
    (fun key ->
      let e = Workloads.Catalog.find key in
      let t = e.Workloads.Catalog.generate Workloads.Catalog.Default ~seed:7 in
      Alcotest.(check bool) (key ^ " in range") true (in_range t);
      Alcotest.(check int) (key ^ " n matches catalog") e.Workloads.Catalog.n t.Trace.n;
      Alcotest.(check bool) (key ^ " nonempty") true (Trace.length t > 0))
    Workloads.Catalog.keys

let test_zipf_distribution () =
  let z = Workloads.Zipf.create ~alpha:1.0 ~k:100 in
  Alcotest.(check bool) "rank 0 heaviest" true
    (Workloads.Zipf.probability z 0 > Workloads.Zipf.probability z 1);
  let total = ref 0.0 in
  for i = 0 to 99 do
    total := !total +. Workloads.Zipf.probability z i
  done;
  Alcotest.(check (float 1e-9)) "normalized" 1.0 !total;
  (* Empirical head frequency matches the pmf. *)
  let rng = Simkit.Rng.create 11 in
  let hits = ref 0 in
  let n = 50_000 in
  for _ = 1 to n do
    if Workloads.Zipf.sample z rng = 0 then incr hits
  done;
  let freq = float_of_int !hits /. float_of_int n in
  Alcotest.(check bool) "head frequency" true
    (Float.abs (freq -. Workloads.Zipf.probability z 0) < 0.01)

let test_zipf_alpha_zero_is_uniform () =
  let z = Workloads.Zipf.create ~alpha:0.0 ~k:10 in
  for i = 0 to 9 do
    Alcotest.(check (float 1e-9)) "uniform" 0.1 (Workloads.Zipf.probability z i)
  done

let test_skewed_entropy_target () =
  let trace =
    Workloads.Skewed.generate_with_entropy ~n:256 ~m:20_000 ~support:512
      ~entropy:5.0 ~seed:41 ()
  in
  (* Empirical pair entropy of a 20k-sample draw should approach the
     5-bit design target. *)
  let tbl = Hashtbl.create 1024 in
  Array.iter
    (fun p ->
      Hashtbl.replace tbl p (1 + Option.value ~default:0 (Hashtbl.find_opt tbl p)))
    trace.Trace.requests;
  let m = float_of_int (Trace.length trace) in
  let h =
    Hashtbl.fold
      (fun _ c acc ->
        let p = float_of_int c /. m in
        acc -. (p *. Float.log2 p))
      tbl 0.0
  in
  Alcotest.(check bool)
    (Printf.sprintf "empirical entropy %.2f near 5.0" h)
    true
    (Float.abs (h -. 5.0) < 0.35)

let test_zipf_alpha_for_entropy () =
  let k = 256 in
  let target = 4.0 in
  let alpha = Workloads.Zipf.alpha_for_entropy ~k ~target in
  let h = Workloads.Zipf.entropy (Workloads.Zipf.create ~alpha ~k) in
  Alcotest.(check bool) "entropy hit" true (Float.abs (h -. target) < 0.05)

let test_bursty_has_temporal_locality () =
  let t = Workloads.Bursty.generate ~n:128 ~m:5000 ~mean_burst:50.0 ~seed:13 () in
  Alcotest.(check bool) "mostly repeats" true (repeat_fraction t > 0.9);
  (* And essentially uniform pairs across bursts. *)
  Alcotest.(check bool) "many distinct pairs" true (distinct_pairs t > 50)

let test_skewed_has_nontemporal_locality () =
  let t = Workloads.Skewed.generate ~n:128 ~m:5000 ~alpha:1.4 ~support:500 ~seed:13 () in
  Alcotest.(check bool) "few repeats (iid)" true (repeat_fraction t < 0.2);
  (* Head pair dominates. *)
  let tbl = Hashtbl.create 64 in
  Array.iter
    (fun p ->
      Hashtbl.replace tbl p (1 + Option.value ~default:0 (Hashtbl.find_opt tbl p)))
    t.Trace.requests;
  let top = Hashtbl.fold (fun _ v acc -> max v acc) tbl 0 in
  Alcotest.(check bool) "hot pair present" true (top > 200)

let test_projector_support_size () =
  let t = Workloads.Projector.generate ~seed:17 () in
  Alcotest.(check int) "n = 128" 128 t.Trace.n;
  Alcotest.(check bool) "support bounded by 8367" true (distinct_pairs t <= 8367);
  Alcotest.(check bool) "no self traffic" true
    (Array.for_all (fun (s, d) -> s <> d) t.Trace.requests)

let test_pfabric_flows_are_runs () =
  let t = Workloads.Pfabric.generate ~m:20_000 ~seed:19 () in
  Alcotest.(check int) "n = 144" 144 t.Trace.n;
  Alcotest.(check bool) "strong temporal structure" true (repeat_fraction t > 0.15)

let test_hpc_structure () =
  let t = Workloads.Hpc.generate ~side:8 ~m:10_000 ~seed:23 () in
  Alcotest.(check int) "n = 64" 64 t.Trace.n;
  (* Fixed partner structure: the distinct pair count is bounded by the
     stencil (4n) plus the reduction tree (n). *)
  Alcotest.(check bool) "bounded partners" true (distinct_pairs t <= 5 * 64)

let test_datastructure_root_destination () =
  let t = Workloads.Datastructure.generate ~n:128 ~m:2000 ~seed:29 () in
  Alcotest.(check bool) "all to the root key" true
    (Array.for_all (fun (_, d) -> d = 63) t.Trace.requests);
  Alcotest.(check bool) "sources concentrated near root" true
    (Array.for_all (fun (s, _) -> abs (s - 63) < 16) t.Trace.requests)

let test_drifting_phases_disjoint () =
  let t = Workloads.Drifting.generate ~n:64 ~m:2000 ~phases:2 ~support:50 ~seed:31 () in
  let m = Trace.length t in
  let first = Array.sub t.Trace.requests 0 (m / 2) in
  let second = Array.sub t.Trace.requests (m / 2) (m / 2) in
  let set a =
    let tbl = Hashtbl.create 64 in
    Array.iter (fun p -> Hashtbl.replace tbl p ()) a;
    tbl
  in
  let s1 = set first and s2 = set second in
  let overlap = Hashtbl.fold (fun p () acc -> if Hashtbl.mem s1 p then acc + 1 else acc) s2 0 in
  Alcotest.(check int) "phases disjoint" 0 overlap

let test_catalog_lookup () =
  Alcotest.(check int) "seven entries" 7 (List.length Workloads.Catalog.all);
  Alcotest.(check int) "six paper workloads" 6 (List.length Workloads.Catalog.paper_six);
  Alcotest.check_raises "unknown" Not_found (fun () ->
      ignore (Workloads.Catalog.find "nope"))

let test_catalog_descriptions () =
  (* Descriptions derive their size from the entry's n field — no
     hardcoded "(n=1024)" strings to drift out of sync. *)
  List.iter
    (fun (e : Workloads.Catalog.entry) ->
      let tag = Printf.sprintf "(n=%d)" e.Workloads.Catalog.n in
      let contains hay needle =
        let nh = String.length hay and nn = String.length needle in
        let rec go i =
          i + nn <= nh && (String.sub hay i nn = needle || go (i + 1))
        in
        go 0
      in
      if not (contains e.Workloads.Catalog.description tag) then
        Alcotest.failf "%s: description %S lacks %s" e.Workloads.Catalog.key
          e.Workloads.Catalog.description tag)
    Workloads.Catalog.all

let test_generator_validation () =
  let rejects label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  rejects "uniform n<2" (fun () ->
      Workloads.Uniform.generate ~n:1 ~m:10 ~seed:1 ());
  rejects "pfabric n<2" (fun () ->
      Workloads.Pfabric.generate ~n:0 ~m:10 ~seed:1 ());
  rejects "bursty n<2" (fun () ->
      Workloads.Bursty.generate ~n:1 ~m:10 ~seed:1 ());
  rejects "skewed n<2" (fun () ->
      Workloads.Skewed.generate ~n:1 ~m:10 ~support:4 ~seed:1 ());
  rejects "skewed support<n" (fun () ->
      Workloads.Skewed.generate ~n:64 ~m:10 ~support:8 ~seed:1 ());
  rejects "projector support<n" (fun () ->
      Workloads.Projector.generate ~n:64 ~m:10 ~support:8 ~seed:1 ());
  rejects "datastructure n<2" (fun () ->
      Workloads.Datastructure.generate ~n:1 ~m:10 ~seed:1 ());
  rejects "drifting n<2" (fun () ->
      Workloads.Drifting.generate ~n:1 ~m:10 ~seed:1 ())

let test_catalog_scaled () =
  List.iter
    (fun key ->
      List.iter
        (fun n ->
          let t = Workloads.Catalog.scaled key ~n ~m:200 ~seed:3 in
          (* hpc rounds n down to a square grid; everyone else keeps it. *)
          if key <> "hpc" then
            Alcotest.(check int) (key ^ ": n") n t.Trace.n
          else Alcotest.(check bool) (key ^ ": n near") true (t.Trace.n <= n);
          Alcotest.(check bool) (key ^ ": n >= 2") true (t.Trace.n >= 2);
          Alcotest.(check int) (key ^ ": m") 200 (Trace.length t);
          Alcotest.(check bool) (key ^ ": range") true (in_range t))
        [ 64; 1000 ])
    Workloads.Catalog.scaled_keys;
  let rejects label f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: expected Invalid_argument" label
  in
  rejects "unknown key" (fun () ->
      Workloads.Catalog.scaled "nope" ~n:64 ~m:10 ~seed:1);
  rejects "scaled n<2" (fun () ->
      Workloads.Catalog.scaled "uniform" ~n:1 ~m:10 ~seed:1)

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"all generators stay in range for any seed" ~count:30
         Gen.(pair (int_bound 99999) (int_range 0 6))
         (fun (seed, which) ->
           let e = List.nth Workloads.Catalog.all which in
           let t = e.Workloads.Catalog.generate Workloads.Catalog.Default ~seed in
           in_range t));
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"zipf sample within support" ~count:200
         Gen.(triple (int_range 1 500) (float_bound_inclusive 3.0) (int_bound 99999))
         (fun (k, alpha, seed) ->
           let z = Workloads.Zipf.create ~alpha ~k in
           let rng = Simkit.Rng.create seed in
           let v = Workloads.Zipf.sample z rng in
           v >= 0 && v < k));
  ]

let () =
  Alcotest.run "workloads"
    [
      ( "trace",
        [
          Alcotest.test_case "validates" `Quick test_trace_make_validates;
          Alcotest.test_case "default births" `Quick test_trace_births_default;
          Alcotest.test_case "poisson births" `Quick test_trace_poisson_births;
          Alcotest.test_case "to_runs" `Quick test_trace_to_runs;
          Alcotest.test_case "shuffle multiset" `Quick test_trace_shuffle_preserves_multiset;
          Alcotest.test_case "csv roundtrip" `Quick test_trace_csv_roundtrip;
        ] );
      ( "zipf",
        [
          Alcotest.test_case "distribution" `Quick test_zipf_distribution;
          Alcotest.test_case "alpha zero" `Quick test_zipf_alpha_zero_is_uniform;
          Alcotest.test_case "alpha for entropy" `Quick test_zipf_alpha_for_entropy;
          Alcotest.test_case "skewed entropy target" `Quick test_skewed_entropy_target;
        ] );
      ( "families",
        [
          Alcotest.test_case "determinism" `Quick test_generator_determinism;
          Alcotest.test_case "ranges and sizes" `Quick test_generator_ranges_and_sizes;
          Alcotest.test_case "bursty temporal" `Quick test_bursty_has_temporal_locality;
          Alcotest.test_case "skewed non-temporal" `Quick test_skewed_has_nontemporal_locality;
          Alcotest.test_case "projector support" `Quick test_projector_support_size;
          Alcotest.test_case "pfabric runs" `Quick test_pfabric_flows_are_runs;
          Alcotest.test_case "hpc structure" `Quick test_hpc_structure;
          Alcotest.test_case "datastructure root" `Quick test_datastructure_root_destination;
          Alcotest.test_case "drifting disjoint" `Quick test_drifting_phases_disjoint;
          Alcotest.test_case "catalog" `Quick test_catalog_lookup;
          Alcotest.test_case "catalog descriptions" `Quick
            test_catalog_descriptions;
          Alcotest.test_case "generator validation" `Quick
            test_generator_validation;
          Alcotest.test_case "catalog scaled" `Quick test_catalog_scaled;
        ] );
      ("properties", qcheck_tests);
    ]
