(* The domain pool and the determinism contract of the parallel
   experiment runner: same tasks, same results, any number of
   domains. *)

module Pool = Simkit.Pool

let test_map_runs_each_task_once () =
  Pool.with_pool ~num_domains:4 (fun pool ->
      let n = 100 in
      let hits = Array.init n (fun _ -> Atomic.make 0) in
      let results =
        Pool.map pool n (fun i ->
            Atomic.incr hits.(i);
            i * i)
      in
      Alcotest.(check int) "n results" n (Array.length results);
      Array.iteri
        (fun i r -> Alcotest.(check int) "slot i holds f i" (i * i) r)
        results;
      Array.iteri
        (fun i h ->
          Alcotest.(check int)
            (Printf.sprintf "task %d ran exactly once" i)
            1 (Atomic.get h))
        hits)

let test_map_inline_at_one_domain () =
  Pool.with_pool ~num_domains:1 (fun pool ->
      Alcotest.(check int) "no workers" 1 (Pool.num_domains pool);
      (* In-caller execution: tasks run on the calling domain. *)
      let caller = Domain.self () in
      let results =
        Pool.map pool 10 (fun i ->
            Alcotest.(check bool) "runs in caller" true (Domain.self () = caller);
            i + 1)
      in
      Alcotest.(check (array int)) "ordered results"
        (Array.init 10 (fun i -> i + 1))
        results)

let test_map_empty_and_single () =
  Pool.with_pool ~num_domains:3 (fun pool ->
      Alcotest.(check int) "empty batch" 0 (Array.length (Pool.map pool 0 (fun i -> i)));
      Alcotest.(check (array int)) "single task" [| 42 |]
        (Pool.map pool 1 (fun _ -> 42)))

let test_exception_propagates_lowest_index () =
  List.iter
    (fun num_domains ->
      Pool.with_pool ~num_domains (fun pool ->
          let raised =
            try
              ignore
                (Pool.map pool 8 (fun i ->
                     if i = 2 || i = 5 then failwith (string_of_int i) else i));
              None
            with Failure msg -> Some msg
          in
          Alcotest.(check (option string))
            (Printf.sprintf "lowest failing index wins (jobs=%d)" num_domains)
            (Some "2") raised;
          (* The pool survives a failed batch. *)
          Alcotest.(check (array int)) "pool still usable" [| 0; 1; 2 |]
            (Pool.map pool 3 (fun i -> i))))
    [ 1; 4 ]

exception Boom

let test_run_propagates_exceptions () =
  List.iter
    (fun num_domains ->
      Pool.with_pool ~num_domains (fun pool ->
          Alcotest.check_raises
            (Printf.sprintf "thunk exception reaches caller (jobs=%d)"
               num_domains)
            Boom
            (fun () ->
              ignore (Pool.run pool [ (fun () -> 1); (fun () -> raise Boom) ]));
          (* The failed batch neither kills a worker nor poisons later
             batches. *)
          Alcotest.(check (list int)) "pool still usable" [ 7; 8 ]
            (Pool.run pool [ (fun () -> 7); (fun () -> 8) ])))
    [ 1; 4 ]

let test_with_lock_returns_and_releases () =
  let m = Mutex.create () in
  Alcotest.(check int) "passes the result through" 3
    (Pool.with_lock m (fun () -> 3));
  (* Released on normal exit: an immediate re-lock must succeed. *)
  Alcotest.(check bool) "relockable" true (Mutex.try_lock m);
  Mutex.unlock m

let test_with_lock_releases_on_exception () =
  let m = Mutex.create () in
  Alcotest.check_raises "exception passes through" Boom (fun () ->
      Pool.with_lock m (fun () -> raise Boom));
  Alcotest.(check bool) "released after raise" true (Mutex.try_lock m);
  Mutex.unlock m

let test_run_preserves_list_order () =
  Pool.with_pool ~num_domains:2 (fun pool ->
      let thunks = List.init 20 (fun i () -> 2 * i) in
      Alcotest.(check (list int)) "ordered"
        (List.init 20 (fun i -> 2 * i))
        (Pool.run pool thunks))

let test_shutdown_is_idempotent_and_final () =
  let pool = Pool.create ~num_domains:2 () in
  Alcotest.(check (array int)) "works before shutdown" [| 0; 1 |]
    (Pool.map pool 2 (fun i -> i));
  Pool.shutdown pool;
  Pool.shutdown pool;
  Alcotest.check_raises "map after shutdown"
    (Invalid_argument "Pool.map: pool is shut down") (fun () ->
      ignore (Pool.map pool 1 (fun i -> i)))

let test_default_num_domains_positive () =
  Alcotest.(check bool) "at least one" true (Pool.default_num_domains () >= 1);
  Alcotest.(check bool) "jobs at least one" true (Pool.default_jobs () >= 1)

(* The acceptance contract of the parallel runner: a cell measured
   with a 4-domain pool is field-for-field identical to the sequential
   path.  Per-seed samples are independent and aggregation folds in
   fixed seed order, so even the float summaries match bit-for-bit. *)
let check_measurement_equal label (a : Runtime.Experiment.measurement)
    (b : Runtime.Experiment.measurement) =
  Alcotest.(check bool)
    (label ^ ": identical measurement")
    true (a = b);
  (* Spot-check a few fields so a failure names the culprit. *)
  Alcotest.(check (float 0.0))
    (label ^ ": work mean")
    a.Runtime.Experiment.work.Simkit.Stats.mean
    b.Runtime.Experiment.work.Simkit.Stats.mean;
  Alcotest.(check (float 0.0))
    (label ^ ": throughput std")
    a.Runtime.Experiment.throughput.Simkit.Stats.std
    b.Runtime.Experiment.throughput.Simkit.Stats.std

let test_run_cell_parallel_matches_sequential () =
  List.iter
    (fun algo ->
      let cell pool =
        Runtime.Experiment.run_cell ?pool ~scale:Workloads.Catalog.Smoke
          ~seeds:5 ~workload:"uniform" ~algo ()
      in
      let sequential = cell None in
      let parallel =
        Pool.with_pool ~num_domains:4 (fun pool -> cell (Some pool))
      in
      check_measurement_equal (Runtime.Algo.name algo) sequential parallel)
    [ Runtime.Algo.SCBN; Runtime.Algo.CBN ]

let test_run_matrix_parallel_matches_sequential () =
  let matrix pool =
    Runtime.Experiment.run_matrix ?pool ~scale:Workloads.Catalog.Smoke ~seeds:3
      ~workloads:[ "uniform"; "datastructure" ]
      ~algos:[ Runtime.Algo.SN; Runtime.Algo.SCBN ]
      ()
  in
  let sequential = matrix None in
  let parallel = Pool.with_pool ~num_domains:4 (fun pool -> matrix (Some pool)) in
  Alcotest.(check int) "same cell count" (List.length sequential)
    (List.length parallel);
  List.iter2
    (fun (a : Runtime.Experiment.measurement) b ->
      check_measurement_equal
        (a.Runtime.Experiment.workload ^ "/"
        ^ Runtime.Algo.name a.Runtime.Experiment.algo)
        a b)
    sequential parallel

let test_run_matrix_matches_per_cell_runs () =
  (* The flattened (cell x seed) fan-out must agree with cell-by-cell
     execution, pool or not. *)
  let workloads = [ "uniform" ] and algos = [ Runtime.Algo.SN; Runtime.Algo.CBN ] in
  let matrix =
    Runtime.Experiment.run_matrix ~scale:Workloads.Catalog.Smoke ~seeds:2
      ~workloads ~algos ()
  in
  let cells =
    List.map
      (fun algo ->
        Runtime.Experiment.run_cell ~scale:Workloads.Catalog.Smoke ~seeds:2
          ~workload:"uniform" ~algo ())
      algos
  in
  List.iter2 (fun a b -> check_measurement_equal "matrix vs cell" a b) matrix cells

let () =
  Alcotest.run "pool"
    [
      ( "pool",
        [
          Alcotest.test_case "map runs each task once" `Quick
            test_map_runs_each_task_once;
          Alcotest.test_case "inline at one domain" `Quick
            test_map_inline_at_one_domain;
          Alcotest.test_case "empty and single batches" `Quick
            test_map_empty_and_single;
          Alcotest.test_case "exception propagation" `Quick
            test_exception_propagates_lowest_index;
          Alcotest.test_case "run propagates exceptions" `Quick
            test_run_propagates_exceptions;
          Alcotest.test_case "with_lock returns and releases" `Quick
            test_with_lock_returns_and_releases;
          Alcotest.test_case "with_lock releases on exception" `Quick
            test_with_lock_releases_on_exception;
          Alcotest.test_case "run preserves order" `Quick
            test_run_preserves_list_order;
          Alcotest.test_case "shutdown" `Quick
            test_shutdown_is_idempotent_and_final;
          Alcotest.test_case "default domain counts" `Quick
            test_default_num_domains_positive;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "run_cell parallel = sequential" `Quick
            test_run_cell_parallel_matches_sequential;
          Alcotest.test_case "run_matrix parallel = sequential" `Quick
            test_run_matrix_parallel_matches_sequential;
          Alcotest.test_case "run_matrix = per-cell runs" `Quick
            test_run_matrix_matches_per_cell_runs;
        ] );
    ]
