(* Step planning and execution: direction, shape classification,
   rotate-or-forward decision, message movement, cluster contents. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module S = Cbnet.Step
module P = Cbnet.Potential

let config = Cbnet.Config.default
let always_rotate = Cbnet.Config.make ~delta:0.01 ()

let install_weights t weights =
  Array.iteri (fun v w -> T.set_weight t v w) weights

(* A 15-node balanced tree with uniform unit counters; Φ gains from
   rotations are mild so δ=2 rejects everything. *)
let uniform_tree () =
  let t = Build.balanced 15 in
  let rec go v =
    if v = T.nil then 0
    else begin
      let w = 1 + go (T.left t v) + go (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (go (T.root t));
  t

let test_plan_none_at_destination () =
  let t = uniform_tree () in
  Alcotest.(check bool) "delivered" true (S.plan config t ~current:5 ~dst:5 = None)

let test_forward_up_two_levels () =
  let t = uniform_tree () in
  (* Node 0 heading to 12: direction up, two levels available. *)
  match S.plan config t ~current:0 ~dst:12 with
  | None -> Alcotest.fail "expected a plan"
  | Some p ->
      Alcotest.(check bool) "routing step" false p.S.rotate;
      Alcotest.(check int) "two hops" 2 p.S.hops;
      Alcotest.(check int) "lands at grandparent" 3 p.S.new_current;
      Alcotest.(check (list int)) "passes parent then grandparent" [ 1; 3 ] (S.passed p)

let test_forward_up_stops_at_lca () =
  let t = uniform_tree () in
  (* Node 2 heading to 5: LCA is 3 (2's grandparent)?  2's parent is 1,
     and direction at 1 toward 5 is still up, so the step may take two
     levels and land exactly on the LCA 3. *)
  (match S.plan config t ~current:2 ~dst:5 with
  | None -> Alcotest.fail "expected a plan"
  | Some p -> Alcotest.(check int) "lands on LCA" 3 p.S.new_current);
  (* Node 2 heading to 0: LCA is 1 = parent -> single-level boundary. *)
  match S.plan config t ~current:2 ~dst:0 with
  | None -> Alcotest.fail "expected a plan"
  | Some p ->
      Alcotest.(check bool) "bu-zig kind" true (p.S.kind = S.Bu_zig);
      Alcotest.(check int) "one hop" 1 p.S.hops;
      Alcotest.(check int) "lands on parent" 1 p.S.new_current

let test_forward_down_two_levels () =
  let t = uniform_tree () in
  match S.plan config t ~current:7 ~dst:0 with
  | None -> Alcotest.fail "expected a plan"
  | Some p ->
      Alcotest.(check bool) "routing" false p.S.rotate;
      Alcotest.(check bool) "td zig-zig shape" true (p.S.kind = S.Td_semi_zig_zig);
      Alcotest.(check int) "lands two levels down" 1 p.S.new_current;
      Alcotest.(check (list int)) "passes" [ 3; 1 ] (S.passed p)

let test_forward_down_one_level () =
  let t = uniform_tree () in
  match S.plan config t ~current:1 ~dst:0 with
  | None -> Alcotest.fail "expected a plan"
  | Some p ->
      Alcotest.(check bool) "td-zig" true (p.S.kind = S.Td_zig);
      Alcotest.(check int) "one hop" 1 p.S.hops;
      Alcotest.(check int) "lands on destination" 0 p.S.new_current

let test_kind_classification_up () =
  let t = uniform_tree () in
  (* 0 is left child of 1, 1 left child of 3: zig-zig. *)
  (match S.plan config t ~current:0 ~dst:14 with
  | Some p -> Alcotest.(check string) "zig-zig" "bu-semi-zig-zig" (S.kind_to_string p.S.kind)
  | None -> Alcotest.fail "plan");
  (* 2 is right child of 1, 1 left child of 3: zig-zag. *)
  match S.plan config t ~current:2 ~dst:14 with
  | Some p -> Alcotest.(check string) "zig-zag" "bu-semi-zig-zag" (S.kind_to_string p.S.kind)
  | None -> Alcotest.fail "plan"

let test_kind_classification_down () =
  let t = uniform_tree () in
  (* From 7 toward 0: 3 then 1, both left children: zig-zig. *)
  (match S.plan config t ~current:7 ~dst:0 with
  | Some p -> Alcotest.(check string) "zig-zig" "td-semi-zig-zig" (S.kind_to_string p.S.kind)
  | None -> Alcotest.fail "plan");
  (* From 7 toward 5: 3 (left) then 5 (right): zig-zag. *)
  match S.plan config t ~current:7 ~dst:5 with
  | Some p ->
      Alcotest.(check string) "zig-zag" "td-semi-zig-zag" (S.kind_to_string p.S.kind);
      Alcotest.(check int) "lands on 5" 5 p.S.new_current
  | None -> Alcotest.fail "plan"

let test_rotation_execution_up_zig_zig () =
  let t = uniform_tree () in
  (* Make the subtree under 1 very heavy so promotion pays. *)
  install_weights t (Array.make 15 0);
  let counters = Array.make 15 1 in
  counters.(0) <- 500;
  let rec go v =
    if v = T.nil then 0
    else begin
      let w = counters.(v) + go (T.left t v) + go (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (go (T.root t));
  match S.plan always_rotate t ~current:0 ~dst:14 with
  | None -> Alcotest.fail "plan"
  | Some p ->
      Alcotest.(check bool) "rotates" true p.S.rotate;
      Alcotest.(check int) "one rotation" 1 p.S.rotations;
      let phi_before = P.phi t in
      S.execute t p;
      let phi_after = P.phi t in
      Alcotest.(check bool) "potential dropped as predicted" true
        (Float.abs (phi_after -. phi_before -. (S.delta_phi p)) < 1e-9);
      Bstnet.Check.assert_ok (Bstnet.Check.structure t);
      Bstnet.Check.assert_ok (Bstnet.Check.bst_order t);
      Bstnet.Check.assert_ok (Bstnet.Check.interval_labels t);
      (* Message moved to the parent, now two levels higher. *)
      Alcotest.(check int) "new current" 1 p.S.new_current;
      Alcotest.(check int) "parent climbed" 1 (T.depth t 1)

let test_rotation_execution_down_zig_zag () =
  let t = uniform_tree () in
  let counters = Array.make 15 1 in
  counters.(5) <- 500;
  let rec go v =
    if v = T.nil then 0
    else begin
      let w = counters.(v) + go (T.left t v) + go (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (go (T.root t));
  match S.plan always_rotate t ~current:7 ~dst:5 with
  | None -> Alcotest.fail "plan"
  | Some p ->
      Alcotest.(check bool) "rotates" true p.S.rotate;
      Alcotest.(check int) "double rotation" 2 p.S.rotations;
      let phi_before = P.phi t in
      S.execute t p;
      Alcotest.(check bool) "delta matches" true
        (Float.abs (P.phi t -. phi_before -. (S.delta_phi p)) < 1e-9);
      Alcotest.(check int) "z promoted to old current depth" 0 (T.depth t 5);
      Bstnet.Check.assert_ok (Bstnet.Check.structure t);
      Bstnet.Check.assert_ok (Bstnet.Check.bst_order t)

let test_cluster_contents () =
  let t = uniform_tree () in
  (match S.plan config t ~current:0 ~dst:14 with
  | Some p ->
      List.iter
        (fun v ->
          if not (List.mem v (S.cluster p)) then Alcotest.failf "missing %d in cluster" v)
        [ 0; 1; 3 ]
  | None -> Alcotest.fail "plan");
  (* Skew the weights so the bottom-up zig-zig rotation really fires:
     its cluster must then include the anchor above the grandparent. *)
  let t = Bstnet.Build.balanced 15 in
  let counters = Array.make 15 1 in
  counters.(0) <- 500;
  let rec go v =
    if v = T.nil then 0
    else begin
      let w = counters.(v) + go (T.left t v) + go (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (go (T.root t));
  match S.plan always_rotate t ~current:0 ~dst:14 with
  | Some p ->
      Alcotest.(check bool) "rotation fires" true p.S.rotate;
      Alcotest.(check bool) "rotation cluster includes anchor" true
        (List.mem 7 (S.cluster p))
  | None -> Alcotest.fail "plan"

let test_update_message_plan () =
  let t = uniform_tree () in
  (* dst = nil: climb to the root. *)
  let p = S.plan_up config t ~current:0 ~dst:T.nil in
  Alcotest.(check int) "two levels" 2 p.S.hops;
  let p2 = S.plan_up config t ~current:3 ~dst:T.nil in
  Alcotest.(check bool) "boundary at root" true (p2.S.kind = S.Bu_zig)

let test_update_never_rotates_onto_root () =
  (* Regression for the W(root) = 2m leaks: a weight-update message's
     boundary step at the root must forward (deliver +2), never promote
     itself above the root, however profitable the rotation looks. *)
  let t = Build.balanced 7 in
  let counters = Array.make 7 1 in
  counters.(2) <- 1000 (* make promoting 2's ancestors very attractive *);
  let rec go v =
    if v = T.nil then 0
    else begin
      let w = counters.(v) + go (T.left t v) + go (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (go (T.root t));
  (* Update at 1 (child of root 3): boundary step. *)
  let p = S.plan_up always_rotate t ~current:1 ~dst:T.nil in
  Alcotest.(check bool) "boundary step forwards" false p.S.rotate;
  Alcotest.(check int) "delivers to root" 3 p.S.new_current;
  (* Update at 2 (grandchild, zig-zag shape with g = root): the
     double-promotion onto the root is also forbidden. *)
  let p2 = S.plan_up always_rotate t ~current:2 ~dst:T.nil in
  if p2.S.kind = S.Bu_semi_zig_zag then
    Alcotest.(check bool) "no zig-zag onto root" false p2.S.rotate;
  (* A DATA message in the same spot may still rotate (only updates are
     restricted). *)
  let p3 = S.plan_up always_rotate t ~current:2 ~dst:6 in
  Alcotest.(check bool) "data message may rotate" true
    (p3.S.rotate || (S.delta_phi p3) >= -0.01)

let test_delta_threshold_boundary () =
  (* The same tree, two configs: a tight delta rotates, the default
     forwards. *)
  let t = uniform_tree () in
  let counters = Array.make 15 1 in
  counters.(0) <- 6 (* mild skew: delta_phi in (-2, -0.2) *);
  let rec go v =
    if v = T.nil then 0
    else begin
      let w = counters.(v) + go (T.left t v) + go (T.right t v) in
      T.set_weight t v w;
      w
    end
  in
  ignore (go (T.root t));
  match
    ( S.plan config t ~current:0 ~dst:14,
      S.plan (Cbnet.Config.make ~delta:0.05 ()) t ~current:0 ~dst:14 )
  with
  | Some a, Some b ->
      Alcotest.(check bool) "default forwards" false a.S.rotate;
      Alcotest.(check bool) "tight delta rotates" true b.S.rotate
  | _ -> Alcotest.fail "plans"

(* Drive one message through random trees with both extreme configs:
   the message must always reach its destination within bounded steps,
   and the tree must stay valid after every step. *)
let drive_message config t src dst =
  let budget = ref (8 * T.n t) in
  let current = ref src in
  while !current <> dst do
    decr budget;
    if !budget < 0 then Alcotest.failf "no progress from %d to %d" src dst;
    match S.plan config t ~current:!current ~dst with
    | None -> Alcotest.failf "plan None before arrival at %d" dst
    | Some p ->
        S.execute t p;
        current := p.S.new_current;
        Bstnet.Check.assert_ok (Bstnet.Check.structure t);
        Bstnet.Check.assert_ok (Bstnet.Check.bst_order t);
        Bstnet.Check.assert_ok (Bstnet.Check.interval_labels t)
  done

let test_message_always_arrives () =
  let rng = Simkit.Rng.create 123 in
  List.iter
    (fun cfg ->
      for _ = 1 to 25 do
        let n = 2 + Simkit.Rng.int rng 64 in
        let t = Build.random rng n in
        let rec go v =
          if v = T.nil then 0
          else begin
            let w = 1 + Simkit.Rng.int rng 5 + go (T.left t v) + go (T.right t v) in
            T.set_weight t v w;
            w
          end
        in
        ignore (go (T.root t));
        let src = Simkit.Rng.int rng n and dst = Simkit.Rng.int rng n in
        if src <> dst then drive_message cfg t src dst
      done)
    [ config; always_rotate ]

let qcheck_tests =
  let open QCheck2 in
  [
    QCheck_alcotest.to_alcotest
      (Test.make ~name:"every plan's delta_phi is exact" ~count:200
         Gen.(quad (int_range 2 48) (int_bound 9999) (int_bound 999) (int_bound 999))
         (fun (n, seed, a, b) ->
           let rng = Simkit.Rng.create seed in
           let t = Build.random rng n in
           let rec go v =
             if v = T.nil then 0
             else begin
               let w = 1 + Simkit.Rng.int rng 9 + go (T.left t v) + go (T.right t v) in
               T.set_weight t v w;
               w
             end
           in
           ignore (go (T.root t));
           let src = a mod n and dst = b mod n in
           if src = dst then true
           else
             match S.plan always_rotate t ~current:src ~dst with
             | None -> false
             | Some p ->
                 if not p.S.rotate then true
                 else begin
                   let before = P.phi t in
                   S.execute t p;
                   Float.abs (P.phi t -. before -. (S.delta_phi p)) < 1e-9
                 end));
  ]

let () =
  Alcotest.run "step"
    [
      ( "planning",
        [
          Alcotest.test_case "none at destination" `Quick test_plan_none_at_destination;
          Alcotest.test_case "forward up 2" `Quick test_forward_up_two_levels;
          Alcotest.test_case "stops at LCA" `Quick test_forward_up_stops_at_lca;
          Alcotest.test_case "forward down 2" `Quick test_forward_down_two_levels;
          Alcotest.test_case "forward down 1" `Quick test_forward_down_one_level;
          Alcotest.test_case "kinds up" `Quick test_kind_classification_up;
          Alcotest.test_case "kinds down" `Quick test_kind_classification_down;
          Alcotest.test_case "update message plan" `Quick test_update_message_plan;
          Alcotest.test_case "delta threshold" `Quick test_delta_threshold_boundary;
          Alcotest.test_case "update root boundary (regression)" `Quick
            test_update_never_rotates_onto_root;
        ] );
      ( "execution",
        [
          Alcotest.test_case "bu zig-zig rotation" `Quick test_rotation_execution_up_zig_zig;
          Alcotest.test_case "td zig-zag rotation" `Quick
            test_rotation_execution_down_zig_zag;
          Alcotest.test_case "clusters" `Quick test_cluster_contents;
          Alcotest.test_case "message always arrives" `Quick test_message_always_arrives;
        ] );
      ("properties", qcheck_tests);
    ]
