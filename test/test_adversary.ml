(* Adversarial sequences: the amortized bounds must hold when every
   request targets the currently most expensive pair. *)

module T = Bstnet.Topology
module Adversary = Runtime.Adversary

let test_deepest_leaf () =
  let t = Bstnet.Build.path 8 in
  Alcotest.(check int) "chain end" 7 (Adversary.deepest_leaf t);
  let b = Bstnet.Build.balanced 7 in
  Alcotest.(check int) "leftmost deepest leaf" 0 (Adversary.deepest_leaf b)

let test_deep_access_pair () =
  let t = Bstnet.Build.path 16 in
  let s, d = Adversary.deep_access t in
  Alcotest.(check int) "from the deep end" 15 s;
  Alcotest.(check int) "to the root" 0 d

let test_adversary_amortized_bound () =
  (* Even against the deep-access adversary, the total work stays
     O(m log n): check a generous constant. *)
  let n = 64 in
  let m = 2000 in
  let t = Bstnet.Build.balanced n in
  let stats = Adversary.run_deep_access_sequential ~m t in
  Alcotest.(check int) "all delivered" m stats.Cbnet.Run_stats.messages;
  let bound = 8.0 *. float_of_int m *. Float.log2 (float_of_int n) in
  Alcotest.(check bool)
    (Printf.sprintf "work %.0f within 8 m log n = %.0f" stats.Cbnet.Run_stats.work bound)
    true
    (stats.Cbnet.Run_stats.work <= bound);
  Bstnet.Check.assert_ok (Bstnet.Check.structure t);
  Bstnet.Check.assert_ok (Bstnet.Check.bst_order t)

let test_adversary_on_degenerate_tree () =
  (* Starting from a chain, the adversary hits the worst depth first;
     semi-splaying must flatten it rather than thrash. *)
  let n = 64 in
  let m = 1000 in
  let t = Bstnet.Build.path n in
  let stats = Adversary.run_deep_access_sequential ~m t in
  let max_depth = ref 0 in
  T.iter_subtree t (T.root t) (fun v -> max_depth := max !max_depth (T.depth t v));
  Alcotest.(check bool)
    (Printf.sprintf "depth flattened to %d" !max_depth)
    true
    (!max_depth < n / 2);
  Alcotest.(check bool) "rotations sublinear in m" true
    (stats.Cbnet.Run_stats.rotations < m)

let test_adversary_concurrent () =
  (* The concurrent executor under the same deep-access adversary:
     everything delivers, the amortized bound holds with the same
     generous constant, and the final tree is structurally sound. *)
  let n = 64 in
  let m = 1000 in
  let t = Bstnet.Build.balanced n in
  let stats = Adversary.run_deep_access_concurrent ~m t in
  Alcotest.(check int) "all delivered" m stats.Cbnet.Run_stats.messages;
  let bound = 8.0 *. float_of_int m *. Float.log2 (float_of_int n) in
  Alcotest.(check bool)
    (Printf.sprintf "work %.0f within 8 m log n = %.0f"
       stats.Cbnet.Run_stats.work bound)
    true
    (stats.Cbnet.Run_stats.work <= bound);
  Bstnet.Check.assert_ok (Bstnet.Check.structural t)

let test_online_worst_case_concurrent () =
  (* online_worst_case driving Cbnet.Concurrent.run directly: each
     single-request trace reacts to the tree the previous one left. *)
  let t = Bstnet.Build.balanced 15 in
  let stats =
    Adversary.online_worst_case ~m:10 t
      ~next:(fun tree -> Adversary.deep_access tree)
      (fun trace -> Cbnet.Concurrent.run t trace)
  in
  Alcotest.(check int) "ten messages" 10 stats.Cbnet.Run_stats.messages;
  Alcotest.(check bool) "some routing happened" true
    (stats.Cbnet.Run_stats.routing_cost > 0);
  Bstnet.Check.assert_ok (Bstnet.Check.structural t)

let test_online_worst_case_accumulates () =
  let t = Bstnet.Build.balanced 15 in
  let stats =
    Adversary.online_worst_case ~m:10 t
      ~next:(fun _ -> (0, 14))
      (fun trace -> Cbnet.Sequential.run t trace)
  in
  Alcotest.(check int) "ten messages" 10 stats.Cbnet.Run_stats.messages;
  Alcotest.(check int) "W(root) = 20" 20 (T.total_weight t)

let () =
  Alcotest.run "adversary"
    [
      ( "adversary",
        [
          Alcotest.test_case "deepest leaf" `Quick test_deepest_leaf;
          Alcotest.test_case "deep access pair" `Quick test_deep_access_pair;
          Alcotest.test_case "amortized bound" `Quick test_adversary_amortized_bound;
          Alcotest.test_case "degenerate start" `Quick test_adversary_on_degenerate_tree;
          Alcotest.test_case "concurrent executor" `Quick test_adversary_concurrent;
          Alcotest.test_case "concurrent online worst case" `Quick
            test_online_worst_case_concurrent;
          Alcotest.test_case "accumulation" `Quick test_online_worst_case_accumulates;
        ] );
    ]
