(* Profkit: the log-bucketed histogram primitive and the phase-level
   profile built on it.  The histogram's contract — O(1) allocation-free
   record, bounded relative error, exact mergeability — is what lets it
   sit on the executor's hot path; the profile's contract is exclusive
   contiguous time attribution (phases sum to the round wall exactly)
   plus exact speculation counters. *)

module H = Profkit.Histogram
module P = Profkit.Profile

let of_list ?scale values =
  let h = H.create ?scale () in
  List.iter (H.record h) values;
  h

(* --- histogram: bucket boundaries -------------------------------- *)

let test_unit_buckets_exact () =
  (* At scale 1 every tick up to 63 has its own unit bucket, so small
     integer observations reconstruct exactly. *)
  let h = of_list ~scale:1.0 [ 1.0; 2.0; 3.0; 4.0; 5.0 ] in
  Alcotest.(check (float 0.0)) "p50 exact in unit buckets" 3.0 (H.p50 h);
  Alcotest.(check (float 0.0)) "q0 is min" 1.0 (H.quantile h 0.0);
  Alcotest.(check (float 0.0)) "q1 is max" 5.0 (H.quantile h 1.0);
  Alcotest.(check (float 0.0)) "mean exact" 3.0 (H.mean h);
  Alcotest.(check (float 0.0)) "sum exact" 15.0 (H.sum h)

let test_log_bucket_width () =
  (* Ticks 64..127 fall into width-2 buckets: 64 and 65 share one, so
     their p50 lands on the shared midpoint. *)
  let h = of_list ~scale:1.0 [ 64.0; 65.0 ] in
  Alcotest.(check (float 0.0)) "shared-bucket midpoint" 64.5 (H.p50 h);
  (* 66 starts the next bucket: distinguishable from 64. *)
  let h2 = of_list ~scale:1.0 [ 64.0; 66.0 ] in
  Alcotest.(check bool) "adjacent buckets distinguish 64 from 66" true
    (H.quantile h2 0.0 < H.quantile h2 1.0)

let test_relative_error_bound () =
  (* Geometric sweep over 9 decades: the reconstructed p50 of a 3-point
     cloud around v must sit within the documented 2^-5 = 3.125% of v. *)
  let v = ref 1.0 in
  while !v < 1e9 do
    let x = !v in
    let h = of_list [ x *. 0.9; x; x *. 1.1 ] in
    let q = H.quantile h 0.5 in
    let rel = Float.abs (q -. x) /. x in
    if rel > 0.032 then
      Alcotest.failf "p50 of cloud at %g off by %.2f%% (> 3.2%%)" x
        (100.0 *. rel);
    v := !v *. 3.7
  done

let test_percentiles_against_exact () =
  (* 1..10_000: compare reconstructed percentiles to the exact
     nearest-rank values. *)
  let h = H.create () in
  for i = 1 to 10_000 do
    H.record h (float_of_int i)
  done;
  List.iter
    (fun (q, exact) ->
      let got = H.quantile h q in
      let rel = Float.abs (got -. exact) /. exact in
      if rel > 0.032 then
        Alcotest.failf "q%.2f = %g, exact %g: off by %.2f%%" q got exact
          (100.0 *. rel))
    [ (0.5, 5000.0); (0.95, 9500.0); (0.99, 9900.0); (1.0, 10_000.0) ];
  Alcotest.(check int) "count" 10_000 (H.count h)

let test_negative_and_zero () =
  let h = of_list [ -5.0; 0.0; 5.0 ] in
  Alcotest.(check (float 0.0)) "min exact" (-5.0) (H.min h);
  Alcotest.(check (float 0.0)) "max exact" 5.0 (H.max h);
  Alcotest.(check (float 0.0)) "q0 negative" (-5.0) (H.quantile h 0.0);
  Alcotest.(check (float 0.0)) "p50 zero" 0.0 (H.p50 h);
  Alcotest.(check (float 0.0)) "sum" 0.0 (H.sum h)

let test_nan_skipped_extremes_clamped () =
  let h = of_list [ Float.nan; 1.0 ] in
  Alcotest.(check int) "NaN ignored" 1 (H.count h);
  (* Beyond the tick cap: clamped into the top bucket, never raising
     and never producing a non-finite quantile. *)
  let big = of_list [ 1e300 ] in
  Alcotest.(check int) "huge value recorded" 1 (H.count big);
  Alcotest.(check bool) "quantile finite" true
    (Float.is_finite (H.quantile big 0.5))

let test_empty_histogram () =
  let h = H.create () in
  Alcotest.(check bool) "is_empty" true (H.is_empty h);
  Alcotest.(check (float 0.0)) "quantile 0" 0.0 (H.quantile h 0.5);
  Alcotest.(check (float 0.0)) "mean 0" 0.0 (H.mean h);
  Alcotest.(check (float 0.0)) "variance 0" 0.0 (H.variance h);
  Alcotest.(check bool) "no buckets" true (H.buckets h = [])

let test_buckets_cumulative () =
  let h = of_list ~scale:1.0 [ 1.0; 1.0; 2.0; 70.0; -3.0 ] in
  let bs = H.buckets h in
  Alcotest.(check bool) "some buckets" true (List.length bs >= 3);
  let les = List.map fst bs and counts = List.map snd bs in
  Alcotest.(check bool) "le ascending" true (List.sort compare les = les);
  Alcotest.(check bool) "counts non-decreasing" true
    (List.sort compare counts = counts);
  Alcotest.(check int) "last cumulative = count" (H.count h)
    (List.nth counts (List.length counts - 1))

(* --- histogram: merge --------------------------------------------- *)

let fingerprint h = (H.count h, H.sum h, H.min h, H.max h, H.buckets h)

let test_merge_associative_commutative () =
  let a () = of_list [ 1.0; 2.0; 3.0 ] in
  let b () = of_list [ 100.0; 200.0 ] in
  let c () = of_list [ -7.0; 0.5; 4096.0 ] in
  (* (a + b) + c *)
  let left = a () in
  H.merge_into ~dst:left (b ());
  H.merge_into ~dst:left (c ());
  (* a + (b + c) *)
  let bc = b () in
  H.merge_into ~dst:bc (c ());
  let right = a () in
  H.merge_into ~dst:right bc;
  Alcotest.(check bool) "merge associative" true
    (fingerprint left = fingerprint right);
  (* c + b + a: commuted order, same fingerprint. *)
  let comm = c () in
  H.merge_into ~dst:comm (b ());
  H.merge_into ~dst:comm (a ());
  Alcotest.(check bool) "merge commutative" true
    (fingerprint left = fingerprint comm)

let test_merge_scale_mismatch () =
  let a = H.create ~scale:1.0 () and b = H.create ~scale:1000.0 () in
  Alcotest.check_raises "scale mismatch rejected"
    (Invalid_argument "Histogram.merge_into: scale mismatch") (fun () ->
      H.merge_into ~dst:a b)

let test_reset () =
  let h = of_list [ 1.0; 2.0 ] in
  H.reset h;
  Alcotest.(check bool) "empty after reset" true (H.is_empty h);
  H.record h 9.0;
  Alcotest.(check (float 0.0)) "usable after reset" 9.0 (H.max h)

(* --- histogram: allocation-free record ---------------------------- *)

let test_record_zero_alloc () =
  (* Native-only: bytecode boxes intermediates freely, which is not the
     deployment profile the contract covers. *)
  match Sys.backend_type with
  | Sys.Native ->
      let h = H.create () in
      (* Warm up, then hammer [record] with an already-boxed argument —
         any allocation measured below comes from [record] itself. *)
      for i = 1 to 100 do
        H.record h (float_of_int i)
      done;
      let v = 123.456 in
      let before = Gc.minor_words () in
      for _ = 1 to 10_000 do
        H.record h v
      done;
      let allocated = Gc.minor_words () -. before in
      if allocated > 256.0 then
        Alcotest.failf "record allocated %.0f minor words over 10k calls"
          allocated
  | _ -> ()

(* --- profile: time attribution ------------------------------------ *)

let burn () =
  let x = ref 0 in
  for i = 1 to 100_000 do
    x := !x + i
  done;
  Sys.opaque_identity !x |> ignore

let test_profile_round_lifecycle () =
  let p = P.create () in
  P.round_begin p;
  P.enter p P.Inject;
  burn ();
  P.enter p P.Commit;
  burn ();
  P.round_close p;
  let round = P.round_us p in
  let covered =
    List.fold_left (fun acc ph -> acc +. P.phase_round_us p ph) 0.0 P.phases
  in
  Alcotest.(check bool) "round wall non-negative" true (round >= 0.0);
  (* Exclusive contiguous attribution: the phase times telescope to the
     round wall (up to float summation noise). *)
  Alcotest.(check bool) "phases sum to round wall" true
    (Float.abs (covered -. round) <= 1e-6 *. Float.max 1.0 round);
  P.round_commit p;
  Alcotest.(check int) "one round committed" 1 (P.rounds p);
  Alcotest.(check (float 0.0)) "wall is the round" round (P.wall_us p);
  Alcotest.(check int) "wall hist has one sample" 1 (H.count (P.wall_hist p));
  Alcotest.(check (float 0.0)) "per-round state reset" 0.0
    (P.phase_round_us p P.Inject);
  (* Totals preserved across the commit. *)
  let total =
    List.fold_left (fun acc ph -> acc +. P.total_us p ph) 0.0 P.phases
  in
  Alcotest.(check bool) "totals sum to wall" true
    (Float.abs (total -. P.wall_us p)
    <= 1e-6 *. Float.max 1.0 (P.wall_us p));
  Alcotest.(check int) "per-phase hist committed" 1 (H.count (P.hist p P.Inject))

let test_profile_counters () =
  let p = P.create () in
  P.stamp_hit p;
  P.stamp_hit p;
  P.stamp_miss p;
  P.replay p;
  P.fallback p;
  P.seq_slot p;
  P.deliver_slot p;
  P.shape_hit p;
  P.conflict p;
  P.conflict p;
  Alcotest.(check int) "stamp_hits" 2 (P.stamp_hits p);
  Alcotest.(check int) "stamp_misses" 1 (P.stamp_misses p);
  Alcotest.(check (float 1e-9)) "hit rate" (2.0 /. 3.0) (P.stamp_hit_rate p);
  Alcotest.(check int) "replayed" 1 (P.replayed p);
  Alcotest.(check int) "fallback" 1 (P.fallback_slots p);
  Alcotest.(check int) "seq" 1 (P.seq_slots p);
  Alcotest.(check int) "deliver" 1 (P.deliver_slots p);
  Alcotest.(check int) "shape" 1 (P.shape_hits p);
  Alcotest.(check int) "conflicts" 2 (P.conflicts p);
  (* The stable export list mirrors the accessors. *)
  let l = P.counters p in
  Alcotest.(check (option int)) "list stamp_hits" (Some 2)
    (List.assoc_opt "stamp_hits" l);
  Alcotest.(check (option int)) "list replayed_slots" (Some 1)
    (List.assoc_opt "replayed_slots" l);
  Alcotest.(check (option int)) "list claim_conflicts" (Some 2)
    (List.assoc_opt "claim_conflicts" l);
  Alcotest.(check int) "11 counters exported" 11 (List.length l)

let test_profile_wave_imbalance () =
  let p = P.create () in
  Alcotest.(check (float 0.0)) "no waves: imbalance 0" 0.0 (P.avg_imbalance p);
  (* busiest member planned 3 of 4 slots across 2 members: 3*2/4 = 1.5x. *)
  P.wave p ~members:2 ~busiest:3 ~slots:4;
  (* perfectly balanced: 2*2/4 = 1.0x. *)
  P.wave p ~members:2 ~busiest:2 ~slots:4;
  Alcotest.(check int) "waves" 2 (P.waves p);
  Alcotest.(check int) "slots" 8 (P.wave_slots p);
  Alcotest.(check int) "members" 4 (P.wave_members p);
  Alcotest.(check (float 1e-9)) "avg imbalance" 1.25 (P.avg_imbalance p);
  Alcotest.(check (float 1e-9)) "max imbalance" 1.5 (P.max_imbalance p)

let test_profile_empty () =
  let p = P.create () in
  Alcotest.(check int) "no rounds" 0 (P.rounds p);
  Alcotest.(check (float 0.0)) "no wall" 0.0 (P.wall_us p);
  Alcotest.(check (float 0.0)) "hit rate 0 when unused" 0.0
    (P.stamp_hit_rate p);
  List.iter
    (fun ph ->
      Alcotest.(check (float 0.0))
        (P.phase_name ph ^ " total 0")
        0.0 (P.total_us p ph))
    P.phases

let test_phase_names_and_indices () =
  Alcotest.(check int) "seven phases" 7 (List.length P.phases);
  List.iteri
    (fun i ph ->
      Alcotest.(check int) "index matches order" i (P.phase_index ph))
    P.phases;
  Alcotest.(check (list string)) "stable export names"
    [
      "fault_injection";
      "inject";
      "plan_wave";
      "commit";
      "delivery";
      "invariant_check";
      "other";
    ]
    (List.map P.phase_name P.phases)

let () =
  Alcotest.run "profkit"
    [
      ( "histogram buckets",
        [
          Alcotest.test_case "unit buckets exact" `Quick
            test_unit_buckets_exact;
          Alcotest.test_case "log bucket width" `Quick test_log_bucket_width;
          Alcotest.test_case "relative error bound" `Quick
            test_relative_error_bound;
          Alcotest.test_case "percentiles vs exact" `Quick
            test_percentiles_against_exact;
          Alcotest.test_case "negative and zero" `Quick test_negative_and_zero;
          Alcotest.test_case "nan and clamp" `Quick
            test_nan_skipped_extremes_clamped;
          Alcotest.test_case "empty" `Quick test_empty_histogram;
          Alcotest.test_case "buckets cumulative" `Quick
            test_buckets_cumulative;
        ] );
      ( "histogram merge",
        [
          Alcotest.test_case "associative and commutative" `Quick
            test_merge_associative_commutative;
          Alcotest.test_case "scale mismatch" `Quick test_merge_scale_mismatch;
          Alcotest.test_case "reset" `Quick test_reset;
        ] );
      ( "histogram allocation",
        [
          Alcotest.test_case "record zero alloc" `Quick test_record_zero_alloc;
        ] );
      ( "profile",
        [
          Alcotest.test_case "round lifecycle" `Quick
            test_profile_round_lifecycle;
          Alcotest.test_case "counters" `Quick test_profile_counters;
          Alcotest.test_case "wave imbalance" `Quick
            test_profile_wave_imbalance;
          Alcotest.test_case "empty profile" `Quick test_profile_empty;
          Alcotest.test_case "phase names" `Quick
            test_phase_names_and_indices;
        ] );
    ]
