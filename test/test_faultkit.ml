(* Faultkit: plan text round-trip, torn-rotation repair, and chaos
   determinism of the concurrent executor under fault injection. *)

module T = Bstnet.Topology
module Build = Bstnet.Build
module Check = Bstnet.Check
module Plan = Faultkit.Plan
module Repair = Faultkit.Repair
module Conc = Cbnet.Concurrent
module Stats = Cbnet.Run_stats

(* ------------------------------------------------------------------ *)
(* Plans: combinators, validation, one-line text round-trip.          *)
(* ------------------------------------------------------------------ *)

let sample_plans =
  let open Plan in
  [
    ("empty", make ~seed:0 []);
    ( "one crash",
      make ~seed:42 [ crash ~at:(at_round 5) ~duration:12 deepest ] );
    ( "periodic random crash",
      make ~seed:7
        [ crash ~at:(periodic ~offset:3 40) ~duration:8 (random_nodes ~rate:0.1) ] );
    ("node crash", make ~seed:9 [ crash ~at:(at_round 9) ~duration:4 (node 3) ]);
    ("lossy", make ~seed:13 [ lose ~rate:0.05 ]);
    ( "kitchen sink",
      make ~seed:16
        [
          crash ~at:(periodic 30) ~duration:5 (random_nodes ~rate:0.01);
          lose ~rate:0.01;
          duplicate ~rate:0.005;
          delay ~rate:0.02 ~rounds:3;
          abort_rotations ~rate:0.1;
        ] );
    (* An awkward rate that needs full precision to re-parse. *)
    ("precise rate", make ~seed:1 [ lose ~rate:(1.0 /. 3.0) ]);
  ]

let test_round_trip () =
  List.iter
    (fun (name, p) ->
      let s = Plan.to_string p in
      let p' = Plan.of_string_exn s in
      if p <> p' then
        Alcotest.failf "%s: %S re-parsed to %S" name s (Plan.to_string p');
      (* And the round-trip is a fixed point of the printer. *)
      Alcotest.(check string) (name ^ ": printer fixed point") s
        (Plan.to_string p'))
    sample_plans

let test_parse_errors () =
  List.iter
    (fun s ->
      match Plan.of_string s with
      | Ok p -> Alcotest.failf "%S parsed to %S" s (Plan.to_string p)
      | Error _ -> ())
    [
      "";
      "lose=0.1";
      (* no seed *)
      "seed=abc";
      "seed=1 bogus=3";
      "seed=1 lose=nope";
      "seed=1 lose=1.5";
      (* rate out of range *)
      "seed=1 crash@round(5):deepest";
      (* missing duration *)
      "seed=1 delay=0.1";
      (* missing sleep rounds *)
    ];
  match Plan.of_string_exn "seed=1 lose=0.1" with
  | p -> Alcotest.(check bool) "exn variant parses" false (Plan.is_empty p)

let test_validation () =
  let rejects f =
    match f () with
    | exception Invalid_argument _ -> ()
    | (_ : Plan.t) -> Alcotest.fail "invalid plan accepted"
  in
  rejects (fun () -> Plan.(make ~seed:1 [ lose ~rate:1.5 ]));
  rejects (fun () -> Plan.(make ~seed:1 [ lose ~rate:(-0.1) ]));
  rejects (fun () ->
      Plan.(make ~seed:1 [ crash ~at:(at_round 3) ~duration:0 deepest ]));
  rejects (fun () ->
      Plan.(make ~seed:1 [ crash ~at:(periodic 0) ~duration:2 deepest ]));
  rejects (fun () -> Plan.(make ~seed:1 [ delay ~rate:0.1 ~rounds:(-1) ]));
  Alcotest.(check bool) "empty is empty" true Plan.(is_empty (make ~seed:5 []));
  Alcotest.(check bool)
    "non-empty is not" false
    Plan.(is_empty (make ~seed:5 [ lose ~rate:0.1 ]))

(* ------------------------------------------------------------------ *)
(* Torn rotations and repair.                                         *)
(* ------------------------------------------------------------------ *)

let check_trees ctx ta tb =
  let n = T.n ta in
  Alcotest.(check int) (ctx ^ ": same root") (T.root tb) (T.root ta);
  for v = 0 to n - 1 do
    if
      T.parent ta v <> T.parent tb v
      || T.left ta v <> T.left tb v
      || T.right ta v <> T.right tb v
      || T.weight ta v <> T.weight tb v
      || T.smallest ta v <> T.smallest tb v
      || T.largest ta v <> T.largest tb v
    then Alcotest.failf "%s: trees differ at node %d" ctx v
  done

(* A consistently weighted tree: every Check invariant holds, so heal
   can be audited with the full suite including weight sums. *)
let weighted_tree n =
  let t = Build.balanced n in
  for v = 0 to n - 1 do
    (* Deposit v's counter along its whole root path so every
       aggregate stays exact. *)
    let k = 1 + (v mod 3) in
    let rec bump a =
      if a <> T.nil then begin
        T.add_weight t a k;
        bump (T.parent t a)
      end
    in
    bump v
  done;
  Check.assert_ok (Check.all t);
  t

let test_tear_breaks_heal_restores () =
  let n = 15 in
  List.iter
    (fun x ->
      let ctx = Printf.sprintf "promote %d" x in
      let ta = weighted_tree n and tb = weighted_tree n in
      let d = Repair.tear ta x in
      (* The torn tree is visibly damaged... *)
      (match Check.structure ta with
      | Error _ -> ()
      | Ok () -> Alcotest.failf "%s: torn tree passes Check.structure" ctx);
      (* ...and heal rolls it forward to exactly the untorn rotation. *)
      Repair.heal ta d;
      Check.assert_ok (Check.all ta);
      T.rotate_up tb x;
      check_trees ctx ta tb)
    (* Left child, right child, child of root, deep leaf. *)
    [ 1; 5; 3; 0; 14; 11 ]

let test_tear_root_rejected () =
  let t = Build.balanced 7 in
  match Repair.tear t (T.root t) with
  | exception Invalid_argument _ -> ()
  | (_ : Repair.damage) -> Alcotest.fail "tearing the root was accepted"

let test_repeated_tear_heal () =
  (* Tear/heal at every non-root node in sequence: the tree must stay
     exactly a healthy rotate_up trajectory. *)
  let n = 31 in
  let ta = weighted_tree n and tb = weighted_tree n in
  for x = 0 to n - 1 do
    if x <> T.root ta then begin
      Repair.heal ta (Repair.tear ta x);
      T.rotate_up tb x
    end
  done;
  Check.assert_ok (Check.all ta);
  check_trees "tear/heal sweep" ta tb

(* ------------------------------------------------------------------ *)
(* Chaos runs: determinism, invariants, tallies.                      *)
(* ------------------------------------------------------------------ *)

let trace_of ~workload ~seed =
  let entry = Workloads.Catalog.find workload in
  ( entry.Workloads.Catalog.n,
    Workloads.Trace.to_runs
      (entry.Workloads.Catalog.generate Workloads.Catalog.Smoke ~seed) )

let chaos_plans =
  let open Plan in
  [
    ( "crash",
      make ~seed:11
        [ crash ~at:(periodic 25) ~duration:5 (random_nodes ~rate:0.02) ] );
    ("crash-deep", make ~seed:12 [ crash ~at:(periodic 40) ~duration:8 deepest ]);
    ("lossy", make ~seed:13 [ lose ~rate:0.02 ]);
    ("dup-delay", make ~seed:14 [ duplicate ~rate:0.01; delay ~rate:0.02 ~rounds:3 ]);
    ("abort", make ~seed:15 [ abort_rotations ~rate:0.3 ]);
    ( "everything",
      make ~seed:16
        [
          crash ~at:(periodic 30) ~duration:5 (random_nodes ~rate:0.01);
          lose ~rate:0.01;
          duplicate ~rate:0.005;
          delay ~rate:0.01 ~rounds:2;
          abort_rotations ~rate:0.05;
        ] );
  ]

let chaos_run ?sink ~plan ~n trace =
  let t = Build.balanced n in
  let stats =
    Conc.run ?sink ~max_rounds:500_000 ~faults:plan ~check_invariants:true t
      trace
  in
  (stats, t)

let pp_stats s = Format.asprintf "%a" Stats.pp s

let test_determinism () =
  let n, trace = trace_of ~workload:"skewed" ~seed:1 in
  List.iter
    (fun (name, plan) ->
      let sa, ta = chaos_run ~plan ~n trace in
      let sb, tb = chaos_run ~plan ~n trace in
      Alcotest.(check string) (name ^ ": stats replay") (pp_stats sa) (pp_stats sb);
      check_trees (name ^ ": tree replay") ta tb)
    chaos_plans

let capture_payloads run =
  let acc = ref [] in
  let sink =
    Obskit.Sink.stream (fun (e : Obskit.Event.t) ->
        acc := e.Obskit.Event.payload :: !acc)
  in
  let result = run sink in
  (result, List.rev !acc)

let test_traced_matches_untraced () =
  let n, trace = trace_of ~workload:"projector" ~seed:2 in
  List.iter
    (fun (name, plan) ->
      let (sa, ta), ea =
        capture_payloads (fun sink -> chaos_run ~sink ~plan ~n trace)
      in
      let sb, tb = chaos_run ~plan ~n trace in
      Alcotest.(check string) (name ^ ": stats") (pp_stats sb) (pp_stats sa);
      check_trees (name ^ ": trees") ta tb;
      (* And the event stream itself replays bit for bit. *)
      let (_, _), eb =
        capture_payloads (fun sink -> chaos_run ~sink ~plan ~n trace)
      in
      Alcotest.(check int) (name ^ ": event count") (List.length eb)
        (List.length ea);
      List.iteri
        (fun i (pa, pb) ->
          if pa <> pb then
            Alcotest.failf "%s: event %d differs: %s vs %s" name i
              (Obskit.Event.name pa) (Obskit.Event.name pb))
        (List.combine ea eb))
    chaos_plans

let test_all_workloads_drain () =
  (* Every (workload, plan) cell drains all surviving messages with
     structural invariants checked after every repair and at the end —
     the executor raises otherwise. *)
  List.iter
    (fun workload ->
      let n, trace = trace_of ~workload ~seed:1 in
      List.iter
        (fun (name, plan) ->
          let stats, _ = chaos_run ~plan ~n trace in
          Alcotest.(check bool)
            (Printf.sprintf "%s/%s delivered" workload name)
            true
            (stats.Stats.messages > 0))
        chaos_plans)
    [ "skewed"; "datastructure" ]

let test_fault_tallies () =
  let n, trace = trace_of ~workload:"skewed" ~seed:1 in
  let run plan = (fst (chaos_run ~plan ~n trace)).Stats.chaos in
  let open Plan in
  let c = run (make ~seed:3 [ crash ~at:(periodic 20) ~duration:6 (random_nodes ~rate:0.05) ]) in
  Alcotest.(check bool) "crashes fire" true (c.Stats.crashes > 0);
  let c = run (make ~seed:3 [ lose ~rate:0.1 ]) in
  Alcotest.(check bool) "losses fire" true (c.Stats.lost > 0);
  let c = run (make ~seed:3 [ duplicate ~rate:0.2; delay ~rate:0.3 ~rounds:2 ]) in
  Alcotest.(check bool) "duplicates fire" true (c.Stats.duplicated > 0);
  Alcotest.(check bool) "delays fire" true (c.Stats.delayed > 0);
  let c = run (make ~seed:3 [ abort_rotations ~rate:0.5 ]) in
  Alcotest.(check bool) "aborts repaired" true (c.Stats.repairs > 0);
  Alcotest.(check int) "every abort repaired" c.Stats.aborted_rotations
    c.Stats.repairs

let test_pp_chaos_columns () =
  let n, trace = trace_of ~workload:"skewed" ~seed:1 in
  let clean = Conc.run (Build.balanced n) trace in
  let contains s sub =
    let n = String.length s and m = String.length sub in
    let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
    m = 0 || go 0
  in
  Alcotest.(check bool)
    "fault-free pp has no chaos columns" false
    (contains (pp_stats clean) "crashes=");
  let faulty, _ =
    chaos_run ~plan:(List.assoc "lossy" chaos_plans) ~n trace
  in
  Alcotest.(check bool)
    "chaos pp shows its tallies" true
    (contains (pp_stats faulty) "lost=")

let () =
  Alcotest.run "faultkit"
    [
      ( "plans",
        [
          Alcotest.test_case "text round-trip" `Quick test_round_trip;
          Alcotest.test_case "parse errors" `Quick test_parse_errors;
          Alcotest.test_case "validation" `Quick test_validation;
        ] );
      ( "repair",
        [
          Alcotest.test_case "tear breaks, heal restores" `Quick
            test_tear_breaks_heal_restores;
          Alcotest.test_case "root rejected" `Quick test_tear_root_rejected;
          Alcotest.test_case "tear/heal sweep" `Quick test_repeated_tear_heal;
        ] );
      ( "chaos",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "traced = untraced" `Quick
            test_traced_matches_untraced;
          Alcotest.test_case "all workloads drain" `Quick
            test_all_workloads_drain;
          Alcotest.test_case "fault tallies" `Quick test_fault_tallies;
          Alcotest.test_case "pp chaos columns" `Quick test_pp_chaos_columns;
        ] );
    ]
